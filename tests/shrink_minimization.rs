//! Counterexample minimization end to end: every minimized trace must
//! (a) reproduce a violation with the *same* message on a factory-fresh
//! harness, (b) be a subsequence of the original trace, and (c) be
//! 1-minimal — no single op can be removed (together with whatever
//! dependency repair re-adds) and still reproduce.

use std::sync::Arc;

use mcfs::shrink::{repair_mask, shrink_trace, ShrinkConfig};
use mcfs::{
    buggy_verifs_factory, harness_with_factory, replay, replay_checked, FsOp, HarnessFactory,
    McfsConfig, PoolConfig,
};
use modelcheck::{apply_mask, run_swarm, ExploreConfig, RandomWalk, StopReason, SwarmConfig};
use proptest::prelude::*;
use verifs::BugConfig;

/// Whether `needle` is a subsequence of `hay` (order-preserving).
fn is_subsequence(needle: &[FsOp], hay: &[FsOp]) -> bool {
    let mut it = hay.iter();
    needle.iter().all(|op| it.any(|h| h == op))
}

/// Asserts repair-aware 1-minimality: dropping any single op from
/// `minimized` (plus repair closure over the remainder) either reconstructs
/// the same trace or no longer reproduces `message` on a fresh harness.
fn assert_one_minimal(factory: &HarnessFactory, minimized: &[FsOp], message: &str) {
    for i in 0..minimized.len() {
        let mut mask = vec![true; minimized.len()];
        mask[i] = false;
        repair_mask(minimized, &mut mask);
        if mask.iter().all(|&k| k) {
            continue; // op i is pinned by a dependency; removal is a no-op
        }
        let candidate = apply_mask(minimized, &mask);
        let mut fresh = factory().expect("factory rebuilds");
        assert!(
            !replay_checked(&mut fresh, &candidate, message).reproduced(),
            "removing op {i} ({:?}) still reproduces: not 1-minimal",
            minimized[i]
        );
    }
}

/// The hole bug's triggering pattern (paper bug 3): write, shrink, then a
/// hole-creating write past the new EOF.
fn hole_pattern() -> [FsOp; 4] {
    [
        FsOp::CreateFile {
            path: "/f0".into(),
            mode: 0o644,
        },
        FsOp::WriteFile {
            path: "/f0".into(),
            offset: 0,
            size: 40,
            seed: 1,
        },
        FsOp::Truncate {
            path: "/f0".into(),
            size: 1,
        },
        FsOp::WriteFile {
            path: "/f0".into(),
            offset: 30,
            size: 4,
            seed: 2,
        },
    ]
}

/// Filler ops that never trigger the hole bug themselves: reads, metadata
/// traffic, and non-hole mutations on paths other than `/f0`.
fn filler_op() -> impl Strategy<Value = FsOp> {
    prop_oneof![
        Just(FsOp::CreateFile {
            path: "/f1".into(),
            mode: 0o644,
        }),
        (1u64..64, 1u8..8).prop_map(|(size, seed)| FsOp::WriteFile {
            path: "/f1".into(),
            offset: 0,
            size,
            seed,
        }),
        Just(FsOp::Mkdir {
            path: "/d0".into(),
            mode: 0o755,
        }),
        Just(FsOp::Stat { path: "/f1".into() }),
        Just(FsOp::Stat { path: "/f0".into() }),
        Just(FsOp::Getdents { path: "/".into() }),
        Just(FsOp::Access { path: "/f1".into() }),
        (1u64..32).prop_map(|size| FsOp::ReadFile {
            path: "/f1".into(),
            offset: 0,
            size,
        }),
        Just(FsOp::Chmod {
            path: "/f1".into(),
            mode: 0o600,
        }),
    ]
}

/// Interleaves the 4-op hole pattern (in order) into `filler` at the given
/// insertion gaps.
fn interleave(filler: Vec<FsOp>, gaps: &[u8]) -> Vec<FsOp> {
    let mut positions: Vec<usize> = gaps
        .iter()
        .map(|&g| g as usize % (filler.len() + 1))
        .collect();
    positions.sort_unstable();
    let pattern = hole_pattern();
    let mut out = Vec::with_capacity(filler.len() + 4);
    let mut p = 0usize;
    for (gap, op) in filler.into_iter().enumerate() {
        while p < 4 && positions[p] <= gap {
            out.push(pattern[p].clone());
            p += 1;
        }
        out.push(op);
    }
    while p < 4 {
        out.push(pattern[p].clone());
        p += 1;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The tentpole property, ≥512 cases: bury the hole-bug pattern under
    /// random filler, minimize, and check same-message reproduction,
    /// subsequence-ness, and 1-minimality.
    #[test]
    fn minimized_traces_are_sound_subsequences_and_one_minimal(
        filler in prop::collection::vec(filler_op(), 0..8),
        gaps in prop::collection::vec(any::<u8>(), 4..5),
    ) {
        let trace = interleave(filler, &gaps);
        let factory = buggy_verifs_factory(BugConfig::v2_hole(), McfsConfig::default());
        let mut recorder = (factory)().expect("factory builds");
        // The embedded pattern guarantees a violation fires somewhere.
        let (idx, msg) = replay(&mut recorder, &trace).expect("hole bug fires");
        let recorded = &trace[..=idx];

        let out = shrink_trace(factory.as_ref(), recorded, &msg, &ShrinkConfig::default())
            .expect("a reproducing trace must minimize");

        // (a) same-message reproduction on a fresh harness.
        let mut fresh = (factory)().expect("factory rebuilds");
        prop_assert!(
            replay_checked(&mut fresh, &out.trace, &msg).reproduced(),
            "minimized trace must reproduce the recorded message"
        );
        // (b) subsequence of the original.
        prop_assert!(is_subsequence(&out.trace, recorded));
        prop_assert!(out.trace.len() <= recorded.len());
        // (c) 1-minimality modulo dependency repair.
        assert_one_minimal(factory.as_ref(), &out.trace, &msg);
        // Stats are consistent with what happened.
        prop_assert_eq!(out.stats.ops_before, recorded.len());
        prop_assert_eq!(out.stats.ops_after, out.trace.len());
        prop_assert!(out.stats.candidates_tried >= out.stats.replays_run);
    }
}

/// Crash-boundary handling: `Crash` markers riding along in a buggy-VeriFS
/// trace are irrelevant to the hole bug (VeriFS recovers losslessly), so
/// minimization must drop them — together with nothing else — and the
/// result still reproduces and stays 1-minimal. The dropped crashes prove
/// crash/anchor units shrink as units instead of wedging the minimizer.
#[test]
fn crash_markers_minimize_away_from_a_crash_trace() {
    let factory = buggy_verifs_factory(
        BugConfig::v2_hole(),
        McfsConfig {
            crash_exploration: true,
            ..McfsConfig::default()
        },
    );
    let pattern = hole_pattern();
    let trace = vec![
        pattern[0].clone(),
        FsOp::Crash,
        pattern[1].clone(),
        FsOp::Crash,
        FsOp::Stat { path: "/f0".into() },
        pattern[2].clone(),
        FsOp::Crash,
        pattern[3].clone(),
    ];
    let mut recorder = (factory)().expect("factory builds");
    let (idx, msg) = replay(&mut recorder, &trace).expect("hole bug fires through crashes");
    assert_eq!(idx, trace.len() - 1);

    let out = shrink_trace(factory.as_ref(), &trace, &msg, &ShrinkConfig::default())
        .expect("crash trace must minimize");
    assert!(
        !out.trace.contains(&FsOp::Crash),
        "crashes are irrelevant to the hole bug and must shrink away: {:?}",
        out.trace
    );
    assert!(is_subsequence(&out.trace, &trace));
    let mut fresh = (factory)().expect("factory rebuilds");
    assert!(replay_checked(&mut fresh, &out.trace, &msg).reproduced());
    assert_one_minimal(factory.as_ref(), &out.trace, &msg);
}

/// A pool dense in the hole bug's trigger: one file, the sizes and offsets
/// of the canonical 4-op counterexample. Explorers find the bug quickly
/// here; `bug_detection.rs` covers finding it in the realistic pools.
fn focused_pool() -> PoolConfig {
    PoolConfig {
        files: vec!["/f0".into()],
        dirs: Vec::new(),
        sizes: vec![1, 40],
        offsets: vec![0, 30],
        seeds: vec![1],
        ..PoolConfig::small()
    }
}

/// Explorer wiring: a random walk over a harness with
/// `minimize_violations` + an attached factory reports the violation with
/// `minimized_trace` and `shrink` stats filled in, and the minimized trace
/// replays to the same message.
#[test]
fn random_walk_reports_minimized_violations() {
    let factory = buggy_verifs_factory(
        BugConfig::v2_hole(),
        McfsConfig {
            minimize_violations: true,
            pool: PoolConfig::medium(),
            ..McfsConfig::default()
        },
    );
    for seed in 0..6u64 {
        let mut m = harness_with_factory(Arc::clone(&factory)).expect("harness builds");
        let report = RandomWalk::new(ExploreConfig {
            max_depth: 12,
            max_ops: 200_000,
            seed,
            ..ExploreConfig::default()
        })
        .run(&mut m);
        if report.stop != StopReason::Violation {
            continue;
        }
        let v = &report.violations[0];
        let min = v
            .minimized_trace
            .as_ref()
            .expect("walk violations must carry a minimized trace");
        let stats = v.shrink.expect("and shrink stats");
        assert!(min.len() <= v.trace.len());
        assert!(is_subsequence(min, &v.trace));
        assert_eq!(stats.ops_before, v.trace.len());
        assert_eq!(stats.ops_after, min.len());
        assert_eq!(v.best_trace(), min.as_slice());
        let mut fresh = (factory)().expect("factory rebuilds");
        assert!(
            replay_checked(&mut fresh, min, &v.message).reproduced(),
            "reported minimized trace must reproduce: {v}"
        );
        return;
    }
    panic!("no seed found the hole bug within budget");
}

/// Swarm wiring: each worker minimizes its own find; the report surfaces
/// the shortest reproduction across the fleet.
#[test]
fn swarm_reports_the_shortest_minimized_violation() {
    let factory = buggy_verifs_factory(
        BugConfig::v2_hole(),
        McfsConfig {
            minimize_violations: true,
            pool: focused_pool(),
            ..McfsConfig::default()
        },
    );
    let report = run_swarm(
        &SwarmConfig {
            workers: 4,
            base: ExploreConfig {
                max_depth: 16,
                max_ops: 200_000,
                seed: 0x5EED,
                ..ExploreConfig::default()
            },
            shared_visited: false,
            strategies: vec![],
        },
        |_idx| harness_with_factory(Arc::clone(&factory)).expect("worker harness builds"),
    );
    assert!(report.found_violation(), "some worker must find the bug");
    let best = report.shortest_violation().expect("violations recorded");
    let min = best
        .minimized_trace
        .as_ref()
        .expect("the finding worker minimized");
    assert!(report
        .violations()
        .all(|v| best.best_trace().len() <= v.best_trace().len()));
    let mut fresh = (factory)().expect("factory rebuilds");
    assert!(replay_checked(&mut fresh, min, &best.message).reproduced());
}

/// DFS wiring: the depth-first explorer records minimized violations too.
/// Bug 4 (stale size field) diverges in the abstracted size field the
/// moment the buggy append runs, so any explorer sees it immediately.
#[test]
fn dfs_reports_minimized_violations() {
    let factory = buggy_verifs_factory(
        BugConfig::v2_size(),
        McfsConfig {
            minimize_violations: true,
            pool: PoolConfig {
                files: vec!["/f0".into()],
                dirs: Vec::new(),
                sizes: vec![10],
                offsets: vec![0, 10],
                seeds: vec![1],
                ..PoolConfig::small()
            },
            ..McfsConfig::default()
        },
    );
    let mut m = harness_with_factory(Arc::clone(&factory)).expect("harness builds");
    // Depth 4 over this pool contains the minimal counterexample:
    // create, write@0 (capacity 64), then an in-capacity append @10.
    let report = modelcheck::DfsExplorer::new(ExploreConfig {
        max_depth: 4,
        max_ops: 2_000_000,
        ..ExploreConfig::default()
    })
    .run(&mut m);
    assert_eq!(report.stop, StopReason::Violation, "DFS must hit the bug");
    let v = &report.violations[0];
    let min = v.minimized_trace.as_ref().expect("minimized");
    let mut fresh = (factory)().expect("factory rebuilds");
    assert!(replay_checked(&mut fresh, min, &v.message).reproduced());
    assert_one_minimal(factory.as_ref(), min, &v.message);
}

/// State-matched DFS finds the hole bug (bug 3). Historically it could
/// not: the trigger is stale bytes *beyond* EOF — concrete state outside
/// the POSIX abstraction — so the visited set matched the post-truncate
/// state against a residue-free state reached earlier and pruned the
/// violating continuation (the `MC002` aliasing pattern). VeriFS now folds
/// an opaque beyond-EOF residue digest into its visited-set identity
/// ([`vfs::FileSystem::opaque_state_digest`]), which separates the aliased
/// states and puts the bug back in reach of exhaustive exploration.
#[test]
fn dfs_finds_the_hole_bug_through_the_residue_digest() {
    let factory = buggy_verifs_factory(
        BugConfig::v2_hole(),
        McfsConfig {
            minimize_violations: true,
            pool: focused_pool(),
            ..McfsConfig::default()
        },
    );
    let mut m = harness_with_factory(Arc::clone(&factory)).expect("harness builds");
    // Depth 4 holds the canonical counterexample: create, write@0 len 40,
    // truncate to 1, hole write @30.
    let report = modelcheck::DfsExplorer::new(ExploreConfig {
        max_depth: 4,
        max_ops: 2_000_000,
        ..ExploreConfig::default()
    })
    .run(&mut m);
    assert_eq!(
        report.stop,
        StopReason::Violation,
        "state-matched DFS must reach the hole bug now that residue is in \
         the visited-set identity"
    );
    let v = &report.violations[0];
    let min = v.minimized_trace.as_ref().expect("minimized");
    let mut fresh = (factory)().expect("factory rebuilds");
    assert!(replay_checked(&mut fresh, min, &v.message).reproduced());
}
