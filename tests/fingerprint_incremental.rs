//! Property tests for the incremental abstract-state fingerprint cache.
//!
//! The central property: for *any* randomized operation sequence — nested
//! directories, renames, hardlinks, checkpoint/restore round-trips — the
//! incrementally maintained hash (invalidate touched paths, reuse every
//! other cached leaf digest) equals a from-scratch recompute, on multiple
//! file-system backends. The from-scratch [`abstract_state`] never reads
//! the cache, so it is an independent oracle.

use proptest::prelude::*;

use mcfs::{
    abstract_state, execute, AbstractionConfig, CheckedTarget, CheckpointTarget, FsOp,
    VfsCheckpointTarget,
};
use verifs::VeriFs;
use vfs::FileSystem;

/// Strategy: one operation over a bounded namespace with nesting up to
/// three components, so renames and rmdirs move whole subtrees.
fn arb_op() -> impl Strategy<Value = FsOp> {
    let path = prop_oneof![
        Just("/a".to_string()),
        Just("/b".to_string()),
        Just("/d".to_string()),
        Just("/d/c".to_string()),
        Just("/d/e".to_string()),
        Just("/d/c/x".to_string()),
    ];
    let size = prop_oneof![Just(0u64), Just(1), Just(65), Just(200)];
    let offset = prop_oneof![Just(0u64), Just(10), Just(100)];
    prop_oneof![
        path.clone().prop_map(|p| FsOp::CreateFile {
            path: p,
            mode: 0o644
        }),
        (path.clone(), offset.clone(), size.clone(), 0u8..4).prop_map(|(p, offset, size, seed)| {
            FsOp::WriteFile {
                path: p,
                offset,
                size,
                seed,
            }
        }),
        (path.clone(), size).prop_map(|(p, size)| FsOp::Truncate { path: p, size }),
        path.clone().prop_map(|p| FsOp::Mkdir {
            path: p,
            mode: 0o755
        }),
        path.clone().prop_map(|p| FsOp::Rmdir { path: p }),
        path.clone().prop_map(|p| FsOp::Unlink { path: p }),
        (path.clone(), path.clone()).prop_map(|(a, b)| FsOp::Rename { src: a, dst: b }),
        (path.clone(), path.clone()).prop_map(|(a, b)| FsOp::Hardlink { src: a, dst: b }),
        (path.clone(), path.clone()).prop_map(|(t, l)| FsOp::Symlink {
            target: t,
            linkpath: l
        }),
        (path.clone(), offset, Just(16u64)).prop_map(|(p, offset, size)| FsOp::ReadFile {
            path: p,
            offset,
            size,
        }),
        (path, 0u8..3).prop_map(|(p, i)| FsOp::Chmod {
            path: p,
            mode: [0o644, 0o400, 0o755][i as usize],
        }),
    ]
}

/// The two backends under test: VeriFS2 behind its native checkpoint API,
/// and ext4 on a RAM device behind VFS-level checkpointing. Both targets
/// carry a live fingerprint cache snapshotted alongside their state.
fn backends() -> Vec<Box<dyn CheckedTarget>> {
    let mut v2 = VeriFs::v2();
    v2.mount().unwrap();
    let mut e4 = fs_ext::ext4_on_ram(256 * 1024).unwrap();
    e4.mount().unwrap();
    vec![
        Box::new(CheckpointTarget::new(v2)),
        Box::new(VfsCheckpointTarget::new(e4)),
    ]
}

/// Asserts the cached hash equals an independent from-scratch recompute.
fn check(t: &mut dyn CheckedTarget, cfg: &AbstractionConfig, when: &str) {
    let cached = t.cached_abstract_state(cfg).unwrap();
    let full = abstract_state(t.fs_mut(), cfg).unwrap();
    assert_eq!(
        cached,
        full,
        "cached hash diverged from full recompute on {} ({when})",
        t.name()
    );
}

proptest! {
    // The acceptance bar for this property is >= 1000 randomized sequences.
    #![proptest_config(ProptestConfig::with_cases(1024))]

    /// Incremental == from-scratch after every operation of a random
    /// sequence, through a mid-sequence checkpoint, a restore to the
    /// initial state, and a final restore to the mid-sequence checkpoint.
    #[test]
    fn incremental_matches_full_recompute(
        ops in prop::collection::vec(arb_op(), 1..14),
        checkpoint_at in 0usize..14,
        restore_at in 0usize..14,
    ) {
        let cfg = AbstractionConfig::default();
        let exceptions = vec!["lost+found".to_string()];
        for mut t in backends() {
            let t = t.as_mut();
            // Warm the cache, then snapshot the initial state (key 1).
            check(t, &cfg, "initial state");
            t.save_state(1).unwrap();
            let mut mid_saved = false;
            for (i, op) in ops.iter().enumerate() {
                if i == checkpoint_at {
                    t.save_state(2).unwrap();
                    mid_saved = true;
                }
                if op.is_mutation() {
                    let touched = op.touched_paths();
                    t.invalidate_fingerprints(&touched);
                }
                execute(t.fs_mut(), op, &exceptions);
                check(t, &cfg, "after an op");
                if i == restore_at {
                    t.load_state(1).unwrap();
                    check(t, &cfg, "after restoring the initial state");
                }
            }
            if mid_saved {
                t.load_state(2).unwrap();
                check(t, &cfg, "after restoring the mid-sequence checkpoint");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Deep-nesting stress: build a three-level tree, then rename/remove
    /// directories (moving whole subtrees) — the invalidation must drop
    /// every stale descendant digest.
    #[test]
    fn subtree_moves_never_leave_stale_digests(
        moves in prop::collection::vec((0u8..4, 0u8..4), 1..10),
    ) {
        let cfg = AbstractionConfig::default();
        let dirs = ["/d", "/d/c", "/e", "/e/f"];
        for mut t in backends() {
            let t = t.as_mut();
            for (i, d) in ["/d", "/d/c", "/d/c/x"].iter().enumerate() {
                let op = if i < 2 {
                    FsOp::Mkdir { path: d.to_string(), mode: 0o755 }
                } else {
                    FsOp::CreateFile { path: d.to_string(), mode: 0o644 }
                };
                t.invalidate_fingerprints(&op.touched_paths());
                execute(t.fs_mut(), &op, &[]);
            }
            check(t, &cfg, "after building the tree");
            for (src, dst) in &moves {
                let op = FsOp::Rename {
                    src: dirs[*src as usize].to_string(),
                    dst: dirs[*dst as usize].to_string(),
                };
                t.invalidate_fingerprints(&op.touched_paths());
                execute(t.fs_mut(), &op, &[]);
                check(t, &cfg, "after a subtree move");
            }
        }
    }

    /// Hardlink aliasing: writes through any name of a multi-link inode
    /// change every name's digest; the pre-op nlink check must keep the
    /// cached hash exact.
    #[test]
    fn hardlink_writes_stay_exact(
        writes in prop::collection::vec((0u8..2, 0u64..64, 1u64..64, 0u8..4), 1..8),
    ) {
        let cfg = AbstractionConfig::default();
        for mut t in backends() {
            let t = t.as_mut();
            for op in [
                FsOp::CreateFile { path: "/a".to_string(), mode: 0o644 },
                FsOp::Hardlink { src: "/a".to_string(), dst: "/b".to_string() },
            ] {
                t.invalidate_fingerprints(&op.touched_paths());
                execute(t.fs_mut(), &op, &[]);
            }
            check(t, &cfg, "after linking");
            for (name, offset, size, seed) in &writes {
                let op = FsOp::WriteFile {
                    path: ["/a", "/b"][*name as usize].to_string(),
                    offset: *offset,
                    size: *size,
                    seed: *seed,
                };
                t.invalidate_fingerprints(&op.touched_paths());
                execute(t.fs_mut(), &op, &[]);
                check(t, &cfg, "after writing through an alias");
            }
        }
    }
}
