//! Cross-file-system equivalence: the MCFS property itself, as integration
//! tests. Every pairing of implementations must agree on every operation
//! outcome and abstract state across randomized exploration — zero false
//! positives with the §3.4 workarounds on.

use blockdev::{Clock, LatencyModel, RamDisk, TimedDevice};
use fs_ext::{ExtConfig, ExtFs};
use fs_xfs::{XfsConfig, XfsFs};
use mcfs::{
    CheckedTarget, CheckpointTarget, Mcfs, McfsConfig, PoolConfig, RemountMode, RemountTarget,
};
use modelcheck::{DfsExplorer, ExploreConfig, RandomWalk, StopReason};
use verifs::VeriFs;
use vfs::FileSystem;

fn target(kind: &str, clock: Clock) -> Box<dyn CheckedTarget> {
    match kind {
        "verifs1" => {
            let mut fs = VeriFs::v1();
            fs.mount().unwrap();
            Box::new(CheckpointTarget::new(fs))
        }
        "verifs2" => {
            let mut fs = VeriFs::v2();
            fs.mount().unwrap();
            Box::new(CheckpointTarget::new(fs))
        }
        "fuse-verifs2" => {
            let mut m = fusesim::FuseMount::with_config(
                VeriFs::v2(),
                fusesim::FuseConfig::default(),
                Some(clock),
            );
            let conn = m.connection();
            m.daemon_mut()
                .fs_mut()
                .set_invalidation_sink(std::sync::Arc::new(conn));
            Box::new(CheckpointTarget::new(m))
        }
        "ext2" | "ext4" => {
            let cfg = if kind == "ext2" {
                ExtConfig::ext2()
            } else {
                ExtConfig::ext4()
            };
            let dev = TimedDevice::new(
                RamDisk::new(cfg.block_size, 256 * 1024).unwrap(),
                LatencyModel::ram(),
                clock.clone(),
            );
            let fs = ExtFs::format(dev, cfg).unwrap();
            Box::new(RemountTarget::new(fs, RemountMode::PerOp).with_clock(clock))
        }
        "xfs" => {
            let cfg = XfsConfig::default();
            let dev = TimedDevice::new(
                RamDisk::new(cfg.block_size, 16 * 1024 * 1024).unwrap(),
                LatencyModel::ram(),
                clock.clone(),
            );
            let fs = XfsFs::format(dev, cfg).unwrap();
            Box::new(RemountTarget::new(fs, RemountMode::PerOp).with_clock(clock))
        }
        "jffs2" => {
            let mtd = blockdev::MtdDevice::new(16 * 1024, 64).unwrap();
            let fs = fs_jffs2::Jffs2Fs::format(
                mtd,
                fs_jffs2::Jffs2Config {
                    clock: Some(clock.clone()),
                    ..fs_jffs2::Jffs2Config::default()
                },
            )
            .unwrap();
            Box::new(RemountTarget::new(fs, RemountMode::PerOp).with_clock(clock))
        }
        other => panic!("unknown fs kind {other}"),
    }
}

fn check_pair(a: &str, b: &str, ops: u64) {
    let clock = Clock::new();
    let targets = vec![target(a, clock.clone()), target(b, clock.clone())];
    let mut harness = Mcfs::with_clock(
        targets,
        McfsConfig {
            pool: PoolConfig::small(),
            ..McfsConfig::default()
        },
        clock,
    )
    .unwrap_or_else(|e| panic!("{a} vs {b}: harness failed: {e}"));
    let report = RandomWalk::new(ExploreConfig {
        max_depth: 15,
        max_ops: ops,
        seed: 0xFEED,
        ..ExploreConfig::default()
    })
    .run(&mut harness);
    assert_eq!(
        report.stop,
        StopReason::OpBudget,
        "{a} vs {b}: {}",
        report
            .violations
            .first()
            .map(|v| v.to_string())
            .unwrap_or_default()
    );
}

#[test]
fn verifs_pair_agrees() {
    check_pair("verifs1", "verifs2", 600);
}

#[test]
fn verifs_agrees_through_fuse() {
    check_pair("verifs2", "fuse-verifs2", 600);
}

#[test]
fn ext_family_agrees() {
    check_pair("ext2", "ext4", 400);
}

#[test]
fn ext4_vs_xfs_agrees() {
    check_pair("ext4", "xfs", 300);
}

#[test]
fn ext4_vs_jffs2_agrees() {
    check_pair("ext4", "jffs2", 300);
}

#[test]
fn verifs_vs_ext4_agrees() {
    check_pair("verifs2", "ext4", 400);
}

#[test]
fn verifs_vs_xfs_agrees() {
    check_pair("verifs2", "xfs", 300);
}

#[test]
fn exhaustive_dfs_depth3_all_kernel_pairs_clean() {
    // Bounded-exhaustive: every depth-3 sequence from the small pool.
    for (a, b) in [("ext2", "ext4"), ("verifs1", "verifs2")] {
        let clock = Clock::new();
        let targets = vec![target(a, clock.clone()), target(b, clock.clone())];
        let mut harness = Mcfs::with_clock(
            targets,
            McfsConfig {
                pool: PoolConfig::small(),
                ..McfsConfig::default()
            },
            clock,
        )
        .unwrap();
        let report = DfsExplorer::new(ExploreConfig {
            max_depth: 2,
            max_ops: 200_000,
            ..ExploreConfig::default()
        })
        .run(&mut harness);
        assert_eq!(
            report.stop,
            StopReason::Exhausted,
            "{a} vs {b}: {}",
            report
                .violations
                .first()
                .map(|v| v.to_string())
                .unwrap_or_default()
        );
        assert!(
            report.stats.states_new > 10,
            "{a} vs {b}: explored too little"
        );
    }
}

#[test]
fn three_way_with_voting_is_clean() {
    let clock = Clock::new();
    let targets = vec![
        target("verifs2", clock.clone()),
        target("ext4", clock.clone()),
        target("xfs", clock.clone()),
    ];
    let mut harness = Mcfs::with_clock(
        targets,
        McfsConfig {
            pool: PoolConfig::small(),
            majority_voting: true,
            ..McfsConfig::default()
        },
        clock,
    )
    .unwrap();
    let report = RandomWalk::new(ExploreConfig {
        max_depth: 10,
        max_ops: 200,
        seed: 5,
        ..ExploreConfig::default()
    })
    .run(&mut harness);
    assert_eq!(report.stop, StopReason::OpBudget);
}
