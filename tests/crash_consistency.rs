//! Crash-consistency checking end to end: the nondeterministic `Crash`
//! pseudo-op over correct file systems finds nothing (recovery is always
//! prefix-consistent), while a device that tears writes produces a
//! violation with a trace that replays deterministically.

use blockdev::{FaultKind, FaultPlan, FaultyDevice, RamDisk};
use fs_ext::{ExtConfig, ExtFs};
use mcfs::{
    replay_checked, CheckpointTarget, FsOp, Mcfs, McfsConfig, PoolConfig, RemountMode,
    RemountTarget, ReplayOutcome,
};
use modelcheck::{ApplyOutcome, DfsExplorer, ExploreConfig, ModelSystem, RandomWalk, StopReason};
use verifs::VeriFs;
use vfs::FileSystem;

/// Seeded crash exploration over a correct user-space pairing: every
/// recovery must land inside the prefix window, so the run is violation-free
/// while actually exercising crashes.
#[test]
fn crash_exploration_over_verifs_pair_is_clean() {
    let mut a = VeriFs::v2();
    a.mount().unwrap();
    let mut b = VeriFs::v2();
    b.mount().unwrap();
    let mut m = Mcfs::new(
        vec![
            Box::new(CheckpointTarget::new(a)),
            Box::new(CheckpointTarget::new(b)),
        ],
        McfsConfig {
            crash_exploration: true,
            pool: PoolConfig::small(),
            ..McfsConfig::default()
        },
    )
    .unwrap();
    let report = DfsExplorer::new(ExploreConfig {
        max_depth: 3,
        max_ops: 6_000,
        ..ExploreConfig::default()
    })
    .run(&mut m);
    assert!(report.violations.is_empty(), "{}", report.violations[0]);
    let crash = report.stats.crash.expect("crash stats when enabled");
    assert!(crash.crashes > 0, "DFS must have explored Crash branches");
    assert_eq!(crash.divergent_recoveries, 0);
    assert_eq!(crash.crashes, crash.recoveries);
}

/// The same property over kernel-style device-backed targets: per-op remount
/// syncs after every operation, so a power cut never loses acknowledged
/// state and recovery always equals the pre-crash image.
#[test]
fn crash_exploration_over_ext_pair_is_clean() {
    let e2 = fs_ext::ext2_on_ram(256 * 1024).unwrap();
    let e4 = fs_ext::ext4_on_ram(256 * 1024).unwrap();
    let mut m = Mcfs::new(
        vec![
            Box::new(RemountTarget::new(e2, RemountMode::PerOp)),
            Box::new(RemountTarget::new(e4, RemountMode::PerOp)),
        ],
        McfsConfig {
            crash_exploration: true,
            pool: PoolConfig::small(),
            ..McfsConfig::default()
        },
    )
    .unwrap();
    let report = RandomWalk::new(ExploreConfig {
        max_depth: 10,
        max_ops: 300,
        seed: 0xC4A5,
        ..ExploreConfig::default()
    })
    .run(&mut m);
    assert_eq!(
        report.stop,
        StopReason::OpBudget,
        "{}",
        report
            .violations
            .first()
            .map(|v| v.to_string())
            .unwrap_or_default()
    );
    let crash = report.stats.crash.expect("crash stats when enabled");
    assert!(crash.crashes > 0, "walk must have chosen Crash");
    assert_eq!(crash.crashes, crash.recoveries);
}

/// An ext2 instance whose device tears (or not) according to `plan`,
/// armed *after* format so the plan's `skip` counts from a deterministic
/// point.
fn ext2_torn(plan: FaultPlan) -> ExtFs<FaultyDevice<RamDisk>> {
    let cfg = ExtConfig::ext2();
    let disk = RamDisk::new(cfg.block_size, 256 * 1024).unwrap();
    let mut fs = ExtFs::format(FaultyDevice::new(disk, FaultPlan::none()), cfg).unwrap();
    fs.device_mut().set_plan(plan);
    fs
}

/// Clean ext2 vs torn-device ext2, both per-op remounted. `None` when the
/// fault window fires so early that the pair cannot even agree on the
/// initial state.
fn torn_pair(plan: FaultPlan) -> Option<Mcfs> {
    let clean = ext2_torn(FaultPlan::none());
    let torn = ext2_torn(plan);
    Mcfs::new(
        vec![
            Box::new(RemountTarget::new(clean, RemountMode::PerOp)),
            Box::new(RemountTarget::new(torn, RemountMode::PerOp)),
        ],
        McfsConfig {
            pool: PoolConfig::small(),
            ..McfsConfig::default()
        },
    )
    .ok()
}

/// A fixed workload that dirties plenty of distinct blocks, so a torn
/// sector written anywhere in its sync traffic changes observable state.
fn torn_script() -> Vec<FsOp> {
    let mut ops = vec![FsOp::Mkdir {
        path: "/d".into(),
        mode: 0o755,
    }];
    for i in 0..6u8 {
        ops.push(FsOp::CreateFile {
            path: format!("/f{i}"),
            mode: 0o644,
        });
        ops.push(FsOp::WriteFile {
            path: format!("/f{i}"),
            offset: 0,
            size: 900,
            seed: i,
        });
    }
    ops.push(FsOp::Getdents { path: "/".into() });
    ops
}

/// Tentpole acceptance: a torn-write plan yields at least one violation,
/// and the reported trace reproduces it — same index, same message — on a
/// freshly built pair. Replay works because the fault plan is armed at a
/// deterministic point and `set_plan` restarts the op counters, so the
/// tear fires on the identical write in the rebuilt run.
#[test]
fn torn_write_violation_replays_deterministically() {
    let script = torn_script();
    let mut found = None;
    for skip in 0..60u64 {
        let plan = FaultPlan::eio(FaultKind::Write, skip, 1).with_torn_bytes(17);
        let Some(mut m) = torn_pair(plan) else {
            continue;
        };
        for (i, op) in script.iter().enumerate() {
            if let ApplyOutcome::Violation(msg) = m.apply(op) {
                found = Some((skip, i, msg));
                break;
            }
        }
        if found.is_some() {
            break;
        }
    }
    let (skip, idx, msg) = found.expect("some torn write must corrupt observable state");
    // Rebuild the identical pair and replay the trace prefix: the violation
    // must fire at the same op with the same diagnosis.
    let plan = FaultPlan::eio(FaultKind::Write, skip, 1).with_torn_bytes(17);
    let mut fresh = torn_pair(plan).expect("pair built once, must build again");
    // `replay_checked` rather than bare `replay`: confirmation means the
    // *same* diagnosis at the same op, not just any violation en route.
    let hit = replay_checked(&mut fresh, &script[..=idx], &msg);
    assert_eq!(
        hit,
        ReplayOutcome::Reproduced { index: idx },
        "trace must reproduce the violation"
    );
}

/// The explorers find torn-write corruption on their own: a random walk
/// over the torn pair stops with a violation carrying a non-empty trace.
#[test]
fn explorer_finds_torn_write_violation() {
    let mut found = false;
    'search: for skip in [8u64, 14, 20, 26] {
        for seed in 0..4u64 {
            let plan = FaultPlan::eio(FaultKind::Write, skip, 2).with_torn_bytes(7);
            let Some(mut m) = torn_pair(plan) else {
                continue;
            };
            let report = RandomWalk::new(ExploreConfig {
                max_depth: 30,
                max_ops: 400,
                seed,
                ..ExploreConfig::default()
            })
            .run(&mut m);
            if report.stop == StopReason::Violation {
                let v = &report.violations[0];
                assert!(!v.trace.is_empty(), "violation must carry a trace");
                found = true;
                break 'search;
            }
        }
    }
    assert!(
        found,
        "random walks over a tearing device must hit a violation"
    );
}
