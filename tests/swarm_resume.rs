//! Kill-and-resume swarm exploration: the persistent wire format
//! ([`modelcheck::pickle`]) round-trips byte-for-byte, frontier prefixes
//! replay deterministically on fresh harnesses, and a run interrupted
//! mid-flight resumes from its snapshot re-exploring **zero**
//! previously-visited states while converging on the same final state set
//! as an uninterrupted run — over both the VeriFS pairing and the
//! on-disk ext2/ext4 pairing.

use blockdev::{Clock, LatencyModel, RamDisk, TimedDevice};
use fs_ext::{ExtConfig, ExtFs};
use fusesim::FuseMount;
use mcfs::{
    CheckedTarget, CheckpointTarget, FsOp, FsOpCodec, Mcfs, McfsConfig, PoolConfig, RemountMode,
    RemountTarget,
};
use modelcheck::{
    decode_snapshot, encode_snapshot, load_snapshot, run_swarm_persistent, ExploreConfig,
    FrontierEntry, OpCodec, RunSnapshot, SwarmConfig, SwarmPersist, SwarmReport, WorkerStrategy,
};
use proptest::prelude::*;
use verifs::VeriFs;

// ---------------------------------------------------------------------------
// Harness builders (one per backend pairing)
// ---------------------------------------------------------------------------

fn verifs_harness(_worker: usize) -> Mcfs {
    let clock = Clock::new();
    let wrap = |fs: VeriFs| -> Box<dyn CheckedTarget> {
        let mut mount =
            FuseMount::with_config(fs, fusesim::FuseConfig::default(), Some(clock.clone()));
        let conn = mount.connection();
        mount
            .daemon_mut()
            .fs_mut()
            .set_invalidation_sink(std::sync::Arc::new(conn));
        Box::new(CheckpointTarget::new(mount))
    };
    let targets = vec![wrap(VeriFs::v1()), wrap(VeriFs::v2())];
    Mcfs::with_clock(
        targets,
        McfsConfig {
            pool: PoolConfig::small(),
            ..McfsConfig::default()
        },
        clock,
    )
    .expect("verifs harness")
}

fn ext_harness(_worker: usize) -> Mcfs {
    let clock = Clock::new();
    let target = |cfg: ExtConfig| -> Box<dyn CheckedTarget> {
        let disk = RamDisk::new(cfg.block_size, 256 * 1024).unwrap();
        let dev = TimedDevice::new(disk, LatencyModel::ram(), clock.clone());
        let fs = ExtFs::format(dev, cfg).unwrap();
        Box::new(RemountTarget::new(fs, RemountMode::PerOp).with_clock(clock.clone()))
    };
    let targets = vec![target(ExtConfig::ext2()), target(ExtConfig::ext4())];
    Mcfs::with_clock(
        targets,
        McfsConfig {
            pool: PoolConfig::small(),
            ..McfsConfig::default()
        },
        clock,
    )
    .expect("ext harness")
}

fn swarm_cfg(max_ops: u64) -> SwarmConfig {
    SwarmConfig {
        workers: 2,
        base: ExploreConfig {
            max_depth: 3,
            max_ops,
            seed: 11,
            ..ExploreConfig::default()
        },
        shared_visited: true,
        strategies: vec![WorkerStrategy::Dfs],
    }
}

fn snap_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "mcfs-swarm-resume-{name}-{}.pickle",
        std::process::id()
    ))
}

/// Runs a persistent swarm over `factory`, snapshotting to `path`.
fn run_to_snapshot(
    factory: fn(usize) -> Mcfs,
    path: &std::path::Path,
    max_ops: u64,
    resume: Option<RunSnapshot<FsOp>>,
) -> SwarmReport<FsOp> {
    let report = run_swarm_persistent(
        &swarm_cfg(max_ops),
        factory,
        SwarmPersist {
            codec: &FsOpCodec,
            snapshot_path: Some(path.to_path_buf()),
            snapshot_every: 0,
            resume,
        },
    );
    assert!(
        report.persist_error.is_none(),
        "snapshot write failed: {:?}",
        report.persist_error
    );
    report
}

// ---------------------------------------------------------------------------
// Wire-format round-trips
// ---------------------------------------------------------------------------

/// Strategy: one op drawn from every [`FsOp`] variant, over a tiny
/// namespace — the codec must survive all seventeen tags.
fn arb_op() -> impl Strategy<Value = FsOp> {
    let path = prop_oneof![
        Just("/a".to_string()),
        Just("/d/weird päth".to_string()),
        Just("/b".to_string()),
    ];
    prop_oneof![
        (path.clone(), 0u16..0o1000).prop_map(|(path, mode)| FsOp::CreateFile { path, mode }),
        (path.clone(), 0u64..300, 0u64..300, any::<u8>()).prop_map(|(path, offset, size, seed)| {
            FsOp::WriteFile {
                path,
                offset,
                size,
                seed,
            }
        }),
        (path.clone(), 0u64..300).prop_map(|(path, size)| FsOp::Truncate { path, size }),
        (path.clone(), 0u16..0o1000).prop_map(|(path, mode)| FsOp::Mkdir { path, mode }),
        path.clone().prop_map(|path| FsOp::Rmdir { path }),
        path.clone().prop_map(|path| FsOp::Unlink { path }),
        (path.clone(), path.clone()).prop_map(|(src, dst)| FsOp::Rename { src, dst }),
        (path.clone(), path.clone()).prop_map(|(src, dst)| FsOp::Hardlink { src, dst }),
        (path.clone(), path.clone())
            .prop_map(|(target, linkpath)| FsOp::Symlink { target, linkpath }),
        (path.clone(), 0u64..300, 0u64..300).prop_map(|(path, offset, size)| FsOp::ReadFile {
            path,
            offset,
            size
        }),
        path.clone().prop_map(|path| FsOp::Stat { path }),
        path.clone().prop_map(|path| FsOp::Getdents { path }),
        (path.clone(), 0u16..0o1000).prop_map(|(path, mode)| FsOp::Chmod { path, mode }),
        (path.clone(), any::<u8>()).prop_map(|(path, seed)| FsOp::SetXattr {
            path,
            name: "user.k".into(),
            seed,
        }),
        path.clone().prop_map(|path| FsOp::RemoveXattr {
            path,
            name: "user.k".into(),
        }),
        path.prop_map(|path| FsOp::Access { path }),
        Just(FsOp::Crash),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any op sequence survives encode → decode unchanged, consuming the
    /// buffer exactly.
    #[test]
    fn codec_round_trips_any_trace(ops in proptest::collection::vec(arb_op(), 0..24)) {
        let mut buf = Vec::new();
        for op in &ops {
            FsOpCodec.encode_op(op, &mut buf);
        }
        let mut r = modelcheck::ByteReader::new(&buf);
        let mut back = Vec::new();
        for _ in 0..ops.len() {
            back.push(FsOpCodec.decode_op(&mut r).expect("decodes"));
        }
        prop_assert_eq!(r.remaining(), 0);
        prop_assert_eq!(back, ops);
    }

    /// Any snapshot survives encode → decode → encode with byte-identical
    /// output (the format has exactly one encoding per value).
    #[test]
    fn snapshot_bytes_round_trip(
        seed in any::<u64>(),
        mut visited in proptest::collection::vec((any::<u64>(), any::<u64>(), 0u32..64), 0..32),
        prefixes in proptest::collection::vec(proptest::collection::vec(arb_op(), 0..6), 0..8),
    ) {
        // The shim's Arbitrary stops at u64; widen two halves to a u128.
        let mut visited: Vec<(u128, u32)> = visited
            .drain(..)
            .map(|(hi, lo, d)| (((hi as u128) << 64) | lo as u128, d))
            .collect();
        visited.sort_unstable();
        visited.dedup_by_key(|(h, _)| *h);
        let snap = RunSnapshot {
            base_seed: seed,
            workers: 3,
            generation: 1,
            visited,
            frontier: prefixes
                .into_iter()
                .map(|prefix| FrontierEntry { prefix, sleep: Vec::new() })
                .collect(),
            rng: vec![modelcheck::RngCursor { seed, draws: 17 }],
            stats: Default::default(),
        };
        let bytes = encode_snapshot(&snap, &FsOpCodec);
        let back = decode_snapshot(&bytes, &FsOpCodec).expect("decodes");
        prop_assert_eq!(&back, &snap);
        prop_assert_eq!(encode_snapshot(&back, &FsOpCodec), bytes);
    }
}

// ---------------------------------------------------------------------------
// Frontier prefixes replay deterministically on fresh harnesses
// ---------------------------------------------------------------------------

/// An interrupted run's frontier entries, replayed via
/// [`Mcfs::reseed_from_prefix`] on two *independently built* harnesses,
/// land on the same abstract state — the property that makes op-prefix
/// frontiers a sound persistence format.
fn check_prefix_determinism(factory: fn(usize) -> Mcfs, name: &str) {
    let path = snap_path(name);
    let _ = run_to_snapshot(factory, &path, 60, None);
    let snap = load_snapshot(&path, &FsOpCodec).expect("snapshot loads");
    assert!(
        !snap.frontier.is_empty(),
        "{name}: interrupted run must leave pending frontier entries"
    );
    for entry in snap.frontier.iter().take(6) {
        let mut a = factory(0);
        let mut b = factory(1);
        a.reseed_from_prefix(&entry.prefix).expect("prefix replays");
        b.reseed_from_prefix(&entry.prefix).expect("prefix replays");
        use modelcheck::ModelSystem;
        assert_eq!(
            a.abstract_state(),
            b.abstract_state(),
            "{name}: prefix {:?} is not deterministic across fresh harnesses",
            entry.prefix
        );
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn frontier_prefixes_replay_deterministically_verifs() {
    check_prefix_determinism(verifs_harness, "prefix-verifs");
}

#[test]
fn frontier_prefixes_replay_deterministically_ext() {
    check_prefix_determinism(ext_harness, "prefix-ext");
}

// ---------------------------------------------------------------------------
// Kill-and-resume equals one uninterrupted run
// ---------------------------------------------------------------------------

fn check_kill_and_resume(factory: fn(usize) -> Mcfs, name: &str) {
    // Control: one uninterrupted run to exhaustion.
    let control_path = snap_path(&format!("{name}-control"));
    let control = run_to_snapshot(factory, &control_path, u64::MAX, None);
    let control_snap = load_snapshot(&control_path, &FsOpCodec).expect("control snapshot");
    let full_states = control.total_states();
    assert!(
        control_snap.frontier.is_empty(),
        "{name}: exhausted control run must have an empty frontier"
    );

    // Interrupted: cut roughly mid-run, then resume from the file.
    let path = snap_path(name);
    let cut = (control.total_ops() / 2).max(10);
    let _ = run_to_snapshot(factory, &path, cut, None);
    let snap = load_snapshot(&path, &FsOpCodec).expect("snapshot loads");
    let baseline = snap.stats.states_new;
    let resumed = run_to_snapshot(factory, &path, u64::MAX, Some(snap));

    let resumed_new: u64 = resumed.workers.iter().map(|w| w.stats.states_new).sum();
    let distinct = resumed.total_states();
    // Any state the resumed fleet revisited would be double-counted as new.
    assert_eq!(
        (baseline + resumed_new).saturating_sub(distinct),
        0,
        "{name}: resume re-explored previously-visited states"
    );
    assert_eq!(
        distinct, full_states,
        "{name}: two-phase exploration lost or invented states"
    );

    // The final visited sets are identical, fingerprint for fingerprint.
    let final_snap = load_snapshot(&path, &FsOpCodec).expect("final snapshot");
    assert_eq!(
        final_snap.visited, control_snap.visited,
        "{name}: resumed visited set diverges from the uninterrupted run"
    );
    assert!(final_snap.generation > control_snap.generation);
    let _ = std::fs::remove_file(&control_path);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn kill_and_resume_matches_uninterrupted_verifs() {
    check_kill_and_resume(verifs_harness, "resume-verifs");
}

#[test]
fn kill_and_resume_matches_uninterrupted_ext() {
    check_kill_and_resume(ext_harness, "resume-ext");
}
