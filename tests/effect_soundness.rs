//! Soundness of the signature-derived independence relation (PR 5).
//!
//! Three properties, validated by execution rather than trusted:
//!
//! 1. **Commutation**: every pair the derived relation claims independent
//!    reaches the same abstract state under both orders, from sampled
//!    reachable prefixes, on at least two backends (VeriFS and ext2).
//! 2. **Refinement**: the derived relation is a superset of the legacy
//!    path-prefix heuristic's independent pairs, *except* where the
//!    commutation sanitizer proves the heuristic unsound — and every such
//!    exception goes through an alias class (hard links).
//! 3. **The unsoundness itself**: after `link(/f0, /f1)`, truncate-vs-write
//!    on the two names does not commute, yet the old heuristic called the
//!    pair independent.

use mcfs::effect::{
    heuristic_independent, independent, independent_concurrent, EffectProfile, Independence,
};
use mcfs::{
    abstract_state, execute, AbstractionConfig, CheckpointTarget, FsOp, Mcfs, McfsConfig,
    PoolConfig,
};
use modelcheck::ModelSystem;
use proptest::prelude::*;
use verifs::VeriFs;
use vfs::{FileSystem, VfsResult};

fn observe(fs: &mut dyn FileSystem) -> (u128, Option<u128>) {
    let h = abstract_state(fs, &AbstractionConfig::default())
        .map(|d| d.as_u128())
        .unwrap_or(u128::MAX);
    (h, fs.opaque_state_digest())
}

/// Runs `trace` on a fresh backend and observes the final state.
fn final_state(
    fresh: &dyn Fn() -> VfsResult<Box<dyn FileSystem>>,
    trace: &[&FsOp],
) -> (u128, Option<u128>) {
    let mut fs = fresh().expect("backend");
    for op in trace {
        let _ = execute(fs.as_mut(), op, &[]);
    }
    observe(fs.as_mut())
}

fn fresh_verifs() -> VfsResult<Box<dyn FileSystem>> {
    let mut fs = VeriFs::v2();
    fs.mount()?;
    Ok(Box::new(fs))
}

fn fresh_ext2() -> VfsResult<Box<dyn FileSystem>> {
    let mut fs = fs_ext::ext2_on_ram(256 * 1024)?;
    fs.mount()?;
    Ok(Box::new(fs))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    /// Property 1: derived-independent pairs commute on VeriFS v2 and ext2
    /// from random reachable prefixes.
    #[test]
    fn derived_independent_pairs_commute_on_two_backends(
        i in 0usize..64,
        j in 0usize..64,
        prefix_picks in prop::collection::vec(0usize..64, 0..4),
    ) {
        let ops = PoolConfig::small().ops();
        let profile = EffectProfile::from_pool(&ops);
        let a = &ops[i % ops.len()];
        let b = &ops[j % ops.len()];
        if independent(a, b, &profile) {
            let mutations: Vec<&FsOp> = ops.iter().filter(|o| o.is_mutation()).collect();
            let prefix: Vec<&FsOp> = prefix_picks
                .iter()
                .map(|&p| mutations[p % mutations.len()])
                .collect();
            let mut ab = prefix.clone();
            ab.push(a);
            ab.push(b);
            let mut ba = prefix;
            ba.push(b);
            ba.push(a);
            for fresh in [
                &fresh_verifs as &dyn Fn() -> VfsResult<Box<dyn FileSystem>>,
                &fresh_ext2,
            ] {
                let caps = fresh().expect("backend").capabilities();
                if !a.allowed_by(caps) || !b.allowed_by(caps) {
                    continue;
                }
                let ab_t: Vec<&FsOp> =
                    ab.iter().copied().filter(|o| o.allowed_by(caps)).collect();
                let ba_t: Vec<&FsOp> =
                    ba.iter().copied().filter(|o| o.allowed_by(caps)).collect();
                prop_assert_eq!(
                    final_state(fresh, &ab_t),
                    final_state(fresh, &ba_t),
                    "derived-independent pair must commute: `{}` vs `{}`",
                    a,
                    b
                );
            }
        }
    }
}

/// Property 2: on the standard pools, every pair the heuristic calls
/// independent is also derived-independent — unless the conflict goes
/// through an alias class, which is exactly the case the sanitizer proved
/// the heuristic wrong about.
#[test]
fn derived_is_superset_of_heuristic_except_aliasing() {
    for pool in [PoolConfig::small(), PoolConfig::medium()] {
        let ops = pool.ops();
        let profile = EffectProfile::from_pool(&ops);
        let mut exceptions = 0usize;
        for (x, a) in ops.iter().enumerate() {
            for b in ops.iter().skip(x + 1) {
                if !heuristic_independent(a, b) {
                    continue;
                }
                match mcfs::effect::explain(a, b, &profile) {
                    Independence::Independent => {}
                    Independence::Dependent(c) => {
                        assert!(
                            c.aliased,
                            "derived relation dropped `{a}` / `{b}` for a \
                             non-aliasing reason: {c:?}"
                        );
                        exceptions += 1;
                    }
                }
            }
        }
        assert!(
            exceptions > 0,
            "the pools contain hard links, so aliased exceptions must exist"
        );
    }
}

/// Property 3 (directed): the legacy heuristic's hard-link blind spot. The
/// divergence is real on both backends, the heuristic misses it, the
/// derived relation reports it as an aliased conflict.
#[test]
fn heuristic_is_unsound_under_hardlink_aliasing() {
    let prefix = [
        FsOp::CreateFile {
            path: "/f0".into(),
            mode: 0o644,
        },
        FsOp::Hardlink {
            src: "/f0".into(),
            dst: "/f1".into(),
        },
    ];
    let a = FsOp::Truncate {
        path: "/f0".into(),
        size: 0,
    };
    let b = FsOp::WriteFile {
        path: "/f1".into(),
        offset: 0,
        size: 10,
        seed: 1,
    };
    assert!(
        heuristic_independent(&a, &b),
        "the legacy heuristic sees two distinct paths"
    );
    let pool: Vec<FsOp> = prefix
        .iter()
        .cloned()
        .chain([a.clone(), b.clone()])
        .collect();
    let profile = EffectProfile::from_pool(&pool);
    match mcfs::effect::explain(&a, &b, &profile) {
        Independence::Dependent(c) => assert!(c.aliased, "conflict is via the alias class: {c:?}"),
        Independence::Independent => panic!("derived relation must flag the aliased pair"),
    }
    for fresh in [
        &fresh_verifs as &dyn Fn() -> VfsResult<Box<dyn FileSystem>>,
        &fresh_ext2,
    ] {
        let ab: Vec<&FsOp> = prefix.iter().chain([&a, &b]).collect();
        let ba: Vec<&FsOp> = prefix.iter().chain([&b, &a]).collect();
        assert_ne!(
            final_state(fresh, &ab),
            final_state(fresh, &ba),
            "truncate/write through aliased names must not commute"
        );
    }
}

/// Satellite regression: the derived profile knows fusesim-wrapped targets
/// cache metadata in the kernel layer, so cache-filling reads are kernel
/// writes — `stat` no longer commutes with a same-path `unlink` there,
/// while on bare VeriFS (no kernel layer) the pair stays independent.
#[test]
fn fuse_wrapped_harness_orders_cache_filling_reads() {
    let stat = FsOp::Stat { path: "/f0".into() };
    let unlink = FsOp::Unlink { path: "/f0".into() };
    let cfg = || McfsConfig {
        pool: PoolConfig::small(),
        ..McfsConfig::default()
    };

    let bare = Mcfs::new(
        vec![
            Box::new(CheckpointTarget::new(mounted_verifs())),
            Box::new(CheckpointTarget::new(mounted_verifs())),
        ],
        cfg(),
    )
    .unwrap();
    assert!(
        bare.independent(&stat, &unlink),
        "no kernel layer: a pure read commutes with a mutation state-wise"
    );

    let fused = Mcfs::new(
        vec![
            Box::new(CheckpointTarget::new(mounted_fuse())),
            Box::new(CheckpointTarget::new(mounted_fuse())),
        ],
        cfg(),
    )
    .unwrap();
    assert!(
        !fused.independent(&stat, &unlink),
        "fusesim caches attrs/dentries: the cache fill must be ordered \
         against the eviction"
    );
    // The legacy heuristic never modeled kernel caches at all.
    assert!(heuristic_independent(&stat, &unlink));
}

fn mounted_verifs() -> VeriFs {
    let mut fs = VeriFs::v2();
    fs.mount().unwrap();
    fs
}

fn mounted_fuse() -> fusesim::FuseMount<VeriFs> {
    let mut m = fusesim::FuseMount::new(VeriFs::v2());
    m.mount().unwrap();
    m
}

/// Audit for the interleaving checker: ops whose signatures are sound for
/// *sequential* reorder — both orders reach the same abstract state, so the
/// sequential relation rightly calls them independent — but unsound as a
/// concurrency independence relation, because the op's own observable
/// result depends on the schedule. Each case is demonstrated by execution,
/// not trusted.
#[test]
fn sequential_independence_is_not_concurrency_independence() {
    let prefix = [
        FsOp::CreateFile {
            path: "/f0".into(),
            mode: 0o644,
        },
        FsOp::WriteFile {
            path: "/f0".into(),
            offset: 0,
            size: 10,
            seed: 1,
        },
    ];
    let stat = FsOp::Stat { path: "/f0".into() };
    let trunc = FsOp::Truncate {
        path: "/f0".into(),
        size: 5,
    };
    let create = FsOp::CreateFile {
        path: "/race".into(),
        mode: 0o644,
    };
    let pool: Vec<FsOp> = prefix
        .iter()
        .cloned()
        .chain([stat.clone(), trunc.clone(), create.clone()])
        .collect();
    let profile = EffectProfile::from_pool(&pool);

    // Case 1 — the pure-read shortcut. Stat/truncate commute as a state
    // pair, but stat's result (the size) is decided by the order.
    assert!(independent(&stat, &trunc, &profile));
    assert!(
        !independent_concurrent(&stat, &trunc, &profile),
        "a read of a place another thread writes is order-sensitive"
    );
    for fresh in [
        &fresh_verifs as &dyn Fn() -> VfsResult<Box<dyn FileSystem>>,
        &fresh_ext2,
    ] {
        let ab: Vec<&FsOp> = prefix.iter().chain([&stat, &trunc]).collect();
        let ba: Vec<&FsOp> = prefix.iter().chain([&trunc, &stat]).collect();
        assert_eq!(
            final_state(fresh, &ab),
            final_state(fresh, &ba),
            "the sequential relation is right about the state"
        );
        let mut fs = fresh().expect("backend");
        for op in &prefix {
            let _ = execute(fs.as_mut(), op, &[]);
        }
        let before = execute(fs.as_mut(), &stat, &[]);
        let _ = execute(fs.as_mut(), &trunc, &[]);
        let after = execute(fs.as_mut(), &stat, &[]);
        assert_ne!(before, after, "but the stat's own result is not");
    }

    // Case 2 — the identical-op shortcut. Two threads racing the same
    // create reach the same state either way, but the schedule decides
    // who sees Ok and who sees EEXIST.
    assert!(independent(&create, &create, &profile));
    assert!(
        !independent_concurrent(&create, &create, &profile),
        "identical ops on two threads race for their result"
    );
    let mut fs = fresh_verifs().expect("backend");
    let first = execute(fs.as_mut(), &create, &[]);
    let second = execute(fs.as_mut(), &create, &[]);
    assert_ne!(first, second, "the op's result depends on its position");
}
