//! Rename errno parity across every backend.
//!
//! POSIX pins the interesting rename failures precisely — moving a
//! directory into its own descendant is `EINVAL`, renaming over a
//! non-empty directory is `ENOTEMPTY`, and mismatched kinds are
//! `EISDIR`/`ENOTDIR` — and MCFS's cross-checking only works if every
//! backend agrees on both the errno *and* the order the conditions are
//! checked in. These tests run the directed cases and randomized rename
//! workloads over ext2, ext4, XFS, JFFS2, and VeriFS2 and require
//! identical outcomes everywhere.

use proptest::prelude::*;
use verifs::VeriFs;
use vfs::{Errno, FileMode, FileSystem};

fn backends() -> Vec<(&'static str, Box<dyn FileSystem>)> {
    let mut ext2 = fs_ext::ext2_on_ram(256 * 1024).unwrap();
    ext2.mount().unwrap();
    let mut ext4 = fs_ext::ext4_on_ram(256 * 1024).unwrap();
    ext4.mount().unwrap();
    let mut xfs = fs_xfs::xfs_on_ram(fs_xfs::MIN_DEVICE_BYTES).unwrap();
    xfs.mount().unwrap();
    let mut jffs2 = fs_jffs2::jffs2_on_mtdram(16 * 1024, 16).unwrap();
    jffs2.mount().unwrap();
    let mut verifs2 = VeriFs::v2();
    verifs2.mount().unwrap();
    vec![
        ("ext2", Box::new(ext2) as Box<dyn FileSystem>),
        ("ext4", Box::new(ext4)),
        ("xfs", Box::new(xfs)),
        ("jffs2", Box::new(jffs2)),
        ("verifs2", Box::new(verifs2)),
    ]
}

fn create(fs: &mut dyn FileSystem, p: &str) {
    let fd = fs.create(p, FileMode::REG_DEFAULT).unwrap();
    fs.close(fd).unwrap();
}

#[test]
fn rename_dir_into_own_descendant_is_einval_everywhere() {
    for (name, mut fs) in backends() {
        fs.mkdir("/d", FileMode::DIR_DEFAULT).unwrap();
        fs.mkdir("/d/sub", FileMode::DIR_DEFAULT).unwrap();
        assert_eq!(
            fs.rename("/d", "/d/sub"),
            Err(Errno::EINVAL),
            "{name}: dir onto own child"
        );
        assert_eq!(
            fs.rename("/d", "/d/sub/deeper"),
            Err(Errno::EINVAL),
            "{name}: dir into own grandchild"
        );
        // The descendant check must also win over the destination lookup:
        // a nonexistent path under the source is still EINVAL, not ENOENT.
        assert_eq!(
            fs.rename("/d", "/d/missing/x"),
            Err(Errno::EINVAL),
            "{name}: descendant check precedes destination resolution"
        );
        // Self-rename is a POSIX no-op, not EINVAL.
        assert_eq!(fs.rename("/d", "/d"), Ok(()), "{name}: self-rename");
    }
}

#[test]
fn rename_over_non_empty_dir_is_enotempty_everywhere() {
    for (name, mut fs) in backends() {
        fs.mkdir("/a", FileMode::DIR_DEFAULT).unwrap();
        fs.mkdir("/b", FileMode::DIR_DEFAULT).unwrap();
        create(fs.as_mut(), "/b/occupant");
        assert_eq!(
            fs.rename("/a", "/b"),
            Err(Errno::ENOTEMPTY),
            "{name}: dir onto non-empty dir"
        );
        // Emptying the target makes the same rename legal.
        fs.unlink("/b/occupant").unwrap();
        assert_eq!(fs.rename("/a", "/b"), Ok(()), "{name}: dir onto empty dir");
        assert!(fs.stat("/a").is_err(), "{name}: source gone after rename");
    }
}

#[test]
fn rename_kind_mismatches_agree_everywhere() {
    for (name, mut fs) in backends() {
        fs.mkdir("/dir", FileMode::DIR_DEFAULT).unwrap();
        create(fs.as_mut(), "/file");
        assert_eq!(
            fs.rename("/file", "/dir"),
            Err(Errno::EISDIR),
            "{name}: file onto dir"
        );
        assert_eq!(
            fs.rename("/dir", "/file"),
            Err(Errno::ENOTDIR),
            "{name}: dir onto file"
        );
        assert_eq!(
            fs.rename("/missing", "/file"),
            Err(Errno::ENOENT),
            "{name}: missing source"
        );
    }
}

/// One randomized rename-workload step.
#[derive(Debug, Clone)]
enum Step {
    Mkdir(&'static str),
    Create(&'static str),
    Unlink(&'static str),
    Rmdir(&'static str),
    Rename(&'static str, &'static str),
}

/// Paths chosen so renames can hit every interesting shape: nesting,
/// descendants, occupied and empty targets.
const PATHS: [&str; 6] = ["/a", "/b", "/a/c", "/a/c/d", "/b/e", "/a/f"];

fn step_strategy() -> impl Strategy<Value = Step> {
    let path = 0..PATHS.len();
    prop_oneof![
        path.clone().prop_map(|i| Step::Mkdir(PATHS[i])),
        path.clone().prop_map(|i| Step::Create(PATHS[i])),
        path.clone().prop_map(|i| Step::Unlink(PATHS[i])),
        path.clone().prop_map(|i| Step::Rmdir(PATHS[i])),
        (path.clone(), path).prop_map(|(i, j)| Step::Rename(PATHS[i], PATHS[j])),
    ]
}

fn apply(fs: &mut dyn FileSystem, step: &Step) -> Result<(), Errno> {
    match step {
        Step::Mkdir(p) => fs.mkdir(p, FileMode::DIR_DEFAULT),
        Step::Create(p) => fs
            .create(p, FileMode::REG_DEFAULT)
            .and_then(|fd| fs.close(fd)),
        Step::Unlink(p) => fs.unlink(p),
        Step::Rmdir(p) => fs.rmdir(p),
        Step::Rename(s, d) => fs.rename(s, d),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Every backend returns the same outcome for every step of a random
    /// namespace workload — rename errnos included.
    #[test]
    fn random_rename_workloads_agree_across_backends(
        steps in prop::collection::vec(step_strategy(), 1..24),
    ) {
        let mut fleet = backends();
        for (i, step) in steps.iter().enumerate() {
            let (ref_name, ref_fs) = &mut fleet[0];
            let expected = apply(ref_fs.as_mut(), step);
            let ref_name = *ref_name;
            for (name, fs) in &mut fleet[1..] {
                let got = apply(fs.as_mut(), step);
                prop_assert_eq!(
                    got,
                    expected,
                    "step {} {:?}: {} disagrees with {}",
                    i,
                    step,
                    name,
                    ref_name
                );
            }
        }
    }
}
