//! Out-of-core exploration must be *behaviorally invisible*: a run whose
//! visited set, frontier, and checkpoint pool spill to disk under a tiny
//! RAM budget has to classify exactly the states an unbudgeted run does —
//! same fingerprints, same (minimal) depths — and a budgeted run that is
//! killed and resumed from its pickled snapshot has to converge on that
//! same set. Disk failures must never be absorbed: an injected EIO or torn
//! page write has to stop the checker loudly with a spill error, because a
//! silently dropped visited entry would turn "verified exhaustively" into
//! a lie.

use blockdev::{Clock, LatencyModel, RamDisk, TimedDevice};
use fs_ext::{ExtConfig, ExtFs};
use fusesim::FuseMount;
use mcfs::{
    CheckedTarget, CheckpointTarget, FsOp, FsOpCodec, Mcfs, McfsConfig, PoolConfig, RemountMode,
    RemountTarget,
};
use modelcheck::{
    load_snapshot, run_swarm_persistent, DfsExplorer, ExploreConfig, MemBudget, RunSnapshot,
    SpillFaults, StopReason, SwarmConfig, SwarmPersist, SwarmReport, WorkerStrategy,
};
use proptest::prelude::*;
use verifs::VeriFs;

// ---------------------------------------------------------------------------
// Harness builders (mirroring tests/swarm_resume.rs)
// ---------------------------------------------------------------------------

fn verifs_harness(_worker: usize) -> Mcfs {
    let clock = Clock::new();
    let wrap = |fs: VeriFs| -> Box<dyn CheckedTarget> {
        let mut mount =
            FuseMount::with_config(fs, fusesim::FuseConfig::default(), Some(clock.clone()));
        let conn = mount.connection();
        mount
            .daemon_mut()
            .fs_mut()
            .set_invalidation_sink(std::sync::Arc::new(conn));
        Box::new(CheckpointTarget::new(mount))
    };
    let targets = vec![wrap(VeriFs::v1()), wrap(VeriFs::v2())];
    Mcfs::with_clock(
        targets,
        McfsConfig {
            pool: PoolConfig::small(),
            ..McfsConfig::default()
        },
        clock,
    )
    .expect("verifs harness")
}

fn ext_harness(_worker: usize) -> Mcfs {
    let clock = Clock::new();
    let target = |cfg: ExtConfig| -> Box<dyn CheckedTarget> {
        let disk = RamDisk::new(cfg.block_size, 256 * 1024).unwrap();
        let dev = TimedDevice::new(disk, LatencyModel::ram(), clock.clone());
        let fs = ExtFs::format(dev, cfg).unwrap();
        Box::new(RemountTarget::new(fs, RemountMode::PerOp).with_clock(clock.clone()))
    };
    let targets = vec![target(ExtConfig::ext2()), target(ExtConfig::ext4())];
    Mcfs::with_clock(
        targets,
        McfsConfig {
            pool: PoolConfig::small(),
            ..McfsConfig::default()
        },
        clock,
    )
    .expect("ext harness")
}

/// A budget small enough that every run here overflows it many times over:
/// the visited hot cache holds a couple dozen entries and the frontier hot
/// tier a handful of prefixes.
fn tiny_budget() -> MemBudget {
    let mut b = MemBudget::new(1024);
    b.shards = 4;
    b.frontier_hot_bytes = 256;
    b
}

fn swarm_cfg(max_ops: u64, seed: u64, budget: Option<MemBudget>) -> SwarmConfig {
    SwarmConfig {
        workers: 2,
        base: ExploreConfig {
            max_depth: 3,
            max_ops,
            seed,
            mem_budget: budget,
            ..ExploreConfig::default()
        },
        shared_visited: true,
        strategies: vec![WorkerStrategy::Dfs],
    }
}

fn snap_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("mcfs-oocore-{name}-{}.pickle", std::process::id()))
}

fn run_to_snapshot(
    factory: fn(usize) -> Mcfs,
    cfg: &SwarmConfig,
    path: &std::path::Path,
    resume: Option<RunSnapshot<FsOp>>,
) -> SwarmReport<FsOp> {
    let report = run_swarm_persistent(
        cfg,
        factory,
        SwarmPersist {
            codec: &FsOpCodec,
            snapshot_path: Some(path.to_path_buf()),
            snapshot_every: 0,
            resume,
        },
    );
    assert!(
        report.persist_error.is_none(),
        "snapshot write failed: {:?}",
        report.persist_error
    );
    report
}

// ---------------------------------------------------------------------------
// Budgeted == unbudgeted, state for state
// ---------------------------------------------------------------------------

/// Exhaustive runs with and without the tiny budget classify the identical
/// `(fingerprint, depth)` set. Exhaustiveness makes the comparison exact:
/// every run records each state at its minimal discovery depth, whatever
/// order the workers found it in, so the canonical sorted exports must be
/// byte-for-byte equal — any entry the spill path lost or corrupted shows
/// up as a diff.
fn check_budget_equality(factory: fn(usize) -> Mcfs, name: &str, seed: u64) {
    let ram_path = snap_path(&format!("{name}-ram-{seed}"));
    let spill_path = snap_path(&format!("{name}-spill-{seed}"));
    run_to_snapshot(factory, &swarm_cfg(u64::MAX, seed, None), &ram_path, None);
    let report = run_to_snapshot(
        factory,
        &swarm_cfg(u64::MAX, seed, Some(tiny_budget())),
        &spill_path,
        None,
    );

    let spill = report.spill.expect("budgeted run reports spill counters");
    assert!(
        spill.pages_written > 0 && spill.evictions > 0,
        "{name}: the tiny budget must actually force spilling (got {spill:?})"
    );

    let ram = load_snapshot(&ram_path, &FsOpCodec).expect("ram snapshot");
    let spilled = load_snapshot(&spill_path, &FsOpCodec).expect("spill snapshot");
    assert!(!ram.visited.is_empty());
    assert_eq!(
        spilled.visited, ram.visited,
        "{name}: spilling changed the explored state set"
    );
    let _ = std::fs::remove_file(&ram_path);
    let _ = std::fs::remove_file(&spill_path);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn budgeted_run_visits_identical_states_verifs(seed in 0u64..1000) {
        check_budget_equality(verifs_harness, "eq-verifs", seed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    #[test]
    fn budgeted_run_visits_identical_states_ext(seed in 0u64..1000) {
        check_budget_equality(ext_harness, "eq-ext", seed);
    }
}

// ---------------------------------------------------------------------------
// Kill-and-resume with spilled pages
// ---------------------------------------------------------------------------

/// A budgeted run cut mid-flight leaves a snapshot whose visited entries
/// were streamed out of spilled pages; resuming it must converge on the
/// same final state set as an uninterrupted budgeted run.
#[test]
fn kill_and_resume_with_spilled_pages_converges() {
    // Tighter than [`tiny_budget`]: the interrupted phase alone must
    // overflow the hot tier so the snapshot is streamed out of spilled
    // pages, not just the in-RAM remainder.
    let budget = || {
        let mut b = MemBudget::new(256);
        b.shards = 2;
        b.frontier_hot_bytes = 256;
        Some(b)
    };
    let control_path = snap_path("resume-control");
    let control = run_to_snapshot(
        verifs_harness,
        &swarm_cfg(u64::MAX, 29, budget()),
        &control_path,
        None,
    );
    let control_snap = load_snapshot(&control_path, &FsOpCodec).expect("control snapshot");
    assert!(control_snap.frontier.is_empty(), "control must exhaust");

    let path = snap_path("resume-cut");
    let cut = (control.total_ops() * 3 / 4).max(10);
    let interrupted = run_to_snapshot(verifs_harness, &swarm_cfg(cut, 29, budget()), &path, None);
    assert!(
        interrupted.spill.expect("spill counters").pages_written > 0,
        "the interrupted run must have spilled pages for resume to reload"
    );
    let snap = load_snapshot(&path, &FsOpCodec).expect("snapshot loads");
    let _ = run_to_snapshot(
        verifs_harness,
        &swarm_cfg(u64::MAX, 29, budget()),
        &path,
        Some(snap),
    );
    let final_snap = load_snapshot(&path, &FsOpCodec).expect("final snapshot");
    assert_eq!(
        final_snap.visited, control_snap.visited,
        "resumed budgeted run diverges from the uninterrupted one"
    );
    let _ = std::fs::remove_file(&control_path);
    let _ = std::fs::remove_file(&path);
}

// ---------------------------------------------------------------------------
// Fault injection: disk failures stop the checker loudly
// ---------------------------------------------------------------------------

fn faulty_budget(faults: SpillFaults) -> MemBudget {
    let mut b = tiny_budget();
    b.faults = faults;
    b
}

fn dfs_with_faults(faults: SpillFaults) -> StopReason {
    let mut sys = verifs_harness(0);
    let explorer = DfsExplorer::new(ExploreConfig {
        max_depth: 3,
        max_ops: 4_000,
        seed: 7,
        mem_budget: Some(faulty_budget(faults)),
        ..ExploreConfig::default()
    });
    explorer.run(&mut sys).stop
}

/// An injected EIO on the first spill-page write must surface as a fatal,
/// spill-attributed stop — not as a quietly smaller state count.
#[test]
fn write_eio_fails_the_run_loudly() {
    let stop = dfs_with_faults(SpillFaults {
        fail_write_at: Some(0),
        ..SpillFaults::default()
    });
    match stop {
        StopReason::Fatal(msg) => assert!(
            msg.contains("spill") && msg.contains("injected"),
            "error must name the spill layer and the injected fault: {msg}"
        ),
        other => panic!("EIO on spill write was swallowed; run stopped with {other:?}"),
    }
}

/// An injected EIO on the first page read-back (a cold-probe of a spilled
/// visited entry) must likewise stop the run fatally.
#[test]
fn read_eio_fails_the_run_loudly() {
    let stop = dfs_with_faults(SpillFaults {
        fail_read_at: Some(0),
        ..SpillFaults::default()
    });
    match stop {
        StopReason::Fatal(msg) => assert!(
            msg.contains("spill"),
            "error must name the spill layer: {msg}"
        ),
        other => panic!("EIO on spill read was swallowed; run stopped with {other:?}"),
    }
}

/// A torn page write (half the frame hits the file, recorded as complete)
/// must be caught by the page checksum at read-back and stop the run.
#[test]
fn torn_write_is_caught_by_the_page_checksum() {
    let stop = dfs_with_faults(SpillFaults {
        torn_write_at: Some(0),
        ..SpillFaults::default()
    });
    match stop {
        StopReason::Fatal(msg) => assert!(
            msg.contains("spill"),
            "error must name the spill layer: {msg}"
        ),
        other => panic!("torn spill write was swallowed; run stopped with {other:?}"),
    }
}
