//! Invariants of the paper's checkpoint/restore API (§5) across the stack:
//! bare VeriFS, VeriFS behind FUSE, and the strategy layer the checker uses.

use blockdev::Clock;
use mcfs::{
    abstract_state, AbstractionConfig, CheckedTarget, CheckpointTarget, RemountMode, RemountTarget,
};
use verifs::VeriFs;
use vfs::{Errno, FileMode, FileSystem, FsCheckpoint, OpenFlags};

fn mutate(fs: &mut dyn FileSystem, tag: u8) {
    let path = format!("/mut{tag}");
    let fd = fs
        .open(
            &path,
            OpenFlags::write_only().with_create(),
            FileMode::REG_DEFAULT,
        )
        .unwrap();
    fs.write(fd, &[tag; 64]).unwrap();
    fs.close(fd).unwrap();
}

fn hash(fs: &mut dyn FileSystem) -> u128 {
    abstract_state(fs, &AbstractionConfig::default())
        .unwrap()
        .as_u128()
}

#[test]
fn restore_recovers_exact_abstract_state() {
    let mut fs = VeriFs::v2();
    fs.mount().unwrap();
    mutate(&mut fs, 1);
    let h1 = hash(&mut fs);
    fs.checkpoint(10).unwrap();
    mutate(&mut fs, 2);
    let h2 = hash(&mut fs);
    assert_ne!(h1, h2);
    fs.restore_keep(10).unwrap();
    assert_eq!(hash(&mut fs), h1, "restore must be exact");
    // Forward again, restore again: idempotent.
    mutate(&mut fs, 3);
    fs.restore_keep(10).unwrap();
    assert_eq!(hash(&mut fs), h1);
}

#[test]
fn nested_checkpoints_restore_in_any_order() {
    let mut fs = VeriFs::v2();
    fs.mount().unwrap();
    let mut hashes = Vec::new();
    for i in 0..5u8 {
        mutate(&mut fs, i);
        fs.checkpoint(i as u64).unwrap();
        hashes.push(hash(&mut fs));
    }
    // Jump around arbitrarily.
    for &i in &[2usize, 0, 4, 1, 3, 0, 4] {
        fs.restore_keep(i as u64).unwrap();
        assert_eq!(hash(&mut fs), hashes[i], "snapshot {i}");
    }
}

#[test]
fn paper_semantics_restore_discards() {
    let mut fs = VeriFs::v1();
    fs.mount().unwrap();
    fs.checkpoint(1).unwrap();
    assert_eq!(fs.snapshot_count(), 1);
    fs.restore(1).unwrap();
    assert_eq!(fs.snapshot_count(), 0);
    assert_eq!(fs.restore(1).unwrap_err(), Errno::ENOENT);
}

#[test]
fn snapshot_pool_accounting_is_consistent() {
    let mut fs = VeriFs::v2();
    fs.mount().unwrap();
    assert_eq!(fs.snapshot_bytes(), 0);
    mutate(&mut fs, 1);
    fs.checkpoint(1).unwrap();
    let one = fs.snapshot_bytes();
    assert!(one > 0);
    mutate(&mut fs, 2);
    fs.checkpoint(2).unwrap();
    assert!(fs.snapshot_bytes() > one);
    // Replacing a key must not leak accounting.
    fs.checkpoint(1).unwrap();
    let replaced = fs.snapshot_bytes();
    fs.discard(1).unwrap();
    fs.discard(2).unwrap();
    assert_eq!(fs.snapshot_bytes(), 0, "pool bytes must return to zero");
    assert!(replaced > 0);
}

#[test]
fn checkpoint_travels_the_fuse_channel() {
    let mut m = fusesim::FuseMount::new(VeriFs::v2());
    let conn = m.connection();
    m.daemon_mut()
        .fs_mut()
        .set_invalidation_sink(std::sync::Arc::new(conn));
    m.mount().unwrap();
    mutate(&mut m, 9);
    let before = m.daemon().traffic().count(fusesim::FuseOpKind::Ioctl);
    m.checkpoint(7).unwrap();
    m.restore_keep(7).unwrap();
    m.discard(7).unwrap();
    assert_eq!(
        m.daemon().traffic().count(fusesim::FuseOpKind::Ioctl),
        before + 3,
        "checkpoint/restore/discard are ioctls over /dev/fuse"
    );
}

#[test]
fn restore_through_fuse_invalidates_kernel_caches() {
    let mut m = fusesim::FuseMount::new(VeriFs::v2());
    let conn = m.connection();
    m.daemon_mut()
        .fs_mut()
        .set_invalidation_sink(std::sync::Arc::new(conn));
    m.mount().unwrap();
    m.checkpoint(1).unwrap();
    m.mkdir("/later", FileMode::DIR_DEFAULT).unwrap();
    assert!(m.dentry_cache_len() > 0);
    let invalidations_before = m.invalidation_count();
    m.restore_keep(1).unwrap();
    assert!(
        m.invalidation_count() > invalidations_before,
        "restore must invalidate kernel caches"
    );
    assert_eq!(m.stat("/later").unwrap_err(), Errno::ENOENT);
}

#[test]
fn strategy_layer_roundtrips_for_both_kinds() {
    // Checkpoint-API strategy (VeriFS).
    let mut fs = VeriFs::v2();
    fs.mount().unwrap();
    let mut api = CheckpointTarget::new(fs);
    let bytes_api = api.save_state(1).unwrap();
    assert!(bytes_api > 0);
    mutate(api.fs_mut(), 5);
    api.load_state(1).unwrap();
    assert_eq!(api.fs_mut().stat("/mut5").unwrap_err(), Errno::ENOENT);

    // Device-snapshot strategy (ext4).
    let e4 = fs_ext::ext4_on_ram(256 * 1024).unwrap();
    let mut dev = RemountTarget::new(e4, RemountMode::PerOp).with_clock(Clock::new());
    dev.pre_op().unwrap();
    let bytes_dev = dev.save_state(1).unwrap();
    assert_eq!(
        bytes_dev,
        256 * 1024,
        "device strategy stores the full image"
    );
    mutate(dev.fs_mut(), 6);
    dev.post_op().unwrap();
    dev.load_state(1).unwrap();
    dev.pre_op().unwrap();
    assert_eq!(dev.fs_mut().stat("/mut6").unwrap_err(), Errno::ENOENT);
}

#[test]
fn unknown_keys_error_uniformly() {
    let mut fs = VeriFs::v2();
    fs.mount().unwrap();
    assert_eq!(fs.restore_keep(99).unwrap_err(), Errno::ENOENT);
    assert_eq!(fs.discard(99).unwrap_err(), Errno::ENOENT);
    let e4 = fs_ext::ext4_on_ram(256 * 1024).unwrap();
    let mut dev = RemountTarget::new(e4, RemountMode::PerOp);
    assert_eq!(dev.load_state(99).unwrap_err(), Errno::ENOENT);
    assert_eq!(dev.drop_state(99).unwrap_err(), Errno::ENOENT);
}
