//! Property-based tests over the core invariants.
//!
//! The central property is MCFS's own premise turned into a proptest: for
//! *any* sequence of pool operations, two independent file-system
//! implementations produce identical outcomes and identical abstract states.
//! Additional properties cover checkpoint/restore round-trips, device
//! snapshot semantics, and MD5's incremental-equals-oneshot law.

use proptest::prelude::*;

use mcfs::{abstract_state, execute, AbstractionConfig, FsOp};
use verifs::VeriFs;
use vfs::{FileSystem, FsCheckpoint};

/// Strategy: one operation over a tiny bounded namespace.
fn arb_op() -> impl Strategy<Value = FsOp> {
    let path = prop_oneof![
        Just("/a".to_string()),
        Just("/b".to_string()),
        Just("/d".to_string()),
        Just("/d/c".to_string()),
    ];
    let size = prop_oneof![Just(0u64), Just(1), Just(65), Just(200)];
    let offset = prop_oneof![Just(0u64), Just(10), Just(100)];
    prop_oneof![
        path.clone().prop_map(|p| FsOp::CreateFile {
            path: p,
            mode: 0o644
        }),
        (path.clone(), offset.clone(), size.clone(), 0u8..4).prop_map(|(p, offset, size, seed)| {
            FsOp::WriteFile {
                path: p,
                offset,
                size,
                seed,
            }
        }),
        (path.clone(), size.clone()).prop_map(|(p, size)| FsOp::Truncate { path: p, size }),
        path.clone().prop_map(|p| FsOp::Mkdir {
            path: p,
            mode: 0o755
        }),
        path.clone().prop_map(|p| FsOp::Rmdir { path: p }),
        path.clone().prop_map(|p| FsOp::Unlink { path: p }),
        (path.clone(), path.clone()).prop_map(|(a, b)| FsOp::Rename { src: a, dst: b }),
        (path.clone(), path.clone()).prop_map(|(a, b)| FsOp::Hardlink { src: a, dst: b }),
        (path.clone(), offset.clone(), size).prop_map(|(p, offset, size)| FsOp::ReadFile {
            path: p,
            offset,
            size: size.max(8),
        }),
        path.clone().prop_map(|p| FsOp::Stat { path: p }),
        path.clone().prop_map(|p| FsOp::Getdents { path: p }),
        (path, 0u8..3).prop_map(|(p, i)| FsOp::Chmod {
            path: p,
            mode: [0o644, 0o400, 0o755][i as usize],
        }),
    ]
}

fn mounted_verifs2() -> VeriFs {
    let mut fs = VeriFs::v2();
    fs.mount().unwrap();
    fs
}

fn mounted_ext4() -> fs_ext::ExtFs<blockdev::RamDisk> {
    let mut fs = fs_ext::ext4_on_ram(256 * 1024).unwrap();
    fs.mount().unwrap();
    fs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The MCFS premise: VeriFS2 and ext4 agree on every outcome and every
    /// abstract state for arbitrary op sequences.
    #[test]
    fn verifs_and_ext4_agree_on_arbitrary_sequences(ops in prop::collection::vec(arb_op(), 1..25)) {
        let mut a = mounted_verifs2();
        let mut b = mounted_ext4();
        let exceptions = vec!["lost+found".to_string()];
        let cfg = AbstractionConfig::default();
        for (i, op) in ops.iter().enumerate() {
            let oa = execute(&mut a, op, &exceptions);
            let ob = execute(&mut b, op, &exceptions);
            prop_assert_eq!(&oa, &ob, "outcome diverged at step {} on {}", i, op);
            let ha = abstract_state(&mut a, &cfg).unwrap();
            let hb = abstract_state(&mut b, &cfg).unwrap();
            prop_assert_eq!(ha, hb, "state diverged at step {} on {}", i, op);
        }
    }

    /// Checkpoint/restore is an exact inverse for arbitrary mutation
    /// sequences.
    #[test]
    fn checkpoint_restore_roundtrip_holds(
        before in prop::collection::vec(arb_op(), 0..12),
        after in prop::collection::vec(arb_op(), 1..12),
    ) {
        let mut fs = mounted_verifs2();
        let cfg = AbstractionConfig::default();
        for op in &before {
            execute(&mut fs, op, &[]);
        }
        let h0 = abstract_state(&mut fs, &cfg).unwrap();
        fs.checkpoint(1).unwrap();
        for op in &after {
            execute(&mut fs, op, &[]);
        }
        fs.restore_keep(1).unwrap();
        prop_assert_eq!(abstract_state(&mut fs, &cfg).unwrap(), h0);
    }

    /// Device snapshot/restore is an exact inverse at the block level.
    #[test]
    fn device_snapshot_roundtrip(writes in prop::collection::vec((0u64..64, 0u8..=255), 1..20)) {
        use blockdev::BlockDevice;
        let mut dev = blockdev::RamDisk::new(64, 64 * 64).unwrap();
        for (blk, fill) in &writes[..writes.len() / 2 + 1] {
            dev.write_block(*blk, &[*fill; 64]).unwrap();
        }
        let snap = dev.snapshot().unwrap();
        for (blk, fill) in &writes {
            dev.write_block(*blk, &[fill.wrapping_add(1); 64]).unwrap();
        }
        dev.restore(&snap).unwrap();
        let mut now = blockdev::RamDisk::new(64, 64 * 64).unwrap();
        for (blk, fill) in &writes[..writes.len() / 2 + 1] {
            now.write_block(*blk, &[*fill; 64]).unwrap();
        }
        for blk in 0..64u64 {
            let mut a = vec![0u8; 64];
            let mut b = vec![0u8; 64];
            dev.read_block(blk, &mut a).unwrap();
            now.read_block(blk, &mut b).unwrap();
            prop_assert_eq!(a, b, "block {}", blk);
        }
    }

    /// MD5 streaming equals one-shot for arbitrary splits.
    #[test]
    fn md5_incremental_equals_oneshot(data in prop::collection::vec(any::<u8>(), 0..4096), split in 0usize..4096) {
        let split = split.min(data.len());
        let mut ctx = mdigest::Md5::new();
        ctx.update(&data[..split]);
        ctx.update(&data[split..]);
        prop_assert_eq!(ctx.finalize(), mdigest::md5(&data));
    }

    /// The abstraction function is deterministic and insensitive to atime
    /// noise for arbitrary states.
    #[test]
    fn abstraction_is_stable_under_reads(ops in prop::collection::vec(arb_op(), 1..15)) {
        let mut fs = mounted_verifs2();
        for op in &ops {
            execute(&mut fs, op, &[]);
        }
        let cfg = AbstractionConfig::default();
        let h1 = abstract_state(&mut fs, &cfg).unwrap();
        // Hashing traverses and reads (bumping atimes); a second pass must
        // still agree.
        let h2 = abstract_state(&mut fs, &cfg).unwrap();
        prop_assert_eq!(h1, h2);
    }

    /// Path validation never panics and classifies deterministically.
    #[test]
    fn path_validation_total(s in "\\PC*") {
        let _ = vfs::path::validate(&s);
        if vfs::path::validate(&s).is_ok() && s != "/" {
            // Valid paths always split and rejoin losslessly.
            let (parent, name) = vfs::path::split_parent(&s).unwrap();
            prop_assert_eq!(vfs::path::join(&parent, name), s);
        }
    }
}

fn mounted_xfs() -> fs_xfs::XfsFs<blockdev::RamDisk> {
    let mut fs = fs_xfs::xfs_on_ram(fs_xfs::MIN_DEVICE_BYTES).unwrap();
    fs.mount().unwrap();
    fs
}

fn mounted_jffs2() -> fs_jffs2::Jffs2Fs {
    let mut fs = fs_jffs2::jffs2_on_mtdram(16 * 1024, 64).unwrap();
    fs.mount().unwrap();
    fs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The MCFS property across very different architectures: the
    /// extent-based XFS agrees with the in-memory VeriFS2.
    #[test]
    fn verifs_and_xfs_agree_on_arbitrary_sequences(ops in prop::collection::vec(arb_op(), 1..20)) {
        let mut a = mounted_verifs2();
        let mut b = mounted_xfs();
        let cfg = AbstractionConfig::default();
        for (i, op) in ops.iter().enumerate() {
            let oa = execute(&mut a, op, &[]);
            let ob = execute(&mut b, op, &[]);
            prop_assert_eq!(&oa, &ob, "outcome diverged at step {} on {}", i, op);
            let ha = abstract_state(&mut a, &cfg).unwrap();
            let hb = abstract_state(&mut b, &cfg).unwrap();
            prop_assert_eq!(ha, hb, "state diverged at step {} on {}", i, op);
        }
    }

    /// And the log-structured JFFS2 agrees too — including across a
    /// crash-remount (full rescan) at the end of every sequence.
    #[test]
    fn verifs_and_jffs2_agree_including_rescan(ops in prop::collection::vec(arb_op(), 1..16)) {
        let mut a = mounted_verifs2();
        let mut b = mounted_jffs2();
        let cfg = AbstractionConfig::default();
        for (i, op) in ops.iter().enumerate() {
            let oa = execute(&mut a, op, &[]);
            let ob = execute(&mut b, op, &[]);
            prop_assert_eq!(&oa, &ob, "outcome diverged at step {} on {}", i, op);
        }
        // Remount JFFS2 (full flash rescan) and compare final states.
        b.unmount().unwrap();
        b.mount().unwrap();
        let ha = abstract_state(&mut a, &cfg).unwrap();
        let hb = abstract_state(&mut b, &cfg).unwrap();
        prop_assert_eq!(ha, hb, "state diverged after rescan");
    }

    /// Ext2 survives arbitrary remount points with no state change.
    #[test]
    fn ext2_state_is_remount_invariant(
        ops in prop::collection::vec(arb_op(), 1..15),
        remount_at in 0usize..15,
    ) {
        let mut fs = mounted_ext4();
        let cfg = AbstractionConfig::default();
        for (i, op) in ops.iter().enumerate() {
            execute(&mut fs, op, &["lost+found".to_string()]);
            if i == remount_at.min(ops.len() - 1) {
                let before = abstract_state(&mut fs, &cfg).unwrap();
                fs.unmount().unwrap();
                fs.mount().unwrap();
                let after = abstract_state(&mut fs, &cfg).unwrap();
                prop_assert_eq!(before, after, "remount changed state after {}", op);
            }
        }
    }
}
