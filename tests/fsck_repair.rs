//! Model-checked repair: fsck idempotence and crash-safe convergence.
//!
//! Two properties from the rfsck line of work, checked end-to-end on the
//! real on-disk layouts:
//!
//! - **Idempotence** (fsck ∘ fsck ≡ fsck): a second repair run on any
//!   volume the first run accepted reports clean and leaves the
//!   POSIX-observable state untouched.
//! - **Crash-safe convergence**: interrupting repair at its Nth device
//!   write — EIO abort, torn-but-acked write, or power cut dropping a
//!   volatile cache — and re-running fsck reaches exactly the state a
//!   fault-free repair reaches, for *every* N. Since the devices persist
//!   writes synchronously (no cache), an EIO abort after N writes leaves
//!   the same image as a power cut after N writes: the EIO sweep doubles
//!   as the power-cut-mid-repair sweep.
//!
//! Fault plans are pinned to the repair phase with
//! [`FaultPlan::during_repair`], so mkfs, the workload, and image
//! restores never consume the fault window — `skip = N` counts repair
//! writes only. Corruption is limited to *derivable* metadata (bitmaps,
//! free counters, journal garbage, torn log tails), the class fsck can
//! rebuild without losing reachable data, so the reference repair is
//! loss-free and convergence to it is the strongest claim available.

use analyze::{ext_derivable_corruptor, jffs2_corrupt_log_tails, XorShift64};
use blockdev::{BlockDevice, DeviceSnapshot, FaultKind, FaultPlan, FaultyDevice, RamDisk};
use fs_ext::{ExtConfig, ExtFs};
use mcfs::{abstract_state, AbstractionConfig};
use proptest::prelude::*;
use vfs::{DeviceBacked, FileMode, FileSystem, OpenFlags};

const EXT_BLOCK: usize = 1024;
const EXT_BYTES: u64 = 512 * 1024;
const JFFS2_EBS: usize = 16 * 1024;
const JFFS2_BLOCKS: usize = 16;

fn write_file(fs: &mut dyn FileSystem, p: &str, data: &[u8]) {
    let fd = fs.create(p, FileMode::REG_DEFAULT).unwrap();
    fs.write(fd, data).unwrap();
    fs.close(fd).unwrap();
}

fn read_file(fs: &mut dyn FileSystem, p: &str) -> Vec<u8> {
    let fd = fs
        .open(p, OpenFlags::read_only(), FileMode::REG_DEFAULT)
        .unwrap();
    let mut out = Vec::new();
    let mut buf = [0u8; 512];
    loop {
        let n = fs.read(fd, &mut buf).unwrap();
        if n == 0 {
            break;
        }
        out.extend_from_slice(&buf[..n]);
    }
    fs.close(fd).unwrap();
    out
}

/// The POSIX-observable abstraction hash — the state the repair oracles
/// compare.
fn observe(fs: &mut dyn FileSystem) -> u128 {
    abstract_state(fs, &AbstractionConfig::default())
        .unwrap()
        .as_u128()
}

/// Rebuilds a snapshot with the same geometry as `template` from a
/// (corrupted) flat image.
fn snapshot_like(template: &DeviceSnapshot, img: &[u8]) -> DeviceSnapshot {
    let cs = template.chunk_size();
    let chunks = img.chunks(cs).map(|c| c.to_vec()).collect();
    DeviceSnapshot::from_chunks(template.block_size(), cs, chunks).expect("same geometry")
}

fn populate(fs: &mut dyn FileSystem) {
    fs.mkdir("/docs", FileMode::DIR_DEFAULT).unwrap();
    write_file(fs, "/docs/a", b"alpha contents");
    write_file(fs, "/docs/b", &[0xb7; 3000]);
    write_file(fs, "/top", b"top-level");
}

/// How the Nth repair write dies.
#[derive(Clone, Copy)]
enum Interrupt {
    /// The write fails with EIO; repair aborts. Equivalent to a power cut
    /// at that write (synchronous persistence).
    Eio,
    /// The write is acked but only a prefix reaches the media.
    Torn,
    /// Writes land in a volatile cache; the EIO abort is followed by a
    /// power cut that drops everything not yet flushed.
    PowerCut,
}

/// Sweeps the fault point across every repair write: restore the corrupted
/// image, let repair die at write N, then require a clean re-run to reach
/// `goal` — the fixed point of the fault-free reference repair.
fn ext_repair_converges(cfg: ExtConfig, mode: Interrupt) {
    let disk = RamDisk::new(EXT_BLOCK, EXT_BYTES).unwrap();
    let mut fs = ExtFs::format(FaultyDevice::new(disk, FaultPlan::none()), cfg).unwrap();
    fs.mount().unwrap();
    populate(&mut fs);
    fs.unmount().unwrap();

    let snap = fs.snapshot_device().unwrap();
    let mut img = snap.to_vec();
    let mut rng = XorShift64::new(0x0f5c_0f5c_0001);
    ext_derivable_corruptor(&mut img, &mut rng);
    let dirty = snapshot_like(&snap, &img);

    // Fault-free reference repair: its result is the fixed point every
    // interrupted repair must converge to.
    fs.restore_device(&dirty).unwrap();
    fs.fsck().expect("reference repair on derivable corruption");
    fs.mount().unwrap();
    let goal = observe(&mut fs);
    assert_eq!(read_file(&mut fs, "/docs/a"), b"alpha contents");
    fs.unmount().unwrap();

    let mut n = 0u64;
    let mut interrupted = 0u32;
    loop {
        fs.restore_device(&dirty).unwrap();
        let mut plan = FaultPlan::eio(FaultKind::Write, n, 1).during_repair();
        match mode {
            Interrupt::Eio => {}
            Interrupt::Torn => plan = plan.with_torn_bytes(13),
            Interrupt::PowerCut => plan = plan.with_volatile_cache(),
        }
        fs.device_mut().set_plan(plan);
        let res = fs.fsck();
        let fired = fs.device_mut().injected() > 0;
        if matches!(mode, Interrupt::PowerCut) {
            fs.device_mut().power_cut().unwrap();
        }
        fs.device_mut().set_plan(FaultPlan::none());
        if !fired {
            // The window sat beyond the last repair write: repair ran
            // unhindered and must have succeeded. Sweep complete.
            res.expect("repair past the fault window");
            break;
        }
        interrupted += 1;
        // The interrupted image is the crash state. A clean re-run must
        // repair it, a third run must find nothing (two-run fixed point),
        // and the result must be the reference state.
        fs.fsck().expect("re-run after interrupted repair");
        assert!(
            fs.fsck().expect("third run").is_clean(),
            "repair not a fixed point after interrupt at write {n}"
        );
        fs.mount().unwrap();
        assert_eq!(
            observe(&mut fs),
            goal,
            "state diverged after interrupt at repair write {n}"
        );
        fs.unmount().unwrap();
        // Dense at the start (journal replay, early commits), then
        // stride out; the sweep still terminates past the last write.
        n += 1 + n / 8;
        assert!(n < 1 << 14, "fault window never drained");
    }
    assert!(interrupted > 0, "no repair write ever hit the window");
}

#[test]
fn ext2_repair_converges_under_eio_aborts() {
    ext_repair_converges(ExtConfig::ext2(), Interrupt::Eio);
}

#[test]
fn ext4_repair_converges_under_torn_writes() {
    ext_repair_converges(ExtConfig::ext4(), Interrupt::Torn);
}

#[test]
fn ext4_repair_converges_under_power_cuts() {
    ext_repair_converges(ExtConfig::ext4(), Interrupt::PowerCut);
}

/// Same sweep over the jffs2 log: a torn tail forces the repair scrub to
/// GC real erase blocks, so the window covers live-node copy programs and
/// the erase that follows them.
fn jffs2_repair_converges(torn: bool) {
    let mut fs = fs_jffs2::jffs2_on_mtdram(JFFS2_EBS, JFFS2_BLOCKS).unwrap();
    fs.mount().unwrap();
    populate(&mut fs);
    fs.unmount().unwrap();

    let snap = fs.snapshot_device().unwrap();
    let mut img = snap.to_vec();
    let mut rng = XorShift64::new(0x1985_0508);
    jffs2_corrupt_log_tails(&mut img, JFFS2_EBS, &mut rng);
    let dirty = snapshot_like(&snap, &img);

    fs.restore_device(&dirty).unwrap();
    fs.fsck().expect("reference repair on torn log tails");
    fs.mount().unwrap();
    let goal = observe(&mut fs);
    assert_eq!(read_file(&mut fs, "/docs/a"), b"alpha contents");
    fs.unmount().unwrap();

    let mut n = 0u64;
    let mut interrupted = 0u32;
    loop {
        fs.restore_device(&dirty).unwrap();
        let mut plan = FaultPlan::eio(FaultKind::Write, n, 1).during_repair();
        if torn {
            plan = plan.with_torn_bytes(9);
        }
        fs.device_mut().mtd_mut().set_fault_plan(Some(plan));
        let res = fs.fsck();
        let fired = fs.device_mut().mtd().faults_injected() > 0;
        fs.device_mut().mtd_mut().set_fault_plan(None);
        if !fired {
            res.expect("repair past the fault window");
            break;
        }
        interrupted += 1;
        fs.fsck().expect("re-run after interrupted repair");
        assert!(
            fs.fsck().expect("third run").is_clean(),
            "repair not a fixed point after interrupt at program {n}"
        );
        fs.mount().unwrap();
        assert_eq!(
            observe(&mut fs),
            goal,
            "state diverged after interrupt at repair program {n}"
        );
        fs.unmount().unwrap();
        n += 1 + n / 8;
        assert!(n < 1 << 14, "fault window never drained");
    }
    assert!(interrupted > 0, "no repair program ever hit the window");
}

#[test]
fn jffs2_repair_converges_under_eio_aborts() {
    jffs2_repair_converges(false);
}

#[test]
fn jffs2_repair_converges_under_torn_programs() {
    jffs2_repair_converges(true);
}

/// The phase tag end-to-end: a `during_repair` plan armed before mkfs
/// sleeps through formatting, the workload, and a clean unmount, then
/// fires on the very first repair write.
#[test]
fn repair_phase_plans_never_fire_on_normal_traffic() {
    let disk = RamDisk::new(EXT_BLOCK, EXT_BYTES).unwrap();
    let armed = FaultPlan::eio(FaultKind::Write, 0, 1).during_repair();
    let mut fs = ExtFs::format(FaultyDevice::new(disk, armed), ExtConfig::ext2()).unwrap();
    fs.mount().unwrap();
    populate(&mut fs);
    fs.unmount().unwrap();
    assert_eq!(
        fs.device_mut().injected(),
        0,
        "normal-phase writes consumed a repair-phase window"
    );

    // Give fsck something to write back, then let the window fire.
    let snap = fs.snapshot_device().unwrap();
    let mut img = snap.to_vec();
    let mut rng = XorShift64::new(0xfa5e);
    ext_derivable_corruptor(&mut img, &mut rng);
    fs.restore_device(&snapshot_like(&snap, &img)).unwrap();
    assert!(fs.fsck().is_err(), "first repair write must trip the plan");
    assert_eq!(fs.device_mut().injected(), 1);

    fs.device_mut().set_plan(FaultPlan::none());
    fs.fsck()
        .expect("repair succeeds once the plan is disarmed");
    fs.mount().unwrap();
    assert_eq!(read_file(&mut fs, "/docs/a"), b"alpha contents");
}

/// Random workload for the idempotence properties: file index, content
/// byte, and length.
fn workload() -> impl Strategy<Value = Vec<(u8, u8, usize)>> {
    prop::collection::vec((0u8..6, any::<u8>(), 0usize..1500), 1..6)
}

fn apply_workload(fs: &mut dyn FileSystem, files: &[(u8, u8, usize)]) {
    for &(i, byte, len) in files {
        let p = format!("/w{i}");
        let fd = fs
            .open(
                &p,
                OpenFlags::write_only().with_create().with_trunc(),
                FileMode::REG_DEFAULT,
            )
            .unwrap();
        fs.write(fd, &vec![byte; len]).unwrap();
        fs.close(fd).unwrap();
    }
}

/// fsck on a consistent volume changes nothing and reports clean twice —
/// the harness's repair-safety and idempotence oracles, as a property.
fn fsck_idempotent_on(fs: &mut dyn FileSystem, files: &[(u8, u8, usize)]) {
    apply_workload(fs, files);
    let before = observe(fs);
    let first = fs.fsck().expect("fsck on a consistent volume");
    assert!(first.is_clean(), "spurious repairs: {:?}", first.fixes);
    assert_eq!(observe(fs), before, "fsck changed a consistent volume");
    let second = fs.fsck().expect("second fsck");
    assert!(second.is_clean(), "not idempotent: {:?}", second.fixes);
    assert_eq!(observe(fs), before);
    // Contents, not just hashes: the last write per index must survive.
    let mut last = std::collections::HashMap::new();
    for &(i, byte, len) in files {
        last.insert(i, (byte, len));
    }
    for (i, (byte, len)) in last {
        assert_eq!(read_file(fs, &format!("/w{i}")), vec![byte; len]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn fsck_is_idempotent_on_ext2(files in workload()) {
        let disk = RamDisk::new(EXT_BLOCK, EXT_BYTES).unwrap();
        let mut fs =
            ExtFs::format(FaultyDevice::new(disk, FaultPlan::none()), ExtConfig::ext2()).unwrap();
        fs.mount().unwrap();
        fsck_idempotent_on(&mut fs, &files);
    }

    #[test]
    fn fsck_is_idempotent_on_ext4(files in workload()) {
        let disk = RamDisk::new(EXT_BLOCK, EXT_BYTES).unwrap();
        let mut fs =
            ExtFs::format(FaultyDevice::new(disk, FaultPlan::none()), ExtConfig::ext4()).unwrap();
        fs.mount().unwrap();
        fsck_idempotent_on(&mut fs, &files);
    }

    #[test]
    fn fsck_is_idempotent_on_jffs2(files in workload()) {
        let mut fs = fs_jffs2::jffs2_on_mtdram(JFFS2_EBS, JFFS2_BLOCKS).unwrap();
        fs.mount().unwrap();
        fsck_idempotent_on(&mut fs, &files);
    }
}
