//! Interleaving-exploration properties for the threaded harness
//! ([`mcfs::ThreadedMcfs`]), validated by execution over ≥512 proptest
//! cases:
//!
//! 1. **POR-setting equivalence** — for random 2–3-thread programs, every
//!    partial-order-reduction setting (off, sleep sets, persistent sets,
//!    both) explores the *identical* final-state set, on the VeriFS pair
//!    and on ext2, while never expanding more transitions than the full
//!    search.
//! 2. **Byte-identical violation replay** — a schedule that fails the
//!    linearizability oracle round-trips through the persistent wire
//!    format and reproduces the same violation, character for character,
//!    on a fresh harness.
//! 3. **Kill-and-resume equality** — a persistent swarm over a threaded
//!    system, interrupted mid-run and resumed from its snapshot, converges
//!    on the same visited set as an uninterrupted run.

use std::collections::BTreeSet;

use blockdev::RamDisk;
use fs_ext::{ExtConfig, ExtFs};
use mcfs::{
    CheckedTarget, CheckpointTarget, FsOp, RemountMode, RemountTarget, SchedStep,
    ThreadedFsOpCodec, ThreadedMcfs, ThreadedMcfsConfig,
};
use modelcheck::{
    load_snapshot, run_swarm_persistent, ByteReader, DfsExplorer, ExploreConfig, OpCodec,
    SwarmConfig, SwarmPersist, WorkerStrategy,
};
use proptest::prelude::*;
use verifs::{BugConfig, VeriFs};
use vfs::FileSystem;

// ---------------------------------------------------------------------------
// Harness builders
// ---------------------------------------------------------------------------

fn verifs_pair() -> Vec<Box<dyn CheckedTarget>> {
    let mut a = VeriFs::v2();
    a.mount().unwrap();
    let mut b = VeriFs::v2();
    b.mount().unwrap();
    vec![
        Box::new(CheckpointTarget::new(a)),
        Box::new(CheckpointTarget::new(b)),
    ]
}

fn ext2_single() -> Vec<Box<dyn CheckedTarget>> {
    let disk = RamDisk::new(1024, 256 * 1024).unwrap();
    let fs = ExtFs::format(disk, ExtConfig::ext2()).unwrap();
    vec![Box::new(RemountTarget::new(fs, RemountMode::PerOp))]
}

/// A tiny deterministic op grammar over a two-file namespace: enough to
/// race (same-path create/write/stat/truncate) without leaving the
/// behaviour every backend agrees on.
fn op_from_code(code: u8) -> FsOp {
    match code % 6 {
        0 => FsOp::CreateFile {
            path: "/a".into(),
            mode: 0o644,
        },
        1 => FsOp::CreateFile {
            path: "/b".into(),
            mode: 0o644,
        },
        2 => FsOp::WriteFile {
            path: "/a".into(),
            offset: 0,
            size: 6,
            seed: 3,
        },
        3 => FsOp::Stat { path: "/a".into() },
        4 => FsOp::Truncate {
            path: "/a".into(),
            size: 2,
        },
        _ => FsOp::Unlink { path: "/b".into() },
    }
}

fn programs_from_codes(codes: &[Vec<u8>]) -> Vec<Vec<FsOp>> {
    codes
        .iter()
        .map(|thread| thread.iter().map(|&c| op_from_code(c)).collect())
        .collect()
}

/// Explores `programs` exhaustively under one POR setting and returns the
/// final-state set plus the number of transitions expanded.
fn explore(
    targets: Vec<Box<dyn CheckedTarget>>,
    programs: Vec<Vec<FsOp>>,
    por: bool,
    por_persistent: bool,
) -> (BTreeSet<u128>, u64) {
    let mut sys = ThreadedMcfs::new(targets, programs, ThreadedMcfsConfig::default())
        .expect("threaded harness");
    let report = DfsExplorer::new(ExploreConfig {
        max_depth: 12,
        por,
        por_persistent,
        ..ExploreConfig::default()
    })
    .run(&mut sys);
    assert!(
        report.violations.is_empty(),
        "clean backends must not violate: {:?}",
        report.violations
    );
    (sys.final_states().clone(), report.stats.ops_executed)
}

// ---------------------------------------------------------------------------
// Property 1: POR settings agree on the final-state set (512 cases)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn por_settings_explore_identical_final_state_sets(
        codes in prop::collection::vec(prop::collection::vec(0u8..6, 1..3), 2..4),
    ) {
        for targets in [
            &verifs_pair as &dyn Fn() -> Vec<Box<dyn CheckedTarget>>,
            &ext2_single,
        ] {
            let (base, full) = explore(targets(), programs_from_codes(&codes), false, false);
            prop_assert!(!base.is_empty());
            for (por, pp) in [(true, false), (false, true), (true, true)] {
                let (states, ops) =
                    explore(targets(), programs_from_codes(&codes), por, pp);
                prop_assert_eq!(
                    &states, &base,
                    "POR changed the final-state set (por={}, persistent={})",
                    por, pp
                );
                prop_assert!(
                    ops <= full,
                    "POR expanded more transitions than the full search"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Property 2: violations replay byte-identically through the wire format
// ---------------------------------------------------------------------------

fn buggy_single() -> Vec<Box<dyn CheckedTarget>> {
    let mut fs = VeriFs::v2_with_bugs(BugConfig::v2_hole());
    fs.mount().unwrap();
    vec![Box::new(CheckpointTarget::new(fs))]
}

/// The v2 hole-bug witness on thread 0: write past a truncate point and
/// read back stale bytes where zeros are required.
fn hole_program() -> Vec<FsOp> {
    vec![
        FsOp::CreateFile {
            path: "/f0".into(),
            mode: 0o644,
        },
        FsOp::WriteFile {
            path: "/f0".into(),
            offset: 0,
            size: 40,
            seed: 1,
        },
        FsOp::Truncate {
            path: "/f0".into(),
            size: 1,
        },
        FsOp::WriteFile {
            path: "/f0".into(),
            offset: 30,
            size: 4,
            seed: 2,
        },
        FsOp::ReadFile {
            path: "/f0".into(),
            offset: 0,
            size: 40,
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn violations_replay_byte_identically_after_codec_round_trip(
        filler_codes in prop::collection::vec(0u8..6, 1..3),
        positions in prop::collection::vec(0usize..6, 1..3),
    ) {
        // Interleave thread 1's random fillers into thread 0's hole-bug
        // witness at random points (program order preserved on both).
        let mut sched: Vec<SchedStep> = hole_program()
            .into_iter()
            .map(|op| SchedStep { tid: 0, op })
            .collect();
        for (filler, pos) in filler_codes.iter().zip(&positions) {
            let at = *pos % (sched.len() + 1);
            sched.insert(
                at,
                SchedStep {
                    tid: 1,
                    op: op_from_code(*filler),
                },
            );
        }

        let cfg = ThreadedMcfsConfig::default();
        let mut sys = ThreadedMcfs::from_schedule(buggy_single(), &sched, cfg.clone())
            .expect("schedule harness");
        let hit = sys.replay_schedule(&sched);
        // Thread 1's fillers never touch /f0, so the stale-hole read has
        // no sequential witness regardless of where they land.
        let (at, msg) = hit.expect("hole bug must fail linearizability");
        prop_assert!(msg.contains("linearizability violation"), "{}", msg);

        // Round-trip the schedule through the persistent wire format …
        let mut bytes = Vec::new();
        for step in &sched {
            ThreadedFsOpCodec.encode_op(step, &mut bytes);
        }
        let mut r = ByteReader::new(&bytes);
        let mut decoded = Vec::with_capacity(sched.len());
        for _ in 0..sched.len() {
            decoded.push(ThreadedFsOpCodec.decode_op(&mut r).expect("decodes"));
        }
        prop_assert_eq!(&decoded, &sched, "codec must round-trip the schedule");

        // … and reproduce the identical violation on a fresh harness.
        let mut again = ThreadedMcfs::from_schedule(buggy_single(), &decoded, cfg)
            .expect("fresh harness");
        prop_assert_eq!(again.replay_schedule(&decoded), Some((at, msg)));
    }
}

// ---------------------------------------------------------------------------
// Kill-and-resume over a threaded system
// ---------------------------------------------------------------------------

fn threaded_factory(_worker: usize) -> ThreadedMcfs {
    let programs = vec![
        vec![op_from_code(0), op_from_code(2), op_from_code(4)],
        vec![op_from_code(1), op_from_code(5)],
        vec![op_from_code(3)],
    ];
    ThreadedMcfs::new(verifs_pair(), programs, ThreadedMcfsConfig::default())
        .expect("threaded harness")
}

fn swarm_cfg(max_ops: u64) -> SwarmConfig {
    SwarmConfig {
        workers: 2,
        base: ExploreConfig {
            max_depth: 8,
            max_ops,
            seed: 11,
            ..ExploreConfig::default()
        },
        shared_visited: true,
        strategies: vec![WorkerStrategy::Dfs],
    }
}

fn snap_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "mcfs-interleave-resume-{name}-{}.pickle",
        std::process::id()
    ))
}

#[test]
fn threaded_swarm_kill_and_resume_matches_uninterrupted() {
    let run = |path: &std::path::Path, max_ops: u64, resume| {
        let report = run_swarm_persistent(
            &swarm_cfg(max_ops),
            threaded_factory,
            SwarmPersist {
                codec: &ThreadedFsOpCodec,
                snapshot_path: Some(path.to_path_buf()),
                snapshot_every: 0,
                resume,
            },
        );
        assert!(
            report.persist_error.is_none(),
            "snapshot write failed: {:?}",
            report.persist_error
        );
        report
    };

    // Control: uninterrupted to exhaustion.
    let control_path = snap_path("control");
    let control = run(&control_path, u64::MAX, None);
    let control_snap = load_snapshot(&control_path, &ThreadedFsOpCodec).expect("control snapshot");
    assert!(
        control_snap.frontier.is_empty(),
        "exhausted control run must drain its frontier"
    );

    // Interrupted mid-run, then resumed from the snapshot file.
    let path = snap_path("resumed");
    let cut = (control.total_ops() / 2).max(4);
    let _ = run(&path, cut, None);
    let snap = load_snapshot(&path, &ThreadedFsOpCodec).expect("snapshot loads");
    let resumed = run(&path, u64::MAX, Some(snap));
    assert_eq!(
        resumed.total_states(),
        control.total_states(),
        "two-phase exploration lost or invented states"
    );
    let final_snap = load_snapshot(&path, &ThreadedFsOpCodec).expect("final snapshot");
    assert_eq!(
        final_snap.visited, control_snap.visited,
        "resumed visited set diverges from the uninterrupted run"
    );
    let _ = std::fs::remove_file(&control_path);
    let _ = std::fs::remove_file(&path);
}
