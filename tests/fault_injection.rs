//! Failure injection and crash consistency.
//!
//! Error paths are "where bugs often lurk" (paper §2). These tests inject
//! device-level I/O failures under the file systems and simulate crashes at
//! arbitrary points, verifying that errors surface as clean `EIO`s, that the
//! file systems stay usable after the fault heals, and that ext4's journal
//! preserves everything that was synced before a crash.

use blockdev::{BlockDevice, FaultKind, FaultPlan, FaultyDevice, RamDisk};
use fs_ext::{ExtConfig, ExtFs};
use proptest::prelude::*;
use vfs::{Errno, FileMode, FileSystem, OpenFlags};

fn write_file(fs: &mut dyn FileSystem, p: &str, data: &[u8]) {
    let fd = fs.create(p, FileMode::REG_DEFAULT).unwrap();
    fs.write(fd, data).unwrap();
    fs.close(fd).unwrap();
}

fn read_file(fs: &mut dyn FileSystem, p: &str) -> Vec<u8> {
    let fd = fs
        .open(p, OpenFlags::read_only(), FileMode::REG_DEFAULT)
        .unwrap();
    let mut out = Vec::new();
    let mut buf = [0u8; 512];
    loop {
        let n = fs.read(fd, &mut buf).unwrap();
        if n == 0 {
            break;
        }
        out.extend_from_slice(&buf[..n]);
    }
    fs.close(fd).unwrap();
    out
}

#[test]
fn read_faults_surface_as_eio_and_heal() {
    let disk = RamDisk::new(1024, 256 * 1024).unwrap();
    // Let mkfs and the first mount succeed, then fail a handful of reads.
    let dev = FaultyDevice::new(disk, FaultPlan::eio(FaultKind::Read, 12, 4));
    let mut fs = ExtFs::format(dev, ExtConfig::ext2()).unwrap();
    fs.mount().unwrap();
    write_file(&mut fs, "/data", &[7u8; 5000]);
    let mut failures = 0;
    // Remount each round so the caches drop and reads must hit the device;
    // eventually the window is consumed and everything heals.
    for _ in 0..50 {
        if fs.is_mounted() {
            let _ = fs.unmount();
        }
        if let Err(e) = fs.mount() {
            assert_eq!(e, Errno::EIO);
            failures += 1;
            continue;
        }
        let fd = match fs.open("/data", OpenFlags::read_only(), FileMode::REG_DEFAULT) {
            Ok(fd) => fd,
            Err(e) => {
                assert_eq!(e, Errno::EIO);
                failures += 1;
                continue;
            }
        };
        let mut buf = [0u8; 512];
        match fs.read(fd, &mut buf) {
            Ok(_) => {}
            Err(e) => {
                assert_eq!(e, Errno::EIO);
                failures += 1;
            }
        }
        let _ = fs.close(fd);
    }
    assert!(failures > 0, "some reads must have hit the fault window");
    // After the fault window, the file system is fully usable again.
    if fs.is_mounted() {
        fs.unmount().unwrap();
    }
    fs.mount().unwrap();
    assert_eq!(read_file(&mut fs, "/data"), vec![7u8; 5000]);
}

#[test]
fn write_faults_during_sync_do_not_brick_the_filesystem() {
    let disk = RamDisk::new(1024, 256 * 1024).unwrap();
    let dev = FaultyDevice::new(
        disk,
        // Past mkfs + first mount, then fail three writes.
        FaultPlan::eio(FaultKind::Write, 80, 3),
    );
    let mut fs = ExtFs::format(dev, ExtConfig::ext4()).unwrap();
    fs.mount().unwrap();
    write_file(&mut fs, "/a", &[1u8; 2000]);
    // The sync (journal commit) may hit injected write failures.
    let mut saw_error = false;
    let mut i = 0;
    // Keep dirtying and syncing until the whole fault window is consumed.
    while fs.device_mut().injected() < 3 {
        if fs.sync().is_err() {
            saw_error = true;
        }
        write_file(&mut fs, &format!("/x{i}"), b"more");
        i += 1;
        assert!(i < 200, "fault window must be consumed eventually");
    }
    assert!(saw_error, "at least one sync must have failed");
    // Once healed, sync and remount succeed and data is consistent.
    fs.sync().unwrap();
    fs.unmount().unwrap();
    fs.mount().unwrap();
    assert_eq!(read_file(&mut fs, "/a"), vec![1u8; 2000]);
}

/// Regression: `offset + len` arithmetic near `u64::MAX` must not wrap and
/// corrupt the range math. (The bug: unchecked `offset + len as u64` in the
/// read/write paths.) Every backend must agree on the observable semantics:
/// a write whose end overflows fails with `EFBIG`; a read past EOF — however
/// far past — returns 0 bytes, per POSIX `pread`.
#[test]
fn offset_overflow_is_efbig_on_every_backend() {
    let mut backends: Vec<(&str, Box<dyn FileSystem>)> = vec![
        ("ext2", Box::new(fs_ext::ext2_on_ram(256 * 1024).unwrap())),
        ("ext4", Box::new(fs_ext::ext4_on_ram(256 * 1024).unwrap())),
        (
            "xfs",
            Box::new(fs_xfs::xfs_on_ram(fs_xfs::MIN_DEVICE_BYTES).unwrap()),
        ),
        (
            "jffs2",
            Box::new(fs_jffs2::jffs2_on_mtdram(16 * 1024, 16).unwrap()),
        ),
        ("verifs2", Box::new(verifs::VeriFs::v2())),
    ];
    for (name, fs) in &mut backends {
        let fs = fs.as_mut();
        fs.mount().unwrap();
        let fd = fs.create("/big", FileMode::REG_DEFAULT).unwrap();
        fs.write(fd, b"hello").unwrap();
        fs.lseek(fd, u64::MAX - 4).unwrap();
        assert_eq!(
            fs.write(fd, &[0u8; 16]).unwrap_err(),
            Errno::EFBIG,
            "{name}: write past u64 range"
        );
        let mut buf = [0u8; 512];
        assert_eq!(
            fs.read(fd, &mut buf).unwrap(),
            0,
            "{name}: read past EOF is an empty read, even near u64::MAX"
        );
        // The failed calls must not have disturbed the file.
        fs.lseek(fd, 0).unwrap();
        assert_eq!(fs.read(fd, &mut buf).unwrap(), 5, "{name}");
        assert_eq!(&buf[..5], b"hello", "{name}");
        fs.close(fd).unwrap();
        assert_eq!(fs.stat("/big").unwrap().size, 5, "{name}");
    }
}

/// How a backend exposes its fault-injection valve to the parity suite.
trait FaultHost: FileSystem {
    fn arm(&mut self, plan: FaultPlan);
    fn shots(&mut self) -> u64;
}

impl FaultHost for ExtFs<FaultyDevice<RamDisk>> {
    fn arm(&mut self, plan: FaultPlan) {
        self.device_mut().set_plan(plan);
    }
    fn shots(&mut self) -> u64 {
        self.device_mut().injected()
    }
}

impl FaultHost for fs_xfs::XfsFs<FaultyDevice<RamDisk>> {
    fn arm(&mut self, plan: FaultPlan) {
        self.device_mut().set_plan(plan);
    }
    fn shots(&mut self) -> u64 {
        self.device_mut().injected()
    }
}

impl FaultHost for fs_jffs2::Jffs2Fs {
    fn arm(&mut self, plan: FaultPlan) {
        let p = (plan.count > 0).then_some(plan);
        self.device_mut().mtd_mut().set_fault_plan(p);
    }
    fn shots(&mut self) -> u64 {
        self.device_mut().mtd().faults_injected()
    }
}

/// Shared errno-parity property: with an EIO window armed after mount,
/// every failing operation must surface exactly `EIO` (never a panic,
/// never a mistranslated errno), and once the window is consumed the file
/// system must still sync, remount, and serve data written before the
/// faults.
fn eio_parity_case<F: FaultHost>(mut fs: F, skip: u64, count: u64) -> Result<(), Errno> {
    fs.mount().unwrap();
    write_file(&mut fs, "/keep", &[9u8; 1200]);
    fs.sync().unwrap();
    fs.arm(FaultPlan::eio(FaultKind::Both, skip, count));
    let mut errors: Vec<Errno> = Vec::new();
    let mut round = 0;
    while fs.shots() < count {
        match fs.create(&format!("/p{round}"), FileMode::REG_DEFAULT) {
            Ok(fd) => {
                if let Err(e) = fs.write(fd, &[round as u8; 64]) {
                    errors.push(e);
                }
                let _ = fs.close(fd);
            }
            Err(e) => errors.push(e),
        }
        if let Err(e) = fs.sync() {
            errors.push(e);
        }
        round += 1;
        assert!(round < 300, "fault window never consumed");
    }
    for e in &errors {
        if *e != Errno::EIO {
            return Err(*e);
        }
    }
    // Healed: the file system must be fully usable again.
    fs.arm(FaultPlan::none());
    fs.sync().unwrap();
    fs.unmount().unwrap();
    fs.mount().unwrap();
    assert_eq!(read_file(&mut fs, "/keep"), vec![9u8; 1200]);
    Ok(())
}

fn faulty_ram(block_size: usize, bytes: u64) -> FaultyDevice<RamDisk> {
    FaultyDevice::new(RamDisk::new(block_size, bytes).unwrap(), FaultPlan::none())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Errno parity under injected EIO, ext2: every surfaced error is EIO.
    #[test]
    fn eio_parity_ext2(skip in 0u64..40, count in 1u64..4) {
        let fs = ExtFs::format(faulty_ram(1024, 512 * 1024), ExtConfig::ext2()).unwrap();
        prop_assert_eq!(eio_parity_case(fs, skip, count), Ok(()));
    }

    /// Errno parity under injected EIO, ext4 (journal commit paths).
    #[test]
    fn eio_parity_ext4(skip in 0u64..40, count in 1u64..4) {
        let fs = ExtFs::format(faulty_ram(1024, 512 * 1024), ExtConfig::ext4()).unwrap();
        prop_assert_eq!(eio_parity_case(fs, skip, count), Ok(()));
    }

    /// Errno parity under injected EIO, xfs.
    #[test]
    fn eio_parity_xfs(skip in 0u64..40, count in 1u64..4) {
        let cfg = fs_xfs::XfsConfig::default();
        let fs =
            fs_xfs::XfsFs::format(faulty_ram(cfg.block_size, fs_xfs::MIN_DEVICE_BYTES), cfg)
                .unwrap();
        prop_assert_eq!(eio_parity_case(fs, skip, count), Ok(()));
    }

    /// Errno parity under injected EIO, jffs2 (MTD read/program/erase).
    #[test]
    fn eio_parity_jffs2(skip in 0u64..40, count in 1u64..4) {
        let fs = fs_jffs2::jffs2_on_mtdram(16 * 1024, 16).unwrap();
        prop_assert_eq!(eio_parity_case(fs, skip, count), Ok(()));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Crash consistency: everything written before a `sync` survives a
    /// crash (device rollback to the synced image) and a subsequent mount,
    /// for arbitrary two-epoch workloads on the journaled ext4.
    #[test]
    fn ext4_synced_epoch_survives_crash(
        epoch1 in prop::collection::vec((0u8..4, 1usize..2000), 1..6),
        epoch2 in prop::collection::vec((0u8..4, 1usize..2000), 1..6),
    ) {
        let mut fs = fs_ext::ext4_on_ram(256 * 1024).unwrap();
        fs.mount().unwrap();
        for (i, (fill, len)) in epoch1.iter().enumerate() {
            write_file(&mut fs, &format!("/e1_{i}"), &vec![*fill; *len]);
        }
        fs.sync().unwrap();
        // The crash point: capture the synced device image.
        use vfs::DeviceBacked;
        let crash_image = fs.snapshot_device().unwrap();
        // Epoch 2 runs without sync and is lost in the crash.
        for (i, (fill, len)) in epoch2.iter().enumerate() {
            write_file(&mut fs, &format!("/e2_{i}"), &vec![*fill; *len]);
        }
        // "Crash": a fresh instance over the synced image.
        let mut disk = RamDisk::new(1024, 256 * 1024).unwrap();
        disk.restore(&crash_image).unwrap();
        let mut revived = ExtFs::open_device(disk, ExtConfig::ext4());
        revived.mount().unwrap(); // replays the journal if needed
        for (i, (fill, len)) in epoch1.iter().enumerate() {
            let got = read_file(&mut revived, &format!("/e1_{i}"));
            prop_assert_eq!(&got, &vec![*fill; *len], "epoch-1 file {} lost", i);
        }
        for i in 0..epoch2.len() {
            prop_assert_eq!(
                revived.stat(&format!("/e2_{i}")).unwrap_err(),
                Errno::ENOENT,
                "unsynced epoch-2 file {} resurrected",
                i
            );
        }
    }

    /// The same property for the log-structured JFFS2: writes are
    /// synchronous, so *every* completed operation survives a crash-remount.
    #[test]
    fn jffs2_completed_ops_survive_crash(
        files in prop::collection::vec((0u8..4, 1usize..1500), 1..5),
    ) {
        let mut fs = fs_jffs2::jffs2_on_mtdram(16 * 1024, 16).unwrap();
        fs.mount().unwrap();
        for (i, (fill, len)) in files.iter().enumerate() {
            write_file(&mut fs, &format!("/f{i}"), &vec![*fill; *len]);
        }
        use vfs::DeviceBacked;
        let image = fs.snapshot_device().unwrap();
        // Crash: rebuild from the flash image alone.
        fs.restore_device(&image).unwrap();
        fs.unmount().unwrap();
        fs.mount().unwrap(); // full scan
        for (i, (fill, len)) in files.iter().enumerate() {
            let got = read_file(&mut fs, &format!("/f{i}"));
            prop_assert_eq!(&got, &vec![*fill; *len], "file {} lost", i);
        }
    }
}
