//! Failure injection and crash consistency.
//!
//! Error paths are "where bugs often lurk" (paper §2). These tests inject
//! device-level I/O failures under the file systems and simulate crashes at
//! arbitrary points, verifying that errors surface as clean `EIO`s, that the
//! file systems stay usable after the fault heals, and that ext4's journal
//! preserves everything that was synced before a crash.

use blockdev::{BlockDevice, FaultKind, FaultPlan, FaultyDevice, RamDisk};
use fs_ext::{ExtConfig, ExtFs};
use proptest::prelude::*;
use vfs::{Errno, FileMode, FileSystem, OpenFlags};

fn write_file(fs: &mut dyn FileSystem, p: &str, data: &[u8]) {
    let fd = fs.create(p, FileMode::REG_DEFAULT).unwrap();
    fs.write(fd, data).unwrap();
    fs.close(fd).unwrap();
}

fn read_file(fs: &mut dyn FileSystem, p: &str) -> Vec<u8> {
    let fd = fs
        .open(p, OpenFlags::read_only(), FileMode::REG_DEFAULT)
        .unwrap();
    let mut out = Vec::new();
    let mut buf = [0u8; 512];
    loop {
        let n = fs.read(fd, &mut buf).unwrap();
        if n == 0 {
            break;
        }
        out.extend_from_slice(&buf[..n]);
    }
    fs.close(fd).unwrap();
    out
}

#[test]
fn read_faults_surface_as_eio_and_heal() {
    let disk = RamDisk::new(1024, 256 * 1024).unwrap();
    // Let mkfs and the first mount succeed, then fail a handful of reads.
    let dev = FaultyDevice::new(
        disk,
        FaultPlan {
            kind: FaultKind::Read,
            skip: 12,
            count: 4,
        },
    );
    let mut fs = ExtFs::format(dev, ExtConfig::ext2()).unwrap();
    fs.mount().unwrap();
    write_file(&mut fs, "/data", &[7u8; 5000]);
    let mut failures = 0;
    // Remount each round so the caches drop and reads must hit the device;
    // eventually the window is consumed and everything heals.
    for _ in 0..50 {
        if fs.is_mounted() {
            let _ = fs.unmount();
        }
        if let Err(e) = fs.mount() {
            assert_eq!(e, Errno::EIO);
            failures += 1;
            continue;
        }
        let fd = match fs.open("/data", OpenFlags::read_only(), FileMode::REG_DEFAULT) {
            Ok(fd) => fd,
            Err(e) => {
                assert_eq!(e, Errno::EIO);
                failures += 1;
                continue;
            }
        };
        let mut buf = [0u8; 512];
        match fs.read(fd, &mut buf) {
            Ok(_) => {}
            Err(e) => {
                assert_eq!(e, Errno::EIO);
                failures += 1;
            }
        }
        let _ = fs.close(fd);
    }
    assert!(failures > 0, "some reads must have hit the fault window");
    // After the fault window, the file system is fully usable again.
    if fs.is_mounted() {
        fs.unmount().unwrap();
    }
    fs.mount().unwrap();
    assert_eq!(read_file(&mut fs, "/data"), vec![7u8; 5000]);
}

#[test]
fn write_faults_during_sync_do_not_brick_the_filesystem() {
    let disk = RamDisk::new(1024, 256 * 1024).unwrap();
    let dev = FaultyDevice::new(
        disk,
        FaultPlan {
            kind: FaultKind::Write,
            skip: 80, // past mkfs + first mount
            count: 3,
        },
    );
    let mut fs = ExtFs::format(dev, ExtConfig::ext4()).unwrap();
    fs.mount().unwrap();
    write_file(&mut fs, "/a", &[1u8; 2000]);
    // The sync (journal commit) may hit injected write failures.
    let mut saw_error = false;
    let mut i = 0;
    // Keep dirtying and syncing until the whole fault window is consumed.
    while fs.device_mut().injected() < 3 {
        if fs.sync().is_err() {
            saw_error = true;
        }
        write_file(&mut fs, &format!("/x{i}"), b"more");
        i += 1;
        assert!(i < 200, "fault window must be consumed eventually");
    }
    assert!(saw_error, "at least one sync must have failed");
    // Once healed, sync and remount succeed and data is consistent.
    fs.sync().unwrap();
    fs.unmount().unwrap();
    fs.mount().unwrap();
    assert_eq!(read_file(&mut fs, "/a"), vec![1u8; 2000]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Crash consistency: everything written before a `sync` survives a
    /// crash (device rollback to the synced image) and a subsequent mount,
    /// for arbitrary two-epoch workloads on the journaled ext4.
    #[test]
    fn ext4_synced_epoch_survives_crash(
        epoch1 in prop::collection::vec((0u8..4, 1usize..2000), 1..6),
        epoch2 in prop::collection::vec((0u8..4, 1usize..2000), 1..6),
    ) {
        let mut fs = fs_ext::ext4_on_ram(256 * 1024).unwrap();
        fs.mount().unwrap();
        for (i, (fill, len)) in epoch1.iter().enumerate() {
            write_file(&mut fs, &format!("/e1_{i}"), &vec![*fill; *len]);
        }
        fs.sync().unwrap();
        // The crash point: capture the synced device image.
        use vfs::DeviceBacked;
        let crash_image = fs.snapshot_device().unwrap();
        // Epoch 2 runs without sync and is lost in the crash.
        for (i, (fill, len)) in epoch2.iter().enumerate() {
            write_file(&mut fs, &format!("/e2_{i}"), &vec![*fill; *len]);
        }
        // "Crash": a fresh instance over the synced image.
        let mut disk = RamDisk::new(1024, 256 * 1024).unwrap();
        disk.restore(&crash_image).unwrap();
        let mut revived = ExtFs::open_device(disk, ExtConfig::ext4());
        revived.mount().unwrap(); // replays the journal if needed
        for (i, (fill, len)) in epoch1.iter().enumerate() {
            let got = read_file(&mut revived, &format!("/e1_{i}"));
            prop_assert_eq!(&got, &vec![*fill; *len], "epoch-1 file {} lost", i);
        }
        for i in 0..epoch2.len() {
            prop_assert_eq!(
                revived.stat(&format!("/e2_{i}")).unwrap_err(),
                Errno::ENOENT,
                "unsynced epoch-2 file {} resurrected",
                i
            );
        }
    }

    /// The same property for the log-structured JFFS2: writes are
    /// synchronous, so *every* completed operation survives a crash-remount.
    #[test]
    fn jffs2_completed_ops_survive_crash(
        files in prop::collection::vec((0u8..4, 1usize..1500), 1..5),
    ) {
        let mut fs = fs_jffs2::jffs2_on_mtdram(16 * 1024, 16).unwrap();
        fs.mount().unwrap();
        for (i, (fill, len)) in files.iter().enumerate() {
            write_file(&mut fs, &format!("/f{i}"), &vec![*fill; *len]);
        }
        use vfs::DeviceBacked;
        let image = fs.snapshot_device().unwrap();
        // Crash: rebuild from the flash image alone.
        fs.restore_device(&image).unwrap();
        fs.unmount().unwrap();
        fs.mount().unwrap(); // full scan
        for (i, (fill, len)) in files.iter().enumerate() {
            let got = read_file(&mut fs, &format!("/f{i}"));
            prop_assert_eq!(&got, &vec![*fill; *len], "file {} lost", i);
        }
    }
}
