//! A POSIX-conformance battery run identically over every file system in
//! the workspace — VeriFS1, VeriFS2 (bare and behind FUSE), ext2, ext4,
//! XFS, and JFFS2.
//!
//! MCFS's premise is that all these implementations agree on observable
//! behaviour; this suite pins the common semantics down implementation by
//! implementation so a divergence fails here before it confuses the
//! model-checking layers above.

use vfs::{AccessMode, Errno, FileMode, FileSystem, OpenFlags, XattrFlags};

/// Builds every mounted file system under test, labelled.
fn all_filesystems() -> Vec<(String, Box<dyn FileSystem>)> {
    let mut out: Vec<(String, Box<dyn FileSystem>)> = Vec::new();
    let mut v1 = verifs::VeriFs::v1();
    v1.mount().unwrap();
    out.push(("verifs1".into(), Box::new(v1)));
    let mut v2 = verifs::VeriFs::v2();
    v2.mount().unwrap();
    out.push(("verifs2".into(), Box::new(v2)));
    let mut fuse = fusesim::FuseMount::new(verifs::VeriFs::v2());
    let conn = fuse.connection();
    fuse.daemon_mut()
        .fs_mut()
        .set_invalidation_sink(std::sync::Arc::new(conn));
    fuse.mount().unwrap();
    out.push(("fuse-verifs2".into(), Box::new(fuse)));
    let mut e2 = fs_ext::ext2_on_ram(256 * 1024).unwrap();
    e2.mount().unwrap();
    out.push(("ext2".into(), Box::new(e2)));
    let mut e4 = fs_ext::ext4_on_ram(256 * 1024).unwrap();
    e4.mount().unwrap();
    out.push(("ext4".into(), Box::new(e4)));
    let mut xfs = fs_xfs::xfs_on_ram(fs_xfs::MIN_DEVICE_BYTES).unwrap();
    xfs.mount().unwrap();
    out.push(("xfs".into(), Box::new(xfs)));
    let mut j2 = fs_jffs2::jffs2_on_mtdram(16 * 1024, 16).unwrap();
    j2.mount().unwrap();
    out.push(("jffs2".into(), Box::new(j2)));
    out
}

fn write_file(fs: &mut dyn FileSystem, p: &str, data: &[u8]) {
    let fd = fs.create(p, FileMode::REG_DEFAULT).unwrap();
    fs.write(fd, data).unwrap();
    fs.close(fd).unwrap();
}

fn read_file(fs: &mut dyn FileSystem, p: &str) -> Vec<u8> {
    let fd = fs
        .open(p, OpenFlags::read_only(), FileMode::REG_DEFAULT)
        .unwrap();
    let mut out = Vec::new();
    let mut buf = [0u8; 512];
    loop {
        let n = fs.read(fd, &mut buf).unwrap();
        if n == 0 {
            break;
        }
        out.extend_from_slice(&buf[..n]);
    }
    fs.close(fd).unwrap();
    out
}

#[test]
fn create_write_read_stat() {
    for (name, mut fs) in all_filesystems() {
        write_file(fs.as_mut(), "/file", b"contents here");
        assert_eq!(read_file(fs.as_mut(), "/file"), b"contents here", "{name}");
        let st = fs.stat("/file").unwrap();
        assert_eq!(st.size, 13, "{name}");
        assert_eq!(st.nlink, 1, "{name}");
        assert_eq!(st.mode, FileMode::REG_DEFAULT, "{name}");
    }
}

#[test]
fn double_create_is_eexist() {
    for (name, mut fs) in all_filesystems() {
        write_file(fs.as_mut(), "/dup", b"");
        assert_eq!(
            fs.create("/dup", FileMode::REG_DEFAULT).unwrap_err(),
            Errno::EEXIST,
            "{name}"
        );
    }
}

#[test]
fn missing_paths_are_enoent() {
    for (name, mut fs) in all_filesystems() {
        assert_eq!(fs.stat("/missing").unwrap_err(), Errno::ENOENT, "{name}");
        assert_eq!(fs.unlink("/missing").unwrap_err(), Errno::ENOENT, "{name}");
        assert_eq!(
            fs.open("/missing", OpenFlags::read_only(), FileMode::REG_DEFAULT)
                .unwrap_err(),
            Errno::ENOENT,
            "{name}"
        );
        assert_eq!(
            fs.create("/no/such/parent", FileMode::REG_DEFAULT)
                .unwrap_err(),
            Errno::ENOENT,
            "{name}"
        );
    }
}

#[test]
fn paths_through_files_are_enotdir() {
    for (name, mut fs) in all_filesystems() {
        write_file(fs.as_mut(), "/plain", b"");
        assert_eq!(
            fs.create("/plain/child", FileMode::REG_DEFAULT)
                .unwrap_err(),
            Errno::ENOTDIR,
            "{name}"
        );
    }
}

#[test]
fn mkdir_rmdir_lifecycle() {
    for (name, mut fs) in all_filesystems() {
        fs.mkdir("/dir", FileMode::DIR_DEFAULT).unwrap();
        assert_eq!(
            fs.mkdir("/dir", FileMode::DIR_DEFAULT).unwrap_err(),
            Errno::EEXIST,
            "{name}"
        );
        write_file(fs.as_mut(), "/dir/inner", b"x");
        assert_eq!(fs.rmdir("/dir").unwrap_err(), Errno::ENOTEMPTY, "{name}");
        assert_eq!(fs.unlink("/dir").unwrap_err(), Errno::EISDIR, "{name}");
        fs.unlink("/dir/inner").unwrap();
        fs.rmdir("/dir").unwrap();
        assert_eq!(fs.stat("/dir").unwrap_err(), Errno::ENOENT, "{name}");
    }
}

#[test]
fn truncate_extends_with_zeros() {
    for (name, mut fs) in all_filesystems() {
        write_file(fs.as_mut(), "/t", &[0xAB; 64]);
        fs.truncate("/t", 8).unwrap();
        fs.truncate("/t", 64).unwrap();
        let content = read_file(fs.as_mut(), "/t");
        assert_eq!(&content[..8], &[0xAB; 8], "{name}");
        assert!(content[8..].iter().all(|&b| b == 0), "{name}: stale bytes");
    }
}

#[test]
fn sparse_writes_read_zero_holes() {
    for (name, mut fs) in all_filesystems() {
        let fd = fs.create("/sparse", FileMode::REG_DEFAULT).unwrap();
        fs.lseek(fd, 1000).unwrap();
        fs.write(fd, b"tail").unwrap();
        fs.close(fd).unwrap();
        let content = read_file(fs.as_mut(), "/sparse");
        assert_eq!(content.len(), 1004, "{name}");
        assert!(content[..1000].iter().all(|&b| b == 0), "{name}");
        assert_eq!(&content[1000..], b"tail", "{name}");
    }
}

#[test]
fn append_mode_appends() {
    for (name, mut fs) in all_filesystems() {
        write_file(fs.as_mut(), "/log", b"one,");
        let fd = fs
            .open(
                "/log",
                OpenFlags::write_only().with_append(),
                FileMode::REG_DEFAULT,
            )
            .unwrap();
        fs.write(fd, b"two").unwrap();
        fs.close(fd).unwrap();
        assert_eq!(read_file(fs.as_mut(), "/log"), b"one,two", "{name}");
    }
}

#[test]
fn open_excl_and_trunc_flags() {
    for (name, mut fs) in all_filesystems() {
        write_file(fs.as_mut(), "/f", b"body");
        assert_eq!(
            fs.open(
                "/f",
                OpenFlags::write_only().with_create().with_excl(),
                FileMode::REG_DEFAULT
            )
            .unwrap_err(),
            Errno::EEXIST,
            "{name}"
        );
        let fd = fs
            .open(
                "/f",
                OpenFlags::write_only().with_trunc(),
                FileMode::REG_DEFAULT,
            )
            .unwrap();
        fs.close(fd).unwrap();
        assert_eq!(fs.stat("/f").unwrap().size, 0, "{name}");
    }
}

#[test]
fn descriptor_permissions_enforced() {
    for (name, mut fs) in all_filesystems() {
        write_file(fs.as_mut(), "/f", b"data");
        let ro = fs
            .open("/f", OpenFlags::read_only(), FileMode::REG_DEFAULT)
            .unwrap();
        assert_eq!(fs.write(ro, b"x").unwrap_err(), Errno::EBADF, "{name}");
        fs.close(ro).unwrap();
        let wo = fs
            .open("/f", OpenFlags::write_only(), FileMode::REG_DEFAULT)
            .unwrap();
        assert_eq!(
            fs.read(wo, &mut [0u8; 4]).unwrap_err(),
            Errno::EBADF,
            "{name}"
        );
        fs.close(wo).unwrap();
        assert_eq!(
            fs.close(wo).unwrap_err(),
            Errno::EBADF,
            "{name}: double close"
        );
    }
}

#[test]
fn chmod_chown_roundtrip() {
    for (name, mut fs) in all_filesystems() {
        write_file(fs.as_mut(), "/f", b"");
        fs.chmod("/f", FileMode::new(0o640)).unwrap();
        fs.chown("/f", 12, 34).unwrap();
        let st = fs.stat("/f").unwrap();
        assert_eq!(st.mode, FileMode::new(0o640), "{name}");
        assert_eq!((st.uid, st.gid), (12, 34), "{name}");
    }
}

#[test]
fn getdents_lists_created_entries() {
    for (name, mut fs) in all_filesystems() {
        fs.mkdir("/d", FileMode::DIR_DEFAULT).unwrap();
        write_file(fs.as_mut(), "/d/a", b"");
        write_file(fs.as_mut(), "/d/b", b"");
        let mut names: Vec<String> = fs
            .getdents("/d")
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        names.sort(); // orders differ by design (§3.4); sort to compare
        assert_eq!(names, vec!["a", "b"], "{name}");
        assert_eq!(fs.getdents("/d/a").unwrap_err(), Errno::ENOTDIR, "{name}");
    }
}

#[test]
fn invalid_paths_rejected_uniformly() {
    for (name, mut fs) in all_filesystems() {
        for bad in ["relative", "/a//b", "/a/../b", "/trailing/"] {
            assert_eq!(fs.stat(bad).unwrap_err(), Errno::EINVAL, "{name}: {bad:?}");
        }
        let long = format!("/{}", "n".repeat(300));
        assert_eq!(fs.stat(&long).unwrap_err(), Errno::ENAMETOOLONG, "{name}");
    }
}

/// The optional-feature suite: every file system advertising a capability
/// must implement the same semantics for it.
#[test]
fn optional_features_match_capabilities() {
    for (name, mut fs) in all_filesystems() {
        let caps = fs.capabilities();
        write_file(fs.as_mut(), "/src", b"origin");
        if caps.rename {
            fs.rename("/src", "/dst").unwrap();
            assert_eq!(fs.stat("/src").unwrap_err(), Errno::ENOENT, "{name}");
            assert_eq!(read_file(fs.as_mut(), "/dst"), b"origin", "{name}");
            fs.rename("/dst", "/src").unwrap();
        } else {
            assert_eq!(
                fs.rename("/src", "/dst").unwrap_err(),
                Errno::ENOSYS,
                "{name}"
            );
        }
        if caps.hardlink {
            fs.link("/src", "/hard").unwrap();
            assert_eq!(fs.stat("/hard").unwrap().nlink, 2, "{name}");
            fs.unlink("/hard").unwrap();
        }
        if caps.symlink {
            fs.symlink("/src", "/sym").unwrap();
            assert_eq!(fs.readlink("/sym").unwrap(), "/src", "{name}");
            assert_eq!(
                fs.open("/sym", OpenFlags::read_only(), FileMode::REG_DEFAULT)
                    .unwrap_err(),
                Errno::ELOOP,
                "{name}"
            );
            fs.unlink("/sym").unwrap();
        }
        if caps.xattr {
            fs.setxattr("/src", "user.k", b"v", XattrFlags::Any)
                .unwrap();
            assert_eq!(fs.getxattr("/src", "user.k").unwrap(), b"v", "{name}");
            assert_eq!(fs.listxattr("/src").unwrap(), vec!["user.k"], "{name}");
            fs.removexattr("/src", "user.k").unwrap();
            assert_eq!(
                fs.getxattr("/src", "user.k").unwrap_err(),
                Errno::ENODATA,
                "{name}"
            );
        }
        if caps.access {
            fs.chmod("/src", FileMode::new(0o400)).unwrap();
            assert_eq!(fs.access("/src", AccessMode::read()), Ok(()), "{name}");
            assert_eq!(
                fs.access("/src", AccessMode::write()).unwrap_err(),
                Errno::EACCES,
                "{name}"
            );
        }
    }
}

/// Durability: everything above survives an unmount/mount cycle on the
/// persistent file systems.
#[test]
fn state_survives_remount_on_persistent_filesystems() {
    for (name, mut fs) in all_filesystems() {
        write_file(fs.as_mut(), "/keep", b"persist me");
        fs.mkdir("/kd", FileMode::DIR_DEFAULT).unwrap();
        write_file(fs.as_mut(), "/kd/deep", &[7u8; 3000]);
        fs.unmount().unwrap();
        fs.mount().unwrap();
        assert_eq!(read_file(fs.as_mut(), "/keep"), b"persist me", "{name}");
        assert_eq!(
            read_file(fs.as_mut(), "/kd/deep"),
            vec![7u8; 3000],
            "{name}"
        );
    }
}
