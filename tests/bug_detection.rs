//! The headline capability (§6): MCFS detects each of the four reintroduced
//! historical VeriFS bugs by behavioural divergence, reports a reproducible
//! trace — and finds nothing when the bugs are fixed.
//!
//! The tail of the file pins two real backend bugs the fsck oracle
//! surfaced, as minimized replayable traces: a torn ext journal image
//! whose intact commit record used to replay garbage, and a jffs2 dirent
//! whose inode node never reached flash.

use blockdev::{BlockDevice, Clock, FaultKind, FaultPlan, RamDisk};
use fs_ext::{journal, layout, ExtConfig, ExtFs};
use fusesim::{FuseConfig, FuseMount};
use mcfs::{replay, CheckedTarget, CheckpointTarget, Mcfs, McfsConfig, PoolConfig};
use modelcheck::{ExploreConfig, RandomWalk, StopReason};
use verifs::{BugConfig, VeriFs};
use vfs::{DeviceBacked, Errno, FileMode, FileSystem, FileType, OpenFlags};

fn fuse_target(version: u8, bugs: BugConfig, clock: Clock) -> Box<dyn CheckedTarget> {
    let fs = match version {
        1 => VeriFs::v1_with_bugs(bugs),
        _ => VeriFs::v2_with_bugs(bugs),
    };
    let mut m = FuseMount::with_config(fs, FuseConfig::default(), Some(clock));
    let conn = m.connection();
    m.daemon_mut()
        .fs_mut()
        .set_invalidation_sink(std::sync::Arc::new(conn));
    Box::new(CheckpointTarget::new(m))
}

fn harness(buggy_version: u8, bugs: BugConfig) -> Mcfs {
    let clock = Clock::new();
    let reference = fuse_target(2, BugConfig::none(), clock.clone());
    let buggy = fuse_target(buggy_version, bugs, clock.clone());
    // VeriFS1-era checking used a small pool (v1 supports few operations);
    // the VeriFS2 bugs were found against a richer one (§6).
    let pool = if buggy_version == 1 {
        PoolConfig::small()
    } else {
        PoolConfig::medium()
    };
    Mcfs::with_clock(
        vec![reference, buggy],
        McfsConfig {
            pool,
            ..McfsConfig::default()
        },
        clock,
    )
    .expect("harness")
}

fn detect(buggy_version: u8, bugs: BugConfig, max_ops: u64) -> Option<(u64, Vec<mcfs::FsOp>)> {
    for seed in 0..6u64 {
        let mut m = harness(buggy_version, bugs);
        let report = RandomWalk::new(ExploreConfig {
            max_depth: 12,
            max_ops,
            seed,
            ..ExploreConfig::default()
        })
        .run(&mut m);
        if report.stop == StopReason::Violation {
            let v = &report.violations[0];
            return Some((v.ops_executed, v.trace.clone()));
        }
    }
    None
}

#[test]
fn bug1_truncate_no_zero_is_detected_and_replayable() {
    let bugs = BugConfig {
        v1_truncate_no_zero: true,
        ..BugConfig::default()
    };
    let (ops, trace) = detect(1, bugs, 150_000).expect("bug 1 must be found");
    assert!(ops > 0);
    // The paper highlights precise reproduction: the trace replays.
    let mut fresh = harness(1, bugs);
    assert!(replay(&mut fresh, &trace).is_some(), "trace must reproduce");
    // And the fixed file system passes the identical trace.
    let mut fixed = harness(1, BugConfig::none());
    assert!(
        replay(&mut fixed, &trace).is_none(),
        "fix must pass the trace"
    );
}

#[test]
fn bug2_missing_invalidation_is_detected() {
    let bugs = BugConfig {
        v1_skip_invalidation: true,
        ..BugConfig::default()
    };
    let (_ops, trace) = detect(1, bugs, 60_000).expect("bug 2 must be found");
    let mut fixed = harness(1, BugConfig::none());
    assert!(replay(&mut fixed, &trace).is_none());
}

#[test]
fn bug3_hole_not_zeroed_is_detected() {
    let bugs = BugConfig {
        v2_hole_no_zero: true,
        ..BugConfig::default()
    };
    let (_ops, trace) = detect(2, bugs, 200_000).expect("bug 3 must be found");
    let mut fixed = harness(2, BugConfig::none());
    assert!(replay(&mut fixed, &trace).is_none());
}

#[test]
fn bug4_size_only_on_capacity_growth_is_detected() {
    let bugs = BugConfig {
        v2_size_only_on_capacity_growth: true,
        ..BugConfig::default()
    };
    let (_ops, trace) = detect(2, bugs, 200_000).expect("bug 4 must be found");
    let mut fixed = harness(2, BugConfig::none());
    assert!(replay(&mut fixed, &trace).is_none());
}

fn write_file(fs: &mut dyn FileSystem, p: &str, data: &[u8]) {
    let fd = fs.create(p, FileMode::REG_DEFAULT).unwrap();
    fs.write(fd, data).unwrap();
    fs.close(fd).unwrap();
}

fn read_file(fs: &mut dyn FileSystem, p: &str) -> Vec<u8> {
    let fd = fs
        .open(p, OpenFlags::read_only(), FileMode::REG_DEFAULT)
        .unwrap();
    let mut out = Vec::new();
    let mut buf = [0u8; 256];
    loop {
        let n = fs.read(fd, &mut buf).unwrap();
        if n == 0 {
            break;
        }
        out.extend_from_slice(&buf[..n]);
    }
    fs.close(fd).unwrap();
    out
}

#[test]
fn ext_torn_journal_image_with_intact_commit_is_discarded_whole() {
    // Backend bug found by the fsck oracle. Minimized trace:
    //   CreateFile(/keep) · Sync · Crash · Mount
    // where the crash leaves a journaled transaction whose *image* block
    // is torn but whose (separately written, intact) commit record
    // validates. Replay used to apply the torn garbage to the home
    // location — here the inode table, destroying /keep. The commit
    // checksum must reject the transaction whole.
    let disk = RamDisk::new(1024, 512 * 1024).unwrap();
    let mut fs = ExtFs::format(disk, ExtConfig::ext4()).unwrap();
    fs.mount().unwrap();
    write_file(&mut fs, "/keep", b"must survive replay");
    fs.unmount().unwrap();

    // Forge the crash state on the raw device: a committed transaction
    // targeting the inode table, its journaled image torn at byte 16.
    let bs = 1024usize;
    let mut b0 = vec![0u8; bs];
    fs.device_mut().read_block(0, &mut b0).unwrap();
    let sb = layout::SuperBlock::decode(&b0).unwrap();
    let target = sb.inode_table_start();
    let mut home = vec![0u8; bs];
    fs.device_mut()
        .read_block(target as u64, &mut home)
        .unwrap();
    journal::write_txn(fs.device_mut(), &sb, 9, &[(target, vec![0xEE; bs])]).unwrap();
    let jimg = (sb.journal_start() + 1) as u64;
    let mut torn = vec![0u8; bs];
    fs.device_mut().read_block(jimg, &mut torn).unwrap();
    for b in torn.iter_mut().skip(16) {
        *b = 0xAA;
    }
    fs.device_mut().write_block(jimg, &torn).unwrap();

    // Replay must discard the torn transaction whole: zero blocks
    // applied, the home block untouched.
    assert_eq!(
        journal::replay(fs.device_mut(), &sb).unwrap(),
        0,
        "replay applied a torn transaction"
    );
    let mut after = vec![0u8; bs];
    fs.device_mut()
        .read_block(target as u64, &mut after)
        .unwrap();
    assert_eq!(after, home, "replay half-applied a torn transaction");
    // The volume mounts, the file survives, and fsck finds nothing to
    // mop up.
    fs.mount().expect("mount after the discarded transaction");
    assert_eq!(read_file(&mut fs, "/keep"), b"must survive replay");
    fs.unmount().unwrap();
    assert!(fs.fsck().expect("fsck").is_clean());
}

#[test]
fn jffs2_dirent_whose_inode_never_hit_flash_is_dropped() {
    // Backend bug found by the fsck oracle. Minimized trace:
    //   CreateFile(/real) · CreateFile(/ghost)[crash at program N] · Mount
    // A crash between a create's two log appends can leave a dirent whose
    // target inode node never reached flash; the scanner used to surface
    // it as a directory entry whose stat failed with EIO. Swept over
    // every program of the create, the half-written file must be
    // all-or-nothing: every scanned dirent resolves.
    let mut n = 0u64;
    let mut interrupted = 0u32;
    loop {
        let mut fs = fs_jffs2::jffs2_on_mtdram(16 * 1024, 8).unwrap();
        fs.mount().unwrap();
        write_file(&mut fs, "/real", b"survives");
        fs.device_mut()
            .mtd_mut()
            .set_fault_plan(Some(FaultPlan::eio(FaultKind::Write, n, 1)));
        let _ = fs
            .create("/ghost", FileMode::REG_DEFAULT)
            .and_then(|fd| fs.close(fd));
        let fired = fs.device_mut().mtd().faults_injected() > 0;
        fs.device_mut().mtd_mut().set_fault_plan(None);
        fs.crash_reboot().expect("rescan after mid-create crash");
        match fs.stat("/ghost") {
            Ok(st) => assert_eq!(st.ftype, FileType::Regular, "program {n}"),
            Err(e) => assert_eq!(e, Errno::ENOENT, "program {n}"),
        }
        for ent in fs.getdents("/").unwrap() {
            fs.stat(&format!("/{}", ent.name))
                .expect("every scanned dirent must resolve");
        }
        assert_eq!(read_file(&mut fs, "/real"), b"survives");
        if !fired {
            break;
        }
        interrupted += 1;
        n += 1;
        assert!(n < 64, "fault window never drained");
    }
    assert!(interrupted > 0, "no create program ever hit the window");
}

#[test]
fn clean_filesystems_run_without_detection() {
    // The control: no bugs, no violations (paper: 159M ops, zero errors).
    let mut m = harness(1, BugConfig::none());
    let report = RandomWalk::new(ExploreConfig {
        max_depth: 12,
        max_ops: 5_000,
        seed: 99,
        ..ExploreConfig::default()
    })
    .run(&mut m);
    assert_eq!(
        report.stop,
        StopReason::OpBudget,
        "{}",
        report
            .violations
            .first()
            .map(|v| v.to_string())
            .unwrap_or_default()
    );
}

/// Backend bug found by the interleaving checker's lockstep oracle.
/// Minimized threaded trace (setup `CreateFile(/a)`, two threads):
///
/// ```text
///   t1: Stat(/a) · t0: Rename(/a → /b) · t1: Stat(/a)
/// ```
///
/// The FUSE kernel model keeps one cache view per logical thread. The
/// buggy mode (`broadcast_local_invalidation: false`) applies the
/// dentry/attr drops a rename performs only to the *acting* thread's
/// view, so thread 1's second stat serves the renamed-away dentry from
/// its own view — `Ok` where the bare reference file system says
/// `ENOENT`. All three interleavings of the programs are enumerated:
/// exactly the one placing the rename between the stats violates, and
/// with the fix (broadcast on, the default) none do.
#[test]
fn fuse_stale_view_under_interleaved_rename_stat_is_detected() {
    use mcfs::{FsOp, SchedStep, ThreadedMcfs, ThreadedMcfsConfig};

    fn threaded(broadcast: bool) -> ThreadedMcfs {
        let cfg = FuseConfig {
            entry_ttl_ns: u64::MAX,
            attr_ttl_ns: u64::MAX,
            message_cost_ns: 0,
            broadcast_local_invalidation: broadcast,
        };
        let mut m = FuseMount::with_config(VeriFs::v2(), cfg, None);
        let conn = m.connection();
        m.daemon_mut()
            .fs_mut()
            .set_invalidation_sink(std::sync::Arc::new(conn));
        let rename = FsOp::Rename {
            src: "/a".into(),
            dst: "/b".into(),
        };
        let stat = FsOp::Stat { path: "/a".into() };
        ThreadedMcfs::with_setup(
            vec![
                Box::new(CheckpointTarget::new(m)),
                Box::new(CheckpointTarget::new(VeriFs::v2())),
            ],
            vec![vec![rename], vec![stat.clone(), stat]],
            vec![FsOp::CreateFile {
                path: "/a".into(),
                mode: 0o644,
            }],
            ThreadedMcfsConfig::default(),
        )
        .expect("threaded harness")
    }

    let t0 = || SchedStep {
        tid: 0,
        op: FsOp::Rename {
            src: "/a".into(),
            dst: "/b".into(),
        },
    };
    let t1 = || SchedStep {
        tid: 1,
        op: FsOp::Stat { path: "/a".into() },
    };
    // The rename can land before, between, or after the two stats.
    let interleavings = [
        vec![t0(), t1(), t1()],
        vec![t1(), t0(), t1()],
        vec![t1(), t1(), t0()],
    ];
    for (broadcast, expect_violation) in [(false, true), (true, false)] {
        for (i, sched) in interleavings.iter().enumerate() {
            let stale_window = i == 1; // rename between the stats
            let hit = threaded(broadcast).replay_schedule(sched);
            if expect_violation && stale_window {
                let (at, msg) = hit.expect("stale view must be detected");
                assert_eq!(at, 2, "violates at t1's second stat");
                assert!(msg.contains("outcome"), "lockstep discrepancy: {msg}");
                // The minimized trace replays byte-identically on a
                // fresh harness — the oracle is deterministic.
                assert_eq!(threaded(broadcast).replay_schedule(sched), Some((at, msg)));
            } else {
                assert_eq!(
                    hit, None,
                    "interleaving {i} must be clean (broadcast={broadcast})"
                );
            }
        }
    }
}

/// Backend bug found by the interleaved crash oracle. The old
/// `journal::commit` split transactions larger than one header into
/// *independently applied* journal rounds, so a power cut between
/// rounds left the first round checkpointed and the rest lost — a torn
/// sync. The fix journals the whole transaction as a segment chain
/// behind a single commit record before touching any home block.
///
/// Minimized device trace: a 20-block transaction on a 64-byte-block
/// journal (13 header slots, so two segments), with the device failing
/// at the exact write boundary that used to separate round 1 from
/// round 2. After recovery every home block must be all-old or
/// all-new. (`fs-ext`'s own suite scans every boundary; this pins the
/// historically torn one.)
#[test]
fn ext_commit_interrupted_between_old_rounds_is_all_or_nothing() {
    use blockdev::FaultyDevice;

    let ram = RamDisk::new(64, 128 * 64).unwrap();
    let sb = layout::SuperBlock {
        magic: layout::EXT_MAGIC,
        block_size: 64,
        blocks_count: 128,
        inodes_count: 16,
        free_blocks: 10,
        free_inodes: 10,
        journal_blocks: 40,
        flags: 0,
        mount_count: 0,
    };
    let blocks: Vec<(u32, Vec<u8>)> = (0..20)
        .map(|i| (sb.data_start() + i, vec![i as u8 + 1; 64]))
        .collect();
    // Old layout: round 1 = header + 13 images + commit (15 writes),
    // checkpoint (13), clear (1) = 29 writes; the fault fires on write
    // 29, the first write of round 2 — tearing 13 of 20 blocks.
    let mut dev = FaultyDevice::new(ram, FaultPlan::eio(FaultKind::Write, 29, u64::MAX));
    let _ = journal::commit(&mut dev, &sb, 7, &blocks);
    dev.set_plan(FaultPlan::none());
    journal::replay(&mut dev, &sb).unwrap();

    let mut updated = 0usize;
    for (home, image) in &blocks {
        let mut now = vec![0u8; 64];
        dev.read_block(*home as u64, &mut now).unwrap();
        let old = vec![0u8; 64];
        assert!(
            now == *image || now == old,
            "home {home} is neither old nor new"
        );
        if now == *image {
            updated += 1;
        }
    }
    assert!(
        updated == 0 || updated == blocks.len(),
        "sync torn: {updated} of {} home blocks updated",
        blocks.len()
    );
}
