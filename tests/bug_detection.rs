//! The headline capability (§6): MCFS detects each of the four reintroduced
//! historical VeriFS bugs by behavioural divergence, reports a reproducible
//! trace — and finds nothing when the bugs are fixed.

use blockdev::Clock;
use fusesim::{FuseConfig, FuseMount};
use mcfs::{replay, CheckedTarget, CheckpointTarget, Mcfs, McfsConfig, PoolConfig};
use modelcheck::{ExploreConfig, RandomWalk, StopReason};
use verifs::{BugConfig, VeriFs};

fn fuse_target(version: u8, bugs: BugConfig, clock: Clock) -> Box<dyn CheckedTarget> {
    let fs = match version {
        1 => VeriFs::v1_with_bugs(bugs),
        _ => VeriFs::v2_with_bugs(bugs),
    };
    let mut m = FuseMount::with_config(fs, FuseConfig::default(), Some(clock));
    let conn = m.connection();
    m.daemon_mut()
        .fs_mut()
        .set_invalidation_sink(std::sync::Arc::new(conn));
    Box::new(CheckpointTarget::new(m))
}

fn harness(buggy_version: u8, bugs: BugConfig) -> Mcfs {
    let clock = Clock::new();
    let reference = fuse_target(2, BugConfig::none(), clock.clone());
    let buggy = fuse_target(buggy_version, bugs, clock.clone());
    // VeriFS1-era checking used a small pool (v1 supports few operations);
    // the VeriFS2 bugs were found against a richer one (§6).
    let pool = if buggy_version == 1 {
        PoolConfig::small()
    } else {
        PoolConfig::medium()
    };
    Mcfs::with_clock(
        vec![reference, buggy],
        McfsConfig {
            pool,
            ..McfsConfig::default()
        },
        clock,
    )
    .expect("harness")
}

fn detect(buggy_version: u8, bugs: BugConfig, max_ops: u64) -> Option<(u64, Vec<mcfs::FsOp>)> {
    for seed in 0..6u64 {
        let mut m = harness(buggy_version, bugs);
        let report = RandomWalk::new(ExploreConfig {
            max_depth: 12,
            max_ops,
            seed,
            ..ExploreConfig::default()
        })
        .run(&mut m);
        if report.stop == StopReason::Violation {
            let v = &report.violations[0];
            return Some((v.ops_executed, v.trace.clone()));
        }
    }
    None
}

#[test]
fn bug1_truncate_no_zero_is_detected_and_replayable() {
    let bugs = BugConfig {
        v1_truncate_no_zero: true,
        ..BugConfig::default()
    };
    let (ops, trace) = detect(1, bugs, 150_000).expect("bug 1 must be found");
    assert!(ops > 0);
    // The paper highlights precise reproduction: the trace replays.
    let mut fresh = harness(1, bugs);
    assert!(replay(&mut fresh, &trace).is_some(), "trace must reproduce");
    // And the fixed file system passes the identical trace.
    let mut fixed = harness(1, BugConfig::none());
    assert!(
        replay(&mut fixed, &trace).is_none(),
        "fix must pass the trace"
    );
}

#[test]
fn bug2_missing_invalidation_is_detected() {
    let bugs = BugConfig {
        v1_skip_invalidation: true,
        ..BugConfig::default()
    };
    let (_ops, trace) = detect(1, bugs, 60_000).expect("bug 2 must be found");
    let mut fixed = harness(1, BugConfig::none());
    assert!(replay(&mut fixed, &trace).is_none());
}

#[test]
fn bug3_hole_not_zeroed_is_detected() {
    let bugs = BugConfig {
        v2_hole_no_zero: true,
        ..BugConfig::default()
    };
    let (_ops, trace) = detect(2, bugs, 200_000).expect("bug 3 must be found");
    let mut fixed = harness(2, BugConfig::none());
    assert!(replay(&mut fixed, &trace).is_none());
}

#[test]
fn bug4_size_only_on_capacity_growth_is_detected() {
    let bugs = BugConfig {
        v2_size_only_on_capacity_growth: true,
        ..BugConfig::default()
    };
    let (_ops, trace) = detect(2, bugs, 200_000).expect("bug 4 must be found");
    let mut fixed = harness(2, BugConfig::none());
    assert!(replay(&mut fixed, &trace).is_none());
}

#[test]
fn clean_filesystems_run_without_detection() {
    // The control: no bugs, no violations (paper: 159M ops, zero errors).
    let mut m = harness(1, BugConfig::none());
    let report = RandomWalk::new(ExploreConfig {
        max_depth: 12,
        max_ops: 5_000,
        seed: 99,
        ..ExploreConfig::default()
    })
    .run(&mut m);
    assert_eq!(
        report.stop,
        StopReason::OpBudget,
        "{}",
        report
            .violations
            .first()
            .map(|v| v.to_string())
            .unwrap_or_default()
    );
}
