//! Reproduce the paper's headline use case: MCFS finds a real bug and
//! reports the exact operation sequence, which then replays deterministically.
//!
//! We reintroduce VeriFS1's historical truncate bug (it failed to zero newly
//! allocated space when expanding a file — found by the authors after ~9K
//! operations) and let the checker find it.
//!
//! Run with: `cargo run --release --example find_seeded_bug`

use blockdev::Clock;
use fusesim::FuseMount;
use mcfs::{replay, CheckedTarget, CheckpointTarget, Mcfs, McfsConfig, PoolConfig};
use modelcheck::{ExploreConfig, RandomWalk, StopReason};
use verifs::{BugConfig, VeriFs};

fn target(version: u8, bugs: BugConfig, clock: Clock) -> Box<dyn CheckedTarget> {
    let fs = match version {
        1 => VeriFs::v1_with_bugs(bugs),
        _ => VeriFs::v2_with_bugs(bugs),
    };
    let mut mount = FuseMount::with_config(fs, fusesim::FuseConfig::default(), Some(clock));
    let conn = mount.connection();
    mount
        .daemon_mut()
        .fs_mut()
        .set_invalidation_sink(std::sync::Arc::new(conn));
    Box::new(CheckpointTarget::new(mount))
}

fn harness(bugs: BugConfig) -> Result<Mcfs, vfs::Errno> {
    let clock = Clock::new();
    Mcfs::with_clock(
        vec![
            target(2, BugConfig::none(), clock.clone()), // reference
            target(1, bugs, clock.clone()),              // buggy VeriFS1
        ],
        McfsConfig {
            pool: PoolConfig::medium(),
            ..McfsConfig::default()
        },
        clock,
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bug = BugConfig {
        v1_truncate_no_zero: true,
        ..BugConfig::default()
    };
    println!("searching for the truncate bug with a randomized driver...");
    let mut checked = harness(bug)?;
    let report = RandomWalk::new(ExploreConfig {
        max_depth: 12,
        max_ops: 200_000,
        seed: 4,
        ..ExploreConfig::default()
    })
    .run(&mut checked);

    assert_eq!(report.stop, StopReason::Violation, "the bug must be found");
    let violation = &report.violations[0];
    println!("\nfound after {} operations!", violation.ops_executed);
    println!("{violation}");

    // The paper stresses reproducibility: the logged trace replays exactly.
    println!("replaying the trace on a fresh pair...");
    let mut fresh = harness(bug)?;
    let (step, msg) = replay(&mut fresh, &violation.trace).expect("trace must reproduce");
    println!(
        "reproduced at step {} of {}:",
        step + 1,
        violation.trace.len()
    );
    println!("{}", msg.lines().next().unwrap_or(""));

    // And the fixed file system passes the same trace.
    let mut fixed = harness(BugConfig::none())?;
    assert!(replay(&mut fixed, &violation.trace).is_none());
    println!("\nwith the bug fixed, the same trace runs clean.");
    Ok(())
}
