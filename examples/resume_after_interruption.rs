//! §7 future work, implemented: resuming the model-checking process after an
//! interruption (the paper wants this for kernel crashes mid-check).
//!
//! The visited-state set is owned by the caller and survives across runs;
//! phase 2 picks up where the interrupted phase 1 stopped instead of
//! re-exploring known states.
//!
//! Run with: `cargo run --release --example resume_after_interruption`

use fusesim::FuseMount;
use mcfs::{CheckedTarget, CheckpointTarget, Mcfs, McfsConfig, PoolConfig};
use modelcheck::{DfsExplorer, ExploreConfig, StopReason, VisitedSet};
use verifs::VeriFs;

fn fresh_harness() -> Mcfs {
    let wrap = |fs: VeriFs| {
        let mut mount = FuseMount::new(fs);
        let conn = mount.connection();
        mount
            .daemon_mut()
            .fs_mut()
            .set_invalidation_sink(std::sync::Arc::new(conn));
        CheckpointTarget::new(mount)
    };
    let targets: Vec<Box<dyn CheckedTarget>> =
        vec![Box::new(wrap(VeriFs::v1())), Box::new(wrap(VeriFs::v2()))];
    Mcfs::new(
        targets,
        McfsConfig {
            pool: PoolConfig::small(),
            ..McfsConfig::default()
        },
    )
    .expect("harness")
}

fn main() {
    // The persistent artifact that survives the "crash".
    let mut visited = VisitedSet::new(1 << 14);

    // Phase 1: checking is interrupted (op budget plays the kernel crash).
    let mut harness = fresh_harness();
    let phase1 = DfsExplorer::new(ExploreConfig {
        max_depth: 3,
        max_ops: 120,
        ..ExploreConfig::default()
    })
    .run_with_visited(&mut harness, &mut visited);
    println!(
        "phase 1 (interrupted): {:?} after {} ops, {} states known",
        phase1.stop,
        phase1.stats.ops_executed,
        visited.len()
    );
    assert_eq!(phase1.stop, StopReason::OpBudget);
    let known_after_crash = visited.len();

    // Phase 2: a fresh checking session resumes with the saved visited set.
    let mut harness = fresh_harness();
    let phase2 = DfsExplorer::new(ExploreConfig {
        max_depth: 3,
        max_ops: 1_000_000,
        ..ExploreConfig::default()
    })
    .run_with_visited(&mut harness, &mut visited);
    println!(
        "phase 2 (resumed)    : {:?} after {} more ops, {} states total",
        phase2.stop,
        phase2.stats.ops_executed,
        visited.len()
    );
    assert_eq!(phase2.stop, StopReason::Exhausted);
    assert!(visited.len() > known_after_crash);

    // Control: a cold run covers the same space — nothing was lost.
    let mut cold = VisitedSet::new(1 << 14);
    let mut harness = fresh_harness();
    DfsExplorer::new(ExploreConfig {
        max_depth: 3,
        max_ops: 1_000_000,
        ..ExploreConfig::default()
    })
    .run_with_visited(&mut harness, &mut cold);
    println!(
        "cold control         : {} states (resumed total: {})",
        cold.len(),
        visited.len()
    );
    assert_eq!(cold.len(), visited.len(), "resume must lose nothing");
    println!("\ninterruption + resume covered the identical state space.");
}
