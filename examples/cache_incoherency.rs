//! The paper's central challenge (§3.2) made visible: restoring a device
//! image underneath a mounted file system leaves its in-memory caches
//! describing a discarded world — and the only reliable fixes are
//! remounting (kernel file systems) or in-file-system invalidation
//! (VeriFS's checkpoint/restore API + FUSE notify calls).
//!
//! Run with: `cargo run --release --example cache_incoherency`

use std::sync::Arc;

use fusesim::FuseMount;
use mcfs::EQUALIZE_DUMMY;
use verifs::{BugConfig, VeriFs};
use vfs::{DeviceBacked, Errno, FileMode, FileSystem, FsCheckpoint};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _ = EQUALIZE_DUMMY; // silence doc-link helper in older toolchains

    println!("--- part 1: a kernel file system with stale caches ---");
    let mut ext2 = fs_ext::ext2_on_ram(256 * 1024)?;
    ext2.mount()?;
    ext2.sync()?;
    let snapshot = ext2.snapshot_device()?; // state S0: empty root

    let fd = ext2.create("/created-later", FileMode::REG_DEFAULT)?;
    ext2.close(fd)?;
    ext2.sync()?;
    println!("created /created-later and synced");

    // The model checker rolls the device back to S0 without telling the
    // mounted file system — exactly what MCFS's first prototype did.
    ext2.restore_device(&snapshot)?;
    let stale = ext2.stat("/created-later").is_ok();
    println!("after external device restore, stat(/created-later) succeeds: {stale}");
    assert!(stale, "stale caches serve the discarded future");

    // The paper's workaround: unmount/remount reloads everything from disk.
    // (A regular unmount would write the stale caches back; drop instead.)
    let mut ext2 = fs_ext::ext2_on_ram(256 * 1024)?; // fresh instance…
    ext2.mount()?;
    ext2.sync()?;
    let snapshot = ext2.snapshot_device()?;
    let fd = ext2.create("/created-later", FileMode::REG_DEFAULT)?;
    ext2.close(fd)?;
    ext2.unmount()?; // cleanly persist
    ext2.restore_device(&snapshot)?; // rollback while unmounted
    ext2.mount()?; // remount loads the restored truth
    assert_eq!(ext2.stat("/created-later").unwrap_err(), Errno::ENOENT);
    println!("with the remount workaround, the file is (correctly) gone\n");

    println!("--- part 2: VeriFS behind FUSE, with and without invalidation ---");
    let run = |bugs: BugConfig| -> Result<bool, Errno> {
        let mut mount = FuseMount::new(VeriFs::v1_with_bugs(bugs));
        let conn = mount.connection();
        mount
            .daemon_mut()
            .fs_mut()
            .set_invalidation_sink(Arc::new(conn));
        mount.mount()?;
        mount.checkpoint(1)?; // ioctl_CHECKPOINT
        mount.mkdir("/testdir", FileMode::DIR_DEFAULT)?;
        mount.restore(1)?; // ioctl_RESTORE: rolls back before the mkdir
                           // If the kernel dentry cache was not invalidated, this mkdir fails
                           // with EEXIST even though the directory does not exist — the exact
                           // symptom of the paper's bug 2.
        Ok(mount.mkdir("/testdir", FileMode::DIR_DEFAULT) == Err(Errno::EEXIST))
    };
    let buggy = run(BugConfig {
        v1_skip_invalidation: true,
        ..BugConfig::default()
    })?;
    println!("without fuse_lowlevel_notify_inval_*: mkdir wrongly reports EEXIST = {buggy}");
    assert!(buggy);
    let fixed = run(BugConfig::none())?;
    println!("with cache invalidation wired up:     mkdir wrongly reports EEXIST = {fixed}");
    assert!(!fixed);
    println!("\ncache incoherency demonstrated and both fixes verified.");
    Ok(())
}
