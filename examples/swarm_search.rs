//! Swarm verification (§7): several diversified randomized searches hunt a
//! seeded bug in parallel; the first to find it stops the fleet.
//!
//! Run with: `cargo run --release --example swarm_search`

use blockdev::Clock;
use fusesim::FuseMount;
use mcfs::{CheckedTarget, CheckpointTarget, Mcfs, McfsConfig, PoolConfig};
use modelcheck::{run_swarm, ExploreConfig, SwarmConfig};
use verifs::{BugConfig, VeriFs};

fn build_harness(_worker: usize) -> Mcfs {
    let clock = Clock::new();
    let wrap = |fs: VeriFs| {
        let mut mount =
            FuseMount::with_config(fs, fusesim::FuseConfig::default(), Some(clock.clone()));
        let conn = mount.connection();
        mount
            .daemon_mut()
            .fs_mut()
            .set_invalidation_sink(std::sync::Arc::new(conn));
        CheckpointTarget::new(mount)
    };
    let bug = BugConfig {
        v2_hole_no_zero: true,
        ..BugConfig::default()
    };
    let targets: Vec<Box<dyn CheckedTarget>> = vec![
        Box::new(wrap(VeriFs::v2())),
        Box::new(wrap(VeriFs::v2_with_bugs(bug))),
    ];
    Mcfs::with_clock(
        targets,
        McfsConfig {
            pool: PoolConfig::medium(),
            ..McfsConfig::default()
        },
        clock,
    )
    .expect("harness construction")
}

fn main() {
    let cfg = SwarmConfig {
        workers: 4,
        base: ExploreConfig {
            max_depth: 12,
            max_ops: 150_000,
            seed: 100,
            ..ExploreConfig::default()
        },
        shared_visited: false,
        strategies: vec![],
    };
    println!(
        "launching a swarm of {} diversified searches...",
        cfg.workers
    );
    let report = run_swarm(&cfg, build_harness);

    for (i, w) in report.workers.iter().enumerate() {
        println!(
            "worker {i}: {:?} after {} ops ({} states)",
            w.stop, w.stats.ops_executed, w.stats.states_new
        );
    }
    assert!(
        report.found_violation(),
        "the swarm must find the seeded bug"
    );
    let v = report.violations().next().expect("violation recorded");
    println!(
        "\nfirst detection after {} ops; trace length {}",
        v.ops_executed,
        v.trace.len()
    );
    println!("total ops across the swarm: {}", report.total_ops());
}
