//! Three-way comparison of kernel file systems with majority voting —
//! the paper's future-work item (§7) of running more than two file systems
//! and recognizing misbehaviour by vote.
//!
//! Ext2, Ext4 and XFS run in lockstep on RAM block devices using the
//! device-snapshot + remount strategy (§3.2/§4).
//!
//! Run with: `cargo run --release --example compare_kernel_filesystems`

use blockdev::{Clock, LatencyModel, RamDisk, TimedDevice};
use fs_ext::{ExtConfig, ExtFs};
use fs_xfs::{XfsConfig, XfsFs};
use mcfs::{CheckedTarget, Mcfs, McfsConfig, PoolConfig, RemountMode, RemountTarget};
use modelcheck::{DfsExplorer, ExploreConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let clock = Clock::new();
    let ram = LatencyModel::ram();

    let e2 = ExtFs::format(
        TimedDevice::new(RamDisk::new(1024, 256 * 1024)?, ram, clock.clone()),
        ExtConfig::ext2(),
    )?;
    let e4 = ExtFs::format(
        TimedDevice::new(RamDisk::new(1024, 256 * 1024)?, ram, clock.clone()),
        ExtConfig::ext4(),
    )?;
    let xfs = XfsFs::format(
        TimedDevice::new(RamDisk::new(4096, 16 * 1024 * 1024)?, ram, clock.clone()),
        XfsConfig::default(),
    )?;

    let targets: Vec<Box<dyn CheckedTarget>> = vec![
        Box::new(RemountTarget::new(e2, RemountMode::PerOp).with_clock(clock.clone())),
        Box::new(RemountTarget::new(e4, RemountMode::PerOp).with_clock(clock.clone())),
        Box::new(RemountTarget::new(xfs, RemountMode::PerOp).with_clock(clock.clone())),
    ];
    let mut harness = Mcfs::with_clock(
        targets,
        McfsConfig {
            pool: PoolConfig::small(),
            majority_voting: true,
            ..McfsConfig::default()
        },
        clock.clone(),
    )?;
    println!("checking {:?} in lockstep...", harness.target_names());

    let report = DfsExplorer::new(ExploreConfig {
        max_depth: 3,
        max_ops: 50_000,
        ..ExploreConfig::default()
    })
    .with_clock(clock.clone())
    .run(&mut harness);

    println!("stop            : {:?}", report.stop);
    println!("ops executed    : {}", report.stats.ops_executed);
    println!("distinct states : {}", report.stats.states_new);
    println!("violations      : {}", report.violations.len());
    println!("virtual time    : {:.2} s", clock.now_secs());
    for v in &report.violations {
        println!("\n{v}");
    }
    assert!(
        report.violations.is_empty(),
        "ext2, ext4 and xfs agree once the 3.4 workarounds normalize their quirks"
    );
    println!("\nall three kernel file systems agree (lost+found, dir sizes,");
    println!("entry ordering and capacity differences all normalized away).");
    Ok(())
}
