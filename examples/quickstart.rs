//! Quickstart: model-check VeriFS1 against VeriFS2 with the
//! checkpoint/restore API, exactly as the paper's fastest configuration.
//!
//! Run with: `cargo run --release --example quickstart`

use blockdev::Clock;
use fusesim::FuseMount;
use mcfs::{CheckedTarget, CheckpointTarget, Mcfs, McfsConfig, PoolConfig};
use modelcheck::{DfsExplorer, ExploreConfig, StopReason};
use verifs::VeriFs;

fn mount_through_fuse(fs: VeriFs, clock: Clock) -> FuseMount<VeriFs> {
    let mut mount = FuseMount::with_config(fs, fusesim::FuseConfig::default(), Some(clock));
    let conn = mount.connection();
    mount
        .daemon_mut()
        .fs_mut()
        .set_invalidation_sink(std::sync::Arc::new(conn));
    mount
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A shared virtual clock accounts every modelled cost.
    let clock = Clock::new();

    // The two file systems under test, each behind a simulated FUSE mount
    // with the kernel-cache invalidation connection wired up.
    let v1 = mount_through_fuse(VeriFs::v1(), clock.clone());
    let v2 = mount_through_fuse(VeriFs::v2(), clock.clone());

    // Both use the paper's proposed state-tracking API: ioctl_CHECKPOINT /
    // ioctl_RESTORE.
    let targets: Vec<Box<dyn CheckedTarget>> = vec![
        Box::new(CheckpointTarget::new(v1)),
        Box::new(CheckpointTarget::new(v2)),
    ];
    let mut harness = Mcfs::with_clock(
        targets,
        McfsConfig {
            pool: PoolConfig::small(),
            ..McfsConfig::default()
        },
        clock.clone(),
    )?;

    // Exhaustively explore all operation sequences up to depth 3.
    let report = DfsExplorer::new(ExploreConfig {
        max_depth: 3,
        max_ops: 100_000,
        ..ExploreConfig::default()
    })
    .with_clock(clock.clone())
    .run(&mut harness);

    println!("exploration     : {:?}", report.stop);
    println!("ops executed    : {}", report.stats.ops_executed);
    println!("distinct states : {}", report.stats.states_new);
    println!(
        "states matched  : {} (deduplicated)",
        report.stats.states_matched
    );
    println!("violations      : {}", report.violations.len());
    println!("virtual time    : {:.3} s", clock.now_secs());
    if let Some(rate) = report.stats.ops_per_sec() {
        println!("rate            : {rate:.0} ops/s (virtual)");
    }
    assert_eq!(report.stop, StopReason::Exhausted);
    assert!(report.violations.is_empty(), "VeriFS1 and VeriFS2 agree");
    println!("\nVeriFS1 and VeriFS2 agree on the whole bounded state space.");
    Ok(())
}
