//! Workspace root crate: re-exports for examples and integration tests.
//!
//! The static-analysis layer lives in its own `analyze` crate and is
//! re-exported here (rather than through `modelcheck`) because it drives
//! concrete file-system backends to validate the derived relations, and
//! `modelcheck` sits below those crates in the dependency order.
pub use analyze;
pub use mcfs as core;
