#!/usr/bin/env bash
# Regenerates every experiment in EXPERIMENTS.md and runs the full test and
# bench suites. Results land in ./artifacts/.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p artifacts

echo "== building =="
cargo build --workspace --release

echo "== tests =="
cargo test --workspace 2>&1 | tee artifacts/test_output.txt

echo "== experiments =="
for b in fig2 fig3 remount_ablation bug_detection snapshot_compare soak false_positives ablation; do
  echo "--- $b ---"
  cargo run --release -p mcfs-bench --bin "$b" | tee "artifacts/$b.txt"
done

echo "== examples =="
for e in quickstart find_seeded_bug compare_kernel_filesystems cache_incoherency swarm_search resume_after_interruption; do
  echo "--- $e ---"
  cargo run --release --example "$e" | tee "artifacts/example_$e.txt"
done

echo "== criterion benches =="
cargo bench --workspace 2>&1 | tee artifacts/bench_output.txt

echo "all artifacts in ./artifacts"
