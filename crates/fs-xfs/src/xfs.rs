//! The XFS-style engine: allocation groups, extent-mapped files, and
//! hash-ordered directories.
//!
//! Differences from the ext engine that matter to MCFS (paper §3.4, §6):
//!
//! * **16 MiB minimum device size** — why the paper gives XFS a much larger
//!   RAM disk than ext2/ext4, which in turn blows up the checker's
//!   concrete-state footprint and drives the swap-bound slowdown of Fig. 2;
//! * **entry-based directory sizes** (ext reports block multiples);
//! * **no `lost+found`**;
//! * **different usable capacity** for the same device size (per-AG headers
//!   and inode tables).

use std::collections::{BTreeMap, HashMap, HashSet};

use blockdev::BlockDevice;
use vfs::{
    path, AccessMode, DeviceBacked, DirEntry, Errno, Fd, FdTable, FileMode, FileStat, FileSystem,
    FileType, FsCapabilities, Ino, OpenFlags, StatFs, VfsResult, XattrFlags,
};

const XFS_MAGIC: u32 = 0x5846_5331; // "XFS1"
const INODE_SIZE: usize = 128;
const INLINE_EXTENTS: usize = 5;
const SB_FLAG_DIRTY: u32 = 1;
const MAX_NLINK: u16 = 32_000;

/// Minimum device size, as in the paper's setup (§6).
pub const MIN_DEVICE_BYTES: u64 = 16 * 1024 * 1024;

const FT_FREE: u8 = 0;
const FT_REG: u8 = 1;
const FT_DIR: u8 = 2;
const FT_SYMLINK: u8 = 3;

/// Construction-time configuration.
#[derive(Debug, Clone)]
pub struct XfsConfig {
    /// Block size (must equal the device's).
    pub block_size: usize,
    /// Number of allocation groups.
    pub ag_count: u32,
    /// Inodes per allocation group (slot 0 of AG 0 is reserved; root is
    /// inode 1).
    pub inodes_per_ag: u32,
}

impl Default for XfsConfig {
    fn default() -> Self {
        XfsConfig {
            block_size: 4096,
            ag_count: 4,
            inodes_per_ag: 32,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SuperBlock {
    magic: u32,
    block_size: u32,
    blocks_count: u32,
    ag_count: u32,
    ag_blocks: u32,
    inodes_per_ag: u32,
    flags: u32,
    mount_count: u32,
}

impl SuperBlock {
    fn encode(&self, buf: &mut [u8]) {
        let fields = [
            self.magic,
            self.block_size,
            self.blocks_count,
            self.ag_count,
            self.ag_blocks,
            self.inodes_per_ag,
            self.flags,
            self.mount_count,
        ];
        for (i, f) in fields.iter().enumerate() {
            buf[i * 4..i * 4 + 4].copy_from_slice(&f.to_le_bytes());
        }
    }

    fn decode(buf: &[u8]) -> VfsResult<Self> {
        let word = |i: usize| {
            u32::from_le_bytes([buf[i * 4], buf[i * 4 + 1], buf[i * 4 + 2], buf[i * 4 + 3]])
        };
        let sb = SuperBlock {
            magic: word(0),
            block_size: word(1),
            blocks_count: word(2),
            ag_count: word(3),
            ag_blocks: word(4),
            inodes_per_ag: word(5),
            flags: word(6),
            mount_count: word(7),
        };
        if sb.magic != XFS_MAGIC || sb.block_size == 0 || sb.ag_count == 0 || sb.ag_blocks == 0 {
            return Err(Errno::EIO);
        }
        Ok(sb)
    }

    fn inode_table_blocks(&self) -> u32 {
        ((self.inodes_per_ag as usize * INODE_SIZE).div_ceil(self.block_size as usize)) as u32
    }

    /// First data block of AG `ag` (after header + inode table).
    fn ag_data_start(&self, ag: u32) -> u32 {
        ag * self.ag_blocks + 1 + self.inode_table_blocks()
    }

    fn ag_end(&self, ag: u32) -> u32 {
        ((ag + 1) * self.ag_blocks).min(self.blocks_count)
    }

    fn total_inodes(&self) -> u32 {
        self.ag_count * self.inodes_per_ag
    }

    fn total_data_blocks(&self) -> u32 {
        (0..self.ag_count)
            .map(|ag| self.ag_end(ag).saturating_sub(self.ag_data_start(ag)))
            .sum()
    }
}

/// One contiguous run of device blocks backing consecutive file blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Extent {
    /// First device block.
    start: u32,
    /// Length in blocks.
    len: u32,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct XInode {
    ftype: u8,
    mode: u16,
    nlink: u16,
    uid: u32,
    gid: u32,
    size: u64,
    atime: u64,
    mtime: u64,
    ctime: u64,
    /// Data extents, in file order (dense: consecutive file blocks).
    extents: Vec<Extent>,
    /// Overflow block holding extents past [`INLINE_EXTENTS`] (0 = none).
    overflow: u32,
    /// Extended-attribute block (0 = none).
    xattr_block: u32,
}

impl XInode {
    fn free() -> Self {
        XInode {
            ftype: FT_FREE,
            mode: 0,
            nlink: 0,
            uid: 0,
            gid: 0,
            size: 0,
            atime: 0,
            mtime: 0,
            ctime: 0,
            extents: Vec::new(),
            overflow: 0,
            xattr_block: 0,
        }
    }

    fn nblocks(&self) -> u32 {
        self.extents.iter().map(|e| e.len).sum()
    }

    /// Encodes the fixed part + inline extents. Overflow extents are written
    /// separately by the engine.
    fn encode(&self, buf: &mut [u8]) {
        buf[..INODE_SIZE].fill(0);
        buf[0] = self.ftype;
        buf[1] = self.extents.len().min(255) as u8;
        buf[2..4].copy_from_slice(&self.mode.to_le_bytes());
        buf[4..6].copy_from_slice(&self.nlink.to_le_bytes());
        buf[8..12].copy_from_slice(&self.uid.to_le_bytes());
        buf[12..16].copy_from_slice(&self.gid.to_le_bytes());
        buf[16..24].copy_from_slice(&self.size.to_le_bytes());
        buf[24..32].copy_from_slice(&self.atime.to_le_bytes());
        buf[32..40].copy_from_slice(&self.mtime.to_le_bytes());
        buf[40..48].copy_from_slice(&self.ctime.to_le_bytes());
        buf[48..52].copy_from_slice(&self.overflow.to_le_bytes());
        buf[52..56].copy_from_slice(&self.xattr_block.to_le_bytes());
        for (i, e) in self.extents.iter().take(INLINE_EXTENTS).enumerate() {
            let off = 56 + i * 8;
            buf[off..off + 4].copy_from_slice(&e.start.to_le_bytes());
            buf[off + 4..off + 8].copy_from_slice(&e.len.to_le_bytes());
        }
    }

    /// Decodes the fixed part; `extents` holds only the inline ones and the
    /// engine appends the overflow extents afterwards.
    fn decode(buf: &[u8]) -> (Self, u8) {
        let u16_at = |i: usize| u16::from_le_bytes([buf[i], buf[i + 1]]);
        let u32_at = |i: usize| u32::from_le_bytes([buf[i], buf[i + 1], buf[i + 2], buf[i + 3]]);
        let u64_at = |i: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&buf[i..i + 8]);
            u64::from_le_bytes(b)
        };
        let total_extents = buf[1];
        let mut inode = XInode {
            ftype: buf[0],
            mode: u16_at(2),
            nlink: u16_at(4),
            uid: u32_at(8),
            gid: u32_at(12),
            size: u64_at(16),
            atime: u64_at(24),
            mtime: u64_at(32),
            ctime: u64_at(40),
            extents: Vec::new(),
            overflow: u32_at(48),
            xattr_block: u32_at(52),
        };
        for i in 0..(total_extents as usize).min(INLINE_EXTENTS) {
            let off = 56 + i * 8;
            inode.extents.push(Extent {
                start: u32_at(off),
                len: u32_at(off + 4),
            });
        }
        (inode, total_extents)
    }
}

#[derive(Debug, Clone)]
struct BufBlock {
    data: Vec<u8>,
    dirty: bool,
}

#[derive(Debug, Clone, Copy)]
struct OpenFile {
    ino: u32,
    offset: u64,
    read: bool,
    write: bool,
    append: bool,
}

#[derive(Debug, Clone)]
struct Mounted {
    sb: SuperBlock,
    /// Per-AG sorted free-extent lists.
    free: Vec<Vec<Extent>>,
    /// Per-AG inode bitmaps (bit set = in use).
    ibitmaps: Vec<Vec<u8>>,
    meta_dirty: bool,
    icache: HashMap<u32, XInode>,
    idirty: HashSet<u32>,
    bufs: HashMap<u32, BufBlock>,
    fds: FdTable<OpenFile>,
    time: u64,
}

/// An XFS-style file system on a block device.
#[derive(Debug, Clone)]
pub struct XfsFs<D> {
    dev: D,
    config: XfsConfig,
    m: Option<Mounted>,
}

fn io<T>(r: Result<T, blockdev::DeviceError>) -> VfsResult<T> {
    r.map_err(|_| Errno::EIO)
}

/// FNV-1a hash of a directory-entry name: XFS returns readdir entries in
/// hash order, not insertion or name order.
fn name_hash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

impl<D: BlockDevice> XfsFs<D> {
    /// Formats `dev` (mkfs.xfs) and returns the unmounted file system.
    ///
    /// # Errors
    ///
    /// `EINVAL` if the device is smaller than [`MIN_DEVICE_BYTES`], has a
    /// mismatched block size, or cannot hold the AG layout.
    pub fn format(mut dev: D, config: XfsConfig) -> VfsResult<Self> {
        let bs = config.block_size;
        if dev.block_size() != bs || dev.size_bytes() < MIN_DEVICE_BYTES {
            return Err(Errno::EINVAL);
        }
        let blocks_count = dev.num_blocks() as u32;
        let ag_blocks = blocks_count.div_ceil(config.ag_count);
        let sb = SuperBlock {
            magic: XFS_MAGIC,
            block_size: bs as u32,
            blocks_count,
            ag_count: config.ag_count,
            ag_blocks,
            inodes_per_ag: config.inodes_per_ag,
            flags: 0,
            mount_count: 0,
        };
        if config.inodes_per_ag as usize > bs * 4 {
            return Err(Errno::EINVAL);
        }
        for ag in 0..sb.ag_count {
            if sb.ag_data_start(ag) >= sb.ag_end(ag) {
                return Err(Errno::EINVAL);
            }
        }
        // AG headers: inode bitmap + free list (one whole-AG free extent).
        for ag in 0..sb.ag_count {
            let mut header = vec![0u8; bs];
            let mut ibitmap = vec![0u8; config.inodes_per_ag.div_ceil(8) as usize];
            if ag == 0 {
                ibitmap[0] |= 0b11; // reserved slot 0 + root inode 1
            }
            let free = vec![Extent {
                start: sb.ag_data_start(ag),
                len: sb.ag_end(ag) - sb.ag_data_start(ag),
            }];
            encode_ag_header(&mut header, &ibitmap, &free);
            io(dev.write_block((ag * ag_blocks) as u64, &header))?;
            // Zeroed inode table.
            let zero = vec![0u8; bs];
            for b in 0..sb.inode_table_blocks() {
                io(dev.write_block((ag * ag_blocks + 1 + b) as u64, &zero))?;
            }
        }
        // Root inode.
        let mut root = XInode::free();
        root.ftype = FT_DIR;
        root.mode = FileMode::DIR_DEFAULT.bits();
        root.nlink = 2;
        let mut table_block = vec![0u8; bs];
        io(dev.read_block(1, &mut table_block))?;
        root.encode(&mut table_block[INODE_SIZE..2 * INODE_SIZE]);
        io(dev.write_block(1, &table_block))?;
        // Superblock lives in the first bytes of AG 0's header block — no:
        // keep it simple and overwrite block 0 with header+sb combined.
        // Instead, reserve the tail of the header block for the superblock.
        let mut header = vec![0u8; bs];
        io(dev.read_block(0, &mut header))?;
        sb.encode(&mut header[bs - 32..]);
        io(dev.write_block(0, &header))?;
        io(dev.flush())?;
        Ok(XfsFs {
            dev,
            config,
            m: None,
        })
    }

    /// Attaches to an already formatted device.
    pub fn open_device(dev: D, config: XfsConfig) -> Self {
        XfsFs {
            dev,
            config,
            m: None,
        }
    }

    /// Direct access to the backing device.
    pub fn device_mut(&mut self) -> &mut D {
        &mut self.dev
    }

    /// Approximate bytes of mounted in-memory state.
    pub fn cache_bytes(&self) -> usize {
        match &self.m {
            Some(m) => {
                m.bufs.len() * (self.config.block_size + 16)
                    + m.icache.len() * INODE_SIZE
                    + m.free.iter().map(|f| f.len() * 8).sum::<usize>()
            }
            None => 0,
        }
    }

    fn core(&mut self) -> VfsResult<Xcore<'_, D>> {
        match &mut self.m {
            Some(m) => Ok(Xcore {
                dev: &mut self.dev,
                m,
                bs: self.config.block_size,
            }),
            None => Err(Errno::ENODEV),
        }
    }
}

fn encode_ag_header(buf: &mut [u8], ibitmap: &[u8], free: &[Extent]) {
    buf.fill(0);
    buf[0..2].copy_from_slice(&(ibitmap.len() as u16).to_le_bytes());
    buf[2..2 + ibitmap.len()].copy_from_slice(ibitmap);
    let fstart = 2 + ibitmap.len();
    buf[fstart..fstart + 2].copy_from_slice(&(free.len() as u16).to_le_bytes());
    for (i, e) in free.iter().enumerate() {
        let off = fstart + 2 + i * 8;
        buf[off..off + 4].copy_from_slice(&e.start.to_le_bytes());
        buf[off + 4..off + 8].copy_from_slice(&e.len.to_le_bytes());
    }
}

fn decode_ag_header(buf: &[u8]) -> (Vec<u8>, Vec<Extent>) {
    let blen = u16::from_le_bytes([buf[0], buf[1]]) as usize;
    let ibitmap = buf[2..2 + blen].to_vec();
    let fstart = 2 + blen;
    let count = u16::from_le_bytes([buf[fstart], buf[fstart + 1]]) as usize;
    let mut free = Vec::with_capacity(count);
    for i in 0..count {
        let off = fstart + 2 + i * 8;
        let u32_at = |o: usize| u32::from_le_bytes([buf[o], buf[o + 1], buf[o + 2], buf[o + 3]]);
        free.push(Extent {
            start: u32_at(off),
            len: u32_at(off + 4),
        });
    }
    (ibitmap, free)
}

struct Xcore<'a, D> {
    dev: &'a mut D,
    m: &'a mut Mounted,
    bs: usize,
}

impl<D: BlockDevice> Xcore<'_, D> {
    fn now(&mut self) -> u64 {
        self.m.time += 1;
        self.m.time
    }

    fn load_buf(&mut self, blk: u32) -> VfsResult<()> {
        if !self.m.bufs.contains_key(&blk) {
            let mut data = vec![0u8; self.bs];
            io(self.dev.read_block(blk as u64, &mut data))?;
            self.m.bufs.insert(blk, BufBlock { data, dirty: false });
        }
        Ok(())
    }

    fn read_buf(&mut self, blk: u32) -> VfsResult<Vec<u8>> {
        self.load_buf(blk)?;
        Ok(self.m.bufs[&blk].data.clone())
    }

    fn with_buf<R>(&mut self, blk: u32, f: impl FnOnce(&mut Vec<u8>) -> R) -> VfsResult<R> {
        self.load_buf(blk)?;
        let buf = self.m.bufs.get_mut(&blk).expect("just loaded");
        let r = f(&mut buf.data);
        buf.dirty = true;
        Ok(r)
    }

    // ---- extent allocation ------------------------------------------------

    fn free_blocks_total(&self) -> u64 {
        self.m
            .free
            .iter()
            .flat_map(|l| l.iter())
            .map(|e| e.len as u64)
            .sum()
    }

    /// Allocates up to `want` contiguous blocks, preferring `pref_ag`.
    /// Returns the allocated extent (possibly shorter than `want`).
    fn alloc_extent(&mut self, pref_ag: u32, want: u32) -> VfsResult<Extent> {
        let ag_order: Vec<u32> = (0..self.m.sb.ag_count)
            .map(|i| (pref_ag + i) % self.m.sb.ag_count)
            .collect();
        // First pass: an extent that covers the whole request (best fit).
        for &ag in &ag_order {
            let list = &mut self.m.free[ag as usize];
            if let Some(idx) = list
                .iter()
                .enumerate()
                .filter(|(_, e)| e.len >= want)
                .min_by_key(|(_, e)| e.len)
                .map(|(i, _)| i)
            {
                let e = &mut list[idx];
                let alloc = Extent {
                    start: e.start,
                    len: want,
                };
                e.start += want;
                e.len -= want;
                if e.len == 0 {
                    list.remove(idx);
                }
                self.m.meta_dirty = true;
                self.zero_extent(alloc)?;
                return Ok(alloc);
            }
        }
        // Second pass: largest available run anywhere.
        let mut best: Option<(u32, usize)> = None;
        for &ag in &ag_order {
            for (i, e) in self.m.free[ag as usize].iter().enumerate() {
                if best
                    .map(|(bag, bi)| self.m.free[bag as usize][bi].len < e.len)
                    .unwrap_or(true)
                {
                    best = Some((ag, i));
                }
            }
        }
        let (ag, idx) = best.ok_or(Errno::ENOSPC)?;
        let alloc = self.m.free[ag as usize].remove(idx);
        self.m.meta_dirty = true;
        self.zero_extent(alloc)?;
        Ok(alloc)
    }

    fn zero_extent(&mut self, e: Extent) -> VfsResult<()> {
        for blk in e.start..e.start + e.len {
            self.m.bufs.insert(
                blk,
                BufBlock {
                    data: vec![0u8; self.bs],
                    dirty: true,
                },
            );
        }
        Ok(())
    }

    fn free_extent(&mut self, e: Extent) {
        if e.len == 0 {
            return;
        }
        let ag = (e.start / self.m.sb.ag_blocks).min(self.m.sb.ag_count - 1) as usize;
        let list = &mut self.m.free[ag];
        let pos = list.partition_point(|x| x.start < e.start);
        list.insert(pos, e);
        // Coalesce neighbours.
        let mut i = pos.saturating_sub(1);
        while i + 1 < list.len() {
            if list[i].start + list[i].len == list[i + 1].start {
                list[i].len += list[i + 1].len;
                list.remove(i + 1);
            } else {
                i += 1;
            }
        }
        for blk in e.start..e.start + e.len {
            self.m.bufs.remove(&blk);
        }
        self.m.meta_dirty = true;
    }

    fn alloc_one_block(&mut self, pref_ag: u32) -> VfsResult<u32> {
        Ok(self.alloc_extent(pref_ag, 1)?.start)
    }

    // ---- inodes -----------------------------------------------------------

    fn ag_of_ino(&self, ino: u32) -> u32 {
        ino / self.m.sb.inodes_per_ag
    }

    fn inode_table_pos(&self, ino: u32) -> (u32, usize) {
        let ag = self.ag_of_ino(ino);
        let idx = ino % self.m.sb.inodes_per_ag;
        let per_block = self.bs / INODE_SIZE;
        let blk = ag * self.m.sb.ag_blocks + 1 + idx / per_block as u32;
        let off = (idx as usize % per_block) * INODE_SIZE;
        (blk, off)
    }

    fn inode(&mut self, ino: u32) -> VfsResult<XInode> {
        if let Some(i) = self.m.icache.get(&ino) {
            return Ok(i.clone());
        }
        if ino == 0 || ino >= self.m.sb.total_inodes() {
            return Err(Errno::EIO);
        }
        let (blk, off) = self.inode_table_pos(ino);
        let data = self.read_buf(blk)?;
        let (mut inode, total) = XInode::decode(&data[off..off + INODE_SIZE]);
        if total as usize > INLINE_EXTENTS && inode.overflow != 0 {
            let ov = self.read_buf(inode.overflow)?;
            let extra = total as usize - INLINE_EXTENTS;
            for i in 0..extra {
                let o = 2 + i * 8;
                let u32_at =
                    |x: usize| u32::from_le_bytes([ov[x], ov[x + 1], ov[x + 2], ov[x + 3]]);
                inode.extents.push(Extent {
                    start: u32_at(o),
                    len: u32_at(o + 4),
                });
            }
        }
        self.m.icache.insert(ino, inode.clone());
        Ok(inode)
    }

    fn put_inode(&mut self, ino: u32, inode: XInode) {
        self.m.icache.insert(ino, inode);
        self.m.idirty.insert(ino);
    }

    fn max_extents(&self) -> usize {
        INLINE_EXTENTS + (self.bs - 2) / 8
    }

    fn alloc_inode(&mut self, inode: XInode, pref_ag: u32) -> VfsResult<u32> {
        for offset in 0..self.m.sb.ag_count {
            let ag = (pref_ag + offset) % self.m.sb.ag_count;
            let bitmap = &mut self.m.ibitmaps[ag as usize];
            for idx in 0..self.m.sb.inodes_per_ag {
                let byte = (idx / 8) as usize;
                let bit = 1u8 << (idx % 8);
                if bitmap[byte] & bit == 0 {
                    bitmap[byte] |= bit;
                    self.m.meta_dirty = true;
                    let ino = ag * self.m.sb.inodes_per_ag + idx;
                    self.m.icache.insert(ino, inode);
                    self.m.idirty.insert(ino);
                    return Ok(ino);
                }
            }
        }
        Err(Errno::ENOSPC)
    }

    fn free_inode(&mut self, ino: u32) {
        let ag = self.ag_of_ino(ino) as usize;
        let idx = ino % self.m.sb.inodes_per_ag;
        self.m.ibitmaps[ag][(idx / 8) as usize] &= !(1u8 << (idx % 8));
        self.m.meta_dirty = true;
        self.m.icache.insert(ino, XInode::free());
        self.m.idirty.insert(ino);
    }

    // ---- file content (dense extent mapping) -------------------------------

    /// Device block backing file block `fblk`, if allocated.
    fn map_block(inode: &XInode, fblk: u64) -> Option<u32> {
        let mut pos = 0u64;
        for e in &inode.extents {
            if fblk < pos + e.len as u64 {
                return Some(e.start + (fblk - pos) as u32);
            }
            pos += e.len as u64;
        }
        None
    }

    /// Grows `ino`'s extent list so it backs at least `blocks` file blocks.
    fn ensure_blocks(&mut self, ino: u32, blocks: u64) -> VfsResult<()> {
        let mut inode = self.inode(ino)?;
        let mut have = inode.nblocks() as u64;
        if have >= blocks {
            return Ok(());
        }
        if blocks - have > self.free_blocks_total() {
            return Err(Errno::ENOSPC);
        }
        let pref_ag = self.ag_of_ino(ino);
        while have < blocks {
            let want = (blocks - have).min(u32::MAX as u64) as u32;
            let e = self.alloc_extent(pref_ag, want)?;
            // Merge with the previous extent when contiguous.
            if let Some(last) = inode.extents.last_mut() {
                if last.start + last.len == e.start {
                    last.len += e.len;
                    have += e.len as u64;
                    continue;
                }
            }
            if inode.extents.len() >= self.max_extents() {
                self.free_extent(e);
                self.put_inode(ino, inode);
                return Err(Errno::EFBIG);
            }
            inode.extents.push(e);
            have += e.len as u64;
        }
        // Allocate the overflow block lazily.
        if inode.extents.len() > INLINE_EXTENTS && inode.overflow == 0 {
            inode.overflow = self.alloc_one_block(pref_ag)?;
        }
        self.put_inode(ino, inode);
        Ok(())
    }

    fn read_file(&mut self, ino: u32, offset: u64, out: &mut [u8]) -> VfsResult<usize> {
        let inode = self.inode(ino)?;
        if offset >= inode.size {
            return Ok(0);
        }
        // `lseek` accepts any u64 offset, so the end position can overflow.
        let end = offset
            .checked_add(out.len() as u64)
            .ok_or(Errno::EFBIG)?
            .min(inode.size);
        let mut pos = offset;
        while pos < end {
            let fblk = pos / self.bs as u64;
            let within = (pos % self.bs as u64) as usize;
            let chunk = ((self.bs - within) as u64).min(end - pos) as usize;
            let dst = (pos - offset) as usize;
            match Self::map_block(&inode, fblk) {
                Some(blk) => {
                    let data = self.read_buf(blk)?;
                    out[dst..dst + chunk].copy_from_slice(&data[within..within + chunk]);
                }
                None => out[dst..dst + chunk].fill(0),
            }
            pos += chunk as u64;
        }
        Ok((end - offset) as usize)
    }

    fn write_file(&mut self, ino: u32, offset: u64, data: &[u8]) -> VfsResult<()> {
        let end = offset.checked_add(data.len() as u64).ok_or(Errno::EFBIG)?;
        // Dense allocation: everything up to the new end is backed.
        self.ensure_blocks(ino, end.div_ceil(self.bs as u64))?;
        let inode = self.inode(ino)?;
        let mut pos = offset;
        while pos < end {
            let fblk = pos / self.bs as u64;
            let within = (pos % self.bs as u64) as usize;
            let chunk = ((self.bs - within) as u64).min(end - pos) as usize;
            let src = (pos - offset) as usize;
            let blk = Self::map_block(&inode, fblk).ok_or(Errno::EIO)?;
            self.with_buf(blk, |b| {
                b[within..within + chunk].copy_from_slice(&data[src..src + chunk]);
            })?;
            pos += chunk as u64;
        }
        let mut inode = self.inode(ino)?;
        if end > inode.size {
            inode.size = end;
        }
        let now = self.now();
        inode.mtime = now;
        inode.ctime = now;
        self.put_inode(ino, inode);
        Ok(())
    }

    fn file_truncate(&mut self, ino: u32, new_size: u64) -> VfsResult<()> {
        let mut inode = self.inode(ino)?;
        let keep_blocks = new_size.div_ceil(self.bs as u64);
        if new_size < inode.size {
            // Free tail extents.
            let mut have = inode.nblocks() as u64;
            while have > keep_blocks {
                let last = inode.extents.last_mut().expect("blocks imply extents");
                let surplus = (have - keep_blocks).min(last.len as u64) as u32;
                let freed = Extent {
                    start: last.start + last.len - surplus,
                    len: surplus,
                };
                last.len -= surplus;
                have -= surplus as u64;
                if last.len == 0 {
                    inode.extents.pop();
                }
                self.free_extent(freed);
            }
            if inode.extents.len() <= INLINE_EXTENTS && inode.overflow != 0 {
                let ov = inode.overflow;
                inode.overflow = 0;
                self.free_extent(Extent { start: ov, len: 1 });
            }
            // Zero the kept tail so later extension shows zeros.
            if !new_size.is_multiple_of(self.bs as u64) {
                if let Some(blk) = Self::map_block(&inode, new_size / self.bs as u64) {
                    let from = (new_size % self.bs as u64) as usize;
                    self.with_buf(blk, |b| b[from..].fill(0))?;
                }
            }
        } else if new_size > inode.size {
            // Dense: back the extension with zeroed blocks now.
            self.put_inode(ino, inode.clone());
            self.ensure_blocks(ino, keep_blocks)?;
            inode = self.inode(ino)?;
        }
        inode.size = new_size;
        let now = self.now();
        inode.mtime = now;
        inode.ctime = now;
        self.put_inode(ino, inode);
        Ok(())
    }

    fn release_inode(&mut self, ino: u32) -> VfsResult<()> {
        self.file_truncate(ino, 0)?;
        let inode = self.inode(ino)?;
        if inode.xattr_block != 0 {
            self.free_extent(Extent {
                start: inode.xattr_block,
                len: 1,
            });
        }
        self.free_inode(ino);
        Ok(())
    }

    // ---- directories -------------------------------------------------------

    fn read_dir(&mut self, ino: u32) -> VfsResult<Vec<(u32, u8, String)>> {
        let inode = self.inode(ino)?;
        let mut content = vec![0u8; inode.size as usize];
        self.read_file(ino, 0, &mut content)?;
        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos < content.len() {
            if pos + 6 > content.len() {
                return Err(Errno::EIO);
            }
            let e_ino = u32::from_le_bytes([
                content[pos],
                content[pos + 1],
                content[pos + 2],
                content[pos + 3],
            ]);
            let ftype = content[pos + 4];
            let nlen = content[pos + 5] as usize;
            pos += 6;
            if pos + nlen > content.len() {
                return Err(Errno::EIO);
            }
            let name = std::str::from_utf8(&content[pos..pos + nlen])
                .map_err(|_| Errno::EIO)?
                .to_string();
            pos += nlen;
            out.push((e_ino, ftype, name));
        }
        Ok(out)
    }

    fn write_dir(&mut self, ino: u32, entries: &[(u32, u8, String)]) -> VfsResult<()> {
        let mut content = Vec::new();
        for (e_ino, ftype, name) in entries {
            content.extend_from_slice(&e_ino.to_le_bytes());
            content.push(*ftype);
            content.push(name.len() as u8);
            content.extend_from_slice(name.as_bytes());
        }
        self.file_truncate(ino, 0)?;
        if !content.is_empty() {
            self.write_file(ino, 0, &content)?;
        }
        let mut inode = self.inode(ino)?;
        inode.size = content.len() as u64;
        self.put_inode(ino, inode);
        Ok(())
    }

    fn lookup(&mut self, dir_ino: u32, name: &str) -> VfsResult<Option<u32>> {
        if self.inode(dir_ino)?.ftype != FT_DIR {
            return Err(Errno::ENOTDIR);
        }
        Ok(self
            .read_dir(dir_ino)?
            .into_iter()
            .find(|(_, _, n)| n == name)
            .map(|(i, _, _)| i))
    }

    fn resolve(&mut self, p: &str) -> VfsResult<u32> {
        path::validate(p)?;
        let mut cur = Ino::ROOT.0 as u32;
        for comp in path::components(p) {
            match self.inode(cur)?.ftype {
                FT_DIR => {}
                FT_SYMLINK => return Err(Errno::ELOOP),
                _ => return Err(Errno::ENOTDIR),
            }
            cur = self.lookup(cur, comp)?.ok_or(Errno::ENOENT)?;
        }
        Ok(cur)
    }

    fn resolve_parent<'p>(&mut self, p: &'p str) -> VfsResult<(u32, &'p str)> {
        path::validate(p)?;
        let (parent, name) = path::split_parent(p)?;
        let parent_ino = self.resolve(&parent)?;
        if self.inode(parent_ino)?.ftype != FT_DIR {
            return Err(Errno::ENOTDIR);
        }
        Ok((parent_ino, name))
    }

    fn insert_entry(&mut self, dir: u32, name: &str, ino: u32, ftype: u8) -> VfsResult<()> {
        let mut entries = self.read_dir(dir)?;
        entries.push((ino, ftype, name.to_string()));
        self.write_dir(dir, &entries)?;
        let now = self.now();
        let mut d = self.inode(dir)?;
        d.mtime = now;
        d.ctime = now;
        self.put_inode(dir, d);
        Ok(())
    }

    fn remove_entry(&mut self, dir: u32, name: &str) -> VfsResult<u32> {
        let mut entries = self.read_dir(dir)?;
        let idx = entries
            .iter()
            .position(|(_, _, n)| n == name)
            .ok_or(Errno::ENOENT)?;
        let (ino, _, _) = entries.remove(idx);
        self.write_dir(dir, &entries)?;
        let now = self.now();
        let mut d = self.inode(dir)?;
        d.mtime = now;
        d.ctime = now;
        self.put_inode(dir, d);
        Ok(ino)
    }

    fn fd_refs(&self, ino: u32) -> usize {
        self.m.fds.iter().filter(|(_, of)| of.ino == ino).count()
    }

    fn maybe_release(&mut self, ino: u32) -> VfsResult<()> {
        if self.inode(ino)?.nlink == 0 && self.fd_refs(ino) == 0 {
            self.release_inode(ino)?;
        }
        Ok(())
    }

    fn new_inode(&mut self, ftype: u8, mode: FileMode) -> XInode {
        let now = self.now();
        let mut i = XInode::free();
        i.ftype = ftype;
        i.mode = mode.bits();
        i.nlink = 1;
        i.atime = now;
        i.mtime = now;
        i.ctime = now;
        i
    }

    // ---- xattrs -------------------------------------------------------------

    fn read_xattrs(&mut self, ino: u32) -> VfsResult<BTreeMap<String, Vec<u8>>> {
        let inode = self.inode(ino)?;
        if inode.xattr_block == 0 {
            return Ok(BTreeMap::new());
        }
        let data = self.read_buf(inode.xattr_block)?;
        let mut out = BTreeMap::new();
        let count = u16::from_le_bytes([data[0], data[1]]) as usize;
        let mut pos = 2;
        for _ in 0..count {
            let klen = data[pos] as usize;
            let vlen = u16::from_le_bytes([data[pos + 1], data[pos + 2]]) as usize;
            pos += 3;
            let key = std::str::from_utf8(&data[pos..pos + klen])
                .map_err(|_| Errno::EIO)?
                .to_string();
            pos += klen;
            out.insert(key, data[pos..pos + vlen].to_vec());
            pos += vlen;
        }
        Ok(out)
    }

    fn write_xattrs(&mut self, ino: u32, xattrs: &BTreeMap<String, Vec<u8>>) -> VfsResult<()> {
        let mut inode = self.inode(ino)?;
        if xattrs.is_empty() {
            if inode.xattr_block != 0 {
                self.free_extent(Extent {
                    start: inode.xattr_block,
                    len: 1,
                });
                inode.xattr_block = 0;
                self.put_inode(ino, inode);
            }
            return Ok(());
        }
        let mut blob = Vec::new();
        blob.extend_from_slice(&(xattrs.len() as u16).to_le_bytes());
        for (k, v) in xattrs {
            blob.push(k.len() as u8);
            blob.extend_from_slice(&(v.len() as u16).to_le_bytes());
            blob.extend_from_slice(k.as_bytes());
            blob.extend_from_slice(v);
        }
        if blob.len() > self.bs {
            return Err(Errno::ENOSPC);
        }
        if inode.xattr_block == 0 {
            inode.xattr_block = self.alloc_one_block(self.ag_of_ino(ino))?;
            self.put_inode(ino, inode.clone());
        }
        let blk = inode.xattr_block;
        self.with_buf(blk, |b| {
            b.fill(0);
            b[..blob.len()].copy_from_slice(&blob);
        })
    }
}

impl<D: BlockDevice> FileSystem for XfsFs<D> {
    fn fs_name(&self) -> &str {
        "xfs"
    }

    fn capabilities(&self) -> FsCapabilities {
        FsCapabilities {
            rename: true,
            hardlink: true,
            symlink: true,
            xattr: true,
            access: true,
            checkpoint: false,
        }
    }

    fn mount(&mut self) -> VfsResult<()> {
        if self.m.is_some() {
            return Err(Errno::EBUSY);
        }
        let bs = self.config.block_size;
        let mut header = vec![0u8; bs];
        io(self.dev.read_block(0, &mut header))?;
        let mut sb = SuperBlock::decode(&header[bs - 32..])?;
        if sb.block_size as usize != bs {
            return Err(Errno::EIO);
        }
        let mut ibitmaps = Vec::new();
        let mut free = Vec::new();
        for ag in 0..sb.ag_count {
            let mut h = vec![0u8; bs];
            io(self.dev.read_block((ag * sb.ag_blocks) as u64, &mut h))?;
            let (bm, fl) = decode_ag_header(&h);
            ibitmaps.push(bm);
            free.push(fl);
        }
        // Unclean mount: "log recovery" — a full scan rebuilding free lists
        // from the inode tables (simulating XFS log recovery cost).
        if sb.flags & SB_FLAG_DIRTY != 0 {
            // Trust the inode tables; rebuild free space from scratch.
            let mut used: Vec<Extent> = Vec::new();
            for ino in 1..sb.total_inodes() {
                let per_block = bs / INODE_SIZE;
                let ag = ino / sb.inodes_per_ag;
                let idx = ino % sb.inodes_per_ag;
                let blk = ag * sb.ag_blocks + 1 + idx / per_block as u32;
                let off = (idx as usize % per_block) * INODE_SIZE;
                let mut b = vec![0u8; bs];
                io(self.dev.read_block(blk as u64, &mut b))?;
                let (inode, total) = XInode::decode(&b[off..off + INODE_SIZE]);
                if !inode.in_use() {
                    continue;
                }
                used.extend(inode.extents.iter().copied());
                if inode.overflow != 0 {
                    used.push(Extent {
                        start: inode.overflow,
                        len: 1,
                    });
                    if total as usize > INLINE_EXTENTS {
                        let mut ov = vec![0u8; bs];
                        io(self.dev.read_block(inode.overflow as u64, &mut ov))?;
                        for i in 0..(total as usize - INLINE_EXTENTS) {
                            let o = 2 + i * 8;
                            let u32_at = |x: usize| {
                                u32::from_le_bytes([ov[x], ov[x + 1], ov[x + 2], ov[x + 3]])
                            };
                            used.push(Extent {
                                start: u32_at(o),
                                len: u32_at(o + 4),
                            });
                        }
                    }
                }
                if inode.xattr_block != 0 {
                    used.push(Extent {
                        start: inode.xattr_block,
                        len: 1,
                    });
                }
            }
            used.sort_by_key(|e| e.start);
            free.clear();
            for ag in 0..sb.ag_count {
                let mut list = Vec::new();
                let ag_start = sb.ag_data_start(ag);
                let mut cursor = ag_start;
                let end = sb.ag_end(ag);
                for e in used.iter().filter(|e| e.start >= ag_start && e.start < end) {
                    if e.start > cursor {
                        list.push(Extent {
                            start: cursor,
                            len: e.start - cursor,
                        });
                    }
                    cursor = cursor.max(e.start + e.len);
                }
                if cursor < end {
                    list.push(Extent {
                        start: cursor,
                        len: end - cursor,
                    });
                }
                free.push(list);
            }
        }
        sb.mount_count += 1;
        sb.flags |= SB_FLAG_DIRTY;
        sb.encode(&mut header[bs - 32..]);
        io(self.dev.write_block(0, &header))?;
        let time = (sb.mount_count as u64) << 32;
        self.m = Some(Mounted {
            sb,
            free,
            ibitmaps,
            meta_dirty: false,
            icache: HashMap::new(),
            idirty: HashSet::new(),
            bufs: HashMap::new(),
            fds: FdTable::default(),
            time,
        });
        Ok(())
    }

    fn unmount(&mut self) -> VfsResult<()> {
        self.sync()?;
        let bs = self.config.block_size;
        let mut m = self.m.take().ok_or(Errno::ENODEV)?;
        m.sb.flags &= !SB_FLAG_DIRTY;
        let mut header = vec![0u8; bs];
        io(self.dev.read_block(0, &mut header))?;
        m.sb.encode(&mut header[bs - 32..]);
        io(self.dev.write_block(0, &header))?;
        io(self.dev.flush())?;
        Ok(())
    }

    fn is_mounted(&self) -> bool {
        self.m.is_some()
    }

    fn sync(&mut self) -> VfsResult<()> {
        let bs = self.config.block_size;
        let mut c = self.core()?;
        // Encode dirty inodes (and their overflow extent blocks). Inodes
        // leave the dirty set one by one as they are encoded, so an EIO
        // mid-loop keeps the rest queued for the next sync.
        let dirty: Vec<u32> = c.m.idirty.iter().copied().collect();
        for ino in dirty {
            let inode = c.inode(ino)?;
            let (blk, off) = c.inode_table_pos(ino);
            c.with_buf(blk, |b| inode.encode(&mut b[off..off + INODE_SIZE]))?;
            if inode.extents.len() > INLINE_EXTENTS {
                let extra: Vec<Extent> = inode.extents[INLINE_EXTENTS..].to_vec();
                let ov = inode.overflow;
                c.with_buf(ov, |b| {
                    b.fill(0);
                    b[0..2].copy_from_slice(&(extra.len() as u16).to_le_bytes());
                    for (i, e) in extra.iter().enumerate() {
                        let o = 2 + i * 8;
                        b[o..o + 4].copy_from_slice(&e.start.to_le_bytes());
                        b[o + 4..o + 8].copy_from_slice(&e.len.to_le_bytes());
                    }
                })?;
            }
            c.m.idirty.remove(&ino);
        }
        // Encode AG headers (keeping the superblock in block 0's tail).
        if c.m.meta_dirty {
            for ag in 0..c.m.sb.ag_count {
                let bm = c.m.ibitmaps[ag as usize].clone();
                let fl = c.m.free[ag as usize].clone();
                let sb = c.m.sb;
                let hblk = ag * c.m.sb.ag_blocks;
                c.with_buf(hblk, |b| {
                    encode_ag_header(b, &bm, &fl);
                    if ag == 0 {
                        sb.encode(&mut b[bs - 32..]);
                    }
                })?;
            }
            c.m.meta_dirty = false;
        }
        let mut blocks: Vec<u32> =
            c.m.bufs
                .iter()
                .filter(|(_, b)| b.dirty)
                .map(|(blk, _)| *blk)
                .collect();
        blocks.sort_unstable();
        for blk in blocks {
            let data = c.m.bufs[&blk].data.clone();
            io(c.dev.write_block(blk as u64, &data))?;
            c.m.bufs.get_mut(&blk).expect("present").dirty = false;
        }
        io(c.dev.flush())
    }

    fn statfs(&self) -> VfsResult<StatFs> {
        let m = self.m.as_ref().ok_or(Errno::ENODEV)?;
        let free: u64 = m
            .free
            .iter()
            .flat_map(|l| l.iter())
            .map(|e| e.len as u64)
            .sum();
        let mut used_inodes = 0u64;
        for bm in &m.ibitmaps {
            for b in bm {
                used_inodes += b.count_ones() as u64;
            }
        }
        Ok(StatFs {
            block_size: m.sb.block_size,
            blocks: m.sb.total_data_blocks() as u64,
            blocks_free: free,
            blocks_avail: free,
            files: (m.sb.total_inodes() - 1) as u64,
            files_free: m.sb.total_inodes() as u64 - used_inodes,
            name_max: 255,
        })
    }

    fn create(&mut self, p: &str, mode: FileMode) -> VfsResult<Fd> {
        let mut c = self.core()?;
        let (parent, name) = c.resolve_parent(p)?;
        if c.lookup(parent, name)?.is_some() {
            return Err(Errno::EEXIST);
        }
        let inode = c.new_inode(FT_REG, mode);
        let ino = c.alloc_inode(inode, c.ag_of_ino(parent))?;
        if let Err(e) = c.insert_entry(parent, name, ino, FT_REG) {
            c.free_inode(ino);
            return Err(e);
        }
        c.m.fds.insert(OpenFile {
            ino,
            offset: 0,
            read: true,
            write: true,
            append: false,
        })
    }

    fn open(&mut self, p: &str, flags: OpenFlags, mode: FileMode) -> VfsResult<Fd> {
        let mut c = self.core()?;
        path::validate(p)?;
        let ino = match c.resolve(p) {
            Ok(ino) => {
                if flags.create && flags.excl {
                    return Err(Errno::EEXIST);
                }
                ino
            }
            Err(Errno::ENOENT) if flags.create => {
                let (parent, name) = c.resolve_parent(p)?;
                let inode = c.new_inode(FT_REG, mode);
                let ino = c.alloc_inode(inode, c.ag_of_ino(parent))?;
                if let Err(e) = c.insert_entry(parent, name, ino, FT_REG) {
                    c.free_inode(ino);
                    return Err(e);
                }
                ino
            }
            Err(e) => return Err(e),
        };
        match c.inode(ino)?.ftype {
            FT_SYMLINK => return Err(Errno::ELOOP),
            FT_DIR if flags.write => return Err(Errno::EISDIR),
            _ => {}
        }
        if flags.trunc && flags.write {
            c.file_truncate(ino, 0)?;
        }
        c.m.fds.insert(OpenFile {
            ino,
            offset: 0,
            read: flags.read || !flags.write,
            write: flags.write,
            append: flags.append,
        })
    }

    fn close(&mut self, fd: Fd) -> VfsResult<()> {
        let mut c = self.core()?;
        let of = c.m.fds.remove(fd)?;
        if c.inode(of.ino)?.nlink == 0 {
            c.maybe_release(of.ino)?;
        }
        Ok(())
    }

    fn read(&mut self, fd: Fd, out: &mut [u8]) -> VfsResult<usize> {
        let mut c = self.core()?;
        let of = *c.m.fds.get(fd)?;
        if !of.read {
            return Err(Errno::EBADF);
        }
        if c.inode(of.ino)?.ftype == FT_DIR {
            return Err(Errno::EISDIR);
        }
        let n = c.read_file(of.ino, of.offset, out)?;
        let now = c.now();
        let mut inode = c.inode(of.ino)?;
        inode.atime = now;
        c.put_inode(of.ino, inode);
        c.m.fds.get_mut(fd)?.offset += n as u64;
        Ok(n)
    }

    fn write(&mut self, fd: Fd, data: &[u8]) -> VfsResult<usize> {
        let mut c = self.core()?;
        let of = *c.m.fds.get(fd)?;
        if !of.write {
            return Err(Errno::EBADF);
        }
        let inode = c.inode(of.ino)?;
        if inode.ftype == FT_DIR {
            return Err(Errno::EISDIR);
        }
        let offset = if of.append { inode.size } else { of.offset };
        c.write_file(of.ino, offset, data)?;
        c.m.fds.get_mut(fd)?.offset = offset + data.len() as u64;
        Ok(data.len())
    }

    fn lseek(&mut self, fd: Fd, offset: u64) -> VfsResult<u64> {
        let c = self.core()?;
        c.m.fds.get_mut(fd)?.offset = offset;
        Ok(offset)
    }

    fn truncate(&mut self, p: &str, size: u64) -> VfsResult<()> {
        let mut c = self.core()?;
        let ino = c.resolve(p)?;
        match c.inode(ino)?.ftype {
            FT_DIR => return Err(Errno::EISDIR),
            FT_SYMLINK => return Err(Errno::EINVAL),
            _ => {}
        }
        c.file_truncate(ino, size)
    }

    fn mkdir(&mut self, p: &str, mode: FileMode) -> VfsResult<()> {
        let mut c = self.core()?;
        let (parent, name) = c.resolve_parent(p)?;
        if c.lookup(parent, name)?.is_some() {
            return Err(Errno::EEXIST);
        }
        let mut inode = c.new_inode(FT_DIR, mode);
        inode.nlink = 2;
        let ino = c.alloc_inode(inode, c.ag_of_ino(parent))?;
        if let Err(e) = c.insert_entry(parent, name, ino, FT_DIR) {
            c.free_inode(ino);
            return Err(e);
        }
        let mut pd = c.inode(parent)?;
        pd.nlink += 1;
        c.put_inode(parent, pd);
        Ok(())
    }

    fn rmdir(&mut self, p: &str) -> VfsResult<()> {
        let mut c = self.core()?;
        if path::is_root(p) {
            return Err(Errno::EBUSY);
        }
        let (parent, name) = c.resolve_parent(p)?;
        let ino = c.lookup(parent, name)?.ok_or(Errno::ENOENT)?;
        if c.inode(ino)?.ftype != FT_DIR {
            return Err(Errno::ENOTDIR);
        }
        if !c.read_dir(ino)?.is_empty() {
            return Err(Errno::ENOTEMPTY);
        }
        c.remove_entry(parent, name)?;
        let mut inode = c.inode(ino)?;
        inode.nlink = 0;
        c.put_inode(ino, inode);
        let mut pd = c.inode(parent)?;
        pd.nlink -= 1;
        c.put_inode(parent, pd);
        c.maybe_release(ino)
    }

    fn unlink(&mut self, p: &str) -> VfsResult<()> {
        let mut c = self.core()?;
        let (parent, name) = c.resolve_parent(p)?;
        let ino = c.lookup(parent, name)?.ok_or(Errno::ENOENT)?;
        if c.inode(ino)?.ftype == FT_DIR {
            return Err(Errno::EISDIR);
        }
        c.remove_entry(parent, name)?;
        let now = c.now();
        let mut inode = c.inode(ino)?;
        inode.nlink -= 1;
        inode.ctime = now;
        c.put_inode(ino, inode);
        c.maybe_release(ino)
    }

    fn stat(&mut self, p: &str) -> VfsResult<FileStat> {
        let bs = self.config.block_size as u64;
        let mut c = self.core()?;
        let ino = c.resolve(p)?;
        let inode = c.inode(ino)?;
        let ftype = match inode.ftype {
            FT_REG => FileType::Regular,
            FT_DIR => FileType::Directory,
            FT_SYMLINK => FileType::Symlink,
            _ => return Err(Errno::EIO),
        };
        Ok(FileStat {
            ino: Ino(ino as u64),
            ftype,
            mode: FileMode::new(inode.mode),
            nlink: inode.nlink as u32,
            uid: inode.uid,
            gid: inode.gid,
            // XFS-style: directories report their actual content size
            // (entry based), not a block multiple.
            size: inode.size,
            blocks: inode.nblocks() as u64 * (bs / 512),
            atime: inode.atime,
            mtime: inode.mtime,
            ctime: inode.ctime,
        })
    }

    fn getdents(&mut self, p: &str) -> VfsResult<Vec<DirEntry>> {
        let mut c = self.core()?;
        let ino = c.resolve(p)?;
        if c.inode(ino)?.ftype != FT_DIR {
            return Err(Errno::ENOTDIR);
        }
        let mut entries = c.read_dir(ino)?;
        let now = c.now();
        let mut d = c.inode(ino)?;
        d.atime = now;
        c.put_inode(ino, d);
        // Hash order, as XFS's readdir does.
        entries.sort_by_key(|(_, _, name)| name_hash(name));
        entries
            .into_iter()
            .map(|(e_ino, ftype, name)| {
                let ftype = match ftype {
                    FT_REG => FileType::Regular,
                    FT_DIR => FileType::Directory,
                    FT_SYMLINK => FileType::Symlink,
                    _ => return Err(Errno::EIO),
                };
                Ok(DirEntry {
                    name,
                    ino: Ino(e_ino as u64),
                    ftype,
                })
            })
            .collect()
    }

    fn chmod(&mut self, p: &str, mode: FileMode) -> VfsResult<()> {
        let mut c = self.core()?;
        let ino = c.resolve(p)?;
        let now = c.now();
        let mut inode = c.inode(ino)?;
        inode.mode = mode.bits();
        inode.ctime = now;
        c.put_inode(ino, inode);
        Ok(())
    }

    fn chown(&mut self, p: &str, uid: u32, gid: u32) -> VfsResult<()> {
        let mut c = self.core()?;
        let ino = c.resolve(p)?;
        let now = c.now();
        let mut inode = c.inode(ino)?;
        inode.uid = uid;
        inode.gid = gid;
        inode.ctime = now;
        c.put_inode(ino, inode);
        Ok(())
    }

    fn utimens(&mut self, p: &str, atime: u64, mtime: u64) -> VfsResult<()> {
        let mut c = self.core()?;
        let ino = c.resolve(p)?;
        let now = c.now();
        let mut inode = c.inode(ino)?;
        inode.atime = atime;
        inode.mtime = mtime;
        inode.ctime = now;
        c.put_inode(ino, inode);
        Ok(())
    }

    fn rename(&mut self, src: &str, dst: &str) -> VfsResult<()> {
        let mut c = self.core()?;
        path::validate(src)?;
        path::validate(dst)?;
        if src == dst {
            c.resolve(src)?;
            return Ok(());
        }
        if path::is_same_or_descendant(src, dst) {
            return Err(Errno::EINVAL);
        }
        let (sparent, sname) = c.resolve_parent(src)?;
        let src_ino = c.lookup(sparent, sname)?.ok_or(Errno::ENOENT)?;
        let (dparent, dname) = c.resolve_parent(dst)?;
        let src_inode = c.inode(src_ino)?;
        let src_is_dir = src_inode.ftype == FT_DIR;
        if let Some(dst_ino) = c.lookup(dparent, dname)? {
            if dst_ino == src_ino {
                return Ok(());
            }
            let dst_is_dir = c.inode(dst_ino)?.ftype == FT_DIR;
            match (src_is_dir, dst_is_dir) {
                (true, false) => return Err(Errno::ENOTDIR),
                (false, true) => return Err(Errno::EISDIR),
                (true, true) => {
                    if !c.read_dir(dst_ino)?.is_empty() {
                        return Err(Errno::ENOTEMPTY);
                    }
                    c.remove_entry(dparent, dname)?;
                    let mut di = c.inode(dst_ino)?;
                    di.nlink = 0;
                    c.put_inode(dst_ino, di);
                    let mut pd = c.inode(dparent)?;
                    pd.nlink -= 1;
                    c.put_inode(dparent, pd);
                    c.maybe_release(dst_ino)?;
                }
                (false, false) => {
                    c.remove_entry(dparent, dname)?;
                    let mut di = c.inode(dst_ino)?;
                    di.nlink -= 1;
                    c.put_inode(dst_ino, di);
                    c.maybe_release(dst_ino)?;
                }
            }
        }
        c.remove_entry(sparent, sname)?;
        c.insert_entry(dparent, dname, src_ino, src_inode.ftype)?;
        if src_is_dir && sparent != dparent {
            let mut sp = c.inode(sparent)?;
            sp.nlink -= 1;
            c.put_inode(sparent, sp);
            let mut dp = c.inode(dparent)?;
            dp.nlink += 1;
            c.put_inode(dparent, dp);
        }
        let now = c.now();
        let mut si = c.inode(src_ino)?;
        si.ctime = now;
        c.put_inode(src_ino, si);
        Ok(())
    }

    fn link(&mut self, existing: &str, new: &str) -> VfsResult<()> {
        let mut c = self.core()?;
        let src_ino = c.resolve(existing)?;
        let src_inode = c.inode(src_ino)?;
        if src_inode.ftype == FT_DIR {
            return Err(Errno::EPERM);
        }
        if src_inode.nlink >= MAX_NLINK {
            return Err(Errno::EMLINK);
        }
        let (parent, name) = c.resolve_parent(new)?;
        if c.lookup(parent, name)?.is_some() {
            return Err(Errno::EEXIST);
        }
        c.insert_entry(parent, name, src_ino, src_inode.ftype)?;
        let now = c.now();
        let mut si = c.inode(src_ino)?;
        si.nlink += 1;
        si.ctime = now;
        c.put_inode(src_ino, si);
        Ok(())
    }

    fn symlink(&mut self, target: &str, linkpath: &str) -> VfsResult<()> {
        let mut c = self.core()?;
        if target.is_empty() || target.len() > path::PATH_MAX {
            return Err(Errno::EINVAL);
        }
        let (parent, name) = c.resolve_parent(linkpath)?;
        if c.lookup(parent, name)?.is_some() {
            return Err(Errno::EEXIST);
        }
        let inode = c.new_inode(FT_SYMLINK, FileMode::new(0o777));
        let ino = c.alloc_inode(inode, c.ag_of_ino(parent))?;
        if let Err(e) = c
            .write_file(ino, 0, target.as_bytes())
            .and_then(|()| c.insert_entry(parent, name, ino, FT_SYMLINK))
        {
            c.file_truncate(ino, 0)?;
            c.free_inode(ino);
            return Err(e);
        }
        Ok(())
    }

    fn readlink(&mut self, p: &str) -> VfsResult<String> {
        let mut c = self.core()?;
        let ino = c.resolve(p)?;
        let inode = c.inode(ino)?;
        if inode.ftype != FT_SYMLINK {
            return Err(Errno::EINVAL);
        }
        let mut buf = vec![0u8; inode.size as usize];
        c.read_file(ino, 0, &mut buf)?;
        String::from_utf8(buf).map_err(|_| Errno::EIO)
    }

    fn access(&mut self, p: &str, mode: AccessMode) -> VfsResult<()> {
        let mut c = self.core()?;
        let ino = c.resolve(p)?;
        let bits = FileMode::new(c.inode(ino)?.mode);
        if (mode.read && !bits.owner_read())
            || (mode.write && !bits.owner_write())
            || (mode.exec && !bits.owner_exec())
        {
            return Err(Errno::EACCES);
        }
        Ok(())
    }

    fn setxattr(&mut self, p: &str, name: &str, value: &[u8], flags: XattrFlags) -> VfsResult<()> {
        if name.is_empty() || name.len() > 255 || name.contains('\0') {
            return Err(Errno::EINVAL);
        }
        let mut c = self.core()?;
        let ino = c.resolve(p)?;
        let mut xattrs = c.read_xattrs(ino)?;
        let exists = xattrs.contains_key(name);
        match flags {
            XattrFlags::Create if exists => return Err(Errno::EEXIST),
            XattrFlags::Replace if !exists => return Err(Errno::ENODATA),
            _ => {}
        }
        xattrs.insert(name.to_string(), value.to_vec());
        c.write_xattrs(ino, &xattrs)
    }

    fn getxattr(&mut self, p: &str, name: &str) -> VfsResult<Vec<u8>> {
        let mut c = self.core()?;
        let ino = c.resolve(p)?;
        c.read_xattrs(ino)?.remove(name).ok_or(Errno::ENODATA)
    }

    fn listxattr(&mut self, p: &str) -> VfsResult<Vec<String>> {
        let mut c = self.core()?;
        let ino = c.resolve(p)?;
        Ok(c.read_xattrs(ino)?.into_keys().collect())
    }

    fn removexattr(&mut self, p: &str, name: &str) -> VfsResult<()> {
        let mut c = self.core()?;
        let ino = c.resolve(p)?;
        let mut xattrs = c.read_xattrs(ino)?;
        if xattrs.remove(name).is_none() {
            return Err(Errno::ENODATA);
        }
        c.write_xattrs(ino, &xattrs)
    }
}

impl XInode {
    fn in_use(&self) -> bool {
        self.ftype != FT_FREE
    }
}

impl<D: BlockDevice> DeviceBacked for XfsFs<D> {
    fn snapshot_device(&mut self) -> VfsResult<blockdev::DeviceSnapshot> {
        self.dev.snapshot().map_err(|_| Errno::EIO)
    }

    fn restore_device(&mut self, snapshot: &blockdev::DeviceSnapshot) -> VfsResult<()> {
        self.dev.restore(snapshot).map_err(|_| Errno::EIO)
    }

    fn device_size_bytes(&self) -> u64 {
        self.dev.size_bytes()
    }

    fn crash_reboot(&mut self) -> VfsResult<()> {
        // Power fails: unsynced in-memory state is lost, the device drops
        // its volatile cache, and mount's log-recovery scan runs.
        self.m = None;
        self.dev.power_cut().map_err(|_| Errno::EIO)?;
        self.mount()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockdev::RamDisk;

    fn xfs() -> XfsFs<RamDisk> {
        let mut fs = crate::xfs_on_ram(MIN_DEVICE_BYTES).unwrap();
        fs.mount().unwrap();
        fs
    }

    fn write_file<D: BlockDevice>(fs: &mut XfsFs<D>, p: &str, data: &[u8]) {
        let fd = fs.create(p, FileMode::REG_DEFAULT).unwrap();
        fs.write(fd, data).unwrap();
        fs.close(fd).unwrap();
    }

    fn read_file<D: BlockDevice>(fs: &mut XfsFs<D>, p: &str) -> Vec<u8> {
        let fd = fs
            .open(p, OpenFlags::read_only(), FileMode::REG_DEFAULT)
            .unwrap();
        let size = fs.stat(p).unwrap().size as usize;
        let mut buf = vec![0; size + 8];
        let n = fs.read(fd, &mut buf).unwrap();
        fs.close(fd).unwrap();
        buf.truncate(n);
        buf
    }

    #[test]
    fn enforces_minimum_device_size() {
        let small = RamDisk::new(4096, 4 * 1024 * 1024).unwrap();
        assert_eq!(
            XfsFs::format(small, XfsConfig::default()).err(),
            Some(Errno::EINVAL)
        );
        assert!(crate::xfs_on_ram(MIN_DEVICE_BYTES).is_ok());
    }

    #[test]
    fn roundtrip_and_remount() {
        let mut fs = xfs();
        write_file(&mut fs, "/f", b"xfs data");
        fs.mkdir("/d", FileMode::DIR_DEFAULT).unwrap();
        write_file(&mut fs, "/d/g", &[3u8; 9000]);
        fs.unmount().unwrap();
        fs.mount().unwrap();
        assert_eq!(read_file(&mut fs, "/f"), b"xfs data");
        assert_eq!(read_file(&mut fs, "/d/g"), vec![3u8; 9000]);
    }

    #[test]
    fn directory_sizes_are_entry_based() {
        let mut fs = xfs();
        fs.mkdir("/d", FileMode::DIR_DEFAULT).unwrap();
        assert_eq!(fs.stat("/d").unwrap().size, 0, "empty dir reports 0");
        write_file(&mut fs, "/d/file", b"");
        let sz = fs.stat("/d").unwrap().size;
        assert!(
            sz > 0 && sz < 4096,
            "entry-based, not a block multiple: {sz}"
        );
    }

    #[test]
    fn no_lost_and_found() {
        let mut fs = xfs();
        assert!(fs.getdents("/").unwrap().is_empty());
    }

    #[test]
    fn getdents_returns_hash_order() {
        let mut fs = xfs();
        for n in ["aaa", "bbb", "ccc", "ddd"] {
            write_file(&mut fs, &format!("/{n}"), b"");
        }
        let names: Vec<_> = fs
            .getdents("/")
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        let mut by_hash = vec!["aaa", "bbb", "ccc", "ddd"];
        by_hash.sort_by_key(|n| name_hash(n));
        assert_eq!(names, by_hash);
        assert_ne!(names, vec!["aaa", "bbb", "ccc", "ddd"], "not name order");
    }

    #[test]
    fn extents_merge_and_overflow() {
        let mut fs = xfs();
        // A large sequential file should use few (merged) extents.
        let data = vec![9u8; 200 * 1024];
        write_file(&mut fs, "/big", &data);
        assert_eq!(read_file(&mut fs, "/big"), data);
        fs.unmount().unwrap();
        fs.mount().unwrap();
        assert_eq!(read_file(&mut fs, "/big"), data);
        // Shrink frees the space back.
        let free_before = fs.statfs().unwrap().blocks_free;
        fs.truncate("/big", 10).unwrap();
        assert!(fs.statfs().unwrap().blocks_free > free_before + 40);
    }

    #[test]
    fn fragmented_allocation_spans_extents() {
        let mut fs = xfs();
        // Fragment free space: create files, delete every other one.
        for i in 0..20 {
            write_file(&mut fs, &format!("/frag{i}"), &vec![i as u8; 8192]);
        }
        for i in (0..20).step_by(2) {
            fs.unlink(&format!("/frag{i}")).unwrap();
        }
        // A file bigger than any single freed hole must span extents.
        let data: Vec<u8> = (0..60_000u32).map(|i| (i % 7) as u8).collect();
        write_file(&mut fs, "/spanning", &data);
        assert_eq!(read_file(&mut fs, "/spanning"), data);
        fs.unmount().unwrap();
        fs.mount().unwrap();
        assert_eq!(read_file(&mut fs, "/spanning"), data);
    }

    #[test]
    fn truncate_shrink_extend_zeroes() {
        let mut fs = xfs();
        write_file(&mut fs, "/f", &[0xCC; 5000]);
        fs.truncate("/f", 3).unwrap();
        fs.truncate("/f", 5000).unwrap();
        let content = read_file(&mut fs, "/f");
        assert_eq!(&content[..3], &[0xCC; 3][..]);
        assert!(content[3..].iter().all(|&b| b == 0));
    }

    #[test]
    fn enospc_and_recovery() {
        let mut fs = xfs();
        let free = fs.statfs().unwrap().blocks_free;
        let fd = fs.create("/hog", FileMode::REG_DEFAULT).unwrap();
        let too_big = vec![1u8; (free as usize + 4) * 4096];
        assert_eq!(fs.write(fd, &too_big), Err(Errno::ENOSPC));
        assert_eq!(fs.stat("/hog").unwrap().size, 0);
        fs.close(fd).unwrap();
        fs.unlink("/hog").unwrap();
        write_file(&mut fs, "/fits", &vec![1u8; 4096 * 4]);
    }

    #[test]
    fn unclean_mount_recovers_free_space() {
        let mut fs = xfs();
        write_file(&mut fs, "/a", &[1u8; 40_000]);
        fs.sync().unwrap();
        let free_synced = fs.statfs().unwrap().blocks_free;
        let snap = fs.snapshot_device().unwrap();
        fs.unmount().unwrap();
        // Crash back to the dirty image (superblock still marked dirty).
        fs.restore_device(&snap).unwrap();
        fs.mount().unwrap(); // triggers the scan-based recovery
        assert_eq!(read_file(&mut fs, "/a"), vec![1u8; 40_000]);
        assert_eq!(fs.statfs().unwrap().blocks_free, free_synced);
    }

    #[test]
    fn rename_link_symlink_xattr_suite() {
        let mut fs = xfs();
        write_file(&mut fs, "/a", b"A");
        fs.rename("/a", "/b").unwrap();
        fs.link("/b", "/h").unwrap();
        assert_eq!(fs.stat("/h").unwrap().nlink, 2);
        fs.symlink("/b", "/s").unwrap();
        assert_eq!(fs.readlink("/s").unwrap(), "/b");
        fs.setxattr("/b", "user.k", b"v", XattrFlags::Any).unwrap();
        fs.unmount().unwrap();
        fs.mount().unwrap();
        assert_eq!(fs.getxattr("/b", "user.k").unwrap(), b"v");
        assert_eq!(fs.stat("/h").unwrap().nlink, 2);
        assert_eq!(fs.readlink("/s").unwrap(), "/b");
    }

    #[test]
    fn usable_capacity_differs_from_ext_shape() {
        let fs = xfs();
        let s = fs.statfs().unwrap();
        // Per-AG headers + tables are excluded from data blocks.
        assert!(s.blocks < 4096);
        assert!(s.blocks_free <= s.blocks);
        assert_eq!(s.block_size, 4096);
    }

    #[test]
    fn inode_exhaustion() {
        let mut fs = xfs();
        let files = fs.statfs().unwrap().files_free;
        for i in 0..files {
            let fd = fs.create(&format!("/i{i}"), FileMode::REG_DEFAULT).unwrap();
            fs.close(fd).unwrap();
        }
        assert_eq!(
            fs.create("/overflow", FileMode::REG_DEFAULT),
            Err(Errno::ENOSPC)
        );
    }
}
