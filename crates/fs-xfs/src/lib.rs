//! XFS-style block file system for the MCFS reproduction.
//!
//! Allocation groups, extent-mapped files with inline + overflow extent
//! lists, hash-ordered directory listings, entry-based directory sizes, and
//! a 16 MiB minimum device size — the properties of XFS that the MCFS paper
//! runs into (§3.4 false positives, §6's large-RAM-disk requirement that
//! makes Ext4-vs-XFS checking swap-bound).
//!
//! # Examples
//!
//! ```
//! use fs_xfs::{xfs_on_ram, MIN_DEVICE_BYTES};
//! use vfs::{FileSystem, FileMode};
//!
//! # fn main() -> vfs::VfsResult<()> {
//! let mut fs = xfs_on_ram(MIN_DEVICE_BYTES)?;
//! fs.mount()?;
//! fs.mkdir("/data", FileMode::DIR_DEFAULT)?;
//! let fd = fs.create("/data/f", FileMode::REG_DEFAULT)?;
//! fs.write(fd, b"extent-mapped")?;
//! fs.close(fd)?;
//! assert_eq!(fs.stat("/data/f")?.size, 13);
//! # Ok(())
//! # }
//! ```

mod xfs;

pub use xfs::{XfsConfig, XfsFs, MIN_DEVICE_BYTES};

use blockdev::RamDisk;
use vfs::VfsResult;

/// Convenience: format a fresh XFS on a RAM disk of `size_bytes`
/// (must be at least [`MIN_DEVICE_BYTES`]).
///
/// # Errors
///
/// `EINVAL` for unusable geometry or an undersized device.
pub fn xfs_on_ram(size_bytes: u64) -> VfsResult<XfsFs<RamDisk>> {
    let cfg = XfsConfig::default();
    let disk = RamDisk::new(cfg.block_size, size_bytes).map_err(|_| vfs::Errno::EINVAL)?;
    XfsFs::format(disk, cfg)
}
