//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! a minimal API-compatible subset backed by `std::sync`. Semantics differ
//! from the real crate in one way that matters here: poisoning is swallowed
//! (parking_lot locks don't poison), so a panic while holding a lock does
//! not wedge other threads — which the swarm's panic containment relies on.

use std::sync::{MutexGuard as StdMutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with the `parking_lot::Mutex` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Unlike `std`,
    /// never panics on poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// A reader-writer lock with the `parking_lot::RwLock` API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning, the lock is still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
