//! RAM block device — the "brd2" analogue from the paper.

use crate::cow::CowImage;
use crate::device::{check_io, BlockDevice, DeviceError, DeviceResult, DeviceSnapshot};

/// A RAM-backed block device.
///
/// The paper patched Linux's `brd` RAM-disk driver into `brd2` so different
/// file systems could use different-sized RAM disks (Ext4 needs 256 KiB, XFS a
/// 16 MiB minimum). `RamDisk` has per-instance geometry, so this falls out
/// naturally.
///
/// # Examples
///
/// ```
/// use blockdev::{BlockDevice, RamDisk};
///
/// # fn main() -> Result<(), blockdev::DeviceError> {
/// let mut disk = RamDisk::new(512, 256 * 1024)?;
/// assert_eq!(disk.num_blocks(), 512);
/// let snap = disk.snapshot()?;
/// disk.write_block(0, &vec![1u8; 512])?;
/// disk.restore(&snap)?;
/// let mut buf = vec![0u8; 512];
/// disk.read_block(0, &mut buf)?;
/// assert_eq!(buf, vec![0u8; 512]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RamDisk {
    block_size: usize,
    data: CowImage,
    reads: u64,
    writes: u64,
}

impl RamDisk {
    /// Creates a zero-filled RAM disk of `size_bytes` bytes with the given
    /// block size.
    ///
    /// # Errors
    ///
    /// [`DeviceError::BadGeometry`] if `block_size` is zero, `size_bytes` is
    /// zero, or `size_bytes` is not a multiple of `block_size`.
    pub fn new(block_size: usize, size_bytes: u64) -> DeviceResult<Self> {
        if block_size == 0 {
            return Err(DeviceError::BadGeometry(
                "block size must be nonzero".into(),
            ));
        }
        if size_bytes == 0 {
            return Err(DeviceError::BadGeometry(
                "device size must be nonzero".into(),
            ));
        }
        if !size_bytes.is_multiple_of(block_size as u64) {
            return Err(DeviceError::BadGeometry(format!(
                "size {size_bytes} is not a multiple of block size {block_size}"
            )));
        }
        // COW chunks group small blocks to ~4 KiB so snapshot sharing is
        // tracked at a sensible granularity without per-block Arc overhead.
        let chunk_size = block_size * (4096 / block_size).max(1);
        Ok(RamDisk {
            block_size,
            data: CowImage::new(size_bytes as usize, chunk_size, 0),
            reads: 0,
            writes: 0,
        })
    }

    /// Number of block reads served since creation.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Number of block writes served since creation.
    pub fn writes(&self) -> u64 {
        self.writes
    }
}

impl BlockDevice for RamDisk {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn num_blocks(&self) -> u64 {
        (self.data.len() / self.block_size) as u64
    }

    fn read_block(&mut self, block: u64, buf: &mut [u8]) -> DeviceResult<()> {
        check_io(block, buf.len(), self.block_size, self.num_blocks())?;
        self.data.read(block as usize * self.block_size, buf);
        self.reads += 1;
        Ok(())
    }

    fn write_block(&mut self, block: u64, buf: &[u8]) -> DeviceResult<()> {
        check_io(block, buf.len(), self.block_size, self.num_blocks())?;
        self.data.write(block as usize * self.block_size, buf);
        self.writes += 1;
        Ok(())
    }

    fn snapshot(&mut self) -> DeviceResult<DeviceSnapshot> {
        // O(#chunks): the snapshot shares every chunk with the live disk.
        Ok(DeviceSnapshot {
            block_size: self.block_size,
            image: self.data.clone(),
        })
    }

    fn restore(&mut self, snapshot: &DeviceSnapshot) -> DeviceResult<()> {
        if snapshot.block_size != self.block_size || snapshot.image.len() != self.data.len() {
            return Err(DeviceError::SnapshotMismatch);
        }
        self.data.copy_from(&snapshot.image);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_validation() {
        assert!(RamDisk::new(0, 1024).is_err());
        assert!(RamDisk::new(512, 0).is_err());
        assert!(RamDisk::new(512, 1000).is_err());
        assert!(RamDisk::new(512, 1024).is_ok());
    }

    #[test]
    fn read_write_roundtrip() {
        let mut d = RamDisk::new(4, 16).unwrap();
        d.write_block(2, &[9, 8, 7, 6]).unwrap();
        let mut buf = [0u8; 4];
        d.read_block(2, &mut buf).unwrap();
        assert_eq!(buf, [9, 8, 7, 6]);
        assert_eq!(d.reads(), 1);
        assert_eq!(d.writes(), 1);
    }

    #[test]
    fn out_of_range_and_bad_len() {
        let mut d = RamDisk::new(4, 16).unwrap();
        assert!(d.write_block(4, &[0; 4]).is_err());
        let mut small = [0u8; 2];
        assert!(d.read_block(0, &mut small).is_err());
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut d = RamDisk::new(4, 16).unwrap();
        d.write_block(1, &[1, 2, 3, 4]).unwrap();
        let snap = d.snapshot().unwrap();
        assert_eq!(snap.size_bytes(), 16);
        d.write_block(1, &[0xff; 4]).unwrap();
        d.restore(&snap).unwrap();
        let mut buf = [0u8; 4];
        d.read_block(1, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3, 4]);
    }

    #[test]
    fn restore_rejects_mismatched_snapshot() {
        let mut a = RamDisk::new(4, 16).unwrap();
        let mut b = RamDisk::new(8, 16).unwrap();
        let snap = b.snapshot().unwrap();
        assert_eq!(a.restore(&snap), Err(DeviceError::SnapshotMismatch));
    }
}
