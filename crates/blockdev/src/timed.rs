//! Latency-modelled device wrapper: charges virtual time per operation.

use crate::clock::Clock;
use crate::device::{BlockDevice, DeviceResult, DeviceSnapshot};
use crate::faulty::FaultPhase;

/// Storage-technology class, used to pick a default latency model and for
/// reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceClass {
    /// RAM block device (`brd2`).
    Ram,
    /// Flash SSD.
    Ssd,
    /// Spinning disk.
    Hdd,
}

impl std::fmt::Display for DeviceClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DeviceClass::Ram => "RAM",
            DeviceClass::Ssd => "SSD",
            DeviceClass::Hdd => "HDD",
        };
        f.write_str(s)
    }
}

/// A per-operation latency model, in nanoseconds of virtual time.
///
/// The HDD model adds a seek penalty whenever the accessed block is not
/// adjacent to the previous access; SSD and RAM models are position
/// independent. Values are chosen so the paper's observed ratios (HDD ≈ 20×
/// and SSD ≈ 18× slower than RAM for the full model-checking loop, where
/// remount traffic amplifies device latency) fall out of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// The technology class this model represents.
    pub class: DeviceClass,
    /// Cost of one block read.
    pub read_ns: u64,
    /// Cost of one block write.
    pub write_ns: u64,
    /// Extra cost when the access is non-sequential (seek + rotational delay
    /// for HDDs; zero elsewhere).
    pub seek_ns: u64,
    /// Cost of a flush/barrier.
    pub flush_ns: u64,
}

impl LatencyModel {
    /// RAM block device: a few µs per block — the block-layer syscall cost
    /// dominates the memcpy (`brd` through the kernel, not a bare memcpy).
    pub fn ram() -> Self {
        LatencyModel {
            class: DeviceClass::Ram,
            read_ns: 4_000,
            write_ns: 5_000,
            seek_ns: 0,
            flush_ns: 0,
        }
    }

    /// SATA-class SSD: ~15–20 µs effective per-block cost. Effective costs
    /// are calibrated cache-amortized values (the checker's device traffic
    /// passes through the kernel page cache in the paper's setup); see
    /// EXPERIMENTS.md.
    pub fn ssd() -> Self {
        LatencyModel {
            class: DeviceClass::Ssd,
            read_ns: 15_000,
            write_ns: 25_000,
            seek_ns: 0,
            flush_ns: 11_000_000,
        }
    }

    /// 7200 RPM HDD: effective (cache- and scheduler-amortized) costs —
    /// ~0.4 ms effective seek, ~15–18 µs per-block transfer.
    pub fn hdd() -> Self {
        LatencyModel {
            class: DeviceClass::Hdd,
            read_ns: 15_000,
            write_ns: 18_000,
            seek_ns: 700_000,
            flush_ns: 12_500_000,
        }
    }

    /// The model matching a [`DeviceClass`].
    pub fn for_class(class: DeviceClass) -> Self {
        match class {
            DeviceClass::Ram => LatencyModel::ram(),
            DeviceClass::Ssd => LatencyModel::ssd(),
            DeviceClass::Hdd => LatencyModel::hdd(),
        }
    }
}

/// A [`BlockDevice`] wrapper that charges a [`LatencyModel`]'s costs to a
/// shared virtual [`Clock`] on every operation.
///
/// Snapshots and restores are charged as bulk transfers (one read or write per
/// block), matching how MCFS's persistent-state tracking must stream the whole
/// device image — this is why the paper's HDD/SSD configurations are so much
/// slower than RAM disks.
///
/// # Examples
///
/// ```
/// use blockdev::{BlockDevice, Clock, LatencyModel, RamDisk, TimedDevice};
///
/// # fn main() -> Result<(), blockdev::DeviceError> {
/// let clock = Clock::new();
/// let disk = RamDisk::new(512, 4096)?;
/// let mut hdd = TimedDevice::new(disk, LatencyModel::hdd(), clock.clone());
/// hdd.read_block(0, &mut vec![0; 512])?;
/// hdd.read_block(7, &mut vec![0; 512])?; // non-adjacent: pays a seek
/// assert!(clock.now_ns() >= 100_000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TimedDevice<D> {
    inner: D,
    model: LatencyModel,
    clock: Clock,
    last_block: Option<u64>,
}

impl<D: BlockDevice> TimedDevice<D> {
    /// Wraps `inner` so each operation charges `model`'s cost to `clock`.
    pub fn new(inner: D, model: LatencyModel, clock: Clock) -> Self {
        TimedDevice {
            inner,
            model,
            clock,
            last_block: None,
        }
    }

    /// The latency model in effect.
    pub fn model(&self) -> &LatencyModel {
        &self.model
    }

    /// The shared clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Consumes the wrapper, returning the underlying device.
    pub fn into_inner(self) -> D {
        self.inner
    }

    fn charge_access(&mut self, block: u64, base_ns: u64) {
        let seek = match self.last_block {
            Some(prev) if block == prev || block == prev + 1 => 0,
            None => 0,
            _ => self.model.seek_ns,
        };
        self.clock.advance_ns(base_ns + seek);
        self.last_block = Some(block);
    }
}

impl<D: BlockDevice> BlockDevice for TimedDevice<D> {
    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn read_block(&mut self, block: u64, buf: &mut [u8]) -> DeviceResult<()> {
        self.inner.read_block(block, buf)?;
        self.charge_access(block, self.model.read_ns);
        Ok(())
    }

    fn write_block(&mut self, block: u64, buf: &[u8]) -> DeviceResult<()> {
        self.inner.write_block(block, buf)?;
        self.charge_access(block, self.model.write_ns);
        Ok(())
    }

    fn flush(&mut self) -> DeviceResult<()> {
        self.inner.flush()?;
        self.clock.advance_ns(self.model.flush_ns);
        Ok(())
    }

    fn power_cut(&mut self) -> DeviceResult<()> {
        // Losing power costs no virtual time; the reboot's mount does.
        self.inner.power_cut()?;
        self.last_block = None;
        Ok(())
    }

    fn snapshot(&mut self) -> DeviceResult<DeviceSnapshot> {
        let snap = self.inner.snapshot()?;
        // A snapshot streams the whole image sequentially.
        let blocks = self.inner.num_blocks();
        self.clock
            .advance_ns(self.model.read_ns.saturating_mul(blocks));
        Ok(snap)
    }

    fn restore(&mut self, snapshot: &DeviceSnapshot) -> DeviceResult<()> {
        self.inner.restore(snapshot)?;
        let blocks = self.inner.num_blocks();
        self.clock
            .advance_ns(self.model.write_ns.saturating_mul(blocks));
        self.last_block = None;
        Ok(())
    }

    fn set_fault_phase(&mut self, phase: FaultPhase) {
        self.inner.set_fault_phase(phase);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RamDisk;

    fn dev(model: LatencyModel) -> (TimedDevice<RamDisk>, Clock) {
        let clock = Clock::new();
        let d = TimedDevice::new(RamDisk::new(4, 64).unwrap(), model, clock.clone());
        (d, clock)
    }

    #[test]
    fn sequential_hdd_access_avoids_seeks() {
        let (mut d, clock) = dev(LatencyModel::hdd());
        let mut buf = [0u8; 4];
        d.read_block(0, &mut buf).unwrap();
        d.read_block(1, &mut buf).unwrap();
        d.read_block(2, &mut buf).unwrap();
        // Three sequential reads: 3 * 15µs, no seek after the first.
        assert_eq!(clock.now_ns(), 45_000);
    }

    #[test]
    fn random_hdd_access_pays_seek() {
        let (mut d, clock) = dev(LatencyModel::hdd());
        let mut buf = [0u8; 4];
        d.read_block(0, &mut buf).unwrap();
        d.read_block(9, &mut buf).unwrap();
        assert_eq!(clock.now_ns(), 15_000 + 15_000 + 700_000);
    }

    #[test]
    fn ram_model_is_cheap() {
        let (mut d, clock) = dev(LatencyModel::ram());
        d.write_block(5, &[0; 4]).unwrap();
        assert_eq!(clock.now_ns(), 5_000);
    }

    #[test]
    fn snapshot_charges_bulk_transfer() {
        let (mut d, clock) = dev(LatencyModel::ssd());
        let before = clock.now_ns();
        let snap = d.snapshot().unwrap();
        assert_eq!(clock.now_ns() - before, 15_000 * 16);
        let before = clock.now_ns();
        d.restore(&snap).unwrap();
        assert_eq!(clock.now_ns() - before, 25_000 * 16);
    }

    #[test]
    fn class_display_and_for_class() {
        assert_eq!(DeviceClass::Ram.to_string(), "RAM");
        assert_eq!(LatencyModel::for_class(DeviceClass::Hdd).seek_ns, 700_000);
        assert_eq!(
            LatencyModel::for_class(DeviceClass::Ssd).class,
            DeviceClass::Ssd
        );
    }

    #[test]
    fn flush_charges_model_cost() {
        let (mut d, clock) = dev(LatencyModel::ssd());
        d.flush().unwrap();
        assert_eq!(clock.now_ns(), 11_000_000);
    }
}
