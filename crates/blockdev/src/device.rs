//! The block device abstraction and whole-device snapshots.

use std::error::Error;
use std::fmt;

use crate::cow::CowImage;
use crate::faulty::FaultPhase;

/// Errors returned by block-device operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// A block index beyond the end of the device was addressed.
    OutOfRange {
        /// The offending block index.
        block: u64,
        /// Number of blocks on the device.
        num_blocks: u64,
    },
    /// A buffer whose length does not match the device block size was passed.
    BadBufferLength {
        /// Length of the buffer supplied by the caller.
        got: usize,
        /// The device block size.
        expected: usize,
    },
    /// The requested geometry is invalid (zero-sized blocks, size not a
    /// multiple of the block size, or a zero-length device).
    BadGeometry(String),
    /// A snapshot from a device with different geometry was restored.
    SnapshotMismatch,
    /// Flash-specific failure (wrapped by [`crate::MtdBlock`]).
    Mtd(String),
    /// An I/O failure — what an injected fault surfaces as (see
    /// [`crate::FaultyDevice`]). File systems map this to `EIO`.
    Io(String),
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::OutOfRange { block, num_blocks } => {
                write!(
                    f,
                    "block {block} out of range (device has {num_blocks} blocks)"
                )
            }
            DeviceError::BadBufferLength { got, expected } => {
                write!(
                    f,
                    "buffer length {got} does not match block size {expected}"
                )
            }
            DeviceError::BadGeometry(msg) => write!(f, "bad device geometry: {msg}"),
            DeviceError::SnapshotMismatch => {
                write!(f, "snapshot geometry does not match this device")
            }
            DeviceError::Mtd(msg) => write!(f, "mtd error: {msg}"),
            DeviceError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl Error for DeviceError {}

/// Result alias for device operations.
pub type DeviceResult<T> = Result<T, DeviceError>;

/// A whole-device snapshot: the persistent state SPIN tracks by mmapping the
/// backing store of each file system (paper §4).
///
/// A snapshot is a [`CowImage`] plus geometry: capturing one is O(#chunks)
/// reference bumps, and it shares every chunk the live device has not
/// rewritten since. [`size_bytes`](DeviceSnapshot::size_bytes) still reports
/// the full *logical* device size — that is what the model checker's memory
/// model charges (SPIN really holds a full copy per tracked state); the
/// structural-sharing saving is a host-memory win reported separately via
/// [`shared_bytes`](DeviceSnapshot::shared_bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceSnapshot {
    pub(crate) block_size: usize,
    pub(crate) image: CowImage,
}

impl DeviceSnapshot {
    /// Logical size of the snapshot in bytes (equals the device size).
    pub fn size_bytes(&self) -> usize {
        self.image.len()
    }

    /// The block size of the device the snapshot was taken from.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Iterates the image's chunks as byte slices, in order (for hashing or
    /// serialization without materializing the whole image).
    pub fn chunks(&self) -> impl Iterator<Item = &[u8]> {
        self.image.chunks()
    }

    /// The chunk granularity of the underlying COW image.
    pub fn chunk_size(&self) -> usize {
        self.image.chunk_size()
    }

    /// Reassembles a snapshot from chunks previously produced by
    /// [`DeviceSnapshot::chunks`] (the checkpoint pool's disk-promotion
    /// path). Returns `None` on geometry mismatch.
    pub fn from_chunks(block_size: usize, chunk_size: usize, chunks: Vec<Vec<u8>>) -> Option<Self> {
        if block_size == 0 {
            return None;
        }
        Some(DeviceSnapshot {
            block_size,
            image: CowImage::from_chunks(chunk_size, chunks)?,
        })
    }

    /// Materializes the full image as one contiguous vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.image.to_vec()
    }

    /// Bytes shared with the live device or other snapshots of it.
    pub fn shared_bytes(&self) -> usize {
        self.image.shared_bytes()
    }

    /// Bytes uniquely attributable to holding this snapshot.
    pub fn unique_bytes(&self) -> usize {
        self.size_bytes() - self.shared_bytes()
    }
}

/// A fixed-geometry block device.
///
/// All file systems in this reproduction sit on a `BlockDevice` (JFFS2 via the
/// [`crate::MtdBlock`] adapter). The trait also exposes snapshot/restore of the
/// full device image — the mechanism MCFS uses to track persistent state.
pub trait BlockDevice: Send {
    /// Block size in bytes.
    fn block_size(&self) -> usize;

    /// Number of blocks on the device.
    fn num_blocks(&self) -> u64;

    /// Total capacity in bytes.
    fn size_bytes(&self) -> u64 {
        self.num_blocks() * self.block_size() as u64
    }

    /// Reads block `block` into `buf`.
    ///
    /// # Errors
    ///
    /// [`DeviceError::OutOfRange`] if `block >= num_blocks()`;
    /// [`DeviceError::BadBufferLength`] if `buf.len() != block_size()`.
    fn read_block(&mut self, block: u64, buf: &mut [u8]) -> DeviceResult<()>;

    /// Writes `buf` to block `block`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`read_block`](Self::read_block).
    fn write_block(&mut self, block: u64, buf: &[u8]) -> DeviceResult<()>;

    /// Flushes any device-level write buffer. RAM-backed devices are
    /// write-through, so the default is a no-op.
    fn flush(&mut self) -> DeviceResult<()> {
        Ok(())
    }

    /// Emulates a power cut: every write accepted since the last
    /// [`flush`](Self::flush) that still sits in a volatile cache is lost,
    /// then the device comes back up. Write-through devices have nothing to
    /// lose, so the default is a no-op.
    fn power_cut(&mut self) -> DeviceResult<()> {
        Ok(())
    }

    /// Captures the full device image.
    fn snapshot(&mut self) -> DeviceResult<DeviceSnapshot>;

    /// Restores a previously captured image.
    ///
    /// This is exactly the operation that makes mounted file systems' caches
    /// incoherent (paper §3.2): the device content changes underneath them.
    ///
    /// # Errors
    ///
    /// [`DeviceError::SnapshotMismatch`] if the snapshot geometry differs.
    fn restore(&mut self, snapshot: &DeviceSnapshot) -> DeviceResult<()>;

    /// Declares which life-cycle [`FaultPhase`] subsequent operations belong
    /// to, so phase-filtered fault plans can target (say) only repair
    /// traffic. Plain devices have no fault machinery, so the default is a
    /// no-op; [`crate::FaultyDevice`] records it, and wrappers forward it.
    fn set_fault_phase(&mut self, _phase: FaultPhase) {}
}

pub(crate) fn check_io(
    block: u64,
    buf_len: usize,
    block_size: usize,
    num_blocks: u64,
) -> DeviceResult<()> {
    if block >= num_blocks {
        return Err(DeviceError::OutOfRange { block, num_blocks });
    }
    if buf_len != block_size {
        return Err(DeviceError::BadBufferLength {
            got: buf_len,
            expected: block_size,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = DeviceError::OutOfRange {
            block: 9,
            num_blocks: 4,
        };
        assert!(e.to_string().contains("block 9"));
        assert!(DeviceError::SnapshotMismatch
            .to_string()
            .contains("snapshot"));
        assert!(DeviceError::BadGeometry("x".into())
            .to_string()
            .contains('x'));
    }

    #[test]
    fn check_io_rejects_bad_inputs() {
        assert!(check_io(0, 512, 512, 4).is_ok());
        assert!(matches!(
            check_io(4, 512, 512, 4),
            Err(DeviceError::OutOfRange { .. })
        ));
        assert!(matches!(
            check_io(0, 100, 512, 4),
            Err(DeviceError::BadBufferLength { .. })
        ));
    }
}
