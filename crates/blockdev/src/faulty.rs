//! Fault-injecting device wrapper.
//!
//! Real storage fails; a file system's error paths are "where bugs often
//! lurk" (paper §2). [`FaultyDevice`] wraps any block device and fails
//! scripted operations with I/O errors, so tests can verify that every file
//! system surfaces `EIO` cleanly instead of corrupting state or panicking.

use crate::device::{BlockDevice, DeviceError, DeviceResult, DeviceSnapshot};

/// Which operations to fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail block reads.
    Read,
    /// Fail block writes.
    Write,
    /// Fail both.
    Both,
}

/// A fault-injection plan: fail the next operations of the selected kind
/// after `skip` successful ones, for `count` failures.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Which operations fail.
    pub kind: FaultKind,
    /// Operations of that kind to let through first.
    pub skip: u64,
    /// Number of consecutive failures to inject (then heal).
    pub count: u64,
}

/// A [`BlockDevice`] wrapper injecting scripted I/O failures.
///
/// # Examples
///
/// ```
/// use blockdev::{BlockDevice, FaultKind, FaultPlan, FaultyDevice, RamDisk};
///
/// # fn main() -> Result<(), blockdev::DeviceError> {
/// let disk = RamDisk::new(512, 4096)?;
/// let mut dev = FaultyDevice::new(disk, FaultPlan { kind: FaultKind::Write, skip: 1, count: 1 });
/// dev.write_block(0, &vec![0; 512])?;            // passes (skip = 1)
/// assert!(dev.write_block(1, &vec![0; 512]).is_err()); // injected failure
/// dev.write_block(2, &vec![0; 512])?;            // healed
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FaultyDevice<D> {
    inner: D,
    plan: FaultPlan,
    reads_seen: u64,
    writes_seen: u64,
    injected: u64,
}

impl<D: BlockDevice> FaultyDevice<D> {
    /// Wraps `inner` with the given fault plan.
    pub fn new(inner: D, plan: FaultPlan) -> Self {
        FaultyDevice {
            inner,
            plan,
            reads_seen: 0,
            writes_seen: 0,
            injected: 0,
        }
    }

    /// Number of failures injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Consumes the wrapper, returning the underlying device.
    pub fn into_inner(self) -> D {
        self.inner
    }

    fn should_fail(&mut self, is_write: bool) -> bool {
        let applies = matches!(
            (self.plan.kind, is_write),
            (FaultKind::Both, _) | (FaultKind::Read, false) | (FaultKind::Write, true)
        );
        if !applies {
            return false;
        }
        let seen = if is_write {
            self.writes_seen
        } else {
            self.reads_seen
        };
        let fail = seen >= self.plan.skip && self.injected < self.plan.count;
        if is_write {
            self.writes_seen += 1;
        } else {
            self.reads_seen += 1;
        }
        if fail {
            self.injected += 1;
        }
        fail
    }
}

impl<D: BlockDevice> BlockDevice for FaultyDevice<D> {
    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn read_block(&mut self, block: u64, buf: &mut [u8]) -> DeviceResult<()> {
        if self.should_fail(false) {
            return Err(DeviceError::Mtd(format!(
                "injected read fault at block {block}"
            )));
        }
        self.inner.read_block(block, buf)
    }

    fn write_block(&mut self, block: u64, buf: &[u8]) -> DeviceResult<()> {
        if self.should_fail(true) {
            return Err(DeviceError::Mtd(format!(
                "injected write fault at block {block}"
            )));
        }
        self.inner.write_block(block, buf)
    }

    fn flush(&mut self) -> DeviceResult<()> {
        self.inner.flush()
    }

    fn snapshot(&mut self) -> DeviceResult<DeviceSnapshot> {
        self.inner.snapshot()
    }

    fn restore(&mut self, snapshot: &DeviceSnapshot) -> DeviceResult<()> {
        self.inner.restore(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RamDisk;

    #[test]
    fn injects_then_heals() {
        let disk = RamDisk::new(4, 64).unwrap();
        let mut dev = FaultyDevice::new(
            disk,
            FaultPlan {
                kind: FaultKind::Read,
                skip: 2,
                count: 3,
            },
        );
        let mut buf = [0u8; 4];
        dev.read_block(0, &mut buf).unwrap();
        dev.read_block(1, &mut buf).unwrap();
        for _ in 0..3 {
            assert!(dev.read_block(0, &mut buf).is_err());
        }
        dev.read_block(0, &mut buf).unwrap();
        assert_eq!(dev.injected(), 3);
        // Writes unaffected by a read-only plan.
        dev.write_block(0, &[1; 4]).unwrap();
    }

    #[test]
    fn write_faults_do_not_hit_reads() {
        let disk = RamDisk::new(4, 64).unwrap();
        let mut dev = FaultyDevice::new(
            disk,
            FaultPlan {
                kind: FaultKind::Write,
                skip: 0,
                count: 1,
            },
        );
        let mut buf = [0u8; 4];
        dev.read_block(0, &mut buf).unwrap();
        assert!(dev.write_block(0, &[0; 4]).is_err());
        dev.write_block(0, &[0; 4]).unwrap();
    }

    #[test]
    fn both_kind_fails_everything_in_window() {
        let disk = RamDisk::new(4, 64).unwrap();
        let mut dev = FaultyDevice::new(
            disk,
            FaultPlan {
                kind: FaultKind::Both,
                skip: 0,
                count: 2,
            },
        );
        let mut buf = [0u8; 4];
        assert!(dev.read_block(0, &mut buf).is_err());
        assert!(dev.write_block(0, &[0; 4]).is_err());
        dev.read_block(0, &mut buf).unwrap();
    }
}
