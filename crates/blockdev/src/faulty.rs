//! Fault-injecting device wrapper.
//!
//! Real storage fails; a file system's error paths are "where bugs often
//! lurk" (paper §2). [`FaultyDevice`] wraps any block device and fails
//! scripted operations with I/O errors, tears writes in half, or drops a
//! volatile write cache on power cuts, so tests can verify that every file
//! system surfaces `EIO` cleanly instead of corrupting state or panicking,
//! and that sync'd data survives a crash.

use std::collections::HashMap;

use crate::device::{check_io, BlockDevice, DeviceError, DeviceResult, DeviceSnapshot};

/// Which operations to fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail block reads.
    Read,
    /// Fail block writes (MTD: programs).
    Write,
    /// Fail erases (meaningful for MTD devices only).
    Erase,
    /// Fail reads, writes and erases alike.
    Both,
}

impl FaultKind {
    fn applies_to(self, op: FaultKind) -> bool {
        self == FaultKind::Both || self == op
    }
}

/// Which life-cycle phase of the wrapped file system an operation belongs
/// to. Devices default to [`Normal`](FaultPhase::Normal); repair code
/// (fsck) brackets its I/O with [`Repair`](FaultPhase::Repair) via
/// `set_phase`, so plans can pin a fault to the Nth *repair* write without
/// normal-operation traffic advancing the ordinal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultPhase {
    /// Match operations in any phase (the default for plans).
    #[default]
    Any,
    /// Regular file-system operation (the default phase for devices).
    Normal,
    /// Inside a scan-and-repair (fsck) pass.
    Repair,
}

/// The concrete fault a [`FaultPlan`] asks a device to inject for one
/// operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Fail the operation with an I/O error.
    Eio,
    /// (Writes only.) Pretend the operation succeeded but persist only the
    /// first `k` bytes of the buffer — a torn sector, as left behind by a
    /// power loss mid-write or lying firmware. Readers observe it as an EIO.
    Torn(usize),
}

/// A fault-injection plan: fail the next operations of the selected kind
/// after `skip` successful ones, for `count` failures. With
/// [`torn_bytes`](Self::torn_bytes) set, faulting writes are torn instead of
/// erroring; with [`volatile_cache`](Self::volatile_cache), the wrapped
/// device buffers writes until `flush` and loses them on
/// [`power_cut`](BlockDevice::power_cut).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Which operations fail.
    pub kind: FaultKind,
    /// Operations of that kind to let through first.
    pub skip: u64,
    /// Number of consecutive failures to inject (then heal).
    pub count: u64,
    /// When set, a faulting *write* silently persists only the first `k`
    /// bytes of the sector instead of returning an error. Faulting reads and
    /// erases still return `EIO`.
    pub torn_bytes: Option<usize>,
    /// Emulate a volatile write-back cache: writes are held in memory until
    /// `flush`, and a power cut discards everything unflushed.
    pub volatile_cache: bool,
    /// When set, the plan sees (and counts towards `skip`) only operations
    /// on this address — the block number for [`FaultyDevice`], the byte
    /// offset for [`MtdDevice`](crate::MtdDevice). Targeted plans pin a
    /// fault to one on-disk location, so unrelated traffic (superblock
    /// updates on remount, metadata syncs) does not advance the ordinal.
    pub addr: Option<u64>,
    /// When not [`FaultPhase::Any`], the plan sees (and counts towards
    /// `skip`) only operations issued while the device is in that phase —
    /// e.g. `FaultPhase::Repair` pins a fault to the Nth fsck write,
    /// keeping shrunk repair traces deterministic the way `addr` does for
    /// torn writes.
    pub phase: FaultPhase,
}

impl FaultPlan {
    /// A plan that never faults (and writes through): the identity wrapper.
    pub fn none() -> Self {
        FaultPlan {
            kind: FaultKind::Write,
            skip: 0,
            count: 0,
            torn_bytes: None,
            volatile_cache: false,
            addr: None,
            phase: FaultPhase::Any,
        }
    }

    /// Deterministic `EIO` on operations of `kind`, after `skip` successes,
    /// for `count` failures.
    pub fn eio(kind: FaultKind, skip: u64, count: u64) -> Self {
        FaultPlan {
            kind,
            skip,
            count,
            ..FaultPlan::none()
        }
    }

    /// Converts this plan's faulting writes into torn writes that persist
    /// only the first `k` bytes.
    #[must_use]
    pub fn with_torn_bytes(mut self, k: usize) -> Self {
        self.torn_bytes = Some(k);
        self
    }

    /// Restricts the plan to operations on one address (see
    /// [`addr`](Self::addr)): only they are counted against `skip`, and only
    /// they fault.
    #[must_use]
    pub fn at_addr(mut self, addr: u64) -> Self {
        self.addr = Some(addr);
        self
    }

    /// Whether an operation on `addr` falls under this plan's address
    /// filter. Unfiltered plans cover everything.
    pub fn covers(&self, addr: u64) -> bool {
        self.addr.is_none_or(|a| a == addr)
    }

    /// Restricts the plan to operations issued in `phase` (see
    /// [`phase`](Self::phase)): only they are counted against `skip`, and
    /// only they fault.
    #[must_use]
    pub fn in_phase(mut self, phase: FaultPhase) -> Self {
        self.phase = phase;
        self
    }

    /// Shorthand for [`in_phase`](Self::in_phase)`(FaultPhase::Repair)`:
    /// the plan fires only inside fsck.
    #[must_use]
    pub fn during_repair(self) -> Self {
        self.in_phase(FaultPhase::Repair)
    }

    /// Whether an operation issued while the device is in `current` falls
    /// under this plan's phase filter. `Any` plans cover every phase.
    pub fn phase_matches(&self, current: FaultPhase) -> bool {
        self.phase == FaultPhase::Any || self.phase == current
    }

    /// Adds a volatile write-back cache (see
    /// [`volatile_cache`](Self::volatile_cache)).
    #[must_use]
    pub fn with_volatile_cache(mut self) -> Self {
        self.volatile_cache = true;
        self
    }

    /// Decides whether the `seen`-th operation of kind `op` faults, given
    /// that `injected` faults fired already. Shared by [`FaultyDevice`] and
    /// [`MtdDevice`](crate::MtdDevice) so both layers script identically.
    pub fn decide(&self, op: FaultKind, seen: u64, injected: u64) -> Option<Fault> {
        if !self.kind.applies_to(op) || seen < self.skip || injected >= self.count {
            return None;
        }
        match (op, self.torn_bytes) {
            (FaultKind::Write, Some(k)) => Some(Fault::Torn(k)),
            _ => Some(Fault::Eio),
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// A [`BlockDevice`] wrapper injecting scripted I/O failures, torn writes and
/// power cuts.
///
/// Snapshots capture (and restores rebuild) only the *persisted* image: the
/// volatile cache is what a crash would lose, so it never travels through
/// snapshots.
///
/// # Examples
///
/// ```
/// use blockdev::{BlockDevice, FaultKind, FaultPlan, FaultyDevice, RamDisk};
///
/// # fn main() -> Result<(), blockdev::DeviceError> {
/// let disk = RamDisk::new(512, 4096)?;
/// let mut dev = FaultyDevice::new(disk, FaultPlan::eio(FaultKind::Write, 1, 1));
/// dev.write_block(0, &vec![0; 512])?;            // passes (skip = 1)
/// assert!(dev.write_block(1, &vec![0; 512]).is_err()); // injected failure
/// dev.write_block(2, &vec![0; 512])?;            // healed
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FaultyDevice<D> {
    inner: D,
    plan: FaultPlan,
    reads_seen: u64,
    writes_seen: u64,
    injected: u64,
    /// The phase the wrapped file system is currently in (set by fsck).
    current_phase: FaultPhase,
    /// Writes accepted but not yet flushed (volatile-cache mode only).
    cache: HashMap<u64, Vec<u8>>,
}

impl<D: BlockDevice> FaultyDevice<D> {
    /// Wraps `inner` with the given fault plan.
    pub fn new(inner: D, plan: FaultPlan) -> Self {
        FaultyDevice {
            inner,
            plan,
            reads_seen: 0,
            writes_seen: 0,
            injected: 0,
            current_phase: FaultPhase::Normal,
            cache: HashMap::new(),
        }
    }

    /// Number of failures injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// The plan in effect.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// Replaces the fault plan and restarts the op counters, so the new
    /// plan's `skip` is relative to *now* — scripting a fault window after
    /// mkfs/mount no longer requires counting setup I/O.
    pub fn set_plan(&mut self, plan: FaultPlan) {
        self.plan = plan;
        self.reads_seen = 0;
        self.writes_seen = 0;
        self.injected = 0;
    }

    /// Blocks sitting in the volatile cache — what the next power cut loses.
    pub fn pending_writes(&self) -> usize {
        self.cache.len()
    }

    /// Declares which phase subsequent operations belong to. Repair code
    /// sets [`FaultPhase::Repair`] around its I/O (and restores
    /// [`FaultPhase::Normal`] after), letting phase-filtered plans count
    /// only repair traffic. Does not reset the op counters.
    pub fn set_phase(&mut self, phase: FaultPhase) {
        self.current_phase = phase;
    }

    /// The phase subsequent operations are attributed to.
    pub fn phase(&self) -> FaultPhase {
        self.current_phase
    }

    /// Consumes the wrapper, returning the underlying device.
    pub fn into_inner(self) -> D {
        self.inner
    }

    fn next_fault(&mut self, op: FaultKind, addr: u64) -> Option<Fault> {
        if !self.plan.covers(addr) || !self.plan.phase_matches(self.current_phase) {
            return None;
        }
        let seen = match op {
            FaultKind::Write => {
                self.writes_seen += 1;
                self.writes_seen - 1
            }
            _ => {
                self.reads_seen += 1;
                self.reads_seen - 1
            }
        };
        let fault = self.plan.decide(op, seen, self.injected);
        if fault.is_some() {
            self.injected += 1;
        }
        fault
    }

    fn store(&mut self, block: u64, data: Vec<u8>) -> DeviceResult<()> {
        if self.plan.volatile_cache {
            self.cache.insert(block, data);
            Ok(())
        } else {
            self.inner.write_block(block, &data)
        }
    }
}

impl<D: BlockDevice> BlockDevice for FaultyDevice<D> {
    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn read_block(&mut self, block: u64, buf: &mut [u8]) -> DeviceResult<()> {
        if self.next_fault(FaultKind::Read, block).is_some() {
            return Err(DeviceError::Io(format!(
                "injected read fault at block {block}"
            )));
        }
        if self.plan.volatile_cache {
            check_io(
                block,
                buf.len(),
                self.inner.block_size(),
                self.inner.num_blocks(),
            )?;
            if let Some(data) = self.cache.get(&block) {
                buf.copy_from_slice(data);
                return Ok(());
            }
        }
        self.inner.read_block(block, buf)
    }

    fn write_block(&mut self, block: u64, buf: &[u8]) -> DeviceResult<()> {
        check_io(
            block,
            buf.len(),
            self.inner.block_size(),
            self.inner.num_blocks(),
        )?;
        match self.next_fault(FaultKind::Write, block) {
            Some(Fault::Eio) => Err(DeviceError::Io(format!(
                "injected write fault at block {block}"
            ))),
            Some(Fault::Torn(k)) => {
                // The device acks the write but only the first `k` bytes
                // reach stable storage; the tail keeps its previous content.
                let k = k.min(buf.len());
                let mut sector = vec![0u8; buf.len()];
                if let Some(data) = self.cache.get(&block) {
                    sector.copy_from_slice(data);
                } else {
                    self.inner.read_block(block, &mut sector)?;
                }
                sector[..k].copy_from_slice(&buf[..k]);
                self.store(block, sector)
            }
            None => self.store(block, buf.to_vec()),
        }
    }

    fn flush(&mut self) -> DeviceResult<()> {
        // Commit the volatile cache in block order so replays are
        // deterministic.
        let mut pending: Vec<u64> = self.cache.keys().copied().collect();
        pending.sort_unstable();
        for block in pending {
            let data = self.cache.remove(&block).expect("pending block");
            self.inner.write_block(block, &data)?;
        }
        self.inner.flush()
    }

    fn power_cut(&mut self) -> DeviceResult<()> {
        self.cache.clear();
        self.inner.power_cut()
    }

    fn snapshot(&mut self) -> DeviceResult<DeviceSnapshot> {
        self.inner.snapshot()
    }

    fn restore(&mut self, snapshot: &DeviceSnapshot) -> DeviceResult<()> {
        self.cache.clear();
        self.inner.restore(snapshot)
    }

    fn set_fault_phase(&mut self, phase: FaultPhase) {
        self.current_phase = phase;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RamDisk;

    #[test]
    fn injects_then_heals() {
        let disk = RamDisk::new(4, 64).unwrap();
        let mut dev = FaultyDevice::new(disk, FaultPlan::eio(FaultKind::Read, 2, 3));
        let mut buf = [0u8; 4];
        dev.read_block(0, &mut buf).unwrap();
        dev.read_block(1, &mut buf).unwrap();
        for _ in 0..3 {
            assert!(dev.read_block(0, &mut buf).is_err());
        }
        dev.read_block(0, &mut buf).unwrap();
        assert_eq!(dev.injected(), 3);
        // Writes unaffected by a read-only plan.
        dev.write_block(0, &[1; 4]).unwrap();
    }

    #[test]
    fn write_faults_do_not_hit_reads() {
        let disk = RamDisk::new(4, 64).unwrap();
        let mut dev = FaultyDevice::new(disk, FaultPlan::eio(FaultKind::Write, 0, 1));
        let mut buf = [0u8; 4];
        dev.read_block(0, &mut buf).unwrap();
        assert!(dev.write_block(0, &[0; 4]).is_err());
        dev.write_block(0, &[0; 4]).unwrap();
    }

    #[test]
    fn both_kind_fails_everything_in_window() {
        let disk = RamDisk::new(4, 64).unwrap();
        let mut dev = FaultyDevice::new(disk, FaultPlan::eio(FaultKind::Both, 0, 2));
        let mut buf = [0u8; 4];
        assert!(dev.read_block(0, &mut buf).is_err());
        assert!(dev.write_block(0, &[0; 4]).is_err());
        dev.read_block(0, &mut buf).unwrap();
    }

    #[test]
    fn torn_write_persists_only_a_prefix() {
        let disk = RamDisk::new(8, 64).unwrap();
        let mut dev = FaultyDevice::new(
            disk,
            FaultPlan::eio(FaultKind::Write, 1, 1).with_torn_bytes(3),
        );
        dev.write_block(5, &[0xAA; 8]).unwrap(); // skip = 1
        dev.write_block(5, &[0xBB; 8]).unwrap(); // torn: acks, tears
        assert_eq!(dev.injected(), 1);
        let mut buf = [0u8; 8];
        dev.read_block(5, &mut buf).unwrap();
        assert_eq!(&buf, &[0xBB, 0xBB, 0xBB, 0xAA, 0xAA, 0xAA, 0xAA, 0xAA]);
    }

    #[test]
    fn addr_targeted_plan_ignores_other_blocks() {
        let disk = RamDisk::new(8, 64).unwrap();
        let mut dev = FaultyDevice::new(
            disk,
            FaultPlan::eio(FaultKind::Write, 1, 1)
                .with_torn_bytes(3)
                .at_addr(5),
        );
        // Traffic on other blocks neither faults nor advances the ordinal.
        dev.write_block(0, &[1; 8]).unwrap();
        dev.write_block(3, &[2; 8]).unwrap();
        dev.write_block(5, &[0xAA; 8]).unwrap(); // block 5 write #0: skipped
        dev.write_block(0, &[4; 8]).unwrap();
        dev.write_block(5, &[0xBB; 8]).unwrap(); // block 5 write #1: torn
        assert_eq!(dev.injected(), 1);
        let mut buf = [0u8; 8];
        dev.read_block(5, &mut buf).unwrap();
        assert_eq!(&buf, &[0xBB, 0xBB, 0xBB, 0xAA, 0xAA, 0xAA, 0xAA, 0xAA]);
        dev.read_block(0, &mut buf).unwrap();
        assert_eq!(buf, [4; 8], "untargeted blocks write through");
    }

    #[test]
    fn phase_targeted_plan_ignores_normal_traffic() {
        let disk = RamDisk::new(4, 64).unwrap();
        let mut dev =
            FaultyDevice::new(disk, FaultPlan::eio(FaultKind::Write, 1, 1).during_repair());
        // Normal-phase writes neither fault nor advance the ordinal.
        dev.write_block(0, &[1; 4]).unwrap();
        dev.write_block(1, &[2; 4]).unwrap();
        dev.set_phase(FaultPhase::Repair);
        dev.write_block(2, &[3; 4]).unwrap(); // repair write #0: skipped
        dev.set_phase(FaultPhase::Normal);
        dev.write_block(3, &[4; 4]).unwrap(); // normal again: invisible
        dev.set_phase(FaultPhase::Repair);
        assert!(dev.write_block(2, &[5; 4]).is_err()); // repair write #1
        assert_eq!(dev.injected(), 1);
        dev.write_block(2, &[6; 4]).unwrap(); // healed
        let mut buf = [0u8; 4];
        dev.read_block(3, &mut buf).unwrap();
        assert_eq!(buf, [4; 4], "normal-phase writes pass through");
    }

    #[test]
    fn any_phase_plan_counts_everything() {
        let disk = RamDisk::new(4, 64).unwrap();
        let mut dev = FaultyDevice::new(disk, FaultPlan::eio(FaultKind::Write, 1, 1));
        dev.write_block(0, &[1; 4]).unwrap();
        dev.set_phase(FaultPhase::Repair);
        assert!(dev.write_block(0, &[2; 4]).is_err());
    }

    #[test]
    fn power_cut_drops_unflushed_writes() {
        let disk = RamDisk::new(4, 64).unwrap();
        let mut dev = FaultyDevice::new(disk, FaultPlan::none().with_volatile_cache());
        dev.write_block(0, &[1; 4]).unwrap();
        dev.flush().unwrap();
        dev.write_block(0, &[2; 4]).unwrap();
        dev.write_block(1, &[3; 4]).unwrap();
        assert_eq!(dev.pending_writes(), 2);
        // Reads see the cache while the power stays on.
        let mut buf = [0u8; 4];
        dev.read_block(0, &mut buf).unwrap();
        assert_eq!(buf, [2; 4]);
        dev.power_cut().unwrap();
        assert_eq!(dev.pending_writes(), 0);
        dev.read_block(0, &mut buf).unwrap();
        assert_eq!(buf, [1; 4]);
        dev.read_block(1, &mut buf).unwrap();
        assert_eq!(buf, [0; 4]);
    }

    #[test]
    fn snapshots_capture_persisted_state_only() {
        let disk = RamDisk::new(4, 64).unwrap();
        let mut dev = FaultyDevice::new(disk, FaultPlan::none().with_volatile_cache());
        dev.write_block(0, &[7; 4]).unwrap();
        dev.flush().unwrap();
        dev.write_block(0, &[9; 4]).unwrap(); // unflushed at snapshot time
        let snap = dev.snapshot().unwrap();
        dev.flush().unwrap();
        dev.restore(&snap).unwrap();
        let mut buf = [0u8; 4];
        dev.read_block(0, &mut buf).unwrap();
        assert_eq!(buf, [7; 4], "snapshot must be the crash-consistent image");
    }
}
