//! MTD flash device simulation (mtdram) and its block-interface adapter
//! (mtdblock).
//!
//! JFFS2 requires an MTD character device rather than a regular block device
//! (paper §4). MTD flash has *erase blocks*: bytes can be written only after
//! the containing erase block has been erased (set to `0xFF`), and programming
//! can only clear bits (1 → 0). The paper loads `mtdram` to create a virtual
//! MTD in RAM and `mtdblock` to give SPIN a block interface for mmapping.
//! [`MtdDevice`] and [`MtdBlock`] are those two modules.

use std::cell::Cell;

use crate::cow::CowImage;
use crate::device::{BlockDevice, DeviceError, DeviceResult, DeviceSnapshot};
use crate::faulty::{Fault, FaultKind, FaultPhase, FaultPlan};

/// Errors specific to raw MTD access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MtdError {
    /// Read or write beyond the end of the device.
    OutOfRange,
    /// A program operation tried to set a 0 bit back to 1 without an erase.
    ProgramWithoutErase {
        /// Byte offset of the violation.
        offset: u64,
    },
    /// Erase offset/length not aligned to the erase-block size.
    UnalignedErase,
    /// Invalid construction geometry.
    BadGeometry(String),
    /// An injected I/O failure (see [`MtdDevice::set_fault_plan`]).
    Io(String),
}

impl std::fmt::Display for MtdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MtdError::OutOfRange => write!(f, "mtd access out of range"),
            MtdError::ProgramWithoutErase { offset } => {
                write!(f, "programming non-erased flash at offset {offset}")
            }
            MtdError::UnalignedErase => write!(f, "erase not aligned to erase-block boundary"),
            MtdError::BadGeometry(msg) => write!(f, "bad mtd geometry: {msg}"),
            MtdError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for MtdError {}

/// A simulated MTD (flash) character device with erase-block semantics.
///
/// # Examples
///
/// ```
/// use blockdev::MtdDevice;
///
/// # fn main() -> Result<(), blockdev::MtdError> {
/// let mut mtd = MtdDevice::new(4096, 16)?; // 16 erase blocks of 4 KiB
/// mtd.erase(0, 4096)?;
/// mtd.program(0, b"jffs2 node")?;
/// let mut buf = [0u8; 10];
/// mtd.read(0, &mut buf)?;
/// assert_eq!(&buf, b"jffs2 node");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MtdDevice {
    erase_block_size: usize,
    data: CowImage,
    erase_counts: Vec<u64>,
    /// Whether each erase block is currently in the erased (all-0xFF) state
    /// with no programming since. Fresh devices start erased.
    strict_program_check: bool,
    /// Scripted fault plan, if any. Counters are `Cell`s because `read` takes
    /// `&self` (JFFS2 reads through a shared reference).
    plan: Option<FaultPlan>,
    reads_seen: Cell<u64>,
    programs_seen: Cell<u64>,
    erases_seen: Cell<u64>,
    injected: Cell<u64>,
    /// The phase the mounted file system is currently in (set by fsck); a
    /// `Cell` because `read` takes `&self`.
    phase: Cell<FaultPhase>,
}

impl MtdDevice {
    /// Creates an MTD device with `num_erase_blocks` erase blocks of
    /// `erase_block_size` bytes each, initially erased (all `0xFF`).
    ///
    /// # Errors
    ///
    /// [`MtdError::BadGeometry`] if either dimension is zero.
    pub fn new(erase_block_size: usize, num_erase_blocks: usize) -> Result<Self, MtdError> {
        if erase_block_size == 0 || num_erase_blocks == 0 {
            return Err(MtdError::BadGeometry(
                "erase block size and count must be nonzero".into(),
            ));
        }
        Ok(MtdDevice {
            erase_block_size,
            // One COW chunk per erase block: erases and mtdblock's
            // read-modify-erase writes each touch exactly one chunk.
            data: CowImage::new(erase_block_size * num_erase_blocks, erase_block_size, 0xFF),
            erase_counts: vec![0; num_erase_blocks],
            strict_program_check: true,
            plan: None,
            reads_seen: Cell::new(0),
            programs_seen: Cell::new(0),
            erases_seen: Cell::new(0),
            injected: Cell::new(0),
            phase: Cell::new(FaultPhase::Normal),
        })
    }

    /// Installs (or clears) a scripted [`FaultPlan`]: `EIO` on the Nth
    /// read/program/erase, or torn programs when the plan carries
    /// `torn_bytes`. The `volatile_cache` flag is ignored — MTD programming
    /// is synchronous. Counters restart from zero.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.plan = plan;
        self.reads_seen.set(0);
        self.programs_seen.set(0);
        self.erases_seen.set(0);
        self.injected.set(0);
    }

    /// Number of faults injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.injected.get()
    }

    /// Declares which phase subsequent operations belong to (see
    /// [`FaultPhase`]). Repair code brackets its flash I/O with
    /// `Repair`/`Normal` so phase-filtered plans count only repair traffic.
    /// Takes `&self` (interior mutability) because reads do too.
    pub fn set_phase(&self, phase: FaultPhase) {
        self.phase.set(phase);
    }

    /// The phase subsequent operations are attributed to.
    pub fn phase(&self) -> FaultPhase {
        self.phase.get()
    }

    fn next_fault(&self, op: FaultKind, seen: &Cell<u64>, addr: u64) -> Option<Fault> {
        let plan = self.plan?;
        if !plan.covers(addr) || !plan.phase_matches(self.phase.get()) {
            return None;
        }
        let n = seen.get();
        seen.set(n + 1);
        let fault = plan.decide(op, n, self.injected.get());
        if fault.is_some() {
            self.injected.set(self.injected.get() + 1);
        }
        fault
    }

    /// Size of one erase block in bytes.
    pub fn erase_block_size(&self) -> usize {
        self.erase_block_size
    }

    /// Number of erase blocks.
    pub fn num_erase_blocks(&self) -> usize {
        self.erase_counts.len()
    }

    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.data.len() as u64
    }

    /// How many times erase block `index` has been erased (wear tracking).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn erase_count(&self, index: usize) -> u64 {
        self.erase_counts[index]
    }

    /// Disables the flash-semantics check that programming may only clear
    /// bits. [`MtdBlock`] uses this because a block interface must support
    /// in-place overwrite (the real mtdblock driver read-modify-erases).
    pub fn set_strict_program_check(&mut self, strict: bool) {
        self.strict_program_check = strict;
    }

    /// Reads `buf.len()` bytes starting at `offset`.
    ///
    /// # Errors
    ///
    /// [`MtdError::OutOfRange`] if the range extends past the device.
    pub fn read(&self, offset: u64, buf: &mut [u8]) -> Result<(), MtdError> {
        let end = offset
            .checked_add(buf.len() as u64)
            .ok_or(MtdError::OutOfRange)?;
        if end > self.size_bytes() {
            return Err(MtdError::OutOfRange);
        }
        if self
            .next_fault(FaultKind::Read, &self.reads_seen, offset)
            .is_some()
        {
            return Err(MtdError::Io(format!(
                "injected read fault at offset {offset}"
            )));
        }
        self.data.read(offset as usize, buf);
        Ok(())
    }

    /// Programs (writes) `data` at `offset`.
    ///
    /// # Errors
    ///
    /// [`MtdError::OutOfRange`] for accesses past the device end, and
    /// [`MtdError::ProgramWithoutErase`] if a bit would need to flip from 0
    /// to 1 (flash can only clear bits) while strict checking is enabled.
    pub fn program(&mut self, offset: u64, data: &[u8]) -> Result<(), MtdError> {
        let end = offset
            .checked_add(data.len() as u64)
            .ok_or(MtdError::OutOfRange)?;
        if end > self.size_bytes() {
            return Err(MtdError::OutOfRange);
        }
        if self.strict_program_check {
            let mut old = vec![0u8; data.len()];
            self.data.read(offset as usize, &mut old);
            for (i, (old, new)) in old.iter().zip(data).enumerate() {
                // Programming can only clear bits: new must not have a 1
                // where old has a 0.
                if *new & !*old != 0 {
                    return Err(MtdError::ProgramWithoutErase {
                        offset: offset + i as u64,
                    });
                }
            }
        }
        match self.next_fault(FaultKind::Write, &self.programs_seen, offset) {
            Some(Fault::Eio) => {
                return Err(MtdError::Io(format!(
                    "injected program fault at offset {offset}"
                )));
            }
            Some(Fault::Torn(k)) => {
                // The program op is acked but power is lost mid-way: only the
                // first `k` bytes actually reach the flash.
                let k = k.min(data.len());
                self.data.write(offset as usize, &data[..k]);
                return Ok(());
            }
            None => {}
        }
        self.data.write(offset as usize, data);
        Ok(())
    }

    /// Erases the erase blocks covering `[offset, offset + len)` back to
    /// `0xFF`, incrementing their wear counters.
    ///
    /// # Errors
    ///
    /// [`MtdError::UnalignedErase`] if the range is not erase-block aligned;
    /// [`MtdError::OutOfRange`] if it extends past the device.
    pub fn erase(&mut self, offset: u64, len: u64) -> Result<(), MtdError> {
        let ebs = self.erase_block_size as u64;
        if !offset.is_multiple_of(ebs) || !len.is_multiple_of(ebs) || len == 0 {
            return Err(MtdError::UnalignedErase);
        }
        let end = offset.checked_add(len).ok_or(MtdError::OutOfRange)?;
        if end > self.size_bytes() {
            return Err(MtdError::OutOfRange);
        }
        if self
            .next_fault(FaultKind::Erase, &self.erases_seen, offset)
            .is_some()
        {
            return Err(MtdError::Io(format!(
                "injected erase fault at offset {offset}"
            )));
        }
        self.data.fill_range(offset as usize, len as usize, 0xFF);
        for eb in (offset / ebs)..(end / ebs) {
            self.erase_counts[eb as usize] += 1;
        }
        Ok(())
    }

    /// Captures the full flash image (including wear counters). The image is
    /// copy-on-write: the snapshot shares every erase block with the live
    /// device until one side rewrites it.
    pub fn snapshot(&self) -> MtdSnapshot {
        MtdSnapshot {
            data: self.data.clone(),
            erase_counts: self.erase_counts.clone(),
        }
    }

    /// Restores a previously captured flash image.
    ///
    /// # Errors
    ///
    /// [`MtdError::BadGeometry`] if the snapshot has a different size.
    pub fn restore(&mut self, snap: &MtdSnapshot) -> Result<(), MtdError> {
        if snap.data.len() != self.data.len() {
            return Err(MtdError::BadGeometry("snapshot size mismatch".into()));
        }
        self.data.copy_from(&snap.data);
        self.erase_counts.copy_from_slice(&snap.erase_counts);
        Ok(())
    }
}

/// A captured MTD image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MtdSnapshot {
    data: CowImage,
    erase_counts: Vec<u64>,
}

impl MtdSnapshot {
    /// Size of the image in bytes.
    pub fn size_bytes(&self) -> usize {
        self.data.len()
    }
}

/// Maps an [`MtdError`] into the block-layer error space, keeping injected
/// I/O faults recognizable as such.
fn map_mtd(e: MtdError) -> DeviceError {
    match e {
        MtdError::Io(msg) => DeviceError::Io(msg),
        other => DeviceError::Mtd(other.to_string()),
    }
}

/// Block-interface adapter over an [`MtdDevice`] — the `mtdblock` analogue.
///
/// The paper loads `mtdblock` so SPIN can mmap JFFS2's MTD storage through a
/// block device. Writes go through read-modify-erase of the containing erase
/// block, exactly like the real driver (which is why mtdblock is slow and
/// wears flash).
#[derive(Debug, Clone)]
pub struct MtdBlock {
    mtd: MtdDevice,
    block_size: usize,
}

impl MtdBlock {
    /// Wraps `mtd`, exposing `block_size`-byte logical blocks.
    ///
    /// # Errors
    ///
    /// [`DeviceError::BadGeometry`] if the erase-block size is not a multiple
    /// of `block_size`.
    pub fn new(mtd: MtdDevice, block_size: usize) -> DeviceResult<Self> {
        if block_size == 0 || !mtd.erase_block_size().is_multiple_of(block_size) {
            return Err(DeviceError::BadGeometry(format!(
                "erase block size {} not a multiple of logical block size {block_size}",
                mtd.erase_block_size()
            )));
        }
        Ok(MtdBlock { mtd, block_size })
    }

    /// Shared access to the underlying MTD device.
    pub fn mtd(&self) -> &MtdDevice {
        &self.mtd
    }

    /// Mutable access to the underlying MTD device (e.g. for raw JFFS2 I/O).
    pub fn mtd_mut(&mut self) -> &mut MtdDevice {
        &mut self.mtd
    }
}

impl BlockDevice for MtdBlock {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn num_blocks(&self) -> u64 {
        self.mtd.size_bytes() / self.block_size as u64
    }

    fn read_block(&mut self, block: u64, buf: &mut [u8]) -> DeviceResult<()> {
        crate::device::check_io(block, buf.len(), self.block_size, self.num_blocks())?;
        self.mtd
            .read(block * self.block_size as u64, buf)
            .map_err(map_mtd)
    }

    fn write_block(&mut self, block: u64, buf: &[u8]) -> DeviceResult<()> {
        crate::device::check_io(block, buf.len(), self.block_size, self.num_blocks())?;
        // Read-modify-erase the containing erase block, as mtdblock does.
        let ebs = self.mtd.erase_block_size();
        let byte_off = block * self.block_size as u64;
        let eb_start = byte_off - (byte_off % ebs as u64);
        let mut whole = vec![0u8; ebs];
        self.mtd.read(eb_start, &mut whole).map_err(map_mtd)?;
        let within = (byte_off - eb_start) as usize;
        whole[within..within + self.block_size].copy_from_slice(buf);
        self.mtd.erase(eb_start, ebs as u64).map_err(map_mtd)?;
        self.mtd.program(eb_start, &whole).map_err(map_mtd)
    }

    fn snapshot(&mut self) -> DeviceResult<DeviceSnapshot> {
        Ok(DeviceSnapshot {
            block_size: self.block_size,
            image: self.mtd.data.clone(),
        })
    }

    fn restore(&mut self, snapshot: &DeviceSnapshot) -> DeviceResult<()> {
        if snapshot.block_size != self.block_size || snapshot.image.len() != self.mtd.data.len() {
            return Err(DeviceError::SnapshotMismatch);
        }
        // Block-layer restore adopts the image only; wear counters belong to
        // the physical flash, not the block view.
        self.mtd.data.copy_from(&snapshot.image);
        Ok(())
    }

    fn set_fault_phase(&mut self, phase: FaultPhase) {
        self.mtd.set_phase(phase);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_device_is_erased() {
        let mtd = MtdDevice::new(64, 4).unwrap();
        let mut buf = [0u8; 8];
        mtd.read(0, &mut buf).unwrap();
        assert_eq!(buf, [0xFF; 8]);
    }

    #[test]
    fn program_clears_bits_only() {
        let mut mtd = MtdDevice::new(64, 4).unwrap();
        mtd.program(0, &[0x0F]).unwrap();
        // Clearing more bits is fine.
        mtd.program(0, &[0x0E]).unwrap();
        // Setting a cleared bit requires erase.
        let err = mtd.program(0, &[0x1F]).unwrap_err();
        assert!(matches!(err, MtdError::ProgramWithoutErase { offset: 0 }));
        mtd.erase(0, 64).unwrap();
        mtd.program(0, &[0x1F]).unwrap();
    }

    #[test]
    fn erase_alignment_enforced() {
        let mut mtd = MtdDevice::new(64, 4).unwrap();
        assert_eq!(mtd.erase(1, 64), Err(MtdError::UnalignedErase));
        assert_eq!(mtd.erase(0, 65), Err(MtdError::UnalignedErase));
        assert_eq!(mtd.erase(0, 0), Err(MtdError::UnalignedErase));
        assert_eq!(mtd.erase(256, 64), Err(MtdError::OutOfRange));
    }

    #[test]
    fn erase_counts_track_wear() {
        let mut mtd = MtdDevice::new(64, 4).unwrap();
        mtd.erase(0, 128).unwrap();
        mtd.erase(0, 64).unwrap();
        assert_eq!(mtd.erase_count(0), 2);
        assert_eq!(mtd.erase_count(1), 1);
        assert_eq!(mtd.erase_count(2), 0);
    }

    #[test]
    fn out_of_range_read_and_program() {
        let mut mtd = MtdDevice::new(64, 2).unwrap();
        let mut buf = [0u8; 4];
        assert_eq!(mtd.read(126, &mut buf), Err(MtdError::OutOfRange));
        assert_eq!(mtd.program(126, &buf), Err(MtdError::OutOfRange));
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut mtd = MtdDevice::new(64, 2).unwrap();
        mtd.program(5, b"abc").unwrap();
        let snap = mtd.snapshot();
        mtd.erase(0, 64).unwrap();
        mtd.restore(&snap).unwrap();
        let mut buf = [0u8; 3];
        mtd.read(5, &mut buf).unwrap();
        assert_eq!(&buf, b"abc");
        assert_eq!(mtd.erase_count(0), 0, "wear counters restored too");
    }

    #[test]
    fn mtdblock_overwrites_via_erase_cycle() {
        let mtd = MtdDevice::new(256, 4).unwrap();
        let mut blk = MtdBlock::new(mtd, 64).unwrap();
        assert_eq!(blk.num_blocks(), 16);
        blk.write_block(0, &[1u8; 64]).unwrap();
        blk.write_block(0, &[2u8; 64]).unwrap(); // overwrite works
        let mut buf = [0u8; 64];
        blk.read_block(0, &mut buf).unwrap();
        assert_eq!(buf, [2u8; 64]);
        // Two writes to the same erase block: two erase cycles.
        assert_eq!(blk.mtd().erase_count(0), 2);
    }

    #[test]
    fn mtdblock_preserves_neighbors_within_erase_block() {
        let mtd = MtdDevice::new(256, 4).unwrap();
        let mut blk = MtdBlock::new(mtd, 64).unwrap();
        blk.write_block(1, &[7u8; 64]).unwrap();
        blk.write_block(2, &[9u8; 64]).unwrap();
        let mut buf = [0u8; 64];
        blk.read_block(1, &mut buf).unwrap();
        assert_eq!(buf, [7u8; 64], "write to block 2 must not clobber block 1");
    }

    #[test]
    fn mtdblock_snapshot_roundtrip() {
        let mtd = MtdDevice::new(256, 4).unwrap();
        let mut blk = MtdBlock::new(mtd, 64).unwrap();
        blk.write_block(3, &[5u8; 64]).unwrap();
        let snap = blk.snapshot().unwrap();
        blk.write_block(3, &[6u8; 64]).unwrap();
        blk.restore(&snap).unwrap();
        let mut buf = [0u8; 64];
        blk.read_block(3, &mut buf).unwrap();
        assert_eq!(buf, [5u8; 64]);
    }

    #[test]
    fn fault_plan_scripts_eio_and_torn_programs() {
        let mut mtd = MtdDevice::new(64, 4).unwrap();
        mtd.set_fault_plan(Some(FaultPlan::eio(FaultKind::Both, 0, 2)));
        let mut buf = [0u8; 4];
        assert!(matches!(mtd.read(0, &mut buf), Err(MtdError::Io(_))));
        assert!(matches!(mtd.erase(0, 64), Err(MtdError::Io(_))));
        assert_eq!(mtd.faults_injected(), 2);
        mtd.read(0, &mut buf).unwrap(); // healed

        // Torn program: acked, but only the first 2 bytes reach the flash.
        mtd.set_fault_plan(Some(
            FaultPlan::eio(FaultKind::Write, 0, 1).with_torn_bytes(2),
        ));
        mtd.program(0, &[0x11, 0x22, 0x33, 0x44]).unwrap();
        mtd.read(0, &mut buf).unwrap();
        assert_eq!(buf, [0x11, 0x22, 0xFF, 0xFF]);
        mtd.set_fault_plan(None);
        mtd.program(0, &[0x11, 0x22, 0x33, 0x44]).unwrap();
    }

    #[test]
    fn repair_phase_plan_skips_normal_programs() {
        let mut mtd = MtdDevice::new(64, 4).unwrap();
        mtd.set_fault_plan(Some(FaultPlan::eio(FaultKind::Write, 1, 1).during_repair()));
        // Normal-phase programs never count.
        mtd.program(0, &[0x0F]).unwrap();
        mtd.program(1, &[0x0F]).unwrap();
        mtd.set_phase(FaultPhase::Repair);
        mtd.program(2, &[0x0F]).unwrap(); // repair program #0: skipped
        assert!(matches!(mtd.program(3, &[0x0F]), Err(MtdError::Io(_))));
        assert_eq!(mtd.faults_injected(), 1);
        mtd.set_phase(FaultPhase::Normal);
        mtd.program(3, &[0x0F]).unwrap();
    }

    #[test]
    fn mtdblock_geometry_validation() {
        let mtd = MtdDevice::new(100, 2).unwrap();
        assert!(MtdBlock::new(mtd, 64).is_err());
    }
}
