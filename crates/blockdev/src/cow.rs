//! Copy-on-write device images.
//!
//! A [`CowImage`] stores a device's bytes as fixed-size chunks behind
//! [`Arc`]s. Cloning an image is O(#chunks) reference bumps; writing to a
//! clone copies only the touched chunks (`Arc::make_mut`). Snapshots taken by
//! the devices in this crate are therefore cheap to capture and to hold: the
//! live device and every saved snapshot share the chunks neither side has
//! modified since the snapshot, which is what lets a deep DFS backtrack spine
//! fit in memory (the checker saves one snapshot per exploration level).

use std::sync::Arc;

/// A chunked, structurally shared byte image.
///
/// The last chunk may be shorter than `chunk_size` when the image length is
/// not a multiple of the chunk size.
///
/// # Examples
///
/// ```
/// use blockdev::CowImage;
///
/// let mut live = CowImage::new(8192, 4096, 0);
/// live.write(10, b"hello");
/// let snap = live.clone(); // O(#chunks) — shares both chunks
/// live.write(10, b"WORLD"); // copies only the first chunk
/// let mut buf = [0u8; 5];
/// snap.read(10, &mut buf);
/// assert_eq!(&buf, b"hello");
/// assert_eq!(snap.shared_bytes(), 4096, "untouched chunk still shared");
/// ```
#[derive(Debug, Clone)]
pub struct CowImage {
    chunk_size: usize,
    len: usize,
    chunks: Vec<Arc<Vec<u8>>>,
}

impl CowImage {
    /// Creates an image of `len` bytes filled with `fill`, chunked at
    /// `chunk_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is zero (callers pick the chunk size from the
    /// device geometry, which is validated first).
    pub fn new(len: usize, chunk_size: usize, fill: u8) -> Self {
        assert!(chunk_size > 0, "chunk size must be nonzero");
        let mut chunks = Vec::with_capacity(len.div_ceil(chunk_size));
        let mut remaining = len;
        while remaining > 0 {
            let n = remaining.min(chunk_size);
            chunks.push(Arc::new(vec![fill; n]));
            remaining -= n;
        }
        CowImage {
            chunk_size,
            len,
            chunks,
        }
    }

    /// Image length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the image is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The chunk granularity of copy-on-write sharing.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Reads `buf.len()` bytes starting at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the range extends past the image (devices bound-check
    /// before calling).
    pub fn read(&self, mut offset: usize, buf: &mut [u8]) {
        assert!(offset + buf.len() <= self.len, "cow read out of range");
        let mut done = 0;
        while done < buf.len() {
            let (ci, co) = (offset / self.chunk_size, offset % self.chunk_size);
            let chunk = &self.chunks[ci];
            let n = (chunk.len() - co).min(buf.len() - done);
            buf[done..done + n].copy_from_slice(&chunk[co..co + n]);
            done += n;
            offset += n;
        }
    }

    /// Writes `data` at `offset`, copying only the touched chunks if they
    /// are shared with a snapshot.
    ///
    /// # Panics
    ///
    /// Panics if the range extends past the image.
    pub fn write(&mut self, mut offset: usize, data: &[u8]) {
        assert!(offset + data.len() <= self.len, "cow write out of range");
        let mut done = 0;
        while done < data.len() {
            let (ci, co) = (offset / self.chunk_size, offset % self.chunk_size);
            let chunk = Arc::make_mut(&mut self.chunks[ci]);
            let n = (chunk.len() - co).min(data.len() - done);
            chunk[co..co + n].copy_from_slice(&data[done..done + n]);
            done += n;
            offset += n;
        }
    }

    /// Fills `[offset, offset + len)` with `byte` (erase support).
    ///
    /// # Panics
    ///
    /// Panics if the range extends past the image.
    pub fn fill_range(&mut self, mut offset: usize, len: usize, byte: u8) {
        assert!(offset + len <= self.len, "cow fill out of range");
        let mut done = 0;
        while done < len {
            let (ci, co) = (offset / self.chunk_size, offset % self.chunk_size);
            let chunk = Arc::make_mut(&mut self.chunks[ci]);
            let n = (chunk.len() - co).min(len - done);
            for b in &mut chunk[co..co + n] {
                *b = byte;
            }
            done += n;
            offset += n;
        }
    }

    /// Adopts `other`'s content. Same chunk size: O(#chunks) reference bumps
    /// (the restore path — the live image re-shares the snapshot's chunks).
    /// Different chunk size: a byte copy preserving this image's chunking.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ (devices geometry-check first).
    pub fn copy_from(&mut self, other: &CowImage) {
        assert_eq!(self.len, other.len, "cow image length mismatch");
        if self.chunk_size == other.chunk_size {
            self.chunks = other.chunks.clone();
        } else {
            self.write(0, &other.to_vec());
        }
    }

    /// Iterates the image's chunks as byte slices, in order.
    pub fn chunks(&self) -> impl Iterator<Item = &[u8]> {
        self.chunks.iter().map(|c| c.as_slice())
    }

    /// Reassembles an image from chunks previously produced by
    /// [`CowImage::chunks`] (e.g. reloaded from a disk spill tier). Returns
    /// `None` when the chunks do not tile an image of the given geometry:
    /// every chunk must be `chunk_size` bytes except a shorter final one.
    pub fn from_chunks(chunk_size: usize, chunks: Vec<Vec<u8>>) -> Option<Self> {
        if chunk_size == 0 {
            return None;
        }
        let len: usize = chunks.iter().map(Vec::len).sum();
        let n = chunks.len();
        for (i, c) in chunks.iter().enumerate() {
            let want = if i + 1 == n {
                len - (n - 1) * chunk_size
            } else {
                chunk_size
            };
            if c.len() != want || c.is_empty() {
                return None;
            }
        }
        Some(CowImage {
            chunk_size,
            len,
            chunks: chunks.into_iter().map(Arc::new).collect(),
        })
    }

    /// Materializes the full image as one contiguous vector.
    pub fn to_vec(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len);
        for c in &self.chunks {
            out.extend_from_slice(c);
        }
        out
    }

    /// Bytes of this image whose chunks are shared with at least one other
    /// image (snapshot or live device). `len() - shared_bytes()` is the
    /// memory uniquely attributable to this image.
    pub fn shared_bytes(&self) -> usize {
        self.chunks
            .iter()
            .filter(|c| Arc::strong_count(c) > 1)
            .map(|c| c.len())
            .sum()
    }
}

impl PartialEq for CowImage {
    fn eq(&self, other: &Self) -> bool {
        if self.len != other.len {
            return false;
        }
        if self.chunk_size == other.chunk_size {
            return self
                .chunks
                .iter()
                .zip(&other.chunks)
                .all(|(a, b)| Arc::ptr_eq(a, b) || a == b);
        }
        self.to_vec() == other.to_vec()
    }
}

impl Eq for CowImage {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_tail_chunk() {
        let img = CowImage::new(10, 4, 0xFF);
        assert_eq!(img.len(), 10);
        let sizes: Vec<usize> = img.chunks().map(<[u8]>::len).collect();
        assert_eq!(sizes, vec![4, 4, 2]);
        assert_eq!(img.to_vec(), vec![0xFF; 10]);
    }

    #[test]
    fn read_write_across_chunk_boundaries() {
        let mut img = CowImage::new(16, 4, 0);
        img.write(2, &[1, 2, 3, 4, 5, 6]); // spans chunks 0..=1
        let mut buf = [0u8; 8];
        img.read(0, &mut buf);
        assert_eq!(buf, [0, 0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn clone_shares_until_written() {
        let mut live = CowImage::new(16, 4, 0);
        let snap = live.clone();
        assert_eq!(live.shared_bytes(), 16);
        live.write(0, &[9; 4]); // unshares chunk 0 only
        assert_eq!(live.shared_bytes(), 12);
        assert_eq!(snap.to_vec(), vec![0; 16], "snapshot unaffected");
        assert_eq!(&live.to_vec()[..4], &[9; 4]);
    }

    #[test]
    fn fill_range_spans_chunks() {
        let mut img = CowImage::new(12, 4, 0);
        img.fill_range(3, 6, 0xAB);
        let v = img.to_vec();
        assert_eq!(&v[3..9], &[0xAB; 6]);
        assert_eq!(v[2], 0);
        assert_eq!(v[9], 0);
    }

    #[test]
    fn copy_from_reshares_on_same_chunking() {
        let mut live = CowImage::new(16, 4, 0);
        live.write(0, &[7; 16]);
        let snap = live.clone();
        live.write(0, &[1; 16]);
        assert_eq!(live.shared_bytes(), 0);
        live.copy_from(&snap);
        assert_eq!(live.to_vec(), vec![7; 16]);
        assert_eq!(live.shared_bytes(), 16, "restore re-shares every chunk");
    }

    #[test]
    fn copy_from_rechunks_on_mismatch() {
        let mut a = CowImage::new(16, 4, 0);
        let mut b = CowImage::new(16, 8, 0);
        b.write(5, &[3, 3, 3]);
        a.copy_from(&b);
        assert_eq!(a.to_vec(), b.to_vec());
        assert_eq!(a.chunk_size(), 4, "keeps its own chunking");
    }

    #[test]
    fn equality_is_by_content() {
        let mut a = CowImage::new(8, 4, 0);
        let mut b = CowImage::new(8, 2, 0);
        assert_eq!(a, b);
        a.write(1, &[5]);
        assert_ne!(a, b);
        b.write(1, &[5]);
        assert_eq!(a, b);
    }
}
