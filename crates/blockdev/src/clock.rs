//! The shared virtual clock that all simulated costs accrue on.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically advancing virtual clock, in nanoseconds.
///
/// Clones share the same underlying counter, so a single clock can be threaded
/// through devices, file systems, the FUSE layer, and the model checker; the
/// final reading is the total modelled time of the run.
///
/// # Examples
///
/// ```
/// use blockdev::Clock;
///
/// let clock = Clock::new();
/// let view = clock.clone();
/// clock.advance_ns(1_500);
/// assert_eq!(view.now_ns(), 1_500);
/// assert!((view.now_secs() - 1.5e-6).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Clock {
    ns: Arc<AtomicU64>,
}

impl Clock {
    /// Creates a clock starting at zero.
    pub fn new() -> Self {
        Clock::default()
    }

    /// Returns the current virtual time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::Relaxed)
    }

    /// Returns the current virtual time in seconds.
    pub fn now_secs(&self) -> f64 {
        self.now_ns() as f64 / 1e9
    }

    /// Advances the clock by `delta` nanoseconds.
    pub fn advance_ns(&self, delta: u64) {
        self.ns.fetch_add(delta, Ordering::Relaxed);
    }

    /// Advances the clock by `micros` microseconds.
    pub fn advance_us(&self, micros: u64) {
        self.advance_ns(micros.saturating_mul(1_000));
    }

    /// Advances the clock by `millis` milliseconds.
    pub fn advance_ms(&self, millis: u64) {
        self.advance_ns(millis.saturating_mul(1_000_000));
    }

    /// Resets the clock to zero. Intended for reusing a harness between
    /// experiment runs.
    pub fn reset(&self) {
        self.ns.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_time() {
        let a = Clock::new();
        let b = a.clone();
        a.advance_ns(10);
        b.advance_us(1);
        b.advance_ms(1);
        assert_eq!(a.now_ns(), 10 + 1_000 + 1_000_000);
    }

    #[test]
    fn reset_zeroes_all_views() {
        let a = Clock::new();
        let b = a.clone();
        a.advance_ms(5);
        b.reset();
        assert_eq!(a.now_ns(), 0);
    }

    #[test]
    fn now_secs_converts() {
        let c = Clock::new();
        c.advance_ns(2_000_000_000);
        assert!((c.now_secs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn advance_saturates_on_overflowing_units() {
        let c = Clock::new();
        c.advance_ms(u64::MAX); // must not panic
        assert_eq!(c.now_ns(), u64::MAX);
    }
}
