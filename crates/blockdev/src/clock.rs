//! The shared virtual clock that all simulated costs accrue on.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Sentinel for "no active lane" in [`Clock::set_active_lane`].
const NO_LANE: usize = usize::MAX;

/// A monotonically advancing virtual clock, in nanoseconds.
///
/// Clones share the same underlying counter, so a single clock can be threaded
/// through devices, file systems, the FUSE layer, and the model checker; the
/// final reading is the total modelled time of the run.
///
/// # Per-thread lanes
///
/// Interleaving exploration needs virtual time to be a function of *what each
/// logical thread has done*, not of the schedule that interleaved them —
/// otherwise two equivalent interleavings fingerprint differently and state
/// matching falls apart. [`Clock::set_active_lane`] opens a per-thread lane:
/// while a lane is active, [`Clock::advance_ns`] charges that lane instead of
/// the shared base, and [`Clock::now_ns`] reads `base + lane` — the active
/// thread's own accumulated cost. With no active lane the clock reads
/// `base + max(lanes)` (all threads have logically finished their charges),
/// which is also schedule-independent: `max` commutes.
///
/// # Examples
///
/// ```
/// use blockdev::Clock;
///
/// let clock = Clock::new();
/// let view = clock.clone();
/// clock.advance_ns(1_500);
/// assert_eq!(view.now_ns(), 1_500);
/// assert!((view.now_secs() - 1.5e-6).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Clock {
    ns: Arc<AtomicU64>,
    /// Per-thread virtual-time lanes (empty outside interleaved runs).
    lanes: Arc<Mutex<Vec<u64>>>,
    /// Index of the lane charged by `advance_ns`; `NO_LANE` = shared base.
    active: Arc<AtomicUsize>,
}

impl Clock {
    /// Creates a clock starting at zero.
    pub fn new() -> Self {
        let c = Clock::default();
        c.active.store(NO_LANE, Ordering::Relaxed);
        c
    }

    /// Returns the current virtual time in nanoseconds: the shared base plus
    /// the active lane's charge (or the maximum lane when none is active).
    pub fn now_ns(&self) -> u64 {
        let base = self.ns.load(Ordering::Relaxed);
        let lanes = self.lanes.lock().expect("clock lanes poisoned");
        let lane = match self.active.load(Ordering::Relaxed) {
            NO_LANE => lanes.iter().copied().max().unwrap_or(0),
            idx => lanes.get(idx).copied().unwrap_or(0),
        };
        base.saturating_add(lane)
    }

    /// Returns the current virtual time in seconds.
    pub fn now_secs(&self) -> f64 {
        self.now_ns() as f64 / 1e9
    }

    /// Advances the clock by `delta` nanoseconds, charged to the active
    /// per-thread lane if one is set (see [`Clock::set_active_lane`]).
    pub fn advance_ns(&self, delta: u64) {
        match self.active.load(Ordering::Relaxed) {
            NO_LANE => {
                self.ns.fetch_add(delta, Ordering::Relaxed);
            }
            idx => {
                let mut lanes = self.lanes.lock().expect("clock lanes poisoned");
                if idx >= lanes.len() {
                    lanes.resize(idx + 1, 0);
                }
                lanes[idx] = lanes[idx].saturating_add(delta);
            }
        }
    }

    /// Advances the clock by `micros` microseconds.
    pub fn advance_us(&self, micros: u64) {
        self.advance_ns(micros.saturating_mul(1_000));
    }

    /// Advances the clock by `millis` milliseconds.
    pub fn advance_ms(&self, millis: u64) {
        self.advance_ns(millis.saturating_mul(1_000_000));
    }

    /// Routes subsequent charges to logical thread `tid`'s lane. All clones
    /// share the routing (there is one device/FS stack per harness).
    pub fn set_active_lane(&self, tid: u16) {
        let idx = tid as usize;
        {
            let mut lanes = self.lanes.lock().expect("clock lanes poisoned");
            if idx >= lanes.len() {
                lanes.resize(idx + 1, 0);
            }
        }
        self.active.store(idx, Ordering::Relaxed);
    }

    /// Returns charge routing to the shared base (sequential behaviour).
    pub fn clear_active_lane(&self) {
        self.active.store(NO_LANE, Ordering::Relaxed);
    }

    /// One thread's accumulated lane charge (0 for an untouched lane).
    pub fn lane_ns(&self, tid: u16) -> u64 {
        self.lanes
            .lock()
            .expect("clock lanes poisoned")
            .get(tid as usize)
            .copied()
            .unwrap_or(0)
    }

    /// Resets the clock (and every lane) to zero. Intended for reusing a
    /// harness between experiment runs.
    pub fn reset(&self) {
        self.ns.store(0, Ordering::Relaxed);
        self.lanes.lock().expect("clock lanes poisoned").clear();
        self.active.store(NO_LANE, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_time() {
        let a = Clock::new();
        let b = a.clone();
        a.advance_ns(10);
        b.advance_us(1);
        b.advance_ms(1);
        assert_eq!(a.now_ns(), 10 + 1_000 + 1_000_000);
    }

    #[test]
    fn reset_zeroes_all_views() {
        let a = Clock::new();
        let b = a.clone();
        a.advance_ms(5);
        b.reset();
        assert_eq!(a.now_ns(), 0);
    }

    #[test]
    fn now_secs_converts() {
        let c = Clock::new();
        c.advance_ns(2_000_000_000);
        assert!((c.now_secs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn advance_saturates_on_overflowing_units() {
        let c = Clock::new();
        c.advance_ms(u64::MAX); // must not panic
        assert_eq!(c.now_ns(), u64::MAX);
    }

    #[test]
    fn lanes_charge_per_thread() {
        let c = Clock::new();
        c.advance_ns(100); // shared base
        c.set_active_lane(0);
        c.advance_ns(30);
        assert_eq!(c.now_ns(), 130, "active thread reads base + own lane");
        c.set_active_lane(1);
        c.advance_ns(50);
        assert_eq!(c.now_ns(), 150);
        assert_eq!(c.lane_ns(0), 30);
        assert_eq!(c.lane_ns(1), 50);
        c.clear_active_lane();
        assert_eq!(c.now_ns(), 150, "no active lane reads base + max(lanes)");
    }

    #[test]
    fn lane_totals_are_schedule_independent() {
        // Two schedules of the same per-thread charges read the same final
        // time: max() commutes, and each thread only sees its own lane.
        let run = |order: &[(u16, u64)]| {
            let c = Clock::new();
            let mut seen = Vec::new();
            for &(tid, ns) in order {
                c.set_active_lane(tid);
                c.advance_ns(ns);
                seen.push(c.now_ns());
            }
            c.clear_active_lane();
            c.now_ns()
        };
        let a = run(&[(0, 10), (0, 10), (1, 7), (1, 7)]);
        let b = run(&[(1, 7), (0, 10), (1, 7), (0, 10)]);
        assert_eq!(a, b);
        assert_eq!(a, 20);
    }
}
