//! Simulated storage devices for the MCFS reproduction.
//!
//! The paper runs file systems on RAM block devices (a patched `brd` driver),
//! HDDs, SSDs, and MTD flash devices. This crate provides in-memory analogues:
//!
//! * [`RamDisk`] — a byte-addressable RAM block device ("brd2" in the paper;
//!   it allows different-sized RAM disks per file system).
//! * [`TimedDevice`] — wraps any device with a [`LatencyModel`] (HDD with seek
//!   costs, SSD, RAM) whose costs accrue on a shared virtual [`Clock`].
//! * [`MtdDevice`] — an MTD flash character device with erase blocks
//!   (mtdram analogue) and [`MtdBlock`], the mtdblock-style block adapter that
//!   lets a block file system or the checker access MTD storage.
//!
//! All performance experiments in the reproduction are measured in **virtual
//! time**: device operations never sleep; they add their modelled latency to a
//! [`Clock`] shared by the whole harness. This makes the paper's
//! weeks-long experiments reproducible in seconds while preserving every
//! latency *ratio* the evaluation reports.
//!
//! # Examples
//!
//! ```
//! use blockdev::{BlockDevice, Clock, LatencyModel, RamDisk, TimedDevice};
//!
//! # fn main() -> Result<(), blockdev::DeviceError> {
//! let clock = Clock::new();
//! let mut dev = TimedDevice::new(RamDisk::new(1024, 256 * 1024)?, LatencyModel::ssd(), clock.clone());
//! dev.write_block(3, &vec![0xAB; 1024])?;
//! let mut buf = vec![0; 1024];
//! dev.read_block(3, &mut buf)?;
//! assert_eq!(buf[0], 0xAB);
//! assert!(clock.now_ns() > 0); // the SSD latency model charged virtual time
//! # Ok(())
//! # }
//! ```

mod clock;
mod cow;
mod device;
mod faulty;
mod mtd;
mod ram;
mod timed;

pub use clock::Clock;
pub use cow::CowImage;
pub use device::{BlockDevice, DeviceError, DeviceResult, DeviceSnapshot};
pub use faulty::{Fault, FaultKind, FaultPhase, FaultPlan, FaultyDevice};
pub use mtd::{MtdBlock, MtdDevice, MtdError};
pub use ram::RamDisk;
pub use timed::{DeviceClass, LatencyModel, TimedDevice};
