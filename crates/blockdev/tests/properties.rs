//! Property-based tests for device invariants.

use blockdev::{BlockDevice, MtdDevice, RamDisk};
use proptest::prelude::*;

proptest! {
    /// Read-after-write returns the written block; other blocks unaffected.
    #[test]
    fn ram_disk_read_after_write(
        writes in prop::collection::vec((0u64..32, any::<u8>()), 1..20)
    ) {
        let mut disk = RamDisk::new(16, 32 * 16).unwrap();
        let mut model = vec![vec![0u8; 16]; 32];
        for (blk, fill) in &writes {
            disk.write_block(*blk, &[*fill; 16]).unwrap();
            model[*blk as usize] = vec![*fill; 16];
        }
        for blk in 0..32u64 {
            let mut buf = vec![0u8; 16];
            disk.read_block(blk, &mut buf).unwrap();
            prop_assert_eq!(&buf, &model[blk as usize], "block {}", blk);
        }
    }

    /// Flash semantics: after programming, every bit is the AND of what was
    /// there and what was programmed (programming can only clear bits), and
    /// erase restores all-ones.
    #[test]
    fn mtd_program_only_clears_bits(
        a in any::<u8>(),
        b in any::<u8>(),
        offset in 0u64..96,
    ) {
        let mut mtd = MtdDevice::new(64, 2).unwrap();
        mtd.program(offset, &[a]).unwrap();
        // A second program succeeds iff it clears bits only.
        let can = b & !a == 0;
        let res = mtd.program(offset, &[b]);
        prop_assert_eq!(res.is_ok(), can);
        let mut buf = [0u8; 1];
        mtd.read(offset, &mut buf).unwrap();
        prop_assert_eq!(buf[0], if can { b } else { a });
        // Erase always restores 0xFF for the whole block.
        let block_start = offset - offset % 64;
        mtd.erase(block_start, 64).unwrap();
        mtd.read(offset, &mut buf).unwrap();
        prop_assert_eq!(buf[0], 0xFF);
    }

    /// Device snapshots are exact and restorable any number of times.
    #[test]
    fn snapshot_is_idempotent(
        fills in prop::collection::vec(any::<u8>(), 1..8)
    ) {
        let mut disk = RamDisk::new(8, 64).unwrap();
        for (i, f) in fills.iter().enumerate() {
            disk.write_block(i as u64, &[*f; 8]).unwrap();
        }
        let snap = disk.snapshot().unwrap();
        for _ in 0..3 {
            disk.write_block(0, &[0xFF; 8]).unwrap();
            disk.restore(&snap).unwrap();
            let mut buf = vec![0u8; 8];
            disk.read_block(0, &mut buf).unwrap();
            prop_assert_eq!(&buf, &vec![fills[0]; 8]);
        }
    }
}
