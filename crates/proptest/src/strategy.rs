//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// A recipe for generating values of `Value`.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// just draws a value from the RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// A strategy that always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let span = (self.end as u128) - (self.start as u128);
                (self.start as u128 + rng.below(span)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "strategy range is empty");
                let span = (end as u128) - (start as u128) + 1;
                (start as u128 + rng.below(span)) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among several strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<Arc<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union from pre-erased arms.
    pub fn new(arms: Vec<Arc<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }

    /// Type-erases one arm; used by the `prop_oneof!` expansion.
    pub fn arm<S>(strat: S) -> Arc<dyn Strategy<Value = T>>
    where
        S: Strategy<Value = T> + 'static,
    {
        Arc::new(strat)
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u128) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

/// Strategy produced by [`crate::collection::vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.clone().generate(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `&str` regex patterns act as string strategies in proptest. This shim
/// does not implement regexes: every pattern yields printable, NUL-free
/// strings of length 0..32 drawn from ASCII printables, `/`, and a few
/// multibyte code points — enough to exercise path validation.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        const EXTRA: [char; 6] = ['/', '/', '.', 'é', '✓', '𝛼'];
        let n = rng.below(32) as usize;
        (0..n)
            .map(|_| {
                if rng.below(4) == 0 {
                    EXTRA[rng.below(EXTRA.len() as u128) as usize]
                } else {
                    (0x20 + rng.below(0x5f) as u8) as char
                }
            })
            .collect()
    }
}

impl<T> Strategy for Arc<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}
