//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this crate reimplements
//! the subset of proptest's API the workspace uses: the [`Strategy`] trait
//! with `Just` / integer ranges / tuples / `prop_map` / `prop_oneof!` /
//! `collection::vec` / `any::<T>()` / string-pattern strategies, plus the
//! `proptest!`, `prop_assert!`, `prop_assert_eq!` and `prop_assert_ne!`
//! macros and `ProptestConfig::with_cases`.
//!
//! Differences from real proptest, deliberately accepted:
//! - no shrinking — a failing case reports the panic message only;
//! - generation is deterministic per test (seeded from the test name), so
//!   failures reproduce across runs;
//! - string patterns are not full regexes: any pattern produces printable
//!   strings (with occasional `/` and NUL-free unicode), which is what the
//!   path-validation property here actually needs.

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// A strategy producing `Vec`s of `element` with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// Returns the canonical strategy for `T` (`any::<u8>()` etc.).
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    ArbitraryStrategy(std::marker::PhantomData)
}

/// Types with a canonical strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct ArbitraryStrategy<T>(std::marker::PhantomData<T>);

impl<T> Clone for ArbitraryStrategy<T> {
    fn clone(&self) -> Self {
        ArbitraryStrategy(std::marker::PhantomData)
    }
}

impl<T: Arbitrary> strategy::Strategy for ArbitraryStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut test_runner::TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Everything a property-test file needs, in one glob import.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, Arbitrary};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Derives a deterministic per-test seed from the test's name (FNV-1a).
#[doc(hidden)]
pub fn __seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a test that runs the body over `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let mut __rng = $crate::test_runner::TestRng::from_seed(
                $crate::__seed_from_name(concat!(module_path!(), "::", stringify!($name))),
            );
            for __case in 0..__config.cases {
                let ($($arg,)*) = (
                    $($crate::strategy::Strategy::generate(&($strat), &mut __rng),)*
                );
                let __run = || -> () { $body };
                __run();
                let _ = __case;
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Builds a strategy choosing uniformly among the given strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Union::arm($strat)),+
        ])
    };
}

/// Asserts a condition inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_small() -> impl Strategy<Value = u64> {
        prop_oneof![Just(1u64), Just(2), Just(3)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in 0u8..4, b in 10u64..20, c in 0usize..=3) {
            prop_assert!(a < 4);
            prop_assert!((10..20).contains(&b));
            prop_assert!(c <= 3);
        }

        #[test]
        fn tuples_maps_and_vecs(
            pair in (0u8..4, arb_small()).prop_map(|(a, b)| (a as u64) + b),
            xs in prop::collection::vec(any::<u8>(), 1..25),
        ) {
            prop_assert!(pair <= 3 + 3);
            prop_assert!(!xs.is_empty() && xs.len() < 25);
        }

        #[test]
        fn string_patterns_produce_strings(s in "\\PC*") {
            // Pattern strategies only promise printable, NUL-free text.
            prop_assert!(!s.contains('\u{0}'));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        let strat = prop::collection::vec(0u32..1000, 1..10);
        let mut r1 = crate::test_runner::TestRng::from_seed(9);
        let mut r2 = crate::test_runner::TestRng::from_seed(9);
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
        }
    }

    #[test]
    fn union_is_roughly_uniform() {
        use crate::strategy::Strategy;
        let strat = arb_small();
        let mut rng = crate::test_runner::TestRng::from_seed(3);
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            counts[(strat.generate(&mut rng) - 1) as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 500), "counts {counts:?}");
    }
}
