//! Test-run configuration and the deterministic generator RNG.

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic xoshiro256++ generator seeded via SplitMix64.
///
/// Self-contained (no dependency on the workspace `rand` shim) so the
/// macros this crate exports never name foreign crates in their expansion.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            *slot = z ^ (z >> 31);
        }
        if s == [0; 4] {
            s[0] = 0xDEADBEEF;
        }
        TestRng { s }
    }

    /// Returns the next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, bound)`.
    pub fn below(&mut self, bound: u128) -> u128 {
        assert!(bound > 0, "TestRng::below: empty range");
        (((self.next_u64() as u128) << 64) | self.next_u64() as u128) % bound
    }
}
