//! Ext2/Ext4-style block file systems for the MCFS reproduction.
//!
//! A from-scratch, ext-inspired on-disk format: superblock, inode and block
//! bitmaps, a fixed inode table, directory blocks, and 12-direct +
//! single/double-indirect block mapping. The ext4 variant
//! ([`ExtConfig::ext4`]) adds an ordered-mode write-ahead journal and the
//! `lost+found` directory; ext2 ([`ExtConfig::ext2`]) is the journal-less
//! base.
//!
//! Both variants cache aggressively while mounted (buffer cache, inode
//! cache, decoded bitmaps) and write back on `sync`/`unmount` — making the
//! paper's cache-incoherency challenge (§3.2) real: restoring the device
//! image under a mounted instance corrupts subsequent operations unless the
//! harness remounts.
//!
//! # Examples
//!
//! ```
//! use blockdev::RamDisk;
//! use fs_ext::{ExtConfig, ExtFs};
//! use vfs::{FileSystem, FileMode};
//!
//! # fn main() -> vfs::VfsResult<()> {
//! let disk = RamDisk::new(1024, 256 * 1024).map_err(|_| vfs::Errno::EIO)?;
//! let mut fs = ExtFs::format(disk, ExtConfig::ext4())?;
//! fs.mount()?;
//! let fd = fs.create("/hello", FileMode::REG_DEFAULT)?;
//! fs.write(fd, b"persistent")?;
//! fs.close(fd)?;
//! fs.unmount()?;
//! // State survives a remount.
//! fs.mount()?;
//! assert_eq!(fs.stat("/hello")?.size, 10);
//! # Ok(())
//! # }
//! ```

pub mod dir;
mod fs;
pub mod fsck;
pub mod journal;
pub mod layout;

pub use fs::{ExtConfig, ExtFs};
pub use fsck::FsckOptions;

use blockdev::RamDisk;
use vfs::VfsResult;

/// Convenience: format a fresh ext2 on a RAM disk of `size_bytes`.
///
/// # Errors
///
/// `EINVAL` for unusable geometry.
pub fn ext2_on_ram(size_bytes: u64) -> VfsResult<ExtFs<RamDisk>> {
    let cfg = ExtConfig::ext2();
    let disk = RamDisk::new(cfg.block_size, size_bytes).map_err(|_| vfs::Errno::EINVAL)?;
    ExtFs::format(disk, cfg)
}

/// Convenience: format a fresh ext4 on a RAM disk of `size_bytes`.
///
/// # Errors
///
/// `EINVAL` for unusable geometry.
pub fn ext4_on_ram(size_bytes: u64) -> VfsResult<ExtFs<RamDisk>> {
    let cfg = ExtConfig::ext4();
    let disk = RamDisk::new(cfg.block_size, size_bytes).map_err(|_| vfs::Errno::EINVAL)?;
    ExtFs::format(disk, cfg)
}
