//! On-disk layout: superblock, disk inodes, bitmaps.
//!
//! The disk is laid out ext2-style:
//!
//! ```text
//! block 0              superblock
//! block 1              inode bitmap
//! block 2              block bitmap
//! blocks 3..3+T        inode table   (T = ceil(inodes * 128 / block_size))
//! blocks ..+J          journal area  (J = 0 for ext2)
//! remaining            data blocks
//! ```
//!
//! All integers are little-endian.

use vfs::{Errno, VfsResult};

/// Superblock magic ("EXT-sim 2021").
pub const EXT_MAGIC: u32 = 0xEF53_2021;

/// Bytes per on-disk inode.
pub const INODE_SIZE: usize = 128;

/// Direct block pointers per inode.
pub const NDIRECT: usize = 12;

/// On-disk file-type tags.
pub const FT_FREE: u8 = 0;
/// Regular file tag.
pub const FT_REG: u8 = 1;
/// Directory tag.
pub const FT_DIR: u8 = 2;
/// Symlink tag.
pub const FT_SYMLINK: u8 = 3;

/// Superblock flag: file system was not cleanly unmounted.
pub const SB_FLAG_DIRTY: u32 = 1;
/// Superblock flag: a `lost+found` directory exists (ext4 variant).
pub const SB_FLAG_LOST_FOUND: u32 = 2;

/// The superblock, stored in block 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuperBlock {
    /// Magic number ([`EXT_MAGIC`]).
    pub magic: u32,
    /// Block size in bytes.
    pub block_size: u32,
    /// Total blocks on the device.
    pub blocks_count: u32,
    /// Total inodes (slot 0 reserved; root is inode 1).
    pub inodes_count: u32,
    /// Free data blocks.
    pub free_blocks: u32,
    /// Free inodes.
    pub free_inodes: u32,
    /// Journal area length in blocks (0 = no journal, i.e. ext2).
    pub journal_blocks: u32,
    /// [`SB_FLAG_DIRTY`] / [`SB_FLAG_LOST_FOUND`].
    pub flags: u32,
    /// Times this file system has been mounted.
    pub mount_count: u32,
}

impl SuperBlock {
    /// Blocks occupied by the inode table.
    pub fn inode_table_blocks(&self) -> u32 {
        ((self.inodes_count as usize * INODE_SIZE).div_ceil(self.block_size as usize)) as u32
    }

    /// First block of the inode table.
    pub fn inode_table_start(&self) -> u32 {
        3
    }

    /// First block of the journal area.
    pub fn journal_start(&self) -> u32 {
        self.inode_table_start() + self.inode_table_blocks()
    }

    /// First data block.
    pub fn data_start(&self) -> u32 {
        self.journal_start() + self.journal_blocks
    }

    /// Number of data blocks.
    pub fn data_blocks(&self) -> u32 {
        self.blocks_count.saturating_sub(self.data_start())
    }

    /// Serializes into the first bytes of `buf`.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than 36 bytes.
    pub fn encode(&self, buf: &mut [u8]) {
        let fields = [
            self.magic,
            self.block_size,
            self.blocks_count,
            self.inodes_count,
            self.free_blocks,
            self.free_inodes,
            self.journal_blocks,
            self.flags,
            self.mount_count,
        ];
        for (i, f) in fields.iter().enumerate() {
            buf[i * 4..i * 4 + 4].copy_from_slice(&f.to_le_bytes());
        }
    }

    /// Deserializes from the first bytes of `buf`.
    ///
    /// # Errors
    ///
    /// `EIO` if the magic number or geometry is invalid — an unformatted or
    /// corrupted device.
    pub fn decode(buf: &[u8]) -> VfsResult<Self> {
        if buf.len() < 36 {
            return Err(Errno::EIO);
        }
        let word = |i: usize| {
            u32::from_le_bytes([buf[i * 4], buf[i * 4 + 1], buf[i * 4 + 2], buf[i * 4 + 3]])
        };
        let sb = SuperBlock {
            magic: word(0),
            block_size: word(1),
            blocks_count: word(2),
            inodes_count: word(3),
            free_blocks: word(4),
            free_inodes: word(5),
            journal_blocks: word(6),
            flags: word(7),
            mount_count: word(8),
        };
        if sb.magic != EXT_MAGIC || sb.block_size == 0 || sb.blocks_count == 0 {
            return Err(Errno::EIO);
        }
        if sb.data_start() >= sb.blocks_count {
            return Err(Errno::EIO);
        }
        Ok(sb)
    }
}

/// An on-disk inode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskInode {
    /// [`FT_REG`] / [`FT_DIR`] / [`FT_SYMLINK`] ([`FT_FREE`] = unallocated).
    pub ftype: u8,
    /// Permission bits.
    pub mode: u16,
    /// Hard-link count.
    pub nlink: u16,
    /// Owner uid.
    pub uid: u32,
    /// Owner gid.
    pub gid: u32,
    /// Logical size in bytes (directories: content bytes, reported rounded
    /// up to a block multiple, as ext does).
    pub size: u64,
    /// Access time.
    pub atime: u64,
    /// Modification time.
    pub mtime: u64,
    /// Change time.
    pub ctime: u64,
    /// Allocated data blocks (excluding metadata blocks).
    pub blocks: u32,
    /// Direct block pointers (0 = hole).
    pub direct: [u32; NDIRECT],
    /// Single-indirect block pointer.
    pub indirect: u32,
    /// Double-indirect block pointer.
    pub dindirect: u32,
    /// Extended-attribute block pointer (0 = none).
    pub xattr_block: u32,
}

impl DiskInode {
    /// A zeroed (free) inode.
    pub fn free() -> Self {
        DiskInode {
            ftype: FT_FREE,
            mode: 0,
            nlink: 0,
            uid: 0,
            gid: 0,
            size: 0,
            atime: 0,
            mtime: 0,
            ctime: 0,
            blocks: 0,
            direct: [0; NDIRECT],
            indirect: 0,
            dindirect: 0,
            xattr_block: 0,
        }
    }

    /// Whether the slot is allocated.
    pub fn in_use(&self) -> bool {
        self.ftype != FT_FREE
    }

    /// Serializes into exactly [`INODE_SIZE`] bytes of `buf`.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than [`INODE_SIZE`].
    pub fn encode(&self, buf: &mut [u8]) {
        assert!(buf.len() >= INODE_SIZE);
        buf[..INODE_SIZE].fill(0);
        buf[0] = self.ftype;
        buf[2..4].copy_from_slice(&self.mode.to_le_bytes());
        buf[4..6].copy_from_slice(&self.nlink.to_le_bytes());
        buf[8..12].copy_from_slice(&self.uid.to_le_bytes());
        buf[12..16].copy_from_slice(&self.gid.to_le_bytes());
        buf[16..24].copy_from_slice(&self.size.to_le_bytes());
        buf[24..32].copy_from_slice(&self.atime.to_le_bytes());
        buf[32..40].copy_from_slice(&self.mtime.to_le_bytes());
        buf[40..48].copy_from_slice(&self.ctime.to_le_bytes());
        buf[48..52].copy_from_slice(&self.blocks.to_le_bytes());
        for (i, d) in self.direct.iter().enumerate() {
            buf[52 + i * 4..56 + i * 4].copy_from_slice(&d.to_le_bytes());
        }
        buf[100..104].copy_from_slice(&self.indirect.to_le_bytes());
        buf[104..108].copy_from_slice(&self.dindirect.to_le_bytes());
        buf[108..112].copy_from_slice(&self.xattr_block.to_le_bytes());
    }

    /// Deserializes from [`INODE_SIZE`] bytes.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than [`INODE_SIZE`].
    pub fn decode(buf: &[u8]) -> Self {
        assert!(buf.len() >= INODE_SIZE);
        let u16_at = |i: usize| u16::from_le_bytes([buf[i], buf[i + 1]]);
        let u32_at = |i: usize| u32::from_le_bytes([buf[i], buf[i + 1], buf[i + 2], buf[i + 3]]);
        let u64_at = |i: usize| {
            u64::from_le_bytes([
                buf[i],
                buf[i + 1],
                buf[i + 2],
                buf[i + 3],
                buf[i + 4],
                buf[i + 5],
                buf[i + 6],
                buf[i + 7],
            ])
        };
        let mut direct = [0u32; NDIRECT];
        for (i, d) in direct.iter_mut().enumerate() {
            *d = u32_at(52 + i * 4);
        }
        DiskInode {
            ftype: buf[0],
            mode: u16_at(2),
            nlink: u16_at(4),
            uid: u32_at(8),
            gid: u32_at(12),
            size: u64_at(16),
            atime: u64_at(24),
            mtime: u64_at(32),
            ctime: u64_at(40),
            blocks: u32_at(48),
            direct,
            indirect: u32_at(100),
            dindirect: u32_at(104),
            xattr_block: u32_at(108),
        }
    }
}

/// Bitmap helpers over a raw byte slice.
pub mod bitmap {
    /// Reads bit `i`.
    pub fn get(bits: &[u8], i: u32) -> bool {
        bits[i as usize / 8] & (1 << (i % 8)) != 0
    }

    /// Sets bit `i`.
    pub fn set(bits: &mut [u8], i: u32) {
        bits[i as usize / 8] |= 1 << (i % 8);
    }

    /// Clears bit `i`.
    pub fn clear(bits: &mut [u8], i: u32) {
        bits[i as usize / 8] &= !(1 << (i % 8));
    }

    /// Finds the first zero bit in `[from, to)`.
    pub fn find_zero(bits: &[u8], from: u32, to: u32) -> Option<u32> {
        (from..to).find(|&i| !get(bits, i))
    }

    /// Counts set bits in `[from, to)`.
    pub fn count_ones(bits: &[u8], from: u32, to: u32) -> u32 {
        (from..to).filter(|&i| get(bits, i)).count() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_sb() -> SuperBlock {
        SuperBlock {
            magic: EXT_MAGIC,
            block_size: 1024,
            blocks_count: 256,
            inodes_count: 64,
            free_blocks: 200,
            free_inodes: 62,
            journal_blocks: 16,
            flags: SB_FLAG_LOST_FOUND,
            mount_count: 3,
        }
    }

    #[test]
    fn superblock_roundtrip() {
        let sb = sample_sb();
        let mut buf = vec![0u8; 1024];
        sb.encode(&mut buf);
        assert_eq!(SuperBlock::decode(&buf).unwrap(), sb);
    }

    #[test]
    fn superblock_rejects_garbage() {
        let buf = vec![0u8; 1024];
        assert_eq!(SuperBlock::decode(&buf), Err(Errno::EIO));
        let mut buf = vec![0u8; 1024];
        let mut sb = sample_sb();
        sb.blocks_count = 4; // metadata alone exceeds the device
        sb.encode(&mut buf);
        assert_eq!(SuperBlock::decode(&buf), Err(Errno::EIO));
        assert_eq!(SuperBlock::decode(&[0u8; 8]), Err(Errno::EIO));
    }

    #[test]
    fn superblock_geometry() {
        let sb = sample_sb();
        // 64 inodes * 128 B = 8 KiB = 8 blocks at 1 KiB.
        assert_eq!(sb.inode_table_blocks(), 8);
        assert_eq!(sb.inode_table_start(), 3);
        assert_eq!(sb.journal_start(), 11);
        assert_eq!(sb.data_start(), 27);
        assert_eq!(sb.data_blocks(), 229);
    }

    #[test]
    fn disk_inode_roundtrip() {
        let mut ino = DiskInode::free();
        ino.ftype = FT_REG;
        ino.mode = 0o644;
        ino.nlink = 2;
        ino.uid = 5;
        ino.gid = 6;
        ino.size = 123_456;
        ino.atime = 1;
        ino.mtime = 2;
        ino.ctime = 3;
        ino.blocks = 13;
        ino.direct = [9, 8, 7, 6, 5, 4, 3, 2, 1, 10, 11, 12];
        ino.indirect = 99;
        ino.dindirect = 100;
        ino.xattr_block = 101;
        let mut buf = [0u8; INODE_SIZE];
        ino.encode(&mut buf);
        assert_eq!(DiskInode::decode(&buf), ino);
        assert!(ino.in_use());
        assert!(!DiskInode::free().in_use());
    }

    #[test]
    fn bitmap_ops() {
        let mut bits = vec![0u8; 4];
        assert_eq!(bitmap::find_zero(&bits, 0, 32), Some(0));
        bitmap::set(&mut bits, 0);
        bitmap::set(&mut bits, 1);
        bitmap::set(&mut bits, 9);
        assert!(bitmap::get(&bits, 9));
        assert_eq!(bitmap::find_zero(&bits, 0, 32), Some(2));
        assert_eq!(bitmap::find_zero(&bits, 9, 10), None);
        assert_eq!(bitmap::count_ones(&bits, 0, 32), 3);
        bitmap::clear(&mut bits, 9);
        assert!(!bitmap::get(&bits, 9));
        assert_eq!(bitmap::count_ones(&bits, 0, 32), 2);
    }
}
