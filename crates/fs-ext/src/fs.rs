//! The ext file-system engine: mount state, buffer cache, block mapping, and
//! the POSIX operation set.
//!
//! While mounted, the file system keeps a buffer cache of device blocks, the
//! decoded superblock and bitmaps, and an inode cache. Dirty state reaches
//! the device only on `sync`/`unmount` (write-back). That in-memory state is
//! what goes stale when MCFS restores the device image underneath a mounted
//! file system — the §3.2 cache-incoherency problem, reproduced mechanically.

use std::collections::{BTreeMap, HashMap, HashSet};

use blockdev::{BlockDevice, FaultPhase};
use vfs::{
    path, AccessMode, DeviceBacked, DirEntry, Errno, Fd, FdTable, FileMode, FileStat, FileSystem,
    FileType, FsCapabilities, Ino, OpenFlags, RepairReport, StatFs, VfsResult, XattrFlags,
};

use crate::dir::{self, DirRecord};
use crate::fsck::{self, FsckOptions};
use crate::journal;
use crate::layout::{
    bitmap, DiskInode, SuperBlock, EXT_MAGIC, FT_DIR, FT_REG, FT_SYMLINK, INODE_SIZE, NDIRECT,
    SB_FLAG_DIRTY, SB_FLAG_LOST_FOUND,
};

/// Maximum hard links per file.
const MAX_NLINK: u16 = 32_000;

/// Construction-time configuration for the ext engine.
#[derive(Debug, Clone)]
pub struct ExtConfig {
    /// Reported file-system name (`"ext2"` / `"ext4"`).
    pub variant: &'static str,
    /// Block size in bytes (must equal the device block size).
    pub block_size: usize,
    /// Inode-table length (slot 0 is reserved; root is inode 1).
    pub inodes_count: u32,
    /// Journal area in blocks (0 disables journaling — the ext2 variant).
    pub journal_blocks: u32,
    /// Whether mkfs creates a `lost+found` directory (ext4 behaviour that
    /// causes namespace discrepancies MCFS must except — paper §3.4).
    pub lost_found: bool,
    /// Blocks reserved for the superuser (affects `blocks_avail`).
    pub reserved_blocks: u32,
}

impl ExtConfig {
    /// The ext2 variant: no journal, no `lost+found`.
    pub fn ext2() -> Self {
        ExtConfig {
            variant: "ext2",
            block_size: 1024,
            inodes_count: 64,
            journal_blocks: 0,
            lost_found: false,
            reserved_blocks: 4,
        }
    }

    /// The ext4 variant: journaled, with `lost+found`.
    pub fn ext4() -> Self {
        ExtConfig {
            variant: "ext4",
            block_size: 1024,
            inodes_count: 64,
            journal_blocks: 16,
            lost_found: true,
            reserved_blocks: 4,
        }
    }
}

#[derive(Debug, Clone)]
struct BufBlock {
    data: Vec<u8>,
    dirty: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct OpenFile {
    ino: u32,
    offset: u64,
    read: bool,
    write: bool,
    append: bool,
}

#[derive(Debug, Clone)]
struct Mounted {
    sb: SuperBlock,
    ibitmap: Vec<u8>,
    bbitmap: Vec<u8>,
    meta_dirty: bool,
    icache: HashMap<u32, DiskInode>,
    idirty: HashSet<u32>,
    bufs: HashMap<u32, BufBlock>,
    fds: FdTable<OpenFile>,
    time: u64,
    txn: u32,
}

/// An ext2/ext4-style file system on a block device.
///
/// Construct with [`ExtFs::format`] (mkfs) or [`ExtFs::open_device`] (attach
/// to an already formatted device), then [`mount`](FileSystem::mount).
#[derive(Debug, Clone)]
pub struct ExtFs<D> {
    dev: D,
    config: ExtConfig,
    m: Option<Mounted>,
}

impl<D: BlockDevice> ExtFs<D> {
    /// Formats `dev` (mkfs) and returns the unmounted file system.
    ///
    /// # Errors
    ///
    /// `EINVAL` if the device geometry cannot hold the requested layout
    /// (mismatched block size or too few blocks).
    pub fn format(mut dev: D, config: ExtConfig) -> VfsResult<Self> {
        let bs = config.block_size;
        if dev.block_size() != bs {
            return Err(Errno::EINVAL);
        }
        let blocks_count = dev.num_blocks() as u32;
        if blocks_count as usize > bs * 8 || config.inodes_count as usize > bs * 8 {
            return Err(Errno::EINVAL); // bitmaps must fit one block each
        }
        let mut sb = SuperBlock {
            magic: EXT_MAGIC,
            block_size: bs as u32,
            blocks_count,
            inodes_count: config.inodes_count,
            free_blocks: 0,
            free_inodes: 0,
            journal_blocks: config.journal_blocks,
            flags: if config.lost_found {
                SB_FLAG_LOST_FOUND
            } else {
                0
            },
            mount_count: 0,
        };
        if sb.data_start() + 8 > blocks_count {
            return Err(Errno::EINVAL); // need at least a few data blocks
        }
        let mut ibitmap = vec![0u8; bs];
        let mut bbitmap = vec![0u8; bs];
        // Metadata blocks are permanently "in use".
        for blk in 0..sb.data_start() {
            bitmap::set(&mut bbitmap, blk);
        }
        // Inode 0 is reserved, inode 1 is the root.
        bitmap::set(&mut ibitmap, 0);
        bitmap::set(&mut ibitmap, 1);
        let mut root = DiskInode::free();
        root.ftype = FT_DIR;
        root.mode = FileMode::DIR_DEFAULT.bits();
        root.nlink = 2;
        let mut table = vec![0u8; sb.inode_table_blocks() as usize * bs];
        let mut root_content = Vec::new();
        if config.lost_found {
            bitmap::set(&mut ibitmap, 2);
            let mut lf = DiskInode::free();
            lf.ftype = FT_DIR;
            lf.mode = 0o700;
            lf.nlink = 2;
            lf.encode(&mut table[2 * INODE_SIZE..3 * INODE_SIZE]);
            root.nlink += 1;
            root_content = dir::serialize(&[DirRecord {
                ino: 2,
                ftype: FT_DIR,
                name: "lost+found".to_string(),
            }]);
            root.size = root_content.len() as u64;
        }
        if !root_content.is_empty() {
            // Root directory content lives in the first data block.
            let root_blk = sb.data_start();
            bitmap::set(&mut bbitmap, root_blk);
            root.direct[0] = root_blk;
            root.blocks = 1;
            let mut block = vec![0u8; bs];
            block[..root_content.len()].copy_from_slice(&root_content);
            dev.write_block(root_blk as u64, &block)
                .map_err(|_| Errno::EIO)?;
        }
        root.encode(&mut table[INODE_SIZE..2 * INODE_SIZE]);
        sb.free_blocks = sb.data_blocks() - if root_content.is_empty() { 0 } else { 1 };
        sb.free_inodes = sb.inodes_count - if config.lost_found { 3 } else { 2 };
        // Write everything out.
        let mut sb_block = vec![0u8; bs];
        sb.encode(&mut sb_block);
        dev.write_block(0, &sb_block).map_err(|_| Errno::EIO)?;
        dev.write_block(1, &ibitmap).map_err(|_| Errno::EIO)?;
        dev.write_block(2, &bbitmap).map_err(|_| Errno::EIO)?;
        for (i, chunk) in table.chunks(bs).enumerate() {
            dev.write_block((sb.inode_table_start() + i as u32) as u64, chunk)
                .map_err(|_| Errno::EIO)?;
        }
        // Zero the journal header so stale data never replays.
        if sb.journal_blocks > 0 {
            let zero = vec![0u8; bs];
            dev.write_block(sb.journal_start() as u64, &zero)
                .map_err(|_| Errno::EIO)?;
        }
        dev.flush().map_err(|_| Errno::EIO)?;
        Ok(ExtFs {
            dev,
            config,
            m: None,
        })
    }

    /// Attaches to an already formatted device without reformatting.
    pub fn open_device(dev: D, config: ExtConfig) -> Self {
        ExtFs {
            dev,
            config,
            m: None,
        }
    }

    /// Direct access to the backing device (MCFS's "mmap" of the backend).
    pub fn device_mut(&mut self) -> &mut D {
        &mut self.dev
    }

    /// Approximate bytes of in-memory mounted state (caches), for the
    /// checker's memory model.
    pub fn cache_bytes(&self) -> usize {
        match &self.m {
            Some(m) => {
                m.bufs.len() * (self.config.block_size + 16)
                    + m.icache.len() * INODE_SIZE
                    + m.ibitmap.len()
                    + m.bbitmap.len()
            }
            None => 0,
        }
    }

    /// Scan-and-repair with explicit options (worker count, clock). The
    /// [`FileSystem::fsck`] entry point delegates here with the defaults.
    ///
    /// If mounted, the file system syncs and unmounts first (best effort —
    /// a corrupted image may refuse; its in-memory state is discarded
    /// then), runs the device-level passes with the device in
    /// [`FaultPhase::Repair`], and remounts afterwards.
    ///
    /// # Errors
    ///
    /// `EIO` if the superblock is unrepairable or the device fails
    /// mid-repair (the file system is left unmounted then — rerun fsck).
    pub fn fsck_with(&mut self, opts: &FsckOptions) -> VfsResult<RepairReport> {
        let was_mounted = self.m.is_some();
        if was_mounted {
            let _ = self.sync();
            if self.unmount().is_err() {
                self.m = None;
            }
        }
        self.dev.set_fault_phase(FaultPhase::Repair);
        let result = fsck::repair_device(&mut self.dev, opts);
        self.dev.set_fault_phase(FaultPhase::Normal);
        let report = result?;
        if was_mounted {
            self.mount()?;
        }
        Ok(report)
    }

    fn core(&mut self) -> VfsResult<Core<'_, D>> {
        match &mut self.m {
            Some(m) => Ok(Core {
                dev: &mut self.dev,
                m,
                bs: self.config.block_size,
            }),
            None => Err(Errno::ENODEV),
        }
    }
}

/// Per-operation view combining the device and the mounted state (avoids
/// borrow conflicts between the two fields).
struct Core<'a, D> {
    dev: &'a mut D,
    m: &'a mut Mounted,
    bs: usize,
}

impl<D: BlockDevice> Core<'_, D> {
    fn now(&mut self) -> u64 {
        self.m.time += 1;
        self.m.time
    }

    fn ptrs_per_block(&self) -> u32 {
        (self.bs / 4) as u32
    }

    fn max_file_blocks(&self) -> u64 {
        let p = self.ptrs_per_block() as u64;
        NDIRECT as u64 + p + p * p
    }

    // ---- buffer cache ----------------------------------------------------

    fn load_buf(&mut self, blk: u32) -> VfsResult<()> {
        if !self.m.bufs.contains_key(&blk) {
            let mut data = vec![0u8; self.bs];
            self.dev
                .read_block(blk as u64, &mut data)
                .map_err(|_| Errno::EIO)?;
            self.m.bufs.insert(blk, BufBlock { data, dirty: false });
        }
        Ok(())
    }

    fn read_buf(&mut self, blk: u32) -> VfsResult<Vec<u8>> {
        self.load_buf(blk)?;
        Ok(self.m.bufs[&blk].data.clone())
    }

    fn with_buf<R>(&mut self, blk: u32, f: impl FnOnce(&mut Vec<u8>) -> R) -> VfsResult<R> {
        self.load_buf(blk)?;
        let buf = self.m.bufs.get_mut(&blk).expect("just loaded");
        let r = f(&mut buf.data);
        buf.dirty = true;
        Ok(r)
    }

    fn u32_in_buf(&mut self, blk: u32, index: u32) -> VfsResult<u32> {
        let data = self.read_buf(blk)?;
        let i = index as usize * 4;
        Ok(u32::from_le_bytes([
            data[i],
            data[i + 1],
            data[i + 2],
            data[i + 3],
        ]))
    }

    fn set_u32_in_buf(&mut self, blk: u32, index: u32, value: u32) -> VfsResult<()> {
        self.with_buf(blk, |data| {
            let i = index as usize * 4;
            data[i..i + 4].copy_from_slice(&value.to_le_bytes());
        })
    }

    // ---- allocation ------------------------------------------------------

    fn alloc_block(&mut self) -> VfsResult<u32> {
        let start = self.m.sb.data_start();
        let end = self.m.sb.blocks_count;
        let blk = bitmap::find_zero(&self.m.bbitmap, start, end).ok_or(Errno::ENOSPC)?;
        bitmap::set(&mut self.m.bbitmap, blk);
        self.m.sb.free_blocks -= 1;
        self.m.meta_dirty = true;
        // Fresh blocks are zeroed — this is why holes read back as zeros.
        self.m.bufs.insert(
            blk,
            BufBlock {
                data: vec![0u8; self.bs],
                dirty: true,
            },
        );
        Ok(blk)
    }

    fn free_block(&mut self, blk: u32) {
        bitmap::clear(&mut self.m.bbitmap, blk);
        self.m.sb.free_blocks += 1;
        self.m.meta_dirty = true;
        self.m.bufs.remove(&blk);
    }

    fn alloc_inode(&mut self, inode: DiskInode) -> VfsResult<u32> {
        let ino =
            bitmap::find_zero(&self.m.ibitmap, 1, self.m.sb.inodes_count).ok_or(Errno::ENOSPC)?;
        bitmap::set(&mut self.m.ibitmap, ino);
        self.m.sb.free_inodes -= 1;
        self.m.meta_dirty = true;
        self.m.icache.insert(ino, inode);
        self.m.idirty.insert(ino);
        Ok(ino)
    }

    fn free_inode(&mut self, ino: u32) {
        bitmap::clear(&mut self.m.ibitmap, ino);
        self.m.sb.free_inodes += 1;
        self.m.meta_dirty = true;
        self.m.icache.insert(ino, DiskInode::free());
        self.m.idirty.insert(ino);
    }

    // ---- inode table -----------------------------------------------------

    fn inode(&mut self, ino: u32) -> VfsResult<DiskInode> {
        if let Some(i) = self.m.icache.get(&ino) {
            return Ok(*i);
        }
        if ino == 0 || ino >= self.m.sb.inodes_count {
            return Err(Errno::EIO);
        }
        let per_block = self.bs / INODE_SIZE;
        let blk = self.m.sb.inode_table_start() + ino / per_block as u32;
        let off = (ino as usize % per_block) * INODE_SIZE;
        let data = self.read_buf(blk)?;
        let inode = DiskInode::decode(&data[off..off + INODE_SIZE]);
        self.m.icache.insert(ino, inode);
        Ok(inode)
    }

    fn put_inode(&mut self, ino: u32, inode: DiskInode) {
        self.m.icache.insert(ino, inode);
        self.m.idirty.insert(ino);
    }

    // ---- block mapping ---------------------------------------------------

    /// Maps file block `fblk` to a device block (`None` = hole).
    fn bmap(&mut self, inode: &DiskInode, fblk: u64) -> VfsResult<Option<u32>> {
        let p = self.ptrs_per_block() as u64;
        if fblk < NDIRECT as u64 {
            let b = inode.direct[fblk as usize];
            return Ok(if b == 0 { None } else { Some(b) });
        }
        let fblk = fblk - NDIRECT as u64;
        if fblk < p {
            if inode.indirect == 0 {
                return Ok(None);
            }
            let b = self.u32_in_buf(inode.indirect, fblk as u32)?;
            return Ok(if b == 0 { None } else { Some(b) });
        }
        let fblk = fblk - p;
        if fblk < p * p {
            if inode.dindirect == 0 {
                return Ok(None);
            }
            let l2 = self.u32_in_buf(inode.dindirect, (fblk / p) as u32)?;
            if l2 == 0 {
                return Ok(None);
            }
            let b = self.u32_in_buf(l2, (fblk % p) as u32)?;
            return Ok(if b == 0 { None } else { Some(b) });
        }
        Err(Errno::EFBIG)
    }

    /// Number of *new* blocks (data + indirect) required to populate file
    /// blocks `[from, to)` of `inode`. Used for the ENOSPC pre-check so
    /// operations are all-or-nothing.
    fn blocks_needed(&mut self, inode: &DiskInode, from: u64, to: u64) -> VfsResult<u64> {
        let p = self.ptrs_per_block() as u64;
        if to > self.max_file_blocks() {
            return Err(Errno::EFBIG);
        }
        let mut needed = 0u64;
        let mut indirect_needed = inode.indirect == 0;
        let mut dindirect_needed = inode.dindirect == 0;
        let mut l2_needed: HashSet<u64> = HashSet::new();
        for fblk in from..to {
            if self.bmap(inode, fblk)?.is_some() {
                continue;
            }
            needed += 1;
            if fblk >= NDIRECT as u64 {
                let rel = fblk - NDIRECT as u64;
                if rel < p {
                    if indirect_needed {
                        needed += 1;
                        indirect_needed = false;
                    }
                } else {
                    let rel = rel - p;
                    if dindirect_needed {
                        needed += 1;
                        dindirect_needed = false;
                    }
                    let l2_idx = rel / p;
                    let exists = if inode.dindirect == 0 {
                        false
                    } else {
                        self.u32_in_buf(inode.dindirect, l2_idx as u32)? != 0
                    };
                    if !exists && l2_needed.insert(l2_idx) {
                        needed += 1;
                    }
                }
            }
        }
        Ok(needed)
    }

    /// Maps file block `fblk`, allocating it (and any intermediate blocks) if
    /// absent. Callers must have pre-checked capacity with
    /// [`blocks_needed`](Self::blocks_needed).
    fn bmap_alloc(&mut self, ino: u32, fblk: u64) -> VfsResult<u32> {
        let p = self.ptrs_per_block() as u64;
        let mut inode = self.inode(ino)?;
        let result;
        if fblk < NDIRECT as u64 {
            let cur = inode.direct[fblk as usize];
            if cur != 0 {
                return Ok(cur);
            }
            let b = self.alloc_block()?;
            inode.direct[fblk as usize] = b;
            inode.blocks += 1;
            result = b;
        } else {
            let rel = fblk - NDIRECT as u64;
            if rel < p {
                if inode.indirect == 0 {
                    inode.indirect = self.alloc_block()?;
                }
                let cur = self.u32_in_buf(inode.indirect, rel as u32)?;
                if cur != 0 {
                    self.put_inode(ino, inode);
                    return Ok(cur);
                }
                let b = self.alloc_block()?;
                self.set_u32_in_buf(inode.indirect, rel as u32, b)?;
                inode.blocks += 1;
                result = b;
            } else {
                let rel = rel - p;
                if rel >= p * p {
                    return Err(Errno::EFBIG);
                }
                if inode.dindirect == 0 {
                    inode.dindirect = self.alloc_block()?;
                }
                let l2_idx = (rel / p) as u32;
                let mut l2 = self.u32_in_buf(inode.dindirect, l2_idx)?;
                if l2 == 0 {
                    l2 = self.alloc_block()?;
                    self.set_u32_in_buf(inode.dindirect, l2_idx, l2)?;
                }
                let cur = self.u32_in_buf(l2, (rel % p) as u32)?;
                if cur != 0 {
                    self.put_inode(ino, inode);
                    return Ok(cur);
                }
                let b = self.alloc_block()?;
                self.set_u32_in_buf(l2, (rel % p) as u32, b)?;
                inode.blocks += 1;
                result = b;
            }
        }
        self.put_inode(ino, inode);
        Ok(result)
    }

    // ---- file content ----------------------------------------------------

    fn read_file(&mut self, ino: u32, offset: u64, out: &mut [u8]) -> VfsResult<usize> {
        let inode = self.inode(ino)?;
        if offset >= inode.size {
            return Ok(0);
        }
        // `lseek` accepts any u64 offset, so the end position can overflow.
        let end = offset
            .checked_add(out.len() as u64)
            .ok_or(Errno::EFBIG)?
            .min(inode.size);
        let mut pos = offset;
        while pos < end {
            let fblk = pos / self.bs as u64;
            let within = (pos % self.bs as u64) as usize;
            let chunk = ((self.bs - within) as u64).min(end - pos) as usize;
            let dst = (pos - offset) as usize;
            match self.bmap(&inode, fblk)? {
                Some(blk) => {
                    let data = self.read_buf(blk)?;
                    out[dst..dst + chunk].copy_from_slice(&data[within..within + chunk]);
                }
                None => {
                    // Hole: zeros.
                    out[dst..dst + chunk].fill(0);
                }
            }
            pos += chunk as u64;
        }
        Ok((end - offset) as usize)
    }

    fn write_file(&mut self, ino: u32, offset: u64, data: &[u8]) -> VfsResult<()> {
        let inode = self.inode(ino)?;
        let end = offset.checked_add(data.len() as u64).ok_or(Errno::EFBIG)?;
        let from = offset / self.bs as u64;
        let to = end.div_ceil(self.bs as u64);
        let needed = self.blocks_needed(&inode, from, to)?;
        if needed > self.m.sb.free_blocks as u64 {
            return Err(Errno::ENOSPC);
        }
        let mut pos = offset;
        while pos < end {
            let fblk = pos / self.bs as u64;
            let within = (pos % self.bs as u64) as usize;
            let chunk = ((self.bs - within) as u64).min(end - pos) as usize;
            let src = (pos - offset) as usize;
            let blk = self.bmap_alloc(ino, fblk)?;
            self.with_buf(blk, |b| {
                b[within..within + chunk].copy_from_slice(&data[src..src + chunk]);
            })?;
            pos += chunk as u64;
        }
        let mut inode = self.inode(ino)?;
        if end > inode.size {
            inode.size = end;
        }
        let now = self.now();
        inode.mtime = now;
        inode.ctime = now;
        self.put_inode(ino, inode);
        Ok(())
    }

    fn file_truncate(&mut self, ino: u32, new_size: u64) -> VfsResult<()> {
        let mut inode = self.inode(ino)?;
        let p = self.ptrs_per_block() as u64;
        let old_blocks = inode.size.div_ceil(self.bs as u64);
        let keep_blocks = new_size.div_ceil(self.bs as u64);
        if new_size > self.max_file_blocks() * self.bs as u64 {
            return Err(Errno::EFBIG);
        }
        if new_size < inode.size {
            // Free whole blocks past the new end.
            for fblk in keep_blocks..old_blocks {
                if let Some(blk) = self.bmap(&inode, fblk)? {
                    self.free_block(blk);
                    inode.blocks -= 1;
                    // Clear the mapping.
                    if fblk < NDIRECT as u64 {
                        inode.direct[fblk as usize] = 0;
                    } else {
                        let rel = fblk - NDIRECT as u64;
                        if rel < p {
                            self.set_u32_in_buf(inode.indirect, rel as u32, 0)?;
                        } else {
                            let rel = rel - p;
                            let l2 = self.u32_in_buf(inode.dindirect, (rel / p) as u32)?;
                            self.set_u32_in_buf(l2, (rel % p) as u32, 0)?;
                        }
                    }
                }
            }
            // Release indirect blocks that became empty.
            if inode.indirect != 0 {
                let data = self.read_buf(inode.indirect)?;
                if data.iter().all(|&b| b == 0) {
                    self.free_block(inode.indirect);
                    inode.indirect = 0;
                }
            }
            if inode.dindirect != 0 {
                let l2_list = self.read_buf(inode.dindirect)?;
                let mut all_empty = true;
                for i in 0..self.ptrs_per_block() {
                    let i4 = i as usize * 4;
                    let l2 = u32::from_le_bytes([
                        l2_list[i4],
                        l2_list[i4 + 1],
                        l2_list[i4 + 2],
                        l2_list[i4 + 3],
                    ]);
                    if l2 != 0 {
                        let data = self.read_buf(l2)?;
                        if data.iter().all(|&b| b == 0) {
                            self.free_block(l2);
                            self.set_u32_in_buf(inode.dindirect, i, 0)?;
                        } else {
                            all_empty = false;
                        }
                    }
                }
                if all_empty {
                    self.free_block(inode.dindirect);
                    inode.dindirect = 0;
                }
            }
            // Zero the tail of the (kept) final partial block so a later
            // extension cannot expose stale bytes.
            if !new_size.is_multiple_of(self.bs as u64) {
                if let Some(blk) = self.bmap(&inode, new_size / self.bs as u64)? {
                    let from = (new_size % self.bs as u64) as usize;
                    self.with_buf(blk, |b| b[from..].fill(0))?;
                }
            }
        }
        // Extension is sparse: unmapped blocks read as zeros.
        inode.size = new_size;
        let now = self.now();
        inode.mtime = now;
        inode.ctime = now;
        self.put_inode(ino, inode);
        Ok(())
    }

    /// Frees every data/indirect/xattr block of `ino` and the inode itself.
    fn release_inode(&mut self, ino: u32) -> VfsResult<()> {
        self.file_truncate(ino, 0)?;
        let inode = self.inode(ino)?;
        if inode.xattr_block != 0 {
            self.free_block(inode.xattr_block);
        }
        self.free_inode(ino);
        Ok(())
    }

    // ---- directories -----------------------------------------------------

    fn read_dir(&mut self, ino: u32) -> VfsResult<Vec<DirRecord>> {
        let inode = self.inode(ino)?;
        let mut content = vec![0u8; inode.size as usize];
        self.read_file(ino, 0, &mut content)?;
        dir::parse(&content)
    }

    fn write_dir(&mut self, ino: u32, records: &[DirRecord]) -> VfsResult<()> {
        let content = dir::serialize(records);
        let inode = self.inode(ino)?;
        // Pre-check capacity: the rewrite frees the old blocks first, so the
        // budget is current free + currently held.
        let needed = (content.len() as u64).div_ceil(self.bs as u64);
        let held = inode.size.div_ceil(self.bs as u64);
        if needed > self.m.sb.free_blocks as u64 + held {
            return Err(Errno::ENOSPC);
        }
        self.file_truncate(ino, 0)?;
        if !content.is_empty() {
            self.write_file(ino, 0, &content)?;
        }
        let mut inode = self.inode(ino)?;
        inode.size = content.len() as u64;
        self.put_inode(ino, inode);
        Ok(())
    }

    fn lookup(&mut self, dir_ino: u32, name: &str) -> VfsResult<Option<u32>> {
        let inode = self.inode(dir_ino)?;
        if inode.ftype != FT_DIR {
            return Err(Errno::ENOTDIR);
        }
        let records = self.read_dir(dir_ino)?;
        Ok(dir::find(&records, name).map(|r| r.ino))
    }

    fn resolve(&mut self, p: &str) -> VfsResult<u32> {
        path::validate(p)?;
        let mut cur = Ino::ROOT.0 as u32;
        for comp in path::components(p) {
            let inode = self.inode(cur)?;
            match inode.ftype {
                FT_DIR => {}
                FT_SYMLINK => return Err(Errno::ELOOP),
                _ => return Err(Errno::ENOTDIR),
            }
            cur = self.lookup(cur, comp)?.ok_or(Errno::ENOENT)?;
        }
        Ok(cur)
    }

    fn resolve_parent<'p>(&mut self, p: &'p str) -> VfsResult<(u32, &'p str)> {
        path::validate(p)?;
        let (parent, name) = path::split_parent(p)?;
        let parent_ino = self.resolve(&parent)?;
        if self.inode(parent_ino)?.ftype != FT_DIR {
            return Err(Errno::ENOTDIR);
        }
        Ok((parent_ino, name))
    }

    fn insert_entry(&mut self, dir_ino: u32, name: &str, ino: u32, ftype: u8) -> VfsResult<()> {
        let mut records = self.read_dir(dir_ino)?;
        records.push(DirRecord {
            ino,
            ftype,
            name: name.to_string(),
        });
        self.write_dir(dir_ino, &records)?;
        let now = self.now();
        let mut d = self.inode(dir_ino)?;
        d.mtime = now;
        d.ctime = now;
        self.put_inode(dir_ino, d);
        Ok(())
    }

    fn remove_entry(&mut self, dir_ino: u32, name: &str) -> VfsResult<u32> {
        let mut records = self.read_dir(dir_ino)?;
        let idx = records
            .iter()
            .position(|r| r.name == name)
            .ok_or(Errno::ENOENT)?;
        let removed = records.remove(idx);
        self.write_dir(dir_ino, &records)?;
        let now = self.now();
        let mut d = self.inode(dir_ino)?;
        d.mtime = now;
        d.ctime = now;
        self.put_inode(dir_ino, d);
        Ok(removed.ino)
    }

    fn fd_refs(&self, ino: u32) -> usize {
        self.m.fds.iter().filter(|(_, of)| of.ino == ino).count()
    }

    fn maybe_release(&mut self, ino: u32) -> VfsResult<()> {
        let inode = self.inode(ino)?;
        if inode.nlink == 0 && self.fd_refs(ino) == 0 {
            self.release_inode(ino)?;
        }
        Ok(())
    }

    fn new_inode(&mut self, ftype: u8, mode: FileMode) -> DiskInode {
        let now = self.now();
        let mut i = DiskInode::free();
        i.ftype = ftype;
        i.mode = mode.bits();
        i.nlink = 1;
        i.atime = now;
        i.mtime = now;
        i.ctime = now;
        i
    }

    // ---- xattrs ----------------------------------------------------------

    fn read_xattrs(&mut self, ino: u32) -> VfsResult<BTreeMap<String, Vec<u8>>> {
        let inode = self.inode(ino)?;
        if inode.xattr_block == 0 {
            return Ok(BTreeMap::new());
        }
        let data = self.read_buf(inode.xattr_block)?;
        let mut out = BTreeMap::new();
        let count = u16::from_le_bytes([data[0], data[1]]) as usize;
        let mut pos = 2;
        for _ in 0..count {
            let klen = data[pos] as usize;
            let vlen = u16::from_le_bytes([data[pos + 1], data[pos + 2]]) as usize;
            pos += 3;
            let key = std::str::from_utf8(&data[pos..pos + klen])
                .map_err(|_| Errno::EIO)?
                .to_string();
            pos += klen;
            let val = data[pos..pos + vlen].to_vec();
            pos += vlen;
            out.insert(key, val);
        }
        Ok(out)
    }

    fn write_xattrs(&mut self, ino: u32, xattrs: &BTreeMap<String, Vec<u8>>) -> VfsResult<()> {
        let mut inode = self.inode(ino)?;
        if xattrs.is_empty() {
            if inode.xattr_block != 0 {
                self.free_block(inode.xattr_block);
                inode.xattr_block = 0;
                self.put_inode(ino, inode);
            }
            return Ok(());
        }
        let mut blob = Vec::with_capacity(self.bs);
        blob.extend_from_slice(&(xattrs.len() as u16).to_le_bytes());
        for (k, v) in xattrs {
            blob.push(k.len() as u8);
            blob.extend_from_slice(&(v.len() as u16).to_le_bytes());
            blob.extend_from_slice(k.as_bytes());
            blob.extend_from_slice(v);
        }
        if blob.len() > self.bs {
            return Err(Errno::ENOSPC);
        }
        if inode.xattr_block == 0 {
            inode.xattr_block = self.alloc_block()?;
            self.put_inode(ino, inode);
        }
        let blk = inode.xattr_block;
        self.with_buf(blk, |b| {
            b.fill(0);
            b[..blob.len()].copy_from_slice(&blob);
        })
    }
}

impl<D: BlockDevice> FileSystem for ExtFs<D> {
    fn fs_name(&self) -> &str {
        self.config.variant
    }

    fn capabilities(&self) -> FsCapabilities {
        FsCapabilities {
            rename: true,
            hardlink: true,
            symlink: true,
            xattr: true,
            access: true,
            checkpoint: false, // kernel file systems lack the paper's API
        }
    }

    fn mount(&mut self) -> VfsResult<()> {
        if self.m.is_some() {
            return Err(Errno::EBUSY);
        }
        let bs = self.config.block_size;
        let mut sb_block = vec![0u8; bs];
        self.dev
            .read_block(0, &mut sb_block)
            .map_err(|_| Errno::EIO)?;
        let mut sb = SuperBlock::decode(&sb_block)?;
        if sb.block_size as usize != bs {
            return Err(Errno::EIO);
        }
        // Dirty + journaled: replay committed transactions (crash recovery).
        if sb.flags & SB_FLAG_DIRTY != 0 && sb.journal_blocks > 0 {
            journal::replay(&mut self.dev, &sb)?;
            // The superblock itself may have been journaled; reread.
            self.dev
                .read_block(0, &mut sb_block)
                .map_err(|_| Errno::EIO)?;
            sb = SuperBlock::decode(&sb_block)?;
        }
        let mut ibitmap = vec![0u8; bs];
        let mut bbitmap = vec![0u8; bs];
        self.dev
            .read_block(1, &mut ibitmap)
            .map_err(|_| Errno::EIO)?;
        self.dev
            .read_block(2, &mut bbitmap)
            .map_err(|_| Errno::EIO)?;
        // Recompute free counts from the bitmaps (cheap fsck; also heals an
        // unclean ext2 mount).
        sb.free_blocks =
            sb.data_blocks() - bitmap::count_ones(&bbitmap, sb.data_start(), sb.blocks_count);
        sb.free_inodes = sb.inodes_count - bitmap::count_ones(&ibitmap, 1, sb.inodes_count);
        sb.mount_count += 1;
        sb.flags |= SB_FLAG_DIRTY;
        // Mark dirty on disk immediately, as real mounts do.
        sb.encode(&mut sb_block);
        self.dev.write_block(0, &sb_block).map_err(|_| Errno::EIO)?;
        let time = (sb.mount_count as u64) << 32;
        self.m = Some(Mounted {
            sb,
            ibitmap,
            bbitmap,
            meta_dirty: false,
            icache: HashMap::new(),
            idirty: HashSet::new(),
            bufs: HashMap::new(),
            fds: FdTable::default(),
            time,
            txn: 1,
        });
        Ok(())
    }

    fn unmount(&mut self) -> VfsResult<()> {
        self.sync()?;
        let bs = self.config.block_size;
        let mut m = self.m.take().ok_or(Errno::ENODEV)?;
        m.sb.flags &= !SB_FLAG_DIRTY;
        let mut sb_block = vec![0u8; bs];
        m.sb.encode(&mut sb_block);
        self.dev.write_block(0, &sb_block).map_err(|_| Errno::EIO)?;
        self.dev.flush().map_err(|_| Errno::EIO)?;
        Ok(())
    }

    fn is_mounted(&self) -> bool {
        self.m.is_some()
    }

    fn sync(&mut self) -> VfsResult<()> {
        let bs = self.config.block_size;
        let has_journal = self.config.journal_blocks > 0;
        let mut c = self.core()?;
        // Encode dirty inodes into their table blocks. Each inode leaves the
        // dirty set only once its table block is encoded: an EIO mid-loop
        // must not silently drop the remaining updates (the next sync
        // retries them).
        let dirty_inodes: Vec<u32> = c.m.idirty.iter().copied().collect();
        for ino in dirty_inodes {
            let inode = c.inode(ino)?;
            let per_block = bs / INODE_SIZE;
            let blk = c.m.sb.inode_table_start() + ino / per_block as u32;
            let off = (ino as usize % per_block) * INODE_SIZE;
            c.with_buf(blk, |b| inode.encode(&mut b[off..off + INODE_SIZE]))?;
            c.m.idirty.remove(&ino);
        }
        // Encode superblock and bitmaps.
        if c.m.meta_dirty {
            let sb = c.m.sb;
            c.with_buf(0, |b| sb.encode(b))?;
            let ibm = c.m.ibitmap.clone();
            c.with_buf(1, |b| b.copy_from_slice(&ibm))?;
            let bbm = c.m.bbitmap.clone();
            c.with_buf(2, |b| b.copy_from_slice(&bbm))?;
            c.m.meta_dirty = false;
        }
        // Partition dirty buffers into metadata and data. The dirty flags
        // clear per block as its device write succeeds — never before:
        // on EIO the cache keeps the only good copy, and the next sync
        // must write it again or the device stays silently stale.
        let data_start = c.m.sb.data_start();
        let mut meta: Vec<(u32, Vec<u8>)> = Vec::new();
        let mut data: Vec<(u32, Vec<u8>)> = Vec::new();
        for (&blk, buf) in c.m.bufs.iter() {
            if buf.dirty {
                if blk < data_start {
                    meta.push((blk, buf.data.clone()));
                } else {
                    data.push((blk, buf.data.clone()));
                }
            }
        }
        meta.sort_by_key(|(b, _)| *b);
        data.sort_by_key(|(b, _)| *b);
        if has_journal {
            // Ordered mode: data first, then journal the metadata.
            for (blk, image) in &data {
                c.dev
                    .write_block(*blk as u64, image)
                    .map_err(|_| Errno::EIO)?;
                c.m.bufs.get_mut(blk).expect("collected above").dirty = false;
            }
            if !meta.is_empty() {
                let txn = c.m.txn;
                c.m.txn = c.m.txn.wrapping_add(meta.len() as u32).wrapping_add(1);
                journal::commit(c.dev, &c.m.sb, txn, &meta)?;
                for (blk, _) in &meta {
                    c.m.bufs.get_mut(blk).expect("collected above").dirty = false;
                }
            } else {
                // Nothing to journal: still barrier the data writes so a
                // power cut cannot take back what sync promised.
                c.dev.flush().map_err(|_| Errno::EIO)?;
            }
        } else {
            for (blk, image) in meta.iter().chain(data.iter()) {
                c.dev
                    .write_block(*blk as u64, image)
                    .map_err(|_| Errno::EIO)?;
                c.m.bufs.get_mut(blk).expect("collected above").dirty = false;
            }
            c.dev.flush().map_err(|_| Errno::EIO)?;
        }
        Ok(())
    }

    fn statfs(&self) -> VfsResult<StatFs> {
        let m = self.m.as_ref().ok_or(Errno::ENODEV)?;
        Ok(StatFs {
            block_size: m.sb.block_size,
            blocks: m.sb.data_blocks() as u64,
            blocks_free: m.sb.free_blocks as u64,
            blocks_avail: m.sb.free_blocks.saturating_sub(self.config.reserved_blocks) as u64,
            files: (m.sb.inodes_count - 1) as u64,
            files_free: m.sb.free_inodes as u64,
            name_max: 255,
        })
    }

    fn create(&mut self, p: &str, mode: FileMode) -> VfsResult<Fd> {
        let mut c = self.core()?;
        let (parent, name) = c.resolve_parent(p)?;
        if c.lookup(parent, name)?.is_some() {
            return Err(Errno::EEXIST);
        }
        if c.m.sb.free_inodes == 0 {
            return Err(Errno::ENOSPC);
        }
        let inode = c.new_inode(FT_REG, mode);
        let ino = c.alloc_inode(inode)?;
        if let Err(e) = c.insert_entry(parent, name, ino, FT_REG) {
            c.free_inode(ino);
            return Err(e);
        }
        c.m.fds.insert(OpenFile {
            ino,
            offset: 0,
            read: true,
            write: true,
            append: false,
        })
    }

    fn open(&mut self, p: &str, flags: OpenFlags, mode: FileMode) -> VfsResult<Fd> {
        let mut c = self.core()?;
        path::validate(p)?;
        let ino = match c.resolve(p) {
            Ok(ino) => {
                if flags.create && flags.excl {
                    return Err(Errno::EEXIST);
                }
                ino
            }
            Err(Errno::ENOENT) if flags.create => {
                let (parent, name) = c.resolve_parent(p)?;
                let inode = c.new_inode(FT_REG, mode);
                let ino = c.alloc_inode(inode)?;
                if let Err(e) = c.insert_entry(parent, name, ino, FT_REG) {
                    c.free_inode(ino);
                    return Err(e);
                }
                ino
            }
            Err(e) => return Err(e),
        };
        let inode = c.inode(ino)?;
        match inode.ftype {
            FT_SYMLINK => return Err(Errno::ELOOP),
            FT_DIR if flags.write => return Err(Errno::EISDIR),
            _ => {}
        }
        if flags.trunc && flags.write {
            c.file_truncate(ino, 0)?;
        }
        c.m.fds.insert(OpenFile {
            ino,
            offset: 0,
            read: flags.read || !flags.write,
            write: flags.write,
            append: flags.append,
        })
    }

    fn close(&mut self, fd: Fd) -> VfsResult<()> {
        let mut c = self.core()?;
        let of = c.m.fds.remove(fd)?;
        if c.inode(of.ino)?.nlink == 0 {
            c.maybe_release(of.ino)?;
        }
        Ok(())
    }

    fn read(&mut self, fd: Fd, out: &mut [u8]) -> VfsResult<usize> {
        let mut c = self.core()?;
        let of = *c.m.fds.get(fd)?;
        if !of.read {
            return Err(Errno::EBADF);
        }
        let inode = c.inode(of.ino)?;
        if inode.ftype == FT_DIR {
            return Err(Errno::EISDIR);
        }
        let n = c.read_file(of.ino, of.offset, out)?;
        let now = c.now();
        let mut inode = c.inode(of.ino)?;
        inode.atime = now;
        c.put_inode(of.ino, inode);
        c.m.fds.get_mut(fd)?.offset += n as u64;
        Ok(n)
    }

    fn write(&mut self, fd: Fd, data: &[u8]) -> VfsResult<usize> {
        let mut c = self.core()?;
        let of = *c.m.fds.get(fd)?;
        if !of.write {
            return Err(Errno::EBADF);
        }
        let inode = c.inode(of.ino)?;
        if inode.ftype == FT_DIR {
            return Err(Errno::EISDIR);
        }
        let offset = if of.append { inode.size } else { of.offset };
        c.write_file(of.ino, offset, data)?;
        c.m.fds.get_mut(fd)?.offset = offset + data.len() as u64;
        Ok(data.len())
    }

    fn lseek(&mut self, fd: Fd, offset: u64) -> VfsResult<u64> {
        let c = self.core()?;
        c.m.fds.get_mut(fd)?.offset = offset;
        Ok(offset)
    }

    fn truncate(&mut self, p: &str, size: u64) -> VfsResult<()> {
        let mut c = self.core()?;
        let ino = c.resolve(p)?;
        let inode = c.inode(ino)?;
        match inode.ftype {
            FT_DIR => return Err(Errno::EISDIR),
            FT_SYMLINK => return Err(Errno::EINVAL),
            _ => {}
        }
        c.file_truncate(ino, size)
    }

    fn mkdir(&mut self, p: &str, mode: FileMode) -> VfsResult<()> {
        let mut c = self.core()?;
        let (parent, name) = c.resolve_parent(p)?;
        if c.lookup(parent, name)?.is_some() {
            return Err(Errno::EEXIST);
        }
        let mut inode = c.new_inode(FT_DIR, mode);
        inode.nlink = 2;
        let ino = c.alloc_inode(inode)?;
        if let Err(e) = c.insert_entry(parent, name, ino, FT_DIR) {
            c.free_inode(ino);
            return Err(e);
        }
        let mut pd = c.inode(parent)?;
        pd.nlink += 1;
        c.put_inode(parent, pd);
        Ok(())
    }

    fn rmdir(&mut self, p: &str) -> VfsResult<()> {
        let mut c = self.core()?;
        if path::is_root(p) {
            return Err(Errno::EBUSY);
        }
        let (parent, name) = c.resolve_parent(p)?;
        let ino = c.lookup(parent, name)?.ok_or(Errno::ENOENT)?;
        let inode = c.inode(ino)?;
        if inode.ftype != FT_DIR {
            return Err(Errno::ENOTDIR);
        }
        if !c.read_dir(ino)?.is_empty() {
            return Err(Errno::ENOTEMPTY);
        }
        c.remove_entry(parent, name)?;
        let mut inode = c.inode(ino)?;
        inode.nlink = 0;
        c.put_inode(ino, inode);
        let mut pd = c.inode(parent)?;
        pd.nlink -= 1;
        c.put_inode(parent, pd);
        c.maybe_release(ino)
    }

    fn unlink(&mut self, p: &str) -> VfsResult<()> {
        let mut c = self.core()?;
        let (parent, name) = c.resolve_parent(p)?;
        let ino = c.lookup(parent, name)?.ok_or(Errno::ENOENT)?;
        if c.inode(ino)?.ftype == FT_DIR {
            return Err(Errno::EISDIR);
        }
        c.remove_entry(parent, name)?;
        let now = c.now();
        let mut inode = c.inode(ino)?;
        inode.nlink -= 1;
        inode.ctime = now;
        c.put_inode(ino, inode);
        c.maybe_release(ino)
    }

    fn stat(&mut self, p: &str) -> VfsResult<FileStat> {
        let bs = self.config.block_size as u64;
        let mut c = self.core()?;
        let ino = c.resolve(p)?;
        let inode = c.inode(ino)?;
        let (ftype, size) = match inode.ftype {
            FT_REG => (FileType::Regular, inode.size),
            // ext reports directory sizes as a multiple of the block size —
            // at least one block (paper §3.4).
            FT_DIR => (FileType::Directory, inode.size.div_ceil(bs).max(1) * bs),
            FT_SYMLINK => (FileType::Symlink, inode.size),
            _ => return Err(Errno::EIO),
        };
        Ok(FileStat {
            ino: Ino(ino as u64),
            ftype,
            mode: FileMode::new(inode.mode),
            nlink: inode.nlink as u32,
            uid: inode.uid,
            gid: inode.gid,
            size,
            blocks: inode.blocks as u64 * (bs / 512),
            atime: inode.atime,
            mtime: inode.mtime,
            ctime: inode.ctime,
        })
    }

    fn getdents(&mut self, p: &str) -> VfsResult<Vec<DirEntry>> {
        let mut c = self.core()?;
        let ino = c.resolve(p)?;
        if c.inode(ino)?.ftype != FT_DIR {
            return Err(Errno::ENOTDIR);
        }
        let records = c.read_dir(ino)?;
        let now = c.now();
        let mut d = c.inode(ino)?;
        d.atime = now;
        c.put_inode(ino, d);
        records
            .into_iter()
            .map(|r| {
                let ftype = match r.ftype {
                    FT_REG => FileType::Regular,
                    FT_DIR => FileType::Directory,
                    FT_SYMLINK => FileType::Symlink,
                    _ => return Err(Errno::EIO),
                };
                Ok(DirEntry {
                    name: r.name,
                    ino: Ino(r.ino as u64),
                    ftype,
                })
            })
            .collect()
    }

    fn chmod(&mut self, p: &str, mode: FileMode) -> VfsResult<()> {
        let mut c = self.core()?;
        let ino = c.resolve(p)?;
        let now = c.now();
        let mut inode = c.inode(ino)?;
        inode.mode = mode.bits();
        inode.ctime = now;
        c.put_inode(ino, inode);
        Ok(())
    }

    fn chown(&mut self, p: &str, uid: u32, gid: u32) -> VfsResult<()> {
        let mut c = self.core()?;
        let ino = c.resolve(p)?;
        let now = c.now();
        let mut inode = c.inode(ino)?;
        inode.uid = uid;
        inode.gid = gid;
        inode.ctime = now;
        c.put_inode(ino, inode);
        Ok(())
    }

    fn utimens(&mut self, p: &str, atime: u64, mtime: u64) -> VfsResult<()> {
        let mut c = self.core()?;
        let ino = c.resolve(p)?;
        let now = c.now();
        let mut inode = c.inode(ino)?;
        inode.atime = atime;
        inode.mtime = mtime;
        inode.ctime = now;
        c.put_inode(ino, inode);
        Ok(())
    }

    fn rename(&mut self, src: &str, dst: &str) -> VfsResult<()> {
        let mut c = self.core()?;
        path::validate(src)?;
        path::validate(dst)?;
        if src == dst {
            c.resolve(src)?;
            return Ok(());
        }
        if path::is_same_or_descendant(src, dst) {
            return Err(Errno::EINVAL);
        }
        let (sparent, sname) = c.resolve_parent(src)?;
        let src_ino = c.lookup(sparent, sname)?.ok_or(Errno::ENOENT)?;
        let (dparent, dname) = c.resolve_parent(dst)?;
        let src_inode = c.inode(src_ino)?;
        let src_is_dir = src_inode.ftype == FT_DIR;
        if let Some(dst_ino) = c.lookup(dparent, dname)? {
            if dst_ino == src_ino {
                return Ok(());
            }
            let dst_is_dir = c.inode(dst_ino)?.ftype == FT_DIR;
            match (src_is_dir, dst_is_dir) {
                (true, false) => return Err(Errno::ENOTDIR),
                (false, true) => return Err(Errno::EISDIR),
                (true, true) => {
                    if !c.read_dir(dst_ino)?.is_empty() {
                        return Err(Errno::ENOTEMPTY);
                    }
                    c.remove_entry(dparent, dname)?;
                    let mut di = c.inode(dst_ino)?;
                    di.nlink = 0;
                    c.put_inode(dst_ino, di);
                    let mut pd = c.inode(dparent)?;
                    pd.nlink -= 1;
                    c.put_inode(dparent, pd);
                    c.maybe_release(dst_ino)?;
                }
                (false, false) => {
                    c.remove_entry(dparent, dname)?;
                    let mut di = c.inode(dst_ino)?;
                    di.nlink -= 1;
                    c.put_inode(dst_ino, di);
                    c.maybe_release(dst_ino)?;
                }
            }
        }
        c.remove_entry(sparent, sname)?;
        c.insert_entry(dparent, dname, src_ino, src_inode.ftype)?;
        if src_is_dir && sparent != dparent {
            let mut sp = c.inode(sparent)?;
            sp.nlink -= 1;
            c.put_inode(sparent, sp);
            let mut dp = c.inode(dparent)?;
            dp.nlink += 1;
            c.put_inode(dparent, dp);
        }
        let now = c.now();
        let mut si = c.inode(src_ino)?;
        si.ctime = now;
        c.put_inode(src_ino, si);
        Ok(())
    }

    fn link(&mut self, existing: &str, new: &str) -> VfsResult<()> {
        let mut c = self.core()?;
        let src_ino = c.resolve(existing)?;
        let src_inode = c.inode(src_ino)?;
        if src_inode.ftype == FT_DIR {
            return Err(Errno::EPERM);
        }
        if src_inode.nlink >= MAX_NLINK {
            return Err(Errno::EMLINK);
        }
        let (parent, name) = c.resolve_parent(new)?;
        if c.lookup(parent, name)?.is_some() {
            return Err(Errno::EEXIST);
        }
        c.insert_entry(parent, name, src_ino, src_inode.ftype)?;
        let now = c.now();
        let mut si = c.inode(src_ino)?;
        si.nlink += 1;
        si.ctime = now;
        c.put_inode(src_ino, si);
        Ok(())
    }

    fn symlink(&mut self, target: &str, linkpath: &str) -> VfsResult<()> {
        let mut c = self.core()?;
        if target.is_empty() || target.len() > path::PATH_MAX {
            return Err(Errno::EINVAL);
        }
        let (parent, name) = c.resolve_parent(linkpath)?;
        if c.lookup(parent, name)?.is_some() {
            return Err(Errno::EEXIST);
        }
        let inode = c.new_inode(FT_SYMLINK, FileMode::new(0o777));
        let ino = c.alloc_inode(inode)?;
        if let Err(e) = c
            .write_file(ino, 0, target.as_bytes())
            .and_then(|()| c.insert_entry(parent, name, ino, FT_SYMLINK))
        {
            c.file_truncate(ino, 0)?;
            c.free_inode(ino);
            return Err(e);
        }
        Ok(())
    }

    fn readlink(&mut self, p: &str) -> VfsResult<String> {
        let mut c = self.core()?;
        let ino = c.resolve(p)?;
        let inode = c.inode(ino)?;
        if inode.ftype != FT_SYMLINK {
            return Err(Errno::EINVAL);
        }
        let mut buf = vec![0u8; inode.size as usize];
        c.read_file(ino, 0, &mut buf)?;
        String::from_utf8(buf).map_err(|_| Errno::EIO)
    }

    fn access(&mut self, p: &str, mode: AccessMode) -> VfsResult<()> {
        let mut c = self.core()?;
        let ino = c.resolve(p)?;
        let bits = FileMode::new(c.inode(ino)?.mode);
        if (mode.read && !bits.owner_read())
            || (mode.write && !bits.owner_write())
            || (mode.exec && !bits.owner_exec())
        {
            return Err(Errno::EACCES);
        }
        Ok(())
    }

    fn setxattr(&mut self, p: &str, name: &str, value: &[u8], flags: XattrFlags) -> VfsResult<()> {
        if name.is_empty() || name.len() > 255 || name.contains('\0') {
            return Err(Errno::EINVAL);
        }
        let mut c = self.core()?;
        let ino = c.resolve(p)?;
        let mut xattrs = c.read_xattrs(ino)?;
        let exists = xattrs.contains_key(name);
        match flags {
            XattrFlags::Create if exists => return Err(Errno::EEXIST),
            XattrFlags::Replace if !exists => return Err(Errno::ENODATA),
            _ => {}
        }
        xattrs.insert(name.to_string(), value.to_vec());
        c.write_xattrs(ino, &xattrs)?;
        let now = c.now();
        let mut inode = c.inode(ino)?;
        inode.ctime = now;
        c.put_inode(ino, inode);
        Ok(())
    }

    fn getxattr(&mut self, p: &str, name: &str) -> VfsResult<Vec<u8>> {
        let mut c = self.core()?;
        let ino = c.resolve(p)?;
        c.read_xattrs(ino)?.remove(name).ok_or(Errno::ENODATA)
    }

    fn listxattr(&mut self, p: &str) -> VfsResult<Vec<String>> {
        let mut c = self.core()?;
        let ino = c.resolve(p)?;
        Ok(c.read_xattrs(ino)?.into_keys().collect())
    }

    fn removexattr(&mut self, p: &str, name: &str) -> VfsResult<()> {
        let mut c = self.core()?;
        let ino = c.resolve(p)?;
        let mut xattrs = c.read_xattrs(ino)?;
        if xattrs.remove(name).is_none() {
            return Err(Errno::ENODATA);
        }
        c.write_xattrs(ino, &xattrs)
    }

    fn supports_fsck(&self) -> bool {
        true
    }

    fn fsck(&mut self) -> VfsResult<RepairReport> {
        self.fsck_with(&FsckOptions::serial())
    }
}

impl<D: BlockDevice> DeviceBacked for ExtFs<D> {
    fn snapshot_device(&mut self) -> VfsResult<blockdev::DeviceSnapshot> {
        self.dev.snapshot().map_err(|_| Errno::EIO)
    }

    fn restore_device(&mut self, snapshot: &blockdev::DeviceSnapshot) -> VfsResult<()> {
        self.dev.restore(snapshot).map_err(|_| Errno::EIO)
    }

    fn device_size_bytes(&self) -> u64 {
        self.dev.size_bytes()
    }

    fn crash_reboot(&mut self) -> VfsResult<()> {
        // Power fails: in-memory state (dirty inodes, buffers, fd table) is
        // gone without a sync, the device drops its volatile cache, and the
        // journal (if any) replays on the next mount.
        self.m = None;
        self.dev.power_cut().map_err(|_| Errno::EIO)?;
        self.mount()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockdev::RamDisk;

    fn ext2() -> ExtFs<RamDisk> {
        let mut fs = crate::ext2_on_ram(256 * 1024).unwrap();
        fs.mount().unwrap();
        fs
    }

    fn ext4() -> ExtFs<RamDisk> {
        let mut fs = crate::ext4_on_ram(256 * 1024).unwrap();
        fs.mount().unwrap();
        fs
    }

    fn write_file<D: BlockDevice>(fs: &mut ExtFs<D>, p: &str, data: &[u8]) {
        let fd = fs.create(p, FileMode::REG_DEFAULT).unwrap();
        fs.write(fd, data).unwrap();
        fs.close(fd).unwrap();
    }

    fn read_file<D: BlockDevice>(fs: &mut ExtFs<D>, p: &str) -> Vec<u8> {
        let fd = fs
            .open(p, OpenFlags::read_only(), FileMode::REG_DEFAULT)
            .unwrap();
        let size = fs.stat(p).unwrap().size as usize;
        let mut buf = vec![0; size + 8];
        let n = fs.read(fd, &mut buf).unwrap();
        fs.close(fd).unwrap();
        buf.truncate(n);
        buf
    }

    #[test]
    fn format_and_mount_both_variants() {
        let mut e2 = ext2();
        let mut e4 = ext4();
        assert_eq!(e2.fs_name(), "ext2");
        assert_eq!(e4.fs_name(), "ext4");
        // ext4 has lost+found, ext2 does not (paper §3.4 special folders).
        let names4: Vec<_> = e4
            .getdents("/")
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names4, vec!["lost+found"]);
        assert!(e2.getdents("/").unwrap().is_empty());
    }

    #[test]
    fn data_persists_across_remount() {
        let mut fs = ext4();
        write_file(&mut fs, "/f", b"durable data");
        fs.mkdir("/d", FileMode::DIR_DEFAULT).unwrap();
        write_file(&mut fs, "/d/nested", &[7u8; 3000]);
        fs.unmount().unwrap();
        fs.mount().unwrap();
        assert_eq!(read_file(&mut fs, "/f"), b"durable data");
        assert_eq!(read_file(&mut fs, "/d/nested"), vec![7u8; 3000]);
        let st = fs.stat("/d/nested").unwrap();
        assert_eq!(st.nlink, 1);
    }

    #[test]
    fn directory_sizes_are_block_multiples() {
        let mut fs = ext2();
        fs.mkdir("/d", FileMode::DIR_DEFAULT).unwrap();
        let st = fs.stat("/d").unwrap();
        assert_eq!(st.size % 1024, 0);
        assert!(st.size >= 1024);
        write_file(&mut fs, "/d/x", b"");
        assert_eq!(fs.stat("/d").unwrap().size % 1024, 0);
    }

    #[test]
    fn large_file_uses_indirect_blocks() {
        // 1 KiB blocks, 12 direct => anything past 12 KiB exercises the
        // indirect path.
        let mut fs = ext2();
        let data: Vec<u8> = (0..40_000u32).map(|i| (i % 251) as u8).collect();
        write_file(&mut fs, "/big", &data);
        assert_eq!(read_file(&mut fs, "/big"), data);
        fs.unmount().unwrap();
        fs.mount().unwrap();
        assert_eq!(read_file(&mut fs, "/big"), data);
        let st = fs.stat("/big").unwrap();
        assert_eq!(st.size, 40_000);
        assert!(st.blocks >= 40_000 / 512);
        // Shrink and verify indirect blocks are reclaimed.
        let free_before = fs.statfs().unwrap().blocks_free;
        fs.truncate("/big", 100).unwrap();
        assert!(fs.statfs().unwrap().blocks_free > free_before + 30);
        assert_eq!(read_file(&mut fs, "/big"), data[..100].to_vec());
    }

    #[test]
    fn sparse_files_read_zeros() {
        let mut fs = ext2();
        let fd = fs.create("/sparse", FileMode::REG_DEFAULT).unwrap();
        fs.lseek(fd, 20_000).unwrap();
        fs.write(fd, b"tail").unwrap();
        fs.close(fd).unwrap();
        let content = read_file(&mut fs, "/sparse");
        assert_eq!(content.len(), 20_004);
        assert!(content[..20_000].iter().all(|&b| b == 0));
        assert_eq!(&content[20_000..], b"tail");
        // Sparse file allocates far fewer blocks than its size.
        let st = fs.stat("/sparse").unwrap();
        assert!(st.blocks < 20);
    }

    #[test]
    fn truncate_shrink_then_extend_zeroes() {
        let mut fs = ext2();
        write_file(&mut fs, "/f", &[0xEE; 2048]);
        fs.truncate("/f", 100).unwrap();
        fs.truncate("/f", 2048).unwrap();
        let content = read_file(&mut fs, "/f");
        assert_eq!(&content[..100], &[0xEE; 100][..]);
        assert!(content[100..].iter().all(|&b| b == 0), "no stale bytes");
    }

    #[test]
    fn enospc_on_data_exhaustion_is_atomic() {
        let mut fs = ext2();
        let free = fs.statfs().unwrap().blocks_free;
        let fd = fs.create("/hog", FileMode::REG_DEFAULT).unwrap();
        // Try to write more than the device holds.
        let huge = vec![1u8; (free as usize + 10) * 1024];
        assert_eq!(fs.write(fd, &huge), Err(Errno::ENOSPC));
        // Nothing was written (all-or-nothing).
        assert_eq!(fs.stat("/hog").unwrap().size, 0);
        // A fitting write still succeeds.
        assert_eq!(fs.write(fd, &vec![1u8; 1024]).unwrap(), 1024);
        fs.close(fd).unwrap();
    }

    #[test]
    fn enospc_on_inode_exhaustion() {
        let mut fs = ext2();
        let mut made = 0;
        loop {
            match fs.create(&format!("/f{made}"), FileMode::REG_DEFAULT) {
                Ok(fd) => {
                    fs.close(fd).unwrap();
                    made += 1;
                }
                Err(Errno::ENOSPC) => break,
                Err(e) => panic!("unexpected {e}"),
            }
            assert!(made < 200, "should run out of inodes");
        }
        assert!(made >= 32);
        fs.unlink("/f0").unwrap();
        let fd = fs.create("/again", FileMode::REG_DEFAULT).unwrap();
        fs.close(fd).unwrap();
    }

    #[test]
    fn journal_replays_after_crash() {
        // Commit a transaction to the journal, "crash" before checkpoint,
        // then mount and verify the metadata arrived.
        let mut fs = ext4();
        write_file(&mut fs, "/precrash", b"x");
        // Simulate the crash path below the FS: sync (which journals), then
        // scribble the dirty flag back and verify a remount replays cleanly.
        fs.sync().unwrap();
        let snap = fs.snapshot_device().unwrap();
        fs.unmount().unwrap();
        // Restore the mid-life image: superblock still marked dirty.
        fs.restore_device(&snap).unwrap();
        fs.mount().unwrap(); // must replay / fsck without error
        assert_eq!(read_file(&mut fs, "/precrash"), b"x");
    }

    #[test]
    fn journal_write_txn_then_mount_replays() {
        let mut fs = ext4();
        write_file(&mut fs, "/f", b"committed");
        fs.sync().unwrap();
        fs.unmount().unwrap();
        // Hand-craft a committed-but-unchecked journal txn that rewrites the
        // file's first data block.
        let cfg = ExtConfig::ext4();
        let dev = fs.device_mut();
        let mut sb_block = vec![0u8; cfg.block_size];
        dev.read_block(0, &mut sb_block).unwrap();
        let mut sb = SuperBlock::decode(&sb_block).unwrap();
        sb.flags |= SB_FLAG_DIRTY;
        sb.encode(&mut sb_block);
        dev.write_block(0, &sb_block).unwrap();
        let target = sb.data_start() + 3;
        journal::write_txn(dev, &sb, 42, &[(target, vec![0x5A; cfg.block_size])]).unwrap();
        fs.mount().unwrap();
        let mut c = fs.core().unwrap();
        assert_eq!(c.read_buf(target).unwrap(), vec![0x5A; 1024]);
    }

    #[test]
    fn cache_incoherency_after_external_restore() {
        // The §3.2 experiment: restore the device image under a mounted file
        // system and watch the stale caches corrupt observations; a remount
        // fixes it.
        let mut fs = ext2();
        fs.sync().unwrap();
        let snap = fs.snapshot_device().unwrap(); // state S0: empty
        write_file(&mut fs, "/after", b"created after snapshot");
        fs.sync().unwrap();
        // External rollback to S0 without telling the FS:
        fs.restore_device(&snap).unwrap();
        // The stale caches still show the file that no longer exists on disk.
        assert!(
            fs.stat("/after").is_ok(),
            "stale cache serves the discarded future"
        );
        // Remount (the paper's workaround) resolves the incoherency.
        // unmount() writes back stale dirty state; that is precisely the
        // corruption the paper saw, so drop caches by remount-without-sync:
        fs.m = None; // simulate the checker discarding in-memory state
        fs.mount().unwrap();
        assert_eq!(fs.stat("/after"), Err(Errno::ENOENT));
    }

    #[test]
    fn rename_link_symlink_xattr_suite() {
        let mut fs = ext4();
        write_file(&mut fs, "/a", b"A");
        fs.rename("/a", "/b").unwrap();
        assert_eq!(read_file(&mut fs, "/b"), b"A");
        fs.link("/b", "/hard").unwrap();
        assert_eq!(fs.stat("/hard").unwrap().nlink, 2);
        assert_eq!(fs.stat("/hard").unwrap().ino, fs.stat("/b").unwrap().ino);
        fs.symlink("/b", "/sym").unwrap();
        assert_eq!(fs.readlink("/sym").unwrap(), "/b");
        assert_eq!(fs.stat("/sym").unwrap().ftype, FileType::Symlink);
        fs.setxattr("/b", "user.k", b"v", XattrFlags::Any).unwrap();
        assert_eq!(fs.getxattr("/b", "user.k").unwrap(), b"v");
        assert_eq!(fs.listxattr("/b").unwrap(), vec!["user.k"]);
        fs.unmount().unwrap();
        fs.mount().unwrap();
        // All of it persists.
        assert_eq!(fs.getxattr("/b", "user.k").unwrap(), b"v");
        assert_eq!(fs.readlink("/sym").unwrap(), "/b");
        assert_eq!(fs.stat("/hard").unwrap().nlink, 2);
        fs.removexattr("/b", "user.k").unwrap();
        assert_eq!(fs.getxattr("/b", "user.k"), Err(Errno::ENODATA));
    }

    #[test]
    fn unlink_frees_space() {
        let mut fs = ext2();
        let before = fs.statfs().unwrap().blocks_free;
        write_file(&mut fs, "/f", &[1u8; 8192]);
        assert!(fs.statfs().unwrap().blocks_free < before);
        fs.unlink("/f").unwrap();
        assert_eq!(fs.statfs().unwrap().blocks_free, before);
    }

    #[test]
    fn getdents_keeps_insertion_order() {
        let mut fs = ext2();
        for name in ["zz", "aa", "mm"] {
            write_file(&mut fs, &format!("/{name}"), b"");
        }
        let names: Vec<_> = fs
            .getdents("/")
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names, vec!["zz", "aa", "mm"], "creation order, not sorted");
    }

    #[test]
    fn mkfs_rejects_bad_geometry() {
        let disk = RamDisk::new(512, 256 * 1024).unwrap();
        assert!(ExtFs::format(disk, ExtConfig::ext2()).is_err()); // bs mismatch
        let tiny = RamDisk::new(1024, 8 * 1024).unwrap();
        assert!(ExtFs::format(tiny, ExtConfig::ext2()).is_err()); // too small
    }

    #[test]
    fn mount_rejects_unformatted_device() {
        let disk = RamDisk::new(1024, 256 * 1024).unwrap();
        let mut fs = ExtFs::open_device(disk, ExtConfig::ext2());
        assert_eq!(fs.mount(), Err(Errno::EIO));
    }

    #[test]
    fn mount_count_increments() {
        let mut fs = ext2();
        fs.unmount().unwrap();
        fs.mount().unwrap();
        fs.unmount().unwrap();
        fs.mount().unwrap();
        let m = fs.m.as_ref().unwrap();
        assert_eq!(m.sb.mount_count, 3);
    }

    #[test]
    fn usable_capacity_differs_between_variants() {
        // Same device size, but the journal steals data blocks from ext4 —
        // the "differing data capacity" false-positive source (paper §3.4).
        let e2 = {
            let mut fs = ext2();
            let s = fs.statfs().unwrap();
            fs.unmount().unwrap();
            s
        };
        let e4 = {
            let mut fs = ext4();
            let s = fs.statfs().unwrap();
            fs.unmount().unwrap();
            s
        };
        assert!(e2.blocks > e4.blocks);
        assert!(e2.blocks_free > e4.blocks_free);
    }
}

#[cfg(test)]
mod deep_tests {
    use super::*;
    use blockdev::RamDisk;

    fn big_ext2() -> ExtFs<RamDisk> {
        // 2 MiB device: room for double-indirect files (> 12 KiB + 256 KiB).
        let cfg = ExtConfig::ext2();
        let disk = RamDisk::new(cfg.block_size, 2 * 1024 * 1024).unwrap();
        let mut fs = ExtFs::format(disk, cfg).unwrap();
        fs.mount().unwrap();
        fs
    }

    #[test]
    fn double_indirect_blocks_roundtrip() {
        let mut fs = big_ext2();
        // 12 direct (12 KiB) + 256 indirect (256 KiB) exhausted at 268 KiB;
        // 400 KiB forces the double-indirect path.
        let data: Vec<u8> = (0..400_000u32).map(|i| (i % 239) as u8).collect();
        let fd = fs.create("/big", FileMode::REG_DEFAULT).unwrap();
        fs.write(fd, &data).unwrap();
        fs.close(fd).unwrap();
        fs.unmount().unwrap();
        fs.mount().unwrap();
        let fd = fs
            .open("/big", OpenFlags::read_only(), FileMode::REG_DEFAULT)
            .unwrap();
        let mut buf = vec![0u8; data.len()];
        let mut read = 0;
        while read < buf.len() {
            let n = fs.read(fd, &mut buf[read..]).unwrap();
            assert!(n > 0);
            read += n;
        }
        fs.close(fd).unwrap();
        assert_eq!(buf, data);
        // Shrinking reclaims the double-indirect tree.
        let free_before = fs.statfs().unwrap().blocks_free;
        fs.truncate("/big", 0).unwrap();
        assert!(fs.statfs().unwrap().blocks_free > free_before + 390);
    }

    #[test]
    fn random_offset_writes_match_reference_model() {
        let mut fs = big_ext2();
        let fd = fs.create("/rnd", FileMode::REG_DEFAULT).unwrap();
        let mut model = vec![0u8; 0];
        // Deterministic pseudo-random offsets spanning indirect boundaries.
        let mut x = 12345u64;
        for i in 0..40 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let offset = x % 300_000;
            let len = 1 + (x >> 32) % 3000;
            let byte = (i as u8).wrapping_mul(37).wrapping_add(1);
            fs.lseek(fd, offset).unwrap();
            fs.write(fd, &vec![byte; len as usize]).unwrap();
            let end = (offset + len) as usize;
            if end > model.len() {
                model.resize(end, 0);
            }
            model[offset as usize..end].fill(byte);
        }
        fs.close(fd).unwrap();
        assert_eq!(fs.stat("/rnd").unwrap().size, model.len() as u64);
        let fd = fs
            .open("/rnd", OpenFlags::read_only(), FileMode::REG_DEFAULT)
            .unwrap();
        let mut got = vec![0u8; model.len()];
        let mut read = 0;
        while read < got.len() {
            let n = fs.read(fd, &mut got[read..]).unwrap();
            assert!(n > 0);
            read += n;
        }
        fs.close(fd).unwrap();
        assert_eq!(got, model, "sparse random writes must match the model");
    }

    #[test]
    fn many_files_in_nested_directories() {
        let mut fs = big_ext2();
        for d in 0..5 {
            fs.mkdir(&format!("/d{d}"), FileMode::DIR_DEFAULT).unwrap();
            for f in 0..8 {
                let path = format!("/d{d}/f{f}");
                let fd = fs.create(&path, FileMode::REG_DEFAULT).unwrap();
                fs.write(fd, path.as_bytes()).unwrap();
                fs.close(fd).unwrap();
            }
        }
        fs.unmount().unwrap();
        fs.mount().unwrap();
        for d in 0..5 {
            assert_eq!(fs.getdents(&format!("/d{d}")).unwrap().len(), 8);
            for f in 0..8 {
                let path = format!("/d{d}/f{f}");
                assert_eq!(fs.stat(&path).unwrap().size, path.len() as u64);
            }
        }
        // Tear it all down; space returns.
        let free_mid = fs.statfs().unwrap().blocks_free;
        for d in 0..5 {
            for f in 0..8 {
                fs.unlink(&format!("/d{d}/f{f}")).unwrap();
            }
            fs.rmdir(&format!("/d{d}")).unwrap();
        }
        assert!(fs.statfs().unwrap().blocks_free > free_mid);
        assert!(fs.getdents("/").unwrap().is_empty());
    }

    #[test]
    fn rename_replace_reclaims_target_blocks() {
        let mut fs = big_ext2();
        let fd = fs.create("/small", FileMode::REG_DEFAULT).unwrap();
        fs.write(fd, b"tiny").unwrap();
        fs.close(fd).unwrap();
        let fd = fs.create("/bulky", FileMode::REG_DEFAULT).unwrap();
        fs.write(fd, &vec![9u8; 50_000]).unwrap();
        fs.close(fd).unwrap();
        let free_before = fs.statfs().unwrap().blocks_free;
        fs.rename("/small", "/bulky").unwrap();
        assert!(
            fs.statfs().unwrap().blocks_free > free_before + 40,
            "replaced file's blocks must be freed"
        );
        let fd = fs
            .open("/bulky", OpenFlags::read_only(), FileMode::REG_DEFAULT)
            .unwrap();
        let mut buf = [0u8; 8];
        let n = fs.read(fd, &mut buf).unwrap();
        fs.close(fd).unwrap();
        assert_eq!(&buf[..n], b"tiny");
    }
}
