//! The ext4-style write-ahead journal.
//!
//! Metadata updates are first written to the journal area (a header listing
//! home locations, the block images, then a commit record), flushed, then
//! checkpointed to their home locations, after which the header is cleared.
//! Mount replays any committed-but-not-checkpointed transaction, giving the
//! ext4 variant crash consistency — and the extra per-sync I/O that makes it
//! measurably slower than ext2 in the benchmarks.

use blockdev::BlockDevice;
use vfs::{Errno, VfsResult};

use crate::layout::SuperBlock;

const JRN_MAGIC: u32 = 0x4A52_4E31; // "JRN1"
const COMMIT_MAGIC: u32 = 0x434D_5431; // "CMT1"

/// FNV-1a over the home list and journaled images, stored in the commit
/// record. A commit is only valid if the images it covers landed intact:
/// without this, a torn image write followed by the (separately written,
/// intact) commit block replays garbage into the home location.
fn txn_checksum(blocks: &[(u32, Vec<u8>)]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |byte: u8| {
        h ^= byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for (home, image) in blocks {
        for b in home.to_le_bytes() {
            eat(b);
        }
        for &b in image {
            eat(b);
        }
    }
    h
}

fn io<T>(r: Result<T, blockdev::DeviceError>) -> VfsResult<T> {
    r.map_err(|_| Errno::EIO)
}

fn read_block<D: BlockDevice>(dev: &mut D, blk: u32) -> VfsResult<Vec<u8>> {
    let mut buf = vec![0u8; dev.block_size()];
    io(dev.read_block(blk as u64, &mut buf))?;
    Ok(buf)
}

fn write_block<D: BlockDevice>(dev: &mut D, blk: u32, data: &[u8]) -> VfsResult<()> {
    io(dev.write_block(blk as u64, data))
}

/// Maximum blocks one transaction can carry.
pub fn txn_capacity(sb: &SuperBlock) -> usize {
    let header_slots = (sb.block_size as usize - 12) / 4;
    let area = sb.journal_blocks.saturating_sub(2) as usize;
    header_slots.min(area)
}

/// Writes the journal records and the commit block for one transaction
/// (everything needed to survive a crash), without checkpointing.
///
/// # Errors
///
/// `EINVAL` if the transaction exceeds [`txn_capacity`]; `EIO` on device
/// failure.
pub fn write_txn<D: BlockDevice>(
    dev: &mut D,
    sb: &SuperBlock,
    txn_id: u32,
    blocks: &[(u32, Vec<u8>)],
) -> VfsResult<()> {
    if blocks.len() > txn_capacity(sb) {
        return Err(Errno::EINVAL);
    }
    let bs = sb.block_size as usize;
    let jstart = sb.journal_start();
    // Header block: magic, txn, count, home list.
    let mut header = vec![0u8; bs];
    header[0..4].copy_from_slice(&JRN_MAGIC.to_le_bytes());
    header[4..8].copy_from_slice(&txn_id.to_le_bytes());
    header[8..12].copy_from_slice(&(blocks.len() as u32).to_le_bytes());
    for (i, (home, _)) in blocks.iter().enumerate() {
        header[12 + i * 4..16 + i * 4].copy_from_slice(&home.to_le_bytes());
    }
    write_block(dev, jstart, &header)?;
    for (i, (_, image)) in blocks.iter().enumerate() {
        write_block(dev, jstart + 1 + i as u32, image)?;
    }
    let mut commit = vec![0u8; bs];
    commit[0..4].copy_from_slice(&COMMIT_MAGIC.to_le_bytes());
    commit[4..8].copy_from_slice(&txn_id.to_le_bytes());
    commit[8..16].copy_from_slice(&txn_checksum(blocks).to_le_bytes());
    write_block(dev, jstart + 1 + blocks.len() as u32, &commit)?;
    io(dev.flush())
}

/// Checkpoints a transaction's blocks to their home locations.
///
/// # Errors
///
/// `EIO` on device failure.
pub fn apply_home<D: BlockDevice>(dev: &mut D, blocks: &[(u32, Vec<u8>)]) -> VfsResult<()> {
    for (home, image) in blocks {
        write_block(dev, *home, image)?;
    }
    io(dev.flush())
}

/// Clears the journal header so the transaction will not be replayed.
///
/// # Errors
///
/// `EIO` on device failure.
pub fn clear_header<D: BlockDevice>(dev: &mut D, sb: &SuperBlock) -> VfsResult<()> {
    let zero = vec![0u8; sb.block_size as usize];
    write_block(dev, sb.journal_start(), &zero)?;
    io(dev.flush())
}

/// Full commit: journal, checkpoint, clear. Transactions larger than
/// [`txn_capacity`] are split into multiple journal rounds.
///
/// # Errors
///
/// `EINVAL` if the journal area is too small to hold even one block; `EIO`
/// on device failure.
pub fn commit<D: BlockDevice>(
    dev: &mut D,
    sb: &SuperBlock,
    txn_id: u32,
    blocks: &[(u32, Vec<u8>)],
) -> VfsResult<()> {
    let cap = txn_capacity(sb);
    if cap == 0 {
        return Err(Errno::EINVAL);
    }
    for (round, chunk) in blocks.chunks(cap).enumerate() {
        write_txn(dev, sb, txn_id.wrapping_add(round as u32), chunk)?;
        apply_home(dev, chunk)?;
        clear_header(dev, sb)?;
    }
    Ok(())
}

/// Replays a committed-but-unchecked transaction at mount time.
///
/// Returns the number of blocks replayed (0 if the journal is clean or the
/// transaction never committed).
///
/// # Errors
///
/// `EIO` on device failure.
pub fn replay<D: BlockDevice>(dev: &mut D, sb: &SuperBlock) -> VfsResult<u32> {
    if sb.journal_blocks < 3 {
        return Ok(0);
    }
    let jstart = sb.journal_start();
    let header = read_block(dev, jstart)?;
    let word = |b: &[u8], i: usize| u32::from_le_bytes([b[i], b[i + 1], b[i + 2], b[i + 3]]);
    if word(&header, 0) != JRN_MAGIC {
        return Ok(0);
    }
    let txn = word(&header, 4);
    let count = word(&header, 8);
    if count as usize > txn_capacity(sb) {
        // Corrupt header: discard.
        clear_header(dev, sb)?;
        return Ok(0);
    }
    let commit = read_block(dev, jstart + 1 + count)?;
    if word(&commit, 0) != COMMIT_MAGIC || word(&commit, 4) != txn {
        // Uncommitted transaction: discard (the pre-txn state is intact).
        clear_header(dev, sb)?;
        return Ok(0);
    }
    // Read every image and verify the commit checksum BEFORE touching any
    // home block: a torn journal image with an intact commit record must be
    // discarded whole, never half-applied.
    let mut blocks = Vec::with_capacity(count as usize);
    for i in 0..count {
        let home = word(&header, 12 + i as usize * 4);
        let image = read_block(dev, jstart + 1 + i)?;
        blocks.push((home, image));
    }
    let stored = u64::from_le_bytes(commit[8..16].try_into().expect("8 bytes"));
    if stored != txn_checksum(&blocks) {
        clear_header(dev, sb)?;
        return Ok(0);
    }
    for (home, image) in &blocks {
        write_block(dev, *home, image)?;
    }
    clear_header(dev, sb)?;
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::EXT_MAGIC;
    use blockdev::RamDisk;

    fn setup() -> (RamDisk, SuperBlock) {
        let dev = RamDisk::new(256, 64 * 256).unwrap();
        let sb = SuperBlock {
            magic: EXT_MAGIC,
            block_size: 256,
            blocks_count: 64,
            inodes_count: 16,
            free_blocks: 10,
            free_inodes: 10,
            journal_blocks: 8,
            flags: 0,
            mount_count: 0,
        };
        (dev, sb)
    }

    #[test]
    fn commit_writes_home_blocks() {
        let (mut dev, sb) = setup();
        let target = sb.data_start();
        let image = vec![0xABu8; 256];
        commit(&mut dev, &sb, 1, &[(target, image.clone())]).unwrap();
        assert_eq!(read_block(&mut dev, target).unwrap(), image);
        // Journal header cleared afterwards.
        assert_eq!(replay(&mut dev, &sb).unwrap(), 0);
    }

    #[test]
    fn replay_recovers_committed_txn() {
        let (mut dev, sb) = setup();
        let target = sb.data_start() + 1;
        let image = vec![0x77u8; 256];
        // Crash after commit record but before checkpoint:
        write_txn(&mut dev, &sb, 9, &[(target, image.clone())]).unwrap();
        assert_ne!(read_block(&mut dev, target).unwrap(), image);
        assert_eq!(replay(&mut dev, &sb).unwrap(), 1);
        assert_eq!(read_block(&mut dev, target).unwrap(), image);
        // Second replay is a no-op.
        assert_eq!(replay(&mut dev, &sb).unwrap(), 0);
    }

    #[test]
    fn uncommitted_txn_is_discarded() {
        let (mut dev, sb) = setup();
        let target = sb.data_start() + 2;
        // Write header + images but no commit record (crash mid-journal):
        // emulate by writing a txn then stomping the commit block.
        write_txn(&mut dev, &sb, 5, &[(target, vec![1u8; 256])]).unwrap();
        let zero = vec![0u8; 256];
        dev.write_block((sb.journal_start() + 2) as u64, &zero)
            .unwrap();
        assert_eq!(replay(&mut dev, &sb).unwrap(), 0);
        assert_eq!(read_block(&mut dev, target).unwrap(), zero);
    }

    #[test]
    fn torn_journal_image_with_intact_commit_is_discarded() {
        let (mut dev, sb) = setup();
        let target = sb.data_start() + 3;
        let before = read_block(&mut dev, target).unwrap();
        let image = vec![0x55u8; 256];
        write_txn(&mut dev, &sb, 7, &[(target, image)]).unwrap();
        // Tear the journaled image (the commit record stays intact): only
        // the first 16 bytes of the image block survived the power cut.
        let mut torn = read_block(&mut dev, sb.journal_start() + 1).unwrap();
        for b in torn.iter_mut().skip(16) {
            *b = 0xEE;
        }
        dev.write_block((sb.journal_start() + 1) as u64, &torn)
            .unwrap();
        // The checksum must reject the transaction whole; the home block
        // keeps its pre-txn content.
        assert_eq!(replay(&mut dev, &sb).unwrap(), 0);
        assert_eq!(read_block(&mut dev, target).unwrap(), before);
        // And the journal is clean afterwards (no replay loop).
        assert_eq!(replay(&mut dev, &sb).unwrap(), 0);
    }

    #[test]
    fn oversized_txn_is_chunked() {
        let (mut dev, sb) = setup();
        let cap = txn_capacity(&sb);
        assert_eq!(cap, 6);
        // 10 blocks > capacity: commit() must chunk.
        let blocks: Vec<(u32, Vec<u8>)> = (0..10)
            .map(|i| (sb.data_start() + i, vec![i as u8 + 1; 256]))
            .collect();
        commit(&mut dev, &sb, 1, &blocks).unwrap();
        for (home, image) in &blocks {
            assert_eq!(&read_block(&mut dev, *home).unwrap(), image);
        }
        // write_txn itself rejects oversize.
        assert_eq!(write_txn(&mut dev, &sb, 2, &blocks), Err(Errno::EINVAL));
    }

    #[test]
    fn no_journal_area_means_no_replay() {
        let (mut dev, mut sb) = setup();
        sb.journal_blocks = 0;
        assert_eq!(replay(&mut dev, &sb).unwrap(), 0);
    }
}
