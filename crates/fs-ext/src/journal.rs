//! The ext4-style write-ahead journal.
//!
//! Metadata updates are first written to the journal area (a header listing
//! home locations, the block images, then a commit record), flushed, then
//! checkpointed to their home locations, after which the header is cleared.
//! Mount replays any committed-but-not-checkpointed transaction, giving the
//! ext4 variant crash consistency — and the extra per-sync I/O that makes it
//! measurably slower than ext2 in the benchmarks.

use blockdev::BlockDevice;
use vfs::{Errno, VfsResult};

use crate::layout::SuperBlock;

const JRN_MAGIC: u32 = 0x4A52_4E31; // "JRN1"
const COMMIT_MAGIC: u32 = 0x434D_5431; // "CMT1"

/// FNV-1a over the home list and journaled images, stored in the commit
/// record. A commit is only valid if the images it covers landed intact:
/// without this, a torn image write followed by the (separately written,
/// intact) commit block replays garbage into the home location.
fn txn_checksum(blocks: &[(u32, Vec<u8>)]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |byte: u8| {
        h ^= byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for (home, image) in blocks {
        for b in home.to_le_bytes() {
            eat(b);
        }
        for &b in image {
            eat(b);
        }
    }
    h
}

fn io<T>(r: Result<T, blockdev::DeviceError>) -> VfsResult<T> {
    r.map_err(|_| Errno::EIO)
}

fn read_block<D: BlockDevice>(dev: &mut D, blk: u32) -> VfsResult<Vec<u8>> {
    let mut buf = vec![0u8; dev.block_size()];
    io(dev.read_block(blk as u64, &mut buf))?;
    Ok(buf)
}

fn write_block<D: BlockDevice>(dev: &mut D, blk: u32, data: &[u8]) -> VfsResult<()> {
    io(dev.write_block(blk as u64, data))
}

/// Home-location slots one segment header can list.
fn header_slots(sb: &SuperBlock) -> usize {
    (sb.block_size as usize).saturating_sub(12) / 4
}

/// Maximum blocks one transaction can carry.
///
/// A transaction is a chain of segments (one header block listing up to
/// [`header_slots`] home locations, followed by that many images) ending in
/// a single commit block, all of which must fit in the journal area.
pub fn txn_capacity(sb: &SuperBlock) -> usize {
    let slots = header_slots(sb);
    if slots == 0 {
        return 0;
    }
    // One block is reserved for the commit record; the rest packs full
    // segments of (1 header + `slots` images), plus one partial segment.
    let area = (sb.journal_blocks as usize).saturating_sub(1);
    let full = area / (slots + 1);
    full * slots + (area % (slots + 1)).saturating_sub(1)
}

/// Journal blocks a transaction of `n` images occupies (headers + images +
/// the commit block).
fn txn_extent(sb: &SuperBlock, n: usize) -> usize {
    n + n.div_ceil(header_slots(sb).max(1)) + 1
}

/// Writes the journal records and the commit block for one transaction
/// (everything needed to survive a crash), without checkpointing.
///
/// Transactions larger than one header can describe are laid out as a chain
/// of consecutive segments; the single commit block at the end of the chain
/// covers the whole transaction, so a crash anywhere before it leaves the
/// transaction unreplayable as a unit — never partially.
///
/// # Errors
///
/// `EINVAL` if the transaction exceeds [`txn_capacity`]; `EIO` on device
/// failure.
pub fn write_txn<D: BlockDevice>(
    dev: &mut D,
    sb: &SuperBlock,
    txn_id: u32,
    blocks: &[(u32, Vec<u8>)],
) -> VfsResult<()> {
    let bs = sb.block_size as usize;
    let slots = header_slots(sb);
    if slots == 0 || txn_extent(sb, blocks.len()) > sb.journal_blocks as usize {
        return Err(Errno::EINVAL);
    }
    let mut pos = sb.journal_start();
    for chunk in blocks.chunks(slots) {
        // Segment header: magic, txn, count, home list.
        let mut header = vec![0u8; bs];
        header[0..4].copy_from_slice(&JRN_MAGIC.to_le_bytes());
        header[4..8].copy_from_slice(&txn_id.to_le_bytes());
        header[8..12].copy_from_slice(&(chunk.len() as u32).to_le_bytes());
        for (i, (home, _)) in chunk.iter().enumerate() {
            header[12 + i * 4..16 + i * 4].copy_from_slice(&home.to_le_bytes());
        }
        write_block(dev, pos, &header)?;
        for (i, (_, image)) in chunk.iter().enumerate() {
            write_block(dev, pos + 1 + i as u32, image)?;
        }
        pos += 1 + chunk.len() as u32;
    }
    let mut commit = vec![0u8; bs];
    commit[0..4].copy_from_slice(&COMMIT_MAGIC.to_le_bytes());
    commit[4..8].copy_from_slice(&txn_id.to_le_bytes());
    commit[8..16].copy_from_slice(&txn_checksum(blocks).to_le_bytes());
    write_block(dev, pos, &commit)?;
    io(dev.flush())
}

/// Checkpoints a transaction's blocks to their home locations.
///
/// # Errors
///
/// `EIO` on device failure.
pub fn apply_home<D: BlockDevice>(dev: &mut D, blocks: &[(u32, Vec<u8>)]) -> VfsResult<()> {
    for (home, image) in blocks {
        write_block(dev, *home, image)?;
    }
    io(dev.flush())
}

/// Clears the journal header so the transaction will not be replayed.
///
/// # Errors
///
/// `EIO` on device failure.
pub fn clear_header<D: BlockDevice>(dev: &mut D, sb: &SuperBlock) -> VfsResult<()> {
    let zero = vec![0u8; sb.block_size as usize];
    write_block(dev, sb.journal_start(), &zero)?;
    io(dev.flush())
}

/// Full commit: journal, checkpoint, clear — one atomic transaction.
///
/// The entire block set is journaled (as a segment chain, if it exceeds one
/// header) and flushed *before* any home location is touched, so a crash at
/// any point leaves the transaction either fully replayable or fully absent.
/// The earlier per-chunk variant applied each journal round to the home
/// locations before journaling the next, which a crash between rounds could
/// tear into a half-applied sync.
///
/// # Errors
///
/// `EINVAL` if the transaction exceeds [`txn_capacity`] (the caller must
/// split it along a consistency boundary itself — silently chunking here
/// would forfeit atomicity); `EIO` on device failure.
pub fn commit<D: BlockDevice>(
    dev: &mut D,
    sb: &SuperBlock,
    txn_id: u32,
    blocks: &[(u32, Vec<u8>)],
) -> VfsResult<()> {
    write_txn(dev, sb, txn_id, blocks)?;
    apply_home(dev, blocks)?;
    clear_header(dev, sb)
}

/// Replays a committed-but-unchecked transaction at mount time.
///
/// Returns the number of blocks replayed (0 if the journal is clean or the
/// transaction never committed).
///
/// # Errors
///
/// `EIO` on device failure.
pub fn replay<D: BlockDevice>(dev: &mut D, sb: &SuperBlock) -> VfsResult<u32> {
    if sb.journal_blocks < 3 {
        return Ok(0);
    }
    let slots = header_slots(sb);
    let jstart = sb.journal_start();
    let jend = jstart + sb.journal_blocks;
    let word = |b: &[u8], i: usize| u32::from_le_bytes([b[i], b[i + 1], b[i + 2], b[i + 3]]);
    let first = read_block(dev, jstart)?;
    if word(&first, 0) != JRN_MAGIC {
        return Ok(0);
    }
    let txn = word(&first, 4);
    // Walk the segment chain, collecting (home, image) pairs, until the
    // commit block. Any structural damage — a stale or zeroed header where
    // a continuation was expected, a count that overruns the journal area —
    // means the chain never fully committed: discard it whole (the pre-txn
    // home blocks are intact, since nothing is checkpointed before commit).
    let mut blocks: Vec<(u32, Vec<u8>)> = Vec::new();
    let mut pos = jstart;
    let commit = loop {
        let seg = if pos == jstart {
            first.clone()
        } else {
            read_block(dev, pos)?
        };
        if word(&seg, 0) == COMMIT_MAGIC {
            break seg;
        }
        let count = word(&seg, 8) as usize;
        if word(&seg, 0) != JRN_MAGIC
            || word(&seg, 4) != txn
            || count == 0
            || count > slots
            || pos + 1 + count as u32 >= jend
        {
            clear_header(dev, sb)?;
            return Ok(0);
        }
        for i in 0..count {
            let home = word(&seg, 12 + i * 4);
            let image = read_block(dev, pos + 1 + i as u32)?;
            blocks.push((home, image));
        }
        pos += 1 + count as u32;
    };
    // Verify the commit record covers this exact chain BEFORE touching any
    // home block: a torn journal image with an intact commit record must be
    // discarded whole, never half-applied.
    let stored = u64::from_le_bytes(commit[8..16].try_into().expect("8 bytes"));
    if word(&commit, 4) != txn || stored != txn_checksum(&blocks) {
        clear_header(dev, sb)?;
        return Ok(0);
    }
    apply_home(dev, &blocks)?;
    clear_header(dev, sb)?;
    Ok(blocks.len() as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::EXT_MAGIC;
    use blockdev::RamDisk;

    fn setup() -> (RamDisk, SuperBlock) {
        let dev = RamDisk::new(256, 64 * 256).unwrap();
        let sb = SuperBlock {
            magic: EXT_MAGIC,
            block_size: 256,
            blocks_count: 64,
            inodes_count: 16,
            free_blocks: 10,
            free_inodes: 10,
            journal_blocks: 8,
            flags: 0,
            mount_count: 0,
        };
        (dev, sb)
    }

    #[test]
    fn commit_writes_home_blocks() {
        let (mut dev, sb) = setup();
        let target = sb.data_start();
        let image = vec![0xABu8; 256];
        commit(&mut dev, &sb, 1, &[(target, image.clone())]).unwrap();
        assert_eq!(read_block(&mut dev, target).unwrap(), image);
        // Journal header cleared afterwards.
        assert_eq!(replay(&mut dev, &sb).unwrap(), 0);
    }

    #[test]
    fn replay_recovers_committed_txn() {
        let (mut dev, sb) = setup();
        let target = sb.data_start() + 1;
        let image = vec![0x77u8; 256];
        // Crash after commit record but before checkpoint:
        write_txn(&mut dev, &sb, 9, &[(target, image.clone())]).unwrap();
        assert_ne!(read_block(&mut dev, target).unwrap(), image);
        assert_eq!(replay(&mut dev, &sb).unwrap(), 1);
        assert_eq!(read_block(&mut dev, target).unwrap(), image);
        // Second replay is a no-op.
        assert_eq!(replay(&mut dev, &sb).unwrap(), 0);
    }

    #[test]
    fn uncommitted_txn_is_discarded() {
        let (mut dev, sb) = setup();
        let target = sb.data_start() + 2;
        // Write header + images but no commit record (crash mid-journal):
        // emulate by writing a txn then stomping the commit block.
        write_txn(&mut dev, &sb, 5, &[(target, vec![1u8; 256])]).unwrap();
        let zero = vec![0u8; 256];
        dev.write_block((sb.journal_start() + 2) as u64, &zero)
            .unwrap();
        assert_eq!(replay(&mut dev, &sb).unwrap(), 0);
        assert_eq!(read_block(&mut dev, target).unwrap(), zero);
    }

    #[test]
    fn torn_journal_image_with_intact_commit_is_discarded() {
        let (mut dev, sb) = setup();
        let target = sb.data_start() + 3;
        let before = read_block(&mut dev, target).unwrap();
        let image = vec![0x55u8; 256];
        write_txn(&mut dev, &sb, 7, &[(target, image)]).unwrap();
        // Tear the journaled image (the commit record stays intact): only
        // the first 16 bytes of the image block survived the power cut.
        let mut torn = read_block(&mut dev, sb.journal_start() + 1).unwrap();
        for b in torn.iter_mut().skip(16) {
            *b = 0xEE;
        }
        dev.write_block((sb.journal_start() + 1) as u64, &torn)
            .unwrap();
        // The checksum must reject the transaction whole; the home block
        // keeps its pre-txn content.
        assert_eq!(replay(&mut dev, &sb).unwrap(), 0);
        assert_eq!(read_block(&mut dev, target).unwrap(), before);
        // And the journal is clean afterwards (no replay loop).
        assert_eq!(replay(&mut dev, &sb).unwrap(), 0);
    }

    #[test]
    fn oversized_txn_is_refused_not_torn() {
        let (mut dev, sb) = setup();
        let cap = txn_capacity(&sb);
        assert_eq!(cap, 6);
        // 10 blocks cannot fit even as a chain (10 images + 1 header + 1
        // commit > 8 journal blocks). Refuse up front: chunking into
        // separately-applied rounds would let a crash tear the transaction.
        let blocks: Vec<(u32, Vec<u8>)> = (0..10)
            .map(|i| (sb.data_start() + i, vec![i as u8 + 1; 256]))
            .collect();
        let before: Vec<Vec<u8>> = blocks
            .iter()
            .map(|(home, _)| read_block(&mut dev, *home).unwrap())
            .collect();
        assert_eq!(commit(&mut dev, &sb, 1, &blocks), Err(Errno::EINVAL));
        assert_eq!(write_txn(&mut dev, &sb, 2, &blocks), Err(Errno::EINVAL));
        // Nothing reached the home locations and the journal stayed clean.
        for ((home, _), old) in blocks.iter().zip(&before) {
            assert_eq!(&read_block(&mut dev, *home).unwrap(), old);
        }
        assert_eq!(replay(&mut dev, &sb).unwrap(), 0);
    }

    /// A superblock whose journal needs multiple segments for ~20 blocks:
    /// 64-byte blocks give 13 header slots, so 20 images chain into two
    /// segments (20 + 2 headers + 1 commit = 23 of 40 journal blocks).
    fn chained_setup() -> (RamDisk, SuperBlock) {
        let dev = RamDisk::new(64, 128 * 64).unwrap();
        let sb = SuperBlock {
            magic: EXT_MAGIC,
            block_size: 64,
            blocks_count: 128,
            inodes_count: 16,
            free_blocks: 10,
            free_inodes: 10,
            journal_blocks: 40,
            flags: 0,
            mount_count: 0,
        };
        (dev, sb)
    }

    fn chained_blocks(sb: &SuperBlock) -> Vec<(u32, Vec<u8>)> {
        (0..20)
            .map(|i| (sb.data_start() + i, vec![i as u8 + 1; 64]))
            .collect()
    }

    #[test]
    fn chained_txn_commits_and_replays_whole() {
        let (mut dev, sb) = chained_setup();
        let blocks = chained_blocks(&sb);
        assert!(blocks.len() > header_slots(&sb));
        assert!(blocks.len() <= txn_capacity(&sb));

        commit(&mut dev, &sb, 3, &blocks).unwrap();
        for (home, image) in &blocks {
            assert_eq!(&read_block(&mut dev, *home).unwrap(), image);
        }
        assert_eq!(replay(&mut dev, &sb).unwrap(), 0);

        // Crash after the commit record but before any checkpoint: replay
        // must recover every block of the multi-segment chain.
        let (mut dev, sb) = chained_setup();
        write_txn(&mut dev, &sb, 4, &blocks).unwrap();
        assert_eq!(replay(&mut dev, &sb).unwrap(), blocks.len() as u32);
        for (home, image) in &blocks {
            assert_eq!(&read_block(&mut dev, *home).unwrap(), image);
        }
    }

    /// The regression for the torn multi-round commit: fail the device at
    /// every possible write boundary inside `commit`, then replay, and
    /// demand the home blocks are all-old or all-new. The old `commit`
    /// checkpointed each journal round before writing the next, so a fault
    /// between rounds left the first round applied and the rest lost.
    #[test]
    fn interrupted_commit_is_all_or_nothing() {
        use blockdev::{FaultKind, FaultPlan, FaultyDevice};

        for boundary in 0u64.. {
            let (mut ram, sb) = chained_setup();
            let blocks = chained_blocks(&sb);
            let old: Vec<Vec<u8>> = blocks
                .iter()
                .map(|(home, _)| read_block(&mut ram, *home).unwrap())
                .collect();
            let mut dev =
                FaultyDevice::new(ram, FaultPlan::eio(FaultKind::Write, boundary, u64::MAX));
            let result = commit(&mut dev, &sb, 7, &blocks);
            let faulted = dev.injected() > 0;
            assert_eq!(result.is_err(), faulted, "boundary {boundary}");

            // Power back on: the device works again and the fs replays.
            dev.set_plan(FaultPlan::none());
            replay(&mut dev, &sb).unwrap();

            let new_count = blocks
                .iter()
                .zip(&old)
                .filter(|((home, image), old_img)| {
                    let now = read_block(&mut dev, *home).unwrap();
                    assert!(
                        now == **image || now == **old_img,
                        "boundary {boundary}: home {home} is neither old nor new"
                    );
                    now == **image && now != **old_img
                })
                .count();
            assert!(
                new_count == 0 || new_count == blocks.len(),
                "boundary {boundary}: commit torn — {new_count} of {} homes updated",
                blocks.len()
            );
            if !faulted {
                // The fault never fired: every boundary has been scanned.
                assert!(new_count == blocks.len());
                break;
            }
        }
    }

    #[test]
    fn no_journal_area_means_no_replay() {
        let (mut dev, mut sb) = setup();
        sb.journal_blocks = 0;
        assert_eq!(replay(&mut dev, &sb).unwrap(), 0);
    }
}
