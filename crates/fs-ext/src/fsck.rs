//! Scan-and-repair fsck for the ext layout.
//!
//! Operates on the raw (unmounted) device image in five passes, e2fsck
//! style:
//!
//! 1. **Superblock & journal** — validate the superblock, replay (or
//!    discard) the write-ahead journal using the commit checksum.
//! 2. **Inode scan** — validate every inode: file type, pointer ranges,
//!    size bounds. This pass is CPU-bound and runs on a worker pool over
//!    inode ranges (pFSCK-style data parallelism); each worker charges its
//!    own virtual time and the pass costs the *maximum* over workers.
//!    A serial sub-pass then walks indirect trees, clearing invalid and
//!    doubly-claimed block pointers (cross-inode state, so serial).
//! 3. **Directory connectivity** — breadth-first walk from the root,
//!    salvaging corrupt directory content and dropping entries that point
//!    at free or mistyped inodes. Unreachable inodes are reconnected into
//!    `lost+found` when the volume has one, otherwise reclaimed.
//! 4. **Link counts** — recompute `nlink` from the surviving directory
//!    entries (worker pool over inode ranges).
//! 5. **Bitmaps & superblock** — rebuild both allocation bitmaps and the
//!    free counters from the surviving inodes, clear the dirty flag, and
//!    write everything back (block writes are deferred to this commit
//!    phase and flushed once, so a mid-repair power cut leaves a state
//!    from which a re-run converges to the same image).
//!
//! Repair never touches reachable user data: fixes are limited to
//! derivable metadata (pointers, link counts, bitmaps, counters) and to
//! data that is already unreachable.

use std::collections::{BTreeSet, HashMap, HashSet};

use blockdev::{BlockDevice, Clock};
use vfs::{Errno, FileMode, RepairReport, VfsResult};

use crate::dir::{self, DirRecord};
use crate::journal;
use crate::layout::{
    bitmap, DiskInode, SuperBlock, FT_DIR, FT_REG, FT_SYMLINK, INODE_SIZE, NDIRECT, SB_FLAG_DIRTY,
};

/// Virtual CPU cost of fully validating one inode (pass 2 worker pool).
const INODE_CHECK_NS: u64 = 6_000;
/// Virtual CPU cost of one link-count comparison (pass 4 worker pool).
const NLINK_CHECK_NS: u64 = 800;
/// Virtual CPU cost of validating one directory entry (pass 3, serial).
const DIRENT_CHECK_NS: u64 = 1_200;

/// Tuning knobs for a repair run.
#[derive(Debug, Clone, Default)]
pub struct FsckOptions {
    /// Worker threads for the parallelizable passes (0 or 1 = serial).
    pub workers: usize,
    /// Virtual clock the CPU cost of the passes accrues on. Device I/O is
    /// charged by the device wrapper itself (if any), not here.
    pub clock: Option<Clock>,
}

impl FsckOptions {
    /// Serial repair with no clock: the [`vfs::FileSystem::fsck`] default.
    pub fn serial() -> Self {
        FsckOptions::default()
    }

    /// Repair with `workers` threads charging `clock`.
    pub fn parallel(workers: usize, clock: Clock) -> Self {
        FsckOptions {
            workers,
            clock: Some(clock),
        }
    }
}

/// Charges `ns` of virtual CPU time, if a clock is attached.
fn charge(opts: &FsckOptions, ns: u64) {
    if let Some(clock) = &opts.clock {
        clock.advance_ns(ns);
    }
}

/// Splits `count` items into per-worker spans and returns the virtual
/// elapsed time of running them on the pool: the maximum per-worker cost.
fn pool_elapsed_ns(count: u64, per_item_ns: u64, workers: usize) -> u64 {
    let workers = workers.max(1) as u64;
    count.div_ceil(workers).saturating_mul(per_item_ns)
}

/// Buffered view of the device: every read is cached, every write is
/// deferred until [`Disk::commit`], which writes dirty blocks in ascending
/// order and flushes once.
struct Disk<'a, D: BlockDevice> {
    dev: &'a mut D,
    bs: usize,
    cache: HashMap<u32, Vec<u8>>,
    dirty: BTreeSet<u32>,
}

impl<'a, D: BlockDevice> Disk<'a, D> {
    fn new(dev: &'a mut D, bs: usize) -> Self {
        Disk {
            dev,
            bs,
            cache: HashMap::new(),
            dirty: BTreeSet::new(),
        }
    }

    fn get(&mut self, blk: u32) -> VfsResult<&Vec<u8>> {
        if !self.cache.contains_key(&blk) {
            let mut buf = vec![0u8; self.bs];
            self.dev
                .read_block(blk as u64, &mut buf)
                .map_err(|_| Errno::EIO)?;
            self.cache.insert(blk, buf);
        }
        Ok(&self.cache[&blk])
    }

    fn put(&mut self, blk: u32, data: Vec<u8>) {
        debug_assert_eq!(data.len(), self.bs);
        self.cache.insert(blk, data);
        self.dirty.insert(blk);
    }

    fn commit(&mut self) -> VfsResult<u64> {
        let mut written = 0;
        for blk in std::mem::take(&mut self.dirty) {
            let data = &self.cache[&blk];
            self.dev
                .write_block(blk as u64, data)
                .map_err(|_| Errno::EIO)?;
            written += 1;
        }
        self.dev.flush().map_err(|_| Errno::EIO)?;
        Ok(written)
    }
}

/// Validates one inode's local fields (CPU only — runs on the pass-2
/// worker pool). Returns human-readable fixes.
fn check_inode(ino: u32, inode: &mut DiskInode, sb: &SuperBlock) -> Vec<String> {
    let mut fixes = Vec::new();
    if !inode.in_use() {
        return fixes;
    }
    if !matches!(inode.ftype, FT_REG | FT_DIR | FT_SYMLINK) {
        *inode = DiskInode::free();
        fixes.push(format!("inode {ino}: invalid file type, cleared"));
        return fixes;
    }
    let lo = sb.data_start();
    let hi = sb.blocks_count;
    let ok = |b: u32| b == 0 || (lo..hi).contains(&b);
    for (i, d) in inode.direct.iter_mut().enumerate() {
        if !ok(*d) {
            *d = 0;
            fixes.push(format!("inode {ino}: direct[{i}] out of range, cleared"));
        }
    }
    if !ok(inode.indirect) {
        inode.indirect = 0;
        fixes.push(format!(
            "inode {ino}: indirect pointer out of range, cleared"
        ));
    }
    if !ok(inode.dindirect) {
        inode.dindirect = 0;
        fixes.push(format!(
            "inode {ino}: double-indirect pointer out of range, cleared"
        ));
    }
    if !ok(inode.xattr_block) {
        inode.xattr_block = 0;
        fixes.push(format!("inode {ino}: xattr pointer out of range, cleared"));
    }
    let p = (sb.block_size / 4) as u64;
    let max_bytes = (NDIRECT as u64 + p + p * p) * sb.block_size as u64;
    if inode.size > max_bytes {
        inode.size = max_bytes;
        fixes.push(format!("inode {ino}: size beyond maximum, clamped"));
    }
    fixes
}

/// Parses as many whole directory records as possible, stopping at the
/// first structural error (instead of rejecting the whole directory the
/// way [`dir::parse`] does). Returns the salvaged prefix and whether
/// anything was dropped.
fn salvage_dir(content: &[u8]) -> (Vec<DirRecord>, bool) {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < content.len() {
        if pos + 6 > content.len() {
            return (out, true);
        }
        let ino = u32::from_le_bytes([
            content[pos],
            content[pos + 1],
            content[pos + 2],
            content[pos + 3],
        ]);
        let ftype = content[pos + 4];
        let name_len = content[pos + 5] as usize;
        if pos + 6 + name_len > content.len() {
            return (out, true);
        }
        let Ok(name) = std::str::from_utf8(&content[pos + 6..pos + 6 + name_len]) else {
            return (out, true);
        };
        out.push(DirRecord {
            ino,
            ftype,
            name: name.to_string(),
        });
        pos += 6 + name_len;
    }
    (out, false)
}

/// The in-memory repair state threaded through the passes.
struct Repair {
    sb: SuperBlock,
    table: Vec<DiskInode>,
    /// Data blocks claimed per inode (file blocks, indirect blocks, xattr
    /// blocks) after pointer validation.
    claims: HashMap<u32, Vec<u32>>,
    /// Final directory contents for every reachable directory, plus a flag
    /// for "must be rewritten".
    dirs: HashMap<u32, (Vec<DirRecord>, bool)>,
    reachable: HashSet<u32>,
    report: RepairReport,
}

impl Repair {
    /// The data blocks holding logical block `i` of `ino`, post-validation
    /// (0 = hole).
    fn bmap<D: BlockDevice>(&self, disk: &mut Disk<'_, D>, ino: u32, i: u64) -> VfsResult<u32> {
        let inode = &self.table[ino as usize];
        let p = (self.sb.block_size / 4) as u64;
        if i < NDIRECT as u64 {
            return Ok(inode.direct[i as usize]);
        }
        let entry_at = |blk: &[u8], idx: u64| {
            let o = idx as usize * 4;
            u32::from_le_bytes([blk[o], blk[o + 1], blk[o + 2], blk[o + 3]])
        };
        let i = i - NDIRECT as u64;
        if i < p {
            if inode.indirect == 0 {
                return Ok(0);
            }
            let blk = disk.get(inode.indirect)?;
            return Ok(entry_at(blk, i));
        }
        let i = i - p;
        if inode.dindirect == 0 {
            return Ok(0);
        }
        let l1 = entry_at(disk.get(inode.dindirect)?, i / p);
        if l1 == 0 {
            return Ok(0);
        }
        let blk = disk.get(l1)?;
        Ok(entry_at(blk, i % p))
    }

    /// Reads the full content of `ino` (holes as zeros).
    fn read_content<D: BlockDevice>(&self, disk: &mut Disk<'_, D>, ino: u32) -> VfsResult<Vec<u8>> {
        let size = self.table[ino as usize].size as usize;
        let bs = self.sb.block_size as usize;
        let mut out = vec![0u8; size];
        for i in 0..size.div_ceil(bs) as u64 {
            let blk = self.bmap(disk, ino, i)?;
            if blk == 0 {
                continue;
            }
            let data = disk.get(blk)?.clone();
            let start = i as usize * bs;
            let end = (start + bs).min(size);
            out[start..end].copy_from_slice(&data[..end - start]);
        }
        Ok(out)
    }
}

/// Records `blk` as owned by `ino`, or reports a double claim and returns
/// false (the caller clears the pointer).
fn claim(
    blk: u32,
    ino: u32,
    what: &str,
    owner: &mut HashMap<u32, u32>,
    claims: &mut Vec<u32>,
    report: &mut RepairReport,
) -> bool {
    if let Some(prev) = owner.get(&blk) {
        report.fixed(format!(
            "inode {ino}: {what} block {blk} already claimed by inode {prev}, cleared"
        ));
        false
    } else {
        owner.insert(blk, ino);
        claims.push(blk);
        true
    }
}

/// Validates the entries of one indirect block, clearing out-of-range or
/// doubly-claimed pointers in place; returns the surviving entries.
fn scrub_indirect<D: BlockDevice>(
    disk: &mut Disk<'_, D>,
    blk: u32,
    ino: u32,
    sb: &SuperBlock,
    owner: &mut HashMap<u32, u32>,
    claims: &mut Vec<u32>,
    report: &mut RepairReport,
) -> VfsResult<Vec<u32>> {
    let (lo, hi) = (sb.data_start(), sb.blocks_count);
    let mut data = disk.get(blk)?.clone();
    let mut changed = false;
    let mut kept = Vec::new();
    for o in (0..data.len()).step_by(4) {
        let e = u32::from_le_bytes([data[o], data[o + 1], data[o + 2], data[o + 3]]);
        if e == 0 {
            continue;
        }
        let invalid = !(lo..hi).contains(&e);
        let duplicate = !invalid && owner.contains_key(&e);
        if invalid || duplicate {
            data[o..o + 4].fill(0);
            changed = true;
            report.fixed(format!(
                "inode {ino}: indirect entry {e} {}, cleared",
                if invalid {
                    "out of range"
                } else {
                    "doubly claimed"
                }
            ));
        } else {
            owner.insert(e, ino);
            claims.push(e);
            kept.push(e);
        }
    }
    if changed {
        disk.put(blk, data);
    }
    Ok(kept)
}

/// Pass 2b (serial): walk indirect trees, clear invalid or doubly-claimed
/// pointers, and record every block each inode claims.
fn claim_blocks<D: BlockDevice>(r: &mut Repair, disk: &mut Disk<'_, D>) -> VfsResult<()> {
    let sb = r.sb;
    let mut owner: HashMap<u32, u32> = HashMap::new();
    for ino in 1..sb.inodes_count {
        if !r.table[ino as usize].in_use() {
            continue;
        }
        let mut claims = Vec::new();
        let mut inode = r.table[ino as usize];
        for d in inode.direct.iter_mut() {
            if *d != 0 && !claim(*d, ino, "data", &mut owner, &mut claims, &mut r.report) {
                *d = 0;
            }
        }
        if inode.indirect != 0 {
            if claim(
                inode.indirect,
                ino,
                "indirect",
                &mut owner,
                &mut claims,
                &mut r.report,
            ) {
                scrub_indirect(
                    disk,
                    inode.indirect,
                    ino,
                    &sb,
                    &mut owner,
                    &mut claims,
                    &mut r.report,
                )?;
            } else {
                inode.indirect = 0;
            }
        }
        if inode.dindirect != 0 {
            if claim(
                inode.dindirect,
                ino,
                "double-indirect",
                &mut owner,
                &mut claims,
                &mut r.report,
            ) {
                let l1s = scrub_indirect(
                    disk,
                    inode.dindirect,
                    ino,
                    &sb,
                    &mut owner,
                    &mut claims,
                    &mut r.report,
                )?;
                for l1 in l1s {
                    scrub_indirect(disk, l1, ino, &sb, &mut owner, &mut claims, &mut r.report)?;
                }
            } else {
                inode.dindirect = 0;
            }
        }
        if inode.xattr_block != 0
            && !claim(
                inode.xattr_block,
                ino,
                "xattr",
                &mut owner,
                &mut claims,
                &mut r.report,
            )
        {
            inode.xattr_block = 0;
        }
        r.table[ino as usize] = inode;
        r.claims.insert(ino, claims);
    }
    Ok(())
}

/// Validates the content of one directory; returns the surviving entries
/// and whether the directory must be rewritten. `claimed_dirs` prevents a
/// directory from acquiring two parents.
fn check_dir_entries(
    ino: u32,
    content: &[u8],
    table: &[DiskInode],
    claimed_dirs: &mut HashSet<u32>,
    report: &mut RepairReport,
) -> (Vec<DirRecord>, bool) {
    let (records, truncated) = salvage_dir(content);
    if truncated {
        report.fixed(format!("directory {ino}: corrupt content, salvaged prefix"));
    }
    let mut seen = HashSet::new();
    let mut kept = Vec::new();
    let mut changed = truncated;
    for rec in records {
        report.items_scanned += 1;
        let target_ok = rec.ino != 0
            && (rec.ino as usize) < table.len()
            && table[rec.ino as usize].in_use()
            && table[rec.ino as usize].ftype == rec.ftype;
        let name_ok = !rec.name.is_empty()
            && rec.name.len() <= u8::MAX as usize
            && !rec.name.contains('/')
            && rec.name != "."
            && rec.name != "..";
        let fresh = name_ok && seen.insert(rec.name.clone());
        let single_parent = rec.ftype != FT_DIR || claimed_dirs.insert(rec.ino);
        if target_ok && fresh && single_parent {
            kept.push(rec);
        } else {
            report.fixed(format!(
                "directory {ino}: dropped entry {:?} -> inode {}",
                rec.name, rec.ino
            ));
            changed = true;
        }
    }
    (kept, changed)
}

/// Pass 3 worklist walk: validates directories reachable from `start` and
/// records their final contents.
fn walk_from<D: BlockDevice>(
    r: &mut Repair,
    disk: &mut Disk<'_, D>,
    claimed_dirs: &mut HashSet<u32>,
    start: u32,
    opts: &FsckOptions,
) -> VfsResult<()> {
    let mut queue = vec![start];
    r.reachable.insert(start);
    while let Some(ino) = queue.pop() {
        if r.table[ino as usize].ftype != FT_DIR || r.dirs.contains_key(&ino) {
            continue;
        }
        let content = r.read_content(disk, ino)?;
        let (kept, changed) =
            check_dir_entries(ino, &content, &r.table, claimed_dirs, &mut r.report);
        charge(opts, kept.len() as u64 * DIRENT_CHECK_NS);
        for rec in &kept {
            r.reachable.insert(rec.ino);
            if rec.ftype == FT_DIR {
                queue.push(rec.ino);
            }
        }
        r.dirs.insert(ino, (kept, changed));
    }
    Ok(())
}

/// Rewrites the content of directory `ino` from its final records, using
/// (and updating) the rebuilt block bitmap for allocation.
fn write_dir<D: BlockDevice>(
    r: &mut Repair,
    disk: &mut Disk<'_, D>,
    bbitmap: &mut [u8],
    ino: u32,
) -> VfsResult<()> {
    let bs = r.sb.block_size as usize;
    let records = r.dirs[&ino].0.clone();
    let content = dir::serialize(&records);
    let needed = content.len().div_ceil(bs);
    let mut inode = r.table[ino as usize];
    let mut blocks: Vec<u32> = inode.direct.iter().copied().filter(|&b| b != 0).collect();
    // Directory contents beyond the direct area are not rebuilt; with the
    // small namespaces this layout supports, `needed` never exceeds NDIRECT.
    let needed = needed.min(NDIRECT);
    while blocks.len() > needed {
        let b = blocks.pop().expect("nonempty");
        bitmap::clear(bbitmap, b);
    }
    while blocks.len() < needed {
        let Some(b) = bitmap::find_zero(bbitmap, r.sb.data_start(), r.sb.blocks_count) else {
            return Err(Errno::ENOSPC);
        };
        bitmap::set(bbitmap, b);
        blocks.push(b);
    }
    for (i, blk) in blocks.iter().enumerate() {
        let mut data = vec![0u8; bs];
        let start = i * bs;
        let end = ((i + 1) * bs).min(content.len());
        if start < content.len() {
            data[..end - start].copy_from_slice(&content[start..end]);
        }
        disk.put(*blk, data);
    }
    inode.direct = [0; NDIRECT];
    for (i, blk) in blocks.iter().enumerate() {
        inode.direct[i] = *blk;
    }
    inode.indirect = 0;
    inode.dindirect = 0;
    inode.size = content.len() as u64;
    inode.blocks = blocks.len() as u32;
    r.table[ino as usize] = inode;
    r.claims.insert(
        ino,
        blocks
            .iter()
            .copied()
            .chain(
                (r.table[ino as usize].xattr_block != 0)
                    .then_some(r.table[ino as usize].xattr_block),
            )
            .collect(),
    );
    Ok(())
}

/// Runs the full scan-and-repair pipeline on an unmounted device.
///
/// # Errors
///
/// `EIO` if the superblock is unreadable/invalid (nothing to anchor a
/// repair on) or the device fails mid-repair.
pub fn repair_device<D: BlockDevice>(dev: &mut D, opts: &FsckOptions) -> VfsResult<RepairReport> {
    let bs = dev.block_size();
    let mut report = RepairReport::default();

    // ---- pass 1: superblock & journal -----------------------------------
    let mut buf = vec![0u8; bs];
    dev.read_block(0, &mut buf).map_err(|_| Errno::EIO)?;
    let sb0 = SuperBlock::decode(&buf)?;
    if sb0.block_size as usize != bs {
        return Err(Errno::EIO);
    }
    if sb0.journal_blocks > 0 {
        let mut jh = vec![0u8; bs];
        dev.read_block(sb0.journal_start() as u64, &mut jh)
            .map_err(|_| Errno::EIO)?;
        let pending = jh[..4] == 0x4A52_4E31u32.to_le_bytes(); // JRN1
        let replayed = journal::replay(dev, &sb0)?;
        if replayed > 0 {
            report.fixed(format!("journal: replayed {replayed} committed blocks"));
        } else if pending {
            report.fixed("journal: discarded uncommitted or corrupt transaction");
        }
    }
    // Replay may have rewritten the superblock; re-read it (geometry fields
    // never change, so the pre-replay copy was safe to steer the replay).
    dev.read_block(0, &mut buf).map_err(|_| Errno::EIO)?;
    let sb = SuperBlock::decode(&buf)?;

    let mut disk = Disk::new(dev, bs);
    let ibitmap_disk = disk.get(1)?.clone();
    let bbitmap_disk = disk.get(2)?.clone();
    let mut table_raw = Vec::with_capacity(sb.inode_table_blocks() as usize * bs);
    for i in 0..sb.inode_table_blocks() {
        table_raw.extend_from_slice(disk.get(sb.inode_table_start() + i)?);
    }
    let mut table: Vec<DiskInode> = (0..sb.inodes_count as usize)
        .map(|i| DiskInode::decode(&table_raw[i * INODE_SIZE..(i + 1) * INODE_SIZE]))
        .collect();

    // ---- pass 2: inode scan (worker pool) -------------------------------
    report.items_scanned += sb.inodes_count as u64 - 1;
    let workers = opts.workers.max(1);
    let chunk = (table.len() - 1).div_ceil(workers);
    // mcfs-lint: allow(MC007, workers own disjoint table chunks and results merge in chunk order)
    let fixes: Vec<Vec<String>> = std::thread::scope(|s| {
        let sb_ref = &sb;
        let handles: Vec<_> = table[1..]
            .chunks_mut(chunk.max(1))
            .enumerate()
            .map(|(w, slice)| {
                s.spawn(move || {
                    let base = 1 + w * chunk.max(1);
                    slice
                        .iter_mut()
                        .enumerate()
                        .flat_map(|(i, inode)| check_inode((base + i) as u32, inode, sb_ref))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fsck worker"))
            .collect()
    });
    charge(
        opts,
        pool_elapsed_ns(sb.inodes_count as u64 - 1, INODE_CHECK_NS, workers),
    );
    for fix in fixes.into_iter().flatten() {
        report.fixed(fix);
    }

    let mut r = Repair {
        sb,
        table,
        claims: HashMap::new(),
        dirs: HashMap::new(),
        reachable: HashSet::new(),
        report,
    };
    claim_blocks(&mut r, &mut disk)?;

    // ---- pass 3: directory connectivity ---------------------------------
    if !r.table[1].in_use() || r.table[1].ftype != FT_DIR {
        r.table[1] = DiskInode::free();
        r.table[1].ftype = FT_DIR;
        r.table[1].mode = FileMode::DIR_DEFAULT.bits();
        r.table[1].nlink = 2;
        r.claims.insert(1, Vec::new());
        r.report.fixed("root inode invalid, recreated empty");
    }
    let mut claimed_dirs = HashSet::new();
    claimed_dirs.insert(1);
    walk_from(&mut r, &mut disk, &mut claimed_dirs, 1, opts)?;

    // Orphans: reconnect into lost+found when the volume has one (and it
    // survived the walk), otherwise reclaim. Reconnected directories make
    // their own subtrees reachable, so walk from each.
    let lost_found = r.dirs.get(&1).and_then(|(recs, _)| {
        dir::find(recs, "lost+found")
            .map(|rec| rec.ino)
            .filter(|&lf| r.table[lf as usize].ftype == FT_DIR && r.reachable.contains(&lf))
    });
    for ino in 2..r.sb.inodes_count {
        if !r.table[ino as usize].in_use() || r.reachable.contains(&ino) {
            continue;
        }
        match lost_found {
            Some(lf) if lf != ino => {
                let ftype = r.table[ino as usize].ftype;
                let entry = r.dirs.get_mut(&lf).expect("lost+found walked");
                entry.0.push(DirRecord {
                    ino,
                    ftype,
                    name: format!("#{ino}"),
                });
                entry.1 = true;
                r.report
                    .fixed(format!("orphan inode {ino} reconnected to lost+found"));
                if ftype == FT_DIR && claimed_dirs.insert(ino) {
                    walk_from(&mut r, &mut disk, &mut claimed_dirs, ino, opts)?;
                } else {
                    r.reachable.insert(ino);
                }
            }
            _ => {
                r.table[ino as usize] = DiskInode::free();
                r.claims.remove(&ino);
                r.report.fixed(format!("orphan inode {ino} reclaimed"));
            }
        }
    }
    // A second sweep: subtrees of dropped directories (or reclaim-mode
    // orphan dirs) may still hold now-unreachable inodes.
    loop {
        let mut changed = false;
        for ino in 2..r.sb.inodes_count {
            if r.table[ino as usize].in_use() && !r.reachable.contains(&ino) {
                r.table[ino as usize] = DiskInode::free();
                r.claims.remove(&ino);
                r.report.fixed(format!("unreachable inode {ino} reclaimed"));
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // ---- pass 4: link counts (worker pool) ------------------------------
    let mut expected: Vec<u16> = vec![0; r.sb.inodes_count as usize];
    expected[1] = 2;
    for (dir_ino, (records, _)) in &r.dirs {
        for rec in records {
            expected[rec.ino as usize] = expected[rec.ino as usize].saturating_add(1);
            if rec.ftype == FT_DIR {
                // A subdirectory's ".." backlink counts toward the parent;
                // its own "." gives it a second link.
                expected[rec.ino as usize] = expected[rec.ino as usize].saturating_add(1);
                expected[*dir_ino as usize] = expected[*dir_ino as usize].saturating_add(1);
            }
        }
    }
    // mcfs-lint: allow(MC007, workers own disjoint table chunks and results merge in chunk order)
    let nlink_fixes: Vec<Vec<String>> = std::thread::scope(|s| {
        let expected = &expected;
        let reachable = &r.reachable;
        r.table[1..]
            .chunks_mut(chunk.max(1))
            .enumerate()
            .map(|(w, slice)| {
                s.spawn(move || {
                    let base = 1 + w * chunk.max(1);
                    let mut fixes = Vec::new();
                    for (i, inode) in slice.iter_mut().enumerate() {
                        let ino = (base + i) as u32;
                        if !inode.in_use() || !reachable.contains(&ino) {
                            continue;
                        }
                        let want = expected[ino as usize];
                        if inode.nlink != want {
                            fixes.push(format!(
                                "inode {ino}: link count {} should be {want}, fixed",
                                inode.nlink
                            ));
                            inode.nlink = want;
                        }
                    }
                    fixes
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("fsck worker"))
            .collect()
    });
    charge(
        opts,
        pool_elapsed_ns(r.sb.inodes_count as u64 - 1, NLINK_CHECK_NS, workers),
    );
    for fix in nlink_fixes.into_iter().flatten() {
        r.report.fixed(fix);
    }

    // ---- pass 5: bitmaps, counters, write-back --------------------------
    let mut ibitmap = vec![0u8; bs];
    let mut bbitmap = vec![0u8; bs];
    bitmap::set(&mut ibitmap, 0);
    for blk in 0..r.sb.data_start() {
        bitmap::set(&mut bbitmap, blk);
    }
    for ino in 1..r.sb.inodes_count {
        if !r.table[ino as usize].in_use() {
            continue;
        }
        bitmap::set(&mut ibitmap, ino);
        for blk in r.claims.get(&ino).into_iter().flatten() {
            bitmap::set(&mut bbitmap, *blk);
        }
    }
    // Rewrite changed directories (allocating from the rebuilt bitmap).
    let rewrite: Vec<u32> = r
        .dirs
        .iter()
        .filter(|(_, (_, changed))| *changed)
        .map(|(ino, _)| *ino)
        .collect();
    for ino in rewrite {
        write_dir(&mut r, &mut disk, &mut bbitmap, ino)?;
    }
    // Recompute per-inode block counts from the final claims.
    for ino in 1..r.sb.inodes_count {
        let inode = &mut r.table[ino as usize];
        if !inode.in_use() {
            continue;
        }
        let meta = [inode.indirect, inode.dindirect, inode.xattr_block];
        let data_blocks = r
            .claims
            .get(&ino)
            .map(|c| c.iter().filter(|b| !meta.contains(b)).count() as u32)
            .unwrap_or(0);
        if inode.blocks != data_blocks {
            inode.blocks = data_blocks;
            r.report.fixed(format!(
                "inode {ino}: block count corrected to {data_blocks}"
            ));
        }
    }
    if ibitmap != ibitmap_disk {
        r.report.fixed("inode bitmap rebuilt");
        disk.put(1, ibitmap.clone());
    }
    if bbitmap != bbitmap_disk {
        r.report.fixed("block bitmap rebuilt");
        disk.put(2, bbitmap.clone());
    }
    let mut sb = r.sb;
    sb.free_blocks =
        sb.data_blocks() - bitmap::count_ones(&bbitmap, sb.data_start(), sb.blocks_count);
    // Bit 0 is the reserved "no inode" sentinel and never counts as used
    // (mount's own recount starts at bit 1 for the same reason).
    sb.free_inodes = sb.inodes_count - bitmap::count_ones(&ibitmap, 1, sb.inodes_count);
    sb.flags &= !SB_FLAG_DIRTY;
    if sb != r.sb {
        // Free-count drift and the dirty flag are normal post-crash state;
        // count one fix only when the counters were actually wrong.
        if sb.free_blocks != r.sb.free_blocks || sb.free_inodes != r.sb.free_inodes {
            r.report.fixed("superblock free counters corrected");
        }
        let mut sb_block = vec![0u8; bs];
        sb.encode(&mut sb_block);
        disk.put(0, sb_block);
    }
    // Inode table write-back: only blocks whose bytes changed.
    let mut new_raw = vec![0u8; table_raw.len()];
    for (i, inode) in r.table.iter().enumerate() {
        inode.encode(&mut new_raw[i * INODE_SIZE..(i + 1) * INODE_SIZE]);
    }
    // Preserve raw bytes of slots past inodes_count (padding) as-is.
    let used = r.sb.inodes_count as usize * INODE_SIZE;
    new_raw[used..].copy_from_slice(&table_raw[used..]);
    for blk in 0..r.sb.inode_table_blocks() {
        let lo = blk as usize * bs;
        let hi = lo + bs;
        if new_raw[lo..hi] != table_raw[lo..hi] {
            disk.put(r.sb.inode_table_start() + blk, new_raw[lo..hi].to_vec());
        }
    }
    disk.commit()?;
    Ok(r.report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExtConfig, ExtFs};
    use blockdev::RamDisk;
    use vfs::{DeviceBacked, FileSystem, OpenFlags};

    fn ext2() -> ExtFs<RamDisk> {
        let mut fs = crate::ext2_on_ram(256 * 1024).unwrap();
        fs.mount().unwrap();
        fs
    }

    fn ext4() -> ExtFs<RamDisk> {
        let mut fs = crate::ext4_on_ram(256 * 1024).unwrap();
        fs.mount().unwrap();
        fs
    }

    fn put(fs: &mut ExtFs<RamDisk>, p: &str, data: &[u8]) {
        let fd = fs.create(p, FileMode::REG_DEFAULT).unwrap();
        fs.write(fd, data).unwrap();
        fs.close(fd).unwrap();
    }

    fn get(fs: &mut ExtFs<RamDisk>, p: &str) -> Vec<u8> {
        let fd = fs
            .open(p, OpenFlags::read_only(), FileMode::REG_DEFAULT)
            .unwrap();
        let size = fs.stat(p).unwrap().size as usize;
        let mut buf = vec![0; size + 8];
        let n = fs.read(fd, &mut buf).unwrap();
        fs.close(fd).unwrap();
        buf.truncate(n);
        buf
    }

    /// Reads the superblock straight off the device.
    fn sb_of(fs: &mut ExtFs<RamDisk>) -> SuperBlock {
        let mut buf = vec![0u8; 1024];
        fs.device_mut().read_block(0, &mut buf).unwrap();
        SuperBlock::decode(&buf).unwrap()
    }

    /// Removes the named entry from the (unmounted) root directory on
    /// disk, orphaning its inode. Returns the orphaned inode number.
    fn drop_root_entry(fs: &mut ExtFs<RamDisk>, name: &str) -> u32 {
        let sb = sb_of(fs);
        let mut tbuf = vec![0u8; 1024];
        fs.device_mut()
            .read_block(sb.inode_table_start() as u64, &mut tbuf)
            .unwrap();
        let root = DiskInode::decode(&tbuf[INODE_SIZE..2 * INODE_SIZE]);
        let root_blk = root.direct[0] as u64;
        let mut buf = vec![0u8; 1024];
        fs.device_mut().read_block(root_blk, &mut buf).unwrap();
        let records = dir::parse(&buf[..root.size as usize]).unwrap();
        let target = dir::find(&records, name).unwrap().ino;
        let kept: Vec<_> = records.into_iter().filter(|r| r.name != name).collect();
        let content = dir::serialize(&kept);
        let mut block = vec![0u8; 1024];
        block[..content.len()].copy_from_slice(&content);
        fs.device_mut().write_block(root_blk, &block).unwrap();
        patch_inode(fs, 1, |inode| inode.size = content.len() as u64);
        target
    }

    /// Patch one inode in the on-disk table with `f`.
    fn patch_inode(fs: &mut ExtFs<RamDisk>, ino: u32, f: impl FnOnce(&mut DiskInode)) {
        let sb = sb_of(fs);
        let per_block = 1024 / INODE_SIZE;
        let blk = (sb.inode_table_start() + ino / per_block as u32) as u64;
        let off = (ino as usize % per_block) * INODE_SIZE;
        let mut buf = vec![0u8; 1024];
        fs.device_mut().read_block(blk, &mut buf).unwrap();
        let mut inode = DiskInode::decode(&buf[off..off + INODE_SIZE]);
        f(&mut inode);
        inode.encode(&mut buf[off..off + INODE_SIZE]);
        fs.device_mut().write_block(blk, &buf).unwrap();
    }

    #[test]
    fn clean_volume_needs_no_repairs() {
        let mut fs = ext4();
        put(&mut fs, "/a", b"data");
        fs.mkdir("/d", FileMode::DIR_DEFAULT).unwrap();
        fs.unmount().unwrap();
        let report = repair_device(fs.device_mut(), &FsckOptions::serial()).unwrap();
        assert!(report.is_clean(), "unexpected fixes: {:?}", report.fixes);
        // And again: fsck is a fixed point on a clean image.
        let again = repair_device(fs.device_mut(), &FsckOptions::serial()).unwrap();
        assert!(again.is_clean());
        fs.mount().unwrap();
        assert_eq!(get(&mut fs, "/a"), b"data");
    }

    #[test]
    fn out_of_range_pointer_is_cleared() {
        let mut fs = ext2();
        put(&mut fs, "/f", &[7u8; 3000]);
        fs.unmount().unwrap();
        patch_inode(&mut fs, 2, |inode| inode.direct[1] = 0xFFFF);
        let report = repair_device(fs.device_mut(), &FsckOptions::serial()).unwrap();
        assert!(report.repairs_made >= 1);
        assert!(report.fixes.iter().any(|f| f.contains("out of range")));
        // Idempotent: a second run finds nothing.
        let again = repair_device(fs.device_mut(), &FsckOptions::serial()).unwrap();
        assert!(again.is_clean(), "second run: {:?}", again.fixes);
        // The file survives with a hole where the bad pointer was.
        fs.mount().unwrap();
        let data = get(&mut fs, "/f");
        assert_eq!(data.len(), 3000);
        assert_eq!(&data[..1024], &[7u8; 1024][..]);
        assert_eq!(&data[2048..], &[7u8; 952][..]);
    }

    #[test]
    fn orphan_inode_reclaimed_on_ext2() {
        let mut fs = ext2();
        put(&mut fs, "/keep", b"keep");
        put(&mut fs, "/doomed", b"doomed");
        fs.unmount().unwrap();
        // Remove the dirent by hand but leave the inode allocated: the
        // classic orphan. Root's content lives in its first direct block.
        drop_root_entry(&mut fs, "doomed");
        let report = repair_device(fs.device_mut(), &FsckOptions::serial()).unwrap();
        assert!(report
            .fixes
            .iter()
            .any(|f| f.contains("orphan") && f.contains("reclaimed")));
        let again = repair_device(fs.device_mut(), &FsckOptions::serial()).unwrap();
        assert!(again.is_clean(), "second run: {:?}", again.fixes);
        fs.mount().unwrap();
        assert_eq!(get(&mut fs, "/keep"), b"keep");
        assert_eq!(fs.stat("/doomed"), Err(Errno::ENOENT));
        // The orphan's inode and blocks are free again.
        let free = fs.statfs().unwrap();
        assert!(free.files_free > 0);
    }

    #[test]
    fn orphan_reconnected_to_lost_found_on_ext4() {
        let mut fs = ext4();
        put(&mut fs, "/keep", b"keep");
        put(&mut fs, "/stray", b"stray data");
        fs.unmount().unwrap();
        // Drop the "/stray" dirent from root, leaving the inode orphaned.
        let stray_ino = drop_root_entry(&mut fs, "stray");

        let report = repair_device(fs.device_mut(), &FsckOptions::serial()).unwrap();
        assert!(report
            .fixes
            .iter()
            .any(|f| f.contains("reconnected to lost+found")));
        let again = repair_device(fs.device_mut(), &FsckOptions::serial()).unwrap();
        assert!(again.is_clean(), "second run: {:?}", again.fixes);
        fs.mount().unwrap();
        // The data is reachable again under lost+found.
        let path = format!("/lost+found/#{stray_ino}");
        assert_eq!(get(&mut fs, &path), b"stray data");
    }

    #[test]
    fn dirent_to_free_inode_is_dropped() {
        let mut fs = ext2();
        put(&mut fs, "/real", b"x");
        fs.unmount().unwrap();
        let sb = sb_of(&mut fs);
        let mut tbuf = vec![0u8; 1024];
        fs.device_mut()
            .read_block(sb.inode_table_start() as u64, &mut tbuf)
            .unwrap();
        let root = DiskInode::decode(&tbuf[INODE_SIZE..2 * INODE_SIZE]);
        let root_blk = root.direct[0] as u64;
        let mut buf = vec![0u8; 1024];
        fs.device_mut().read_block(root_blk, &mut buf).unwrap();
        let mut records = dir::parse(&buf[..root.size as usize]).unwrap();
        records.push(DirRecord {
            ino: 40, // allocated? no — free slot
            ftype: FT_REG,
            name: "ghost".into(),
        });
        let content = dir::serialize(&records);
        let mut block = vec![0u8; 1024];
        block[..content.len()].copy_from_slice(&content);
        fs.device_mut().write_block(root_blk, &block).unwrap();
        patch_inode(&mut fs, 1, |inode| inode.size = content.len() as u64);

        let report = repair_device(fs.device_mut(), &FsckOptions::serial()).unwrap();
        assert!(report.fixes.iter().any(|f| f.contains("dropped entry")));
        let again = repair_device(fs.device_mut(), &FsckOptions::serial()).unwrap();
        assert!(again.is_clean(), "second run: {:?}", again.fixes);
        fs.mount().unwrap();
        assert_eq!(fs.stat("/ghost"), Err(Errno::ENOENT));
        assert_eq!(get(&mut fs, "/real"), b"x");
    }

    #[test]
    fn wrong_nlink_and_bitmaps_are_rebuilt() {
        let mut fs = ext2();
        put(&mut fs, "/f", b"y");
        fs.unmount().unwrap();
        patch_inode(&mut fs, 2, |inode| inode.nlink = 9);
        // Corrupt the block bitmap: mark a used block free.
        let mut bmap = vec![0u8; 1024];
        fs.device_mut().read_block(2, &mut bmap).unwrap();
        let sb = sb_of(&mut fs);
        bitmap::clear(&mut bmap, sb.data_start());
        fs.device_mut().write_block(2, &bmap).unwrap();

        let report = repair_device(fs.device_mut(), &FsckOptions::serial()).unwrap();
        assert!(report.fixes.iter().any(|f| f.contains("link count")));
        assert!(report.fixes.iter().any(|f| f.contains("block bitmap")));
        let again = repair_device(fs.device_mut(), &FsckOptions::serial()).unwrap();
        assert!(again.is_clean(), "second run: {:?}", again.fixes);
        fs.mount().unwrap();
        assert_eq!(fs.stat("/f").unwrap().nlink, 1);
    }

    #[test]
    fn parallel_workers_match_serial_and_run_faster() {
        let make = || {
            let cfg = ExtConfig {
                inodes_count: 512,
                ..ExtConfig::ext2()
            };
            let disk = RamDisk::new(cfg.block_size, 1024 * 1024).unwrap();
            let mut fs = ExtFs::format(disk, cfg).unwrap();
            fs.mount().unwrap();
            for i in 0..40 {
                put(&mut fs, &format!("/f{i}"), &[i as u8; 600]);
            }
            fs.unmount().unwrap();
            patch_inode(&mut fs, 5, |inode| inode.nlink = 4);
            patch_inode(&mut fs, 9, |inode| inode.direct[0] = 0xBEEF);
            fs
        };
        let (mut a, mut b) = (make(), make());
        let (c1, c4) = (Clock::new(), Clock::new());
        let r1 = repair_device(a.device_mut(), &FsckOptions::parallel(1, c1.clone())).unwrap();
        let r4 = repair_device(b.device_mut(), &FsckOptions::parallel(4, c4.clone())).unwrap();
        assert_eq!(r1, r4, "worker count must not change the outcome");
        assert!(
            c4.now_ns() * 2 < c1.now_ns(),
            "4 workers should be at least 2x faster ({} vs {})",
            c4.now_ns(),
            c1.now_ns()
        );
        // Both images converge to the same bytes.
        let sa = a.device_mut().snapshot().unwrap();
        let sb_ = b.device_mut().snapshot().unwrap();
        assert_eq!(sa.to_vec(), sb_.to_vec());
    }

    #[test]
    fn fsck_clears_the_dirty_flag() {
        let mut fs = ext2();
        put(&mut fs, "/f", b"z");
        fs.sync().unwrap();
        // Crash: capture the mid-life (dirty-flagged) image, cleanly
        // unmount, then restore it — the disk looks like a power loss.
        let snap = fs.snapshot_device().unwrap();
        fs.unmount().unwrap();
        fs.restore_device(&snap).unwrap();
        assert_ne!(sb_of(&mut fs).flags & SB_FLAG_DIRTY, 0);
        repair_device(fs.device_mut(), &FsckOptions::serial()).unwrap();
        assert_eq!(sb_of(&mut fs).flags & SB_FLAG_DIRTY, 0);
        fs.mount().unwrap();
        assert_eq!(get(&mut fs, "/f"), b"z");
    }

    #[test]
    fn unformatted_device_is_not_repairable() {
        let mut dev = RamDisk::new(1024, 64 * 1024).unwrap();
        assert_eq!(
            repair_device(&mut dev, &FsckOptions::serial()),
            Err(Errno::EIO)
        );
    }
}
