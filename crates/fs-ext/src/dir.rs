//! Directory-content records.
//!
//! Directory files contain a packed sequence of records:
//!
//! ```text
//! ino: u32 | ftype: u8 | name_len: u8 | name bytes
//! ```
//!
//! Records keep insertion order (new entries append), so `getdents` returns
//! entries in creation order — different from VeriFS's sorted order, which is
//! one of the benign cross-file-system differences MCFS must normalize
//! (paper §3.4).

use vfs::{Errno, VfsResult};

/// One parsed directory record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirRecord {
    /// Inode the entry points at.
    pub ino: u32,
    /// On-disk file-type tag ([`crate::layout::FT_REG`] etc.).
    pub ftype: u8,
    /// Entry name.
    pub name: String,
}

/// Parses directory content bytes into records.
///
/// # Errors
///
/// `EIO` if the content is structurally invalid (truncated record or
/// non-UTF-8 name) — i.e. directory corruption.
pub fn parse(content: &[u8]) -> VfsResult<Vec<DirRecord>> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < content.len() {
        if pos + 6 > content.len() {
            return Err(Errno::EIO);
        }
        let ino = u32::from_le_bytes([
            content[pos],
            content[pos + 1],
            content[pos + 2],
            content[pos + 3],
        ]);
        let ftype = content[pos + 4];
        let name_len = content[pos + 5] as usize;
        pos += 6;
        if pos + name_len > content.len() {
            return Err(Errno::EIO);
        }
        let name = std::str::from_utf8(&content[pos..pos + name_len])
            .map_err(|_| Errno::EIO)?
            .to_string();
        pos += name_len;
        out.push(DirRecord { ino, ftype, name });
    }
    Ok(out)
}

/// Serializes records back to content bytes.
pub fn serialize(records: &[DirRecord]) -> Vec<u8> {
    let mut out = Vec::new();
    for r in records {
        out.extend_from_slice(&r.ino.to_le_bytes());
        out.push(r.ftype);
        out.push(r.name.len() as u8);
        out.extend_from_slice(r.name.as_bytes());
    }
    out
}

/// Finds a record by name.
pub fn find<'r>(records: &'r [DirRecord], name: &str) -> Option<&'r DirRecord> {
    records.iter().find(|r| r.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{FT_DIR, FT_REG};

    #[test]
    fn roundtrip_preserves_order() {
        let recs = vec![
            DirRecord {
                ino: 5,
                ftype: FT_REG,
                name: "zeta".into(),
            },
            DirRecord {
                ino: 9,
                ftype: FT_DIR,
                name: "alpha".into(),
            },
        ];
        let bytes = serialize(&recs);
        let parsed = parse(&bytes).unwrap();
        assert_eq!(parsed, recs, "insertion order must survive");
        assert_eq!(find(&parsed, "alpha").unwrap().ino, 9);
        assert!(find(&parsed, "nope").is_none());
    }

    #[test]
    fn empty_content_is_empty_dir() {
        assert!(parse(&[]).unwrap().is_empty());
        assert!(serialize(&[]).is_empty());
    }

    #[test]
    fn truncated_record_is_corruption() {
        let recs = vec![DirRecord {
            ino: 1,
            ftype: FT_REG,
            name: "file".into(),
        }];
        let bytes = serialize(&recs);
        assert_eq!(parse(&bytes[..bytes.len() - 1]), Err(Errno::EIO));
        assert_eq!(parse(&bytes[..3]), Err(Errno::EIO));
    }

    #[test]
    fn non_utf8_name_is_corruption() {
        let mut bytes = serialize(&[DirRecord {
            ino: 1,
            ftype: FT_REG,
            name: "ab".into(),
        }]);
        let len = bytes.len();
        bytes[len - 1] = 0xFF;
        assert_eq!(parse(&bytes), Err(Errno::EIO));
    }
}
