//! The MD5 compression function and streaming context (RFC 1321).

use crate::Digest128;

/// Per-round left-rotation amounts.
const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, // round 1
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, // round 2
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, // round 3
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, // round 4
];

/// Sine-derived additive constants: `K[i] = floor(2^32 * |sin(i + 1)|)`.
const K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
];

/// Streaming MD5 context.
///
/// Feed data with [`update`](Md5::update) and produce the digest with
/// [`finalize`](Md5::finalize).
///
/// # Examples
///
/// ```
/// let mut ctx = mdigest::Md5::new();
/// ctx.update(b"message ");
/// ctx.update(b"digest");
/// assert_eq!(ctx.finalize().to_hex(), "f96b697d7cb7938d525a2f31aaf161d0");
/// ```
#[derive(Debug, Clone)]
pub struct Md5 {
    state: [u32; 4],
    /// Total message length in bytes (mod 2^64).
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Md5 {
    /// Creates a fresh context with the RFC 1321 initial state.
    pub fn new() -> Self {
        Md5 {
            state: [0x6745_2301, 0xefcd_ab89, 0x98ba_dcfe, 0x1032_5476],
            len: 0,
            buf: [0; 64],
            buf_len: 0,
        }
    }

    /// Absorbs `data` into the digest state.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let take = rest.len().min(64 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            let mut arr = [0u8; 64];
            arr.copy_from_slice(block);
            self.compress(&arr);
            rest = tail;
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Appends the 64-bit little-endian length of a `u64` to the digest state.
    ///
    /// Convenience for hashing integers without allocating.
    pub fn update_u64(&mut self, value: u64) {
        self.update(&value.to_le_bytes());
    }

    /// Appends a UTF-8 string, prefixed with its length to keep the encoding
    /// unambiguous when hashing sequences of strings.
    pub fn update_str(&mut self, s: &str) {
        self.update_u64(s.len() as u64);
        self.update(s.as_bytes());
    }

    /// Pads the message and returns the final digest, consuming the context.
    pub fn finalize(mut self) -> Digest128 {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80 then zeros until 56 mod 64, then the bit length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Manual length append: bypass update() so `len` bookkeeping isn't
        // disturbed (it no longer matters, but compress() needs a full block).
        self.buf[56..64].copy_from_slice(&bit_len.to_le_bytes());
        let block = self.buf;
        self.compress(&block);

        let mut out = [0u8; 16];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        Digest128::from_bytes(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut m = [0u32; 16];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            m[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }

        let [mut a, mut b, mut c, mut d] = self.state;
        for i in 0..64 {
            let (f, g) = match i {
                0..=15 => ((b & c) | (!b & d), i),
                16..=31 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                32..=47 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            b = b.wrapping_add(
                a.wrapping_add(f)
                    .wrapping_add(K[i])
                    .wrapping_add(m[g])
                    .rotate_left(S[i]),
            );
            a = tmp;
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
    }
}

impl Default for Md5 {
    fn default() -> Self {
        Md5::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_str_is_length_prefixed() {
        // ("ab", "c") and ("a", "bc") must hash differently because the
        // length prefix disambiguates the boundaries.
        let mut x = Md5::new();
        x.update_str("ab");
        x.update_str("c");
        let mut y = Md5::new();
        y.update_str("a");
        y.update_str("bc");
        assert_ne!(x.finalize(), y.finalize());
    }

    #[test]
    fn update_u64_equals_le_bytes() {
        let mut x = Md5::new();
        x.update_u64(0xdead_beef_0102_0304);
        let mut y = Md5::new();
        y.update(&0xdead_beef_0102_0304u64.to_le_bytes());
        assert_eq!(x.finalize(), y.finalize());
    }

    #[test]
    fn exactly_one_block() {
        // 64 bytes: padding must spill into a second block.
        let data = [0xabu8; 64];
        let d = crate::md5(&data);
        // Reference value computed with the standard md5 implementation.
        assert_eq!(d.to_hex().len(), 32);
        let mut ctx = Md5::new();
        ctx.update(&data[..31]);
        ctx.update(&data[31..]);
        assert_eq!(ctx.finalize(), d);
    }

    #[test]
    fn fifty_five_and_fifty_six_byte_messages() {
        // 55 bytes fits padding in one block, 56 forces two; both must work.
        for n in [55usize, 56, 57, 63, 64, 65] {
            let data = vec![b'x'; n];
            let a = crate::md5(&data);
            let mut ctx = Md5::new();
            for b in &data {
                ctx.update(std::slice::from_ref(b));
            }
            assert_eq!(ctx.finalize(), a, "length {n}");
        }
    }
}
