//! From-scratch MD5 message digest (RFC 1321).
//!
//! MCFS's abstraction functions (Algorithm 1 in the paper) hash the abstract
//! state of a file system — pathnames, file contents, and the "important"
//! metadata attributes — with MD5. This crate provides that digest without an
//! external dependency, plus a [`Digest128`] value type that the model checker
//! uses as its abstract-state fingerprint.
//!
//! MD5 is not collision resistant against adversaries; here it is used only to
//! fingerprint states produced by the checker itself, matching the paper's
//! design.
//!
//! # Examples
//!
//! ```
//! use mdigest::Md5;
//!
//! let mut ctx = Md5::new();
//! ctx.update(b"abc");
//! assert_eq!(ctx.finalize().to_hex(), "900150983cd24fb0d6963f7d28e17f72");
//! ```

mod md5;

pub use md5::Md5;

use std::fmt;

/// A 128-bit digest value.
///
/// Produced by [`Md5::finalize`]; also usable directly as a compact
/// fingerprint (the model checker stores visited states as `Digest128`).
///
/// # Examples
///
/// ```
/// use mdigest::{md5, Digest128};
///
/// let d: Digest128 = md5(b"");
/// assert_eq!(d.to_hex(), "d41d8cd98f00b204e9800998ecf8427e");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Digest128([u8; 16]);

impl Digest128 {
    /// Creates a digest from raw bytes.
    pub const fn from_bytes(bytes: [u8; 16]) -> Self {
        Digest128(bytes)
    }

    /// Returns the digest as raw bytes.
    pub const fn as_bytes(&self) -> &[u8; 16] {
        &self.0
    }

    /// Returns the digest as a `u128` (little-endian), convenient for use as a
    /// hash-set key.
    pub fn as_u128(&self) -> u128 {
        u128::from_le_bytes(self.0)
    }

    /// Renders the digest as a lowercase hexadecimal string.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(32);
        for b in self.0 {
            use fmt::Write;
            write!(s, "{b:02x}").expect("writing to a String cannot fail");
        }
        s
    }
}

impl fmt::Display for Digest128 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl From<[u8; 16]> for Digest128 {
    fn from(bytes: [u8; 16]) -> Self {
        Digest128(bytes)
    }
}

impl From<Digest128> for u128 {
    fn from(d: Digest128) -> u128 {
        d.as_u128()
    }
}

/// Computes the MD5 digest of `data` in one call.
///
/// # Examples
///
/// ```
/// assert_eq!(
///     mdigest::md5(b"message digest").to_hex(),
///     "f96b697d7cb7938d525a2f31aaf161d0",
/// );
/// ```
pub fn md5(data: &[u8]) -> Digest128 {
    let mut ctx = Md5::new();
    ctx.update(data);
    ctx.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 1321 appendix A.5 test suite.
    #[test]
    fn rfc1321_vectors() {
        let vectors: &[(&[u8], &str)] = &[
            (b"", "d41d8cd98f00b204e9800998ecf8427e"),
            (b"a", "0cc175b9c0f1b6a831c399e269772661"),
            (b"abc", "900150983cd24fb0d6963f7d28e17f72"),
            (b"message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            (
                b"abcdefghijklmnopqrstuvwxyz",
                "c3fcd3d76192e4007dfb496cca67e13b",
            ),
            (
                b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
            (
                b"12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "57edf4a22be3c955ac49da2e2107b67a",
            ),
        ];
        for (input, expected) in vectors {
            assert_eq!(md5(input).to_hex(), *expected, "input {input:?}");
        }
    }

    #[test]
    fn incremental_update_matches_oneshot() {
        let data = b"The quick brown fox jumps over the lazy dog";
        let oneshot = md5(data);
        for split in 0..data.len() {
            let mut ctx = Md5::new();
            ctx.update(&data[..split]);
            ctx.update(&data[split..]);
            assert_eq!(ctx.finalize(), oneshot, "split at {split}");
        }
    }

    #[test]
    fn long_input_crossing_many_blocks() {
        // 200,000 bytes of a repeating pattern: exercises multi-block
        // processing and the 64-bit length field.
        let data: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
        let a = md5(&data);
        let mut ctx = Md5::new();
        for chunk in data.chunks(977) {
            ctx.update(chunk);
        }
        assert_eq!(ctx.finalize(), a);
    }

    #[test]
    fn digest_display_and_u128_roundtrip() {
        let d = md5(b"abc");
        assert_eq!(format!("{d}"), d.to_hex());
        let back = Digest128::from_bytes(d.as_u128().to_le_bytes());
        assert_eq!(back, d);
    }

    #[test]
    fn empty_update_is_noop() {
        let mut ctx = Md5::new();
        ctx.update(b"");
        ctx.update(b"abc");
        ctx.update(b"");
        assert_eq!(ctx.finalize().to_hex(), "900150983cd24fb0d6963f7d28e17f72");
    }

    #[test]
    fn default_digest_is_zero() {
        assert_eq!(Digest128::default().as_u128(), 0);
    }
}
