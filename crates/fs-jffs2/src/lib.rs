//! JFFS2-style log-structured flash file system for the MCFS reproduction.
//!
//! JFFS2 cannot use a regular block device: it needs an MTD character device
//! with erase-block semantics (paper §4 — MCFS loads `mtdram` and `mtdblock`
//! to host it). This crate implements the log-structured design on
//! [`blockdev::MtdDevice`]:
//!
//! * everything is a versioned **node** appended to the log (inode nodes,
//!   dirent nodes with deletion markers, xattr nodes);
//! * **mount scans the whole flash**, replaying nodes in version order to
//!   rebuild the in-memory index — JFFS2's famously slow mount;
//! * **garbage collection** copies live nodes out of the dirtiest erase
//!   block and erases it, tracking per-block wear;
//! * flash timing (program/erase/read) is charged to an optional virtual
//!   clock.
//!
//! Simplification (recorded in DESIGN.md): inode nodes carry the *whole*
//! file content rather than page-sized fragments. Versioning, scanning, GC,
//! wear and the mount-time cost model — the properties MCFS exercises — are
//! unaffected; only large-file write amplification differs, and MCFS's
//! bounded parameter pools keep files small.
//!
//! # Examples
//!
//! ```
//! use blockdev::MtdDevice;
//! use fs_jffs2::{Jffs2Config, Jffs2Fs};
//! use vfs::{FileSystem, FileMode};
//!
//! # fn main() -> vfs::VfsResult<()> {
//! let mtd = MtdDevice::new(16 * 1024, 16).map_err(|_| vfs::Errno::EIO)?;
//! let mut fs = Jffs2Fs::format(mtd, Jffs2Config::default())?;
//! fs.mount()?; // full-flash scan
//! let fd = fs.create("/log", FileMode::REG_DEFAULT)?;
//! fs.write(fd, b"appended as a node")?;
//! fs.close(fd)?;
//! fs.unmount()?;
//! fs.mount()?; // rescan rebuilds the index
//! assert_eq!(fs.stat("/log")?.size, 18);
//! # Ok(())
//! # }
//! ```

mod fs;
pub mod log;

pub use fs::{FlashTiming, Jffs2Config, Jffs2Fs};

use blockdev::MtdDevice;
use vfs::VfsResult;

/// Convenience: format a fresh JFFS2 on an in-RAM MTD (mtdram analogue) with
/// `num_erase_blocks` blocks of `erase_block_size` bytes.
///
/// # Errors
///
/// `EINVAL` for unusable geometry.
pub fn jffs2_on_mtdram(erase_block_size: usize, num_erase_blocks: usize) -> VfsResult<Jffs2Fs> {
    let mtd = MtdDevice::new(erase_block_size, num_erase_blocks).map_err(|_| vfs::Errno::EINVAL)?;
    Jffs2Fs::format(mtd, Jffs2Config::default())
}
