//! The JFFS2-style log-structured engine: scan, append, garbage-collect.

use std::collections::{BTreeSet, HashMap, VecDeque};

use blockdev::{BlockDevice, Clock, FaultPhase, MtdBlock, MtdDevice};
use vfs::{
    path, AccessMode, DeviceBacked, DirEntry, Errno, Fd, FdTable, FileMode, FileStat, FileSystem,
    FileType, FsCapabilities, Ino, OpenFlags, RepairReport, StatFs, VfsResult, XattrFlags,
};

use crate::log::{Node, FT_DIR, FT_REG, FT_SYMLINK};

const MAX_NLINK: u32 = 32_000;

/// Flash timing model charged to an optional virtual clock.
#[derive(Debug, Clone, Copy)]
pub struct FlashTiming {
    /// Program cost per 256-byte page.
    pub program_ns_per_page: u64,
    /// Erase cost per erase block (the expensive part of flash).
    pub erase_ns: u64,
    /// Read cost per 4 KiB.
    pub read_ns_per_4k: u64,
}

impl Default for FlashTiming {
    fn default() -> Self {
        FlashTiming {
            program_ns_per_page: 1_000,
            erase_ns: 2_000_000,
            read_ns_per_4k: 400,
        }
    }
}

/// Construction-time configuration.
#[derive(Debug, Clone)]
pub struct Jffs2Config {
    /// Erase blocks kept free as garbage-collection reserve.
    pub gc_reserve: usize,
    /// Flash timing model.
    pub timing: FlashTiming,
    /// Virtual clock for timing charges (`None` = untimed).
    pub clock: Option<Clock>,
}

impl Default for Jffs2Config {
    fn default() -> Self {
        Jffs2Config {
            gc_reserve: 2,
            timing: FlashTiming::default(),
            clock: None,
        }
    }
}

/// Location of a live node on flash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Loc {
    block: u32,
    offset: u32,
    len: u32,
}

#[derive(Debug, Clone)]
struct InodeInfo {
    ftype: u8,
    mode: u16,
    uid: u32,
    gid: u32,
    atime: u64,
    mtime: u64,
    ctime: u64,
    /// Current whole content (files: data; symlinks: target bytes).
    content: Vec<u8>,
    /// Latest inode node (metadata winner).
    meta_loc: Loc,
    /// The data fragments of the latest content rewrite, in offset order.
    /// The last one may equal `meta_loc`; all must stay live or a rescan
    /// would lose content.
    data_locs: Vec<Loc>,
}

impl InodeInfo {
    /// Every flash location that must survive garbage collection.
    fn live_locs(&self) -> Vec<Loc> {
        let mut live = self.data_locs.clone();
        if !live.contains(&self.meta_loc) {
            live.push(self.meta_loc);
        }
        live
    }
}

#[derive(Debug, Clone)]
struct DirentInfo {
    /// Target inode; 0 is a live deletion marker (must survive GC so older
    /// positive dirents can never resurrect the name on rescan).
    ino: u32,
    ftype: u8,
    loc: Loc,
}

#[derive(Debug, Clone)]
struct XattrInfo {
    value: Vec<u8>,
    delete: bool,
    loc: Loc,
}

#[derive(Debug, Clone, Copy)]
struct OpenFile {
    ino: u32,
    offset: u64,
    read: bool,
    write: bool,
    append: bool,
}

/// What a full-flash scan found: the rebuilt index plus everything the
/// scanner had to tolerate (used by [`FileSystem::fsck`] to report and
/// persist repairs; `mount` keeps only the index).
#[derive(Debug)]
struct ScanOutcome {
    m: Mounted,
    /// Nodes successfully decoded.
    nodes_seen: u64,
    /// `(erase block, bytes lost)` for every block whose node stream broke
    /// (CRC failure, torn program, garbage): the valid prefix is kept, the
    /// rest of the block is quarantined as dead space.
    quarantined: Vec<(u32, u32)>,
    /// Dirents dropped because their target inode has no inode node:
    /// `(parent, name, target, flash block holding the node)`.
    orphan_dirents: Vec<(u32, String, u32, u32)>,
}

#[derive(Debug, Clone)]
struct Mounted {
    inodes: HashMap<u32, InodeInfo>,
    dirents: HashMap<(u32, String), DirentInfo>,
    xattrs: HashMap<(u32, String), XattrInfo>,
    used: Vec<u32>,
    dead: Vec<u32>,
    clean: VecDeque<u32>,
    head: u32,
    next_version: u64,
    next_ino: u32,
    fds: FdTable<OpenFile>,
    time: u64,
}

/// A JFFS2-style file system on a simulated MTD device.
///
/// Construct with [`Jffs2Fs::format`], then [`mount`](FileSystem::mount)
/// (which scans the whole flash, as JFFS2 famously does).
#[derive(Debug, Clone)]
pub struct Jffs2Fs {
    dev: MtdBlock,
    config: Jffs2Config,
    m: Option<Mounted>,
}

impl Jffs2Fs {
    /// Erases the MTD device and writes a fresh (empty) file system:
    /// a single root-inode node in erase block 0.
    ///
    /// # Errors
    ///
    /// `EINVAL` if the device has fewer erase blocks than the GC reserve
    /// needs; `EIO` on flash failures.
    pub fn format(mut mtd: MtdDevice, config: Jffs2Config) -> VfsResult<Self> {
        if mtd.num_erase_blocks() < config.gc_reserve + 2 {
            return Err(Errno::EINVAL);
        }
        let ebs = mtd.erase_block_size() as u64;
        mtd.erase(0, ebs * mtd.num_erase_blocks() as u64)
            .map_err(|_| Errno::EIO)?;
        let root = Node::Inode {
            ino: 1,
            version: 1,
            ftype: FT_DIR,
            mode: FileMode::DIR_DEFAULT.bits(),
            uid: 0,
            gid: 0,
            atime: 0,
            mtime: 0,
            ctime: 0,
            isize: 0,
            offset: 0,
            rewrite: false,
            data: None,
        };
        mtd.program(0, &root.encode()).map_err(|_| Errno::EIO)?;
        // 512-byte logical blocks for the snapshot interface.
        let dev = MtdBlock::new(mtd, 512).map_err(|_| Errno::EINVAL)?;
        Ok(Jffs2Fs {
            dev,
            config,
            m: None,
        })
    }

    /// Attaches to already formatted flash.
    pub fn open_device(mtd: MtdDevice, config: Jffs2Config) -> VfsResult<Self> {
        let dev = MtdBlock::new(mtd, 512).map_err(|_| Errno::EINVAL)?;
        Ok(Jffs2Fs {
            dev,
            config,
            m: None,
        })
    }

    /// Direct access to the flash translation layer (fault injection and
    /// assertions in tests).
    pub fn device_mut(&mut self) -> &mut MtdBlock {
        &mut self.dev
    }

    /// Approximate bytes of in-memory mounted state (the scan-built index).
    pub fn cache_bytes(&self) -> usize {
        match &self.m {
            Some(m) => {
                m.inodes
                    .values()
                    .map(|i| i.content.len() + 96)
                    .sum::<usize>()
                    + m.dirents.keys().map(|(_, n)| n.len() + 48).sum::<usize>()
                    + m.xattrs
                        .iter()
                        .map(|((_, n), x)| n.len() + x.value.len() + 48)
                        .sum::<usize>()
            }
            None => 0,
        }
    }

    /// Wear level (erase counts) of the underlying flash, for reports.
    pub fn erase_counts(&self) -> Vec<u64> {
        (0..self.dev.mtd().num_erase_blocks())
            .map(|i| self.dev.mtd().erase_count(i))
            .collect()
    }

    fn ebs(&self) -> u32 {
        self.dev.mtd().erase_block_size() as u32
    }

    fn num_eb(&self) -> u32 {
        self.dev.mtd().num_erase_blocks() as u32
    }

    fn charge_read(&self, bytes: u64) {
        if let Some(c) = &self.config.clock {
            c.advance_ns(self.config.timing.read_ns_per_4k * bytes.div_ceil(4096));
        }
    }

    fn charge_program(&self, bytes: u64) {
        if let Some(c) = &self.config.clock {
            c.advance_ns(self.config.timing.program_ns_per_page * bytes.div_ceil(256));
        }
    }

    fn charge_erase(&self) {
        if let Some(c) = &self.config.clock {
            c.advance_ns(self.config.timing.erase_ns);
        }
    }

    fn read_raw(&self, loc: Loc) -> VfsResult<Vec<u8>> {
        let mut buf = vec![0u8; loc.len as usize];
        self.dev
            .mtd()
            .read(
                loc.block as u64 * self.ebs() as u64 + loc.offset as u64,
                &mut buf,
            )
            .map_err(|_| Errno::EIO)?;
        self.charge_read(loc.len as u64);
        Ok(buf)
    }

    fn m(&mut self) -> VfsResult<&mut Mounted> {
        self.m.as_mut().ok_or(Errno::ENODEV)
    }

    fn now(&mut self) -> VfsResult<u64> {
        let m = self.m()?;
        m.time += 1;
        Ok(m.time)
    }

    // ---- log append & GC ----------------------------------------------------

    /// Appends raw node bytes at the log head, switching to a clean erase
    /// block when the head is full. `during_gc` forbids recursive GC (the
    /// reserve guarantees GC itself always fits).
    fn append_raw(&mut self, bytes: &[u8], during_gc: bool) -> VfsResult<Loc> {
        let ebs = self.ebs();
        if bytes.len() as u32 > ebs {
            return Err(Errno::EFBIG);
        }
        loop {
            let (head, used) = {
                let m = self.m()?;
                (m.head, m.used[m.head as usize])
            };
            if used + bytes.len() as u32 <= ebs {
                let addr = head as u64 * ebs as u64 + used as u64;
                self.dev
                    .mtd_mut()
                    .program(addr, bytes)
                    .map_err(|_| Errno::EIO)?;
                self.charge_program(bytes.len() as u64);
                let m = self.m()?;
                m.used[head as usize] += bytes.len() as u32;
                return Ok(Loc {
                    block: head,
                    offset: used,
                    len: bytes.len() as u32,
                });
            }
            // Seal the head: the unusable tail is dead space.
            {
                let m = self.m()?;
                let tail = ebs - m.used[m.head as usize];
                m.dead[m.head as usize] += tail;
                m.used[m.head as usize] = ebs;
            }
            // Pick a clean block; keep the GC reserve unless we *are* GC.
            let reserve = if during_gc { 0 } else { self.config.gc_reserve };
            let popped = {
                let m = self.m()?;
                if m.clean.len() > reserve {
                    m.clean.pop_front()
                } else {
                    None
                }
            };
            match popped {
                Some(blk) => {
                    let m = self.m()?;
                    m.head = blk;
                    m.used[blk as usize] = 0;
                    m.dead[blk as usize] = 0;
                }
                None if during_gc => return Err(Errno::ENOSPC),
                None => {
                    self.gc()?;
                    // Re-check: if GC freed nothing, we are genuinely full.
                    let gc_reserve = self.config.gc_reserve;
                    let m = self.m()?;
                    if m.clean.len() <= gc_reserve
                        && m.used[m.head as usize] + bytes.len() as u32 > ebs
                    {
                        return Err(Errno::ENOSPC);
                    }
                }
            }
        }
    }

    /// Garbage-collects the dirtiest non-head erase block: copies its live
    /// nodes to the head, then erases it.
    fn gc(&mut self) -> VfsResult<()> {
        let victim = {
            let m = self.m()?;
            let head = m.head;
            (0..m.used.len() as u32)
                .filter(|&b| b != head && !m.clean.contains(&b) && m.used[b as usize] > 0)
                .max_by_key(|&b| m.dead[b as usize])
                .ok_or(Errno::ENOSPC)?
        };
        self.gc_block(victim)
    }

    /// Garbage-collects a specific erase block: copies its live nodes to the
    /// head, then erases it. Used by [`Self::gc`] for the dirtiest block and
    /// by `fsck` to scrub blocks holding quarantined or orphaned nodes.
    fn gc_block(&mut self, victim: u32) -> VfsResult<()> {
        {
            // If the victim is the current log head, seal it first so the
            // copies below land in a different block (copying into the block
            // about to be erased would destroy them).
            let ebs = self.ebs();
            let m = self.m()?;
            if m.head == victim {
                let tail = ebs - m.used[victim as usize];
                m.dead[victim as usize] += tail;
                m.used[victim as usize] = ebs;
            }
        }
        // Gather live locs in the victim.
        enum Entry {
            InodeMeta(u32),
            InodeData(u32, usize),
            Dirent(u32, String),
            Xattr(u32, String),
        }
        let mut moves: Vec<(Entry, Loc)> = Vec::new();
        {
            let m = self.m()?;
            for (&ino, info) in &m.inodes {
                if info.meta_loc.block == victim && !info.data_locs.contains(&info.meta_loc) {
                    moves.push((Entry::InodeMeta(ino), info.meta_loc));
                }
                for (i, loc) in info.data_locs.iter().enumerate() {
                    if loc.block == victim {
                        moves.push((Entry::InodeData(ino, i), *loc));
                    }
                }
            }
            for ((parent, name), d) in &m.dirents {
                if d.loc.block == victim {
                    moves.push((Entry::Dirent(*parent, name.clone()), d.loc));
                }
            }
            for ((ino, name), x) in &m.xattrs {
                if x.loc.block == victim {
                    moves.push((Entry::Xattr(*ino, name.clone()), x.loc));
                }
            }
        }
        for (entry, loc) in moves {
            let bytes = self.read_raw(loc)?;
            let new_loc = self.append_raw(&bytes, true)?;
            // Flash acks torn programs (power loss mid-write, lying
            // firmware). The erase below destroys the only other copy of
            // this node, so read the copy back before trusting it: on
            // mismatch, abort with the victim intact — the torn copy is
            // already-accounted dead space the next scan quarantines.
            if self.read_raw(new_loc)? != bytes {
                return Err(Errno::EIO);
            }
            let m = self.m()?;
            match entry {
                Entry::InodeMeta(ino) => {
                    m.inodes.get_mut(&ino).expect("live inode").meta_loc = new_loc;
                }
                Entry::InodeData(ino, i) => {
                    let info = m.inodes.get_mut(&ino).expect("live inode");
                    // A single node can be both a fragment and the meta
                    // winner.
                    if info.data_locs[i] == info.meta_loc {
                        info.meta_loc = new_loc;
                    }
                    info.data_locs[i] = new_loc;
                }
                Entry::Dirent(parent, name) => {
                    m.dirents.get_mut(&(parent, name)).expect("live dirent").loc = new_loc;
                }
                Entry::Xattr(ino, name) => {
                    m.xattrs.get_mut(&(ino, name)).expect("live xattr").loc = new_loc;
                }
            }
        }
        // Erase the victim.
        let ebs = self.ebs() as u64;
        self.dev
            .mtd_mut()
            .erase(victim as u64 * ebs, ebs)
            .map_err(|_| Errno::EIO)?;
        self.charge_erase();
        let m = self.m()?;
        m.used[victim as usize] = 0;
        m.dead[victim as usize] = 0;
        m.clean.push_back(victim);
        Ok(())
    }

    fn append_node(&mut self, node: &Node) -> VfsResult<Loc> {
        self.append_raw(&node.encode(), false)
    }

    fn kill(&mut self, loc: Loc) -> VfsResult<()> {
        let m = self.m()?;
        m.dead[loc.block as usize] += loc.len;
        Ok(())
    }

    fn alloc_version(&mut self) -> VfsResult<u64> {
        let m = self.m()?;
        m.next_version += 1;
        Ok(m.next_version)
    }

    fn alloc_ino(&mut self) -> VfsResult<u32> {
        let m = self.m()?;
        m.next_ino += 1;
        Ok(m.next_ino - 1)
    }

    // ---- index helpers --------------------------------------------------------

    fn info(&self, ino: u32) -> VfsResult<&InodeInfo> {
        self.m
            .as_ref()
            .ok_or(Errno::ENODEV)?
            .inodes
            .get(&ino)
            .ok_or(Errno::EIO)
    }

    fn lookup(&self, parent: u32, name: &str) -> VfsResult<Option<(u32, u8)>> {
        let m = self.m.as_ref().ok_or(Errno::ENODEV)?;
        if self.info(parent)?.ftype != FT_DIR {
            return Err(Errno::ENOTDIR);
        }
        match m.dirents.get(&(parent, name.to_string())) {
            Some(d) if d.ino != 0 => Ok(Some((d.ino, d.ftype))),
            _ => Ok(None),
        }
    }

    fn resolve(&self, p: &str) -> VfsResult<u32> {
        path::validate(p)?;
        let mut cur = Ino::ROOT.0 as u32;
        for comp in path::components(p) {
            match self.info(cur)?.ftype {
                FT_DIR => {}
                FT_SYMLINK => return Err(Errno::ELOOP),
                _ => return Err(Errno::ENOTDIR),
            }
            cur = self.lookup(cur, comp)?.ok_or(Errno::ENOENT)?.0;
        }
        Ok(cur)
    }

    fn resolve_parent<'p>(&self, p: &'p str) -> VfsResult<(u32, &'p str)> {
        path::validate(p)?;
        let (parent, name) = path::split_parent(p)?;
        let parent_ino = self.resolve(&parent)?;
        if self.info(parent_ino)?.ftype != FT_DIR {
            return Err(Errno::ENOTDIR);
        }
        Ok((parent_ino, name))
    }

    fn children(&self, dir: u32) -> Vec<(String, u32, u8)> {
        let m = self.m.as_ref().expect("mounted");
        let mut out: Vec<(String, u32, u8)> = m
            .dirents
            .iter()
            .filter(|((p, _), d)| *p == dir && d.ino != 0)
            .map(|((_, n), d)| (n.clone(), d.ino, d.ftype))
            .collect();
        // JFFS2 readdir order follows the scan/hash table; model it as
        // version-insertion order via inode number then name.
        out.sort_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
        out
    }

    fn nlink_of(&self, ino: u32) -> u32 {
        let m = self.m.as_ref().expect("mounted");
        let info = &m.inodes[&ino];
        if info.ftype == FT_DIR {
            let subdirs = m
                .dirents
                .values()
                .filter(|d| d.ino != 0)
                .filter(|d| {
                    m.inodes
                        .get(&d.ino)
                        .map(|i| i.ftype == FT_DIR)
                        .unwrap_or(false)
                })
                .count();
            let my_children = self
                .children(ino)
                .iter()
                .filter(|(_, c, _)| m.inodes.get(c).map(|i| i.ftype == FT_DIR).unwrap_or(false))
                .count();
            let _ = subdirs;
            2 + my_children as u32
        } else {
            m.dirents.values().filter(|d| d.ino == ino).count() as u32
        }
    }

    /// Maximum content bytes per fragment node.
    fn frag_max(&self) -> usize {
        (self.ebs() as usize / 2).saturating_sub(256).max(256)
    }

    /// Writes fresh inode node(s) for `ino` with its current index state.
    /// With `with_data`, the whole content is rewritten as a sequence of
    /// fragment nodes (offset order, ascending versions).
    fn flush_inode(&mut self, ino: u32, with_data: bool) -> VfsResult<()> {
        let info = self.info(ino)?.clone();
        let old_live = info.live_locs();
        let make_node =
            |version: u64, offset: u64, rewrite: bool, data: Option<Vec<u8>>| Node::Inode {
                ino,
                version,
                ftype: info.ftype,
                mode: info.mode,
                uid: info.uid,
                gid: info.gid,
                atime: info.atime,
                mtime: info.mtime,
                ctime: info.ctime,
                isize: info.content.len() as u64,
                offset,
                rewrite,
                data,
            };
        let (new_meta, new_data_locs) = if with_data {
            let frag_max = self.frag_max();
            let mut locs = Vec::new();
            let mut off = 0usize;
            loop {
                let end = (off + frag_max).min(info.content.len());
                let chunk = info.content[off..end].to_vec();
                let version = self.alloc_version()?;
                let node = make_node(version, off as u64, off == 0, Some(chunk));
                locs.push(self.append_node(&node)?);
                off = end;
                if off >= info.content.len() {
                    break;
                }
            }
            (*locs.last().expect("at least one fragment"), Some(locs))
        } else {
            let version = self.alloc_version()?;
            let node = make_node(version, 0, false, None);
            (self.append_node(&node)?, None)
        };
        let m = self.m()?;
        let entry = m.inodes.get_mut(&ino).expect("live inode");
        entry.meta_loc = new_meta;
        if let Some(locs) = new_data_locs {
            entry.data_locs = locs;
        }
        let new_live = entry.live_locs();
        for l in old_live {
            if !new_live.contains(&l) {
                self.kill(l)?;
            }
        }
        Ok(())
    }

    /// Appends incremental fragment nodes covering `[offset, offset+len)`
    /// of `ino`'s current content — the real-JFFS2 write path: only the
    /// changed range reaches flash. Compacts with a whole rewrite when the
    /// fragment list has grown long (bounding scan and GC work).
    fn flush_range(&mut self, ino: u32, offset: u64, len: u64) -> VfsResult<()> {
        // Compact long fragment chains with a whole rewrite — but only when
        // the log has room for the copy; otherwise keep appending fragments
        // (GC will reclaim the dead ones).
        if self.info(ino)?.data_locs.len() > 64 {
            let content_len = self.info(ino)?.content.len() as u64;
            if content_len + 1024 < self.free_bytes() {
                return self.flush_inode(ino, true);
            }
        }
        let info = self.info(ino)?.clone();
        let old_meta = info.meta_loc;
        let old_meta_live = info.data_locs.contains(&old_meta);
        let frag_max = self.frag_max();
        let end = (offset + len).min(info.content.len() as u64) as usize;
        let mut off = (offset as usize).min(end);
        let mut locs = Vec::new();
        loop {
            let stop = (off + frag_max).min(end);
            let chunk = info.content[off..stop].to_vec();
            let version = self.alloc_version()?;
            let node = Node::Inode {
                ino,
                version,
                ftype: info.ftype,
                mode: info.mode,
                uid: info.uid,
                gid: info.gid,
                atime: info.atime,
                mtime: info.mtime,
                ctime: info.ctime,
                isize: info.content.len() as u64,
                offset: off as u64,
                rewrite: false,
                data: Some(chunk),
            };
            locs.push(self.append_node(&node)?);
            off = stop;
            if off >= end {
                break;
            }
        }
        let m = self.m()?;
        let entry = m.inodes.get_mut(&ino).expect("live inode");
        entry.meta_loc = *locs.last().expect("at least one fragment");
        entry.data_locs.extend(locs);
        if !old_meta_live {
            self.kill(old_meta)?;
        }
        Ok(())
    }

    fn write_dirent(&mut self, parent: u32, name: &str, ino: u32, ftype: u8) -> VfsResult<()> {
        let version = self.alloc_version()?;
        let node = Node::Dirent {
            parent,
            version,
            ino,
            ftype,
            name: name.to_string(),
        };
        let loc = self.append_node(&node)?;
        let m = self.m()?;
        let old = m
            .dirents
            .insert((parent, name.to_string()), DirentInfo { ino, ftype, loc });
        if let Some(old) = old {
            self.kill(old.loc)?;
        }
        Ok(())
    }

    fn maybe_drop_inode(&mut self, ino: u32) -> VfsResult<()> {
        let m = self.m()?;
        let referenced = m.dirents.values().any(|d| d.ino == ino);
        let open = m.fds.iter().any(|(_, of)| of.ino == ino);
        if referenced || open || ino == 1 {
            return Ok(());
        }
        if let Some(info) = m.inodes.remove(&ino) {
            // Drop its xattrs too.
            let stale: Vec<(u32, String)> = m
                .xattrs
                .keys()
                .filter(|(i, _)| *i == ino)
                .cloned()
                .collect();
            let mut dead_locs = info.live_locs();
            for key in stale {
                if let Some(x) = m.xattrs.remove(&key) {
                    dead_locs.push(x.loc);
                }
            }
            for loc in dead_locs {
                self.kill(loc)?;
            }
        }
        Ok(())
    }

    fn free_bytes(&self) -> u64 {
        let m = self.m.as_ref().expect("mounted");
        let ebs = self.dev.mtd().erase_block_size() as u64;
        let reserve = self.config.gc_reserve as u64 * ebs;
        let head_free = (self.ebs() - m.used[m.head as usize]) as u64;
        let clean = m.clean.len() as u64 * ebs;
        let reclaimable: u64 = m.dead.iter().map(|&d| d as u64).sum();
        (head_free + clean + reclaimable).saturating_sub(reserve)
    }
    /// Scans the whole flash and rebuilds the index, tolerating corruption:
    /// a block whose node stream breaks (bad CRC, torn program, garbage)
    /// keeps its valid prefix and quarantines the rest as dead space, and
    /// dirents whose target inode never made it to flash are dropped. Both
    /// conditions are recorded in the [`ScanOutcome`] so `fsck` can report
    /// and persist the repairs; `mount` applies them silently, as real
    /// JFFS2's scanner does.
    fn scan(&mut self) -> VfsResult<ScanOutcome> {
        let ebs = self.ebs();
        let num = self.num_eb();
        // Full-device scan: collect every node with its location.
        let mut nodes: Vec<(Node, Loc)> = Vec::new();
        let mut used = vec![0u32; num as usize];
        let mut quarantined: Vec<(u32, u32)> = Vec::new();
        for blk in 0..num {
            let mut block = vec![0u8; ebs as usize];
            self.dev
                .mtd()
                .read(blk as u64 * ebs as u64, &mut block)
                .map_err(|_| Errno::EIO)?;
            self.charge_read(ebs as u64);
            let mut off = 0usize;
            while off < ebs as usize {
                match Node::decode(&block[off..]) {
                    Ok(Some((node, len))) => {
                        nodes.push((
                            node,
                            Loc {
                                block: blk,
                                offset: off as u32,
                                len: len as u32,
                            },
                        ));
                        off += len;
                    }
                    Ok(None) => break,
                    Err(_) => {
                        // The node stream is broken: without a trustworthy
                        // length field, every later offset in this block is
                        // suspect. Seal the block (so appends never program
                        // over the garbage) and quarantine the remainder;
                        // the valid prefix stays live.
                        quarantined.push((blk, ebs - off as u32));
                        off = ebs as usize;
                    }
                }
            }
            used[blk as usize] = off as u32;
        }
        // Apply in version order so later nodes win.
        let nodes_seen = nodes.len();
        nodes.sort_by_key(|(n, _)| n.version());
        let mut inodes: HashMap<u32, InodeInfo> = HashMap::new();
        let mut dirents: HashMap<(u32, String), DirentInfo> = HashMap::new();
        let mut xattrs: HashMap<(u32, String), XattrInfo> = HashMap::new();
        let mut dead = vec![0u32; num as usize];
        for &(blk, lost) in &quarantined {
            dead[blk as usize] += lost;
        }
        let mut max_version = 0u64;
        let mut max_ino = 1u32;
        for (node, loc) in nodes {
            max_version = max_version.max(node.version());
            match node {
                Node::Inode {
                    ino,
                    ftype,
                    mode,
                    uid,
                    gid,
                    atime,
                    mtime,
                    ctime,
                    isize,
                    offset,
                    rewrite,
                    data,
                    ..
                } => {
                    max_ino = max_ino.max(ino);
                    match inodes.get_mut(&ino) {
                        Some(info) => {
                            let old_live = info.live_locs();
                            info.ftype = ftype;
                            info.mode = mode;
                            info.uid = uid;
                            info.gid = gid;
                            info.atime = atime;
                            info.mtime = mtime;
                            info.ctime = ctime;
                            // Every node carries the file size at its time:
                            // metadata-only nodes implement truncate.
                            info.content.resize(isize as usize, 0);
                            if let Some(d) = data {
                                let end = (offset as usize + d.len()).min(info.content.len());
                                let n = end.saturating_sub(offset as usize);
                                info.content[offset as usize..end].copy_from_slice(&d[..n]);
                                if rewrite {
                                    // A rewrite starts: previous fragments die.
                                    info.data_locs = vec![loc];
                                } else {
                                    info.data_locs.push(loc);
                                }
                            }
                            info.meta_loc = loc;
                            let new_live = info.live_locs();
                            for l in old_live {
                                if !new_live.contains(&l) {
                                    dead[l.block as usize] += l.len;
                                }
                            }
                        }
                        None => {
                            let mut content = vec![0u8; isize as usize];
                            let has_data = data.is_some();
                            if let Some(d) = &data {
                                let end = (offset as usize + d.len()).min(content.len());
                                let n = end.saturating_sub(offset as usize);
                                content[offset as usize..end].copy_from_slice(&d[..n]);
                            }
                            inodes.insert(
                                ino,
                                InodeInfo {
                                    ftype,
                                    mode,
                                    uid,
                                    gid,
                                    atime,
                                    mtime,
                                    ctime,
                                    content,
                                    meta_loc: loc,
                                    data_locs: if has_data { vec![loc] } else { Vec::new() },
                                },
                            );
                        }
                    }
                }
                Node::Dirent {
                    parent,
                    ino,
                    ftype,
                    name,
                    ..
                } => {
                    max_ino = max_ino.max(ino);
                    if let Some(old) =
                        dirents.insert((parent, name), DirentInfo { ino, ftype, loc })
                    {
                        dead[old.loc.block as usize] += old.loc.len;
                    }
                }
                Node::Xattr {
                    ino,
                    delete,
                    name,
                    value,
                    ..
                } => {
                    if let Some(old) = xattrs.insert((ino, name), XattrInfo { value, delete, loc })
                    {
                        dead[old.loc.block as usize] += old.loc.len;
                    }
                }
            }
        }
        // Drop dirents whose target inode has no inode node on flash: a
        // crash between the dirent append and the inode append leaves a name
        // that resolves to nothing. The dead-marking makes GC reclaim the
        // node; fsck erases it eagerly so the repair is durable.
        let orphan_keys: Vec<(u32, String)> = dirents
            .iter()
            .filter(|(_, d)| d.ino != 0 && !inodes.contains_key(&d.ino))
            .map(|(k, _)| k.clone())
            .collect();
        let mut orphan_dirents = Vec::new();
        for key in orphan_keys {
            let d = dirents.remove(&key).expect("orphan key just collected");
            dead[d.loc.block as usize] += d.loc.len;
            orphan_dirents.push((key.0, key.1, d.ino, d.loc.block));
        }
        let clean: VecDeque<u32> = (0..num).filter(|&b| used[b as usize] == 0).collect();
        // Head: the non-clean block with the most tail space.
        let head = (0..num)
            .filter(|&b| used[b as usize] > 0)
            .min_by_key(|&b| used[b as usize])
            .unwrap_or(0);
        Ok(ScanOutcome {
            m: Mounted {
                inodes,
                dirents,
                xattrs,
                used,
                dead,
                clean,
                head,
                next_version: max_version + 1,
                next_ino: max_ino + 1,
                fds: FdTable::default(),
                time: max_version << 16,
            },
            nodes_seen: nodes_seen as u64,
            quarantined,
            orphan_dirents,
        })
    }

    /// The repair pipeline behind [`FileSystem::fsck`] (fault-phase
    /// bracketing and mount-state handling live in the trait method).
    ///
    /// Loops scan → scrub until a scan comes back clean: scrubbing a block
    /// can resurrect an older superseded node (the newer winner lived in the
    /// scrubbed block), so the log is rescanned until the index reaches a
    /// fixed point. Each pass erases whole blocks of garbage, so the loop
    /// strictly shrinks the log and terminates.
    fn repair(&mut self) -> VfsResult<RepairReport> {
        let mut report = RepairReport::default();
        let mut first = true;
        loop {
            self.m = None;
            let outcome = self.scan()?;
            if first {
                report.items_scanned = outcome.nodes_seen;
                if outcome.nodes_seen == 0 && outcome.quarantined.is_empty() {
                    return Err(Errno::EIO); // erased flash: nothing to repair
                }
                first = false;
            }
            for &(blk, lost) in &outcome.quarantined {
                report.fixed(format!(
                    "erase block {blk}: undecodable node stream, {lost} bytes quarantined"
                ));
            }
            for (parent, name, ino, _) in &outcome.orphan_dirents {
                report.fixed(format!(
                    "dirent {parent}:\"{name}\": target inode {ino} never written, dropped"
                ));
            }
            let mut scrub: BTreeSet<u32> =
                outcome.quarantined.iter().map(|&(blk, _)| blk).collect();
            scrub.extend(outcome.orphan_dirents.iter().map(|o| o.3));
            let missing_root = !outcome.m.inodes.contains_key(&1);
            self.m = Some(outcome.m);
            if !missing_root && scrub.is_empty() {
                return Ok(report);
            }
            if missing_root {
                // Root's inode node was lost (say, quarantined with its
                // block): recreate an empty root directory. Entries under it
                // survive — dirents carry the parent ino.
                let version = self.alloc_version()?;
                let node = Node::Inode {
                    ino: 1,
                    version,
                    ftype: FT_DIR,
                    mode: FileMode::DIR_DEFAULT.bits(),
                    uid: 0,
                    gid: 0,
                    atime: 0,
                    mtime: 0,
                    ctime: 0,
                    isize: 0,
                    offset: 0,
                    rewrite: false,
                    data: None,
                };
                let loc = self.append_node(&node)?;
                let m = self.m()?;
                m.inodes.insert(
                    1,
                    InodeInfo {
                        ftype: FT_DIR,
                        mode: FileMode::DIR_DEFAULT.bits(),
                        uid: 0,
                        gid: 0,
                        atime: 0,
                        mtime: 0,
                        ctime: 0,
                        content: Vec::new(),
                        meta_loc: loc,
                        data_locs: Vec::new(),
                    },
                );
                report.fixed("root inode recreated");
            }
            // Physically scrub every block holding corrupt or orphaned
            // nodes so the repair is durable: live nodes are copied out,
            // the block is erased. A crash mid-scrub just leaves some
            // blocks for the re-run (convergence).
            for blk in scrub {
                self.gc_block(blk)?;
            }
        }
    }
}

impl FileSystem for Jffs2Fs {
    fn fs_name(&self) -> &str {
        "jffs2"
    }

    fn capabilities(&self) -> FsCapabilities {
        FsCapabilities {
            rename: true,
            hardlink: true,
            symlink: true,
            xattr: true,
            access: true,
            checkpoint: false,
        }
    }

    fn mount(&mut self) -> VfsResult<()> {
        if self.m.is_some() {
            return Err(Errno::EBUSY);
        }
        let outcome = self.scan()?;
        if !outcome.m.inodes.contains_key(&1) {
            return Err(Errno::EIO); // no root: unformatted flash
        }
        self.m = Some(outcome.m);
        Ok(())
    }

    fn unmount(&mut self) -> VfsResult<()> {
        // Log writes are synchronous; nothing to flush.
        self.m.take().map(|_| ()).ok_or(Errno::ENODEV)
    }

    fn is_mounted(&self) -> bool {
        self.m.is_some()
    }

    fn sync(&mut self) -> VfsResult<()> {
        self.m().map(|_| ())
    }

    fn statfs(&self) -> VfsResult<StatFs> {
        let m = self.m.as_ref().ok_or(Errno::ENODEV)?;
        let ebs = self.dev.mtd().erase_block_size() as u64;
        let total = ebs * self.num_eb() as u64;
        let free = self.free_bytes();
        Ok(StatFs {
            block_size: 4096,
            blocks: total / 4096,
            blocks_free: free / 4096,
            blocks_avail: free / 4096,
            files: u32::MAX as u64,
            files_free: u32::MAX as u64 - m.inodes.len() as u64,
            name_max: 254,
        })
    }

    fn create(&mut self, p: &str, mode: FileMode) -> VfsResult<Fd> {
        let (parent, name) = self.resolve_parent(p)?;
        if self.lookup(parent, name)?.is_some() {
            return Err(Errno::EEXIST);
        }
        let node_overhead = 80 + name.len();
        if self.free_bytes() < node_overhead as u64 * 2 {
            return Err(Errno::ENOSPC);
        }
        let now = self.now()?;
        let ino = self.alloc_ino()?;
        let version = self.alloc_version()?;
        let node = Node::Inode {
            ino,
            version,
            ftype: FT_REG,
            mode: mode.bits(),
            uid: 0,
            gid: 0,
            atime: now,
            mtime: now,
            ctime: now,
            isize: 0,
            offset: 0,
            rewrite: true,
            data: Some(Vec::new()),
        };
        let loc = self.append_node(&node)?;
        self.m()?.inodes.insert(
            ino,
            InodeInfo {
                ftype: FT_REG,
                mode: mode.bits(),
                uid: 0,
                gid: 0,
                atime: now,
                mtime: now,
                ctime: now,
                content: Vec::new(),
                meta_loc: loc,
                data_locs: vec![loc],
            },
        );
        self.write_dirent(parent, name, ino, FT_REG)?;
        self.m()?.fds.insert(OpenFile {
            ino,
            offset: 0,
            read: true,
            write: true,
            append: false,
        })
    }

    fn open(&mut self, p: &str, flags: OpenFlags, mode: FileMode) -> VfsResult<Fd> {
        path::validate(p)?;
        let ino = match self.resolve(p) {
            Ok(ino) => {
                if flags.create && flags.excl {
                    return Err(Errno::EEXIST);
                }
                ino
            }
            Err(Errno::ENOENT) if flags.create => {
                let fd = self.create(p, mode)?;
                self.close(fd)?;
                self.resolve(p)?
            }
            Err(e) => return Err(e),
        };
        match self.info(ino)?.ftype {
            FT_SYMLINK => return Err(Errno::ELOOP),
            FT_DIR if flags.write => return Err(Errno::EISDIR),
            _ => {}
        }
        if flags.trunc && flags.write {
            let m = self.m()?;
            m.inodes.get_mut(&ino).expect("resolved").content.clear();
            self.flush_inode(ino, true)?;
        }
        self.m()?.fds.insert(OpenFile {
            ino,
            offset: 0,
            read: flags.read || !flags.write,
            write: flags.write,
            append: flags.append,
        })
    }

    fn close(&mut self, fd: Fd) -> VfsResult<()> {
        let of = self.m()?.fds.remove(fd)?;
        self.maybe_drop_inode(of.ino)
    }

    fn read(&mut self, fd: Fd, out: &mut [u8]) -> VfsResult<usize> {
        let of = *self.m()?.fds.get(fd)?;
        if !of.read {
            return Err(Errno::EBADF);
        }
        if self.info(of.ino)?.ftype == FT_DIR {
            return Err(Errno::EISDIR);
        }
        let now = self.now()?;
        let m = self.m()?;
        let info = m.inodes.get_mut(&of.ino).expect("open file");
        let size = info.content.len() as u64;
        let start = of.offset.min(size) as usize;
        // `lseek` accepts any u64 offset: saturate the end position so a
        // read far past EOF is an empty read (POSIX), never a wrapped range.
        let end = of.offset.saturating_add(out.len() as u64).min(size) as usize;
        out[..end - start].copy_from_slice(&info.content[start..end]);
        info.atime = now;
        // atime updates stay in memory until the next node write, as JFFS2
        // (lazytime-style) does — flash writes per read would wear flash out.
        m.fds.get_mut(fd)?.offset += (end - start) as u64;
        self.charge_read((end - start) as u64);
        Ok(end - start)
    }

    fn write(&mut self, fd: Fd, data: &[u8]) -> VfsResult<usize> {
        let of = *self.m()?.fds.get(fd)?;
        if !of.write {
            return Err(Errno::EBADF);
        }
        if self.info(of.ino)?.ftype == FT_DIR {
            return Err(Errno::EISDIR);
        }
        let now = self.now()?;
        let (offset, new_len) = {
            let m = self.m()?;
            let info = m.inodes.get_mut(&of.ino).expect("open file");
            let offset = if of.append {
                info.content.len() as u64
            } else {
                of.offset
            };
            let end = offset.checked_add(data.len() as u64).ok_or(Errno::EFBIG)?;
            (offset, end.max(info.content.len() as u64))
        };
        // The in-core content model is dense: a file cannot outgrow the
        // flash it must eventually be written to.
        if new_len > self.dev.mtd().size_bytes() {
            return Err(Errno::EFBIG);
        }
        // Incremental writes append fragment nodes: pre-check that the
        // written range (plus per-fragment headers) fits.
        let frags = (data.len() / self.frag_max() + 2) as u64;
        if data.len() as u64 + 96 * frags > self.free_bytes() {
            return Err(Errno::ENOSPC);
        }
        {
            let m = self.m()?;
            let info = m.inodes.get_mut(&of.ino).expect("open file");
            if new_len as usize > info.content.len() {
                info.content.resize(new_len as usize, 0);
            }
            info.content[offset as usize..offset as usize + data.len()].copy_from_slice(data);
            info.mtime = now;
            info.ctime = now;
        }
        self.flush_range(of.ino, offset, data.len() as u64)?;
        self.m()?.fds.get_mut(fd)?.offset = offset + data.len() as u64;
        Ok(data.len())
    }

    fn lseek(&mut self, fd: Fd, offset: u64) -> VfsResult<u64> {
        self.m()?.fds.get_mut(fd)?.offset = offset;
        Ok(offset)
    }

    fn truncate(&mut self, p: &str, size: u64) -> VfsResult<()> {
        let ino = self.resolve(p)?;
        match self.info(ino)?.ftype {
            FT_DIR => return Err(Errno::EISDIR),
            FT_SYMLINK => return Err(Errno::EINVAL),
            _ => {}
        }
        if 128 > self.free_bytes() {
            return Err(Errno::ENOSPC);
        }
        if size > self.dev.mtd().size_bytes() {
            return Err(Errno::EFBIG);
        }
        let now = self.now()?;
        {
            let m = self.m()?;
            let info = m.inodes.get_mut(&ino).expect("resolved");
            info.content.resize(size as usize, 0);
            info.mtime = now;
            info.ctime = now;
        }
        // A metadata-only node carries the new size; scan replays the
        // resize in version order (extensions read back as zeros).
        self.flush_inode(ino, false)
    }

    fn mkdir(&mut self, p: &str, mode: FileMode) -> VfsResult<()> {
        let (parent, name) = self.resolve_parent(p)?;
        if self.lookup(parent, name)?.is_some() {
            return Err(Errno::EEXIST);
        }
        if self.free_bytes() < (160 + name.len()) as u64 {
            return Err(Errno::ENOSPC);
        }
        let now = self.now()?;
        let ino = self.alloc_ino()?;
        let version = self.alloc_version()?;
        let node = Node::Inode {
            ino,
            version,
            ftype: FT_DIR,
            mode: mode.bits(),
            uid: 0,
            gid: 0,
            atime: now,
            mtime: now,
            ctime: now,
            isize: 0,
            offset: 0,
            rewrite: false,
            data: None,
        };
        let loc = self.append_node(&node)?;
        self.m()?.inodes.insert(
            ino,
            InodeInfo {
                ftype: FT_DIR,
                mode: mode.bits(),
                uid: 0,
                gid: 0,
                atime: now,
                mtime: now,
                ctime: now,
                content: Vec::new(),
                meta_loc: loc,
                data_locs: Vec::new(),
            },
        );
        self.write_dirent(parent, name, ino, FT_DIR)
    }

    fn rmdir(&mut self, p: &str) -> VfsResult<()> {
        if path::is_root(p) {
            return Err(Errno::EBUSY);
        }
        let (parent, name) = self.resolve_parent(p)?;
        let (ino, _) = self.lookup(parent, name)?.ok_or(Errno::ENOENT)?;
        if self.info(ino)?.ftype != FT_DIR {
            return Err(Errno::ENOTDIR);
        }
        if !self.children(ino).is_empty() {
            return Err(Errno::ENOTEMPTY);
        }
        // Deletion dirent.
        self.write_dirent(parent, name, 0, FT_DIR)?;
        self.maybe_drop_inode(ino)
    }

    fn unlink(&mut self, p: &str) -> VfsResult<()> {
        let (parent, name) = self.resolve_parent(p)?;
        let (ino, ftype) = self.lookup(parent, name)?.ok_or(Errno::ENOENT)?;
        if ftype == FT_DIR {
            return Err(Errno::EISDIR);
        }
        self.write_dirent(parent, name, 0, ftype)?;
        self.maybe_drop_inode(ino)
    }

    fn stat(&mut self, p: &str) -> VfsResult<FileStat> {
        let ino = self.resolve(p)?;
        let nlink = self.nlink_of(ino);
        let info = self.info(ino)?;
        let (ftype, size) = match info.ftype {
            FT_REG => (FileType::Regular, info.content.len() as u64),
            // JFFS2 directories report size 0 — a third sizing convention
            // next to ext (block multiple) and VeriFS (entry based).
            FT_DIR => (FileType::Directory, 0),
            FT_SYMLINK => (FileType::Symlink, info.content.len() as u64),
            _ => return Err(Errno::EIO),
        };
        Ok(FileStat {
            ino: Ino(ino as u64),
            ftype,
            mode: FileMode::new(info.mode),
            nlink,
            uid: info.uid,
            gid: info.gid,
            size,
            blocks: (info.content.len() as u64).div_ceil(512),
            atime: info.atime,
            mtime: info.mtime,
            ctime: info.ctime,
        })
    }

    fn getdents(&mut self, p: &str) -> VfsResult<Vec<DirEntry>> {
        let ino = self.resolve(p)?;
        if self.info(ino)?.ftype != FT_DIR {
            return Err(Errno::ENOTDIR);
        }
        let now = self.now()?;
        let entries = self.children(ino);
        let m = self.m()?;
        m.inodes.get_mut(&ino).expect("resolved").atime = now;
        entries
            .into_iter()
            .map(|(name, e_ino, ftype)| {
                let ftype = match ftype {
                    FT_REG => FileType::Regular,
                    FT_DIR => FileType::Directory,
                    FT_SYMLINK => FileType::Symlink,
                    _ => return Err(Errno::EIO),
                };
                Ok(DirEntry {
                    name,
                    ino: Ino(e_ino as u64),
                    ftype,
                })
            })
            .collect()
    }

    fn chmod(&mut self, p: &str, mode: FileMode) -> VfsResult<()> {
        let ino = self.resolve(p)?;
        let now = self.now()?;
        {
            let m = self.m()?;
            let info = m.inodes.get_mut(&ino).expect("resolved");
            info.mode = mode.bits();
            info.ctime = now;
        }
        self.flush_inode(ino, false)
    }

    fn chown(&mut self, p: &str, uid: u32, gid: u32) -> VfsResult<()> {
        let ino = self.resolve(p)?;
        let now = self.now()?;
        {
            let m = self.m()?;
            let info = m.inodes.get_mut(&ino).expect("resolved");
            info.uid = uid;
            info.gid = gid;
            info.ctime = now;
        }
        self.flush_inode(ino, false)
    }

    fn utimens(&mut self, p: &str, atime: u64, mtime: u64) -> VfsResult<()> {
        let ino = self.resolve(p)?;
        let now = self.now()?;
        {
            let m = self.m()?;
            let info = m.inodes.get_mut(&ino).expect("resolved");
            info.atime = atime;
            info.mtime = mtime;
            info.ctime = now;
        }
        self.flush_inode(ino, false)
    }

    fn rename(&mut self, src: &str, dst: &str) -> VfsResult<()> {
        path::validate(src)?;
        path::validate(dst)?;
        if src == dst {
            self.resolve(src)?;
            return Ok(());
        }
        if path::is_same_or_descendant(src, dst) {
            return Err(Errno::EINVAL);
        }
        let (sparent, sname) = self.resolve_parent(src)?;
        let (src_ino, src_ftype) = self.lookup(sparent, sname)?.ok_or(Errno::ENOENT)?;
        let (dparent, dname) = self.resolve_parent(dst)?;
        let src_is_dir = src_ftype == FT_DIR;
        if let Some((dst_ino, dst_ftype)) = self.lookup(dparent, dname)? {
            if dst_ino == src_ino {
                return Ok(());
            }
            let dst_is_dir = dst_ftype == FT_DIR;
            match (src_is_dir, dst_is_dir) {
                (true, false) => return Err(Errno::ENOTDIR),
                (false, true) => return Err(Errno::EISDIR),
                (true, true) if !self.children(dst_ino).is_empty() => return Err(Errno::ENOTEMPTY),
                _ => {}
            }
            // Target replacement happens implicitly: the new dirent wins.
            self.write_dirent(dparent, dname, src_ino, src_ftype)?;
            self.write_dirent(sparent, sname, 0, src_ftype)?;
            self.maybe_drop_inode(dst_ino)?;
        } else {
            self.write_dirent(dparent, dname, src_ino, src_ftype)?;
            self.write_dirent(sparent, sname, 0, src_ftype)?;
        }
        Ok(())
    }

    fn link(&mut self, existing: &str, new: &str) -> VfsResult<()> {
        let src_ino = self.resolve(existing)?;
        let ftype = self.info(src_ino)?.ftype;
        if ftype == FT_DIR {
            return Err(Errno::EPERM);
        }
        if self.nlink_of(src_ino) >= MAX_NLINK {
            return Err(Errno::EMLINK);
        }
        let (parent, name) = self.resolve_parent(new)?;
        if self.lookup(parent, name)?.is_some() {
            return Err(Errno::EEXIST);
        }
        self.write_dirent(parent, name, src_ino, ftype)
    }

    fn symlink(&mut self, target: &str, linkpath: &str) -> VfsResult<()> {
        if target.is_empty() || target.len() > path::PATH_MAX {
            return Err(Errno::EINVAL);
        }
        let (parent, name) = self.resolve_parent(linkpath)?;
        if self.lookup(parent, name)?.is_some() {
            return Err(Errno::EEXIST);
        }
        let now = self.now()?;
        let ino = self.alloc_ino()?;
        let version = self.alloc_version()?;
        let node = Node::Inode {
            ino,
            version,
            ftype: FT_SYMLINK,
            mode: 0o777,
            uid: 0,
            gid: 0,
            atime: now,
            mtime: now,
            ctime: now,
            isize: target.len() as u64,
            offset: 0,
            rewrite: true,
            data: Some(target.as_bytes().to_vec()),
        };
        let loc = self.append_node(&node)?;
        self.m()?.inodes.insert(
            ino,
            InodeInfo {
                ftype: FT_SYMLINK,
                mode: 0o777,
                uid: 0,
                gid: 0,
                atime: now,
                mtime: now,
                ctime: now,
                content: target.as_bytes().to_vec(),
                meta_loc: loc,
                data_locs: vec![loc],
            },
        );
        self.write_dirent(parent, name, ino, FT_SYMLINK)
    }

    fn readlink(&mut self, p: &str) -> VfsResult<String> {
        let ino = self.resolve(p)?;
        let info = self.info(ino)?;
        if info.ftype != FT_SYMLINK {
            return Err(Errno::EINVAL);
        }
        String::from_utf8(info.content.clone()).map_err(|_| Errno::EIO)
    }

    fn access(&mut self, p: &str, mode: AccessMode) -> VfsResult<()> {
        let ino = self.resolve(p)?;
        let bits = FileMode::new(self.info(ino)?.mode);
        if (mode.read && !bits.owner_read())
            || (mode.write && !bits.owner_write())
            || (mode.exec && !bits.owner_exec())
        {
            return Err(Errno::EACCES);
        }
        Ok(())
    }

    fn setxattr(&mut self, p: &str, name: &str, value: &[u8], flags: XattrFlags) -> VfsResult<()> {
        if name.is_empty() || name.len() > 255 || name.contains('\0') {
            return Err(Errno::EINVAL);
        }
        let ino = self.resolve(p)?;
        let exists = {
            let m = self.m()?;
            m.xattrs
                .get(&(ino, name.to_string()))
                .map(|x| !x.delete)
                .unwrap_or(false)
        };
        match flags {
            XattrFlags::Create if exists => return Err(Errno::EEXIST),
            XattrFlags::Replace if !exists => return Err(Errno::ENODATA),
            _ => {}
        }
        let version = self.alloc_version()?;
        let node = Node::Xattr {
            ino,
            version,
            delete: false,
            name: name.to_string(),
            value: value.to_vec(),
        };
        let loc = self.append_node(&node)?;
        let m = self.m()?;
        if let Some(old) = m.xattrs.insert(
            (ino, name.to_string()),
            XattrInfo {
                value: value.to_vec(),
                delete: false,
                loc,
            },
        ) {
            self.kill(old.loc)?;
        }
        Ok(())
    }

    fn getxattr(&mut self, p: &str, name: &str) -> VfsResult<Vec<u8>> {
        let ino = self.resolve(p)?;
        let m = self.m()?;
        match m.xattrs.get(&(ino, name.to_string())) {
            Some(x) if !x.delete => Ok(x.value.clone()),
            _ => Err(Errno::ENODATA),
        }
    }

    fn listxattr(&mut self, p: &str) -> VfsResult<Vec<String>> {
        let ino = self.resolve(p)?;
        let m = self.m()?;
        let mut names: Vec<String> = m
            .xattrs
            .iter()
            .filter(|((i, _), x)| *i == ino && !x.delete)
            .map(|((_, n), _)| n.clone())
            .collect();
        names.sort();
        Ok(names)
    }

    fn removexattr(&mut self, p: &str, name: &str) -> VfsResult<()> {
        let ino = self.resolve(p)?;
        let exists = {
            let m = self.m()?;
            m.xattrs
                .get(&(ino, name.to_string()))
                .map(|x| !x.delete)
                .unwrap_or(false)
        };
        if !exists {
            return Err(Errno::ENODATA);
        }
        let version = self.alloc_version()?;
        let node = Node::Xattr {
            ino,
            version,
            delete: true,
            name: name.to_string(),
            value: Vec::new(),
        };
        let loc = self.append_node(&node)?;
        let m = self.m()?;
        if let Some(old) = m.xattrs.insert(
            (ino, name.to_string()),
            XattrInfo {
                value: Vec::new(),
                delete: true,
                loc,
            },
        ) {
            self.kill(old.loc)?;
        }
        Ok(())
    }

    fn supports_fsck(&self) -> bool {
        true
    }

    fn fsck(&mut self) -> VfsResult<RepairReport> {
        let was_mounted = self.m.is_some();
        self.m = None;
        self.dev.set_fault_phase(FaultPhase::Repair);
        let result = self.repair();
        self.dev.set_fault_phase(FaultPhase::Normal);
        let report = match result {
            Ok(report) => report,
            Err(e) => {
                // A failed repair may abort with a partially scanned index
                // installed; keeping it would make the volume look mounted
                // and wedge every later mount with EBUSY.
                self.m = None;
                return Err(e);
            }
        };
        // `repair` leaves the freshly scanned index installed; keep it only
        // if the caller had the volume mounted.
        if !was_mounted {
            self.m = None;
        }
        Ok(report)
    }
}

impl DeviceBacked for Jffs2Fs {
    fn snapshot_device(&mut self) -> VfsResult<blockdev::DeviceSnapshot> {
        self.dev.snapshot().map_err(|_| Errno::EIO)
    }

    fn restore_device(&mut self, snapshot: &blockdev::DeviceSnapshot) -> VfsResult<()> {
        self.dev.restore(snapshot).map_err(|_| Errno::EIO)
    }

    fn device_size_bytes(&self) -> u64 {
        self.dev.mtd().size_bytes()
    }

    fn crash_reboot(&mut self) -> VfsResult<()> {
        // Power fails: the in-core image is lost, the flash keeps whatever
        // nodes were programmed (log writes are synchronous), and the next
        // mount's full-device scan rebuilds the file system from them.
        self.m = None;
        self.dev.power_cut().map_err(|_| Errno::EIO)?;
        self.mount()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jffs2() -> Jffs2Fs {
        let mut fs = crate::jffs2_on_mtdram(16 * 1024, 16).unwrap();
        fs.mount().unwrap();
        fs
    }

    fn write_file(fs: &mut Jffs2Fs, p: &str, data: &[u8]) {
        let fd = fs.create(p, FileMode::REG_DEFAULT).unwrap();
        fs.write(fd, data).unwrap();
        fs.close(fd).unwrap();
    }

    fn read_file(fs: &mut Jffs2Fs, p: &str) -> Vec<u8> {
        let fd = fs
            .open(p, OpenFlags::read_only(), FileMode::REG_DEFAULT)
            .unwrap();
        let size = fs.stat(p).unwrap().size as usize;
        let mut buf = vec![0; size + 8];
        let n = fs.read(fd, &mut buf).unwrap();
        fs.close(fd).unwrap();
        buf.truncate(n);
        buf
    }

    #[test]
    fn roundtrip_and_rescan() {
        let mut fs = jffs2();
        write_file(&mut fs, "/f", b"flash data");
        fs.mkdir("/d", FileMode::DIR_DEFAULT).unwrap();
        write_file(&mut fs, "/d/g", &[5u8; 2000]);
        fs.unmount().unwrap();
        fs.mount().unwrap(); // full rescan
        assert_eq!(read_file(&mut fs, "/f"), b"flash data");
        assert_eq!(read_file(&mut fs, "/d/g"), vec![5u8; 2000]);
        assert_eq!(fs.stat("/d").unwrap().ftype, FileType::Directory);
    }

    #[test]
    fn deletion_markers_survive_rescan() {
        let mut fs = jffs2();
        write_file(&mut fs, "/gone", b"data");
        fs.unlink("/gone").unwrap();
        assert_eq!(fs.stat("/gone"), Err(Errno::ENOENT));
        fs.unmount().unwrap();
        fs.mount().unwrap();
        // The deletion dirent must win over the older positive dirent.
        assert_eq!(fs.stat("/gone"), Err(Errno::ENOENT));
        // And the name is reusable.
        write_file(&mut fs, "/gone", b"new");
        assert_eq!(read_file(&mut fs, "/gone"), b"new");
    }

    #[test]
    fn versions_pick_latest_content() {
        let mut fs = jffs2();
        write_file(&mut fs, "/v", b"one");
        let fd = fs
            .open("/v", OpenFlags::write_only(), FileMode::REG_DEFAULT)
            .unwrap();
        fs.write(fd, b"two").unwrap();
        fs.close(fd).unwrap();
        fs.chmod("/v", FileMode::new(0o600)).unwrap(); // metadata-only node
        fs.unmount().unwrap();
        fs.mount().unwrap();
        assert_eq!(read_file(&mut fs, "/v"), b"two");
        assert_eq!(fs.stat("/v").unwrap().mode, FileMode::new(0o600));
    }

    #[test]
    fn gc_reclaims_and_wears_flash() {
        let mut fs = jffs2();
        // Overwrite one file many times: forces GC across erase blocks.
        for round in 0..200 {
            let fd = fs
                .open(
                    "/churn",
                    OpenFlags::write_only().with_create().with_trunc(),
                    FileMode::REG_DEFAULT,
                )
                .unwrap();
            fs.write(fd, &vec![round as u8; 1500]).unwrap();
            fs.close(fd).unwrap();
        }
        assert_eq!(read_file(&mut fs, "/churn"), vec![199u8; 1500]);
        let wear: u64 = fs.erase_counts().iter().sum();
        assert!(wear > 10, "GC must have erased blocks (wear {wear})");
        // The index survives a rescan after all that churn.
        fs.unmount().unwrap();
        fs.mount().unwrap();
        assert_eq!(read_file(&mut fs, "/churn"), vec![199u8; 1500]);
    }

    #[test]
    fn enospc_when_log_is_full() {
        let mut fs = jffs2();
        let mut made = 0;
        loop {
            let fd = match fs.create(&format!("/f{made}"), FileMode::REG_DEFAULT) {
                Ok(fd) => fd,
                Err(Errno::ENOSPC) => break,
                Err(e) => panic!("unexpected {e}"),
            };
            match fs.write(fd, &[9u8; 4000]) {
                Ok(_) => {}
                Err(Errno::ENOSPC) => {
                    fs.close(fd).unwrap();
                    break;
                }
                Err(e) => panic!("unexpected {e}"),
            }
            fs.close(fd).unwrap();
            made += 1;
            assert!(made < 200, "flash must fill up eventually");
        }
        assert!(made > 5, "should fit a reasonable amount first");
        // Deleting releases space (after GC) and new writes succeed.
        for i in 0..made {
            fs.unlink(&format!("/f{i}")).unwrap();
        }
        write_file(&mut fs, "/fresh", &[1u8; 4000]);
        assert_eq!(read_file(&mut fs, "/fresh"), vec![1u8; 4000]);
    }

    #[test]
    fn rename_and_links() {
        let mut fs = jffs2();
        write_file(&mut fs, "/a", b"A");
        fs.rename("/a", "/b").unwrap();
        assert_eq!(fs.stat("/a"), Err(Errno::ENOENT));
        fs.link("/b", "/h").unwrap();
        assert_eq!(fs.stat("/h").unwrap().nlink, 2);
        fs.unlink("/b").unwrap();
        assert_eq!(read_file(&mut fs, "/h"), b"A");
        assert_eq!(fs.stat("/h").unwrap().nlink, 1);
        fs.symlink("/h", "/s").unwrap();
        assert_eq!(fs.readlink("/s").unwrap(), "/h");
        fs.unmount().unwrap();
        fs.mount().unwrap();
        assert_eq!(read_file(&mut fs, "/h"), b"A");
        assert_eq!(fs.readlink("/s").unwrap(), "/h");
    }

    #[test]
    fn xattrs_roundtrip_flash() {
        let mut fs = jffs2();
        write_file(&mut fs, "/f", b"");
        fs.setxattr("/f", "user.k", b"v1", XattrFlags::Any).unwrap();
        fs.setxattr("/f", "user.k", b"v2", XattrFlags::Any).unwrap();
        fs.unmount().unwrap();
        fs.mount().unwrap();
        assert_eq!(fs.getxattr("/f", "user.k").unwrap(), b"v2");
        fs.removexattr("/f", "user.k").unwrap();
        fs.unmount().unwrap();
        fs.mount().unwrap();
        assert_eq!(fs.getxattr("/f", "user.k"), Err(Errno::ENODATA));
    }

    #[test]
    fn dir_sizes_report_zero() {
        let mut fs = jffs2();
        fs.mkdir("/d", FileMode::DIR_DEFAULT).unwrap();
        write_file(&mut fs, "/d/child", b"x");
        assert_eq!(fs.stat("/d").unwrap().size, 0);
    }

    #[test]
    fn stale_index_after_external_restore() {
        // §3.2 for the MTD case: restoring flash under a mounted JFFS2
        // leaves the scan-built index describing a discarded world.
        let mut fs = jffs2();
        let snap = fs.snapshot_device().unwrap();
        write_file(&mut fs, "/after", b"x");
        fs.restore_device(&snap).unwrap();
        assert!(fs.stat("/after").is_ok(), "stale index still sees the file");
        fs.unmount().unwrap();
        fs.mount().unwrap(); // rescan of the restored flash
        assert_eq!(fs.stat("/after"), Err(Errno::ENOENT));
    }

    #[test]
    fn timing_charges_clock() {
        let clock = Clock::new();
        let mtd = MtdDevice::new(16 * 1024, 16).unwrap();
        let cfg = Jffs2Config {
            clock: Some(clock.clone()),
            ..Jffs2Config::default()
        };
        let mut fs = Jffs2Fs::format(mtd, cfg).unwrap();
        fs.mount().unwrap();
        let after_mount = clock.now_ns();
        assert!(after_mount > 0, "mount scan reads the whole flash");
        write_file(&mut fs, "/f", &[0u8; 2048]);
        assert!(clock.now_ns() > after_mount, "programs charge time");
    }

    #[test]
    fn truncate_both_directions() {
        let mut fs = jffs2();
        write_file(&mut fs, "/t", &[7u8; 100]);
        fs.truncate("/t", 10).unwrap();
        assert_eq!(read_file(&mut fs, "/t"), vec![7u8; 10]);
        fs.truncate("/t", 50).unwrap();
        let c = read_file(&mut fs, "/t");
        assert_eq!(&c[..10], &[7u8; 10][..]);
        assert!(c[10..].iter().all(|&b| b == 0));
    }

    #[test]
    fn open_trunc_create_flags() {
        let mut fs = jffs2();
        let fd = fs
            .open(
                "/n",
                OpenFlags::read_write().with_create(),
                FileMode::REG_DEFAULT,
            )
            .unwrap();
        fs.write(fd, b"hello").unwrap();
        fs.close(fd).unwrap();
        assert_eq!(
            fs.open(
                "/n",
                OpenFlags::read_only().with_create().with_excl(),
                FileMode::REG_DEFAULT
            ),
            Err(Errno::EEXIST)
        );
        let fd = fs
            .open(
                "/n",
                OpenFlags::write_only().with_trunc(),
                FileMode::REG_DEFAULT,
            )
            .unwrap();
        fs.close(fd).unwrap();
        assert_eq!(fs.stat("/n").unwrap().size, 0);
    }

    #[test]
    fn rmdir_semantics() {
        let mut fs = jffs2();
        fs.mkdir("/d", FileMode::DIR_DEFAULT).unwrap();
        write_file(&mut fs, "/d/f", b"");
        assert_eq!(fs.rmdir("/d"), Err(Errno::ENOTEMPTY));
        fs.unlink("/d/f").unwrap();
        fs.rmdir("/d").unwrap();
        assert_eq!(fs.stat("/d"), Err(Errno::ENOENT));
        assert_eq!(fs.rmdir("/"), Err(Errno::EBUSY));
    }

    /// First flash address in `blk` past the last decodable node.
    fn log_end(fs: &Jffs2Fs, blk: u32) -> u64 {
        let ebs = fs.dev.mtd().erase_block_size() as u64;
        let mut buf = vec![0u8; ebs as usize];
        fs.dev.mtd().read(blk as u64 * ebs, &mut buf).unwrap();
        let mut off = 0usize;
        while let Ok(Some((_, len))) = Node::decode(&buf[off..]) {
            off += len;
        }
        blk as u64 * ebs + off as u64
    }

    /// A structurally plausible node header whose CRC cannot match.
    fn corrupt_node_bytes() -> Vec<u8> {
        let mut bytes = vec![0x85u8, 0x19, crate::log::NT_DIRENT, 16, 0, 0, 0];
        bytes.resize(16, 0); // CRC field zero: mismatches the FNV of the body
        bytes
    }

    #[test]
    fn failed_fsck_leaves_the_volume_mountable() {
        // Regression: a repair that aborted mid-way (here: every erase
        // block quarantined, so the scrub pass has no free space and dies
        // with ENOSPC) used to leave the partially scanned index installed,
        // wedging every later mount with EBUSY.
        let mut fs = crate::jffs2_on_mtdram(16 * 1024, 4).unwrap();
        fs.mount().unwrap();
        write_file(&mut fs, "/f", b"keep me");
        fs.unmount().unwrap();
        for blk in 0..4 {
            let end = log_end(&fs, blk);
            fs.dev
                .mtd_mut()
                .program(end, &corrupt_node_bytes())
                .unwrap();
        }
        assert_eq!(fs.fsck(), Err(Errno::ENOSPC), "no room to scrub");
        fs.mount()
            .expect("a failed repair must not wedge the volume");
        assert_eq!(read_file(&mut fs, "/f"), b"keep me");
    }

    #[test]
    fn mount_survives_a_corrupt_node() {
        // Regression: the scanner used to abort the whole mount with EIO on
        // the first undecodable node, bricking the volume. It must instead
        // quarantine the broken region and keep everything before it.
        let mut fs = jffs2();
        write_file(&mut fs, "/f", b"keep me");
        fs.unmount().unwrap();
        let end = log_end(&fs, 0);
        fs.dev
            .mtd_mut()
            .program(end, &corrupt_node_bytes())
            .unwrap();
        fs.mount().expect("mount must tolerate a corrupt node");
        assert_eq!(read_file(&mut fs, "/f"), b"keep me");
    }

    #[test]
    fn torn_gc_copy_never_destroys_the_source() {
        use blockdev::{FaultKind, FaultPlan};
        // Regression: flash acks torn programs, so GC used to erase the
        // victim block after a copy that never fully reached the new
        // location — silently losing the only good copy of a live node.
        // The copy must be read back and verified before the erase.
        let mut fs = jffs2();
        write_file(&mut fs, "/f", b"survives torn gc");
        fs.unmount().unwrap();
        // A corrupt tail in block 0 forces the repair scrub to GC the
        // block holding /f's live nodes.
        let end = log_end(&fs, 0);
        fs.dev
            .mtd_mut()
            .program(end, &corrupt_node_bytes())
            .unwrap();
        // Tear the very first repair program: the copy of a live node.
        fs.dev.mtd_mut().set_fault_plan(Some(
            FaultPlan::eio(FaultKind::Write, 0, 1)
                .with_torn_bytes(3)
                .during_repair(),
        ));
        assert_eq!(
            fs.fsck(),
            Err(Errno::EIO),
            "the torn copy must be detected, not silently trusted"
        );
        fs.dev.mtd_mut().set_fault_plan(None);
        // The victim was left intact: a clean re-run converges and the
        // file is still readable.
        fs.fsck().expect("clean re-run repairs the volume");
        fs.mount().unwrap();
        assert_eq!(read_file(&mut fs, "/f"), b"survives torn gc");
    }

    #[test]
    fn orphan_dirent_is_invisible_after_mount() {
        // Regression: a dirent whose target inode node never reached flash
        // (crash between the two appends) used to surface as a directory
        // entry whose stat failed with EIO. The scanner must drop it.
        let mut fs = jffs2();
        write_file(&mut fs, "/real", b"x");
        fs.unmount().unwrap();
        let ghost = Node::Dirent {
            parent: 1,
            version: 1_000,
            ino: 99, // no inode node with this number exists
            ftype: FT_REG,
            name: "ghost".into(),
        };
        let end = log_end(&fs, 0);
        fs.dev.mtd_mut().program(end, &ghost.encode()).unwrap();
        fs.mount().unwrap();
        assert_eq!(fs.stat("/ghost"), Err(Errno::ENOENT));
        let names: Vec<String> = fs
            .getdents("/")
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert!(!names.contains(&"ghost".to_string()), "{names:?}");
        assert_eq!(read_file(&mut fs, "/real"), b"x");
    }

    #[test]
    fn fsck_scrubs_corruption_and_is_idempotent() {
        let mut fs = jffs2();
        write_file(&mut fs, "/f", b"payload");
        fs.unmount().unwrap();
        let end = log_end(&fs, 0);
        fs.dev
            .mtd_mut()
            .program(end, &corrupt_node_bytes())
            .unwrap();
        let ghost = Node::Dirent {
            parent: 1,
            version: 1_000,
            ino: 77,
            ftype: FT_REG,
            name: "ghost".into(),
        };
        // The ghost goes in a different erase block so both scrub paths run.
        fs.dev
            .mtd_mut()
            .program(16 * 1024, &ghost.encode())
            .unwrap();
        let report = fs.fsck().unwrap();
        assert!(report.repairs_made >= 2, "{:?}", report.fixes);
        assert!(!fs.is_mounted(), "fsck on an unmounted fs leaves it so");
        // Idempotence: a second run finds a clean log.
        let again = fs.fsck().unwrap();
        assert!(again.is_clean(), "{:?}", again.fixes);
        fs.mount().unwrap();
        assert_eq!(read_file(&mut fs, "/f"), b"payload");
        assert_eq!(fs.stat("/ghost"), Err(Errno::ENOENT));
    }

    #[test]
    fn fsck_recreates_a_lost_root() {
        let mut fs = jffs2();
        write_file(&mut fs, "/f", b"doomed");
        fs.unmount().unwrap();
        // Zero the low byte of the root inode node's version (body offset 4,
        // flash address 15): its CRC fails and the scanner quarantines erase
        // block 0 from offset zero — taking the root (and in this small
        // volume, everything else) with it.
        fs.dev.mtd_mut().program(15, &[0x00]).unwrap();
        assert_eq!(fs.mount(), Err(Errno::EIO), "no root, mount refuses");
        let report = fs.fsck().unwrap();
        assert!(
            report.fixes.iter().any(|f| f.contains("root inode")),
            "{:?}",
            report.fixes
        );
        fs.mount().unwrap();
        assert!(fs.getdents("/").unwrap().is_empty());
        assert!(fs.fsck().unwrap().is_clean());
    }

    #[test]
    fn fsck_rejects_erased_flash() {
        let mtd = MtdDevice::new(16 * 1024, 16).unwrap();
        let mut fs = Jffs2Fs::open_device(mtd, Jffs2Config::default()).unwrap();
        assert_eq!(fs.fsck(), Err(Errno::EIO));
    }

    #[test]
    fn fsck_while_mounted_keeps_the_volume_usable() {
        let mut fs = jffs2();
        write_file(&mut fs, "/f", b"live");
        let report = fs.fsck().unwrap();
        assert!(report.is_clean(), "{:?}", report.fixes);
        assert!(fs.is_mounted());
        assert_eq!(read_file(&mut fs, "/f"), b"live");
    }
}

#[cfg(test)]
mod frag_tests {
    use super::*;

    #[test]
    fn large_files_span_fragment_nodes() {
        // 16 KiB erase blocks → frag_max ≈ 8 KiB: a 100 KiB file needs many
        // fragment nodes across several erase blocks.
        let mut fs = crate::jffs2_on_mtdram(16 * 1024, 32).unwrap();
        fs.mount().unwrap();
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 241) as u8).collect();
        let fd = fs.create("/big", FileMode::REG_DEFAULT).unwrap();
        fs.write(fd, &data).unwrap();
        fs.close(fd).unwrap();
        // Rescan reassembles the fragments.
        fs.unmount().unwrap();
        fs.mount().unwrap();
        let fd = fs
            .open("/big", OpenFlags::read_only(), FileMode::REG_DEFAULT)
            .unwrap();
        let mut buf = vec![0u8; data.len() + 8];
        let n = fs.read(fd, &mut buf).unwrap();
        fs.close(fd).unwrap();
        buf.truncate(n);
        assert_eq!(buf, data);
    }

    #[test]
    fn fragmented_file_survives_gc_churn() {
        let mut fs = crate::jffs2_on_mtdram(16 * 1024, 16).unwrap();
        fs.mount().unwrap();
        // A stable fragmented file...
        let keep: Vec<u8> = (0..30_000u32).map(|i| (i % 127) as u8).collect();
        let fd = fs.create("/keep", FileMode::REG_DEFAULT).unwrap();
        fs.write(fd, &keep).unwrap();
        fs.close(fd).unwrap();
        // ...while churn forces GC to move its fragments around.
        for round in 0..60 {
            let fd = fs
                .open(
                    "/churn",
                    OpenFlags::write_only().with_create().with_trunc(),
                    FileMode::REG_DEFAULT,
                )
                .unwrap();
            fs.write(fd, &vec![round as u8; 2000]).unwrap();
            fs.close(fd).unwrap();
        }
        let fd = fs
            .open("/keep", OpenFlags::read_only(), FileMode::REG_DEFAULT)
            .unwrap();
        let mut buf = vec![0u8; keep.len()];
        fs.read(fd, &mut buf).unwrap();
        fs.close(fd).unwrap();
        assert_eq!(buf, keep, "GC must relocate fragments losslessly");
        fs.unmount().unwrap();
        fs.mount().unwrap();
        assert_eq!(fs.stat("/keep").unwrap().size, keep.len() as u64);
    }
}
