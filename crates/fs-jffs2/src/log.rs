//! On-flash node formats and log scanning.
//!
//! JFFS2 stores everything as *nodes* appended to a log across erase blocks.
//! Mount scans the whole flash, keeping the highest-version node per object.
//! We keep three node types:
//!
//! * **inode nodes** — metadata plus (optionally) a content fragment.
//!   Rewrites carry `rewrite = true` on their first fragment (superseding
//!   all earlier fragments); incremental writes append fragments, as real
//!   JFFS2 does.
//! * **dirent nodes** — `(parent, name) -> ino`, with `ino == 0` as the
//!   deletion marker.
//! * **xattr nodes** — `(ino, name) -> value`, with a delete flag.

use vfs::{Errno, VfsResult};

/// JFFS2's historic magic (1985).
pub const NODE_MAGIC: u16 = 0x1985;

/// Size of the common node header:
/// `magic u16 | type u8 | total_len u32 | crc u32`.
pub const HEADER_LEN: usize = 11;

/// FNV-1a (32-bit) over a node's post-header bytes. Real JFFS2 carries
/// separate header/data CRC32s; one checksum over the whole body gives the
/// same power here (detecting torn programs and bit rot) at a fraction of
/// the format complexity.
pub fn node_crc(bytes: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for &byte in bytes {
        hash ^= u32::from(byte);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// Node type tags.
pub const NT_INODE: u8 = 1;
/// Dirent node tag.
pub const NT_DIRENT: u8 = 2;
/// Xattr node tag.
pub const NT_XATTR: u8 = 3;

/// File-type tags inside nodes.
pub const FT_REG: u8 = 1;
/// Directory tag.
pub const FT_DIR: u8 = 2;
/// Symlink tag.
pub const FT_SYMLINK: u8 = 3;

/// A decoded node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// Inode metadata (+ optional whole content).
    Inode {
        /// Inode number.
        ino: u32,
        /// Version (higher wins).
        version: u64,
        /// File type tag.
        ftype: u8,
        /// Permission bits.
        mode: u16,
        /// Owner uid.
        uid: u32,
        /// Owner gid.
        gid: u32,
        /// Access time.
        atime: u64,
        /// Modification time.
        mtime: u64,
        /// Change time.
        ctime: u64,
        /// File size after this node.
        isize: u64,
        /// Fragment offset within the file (0 for metadata-only nodes and
        /// for the first fragment of a rewrite).
        offset: u64,
        /// Whether this node *begins a whole rewrite*: all earlier data
        /// fragments of the inode are superseded. Incremental writes append
        /// fragments with `rewrite == false`.
        rewrite: bool,
        /// Content fragment carried by this node, if any.
        data: Option<Vec<u8>>,
    },
    /// Directory entry (deletion marker when `ino == 0`).
    Dirent {
        /// Parent directory inode.
        parent: u32,
        /// Version (higher wins).
        version: u64,
        /// Target inode (0 = deletion).
        ino: u32,
        /// File type tag of the target.
        ftype: u8,
        /// Entry name.
        name: String,
    },
    /// Extended attribute (deletion when `delete` is set).
    Xattr {
        /// Owning inode.
        ino: u32,
        /// Version (higher wins).
        version: u64,
        /// Whether this node removes the attribute.
        delete: bool,
        /// Attribute name.
        name: String,
        /// Attribute value (empty when deleting).
        value: Vec<u8>,
    },
}

impl Node {
    /// Serializes the node, including the common header
    /// (`magic u16 | type u8 | total_len u32 | crc u32`, where the CRC
    /// covers everything after the header). The total length is aligned to
    /// 4 bytes (flash word alignment).
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        let ntype = match self {
            Node::Inode {
                ino,
                version,
                ftype,
                mode,
                uid,
                gid,
                atime,
                mtime,
                ctime,
                isize,
                offset,
                rewrite,
                data,
            } => {
                body.extend_from_slice(&ino.to_le_bytes());
                body.extend_from_slice(&version.to_le_bytes());
                body.push(*ftype);
                body.extend_from_slice(&mode.to_le_bytes());
                body.extend_from_slice(&uid.to_le_bytes());
                body.extend_from_slice(&gid.to_le_bytes());
                body.extend_from_slice(&atime.to_le_bytes());
                body.extend_from_slice(&mtime.to_le_bytes());
                body.extend_from_slice(&ctime.to_le_bytes());
                body.extend_from_slice(&isize.to_le_bytes());
                body.extend_from_slice(&offset.to_le_bytes());
                body.push(u8::from(*rewrite));
                match data {
                    Some(d) => {
                        body.push(1);
                        body.extend_from_slice(&(d.len() as u32).to_le_bytes());
                        body.extend_from_slice(d);
                    }
                    None => body.push(0),
                }
                NT_INODE
            }
            Node::Dirent {
                parent,
                version,
                ino,
                ftype,
                name,
            } => {
                body.extend_from_slice(&parent.to_le_bytes());
                body.extend_from_slice(&version.to_le_bytes());
                body.extend_from_slice(&ino.to_le_bytes());
                body.push(*ftype);
                body.push(name.len() as u8);
                body.extend_from_slice(name.as_bytes());
                NT_DIRENT
            }
            Node::Xattr {
                ino,
                version,
                delete,
                name,
                value,
            } => {
                body.extend_from_slice(&ino.to_le_bytes());
                body.extend_from_slice(&version.to_le_bytes());
                body.push(u8::from(*delete));
                body.push(name.len() as u8);
                body.extend_from_slice(&(value.len() as u16).to_le_bytes());
                body.extend_from_slice(name.as_bytes());
                body.extend_from_slice(value);
                NT_XATTR
            }
        };
        let total = HEADER_LEN + body.len();
        let padded = total.div_ceil(4) * 4;
        let mut out = Vec::with_capacity(padded);
        out.extend_from_slice(&NODE_MAGIC.to_le_bytes());
        out.push(ntype);
        out.extend_from_slice(&(padded as u32).to_le_bytes());
        out.extend_from_slice(&[0u8; 4]); // CRC placeholder
        out.extend_from_slice(&body);
        out.resize(padded, 0);
        let crc = node_crc(&out[HEADER_LEN..]);
        out[7..HEADER_LEN].copy_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decodes one node from the start of `buf`, returning it and its total
    /// (padded) on-flash length. Returns `Ok(None)` when `buf` starts with
    /// erased flash (no node).
    ///
    /// # Errors
    ///
    /// `EIO` for structurally corrupt nodes, including CRC mismatches
    /// (torn programs, bit rot).
    pub fn decode(buf: &[u8]) -> VfsResult<Option<(Node, usize)>> {
        if buf.len() < HEADER_LEN {
            return Ok(None);
        }
        let magic = u16::from_le_bytes([buf[0], buf[1]]);
        if magic == 0xFFFF || magic == 0 {
            return Ok(None); // erased (0xFF) or zeroed region: end of log
        }
        if magic != NODE_MAGIC {
            return Err(Errno::EIO);
        }
        let ntype = buf[2];
        let total = u32::from_le_bytes([buf[3], buf[4], buf[5], buf[6]]) as usize;
        if total < HEADER_LEN || total > buf.len() || !total.is_multiple_of(4) {
            return Err(Errno::EIO);
        }
        let stored_crc = u32::from_le_bytes([buf[7], buf[8], buf[9], buf[10]]);
        if stored_crc != node_crc(&buf[HEADER_LEN..total]) {
            return Err(Errno::EIO);
        }
        let b = &buf[HEADER_LEN..total];
        let u16_at = |i: usize| u16::from_le_bytes([b[i], b[i + 1]]);
        let u32_at = |i: usize| u32::from_le_bytes([b[i], b[i + 1], b[i + 2], b[i + 3]]);
        let u64_at = |i: usize| {
            let mut x = [0u8; 8];
            x.copy_from_slice(&b[i..i + 8]);
            u64::from_le_bytes(x)
        };
        let node = match ntype {
            NT_INODE => {
                let ino = u32_at(0);
                let version = u64_at(4);
                let ftype = b[12];
                let mode = u16_at(13);
                let uid = u32_at(15);
                let gid = u32_at(19);
                let atime = u64_at(23);
                let mtime = u64_at(31);
                let ctime = u64_at(39);
                let isize = u64_at(47);
                let offset = u64_at(55);
                let rewrite = b[63] != 0;
                let has_data = b[64];
                let data = if has_data != 0 {
                    let dlen = u32_at(65) as usize;
                    if 69 + dlen > b.len() {
                        return Err(Errno::EIO);
                    }
                    Some(b[69..69 + dlen].to_vec())
                } else {
                    None
                };
                Node::Inode {
                    ino,
                    version,
                    ftype,
                    mode,
                    uid,
                    gid,
                    atime,
                    mtime,
                    ctime,
                    isize,
                    offset,
                    rewrite,
                    data,
                }
            }
            NT_DIRENT => {
                let parent = u32_at(0);
                let version = u64_at(4);
                let ino = u32_at(12);
                let ftype = b[16];
                let nlen = b[17] as usize;
                if 18 + nlen > b.len() {
                    return Err(Errno::EIO);
                }
                let name = std::str::from_utf8(&b[18..18 + nlen])
                    .map_err(|_| Errno::EIO)?
                    .to_string();
                Node::Dirent {
                    parent,
                    version,
                    ino,
                    ftype,
                    name,
                }
            }
            NT_XATTR => {
                let ino = u32_at(0);
                let version = u64_at(4);
                let delete = b[12] != 0;
                let nlen = b[13] as usize;
                let vlen = u16_at(14) as usize;
                if 16 + nlen + vlen > b.len() {
                    return Err(Errno::EIO);
                }
                let name = std::str::from_utf8(&b[16..16 + nlen])
                    .map_err(|_| Errno::EIO)?
                    .to_string();
                let value = b[16 + nlen..16 + nlen + vlen].to_vec();
                Node::Xattr {
                    ino,
                    version,
                    delete,
                    name,
                    value,
                }
            }
            _ => return Err(Errno::EIO),
        };
        Ok(Some((node, total)))
    }

    /// The node's version (used by scan to pick winners).
    pub fn version(&self) -> u64 {
        match self {
            Node::Inode { version, .. }
            | Node::Dirent { version, .. }
            | Node::Xattr { version, .. } => *version,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inode_node_roundtrip() {
        let n = Node::Inode {
            ino: 7,
            version: 42,
            ftype: FT_REG,
            mode: 0o644,
            uid: 1,
            gid: 2,
            atime: 10,
            mtime: 20,
            ctime: 30,
            isize: 5,
            offset: 0,
            rewrite: true,
            data: Some(b"hello".to_vec()),
        };
        let bytes = n.encode();
        assert_eq!(bytes.len() % 4, 0);
        let (decoded, len) = Node::decode(&bytes).unwrap().unwrap();
        assert_eq!(decoded, n);
        assert_eq!(len, bytes.len());
    }

    #[test]
    fn metadata_only_inode_node() {
        let n = Node::Inode {
            ino: 3,
            version: 1,
            ftype: FT_DIR,
            mode: 0o755,
            uid: 0,
            gid: 0,
            atime: 0,
            mtime: 0,
            ctime: 0,
            isize: 0,
            offset: 0,
            rewrite: false,
            data: None,
        };
        let bytes = n.encode();
        let (decoded, _) = Node::decode(&bytes).unwrap().unwrap();
        assert_eq!(decoded, n);
    }

    #[test]
    fn dirent_and_deletion_roundtrip() {
        for ino in [9u32, 0] {
            let n = Node::Dirent {
                parent: 1,
                version: 8,
                ino,
                ftype: FT_REG,
                name: "file.txt".into(),
            };
            let (decoded, _) = Node::decode(&n.encode()).unwrap().unwrap();
            assert_eq!(decoded, n);
        }
    }

    #[test]
    fn xattr_roundtrip() {
        let n = Node::Xattr {
            ino: 4,
            version: 3,
            delete: false,
            name: "user.color".into(),
            value: b"blue".to_vec(),
        };
        let (decoded, _) = Node::decode(&n.encode()).unwrap().unwrap();
        assert_eq!(decoded, n);
        let d = Node::Xattr {
            ino: 4,
            version: 4,
            delete: true,
            name: "user.color".into(),
            value: Vec::new(),
        };
        let (decoded, _) = Node::decode(&d.encode()).unwrap().unwrap();
        assert_eq!(decoded, d);
    }

    #[test]
    fn erased_flash_reads_as_no_node() {
        assert_eq!(Node::decode(&[0xFF; 64]).unwrap(), None);
        assert_eq!(Node::decode(&[0x00; 64]).unwrap(), None);
        assert_eq!(Node::decode(&[0xFF; 3]).unwrap(), None);
    }

    #[test]
    fn corrupt_nodes_are_eio() {
        let mut bytes = Node::Dirent {
            parent: 1,
            version: 1,
            ino: 2,
            ftype: FT_REG,
            name: "x".into(),
        }
        .encode();
        bytes[2] = 99; // unknown type
        assert_eq!(Node::decode(&bytes), Err(Errno::EIO));
        // Valid magic but absurd total length: corruption, not end-of-log.
        let mut header = vec![0x85u8, 0x19, NT_INODE, 0xFF, 0xFF, 0xFF, 0x7F];
        header.resize(16, 0);
        assert_eq!(Node::decode(&header), Err(Errno::EIO));
    }

    #[test]
    fn bit_rot_in_body_fails_the_crc() {
        let mut bytes = Node::Dirent {
            parent: 1,
            version: 1,
            ino: 2,
            ftype: FT_REG,
            name: "x".into(),
        }
        .encode();
        // Flip one bit past the header: the node parses structurally but the
        // checksum no longer matches.
        bytes[HEADER_LEN + 2] ^= 0x40;
        assert_eq!(Node::decode(&bytes), Err(Errno::EIO));
    }

    #[test]
    fn torn_program_tail_fails_the_crc() {
        let good = Node::Xattr {
            ino: 4,
            version: 9,
            delete: false,
            name: "user.k".into(),
            value: b"value-bytes".to_vec(),
        }
        .encode();
        // A program interrupted by power loss leaves the tail erased (0xFF)
        // while the already-programmed header claims the full length.
        let mut torn = good.clone();
        for byte in &mut torn[good.len() - 6..] {
            *byte = 0xFF;
        }
        assert_eq!(Node::decode(&torn), Err(Errno::EIO));
    }

    #[test]
    fn sequential_nodes_parse_back_to_back() {
        let a = Node::Dirent {
            parent: 1,
            version: 1,
            ino: 2,
            ftype: FT_DIR,
            name: "d".into(),
        };
        let b = Node::Inode {
            ino: 2,
            version: 2,
            ftype: FT_DIR,
            mode: 0o755,
            uid: 0,
            gid: 0,
            atime: 0,
            mtime: 0,
            ctime: 0,
            isize: 0,
            offset: 0,
            rewrite: false,
            data: None,
        };
        let mut log = a.encode();
        log.extend_from_slice(&b.encode());
        log.extend_from_slice(&[0xFF; 32]); // erased tail
        let (n1, l1) = Node::decode(&log).unwrap().unwrap();
        assert_eq!(n1, a);
        let (n2, l2) = Node::decode(&log[l1..]).unwrap().unwrap();
        assert_eq!(n2, b);
        assert_eq!(Node::decode(&log[l1 + l2..]).unwrap(), None);
    }
}
