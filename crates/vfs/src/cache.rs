//! Kernel-style caches: dentry, attribute (inode), and page caches.
//!
//! These are the in-memory structures that make §3.2's cache-incoherency
//! problem *real* in this reproduction: when the model checker restores a
//! device image underneath a mounted file system, entries here keep
//! describing the pre-restore world. An unmount drops them (the paper's
//! workaround); VeriFS instead invalidates them through
//! [`crate::InvalidationSink`].

use std::collections::HashMap;
use std::sync::Arc;

use crate::types::{FileStat, Ino};

/// Hit/miss/invalidations counters shared by all cache types.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through.
    pub misses: u64,
    /// Entries dropped by invalidation.
    pub invalidations: u64,
}

/// A directory-entry cache with negative caching.
///
/// Maps `(parent inode, name)` to `Some(child)` or `None` — the *negative
/// dentry* meaning "known not to exist". Stale negative dentries are what
/// made VeriFS claim a directory existed when it did not (paper §6, bug 2 is
/// the mirror image: a stale *positive* dentry after rollback).
#[derive(Debug, Clone, Default)]
pub struct DentryCache {
    map: HashMap<(Ino, String), Option<Ino>>,
    stats: CacheStats,
}

impl DentryCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        DentryCache::default()
    }

    /// Records that `name` under `parent` resolves to `child` (or is known
    /// absent, with `None`).
    pub fn insert(&mut self, parent: Ino, name: &str, child: Option<Ino>) {
        self.map.insert((parent, name.to_string()), child);
    }

    /// Looks up `name` under `parent`. The outer `Option` is cache presence;
    /// the inner is the (possibly negative) resolution.
    pub fn lookup(&mut self, parent: Ino, name: &str) -> Option<Option<Ino>> {
        // Borrow-friendly key without allocating on the hot path would need
        // a raw-entry API; a temporary String is fine at simulation scale.
        let res = self.map.get(&(parent, name.to_string())).copied();
        match res {
            Some(_) => self.stats.hits += 1,
            None => self.stats.misses += 1,
        }
        res
    }

    /// Drops the entry for `name` under `parent`
    /// (`fuse_lowlevel_notify_inval_entry` analogue).
    pub fn invalidate_entry(&mut self, parent: Ino, name: &str) {
        if self.map.remove(&(parent, name.to_string())).is_some() {
            self.stats.invalidations += 1;
        }
    }

    /// Drops every entry that mentions `ino` as parent or child.
    pub fn invalidate_ino(&mut self, ino: Ino) {
        let before = self.map.len();
        self.map
            .retain(|(parent, _), child| *parent != ino && *child != Some(ino));
        self.stats.invalidations += (before - self.map.len()) as u64;
    }

    /// Drops everything (unmount / `invalidate_all`).
    pub fn clear(&mut self) {
        self.stats.invalidations += self.map.len() as u64;
        self.map.clear();
    }

    /// Number of cached (positive + negative) entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

/// An attribute (stat) cache keyed by inode.
#[derive(Debug, Clone, Default)]
pub struct AttrCache {
    map: HashMap<Ino, FileStat>,
    stats: CacheStats,
}

impl AttrCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        AttrCache::default()
    }

    /// Caches `stat` for its inode.
    pub fn insert(&mut self, stat: FileStat) {
        self.map.insert(stat.ino, stat);
    }

    /// Looks up cached attributes.
    pub fn lookup(&mut self, ino: Ino) -> Option<FileStat> {
        let res = self.map.get(&ino).copied();
        match res {
            Some(_) => self.stats.hits += 1,
            None => self.stats.misses += 1,
        }
        res
    }

    /// Drops the entry for `ino` (`notify_inval_inode` analogue).
    pub fn invalidate(&mut self, ino: Ino) {
        if self.map.remove(&ino).is_some() {
            self.stats.invalidations += 1;
        }
    }

    /// Drops everything.
    pub fn clear(&mut self) {
        self.stats.invalidations += self.map.len() as u64;
        self.map.clear();
    }

    /// Number of cached attribute entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

/// One cached page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Page {
    /// Page contents (always exactly the cache's page size). `Arc`-backed so
    /// cloning a cache — e.g. inside a VFS-level checkpoint of a mounted
    /// instance — shares page data until one side writes.
    pub data: Arc<Vec<u8>>,
    /// Whether the page has unwritten modifications.
    pub dirty: bool,
}

/// A write-back page cache keyed by `(inode, page index)`.
///
/// File systems read whole pages through the cache and mark written pages
/// dirty; `sync` walks the dirty pages back to the device. Because dirty
/// pages can describe a *newer* world than the device — or, after an external
/// device restore, an *older* one — this cache is the second ingredient of
/// §3.2's incoherency.
#[derive(Debug, Clone)]
pub struct PageCache {
    page_size: usize,
    pages: HashMap<(Ino, u64), Page>,
    stats: CacheStats,
}

impl PageCache {
    /// Creates a cache of `page_size`-byte pages.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is zero.
    pub fn new(page_size: usize) -> Self {
        assert!(page_size > 0, "page size must be nonzero");
        PageCache {
            page_size,
            pages: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// The configured page size.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Looks up a page.
    pub fn get(&mut self, ino: Ino, page: u64) -> Option<&Page> {
        let res = self.pages.get(&(ino, page));
        match res {
            Some(_) => self.stats.hits += 1,
            None => self.stats.misses += 1,
        }
        res
    }

    /// Inserts a clean page (e.g. just read from the device).
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the page size.
    pub fn fill(&mut self, ino: Ino, page: u64, data: Vec<u8>) {
        assert_eq!(data.len(), self.page_size, "page size mismatch");
        self.pages.insert(
            (ino, page),
            Page {
                data: Arc::new(data),
                dirty: false,
            },
        );
    }

    /// Writes `data` into a page at `offset`, marking it dirty. The page must
    /// already be present (read-modify-write discipline).
    ///
    /// # Panics
    ///
    /// Panics if the page is absent or the write exceeds the page.
    pub fn write(&mut self, ino: Ino, page: u64, offset: usize, data: &[u8]) {
        let p = self
            .pages
            .get_mut(&(ino, page))
            .expect("write to a page that was never filled");
        assert!(offset + data.len() <= self.page_size, "write exceeds page");
        Arc::make_mut(&mut p.data)[offset..offset + data.len()].copy_from_slice(data);
        p.dirty = true;
    }

    /// Iterates over dirty pages as `(ino, page index, contents)`.
    pub fn dirty_pages(&self) -> impl Iterator<Item = (Ino, u64, &[u8])> {
        self.pages
            .iter()
            .filter(|(_, p)| p.dirty)
            .map(|((ino, idx), p)| (*ino, *idx, p.data.as_slice()))
    }

    /// Marks every page clean (after a successful writeback).
    pub fn mark_all_clean(&mut self) {
        for p in self.pages.values_mut() {
            p.dirty = false;
        }
    }

    /// Number of dirty pages.
    pub fn dirty_count(&self) -> usize {
        self.pages.values().filter(|p| p.dirty).count()
    }

    /// Drops all pages of `ino`.
    pub fn invalidate_ino(&mut self, ino: Ino) {
        let before = self.pages.len();
        self.pages.retain(|(i, _), _| *i != ino);
        self.stats.invalidations += (before - self.pages.len()) as u64;
    }

    /// Drops everything.
    pub fn clear(&mut self) {
        self.stats.invalidations += self.pages.len() as u64;
        self.pages.clear();
    }

    /// Number of resident pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Total bytes held by resident pages.
    pub fn resident_bytes(&self) -> usize {
        self.pages.len() * self.page_size
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::FileType;

    #[test]
    fn dentry_positive_negative_and_invalidation() {
        let mut dc = DentryCache::new();
        dc.insert(Ino::ROOT, "a", Some(Ino(5)));
        dc.insert(Ino::ROOT, "gone", None);
        assert_eq!(dc.lookup(Ino::ROOT, "a"), Some(Some(Ino(5))));
        assert_eq!(dc.lookup(Ino::ROOT, "gone"), Some(None));
        assert_eq!(dc.lookup(Ino::ROOT, "other"), None);
        assert_eq!(dc.stats().hits, 2);
        assert_eq!(dc.stats().misses, 1);
        dc.invalidate_entry(Ino::ROOT, "a");
        assert_eq!(dc.lookup(Ino::ROOT, "a"), None);
    }

    #[test]
    fn dentry_invalidate_ino_drops_both_directions() {
        let mut dc = DentryCache::new();
        dc.insert(Ino(2), "x", Some(Ino(3)));
        dc.insert(Ino(3), "y", Some(Ino(4)));
        dc.insert(Ino(5), "z", Some(Ino(6)));
        dc.invalidate_ino(Ino(3));
        assert_eq!(dc.len(), 1);
        assert_eq!(dc.lookup(Ino(5), "z"), Some(Some(Ino(6))));
    }

    #[test]
    fn attr_cache_roundtrip() {
        let mut ac = AttrCache::new();
        let mut st = FileStat::zeroed(Ino(9), FileType::Regular);
        st.size = 42;
        ac.insert(st);
        assert_eq!(ac.lookup(Ino(9)).unwrap().size, 42);
        ac.invalidate(Ino(9));
        assert_eq!(ac.lookup(Ino(9)), None);
        assert_eq!(ac.stats().invalidations, 1);
    }

    #[test]
    fn page_cache_write_back_discipline() {
        let mut pc = PageCache::new(8);
        pc.fill(Ino(1), 0, vec![0; 8]);
        pc.fill(Ino(1), 1, vec![0; 8]);
        pc.write(Ino(1), 0, 2, b"hi");
        assert_eq!(pc.dirty_count(), 1);
        let dirty: Vec<_> = pc.dirty_pages().collect();
        assert_eq!(dirty.len(), 1);
        assert_eq!(&dirty[0].2[2..4], b"hi");
        pc.mark_all_clean();
        assert_eq!(pc.dirty_count(), 0);
    }

    #[test]
    fn page_cache_invalidate_and_accounting() {
        let mut pc = PageCache::new(4);
        pc.fill(Ino(1), 0, vec![1; 4]);
        pc.fill(Ino(2), 0, vec![2; 4]);
        assert_eq!(pc.resident_bytes(), 8);
        pc.invalidate_ino(Ino(1));
        assert_eq!(pc.len(), 1);
        assert!(pc.get(Ino(1), 0).is_none());
        assert!(pc.get(Ino(2), 0).is_some());
        pc.clear();
        assert!(pc.is_empty());
    }

    #[test]
    #[should_panic(expected = "never filled")]
    fn page_write_requires_fill() {
        let mut pc = PageCache::new(4);
        pc.write(Ino(1), 0, 0, b"x");
    }
}
