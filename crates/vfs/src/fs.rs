//! The `FileSystem` trait — the POSIX surface MCFS drives — and the
//! checkpoint/restore API the paper proposes file systems should expose.

use crate::errno::{Errno, VfsResult};
use crate::types::{AccessMode, DirEntry, Fd, FileMode, FileStat, OpenFlags, StatFs, XattrFlags};

/// Capability flags describing which optional operations a file system
/// supports. MCFS consults these so it only issues operations every checked
/// file system implements (VeriFS1, for instance, lacks `rename`, links, and
/// xattrs — paper §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FsCapabilities {
    /// Supports `rename`.
    pub rename: bool,
    /// Supports hard links.
    pub hardlink: bool,
    /// Supports symbolic links.
    pub symlink: bool,
    /// Supports extended attributes.
    pub xattr: bool,
    /// Supports `access`.
    pub access: bool,
    /// Implements the in-file-system checkpoint/restore API.
    pub checkpoint: bool,
}

impl FsCapabilities {
    /// Everything on.
    pub fn full() -> Self {
        FsCapabilities {
            rename: true,
            hardlink: true,
            symlink: true,
            xattr: true,
            access: true,
            checkpoint: true,
        }
    }

    /// The intersection of two capability sets — what MCFS may exercise when
    /// comparing two file systems.
    pub fn intersect(self, other: Self) -> Self {
        FsCapabilities {
            rename: self.rename && other.rename,
            hardlink: self.hardlink && other.hardlink,
            symlink: self.symlink && other.symlink,
            xattr: self.xattr && other.xattr,
            access: self.access && other.access,
            checkpoint: self.checkpoint && other.checkpoint,
        }
    }
}

/// What one fsck run found and fixed — the report a scan-and-repair pass
/// returns through [`FileSystem::fsck`].
///
/// The checker's repair oracles consume this: a *clean* second run
/// (`repairs_made == 0`) is how idempotence (fsck∘fsck ≡ fsck) is
/// established, and the `fixes` log names each repair for minimized traces
/// and lint reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// Metadata objects examined (inodes, dirents, journal blocks, log
    /// nodes — whatever the layout's unit of checking is).
    pub items_scanned: u64,
    /// Repairs applied to the on-disk state. Zero means the image was
    /// already consistent.
    pub repairs_made: u64,
    /// Human-readable description of each repair, in the order applied.
    pub fixes: Vec<String>,
}

impl RepairReport {
    /// Whether the pass found nothing to repair.
    pub fn is_clean(&self) -> bool {
        self.repairs_made == 0
    }

    /// Records one repair.
    pub fn fixed(&mut self, what: impl Into<String>) {
        self.repairs_made += 1;
        self.fixes.push(what.into());
    }

    /// Folds another pass's report into this one.
    pub fn merge(&mut self, other: RepairReport) {
        self.items_scanned += other.items_scanned;
        self.repairs_made += other.repairs_made;
        self.fixes.extend(other.fixes);
    }
}

/// A POSIX-like file system under test.
///
/// Semantics follow POSIX with these workspace-wide conventions:
///
/// * Paths are absolute and pre-validated with [`crate::path::validate`]
///   semantics; file systems re-validate and return `EINVAL`/`ENAMETOOLONG`.
/// * All operations except `mount` require the file system to be mounted and
///   return [`Errno::ENODEV`] otherwise.
/// * `read`/`write` operate at the descriptor's current offset; `lseek` is
///   absolute (`SEEK_SET` only — MCFS's parameter pools pick absolute
///   offsets).
/// * Symlinks are **not** followed by path resolution (MCFS compares them
///   structurally, and following them would make bounded pools unbounded).
///
/// Object safety is deliberate: MCFS stores checked file systems as
/// `Box<dyn FileSystem>`.
pub trait FileSystem: Send {
    /// A short identifier, e.g. `"ext4"` or `"verifs1"`.
    fn fs_name(&self) -> &str;

    /// What this implementation supports.
    fn capabilities(&self) -> FsCapabilities;

    /// Mounts the file system, reading persistent state from its backing
    /// device (if any) and initializing in-memory caches.
    ///
    /// # Errors
    ///
    /// `EBUSY` if already mounted; `EIO` if the on-device state is
    /// unrecognizable.
    fn mount(&mut self) -> VfsResult<()>;

    /// Unmounts: flushes dirty state to the backing device and drops all
    /// in-memory caches. The *only* way to guarantee no state remains in
    /// memory (paper §3.2).
    ///
    /// # Errors
    ///
    /// `ENODEV` if not mounted.
    fn unmount(&mut self) -> VfsResult<()>;

    /// Whether the file system is currently mounted.
    fn is_mounted(&self) -> bool;

    /// Flushes dirty in-memory state to the backing device without dropping
    /// caches (`sync(2)`).
    fn sync(&mut self) -> VfsResult<()>;

    /// Capacity and inode accounting.
    fn statfs(&self) -> VfsResult<StatFs>;

    /// Creates a regular file and opens it read-write
    /// (`open(path, O_CREAT|O_EXCL|O_RDWR, mode)`).
    ///
    /// # Errors
    ///
    /// `EEXIST` if the path exists, `ENOENT`/`ENOTDIR` for bad parents,
    /// `ENOSPC` when out of inodes or space.
    fn create(&mut self, path: &str, mode: FileMode) -> VfsResult<Fd>;

    /// Opens an existing file (or creates one, with `flags.create`).
    ///
    /// # Errors
    ///
    /// `ENOENT`, `EEXIST` (with `create+excl`), `EISDIR` when opening a
    /// directory for writing, `ELOOP` when the path names a symlink.
    fn open(&mut self, path: &str, flags: OpenFlags, mode: FileMode) -> VfsResult<Fd>;

    /// Closes a descriptor.
    ///
    /// # Errors
    ///
    /// `EBADF` for unknown descriptors.
    fn close(&mut self, fd: Fd) -> VfsResult<()>;

    /// Reads up to `buf.len()` bytes at the descriptor's offset, returning
    /// the count read (0 at EOF) and advancing the offset.
    ///
    /// # Errors
    ///
    /// `EBADF` if `fd` is unknown or not opened for reading.
    fn read(&mut self, fd: Fd, buf: &mut [u8]) -> VfsResult<usize>;

    /// Writes `data` at the descriptor's offset (or the end, with
    /// `O_APPEND`), returning the count written and advancing the offset.
    ///
    /// # Errors
    ///
    /// `EBADF` if not opened for writing; `ENOSPC`/`EDQUOT` when full;
    /// `EFBIG` past the implementation's maximum file size.
    fn write(&mut self, fd: Fd, data: &[u8]) -> VfsResult<usize>;

    /// Sets the descriptor's offset to `offset` (`lseek(fd, offset,
    /// SEEK_SET)`), returning the new offset. Seeking past EOF is allowed.
    ///
    /// # Errors
    ///
    /// `EBADF` for unknown descriptors.
    fn lseek(&mut self, fd: Fd, offset: u64) -> VfsResult<u64>;

    /// Truncates or extends the file at `path` to exactly `size` bytes;
    /// extension zero-fills.
    ///
    /// # Errors
    ///
    /// `ENOENT`, `EISDIR`, `ENOSPC` when extension cannot be satisfied.
    fn truncate(&mut self, path: &str, size: u64) -> VfsResult<()>;

    /// Creates a directory.
    ///
    /// # Errors
    ///
    /// `EEXIST`, `ENOENT`/`ENOTDIR` for bad parents, `ENOSPC`.
    fn mkdir(&mut self, path: &str, mode: FileMode) -> VfsResult<()>;

    /// Removes an empty directory.
    ///
    /// # Errors
    ///
    /// `ENOTEMPTY` if non-empty, `ENOTDIR` if not a directory, `EINVAL` /
    /// `EBUSY` for the root.
    fn rmdir(&mut self, path: &str) -> VfsResult<()>;

    /// Removes a file or symlink (`unlink(2)`).
    ///
    /// # Errors
    ///
    /// `EISDIR` for directories, `ENOENT` if missing.
    fn unlink(&mut self, path: &str) -> VfsResult<()>;

    /// Stats a path (without following a final symlink, i.e. `lstat`).
    fn stat(&mut self, path: &str) -> VfsResult<FileStat>;

    /// Lists a directory. Order is implementation defined — MCFS sorts
    /// before comparing (paper §3.4). Does not include `.`/`..`.
    fn getdents(&mut self, path: &str) -> VfsResult<Vec<DirEntry>>;

    /// Changes permission bits.
    fn chmod(&mut self, path: &str, mode: FileMode) -> VfsResult<()>;

    /// Changes ownership.
    fn chown(&mut self, path: &str, uid: u32, gid: u32) -> VfsResult<()>;

    /// Sets access and modification times (virtual-clock nanoseconds).
    fn utimens(&mut self, path: &str, atime: u64, mtime: u64) -> VfsResult<()>;

    /// Flushes one file's dirty state (`fsync(2)`). The default flushes
    /// everything, which is correct but coarse.
    ///
    /// # Errors
    ///
    /// `EBADF` for unknown descriptors.
    fn fsync(&mut self, fd: Fd) -> VfsResult<()> {
        let _ = fd;
        self.sync()
    }

    /// Renames `src` to `dst` (POSIX `rename(2)`, including atomic
    /// replacement of an existing `dst`).
    ///
    /// # Errors
    ///
    /// `ENOSYS` when unsupported (VeriFS1); otherwise POSIX rename errors
    /// (`EINVAL` for directory cycles, `ENOTEMPTY`/`EEXIST`, `EISDIR`,
    /// `ENOTDIR`).
    fn rename(&mut self, src: &str, dst: &str) -> VfsResult<()> {
        let _ = (src, dst);
        Err(Errno::ENOSYS)
    }

    /// Creates a hard link `new` to the file `existing`.
    ///
    /// # Errors
    ///
    /// `ENOSYS` when unsupported; `EPERM` for directories; `EEXIST`;
    /// `EMLINK` at the link cap.
    fn link(&mut self, existing: &str, new: &str) -> VfsResult<()> {
        let _ = (existing, new);
        Err(Errno::ENOSYS)
    }

    /// Creates a symlink at `linkpath` containing `target`.
    ///
    /// # Errors
    ///
    /// `ENOSYS` when unsupported; `EEXIST`; `ENOSPC`.
    fn symlink(&mut self, target: &str, linkpath: &str) -> VfsResult<()> {
        let _ = (target, linkpath);
        Err(Errno::ENOSYS)
    }

    /// Reads a symlink's target.
    ///
    /// # Errors
    ///
    /// `ENOSYS` when unsupported; `EINVAL` if `path` is not a symlink.
    fn readlink(&mut self, path: &str) -> VfsResult<String> {
        let _ = path;
        Err(Errno::ENOSYS)
    }

    /// Checks accessibility (`access(2)`) for uid/gid 0 semantics: the owner
    /// permission bits are consulted.
    ///
    /// # Errors
    ///
    /// `ENOSYS` when unsupported; `EACCES` when denied; `ENOENT`.
    fn access(&mut self, path: &str, mode: AccessMode) -> VfsResult<()> {
        let _ = (path, mode);
        Err(Errno::ENOSYS)
    }

    /// Sets an extended attribute.
    ///
    /// # Errors
    ///
    /// `ENOSYS` when unsupported; `EEXIST`/`ENODATA` per [`XattrFlags`];
    /// `ENOSPC`.
    fn setxattr(
        &mut self,
        path: &str,
        name: &str,
        value: &[u8],
        flags: XattrFlags,
    ) -> VfsResult<()> {
        let _ = (path, name, value, flags);
        Err(Errno::ENOSYS)
    }

    /// Reads an extended attribute.
    ///
    /// # Errors
    ///
    /// `ENOSYS` when unsupported; `ENODATA` if absent.
    fn getxattr(&mut self, path: &str, name: &str) -> VfsResult<Vec<u8>> {
        let _ = (path, name);
        Err(Errno::ENOSYS)
    }

    /// Lists extended attribute names (sorted).
    ///
    /// # Errors
    ///
    /// `ENOSYS` when unsupported.
    fn listxattr(&mut self, path: &str) -> VfsResult<Vec<String>> {
        let _ = path;
        Err(Errno::ENOSYS)
    }

    /// Removes an extended attribute.
    ///
    /// # Errors
    ///
    /// `ENOSYS` when unsupported; `ENODATA` if absent.
    fn removexattr(&mut self, path: &str, name: &str) -> VfsResult<()> {
        let _ = (path, name);
        Err(Errno::ENOSYS)
    }

    /// A digest of concrete state the abstraction function cannot observe
    /// through the POSIX interface *now* but that can become observable
    /// later (e.g. stale bytes beyond EOF in a buffer that is never shrunk,
    /// exposed by a buggy hole write). Explorers fold this into the
    /// visited-set identity so two states that alias under the abstraction
    /// but differ in hidden residue are not deduplicated — aliasing there
    /// would silently prune the only path that surfaces a bug.
    ///
    /// `None` (the default) means the implementation tracks no such hidden
    /// state, or its residue is indistinguishable from none (all-zero). The
    /// digest must be a pure function of the file-system state: equal after
    /// checkpoint/restore, independent of wall-clock or allocation order.
    fn opaque_state_digest(&self) -> Option<u128> {
        None
    }

    /// Whether this implementation ships a scan-and-repair checker
    /// ([`fsck`](Self::fsck)). Targets advertise this so the model checker
    /// only schedules `FsOp::Fsck` against backends that implement it.
    fn supports_fsck(&self) -> bool {
        false
    }

    /// Runs the file system's offline scan-and-repair checker (fsck) over
    /// the backing device and returns what it found and fixed.
    ///
    /// Contract (what the repair oracles check):
    ///
    /// * **Works on the persistent image.** If mounted, the implementation
    ///   syncs, unmounts, repairs the device, and remounts — on return the
    ///   mount state is what it was before the call.
    /// * **Idempotent**: running fsck on an image fsck just repaired finds
    ///   nothing (`is_clean()`), and the abstract state is unchanged.
    /// * **Crash-safe**: a power cut anywhere inside the repair, followed
    ///   by another fsck run, converges to the same repaired state.
    ///
    /// # Errors
    ///
    /// `ENOSYS` when unsupported (the default); `EIO` when the device fails
    /// or the image is damaged beyond what the checker can repair.
    fn fsck(&mut self) -> VfsResult<RepairReport> {
        Err(Errno::ENOSYS)
    }

    /// Whether this implementation keeps kernel-side metadata caches
    /// (dentry/attribute caches a FUSE mount fills on lookup) that
    /// nominally read-only operations mutate. The effect-signature analysis
    /// marks cache-filling reads as kernel-state writes when any checked
    /// target reports `true`, so partial-order reduction never sleeps a
    /// read whose cache fill changes later observable behavior.
    fn caches_metadata(&self) -> bool {
        false
    }

    /// Declares which logical thread issues the operations that follow.
    ///
    /// Interleaving exploration drives one file system from N logical
    /// threads, one op at a time; before each op the harness announces the
    /// issuing thread here. Implementations with per-thread visibility
    /// state (e.g. the FUSE mount's per-thread kernel cache views) switch
    /// their active view; everything else ignores the call (the default).
    /// Sequential harnesses never call this, so single-thread behaviour is
    /// unchanged.
    fn set_active_thread(&mut self, tid: u16) {
        let _ = tid;
    }
}

/// The paper's proposed state checkpoint/restore API (§5), exposed by VeriFS
/// via `ioctl_CHECKPOINT` / `ioctl_RESTORE`.
///
/// Keys are caller-chosen 64-bit identifiers into the file system's snapshot
/// pool.
pub trait FsCheckpoint {
    /// Saves the complete file-system state (in-memory and, if any, on-disk)
    /// under `key`, replacing any snapshot already stored there.
    ///
    /// # Errors
    ///
    /// `ENODEV` if not mounted; `ENOSPC` if the snapshot pool is full.
    fn checkpoint(&mut self, key: u64) -> VfsResult<()>;

    /// Restores the state saved under `key` and **discards** the snapshot —
    /// the paper's `ioctl_RESTORE` semantics. Kernel-visible caches are
    /// invalidated as part of the restore.
    ///
    /// # Errors
    ///
    /// `ENOENT` if no snapshot exists under `key`.
    fn restore(&mut self, key: u64) -> VfsResult<()>;

    /// Restores the state saved under `key`, keeping the snapshot so it can
    /// be restored again. Model checkers re-enter a parent state once per
    /// branch, so this variant avoids a redundant checkpoint per branch.
    ///
    /// # Errors
    ///
    /// `ENOENT` if no snapshot exists under `key`.
    fn restore_keep(&mut self, key: u64) -> VfsResult<()>;

    /// Drops the snapshot stored under `key`.
    ///
    /// # Errors
    ///
    /// `ENOENT` if no snapshot exists under `key`.
    fn discard(&mut self, key: u64) -> VfsResult<()>;

    /// Number of snapshots currently in the pool.
    fn snapshot_count(&self) -> usize;

    /// Approximate *logical* bytes held by the snapshot pool — the model
    /// checker's memory model charges these (SPIN really holds a full copy
    /// per tracked state, so the virtual-memory accounting must too).
    fn snapshot_bytes(&self) -> usize;

    /// Approximate *host* bytes uniquely attributable to the snapshot pool.
    /// Copy-on-write implementations override this to exclude storage shared
    /// with the live state or between snapshots; the default assumes deep
    /// copies, where logical and resident sizes coincide.
    fn snapshot_resident_bytes(&self) -> usize {
        self.snapshot_bytes()
    }
}

/// Callback interface a file system uses to tell the kernel to invalidate its
/// caches — the analogue of `fuse_lowlevel_notify_inval_entry` and
/// `fuse_lowlevel_notify_inval_inode`, which fixed VeriFS bug #2 (paper §6).
pub trait InvalidationSink: Send + Sync {
    /// Invalidate the dentry `name` under the directory inode `parent`.
    fn invalidate_entry(&self, parent: u64, name: &str);

    /// Invalidate cached attributes/pages for inode `ino`.
    fn invalidate_inode(&self, ino: u64);

    /// Invalidate everything (cheap hammer used on full-state restore).
    fn invalidate_all(&self);
}

/// Access to a file system's backing device image — the analogue of MCFS
/// mmapping each file system's backend storage into SPIN's address space
/// (paper §4) to track persistent state.
///
/// Restoring a device image while the file system is mounted is *allowed*
/// and *dangerous*: the file system's caches are not told, which is exactly
/// the cache-incoherency failure of §3.2. MCFS's remount strategy pairs every
/// restore with an unmount/mount cycle.
pub trait DeviceBacked {
    /// Captures the full backing-device image.
    ///
    /// # Errors
    ///
    /// `EIO` if the device fails.
    fn snapshot_device(&mut self) -> VfsResult<blockdev::DeviceSnapshot>;

    /// Restores a backing-device image captured by
    /// [`snapshot_device`](Self::snapshot_device), without telling the
    /// mounted file system.
    ///
    /// # Errors
    ///
    /// `EIO` on geometry mismatch or device failure.
    fn restore_device(&mut self, snapshot: &blockdev::DeviceSnapshot) -> VfsResult<()>;

    /// Size of the backing device in bytes (drives the checker's
    /// concrete-state memory accounting).
    fn device_size_bytes(&self) -> u64;

    /// Emulates a whole-system crash and reboot: all in-memory file-system
    /// state is dropped *without* a sync, the device loses its volatile
    /// write cache ([`blockdev::BlockDevice::power_cut`]), and the file
    /// system is mounted again so its recovery (journal replay, log scan,
    /// …) runs. On return the file system is mounted.
    ///
    /// # Errors
    ///
    /// `ENOSYS` when the implementation cannot crash-remount (the default);
    /// otherwise whatever mount/recovery fails with — which the checker
    /// treats as a violation, since a crashed file system must stay
    /// remountable.
    fn crash_reboot(&mut self) -> VfsResult<()> {
        Err(crate::Errno::ENOSYS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capabilities_intersect() {
        let a = FsCapabilities {
            rename: true,
            hardlink: true,
            symlink: false,
            xattr: true,
            access: false,
            checkpoint: true,
        };
        let b = FsCapabilities::full();
        let i = a.intersect(b);
        assert_eq!(i, a);
        let none = a.intersect(FsCapabilities::default());
        assert_eq!(none, FsCapabilities::default());
    }

    /// A minimal impl exercising the defaulted optional operations.
    struct Stub;
    impl FileSystem for Stub {
        fn fs_name(&self) -> &str {
            "stub"
        }
        fn capabilities(&self) -> FsCapabilities {
            FsCapabilities::default()
        }
        fn mount(&mut self) -> VfsResult<()> {
            Ok(())
        }
        fn unmount(&mut self) -> VfsResult<()> {
            Ok(())
        }
        fn is_mounted(&self) -> bool {
            true
        }
        fn sync(&mut self) -> VfsResult<()> {
            Ok(())
        }
        fn statfs(&self) -> VfsResult<StatFs> {
            Err(Errno::ENOSYS)
        }
        fn create(&mut self, _: &str, _: FileMode) -> VfsResult<Fd> {
            Err(Errno::ENOSYS)
        }
        fn open(&mut self, _: &str, _: OpenFlags, _: FileMode) -> VfsResult<Fd> {
            Err(Errno::ENOSYS)
        }
        fn close(&mut self, _: Fd) -> VfsResult<()> {
            Err(Errno::ENOSYS)
        }
        fn read(&mut self, _: Fd, _: &mut [u8]) -> VfsResult<usize> {
            Err(Errno::ENOSYS)
        }
        fn write(&mut self, _: Fd, _: &[u8]) -> VfsResult<usize> {
            Err(Errno::ENOSYS)
        }
        fn lseek(&mut self, _: Fd, _: u64) -> VfsResult<u64> {
            Err(Errno::ENOSYS)
        }
        fn truncate(&mut self, _: &str, _: u64) -> VfsResult<()> {
            Err(Errno::ENOSYS)
        }
        fn mkdir(&mut self, _: &str, _: FileMode) -> VfsResult<()> {
            Err(Errno::ENOSYS)
        }
        fn rmdir(&mut self, _: &str) -> VfsResult<()> {
            Err(Errno::ENOSYS)
        }
        fn unlink(&mut self, _: &str) -> VfsResult<()> {
            Err(Errno::ENOSYS)
        }
        fn stat(&mut self, _: &str) -> VfsResult<FileStat> {
            Err(Errno::ENOSYS)
        }
        fn getdents(&mut self, _: &str) -> VfsResult<Vec<DirEntry>> {
            Err(Errno::ENOSYS)
        }
        fn chmod(&mut self, _: &str, _: FileMode) -> VfsResult<()> {
            Err(Errno::ENOSYS)
        }
        fn chown(&mut self, _: &str, _: u32, _: u32) -> VfsResult<()> {
            Err(Errno::ENOSYS)
        }
        fn utimens(&mut self, _: &str, _: u64, _: u64) -> VfsResult<()> {
            Err(Errno::ENOSYS)
        }
    }

    #[test]
    fn optional_ops_default_to_enosys() {
        let mut s = Stub;
        assert_eq!(s.rename("/a", "/b"), Err(Errno::ENOSYS));
        assert_eq!(s.link("/a", "/b"), Err(Errno::ENOSYS));
        assert_eq!(s.symlink("/a", "/b"), Err(Errno::ENOSYS));
        assert_eq!(s.readlink("/a"), Err(Errno::ENOSYS));
        assert_eq!(s.access("/a", AccessMode::read()), Err(Errno::ENOSYS));
        assert_eq!(
            s.setxattr("/a", "user.x", b"v", XattrFlags::Any),
            Err(Errno::ENOSYS)
        );
        assert_eq!(s.getxattr("/a", "user.x"), Err(Errno::ENOSYS));
        assert_eq!(s.listxattr("/a"), Err(Errno::ENOSYS));
        assert_eq!(s.removexattr("/a", "user.x"), Err(Errno::ENOSYS));
        assert!(!s.supports_fsck());
        assert_eq!(s.fsck(), Err(Errno::ENOSYS));
    }

    #[test]
    fn repair_report_accumulates() {
        let mut r = RepairReport::default();
        assert!(r.is_clean());
        r.items_scanned = 3;
        r.fixed("cleared orphan inode 7");
        let mut other = RepairReport {
            items_scanned: 2,
            ..RepairReport::default()
        };
        other.fixed("rebuilt block bitmap");
        r.merge(other);
        assert_eq!(r.items_scanned, 5);
        assert_eq!(r.repairs_made, 2);
        assert_eq!(r.fixes.len(), 2);
        assert!(!r.is_clean());
    }

    #[test]
    fn stub_is_object_safe() {
        let boxed: Box<dyn FileSystem> = Box::new(Stub);
        assert_eq!(boxed.fs_name(), "stub");
    }
}
