//! Common on-the-wire types: stat, dirent, statfs, open flags, modes.

use std::fmt;

/// Inode number newtype.
///
/// `Ino(1)` is the root directory on every file system in this workspace,
/// mirroring common Unix convention (ext2's root is inode 2; we normalize to 1
/// in the VFS to keep cross-file-system comparisons simple).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ino(pub u64);

impl Ino {
    /// The root directory inode number.
    pub const ROOT: Ino = Ino(1);
}

impl fmt::Display for Ino {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// File descriptor newtype returned by `open`/`create`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fd(pub u32);

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fd{}", self.0)
    }
}

/// The type of a file-system object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FileType {
    /// Regular file.
    Regular,
    /// Directory.
    Directory,
    /// Symbolic link.
    Symlink,
}

impl FileType {
    /// One-character rendering used in listings (`-`, `d`, `l`).
    pub fn as_char(self) -> char {
        match self {
            FileType::Regular => '-',
            FileType::Directory => 'd',
            FileType::Symlink => 'l',
        }
    }
}

impl fmt::Display for FileType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FileType::Regular => "regular file",
            FileType::Directory => "directory",
            FileType::Symlink => "symbolic link",
        };
        f.write_str(s)
    }
}

/// Permission bits (the low 12 bits of `st_mode`: `rwxrwxrwx` plus
/// setuid/setgid/sticky).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileMode(pub u16);

impl FileMode {
    /// `0o644` — the usual default for regular files.
    pub const REG_DEFAULT: FileMode = FileMode(0o644);
    /// `0o755` — the usual default for directories.
    pub const DIR_DEFAULT: FileMode = FileMode(0o755);
    /// Mask of meaningful bits.
    pub const MASK: u16 = 0o7777;

    /// Creates a mode, truncating to the meaningful 12 bits.
    pub fn new(bits: u16) -> Self {
        FileMode(bits & Self::MASK)
    }

    /// The raw bits.
    pub fn bits(self) -> u16 {
        self.0
    }

    /// Whether the owner-execute bit is set (used by `access(X_OK)`).
    pub fn owner_exec(self) -> bool {
        self.0 & 0o100 != 0
    }

    /// Whether the owner-write bit is set.
    pub fn owner_write(self) -> bool {
        self.0 & 0o200 != 0
    }

    /// Whether the owner-read bit is set.
    pub fn owner_read(self) -> bool {
        self.0 & 0o400 != 0
    }
}

impl Default for FileMode {
    fn default() -> Self {
        FileMode::REG_DEFAULT
    }
}

impl fmt::Display for FileMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04o}", self.0)
    }
}

/// `stat(2)` result.
///
/// Times are in nanoseconds of the harness's virtual clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileStat {
    /// Inode number.
    pub ino: Ino,
    /// Object type.
    pub ftype: FileType,
    /// Permission bits.
    pub mode: FileMode,
    /// Hard-link count.
    pub nlink: u32,
    /// Owner user id.
    pub uid: u32,
    /// Owner group id.
    pub gid: u32,
    /// Size in bytes. For directories this is implementation defined (ext
    /// reports block multiples; xfs and VeriFS report entry-based sizes) —
    /// which is exactly why MCFS's abstraction function ignores it.
    pub size: u64,
    /// Number of 512-byte blocks allocated.
    pub blocks: u64,
    /// Last access time (virtual ns).
    pub atime: u64,
    /// Last modification time (virtual ns).
    pub mtime: u64,
    /// Last status change time (virtual ns).
    pub ctime: u64,
}

impl FileStat {
    /// A zeroed stat for `ino` with the given type — convenient seed value
    /// for file systems building up the result.
    pub fn zeroed(ino: Ino, ftype: FileType) -> Self {
        FileStat {
            ino,
            ftype,
            mode: FileMode::new(0),
            nlink: 0,
            uid: 0,
            gid: 0,
            size: 0,
            blocks: 0,
            atime: 0,
            mtime: 0,
            ctime: 0,
        }
    }
}

/// One directory entry as returned by `getdents`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DirEntry {
    /// Entry name (no slash).
    pub name: String,
    /// Inode the entry refers to.
    pub ino: Ino,
    /// Type of the referent.
    pub ftype: FileType,
}

impl fmt::Display for DirEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{} {}", self.ftype.as_char(), self.ino, self.name)
    }
}

/// `statfs(2)` result: capacity accounting, used by MCFS's free-space
/// equalization (paper §3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatFs {
    /// Fundamental block size.
    pub block_size: u32,
    /// Total data blocks.
    pub blocks: u64,
    /// Free blocks.
    pub blocks_free: u64,
    /// Free blocks available to unprivileged users.
    pub blocks_avail: u64,
    /// Total inodes.
    pub files: u64,
    /// Free inodes.
    pub files_free: u64,
    /// Maximum filename length.
    pub name_max: u32,
}

impl StatFs {
    /// Free bytes available to unprivileged users.
    pub fn bytes_avail(&self) -> u64 {
        self.blocks_avail * self.block_size as u64
    }
}

/// `open(2)` flag set.
///
/// A tiny purpose-built flag type (per C-BITFLAG we would normally reach for
/// the `bitflags` crate, but the approved dependency list doesn't include it
/// and the flag set is small and closed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct OpenFlags {
    /// Open for reading.
    pub read: bool,
    /// Open for writing.
    pub write: bool,
    /// Create the file if it does not exist.
    pub create: bool,
    /// With `create`: fail with `EEXIST` if the file already exists.
    pub excl: bool,
    /// Truncate to zero length on open (requires `write`).
    pub trunc: bool,
    /// All writes append to the end of the file.
    pub append: bool,
}

impl OpenFlags {
    /// `O_RDONLY`.
    pub fn read_only() -> Self {
        OpenFlags {
            read: true,
            ..OpenFlags::default()
        }
    }

    /// `O_WRONLY`.
    pub fn write_only() -> Self {
        OpenFlags {
            write: true,
            ..OpenFlags::default()
        }
    }

    /// `O_RDWR`.
    pub fn read_write() -> Self {
        OpenFlags {
            read: true,
            write: true,
            ..OpenFlags::default()
        }
    }

    /// Adds `O_CREAT`.
    pub fn with_create(mut self) -> Self {
        self.create = true;
        self
    }

    /// Adds `O_EXCL`.
    pub fn with_excl(mut self) -> Self {
        self.excl = true;
        self
    }

    /// Adds `O_TRUNC`.
    pub fn with_trunc(mut self) -> Self {
        self.trunc = true;
        self
    }

    /// Adds `O_APPEND`.
    pub fn with_append(mut self) -> Self {
        self.append = true;
        self
    }
}

impl fmt::Display for OpenFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<&str> = Vec::new();
        match (self.read, self.write) {
            (true, true) => parts.push("O_RDWR"),
            (false, true) => parts.push("O_WRONLY"),
            _ => parts.push("O_RDONLY"),
        }
        if self.create {
            parts.push("O_CREAT");
        }
        if self.excl {
            parts.push("O_EXCL");
        }
        if self.trunc {
            parts.push("O_TRUNC");
        }
        if self.append {
            parts.push("O_APPEND");
        }
        f.write_str(&parts.join("|"))
    }
}

/// `access(2)` check set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct AccessMode {
    /// `R_OK`.
    pub read: bool,
    /// `W_OK`.
    pub write: bool,
    /// `X_OK`.
    pub exec: bool,
}

impl AccessMode {
    /// `F_OK` — existence only.
    pub fn exists() -> Self {
        AccessMode::default()
    }

    /// `R_OK`.
    pub fn read() -> Self {
        AccessMode {
            read: true,
            ..AccessMode::default()
        }
    }

    /// `W_OK`.
    pub fn write() -> Self {
        AccessMode {
            write: true,
            ..AccessMode::default()
        }
    }

    /// `X_OK`.
    pub fn exec() -> Self {
        AccessMode {
            exec: true,
            ..AccessMode::default()
        }
    }
}

/// Flag controlling `setxattr` create/replace behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum XattrFlags {
    /// Create or replace (flags = 0).
    #[default]
    Any,
    /// `XATTR_CREATE`: fail with `EEXIST` if the attribute exists.
    Create,
    /// `XATTR_REPLACE`: fail with `ENODATA` if the attribute does not exist.
    Replace,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_truncates_to_mask() {
        assert_eq!(FileMode::new(0o17777).bits(), 0o7777);
        assert!(FileMode::new(0o700).owner_read());
        assert!(FileMode::new(0o700).owner_write());
        assert!(FileMode::new(0o700).owner_exec());
        assert!(!FileMode::new(0o600).owner_exec());
    }

    #[test]
    fn open_flags_display() {
        let f = OpenFlags::read_write().with_create().with_trunc();
        assert_eq!(f.to_string(), "O_RDWR|O_CREAT|O_TRUNC");
        assert_eq!(OpenFlags::read_only().to_string(), "O_RDONLY");
        assert_eq!(
            OpenFlags::write_only().with_append().to_string(),
            "O_WRONLY|O_APPEND"
        );
    }

    #[test]
    fn statfs_bytes_avail() {
        let s = StatFs {
            block_size: 1024,
            blocks: 100,
            blocks_free: 60,
            blocks_avail: 50,
            files: 32,
            files_free: 30,
            name_max: 255,
        };
        assert_eq!(s.bytes_avail(), 51_200);
    }

    #[test]
    fn dir_entry_display() {
        let e = DirEntry {
            name: "foo".into(),
            ino: Ino(7),
            ftype: FileType::Directory,
        };
        assert_eq!(e.to_string(), "d#7 foo");
    }

    #[test]
    fn file_type_chars() {
        assert_eq!(FileType::Regular.as_char(), '-');
        assert_eq!(FileType::Directory.as_char(), 'd');
        assert_eq!(FileType::Symlink.as_char(), 'l');
    }
}
