//! POSIX error-number model.
//!
//! MCFS's integrity checks compare error codes across file systems after every
//! operation, so the whole reproduction shares one errno vocabulary.

use std::error::Error;
use std::fmt;

/// POSIX error numbers used across the simulated file systems.
///
/// The numeric values match Linux's on x86-64, which keeps discrepancy reports
/// familiar to file-system developers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(i32)]
#[non_exhaustive]
pub enum Errno {
    /// Operation not permitted.
    EPERM = 1,
    /// No such file or directory.
    ENOENT = 2,
    /// I/O error.
    EIO = 5,
    /// Bad file descriptor.
    EBADF = 9,
    /// Permission denied.
    EACCES = 13,
    /// Device or resource busy.
    EBUSY = 16,
    /// File exists.
    EEXIST = 17,
    /// Cross-device link.
    EXDEV = 18,
    /// No such device.
    ENODEV = 19,
    /// Not a directory.
    ENOTDIR = 20,
    /// Is a directory.
    EISDIR = 21,
    /// Invalid argument.
    EINVAL = 22,
    /// Too many open files in system.
    ENFILE = 23,
    /// Too many open files.
    EMFILE = 24,
    /// File too large.
    EFBIG = 27,
    /// No space left on device.
    ENOSPC = 28,
    /// Read-only file system.
    EROFS = 30,
    /// Too many links.
    EMLINK = 31,
    /// File name too long.
    ENAMETOOLONG = 36,
    /// Function not implemented.
    ENOSYS = 38,
    /// Directory not empty.
    ENOTEMPTY = 39,
    /// Too many levels of symbolic links.
    ELOOP = 40,
    /// No data available (missing xattr; ENOATTR alias on Linux).
    ENODATA = 61,
    /// Value too large for defined data type.
    EOVERFLOW = 75,
    /// Stale file handle. Returned when a checkpoint key refers to a
    /// snapshot the budgeted checkpoint pool has evicted: the handle was
    /// valid once but the state behind it is gone.
    ESTALE = 116,
    /// Quota exceeded.
    EDQUOT = 122,
}

impl Errno {
    /// The conventional symbolic name (e.g. `"ENOENT"`).
    pub fn name(self) -> &'static str {
        match self {
            Errno::EPERM => "EPERM",
            Errno::ENOENT => "ENOENT",
            Errno::EIO => "EIO",
            Errno::EBADF => "EBADF",
            Errno::EACCES => "EACCES",
            Errno::EBUSY => "EBUSY",
            Errno::EEXIST => "EEXIST",
            Errno::EXDEV => "EXDEV",
            Errno::ENODEV => "ENODEV",
            Errno::ENOTDIR => "ENOTDIR",
            Errno::EISDIR => "EISDIR",
            Errno::EINVAL => "EINVAL",
            Errno::ENFILE => "ENFILE",
            Errno::EMFILE => "EMFILE",
            Errno::EFBIG => "EFBIG",
            Errno::ENOSPC => "ENOSPC",
            Errno::EROFS => "EROFS",
            Errno::EMLINK => "EMLINK",
            Errno::ENAMETOOLONG => "ENAMETOOLONG",
            Errno::ENOSYS => "ENOSYS",
            Errno::ENOTEMPTY => "ENOTEMPTY",
            Errno::ELOOP => "ELOOP",
            Errno::ENODATA => "ENODATA",
            Errno::EOVERFLOW => "EOVERFLOW",
            Errno::ESTALE => "ESTALE",
            Errno::EDQUOT => "EDQUOT",
        }
    }

    /// A short human-readable message, in the style of `strerror(3)`.
    pub fn strerror(self) -> &'static str {
        match self {
            Errno::EPERM => "operation not permitted",
            Errno::ENOENT => "no such file or directory",
            Errno::EIO => "input/output error",
            Errno::EBADF => "bad file descriptor",
            Errno::EACCES => "permission denied",
            Errno::EBUSY => "device or resource busy",
            Errno::EEXIST => "file exists",
            Errno::EXDEV => "invalid cross-device link",
            Errno::ENODEV => "no such device",
            Errno::ENOTDIR => "not a directory",
            Errno::EISDIR => "is a directory",
            Errno::EINVAL => "invalid argument",
            Errno::ENFILE => "too many open files in system",
            Errno::EMFILE => "too many open files",
            Errno::EFBIG => "file too large",
            Errno::ENOSPC => "no space left on device",
            Errno::EROFS => "read-only file system",
            Errno::EMLINK => "too many links",
            Errno::ENAMETOOLONG => "file name too long",
            Errno::ENOSYS => "function not implemented",
            Errno::ENOTEMPTY => "directory not empty",
            Errno::ELOOP => "too many levels of symbolic links",
            Errno::ENODATA => "no data available",
            Errno::EOVERFLOW => "value too large for defined data type",
            Errno::ESTALE => "stale file handle",
            Errno::EDQUOT => "disk quota exceeded",
        }
    }

    /// The numeric errno value (Linux x86-64 numbering).
    pub fn code(self) -> i32 {
        self as i32
    }
}

impl fmt::Display for Errno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name(), self.strerror())
    }
}

impl Error for Errno {}

/// Result alias used by every VFS operation.
pub type VfsResult<T> = Result<T, Errno>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_match_linux() {
        assert_eq!(Errno::ENOENT.code(), 2);
        assert_eq!(Errno::EEXIST.code(), 17);
        assert_eq!(Errno::ENOTEMPTY.code(), 39);
        assert_eq!(Errno::EDQUOT.code(), 122);
    }

    #[test]
    fn display_contains_name_and_description() {
        let s = Errno::ENOSPC.to_string();
        assert!(s.contains("ENOSPC"));
        assert!(s.contains("no space left"));
    }

    #[test]
    fn ordering_follows_codes() {
        assert!(Errno::EPERM < Errno::ENOENT);
        assert!(Errno::ENODATA < Errno::EDQUOT);
    }
}
