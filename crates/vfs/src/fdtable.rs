//! A generic file-descriptor table.
//!
//! Every simulated file system needs a descriptor table mapping [`Fd`]s to its
//! open-file state; this generic one enforces the lowest-free-slot allocation
//! rule and the per-process descriptor limit.

use crate::errno::{Errno, VfsResult};
use crate::types::Fd;

/// Default maximum number of simultaneously open descriptors.
pub const DEFAULT_MAX_FDS: usize = 256;

/// A file-descriptor table holding per-descriptor state `T`.
///
/// # Examples
///
/// ```
/// use vfs::FdTable;
///
/// let mut table: FdTable<String> = FdTable::new(16);
/// let fd = table.insert("open file".to_string()).unwrap();
/// assert_eq!(table.get(fd).unwrap(), "open file");
/// table.remove(fd).unwrap();
/// assert!(table.get(fd).is_err());
/// ```
#[derive(Debug, Clone)]
pub struct FdTable<T> {
    slots: Vec<Option<T>>,
    max_fds: usize,
    open_count: usize,
}

impl<T> FdTable<T> {
    /// Creates a table allowing at most `max_fds` simultaneous descriptors.
    pub fn new(max_fds: usize) -> Self {
        FdTable {
            slots: Vec::new(),
            max_fds,
            open_count: 0,
        }
    }

    /// Allocates the lowest free descriptor for `state` (POSIX requires
    /// lowest-numbered allocation).
    ///
    /// # Errors
    ///
    /// [`Errno::EMFILE`] when the table is full.
    pub fn insert(&mut self, state: T) -> VfsResult<Fd> {
        if self.open_count >= self.max_fds {
            return Err(Errno::EMFILE);
        }
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(state);
                self.open_count += 1;
                return Ok(Fd(i as u32));
            }
        }
        self.slots.push(Some(state));
        self.open_count += 1;
        Ok(Fd((self.slots.len() - 1) as u32))
    }

    /// Borrows the state for `fd`.
    ///
    /// # Errors
    ///
    /// [`Errno::EBADF`] for unknown descriptors.
    pub fn get(&self, fd: Fd) -> VfsResult<&T> {
        self.slots
            .get(fd.0 as usize)
            .and_then(Option::as_ref)
            .ok_or(Errno::EBADF)
    }

    /// Mutably borrows the state for `fd`.
    ///
    /// # Errors
    ///
    /// [`Errno::EBADF`] for unknown descriptors.
    pub fn get_mut(&mut self, fd: Fd) -> VfsResult<&mut T> {
        self.slots
            .get_mut(fd.0 as usize)
            .and_then(Option::as_mut)
            .ok_or(Errno::EBADF)
    }

    /// Closes `fd`, returning its state.
    ///
    /// # Errors
    ///
    /// [`Errno::EBADF`] for unknown descriptors.
    pub fn remove(&mut self, fd: Fd) -> VfsResult<T> {
        let slot = self.slots.get_mut(fd.0 as usize).ok_or(Errno::EBADF)?;
        let state = slot.take().ok_or(Errno::EBADF)?;
        self.open_count -= 1;
        Ok(state)
    }

    /// Number of open descriptors.
    pub fn len(&self) -> usize {
        self.open_count
    }

    /// Whether no descriptors are open.
    pub fn is_empty(&self) -> bool {
        self.open_count == 0
    }

    /// Closes every descriptor (used on unmount).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.open_count = 0;
    }

    /// Iterates over `(fd, state)` for open descriptors.
    pub fn iter(&self) -> impl Iterator<Item = (Fd, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|t| (Fd(i as u32), t)))
    }

    /// Iterates mutably over `(fd, state)` for open descriptors.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (Fd, &mut T)> {
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(|(i, s)| s.as_mut().map(|t| (Fd(i as u32), t)))
    }
}

impl<T> Default for FdTable<T> {
    fn default() -> Self {
        FdTable::new(DEFAULT_MAX_FDS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowest_free_slot_allocation() {
        let mut t: FdTable<u32> = FdTable::new(8);
        let a = t.insert(10).unwrap();
        let b = t.insert(20).unwrap();
        let c = t.insert(30).unwrap();
        assert_eq!((a, b, c), (Fd(0), Fd(1), Fd(2)));
        t.remove(b).unwrap();
        let d = t.insert(40).unwrap();
        assert_eq!(d, Fd(1), "reuses the lowest free slot");
    }

    #[test]
    fn emfile_when_full() {
        let mut t: FdTable<()> = FdTable::new(2);
        t.insert(()).unwrap();
        t.insert(()).unwrap();
        assert_eq!(t.insert(()), Err(Errno::EMFILE));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn bad_fd_errors() {
        let mut t: FdTable<u8> = FdTable::new(4);
        assert_eq!(t.get(Fd(0)), Err(Errno::EBADF));
        assert_eq!(t.get_mut(Fd(3)), Err(Errno::EBADF));
        assert_eq!(t.remove(Fd(9)), Err(Errno::EBADF));
        let fd = t.insert(1).unwrap();
        t.remove(fd).unwrap();
        assert_eq!(t.remove(fd), Err(Errno::EBADF), "double close");
    }

    #[test]
    fn clear_and_iter() {
        let mut t: FdTable<u8> = FdTable::new(4);
        t.insert(1).unwrap();
        t.insert(2).unwrap();
        let pairs: Vec<_> = t.iter().map(|(fd, v)| (fd.0, *v)).collect();
        assert_eq!(pairs, vec![(0, 1), (1, 2)]);
        for (_, v) in t.iter_mut() {
            *v += 10;
        }
        assert_eq!(*t.get(Fd(0)).unwrap(), 11);
        t.clear();
        assert!(t.is_empty());
    }
}
