//! POSIX-like virtual-file-system abstraction for the MCFS reproduction.
//!
//! This crate is the substrate every simulated file system implements and the
//! surface MCFS drives:
//!
//! * [`FileSystem`] — the POSIX operation set (open/read/write/…,
//!   mount/unmount, statfs, optional rename/link/symlink/xattr/access);
//! * [`FsCheckpoint`] — the paper's proposed state checkpoint/restore API
//!   (VeriFS's `ioctl_CHECKPOINT` / `ioctl_RESTORE`);
//! * [`InvalidationSink`] — the `fuse_lowlevel_notify_inval_*` analogue that
//!   lets a file system invalidate kernel caches after restoring state;
//! * [`Errno`] — the shared error vocabulary MCFS's integrity checks compare;
//! * [`cache`] — dentry/attr/page caches that make the paper's
//!   cache-incoherency challenge (§3.2) mechanically real;
//! * [`path`] — path validation and manipulation;
//! * [`FdTable`] — a generic descriptor table.
//!
//! # Examples
//!
//! Implementations live in the `verifs`, `fs-ext`, `fs-xfs`, and `fs-jffs2`
//! crates; a typical interaction looks like:
//!
//! ```no_run
//! use vfs::{FileSystem, FileMode};
//!
//! # fn demo(fs: &mut dyn FileSystem) -> vfs::VfsResult<()> {
//! fs.mount()?;
//! let fd = fs.create("/hello", FileMode::REG_DEFAULT)?;
//! fs.write(fd, b"world")?;
//! fs.close(fd)?;
//! assert_eq!(fs.stat("/hello")?.size, 5);
//! fs.unmount()?;
//! # Ok(())
//! # }
//! ```

pub mod cache;
mod errno;
mod fdtable;
mod fs;
pub mod path;
mod types;

pub use errno::{Errno, VfsResult};
pub use fdtable::{FdTable, DEFAULT_MAX_FDS};
pub use fs::{
    DeviceBacked, FileSystem, FsCapabilities, FsCheckpoint, InvalidationSink, RepairReport,
};
pub use types::{
    AccessMode, DirEntry, Fd, FileMode, FileStat, FileType, Ino, OpenFlags, StatFs, XattrFlags,
};
