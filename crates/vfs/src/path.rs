//! Path validation and manipulation.
//!
//! MCFS generates paths from a bounded pool, but the file systems themselves
//! validate every path they receive — that's where many real bugs hide. Paths
//! in this workspace are absolute, `/`-separated, and contain no `.` or `..`
//! components (the parameter pools never produce them; file systems reject
//! them with `EINVAL` rather than silently normalizing, so a checker mistake
//! is loud).

use crate::errno::{Errno, VfsResult};

/// Maximum length of a single path component.
pub const NAME_MAX: usize = 255;

/// Maximum length of a whole path.
pub const PATH_MAX: usize = 4096;

/// Validates a path: absolute, no empty/`.`/`..` components, no NUL bytes,
/// within [`NAME_MAX`]/[`PATH_MAX`].
///
/// `/` itself is valid.
///
/// # Errors
///
/// * [`Errno::EINVAL`] — not absolute, empty component, `.`/`..`, or NUL.
/// * [`Errno::ENAMETOOLONG`] — component exceeds [`NAME_MAX`] or path exceeds
///   [`PATH_MAX`].
///
/// # Examples
///
/// ```
/// use vfs::path::validate;
///
/// assert!(validate("/a/b").is_ok());
/// assert!(validate("a/b").is_err());
/// assert!(validate("/a/../b").is_err());
/// ```
pub fn validate(path: &str) -> VfsResult<()> {
    if path.len() > PATH_MAX {
        return Err(Errno::ENAMETOOLONG);
    }
    if !path.starts_with('/') || path.contains('\0') {
        return Err(Errno::EINVAL);
    }
    if path == "/" {
        return Ok(());
    }
    if path.ends_with('/') {
        return Err(Errno::EINVAL);
    }
    for comp in path[1..].split('/') {
        if comp.is_empty() || comp == "." || comp == ".." {
            return Err(Errno::EINVAL);
        }
        if comp.len() > NAME_MAX {
            return Err(Errno::ENAMETOOLONG);
        }
    }
    Ok(())
}

/// Returns the path components of a validated path (empty for `/`).
///
/// # Examples
///
/// ```
/// assert_eq!(vfs::path::components("/a/b"), vec!["a", "b"]);
/// assert!(vfs::path::components("/").is_empty());
/// ```
pub fn components(path: &str) -> Vec<&str> {
    if path == "/" {
        return Vec::new();
    }
    path.trim_start_matches('/').split('/').collect()
}

/// Whether the path is the root directory.
pub fn is_root(path: &str) -> bool {
    path == "/"
}

/// Splits a validated non-root path into `(parent, name)`.
///
/// # Errors
///
/// [`Errno::EINVAL`] if `path` is the root (which has no parent entry).
///
/// # Examples
///
/// ```
/// assert_eq!(vfs::path::split_parent("/a/b").unwrap(), ("/a".to_string(), "b"));
/// assert_eq!(vfs::path::split_parent("/a").unwrap(), ("/".to_string(), "a"));
/// ```
pub fn split_parent(path: &str) -> VfsResult<(String, &str)> {
    if is_root(path) {
        return Err(Errno::EINVAL);
    }
    let idx = path.rfind('/').expect("validated paths contain '/'");
    let name = &path[idx + 1..];
    let parent = if idx == 0 {
        "/".to_string()
    } else {
        path[..idx].to_string()
    };
    Ok((parent, name))
}

/// Returns the final component of a validated path (`"/"` for the root).
pub fn basename(path: &str) -> &str {
    if is_root(path) {
        return "/";
    }
    let idx = path.rfind('/').expect("validated paths contain '/'");
    &path[idx + 1..]
}

/// Joins a directory path and an entry name.
///
/// # Examples
///
/// ```
/// assert_eq!(vfs::path::join("/", "a"), "/a");
/// assert_eq!(vfs::path::join("/a", "b"), "/a/b");
/// ```
pub fn join(dir: &str, name: &str) -> String {
    if is_root(dir) {
        format!("/{name}")
    } else {
        format!("{dir}/{name}")
    }
}

/// Number of components in a validated path (0 for `/`).
pub fn depth(path: &str) -> usize {
    components(path).len()
}

/// Returns the strict ancestors of a validated path, nearest first and
/// ending with the root (empty for `/` itself).
///
/// Used by the fingerprint cache to propagate invalidation upward: an
/// operation on `/a/b/c` may change attributes hashed into the digests of
/// `/a/b`, `/a`, and `/`.
///
/// # Examples
///
/// ```
/// assert_eq!(vfs::path::ancestors("/a/b/c"), vec!["/a/b", "/a", "/"]);
/// assert_eq!(vfs::path::ancestors("/a"), vec!["/"]);
/// assert!(vfs::path::ancestors("/").is_empty());
/// ```
pub fn ancestors(path: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut rest = path;
    while !is_root(rest) {
        let idx = rest.rfind('/').expect("validated paths contain '/'");
        rest = if idx == 0 { "/" } else { &rest[..idx] };
        out.push(rest);
    }
    out
}

/// Whether `descendant` is `ancestor` itself or lies beneath it.
///
/// Used to reject `rename("/a", "/a/b")` with `EINVAL` as POSIX requires.
///
/// # Examples
///
/// ```
/// assert!(vfs::path::is_same_or_descendant("/a", "/a/b/c"));
/// assert!(!vfs::path::is_same_or_descendant("/a", "/ab"));
/// ```
pub fn is_same_or_descendant(ancestor: &str, descendant: &str) -> bool {
    if ancestor == descendant {
        return true;
    }
    if is_root(ancestor) {
        return true;
    }
    descendant.starts_with(ancestor) && descendant.as_bytes().get(ancestor.len()) == Some(&b'/')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_accepts_good_paths() {
        for p in ["/", "/a", "/a/b", "/a/b/c.txt", "/x-y_z.01"] {
            assert_eq!(validate(p), Ok(()), "{p}");
        }
    }

    #[test]
    fn ancestors_walk_to_the_root() {
        assert_eq!(ancestors("/a/b/c"), vec!["/a/b", "/a", "/"]);
        assert_eq!(ancestors("/a/b"), vec!["/a", "/"]);
        assert_eq!(ancestors("/a"), vec!["/"]);
        assert!(ancestors("/").is_empty());
    }

    #[test]
    fn validate_rejects_bad_paths() {
        for p in [
            "", "a", "a/b", "/a/", "//", "/a//b", "/.", "/..", "/a/./b", "/a/../b",
        ] {
            assert_eq!(validate(p), Err(Errno::EINVAL), "{p:?}");
        }
        assert_eq!(validate("/\0"), Err(Errno::EINVAL));
    }

    #[test]
    fn validate_rejects_long_names() {
        let long_name = format!("/{}", "x".repeat(NAME_MAX + 1));
        assert_eq!(validate(&long_name), Err(Errno::ENAMETOOLONG));
        let ok_name = format!("/{}", "x".repeat(NAME_MAX));
        assert_eq!(validate(&ok_name), Ok(()));
        let long_path = format!("/{}", "a/".repeat(PATH_MAX / 2));
        assert_eq!(validate(&long_path), Err(Errno::ENAMETOOLONG));
    }

    #[test]
    fn split_parent_cases() {
        assert_eq!(split_parent("/a").unwrap(), ("/".to_string(), "a"));
        assert_eq!(split_parent("/a/b/c").unwrap(), ("/a/b".to_string(), "c"));
        assert_eq!(split_parent("/"), Err(Errno::EINVAL));
    }

    #[test]
    fn join_and_basename_roundtrip() {
        for (dir, name) in [("/", "a"), ("/a", "b"), ("/a/b", "c")] {
            let joined = join(dir, name);
            assert_eq!(basename(&joined), name);
            let (parent, base) = split_parent(&joined).unwrap();
            assert_eq!(parent, dir);
            assert_eq!(base, name);
        }
        assert_eq!(basename("/"), "/");
    }

    #[test]
    fn depth_counts_components() {
        assert_eq!(depth("/"), 0);
        assert_eq!(depth("/a"), 1);
        assert_eq!(depth("/a/b/c"), 3);
    }

    #[test]
    fn descendant_checks() {
        assert!(is_same_or_descendant("/a", "/a"));
        assert!(is_same_or_descendant("/a", "/a/b"));
        assert!(is_same_or_descendant("/", "/anything"));
        assert!(!is_same_or_descendant("/a", "/ab"));
        assert!(!is_same_or_descendant("/a/b", "/a"));
    }
}
