//! Memory and swap modelling for stored concrete states.
//!
//! The paper's evaluation is dominated by memory effects: checking Ext4 vs
//! XFS consumed 105 GB of swap and ran 11× slower than Ext2 vs Ext4, and the
//! two-week VeriFS1 run (Fig. 3) slowed as checkpointed states spilled to
//! swap, then *sped up* again when the RAM hit rate happened to be high.
//!
//! [`MemoryModel`] reproduces those mechanics: stored states are charged
//! against a RAM budget with LRU residency; accesses to non-resident states
//! pay a swap-in cost in virtual time; exceeding RAM + swap is an
//! out-of-memory stop. Hit rate is *emergent* from the access pattern, which
//! is what produces Fig. 3's rebound.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::system::StateId;

/// Memory-model configuration.
#[derive(Debug, Clone, Copy)]
pub struct MemConfig {
    /// RAM budget in bytes (the paper's VM had 64 GB; benches scale down).
    pub ram_bytes: u64,
    /// Swap budget in bytes (the paper's VM had 128 GB).
    pub swap_bytes: u64,
    /// Cost of moving one mebibyte between RAM and swap, in virtual ns.
    pub swap_ns_per_mib: u64,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            ram_bytes: 64 << 30,
            swap_bytes: 128 << 30,
            // ~100 µs per MiB ≈ 10 GB/s SSD swap with overheads.
            swap_ns_per_mib: 100_000,
        }
    }
}

/// Raised when stored state exceeds RAM + swap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Bytes the model was asked to hold.
    pub needed: u64,
    /// The RAM + swap budget.
    pub budget: u64,
}

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "model checker out of memory: {} bytes needed, {} available",
            self.needed, self.budget
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// LRU-resident memory model for the checker's stored states.
#[derive(Debug)]
pub struct MemoryModel {
    cfg: MemConfig,
    sizes: HashMap<u64, u64>,
    resident: HashSet<u64>,
    resident_bytes: u64,
    /// LRU queue of `(id, touch_seq)` (may contain stale pairs; cleaned
    /// lazily — a pair is live only while it matches `touch_seq`).
    lru: VecDeque<(u64, u64)>,
    /// Latest touch sequence number per id; stale queue pairs are skipped.
    touch_seq: HashMap<u64, u64>,
    seq: u64,
    total_bytes: u64,
    /// Non-state overhead (visited table etc.) charged against RAM first.
    overhead_bytes: u64,
    peak_bytes: u64,
    swap_in_bytes: u64,
    swap_out_bytes: u64,
    hits: u64,
    misses: u64,
}

impl MemoryModel {
    /// Creates a model with the given budgets.
    pub fn new(cfg: MemConfig) -> Self {
        MemoryModel {
            cfg,
            sizes: HashMap::new(),
            resident: HashSet::new(),
            resident_bytes: 0,
            lru: VecDeque::new(),
            touch_seq: HashMap::new(),
            seq: 0,
            total_bytes: 0,
            overhead_bytes: 0,
            peak_bytes: 0,
            swap_in_bytes: 0,
            swap_out_bytes: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn ram_for_states(&self) -> u64 {
        self.cfg.ram_bytes.saturating_sub(self.overhead_bytes)
    }

    fn swap_cost(&self, bytes: u64) -> u64 {
        bytes * self.cfg.swap_ns_per_mib / (1 << 20)
    }

    fn touch(&mut self, id: u64) {
        self.seq += 1;
        self.touch_seq.insert(id, self.seq);
        self.lru.push_back((id, self.seq));
        // Lazy cleanup bound: the queue may hold stale duplicates.
        if self.lru.len() > self.sizes.len() * 4 + 16 {
            let touch_seq = &self.touch_seq;
            let sizes = &self.sizes;
            self.lru
                .retain(|&(x, s)| sizes.contains_key(&x) && touch_seq.get(&x) == Some(&s));
        }
    }

    fn evict_to_fit(&mut self) -> u64 {
        let budget = self.ram_for_states();
        let mut cost = 0;
        while self.resident_bytes > budget {
            let Some((victim, s)) = self.lru.pop_front() else {
                break;
            };
            // A re-touched id leaves a stale pair behind; only its newest
            // pair reflects true recency, so skip the rest — popping them
            // would evict entries that are in fact hot.
            if self.touch_seq.get(&victim) != Some(&s) {
                continue;
            }
            if self.resident.remove(&victim) {
                let bytes = self.sizes.get(&victim).copied().unwrap_or(0);
                self.resident_bytes -= bytes;
                self.swap_out_bytes += bytes;
                cost += self.swap_cost(bytes);
            }
        }
        cost
    }

    /// Stores a new state of `bytes` bytes; returns the virtual-time cost.
    ///
    /// # Errors
    ///
    /// [`OutOfMemory`] when RAM + swap cannot hold the total.
    pub fn store(&mut self, id: StateId, bytes: u64) -> Result<u64, OutOfMemory> {
        let budget = self.cfg.ram_bytes + self.cfg.swap_bytes;
        let needed = self.total_bytes + self.overhead_bytes + bytes;
        if needed > budget {
            return Err(OutOfMemory { needed, budget });
        }
        self.sizes.insert(id.0, bytes);
        self.total_bytes += bytes;
        self.peak_bytes = self.peak_bytes.max(needed);
        self.resident.insert(id.0);
        self.resident_bytes += bytes;
        self.touch(id.0);
        Ok(self.evict_to_fit())
    }

    /// Accesses (restores from) a stored state; returns the virtual-time
    /// cost — zero on a RAM hit, a swap-in charge otherwise.
    pub fn access(&mut self, id: StateId) -> u64 {
        let Some(&bytes) = self.sizes.get(&id.0) else {
            return 0;
        };
        let mut cost = 0;
        if self.resident.contains(&id.0) {
            self.hits += 1;
        } else {
            self.misses += 1;
            self.swap_in_bytes += bytes;
            cost += self.swap_cost(bytes);
            self.resident.insert(id.0);
            self.resident_bytes += bytes;
        }
        self.touch(id.0);
        cost + self.evict_to_fit()
    }

    /// Releases a stored state.
    pub fn release(&mut self, id: StateId) {
        if let Some(bytes) = self.sizes.remove(&id.0) {
            self.total_bytes -= bytes;
            self.touch_seq.remove(&id.0);
            if self.resident.remove(&id.0) {
                self.resident_bytes -= bytes;
            }
        }
    }

    /// Updates the non-state overhead (e.g. the visited table's bytes);
    /// returns any eviction cost caused by the shrinking RAM share.
    pub fn set_overhead(&mut self, bytes: u64) -> u64 {
        self.overhead_bytes = bytes;
        self.peak_bytes = self.peak_bytes.max(self.total_bytes + bytes);
        self.evict_to_fit()
    }

    /// Bytes currently in swap (per the model).
    pub fn swapped_bytes(&self) -> u64 {
        self.total_bytes.saturating_sub(self.resident_bytes)
            + self
                .overhead_bytes
                .saturating_sub(self.cfg.ram_bytes.min(self.overhead_bytes))
    }

    /// Total stored state bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Peak bytes ever held (states + overhead).
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes
    }

    /// Cumulative swap traffic (in + out).
    pub fn swap_traffic_bytes(&self) -> u64 {
        self.swap_in_bytes + self.swap_out_bytes
    }

    /// RAM hit rate over accesses so far (1.0 when untouched).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl Default for MemoryModel {
    fn default() -> Self {
        MemoryModel::new(MemConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MemoryModel {
        MemoryModel::new(MemConfig {
            ram_bytes: 1000,
            swap_bytes: 4000,
            swap_ns_per_mib: 1 << 20, // 1 ns per byte for easy math
        })
    }

    #[test]
    fn stores_within_ram_are_free_hits() {
        let mut m = small();
        assert_eq!(m.store(StateId(1), 400).unwrap(), 0);
        assert_eq!(m.store(StateId(2), 400).unwrap(), 0);
        assert_eq!(m.access(StateId(1)), 0);
        assert_eq!(m.swapped_bytes(), 0);
        assert_eq!(m.hit_rate(), 1.0);
    }

    #[test]
    fn exceeding_ram_evicts_lru_and_charges_swap_in() {
        let mut m = small();
        m.store(StateId(1), 600).unwrap();
        let evict_cost = m.store(StateId(2), 600).unwrap();
        assert_eq!(evict_cost, 600, "state 1 swapped out");
        assert_eq!(m.swapped_bytes(), 600);
        // Accessing the evicted state swaps it back in (and evicts 2).
        let cost = m.access(StateId(1));
        assert!(cost >= 600);
        assert!(m.hit_rate() < 1.0);
        assert!(m.swap_traffic_bytes() >= 1200);
    }

    #[test]
    fn oom_when_exceeding_ram_plus_swap() {
        let mut m = small();
        m.store(StateId(1), 3000).unwrap();
        let err = m.store(StateId(2), 3000).unwrap_err();
        assert_eq!(err.budget, 5000);
        assert!(err.to_string().contains("out of memory"));
    }

    #[test]
    fn release_frees_budget() {
        let mut m = small();
        m.store(StateId(1), 3000).unwrap();
        m.release(StateId(1));
        assert_eq!(m.total_bytes(), 0);
        m.store(StateId(2), 3000).unwrap();
    }

    #[test]
    fn overhead_shrinks_ram_share() {
        let mut m = small();
        m.store(StateId(1), 800).unwrap();
        assert_eq!(m.swapped_bytes(), 0);
        let cost = m.set_overhead(600);
        assert!(cost > 0, "overhead displacement evicts states");
        assert!(m.swapped_bytes() >= 400);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut m = small();
        m.store(StateId(1), 900).unwrap();
        m.release(StateId(1));
        m.store(StateId(2), 100).unwrap();
        assert_eq!(m.peak_bytes(), 900);
    }

    #[test]
    fn locality_gives_high_hit_rate() {
        // A working set that fits RAM stays hot even with cold states swapped.
        let mut m = small();
        for i in 0..10 {
            m.store(StateId(i), 200).unwrap();
        }
        // Touch only 3 states repeatedly: after warm-up, all hits.
        for _ in 0..50 {
            for i in 0..3 {
                m.access(StateId(i));
            }
        }
        assert!(m.hit_rate() > 0.9, "hit rate {}", m.hit_rate());
    }
}
