//! An explicit-state model checker — the SPIN analogue MCFS drives.
//!
//! The paper uses SPIN for three things, all reimplemented here with the
//! same semantics:
//!
//! 1. **Nondeterministic exploration** of bounded operation sequences:
//!    [`DfsExplorer`] (SPIN's depth-first search), [`BfsExplorer`] (shortest
//!    traces), and [`RandomWalk`] (the long-run soak mode).
//! 2. **Abstract-state matching**: visited states are 128-bit fingerprints
//!    ([`ModelSystem::abstract_state`], MCFS's Algorithm-1 MD5), while
//!    backtracking restores *concrete* states through
//!    [`ModelSystem::checkpoint`]/[`restore`](ModelSystem::restore) — the
//!    matched/unmatched split of SPIN's `c_track`.
//! 3. **Swarm verification** ([`run_swarm`]): parallel diversified searches
//!    sharing a stop flag.
//!
//! Two cross-cutting models make the paper's evaluation reproducible:
//! [`MemoryModel`] (RAM/swap budgets with LRU residency — the source of the
//! Ext4-vs-XFS slowdown and Fig. 3's dynamics) and the [`VisitedSet`]'s
//! hash-table-resize events (Fig. 3's day-3 dip). Both charge their costs to
//! a shared virtual [`blockdev::Clock`].
//!
//! # Examples
//!
//! A tiny two-bit system, exhaustively explored:
//!
//! ```
//! use modelcheck::{ApplyOutcome, DfsExplorer, ExploreConfig, ModelSystem, StateId, StopReason};
//! use std::collections::HashMap;
//!
//! struct TwoBits {
//!     bits: [bool; 2],
//!     store: HashMap<u64, [bool; 2]>,
//! }
//!
//! impl ModelSystem for TwoBits {
//!     type Op = usize; // flip bit i
//!     fn ops(&mut self) -> Vec<usize> {
//!         vec![0, 1]
//!     }
//!     fn apply(&mut self, op: &usize) -> ApplyOutcome {
//!         self.bits[*op] = !self.bits[*op];
//!         ApplyOutcome::Ok
//!     }
//!     fn abstract_state(&mut self) -> u128 {
//!         self.bits[0] as u128 | ((self.bits[1] as u128) << 1)
//!     }
//!     fn checkpoint(&mut self, id: StateId) -> Result<usize, String> {
//!         self.store.insert(id.0, self.bits);
//!         Ok(2)
//!     }
//!     fn restore(&mut self, id: StateId) -> Result<(), String> {
//!         self.bits = self.store[&id.0];
//!         Ok(())
//!     }
//!     fn release(&mut self, id: StateId) {
//!         self.store.remove(&id.0);
//!     }
//! }
//!
//! let mut sys = TwoBits { bits: [false; 2], store: HashMap::new() };
//! let report = DfsExplorer::new(ExploreConfig::default()).run(&mut sys);
//! assert_eq!(report.stop, StopReason::Exhausted);
//! assert_eq!(report.stats.states_new, 4); // the full 2-bit state space
//! ```

mod explore;
mod memmodel;
pub mod pickle;
mod shrink;
mod spill;
mod swarm;
mod system;
mod visited;

pub use explore::{
    BfsExplorer, DfsExplorer, ExploreConfig, ExploreReport, ExploreStats, RandomWalk, StopReason,
};
pub use memmodel::{MemConfig, MemoryModel, OutOfMemory};
pub use pickle::{
    decode_snapshot, encode_snapshot, fnv128, load_snapshot, save_atomic, ByteReader,
    FrontierEntry, OpCodec, PickleError, RngCursor, RunSnapshot, SnapshotWriter, FORMAT_VERSION,
};
pub use shrink::{apply_mask, ddmin_mask, ShrinkStats};
pub use spill::{
    FrontierQueue, FrontierSpill, MemBudget, PageLoc, SpillCtx, SpillFaults, SpillSet, SpillStats,
    SpillStore, PAGE_VERSION,
};
pub use swarm::{
    run_swarm, run_swarm_persistent, SwarmConfig, SwarmPersist, SwarmReport, WorkerStrategy,
};
pub use system::{
    is_evicted_error, ApplyOutcome, CheckpointStoreStats, CrashStats, ModelSystem, StateId,
    Violation, EVICTED_MARKER,
};
pub use visited::{ResizeEvent, ShardedVisited, Visit, VisitedHandle, VisitedSet, BYTES_PER_ENTRY};

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// A counter in 0..n with +1/-1 ops; violation at `bad`, if set.
    struct Counter {
        value: i64,
        limit: i64,
        bad: Option<i64>,
        store: HashMap<u64, i64>,
        bytes_per_state: usize,
    }

    impl Counter {
        fn new(limit: i64, bad: Option<i64>) -> Self {
            Counter {
                value: 0,
                limit,
                bad,
                store: HashMap::new(),
                bytes_per_state: 64,
            }
        }
    }

    impl ModelSystem for Counter {
        type Op = i64;

        fn ops(&mut self) -> Vec<i64> {
            vec![1, -1]
        }

        fn apply(&mut self, op: &i64) -> ApplyOutcome {
            let next = self.value + op;
            if next < 0 || next > self.limit {
                return ApplyOutcome::Prune("out of range".into());
            }
            self.value = next;
            if Some(self.value) == self.bad {
                return ApplyOutcome::Violation(format!("hit bad value {}", self.value));
            }
            ApplyOutcome::Ok
        }

        fn abstract_state(&mut self) -> u128 {
            self.value as u128
        }

        fn checkpoint(&mut self, id: StateId) -> Result<usize, String> {
            self.store.insert(id.0, self.value);
            Ok(self.bytes_per_state)
        }

        fn restore(&mut self, id: StateId) -> Result<(), String> {
            self.value = *self.store.get(&id.0).ok_or("missing state")?;
            Ok(())
        }

        fn release(&mut self, id: StateId) {
            self.store.remove(&id.0);
        }
    }

    #[test]
    fn dfs_explores_bounded_space_exhaustively() {
        let mut sys = Counter::new(100, None);
        let cfg = ExploreConfig {
            max_depth: 5,
            ..ExploreConfig::default()
        };
        let report = DfsExplorer::new(cfg).run(&mut sys);
        assert_eq!(report.stop, StopReason::Exhausted);
        // Depth 5 from 0 reaches values 0..=5: six distinct states.
        assert_eq!(report.stats.states_new, 6);
        assert!(report.stats.states_matched > 0, "revisits are matched");
        assert!(report.violations.is_empty());
        assert_eq!(report.stats.max_depth_seen, 5);
    }

    #[test]
    fn dfs_finds_violation_with_reproducible_trace() {
        let mut sys = Counter::new(100, Some(3));
        let cfg = ExploreConfig {
            max_depth: 10,
            ..ExploreConfig::default()
        };
        let report = DfsExplorer::new(cfg).run(&mut sys);
        assert_eq!(report.stop, StopReason::Violation);
        let v = &report.violations[0];
        assert!(v.message.contains("bad value 3"));
        // Replaying the trace on a fresh system reproduces the violation.
        let mut fresh = Counter::new(100, Some(3));
        let mut hit = false;
        for op in &v.trace {
            if let ApplyOutcome::Violation(_) = fresh.apply(op) {
                hit = true;
                break;
            }
        }
        assert!(hit, "trace must reproduce the violation");
    }

    #[test]
    fn bfs_finds_shortest_trace() {
        let mut sys = Counter::new(100, Some(3));
        let cfg = ExploreConfig {
            max_depth: 10,
            ..ExploreConfig::default()
        };
        let report = BfsExplorer::new(cfg).run(&mut sys);
        assert_eq!(report.stop, StopReason::Violation);
        assert_eq!(report.violations[0].trace, vec![1, 1, 1], "shortest path");
    }

    #[test]
    fn op_budget_stops_exploration() {
        let mut sys = Counter::new(1_000_000, None);
        let cfg = ExploreConfig {
            max_depth: 1_000,
            max_ops: 500,
            ..ExploreConfig::default()
        };
        let report = DfsExplorer::new(cfg).run(&mut sys);
        assert_eq!(report.stop, StopReason::OpBudget);
        assert_eq!(report.stats.ops_executed, 500);
    }

    #[test]
    fn state_budget_stops_exploration() {
        let mut sys = Counter::new(1_000_000, None);
        let cfg = ExploreConfig {
            max_depth: 1_000,
            max_states: 50,
            ..ExploreConfig::default()
        };
        let report = DfsExplorer::new(cfg).run(&mut sys);
        assert_eq!(report.stop, StopReason::StateBudget);
        assert_eq!(report.stats.states_new, 50);
    }

    #[test]
    fn oom_stops_exploration() {
        let mut sys = Counter::new(1_000_000, None);
        sys.bytes_per_state = 1 << 20;
        let cfg = ExploreConfig {
            max_depth: 1_000,
            mem: MemConfig {
                ram_bytes: 4 << 20,
                swap_bytes: 4 << 20,
                swap_ns_per_mib: 1000,
            },
            ..ExploreConfig::default()
        };
        let report = DfsExplorer::new(cfg).run(&mut sys);
        assert!(matches!(report.stop, StopReason::OutOfMemory(_)));
    }

    #[test]
    fn random_walk_covers_states_and_stops_on_violation() {
        let mut sys = Counter::new(20, Some(7));
        let cfg = ExploreConfig {
            max_depth: 30,
            max_ops: 100_000,
            seed: 42,
            ..ExploreConfig::default()
        };
        let report = RandomWalk::new(cfg).run(&mut sys);
        assert_eq!(report.stop, StopReason::Violation);
        let v = &report.violations[0];
        // The trace ends at the bad value.
        assert_eq!(v.trace.iter().sum::<i64>(), 7);
    }

    #[test]
    fn random_walk_observer_sees_progress() {
        let mut sys = Counter::new(50, None);
        let cfg = ExploreConfig {
            max_depth: 10,
            max_ops: 2_000,
            seed: 1,
            ..ExploreConfig::default()
        };
        let mut samples = 0u64;
        let report = RandomWalk::new(cfg).run_observed(&mut sys, |s| {
            samples += 1;
            assert!(s.ops_executed <= 2_000);
        });
        assert_eq!(report.stop, StopReason::OpBudget);
        assert!(samples > 0);
    }

    #[test]
    fn clock_accumulates_memory_costs() {
        use blockdev::Clock;
        let clock = Clock::new();
        let mut sys = Counter::new(1_000, None);
        sys.bytes_per_state = 1 << 20; // force swapping
        let cfg = ExploreConfig {
            max_depth: 200,
            max_ops: 5_000,
            mem: MemConfig {
                ram_bytes: 8 << 20,
                swap_bytes: 1 << 30,
                swap_ns_per_mib: 100_000,
            },
            ..ExploreConfig::default()
        };
        let report = DfsExplorer::new(cfg)
            .with_clock(clock.clone())
            .run(&mut sys);
        assert!(report.stats.virtual_ns > 0, "swap charges accrued");
        assert!(report.stats.swap_traffic_bytes > 0);
        assert!(report.stats.ops_per_sec().is_some());
    }

    #[test]
    fn time_budget_stops() {
        use blockdev::Clock;
        let clock = Clock::new();
        let mut sys = Counter::new(1_000, None);
        sys.bytes_per_state = 1 << 20;
        let cfg = ExploreConfig {
            max_depth: 500,
            max_ops: u64::MAX,
            max_virtual_ns: Some(1_000_000),
            mem: MemConfig {
                ram_bytes: 4 << 20,
                swap_bytes: 1 << 30,
                swap_ns_per_mib: 100_000,
            },
            ..ExploreConfig::default()
        };
        let report = DfsExplorer::new(cfg).with_clock(clock).run(&mut sys);
        assert_eq!(report.stop, StopReason::TimeBudget);
    }

    /// Two independent registers: POR should cut the explored interleavings.
    struct TwoRegs {
        regs: [u8; 2],
        store: HashMap<u64, [u8; 2]>,
    }

    impl ModelSystem for TwoRegs {
        type Op = (usize, u8);

        fn ops(&mut self) -> Vec<(usize, u8)> {
            vec![(0, 1), (1, 1)]
        }

        fn apply(&mut self, op: &(usize, u8)) -> ApplyOutcome {
            // Saturating lattice: each register counts 0..=3 (acyclic, so
            // sleep-set reduction composes soundly with state matching).
            if self.regs[op.0] >= 3 {
                return ApplyOutcome::Prune("saturated".into());
            }
            self.regs[op.0] += op.1;
            ApplyOutcome::Ok
        }

        fn abstract_state(&mut self) -> u128 {
            self.regs[0] as u128 | ((self.regs[1] as u128) << 8)
        }

        fn checkpoint(&mut self, id: StateId) -> Result<usize, String> {
            self.store.insert(id.0, self.regs);
            Ok(2)
        }

        fn restore(&mut self, id: StateId) -> Result<(), String> {
            self.regs = *self.store.get(&id.0).ok_or("missing")?;
            Ok(())
        }

        fn release(&mut self, id: StateId) {
            self.store.remove(&id.0);
        }

        fn independent(&self, a: &(usize, u8), b: &(usize, u8)) -> bool {
            a.0 != b.0 // different registers commute
        }
    }

    #[test]
    fn por_prunes_commuting_interleavings() {
        let cfg = ExploreConfig {
            max_depth: 8,
            ..ExploreConfig::default()
        };
        let baseline = DfsExplorer::new(ExploreConfig {
            por: false,
            ..cfg.clone()
        })
        .run(&mut TwoRegs {
            regs: [0; 2],
            store: HashMap::new(),
        });
        let reduced = DfsExplorer::new(ExploreConfig { por: true, ..cfg }).run(&mut TwoRegs {
            regs: [0; 2],
            store: HashMap::new(),
        });
        assert_eq!(baseline.stop, StopReason::Exhausted);
        assert_eq!(reduced.stop, StopReason::Exhausted);
        assert_eq!(
            baseline.stats.states_new, reduced.stats.states_new,
            "POR must not lose states"
        );
        assert!(
            reduced.stats.ops_executed < baseline.stats.ops_executed,
            "POR must save work: {} vs {}",
            reduced.stats.ops_executed,
            baseline.stats.ops_executed
        );
    }

    #[test]
    fn swarm_finds_violation_and_drains() {
        let cfg = SwarmConfig {
            workers: 4,
            base: ExploreConfig {
                max_depth: 30,
                max_ops: 200_000,
                seed: 7,
                ..ExploreConfig::default()
            },
            shared_visited: false,
            strategies: vec![],
        };
        let report = run_swarm(&cfg, |_| Counter::new(40, Some(11)));
        assert!(report.found_violation());
        assert!(report.violations().next().is_some());
        assert!(report.total_ops() > 0);
        assert!(report.total_states() > 0);
    }

    #[test]
    fn swarm_without_violation_exhausts_budgets() {
        let cfg = SwarmConfig {
            workers: 3,
            base: ExploreConfig {
                max_depth: 5,
                max_ops: 1_000,
                ..ExploreConfig::default()
            },
            shared_visited: false,
            strategies: vec![],
        };
        let report = run_swarm(&cfg, |_| Counter::new(10, None));
        assert!(!report.found_violation());
        assert_eq!(report.workers.len(), 3);
        for w in &report.workers {
            assert_eq!(w.stop, StopReason::OpBudget);
        }
    }

    #[test]
    fn swarm_shared_visited_prunes_cross_worker_duplicates() {
        let base = ExploreConfig {
            max_depth: 8,
            max_ops: 2_000,
            seed: 3,
            ..ExploreConfig::default()
        };
        let private = run_swarm(
            &SwarmConfig {
                workers: 4,
                base: base.clone(),
                shared_visited: false,
                strategies: vec![],
            },
            |_| Counter::new(12, None),
        );
        let shared = run_swarm(
            &SwarmConfig {
                workers: 4,
                base,
                shared_visited: true,
                strategies: vec![],
            },
            |_| Counter::new(12, None),
        );
        // The counter has only 13 reachable states; 4 private workers each
        // rediscover them, the shared fleet discovers each exactly once.
        assert!(private.total_states() > shared.total_states());
        assert!(
            shared.total_states() <= 13,
            "shared swarm must not double-count states: {}",
            shared.total_states()
        );
    }

    /// A system that panics after a few ops in worker 0's configuration —
    /// the fleet must survive and the panic must be recorded.
    struct PanicAfter {
        inner: Counter,
        remaining: Option<u32>,
    }

    impl ModelSystem for PanicAfter {
        type Op = i64;

        fn ops(&mut self) -> Vec<i64> {
            self.inner.ops()
        }

        fn apply(&mut self, op: &i64) -> ApplyOutcome {
            if let Some(n) = &mut self.remaining {
                if *n == 0 {
                    panic!("injected worker fault");
                }
                *n -= 1;
            }
            self.inner.apply(op)
        }

        fn abstract_state(&mut self) -> u128 {
            self.inner.abstract_state()
        }

        fn checkpoint(&mut self, id: StateId) -> Result<usize, String> {
            self.inner.checkpoint(id)
        }

        fn restore(&mut self, id: StateId) -> Result<(), String> {
            self.inner.restore(id)
        }

        fn release(&mut self, id: StateId) {
            self.inner.release(id)
        }
    }

    #[test]
    fn swarm_contains_worker_panics_and_survivors_finish() {
        let cfg = SwarmConfig {
            workers: 4,
            base: ExploreConfig {
                max_depth: 5,
                max_ops: 1_000,
                ..ExploreConfig::default()
            },
            shared_visited: false,
            strategies: vec![],
        };
        let report = run_swarm(&cfg, |idx| PanicAfter {
            inner: Counter::new(10, None),
            remaining: (idx == 0).then_some(3),
        });
        assert_eq!(report.workers.len(), 4);
        let panics: Vec<_> = report.panics().collect();
        assert_eq!(panics.len(), 1, "exactly worker 0 panics");
        assert_eq!(panics[0].0, 0);
        assert!(panics[0].1.contains("injected worker fault"));
        // Survivors ran their full budgets.
        for w in &report.workers[1..] {
            assert_eq!(w.stop, StopReason::OpBudget);
            assert!(w.stats.ops_executed >= 1_000);
        }
    }

    #[test]
    fn swarm_shared_visited_survives_a_panicked_worker() {
        // A worker dying while the fleet shares the visited set must not
        // poison or wedge the shards for the survivors.
        let cfg = SwarmConfig {
            workers: 3,
            base: ExploreConfig {
                max_depth: 6,
                max_ops: 1_500,
                ..ExploreConfig::default()
            },
            shared_visited: true,
            strategies: vec![],
        };
        let report = run_swarm(&cfg, |idx| PanicAfter {
            inner: Counter::new(10, None),
            remaining: (idx == 1).then_some(5),
        });
        assert_eq!(report.panics().count(), 1);
        assert!(
            report.workers[0].stats.ops_executed >= 1_500
                || report.workers[2].stats.ops_executed >= 1_500,
            "survivors must keep exploring through the shared set"
        );
    }
}

#[cfg(test)]
mod resume_tests {
    use super::*;
    use std::collections::HashMap;

    struct Grid {
        pos: (i8, i8),
        store: HashMap<u64, (i8, i8)>,
    }

    impl ModelSystem for Grid {
        type Op = (i8, i8);
        fn ops(&mut self) -> Vec<(i8, i8)> {
            vec![(1, 0), (-1, 0), (0, 1), (0, -1)]
        }
        fn apply(&mut self, op: &(i8, i8)) -> ApplyOutcome {
            let next = (self.pos.0 + op.0, self.pos.1 + op.1);
            if next.0.abs() > 6 || next.1.abs() > 6 {
                return ApplyOutcome::Prune("edge".into());
            }
            self.pos = next;
            ApplyOutcome::Ok
        }
        fn abstract_state(&mut self) -> u128 {
            (self.pos.0 as i32 as u32 as u128) | ((self.pos.1 as i32 as u32 as u128) << 32)
        }
        fn checkpoint(&mut self, id: StateId) -> Result<usize, String> {
            self.store.insert(id.0, self.pos);
            Ok(2)
        }
        fn restore(&mut self, id: StateId) -> Result<(), String> {
            self.pos = *self.store.get(&id.0).ok_or("missing")?;
            Ok(())
        }
        fn release(&mut self, id: StateId) {
            self.store.remove(&id.0);
        }
    }

    /// The §7 resumability item: an interrupted run's visited set carries
    /// into the resumed run, which skips known states instead of redoing
    /// the work.
    #[test]
    fn interrupted_run_resumes_without_rework() {
        let mut visited = VisitedSet::new(1 << 12);
        let mut sys = Grid {
            pos: (0, 0),
            store: HashMap::new(),
        };
        // Phase 1: "interrupted" by a small op budget.
        let phase1 = DfsExplorer::new(ExploreConfig {
            max_depth: 6,
            max_ops: 60,
            ..ExploreConfig::default()
        })
        .run_with_visited(&mut sys, &mut visited);
        assert_eq!(phase1.stop, StopReason::OpBudget);
        let after_phase1 = visited.len();
        assert!(after_phase1 > 5);

        // Phase 2: resume (fresh system, same initial state, shared set).
        let mut sys2 = Grid {
            pos: (0, 0),
            store: HashMap::new(),
        };
        let phase2 = DfsExplorer::new(ExploreConfig {
            max_depth: 6,
            max_ops: 100_000,
            ..ExploreConfig::default()
        })
        .run_with_visited(&mut sys2, &mut visited);
        assert_eq!(phase2.stop, StopReason::Exhausted);
        assert!(
            visited.len() > after_phase1,
            "phase 2 extends, not repeats, coverage"
        );
        // A cold full run discovers the same total state count as the two
        // resumed phases combined — nothing was lost across the interruption.
        let mut cold_visited = VisitedSet::new(1 << 12);
        let mut sys3 = Grid {
            pos: (0, 0),
            store: HashMap::new(),
        };
        DfsExplorer::new(ExploreConfig {
            max_depth: 6,
            max_ops: 100_000,
            ..ExploreConfig::default()
        })
        .run_with_visited(&mut sys3, &mut cold_visited);
        assert_eq!(cold_visited.len(), visited.len());
    }

    #[test]
    fn walk_resumes_with_shared_visited() {
        let mut visited = VisitedSet::new(1 << 12);
        let mut sys = Grid {
            pos: (0, 0),
            store: HashMap::new(),
        };
        let cfg = ExploreConfig {
            max_depth: 20,
            max_ops: 500,
            seed: 9,
            ..ExploreConfig::default()
        };
        let r1 = RandomWalk::new(cfg.clone()).run_resumable(&mut sys, &mut visited, |_| {});
        let found1 = r1.stats.states_new;
        let mut sys2 = Grid {
            pos: (0, 0),
            store: HashMap::new(),
        };
        let r2 = RandomWalk::new(ExploreConfig { seed: 10, ..cfg }).run_resumable(
            &mut sys2,
            &mut visited,
            |_| {},
        );
        // The resumed run counts only *new* states beyond phase 1.
        assert_eq!(found1 + r2.stats.states_new, visited.len() as u64);
    }
}

#[cfg(test)]
mod frontier_tests {
    use super::*;
    use std::collections::HashMap;

    /// Bounded 2-D grid (|x|,|y| ≤ 6): 4 move ops, prune at the edge.
    struct Grid {
        pos: (i8, i8),
        store: HashMap<u64, (i8, i8)>,
    }

    impl Grid {
        fn new() -> Self {
            Grid {
                pos: (0, 0),
                store: HashMap::new(),
            }
        }
    }

    impl ModelSystem for Grid {
        type Op = (i8, i8);
        fn ops(&mut self) -> Vec<(i8, i8)> {
            vec![(1, 0), (-1, 0), (0, 1), (0, -1)]
        }
        fn apply(&mut self, op: &(i8, i8)) -> ApplyOutcome {
            let next = (self.pos.0 + op.0, self.pos.1 + op.1);
            if next.0.abs() > 6 || next.1.abs() > 6 {
                return ApplyOutcome::Prune("edge".into());
            }
            self.pos = next;
            ApplyOutcome::Ok
        }
        fn abstract_state(&mut self) -> u128 {
            (self.pos.0 as i32 as u32 as u128) | ((self.pos.1 as i32 as u32 as u128) << 32)
        }
        fn checkpoint(&mut self, id: StateId) -> Result<usize, String> {
            self.store.insert(id.0, self.pos);
            Ok(2)
        }
        fn restore(&mut self, id: StateId) -> Result<(), String> {
            self.pos = *self.store.get(&id.0).ok_or("missing")?;
            Ok(())
        }
        fn release(&mut self, id: StateId) {
            self.store.remove(&id.0);
        }
    }

    /// Wire codec for the grid's `(i8, i8)` ops.
    struct GridCodec;

    impl OpCodec<(i8, i8)> for GridCodec {
        fn encode_op(&self, op: &(i8, i8), out: &mut Vec<u8>) {
            out.push(op.0 as u8);
            out.push(op.1 as u8);
        }
        fn decode_op(&self, r: &mut ByteReader<'_>) -> Result<(i8, i8), PickleError> {
            Ok((r.u8()? as i8, r.u8()? as i8))
        }
    }

    fn dfs_baseline(max_depth: usize) -> u64 {
        DfsExplorer::new(ExploreConfig {
            max_depth,
            max_ops: u64::MAX,
            ..ExploreConfig::default()
        })
        .run(&mut Grid::new())
        .stats
        .states_new
    }

    #[test]
    fn frontier_swarm_matches_single_dfs_coverage() {
        let dfs_states = dfs_baseline(5);
        for workers in [1usize, 4] {
            let cfg = SwarmConfig {
                workers,
                base: ExploreConfig {
                    max_depth: 5,
                    max_ops: u64::MAX,
                    ..ExploreConfig::default()
                },
                shared_visited: true,
                strategies: vec![WorkerStrategy::Dfs],
            };
            let report = run_swarm(&cfg, |_| Grid::new());
            assert_eq!(
                report.total_states(),
                dfs_states,
                "{workers}-worker frontier swarm must cover exactly the DFS state space"
            );
            assert_eq!(report.distinct_states, Some(dfs_states));
            // Every worker bar the racy last one ends on frontier exhaustion.
            assert!(report
                .workers
                .iter()
                .all(|w| w.stop == StopReason::Exhausted));
        }
    }

    #[test]
    fn bfs_strategy_and_mixed_fleets_cover_the_space() {
        let dfs_states = dfs_baseline(4);
        for strategies in [
            vec![WorkerStrategy::Bfs],
            vec![
                WorkerStrategy::Dfs,
                WorkerStrategy::Bfs,
                WorkerStrategy::Walk,
            ],
        ] {
            let cfg = SwarmConfig {
                workers: 3,
                base: ExploreConfig {
                    max_depth: 4,
                    // Finite: walk workers consume their whole op budget.
                    max_ops: 20_000,
                    ..ExploreConfig::default()
                },
                shared_visited: true,
                strategies,
            };
            let report = run_swarm(&cfg, |_| Grid::new());
            // Walk workers can only add states beyond the depth bound the
            // frontier workers exhaust, and the grid at depth 4 is a strict
            // subset of deeper walks — so coverage is at least the DFS set.
            assert!(
                report.total_states() >= dfs_states,
                "mixed fleet lost states: {} < {dfs_states}",
                report.total_states()
            );
        }
    }

    #[test]
    fn frontier_swarm_work_is_split_not_duplicated() {
        let cfg = SwarmConfig {
            workers: 4,
            base: ExploreConfig {
                max_depth: 6,
                max_ops: u64::MAX,
                ..ExploreConfig::default()
            },
            shared_visited: true,
            strategies: vec![WorkerStrategy::Dfs],
        };
        let report = run_swarm(&cfg, |_| Grid::new());
        let per_worker: Vec<u64> = report.workers.iter().map(|w| w.stats.states_new).collect();
        let total: u64 = per_worker.iter().sum();
        // Sum of per-worker discoveries equals the distinct count: each
        // state was inserted as New exactly once fleet-wide (the root's
        // discoverer varies; the sum is what's invariant).
        assert_eq!(Some(total), report.distinct_states);
        // NB: on a single-CPU host one worker may legitimately drain the
        // whole frontier before the others are scheduled, so we do not
        // assert that several workers found states — only that no state
        // was double-counted.
        let _ = per_worker;
    }

    #[test]
    fn frontier_swarm_finds_violations() {
        // Reuse the counter shape: a violation a few ops deep.
        struct Bad(Grid);
        impl ModelSystem for Bad {
            type Op = (i8, i8);
            fn ops(&mut self) -> Vec<(i8, i8)> {
                self.0.ops()
            }
            fn apply(&mut self, op: &(i8, i8)) -> ApplyOutcome {
                match self.0.apply(op) {
                    ApplyOutcome::Ok if self.0.pos == (2, 2) => {
                        ApplyOutcome::Violation("reached (2,2)".into())
                    }
                    other => other,
                }
            }
            fn abstract_state(&mut self) -> u128 {
                self.0.abstract_state()
            }
            fn checkpoint(&mut self, id: StateId) -> Result<usize, String> {
                self.0.checkpoint(id)
            }
            fn restore(&mut self, id: StateId) -> Result<(), String> {
                self.0.restore(id)
            }
            fn release(&mut self, id: StateId) {
                self.0.release(id)
            }
        }
        let cfg = SwarmConfig {
            workers: 2,
            base: ExploreConfig {
                max_depth: 8,
                max_ops: u64::MAX,
                ..ExploreConfig::default()
            },
            shared_visited: true,
            strategies: vec![WorkerStrategy::Dfs],
        };
        let report = run_swarm(&cfg, |_| Bad(Grid::new()));
        assert!(report.found_violation());
        let v = report.shortest_violation().expect("violation recorded");
        // The trace genuinely reaches (2,2).
        let sum = v
            .trace
            .iter()
            .fold((0i8, 0i8), |a, op| (a.0 + op.0, a.1 + op.1));
        assert_eq!(sum, (2, 2));
    }

    #[test]
    fn snapshot_resume_reexplores_zero_states() {
        let dir = std::env::temp_dir().join("mcfs-swarm-resume-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.pickle");
        let _ = std::fs::remove_file(&path);

        // Uninterrupted control run.
        let mk_cfg = |max_ops: u64| SwarmConfig {
            workers: 2,
            base: ExploreConfig {
                max_depth: 6,
                max_ops,
                ..ExploreConfig::default()
            },
            shared_visited: true,
            strategies: vec![WorkerStrategy::Dfs],
        };
        let control = run_swarm(&mk_cfg(u64::MAX), |_| Grid::new());
        let full_states = control.total_states();

        // Phase 1: interrupted by a tight fleet-wide op budget; final
        // snapshot written at the round boundary.
        let phase1 = run_swarm_persistent(
            &mk_cfg(40),
            |_| Grid::new(),
            SwarmPersist {
                codec: &GridCodec,
                snapshot_path: Some(path.clone()),
                snapshot_every: 0,
                resume: None,
            },
        );
        assert!(phase1.persist_error.is_none(), "{:?}", phase1.persist_error);
        assert!(
            phase1.total_states() < full_states,
            "phase 1 must be partial"
        );

        // Phase 2: a fresh "process" resumes from the file.
        let snap = load_snapshot(&path, &GridCodec).expect("snapshot loads");
        assert_eq!(snap.stats.states_new, phase1.total_states());
        let phase2 = run_swarm_persistent(
            &mk_cfg(u64::MAX),
            |_| Grid::new(),
            SwarmPersist {
                codec: &GridCodec,
                snapshot_path: Some(path.clone()),
                snapshot_every: 0,
                resume: Some(snap),
            },
        );

        // Zero re-explored states: everything the baseline knew stays
        // matched, so baseline + newly discovered == final distinct count...
        let resumed_new: u64 = phase2.workers.iter().map(|w| w.stats.states_new).sum();
        assert_eq!(
            phase2.baseline.states_new + resumed_new,
            phase2.total_states(),
            "a previously visited state was re-counted as new"
        );
        // ...and the two-phase life covers exactly what one uninterrupted
        // run covers.
        assert_eq!(phase2.total_states(), full_states);
        assert!(
            phase2.total_replayed() > 0,
            "resume pays (visible) replay overhead, not re-exploration"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn periodic_snapshots_are_loadable_mid_run() {
        let dir = std::env::temp_dir().join("mcfs-swarm-periodic-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("periodic.pickle");
        let _ = std::fs::remove_file(&path);
        let cfg = SwarmConfig {
            workers: 2,
            base: ExploreConfig {
                max_depth: 5,
                max_ops: u64::MAX,
                ..ExploreConfig::default()
            },
            shared_visited: true,
            strategies: vec![WorkerStrategy::Dfs],
        };
        let report = run_swarm_persistent(
            &cfg,
            |_| Grid::new(),
            SwarmPersist {
                codec: &GridCodec,
                snapshot_path: Some(path.clone()),
                snapshot_every: 10,
                resume: None,
            },
        );
        assert!(report.persist_error.is_none());
        let snap = load_snapshot(&path, &GridCodec).expect("final snapshot loads");
        // The final snapshot of an exhausted run: empty frontier, full set.
        assert_eq!(snap.visited.len() as u64, report.total_states());
        assert!(snap.frontier.is_empty());
        assert_eq!(snap.stats.states_new, report.total_states());
        std::fs::remove_file(&path).ok();
    }

    /// Replay-determinism regression: two fresh single-worker runs of the
    /// same configuration must write byte-identical snapshot files. The
    /// visited export streams in fingerprint order and the frontier drains
    /// deterministically, so any byte difference means hash-map iteration
    /// order (or other ambient entropy) leaked into the pickle path —
    /// exactly what `mcfs-lint --source` polices statically.
    #[test]
    fn fresh_single_worker_runs_pickle_identical_bytes() {
        let dir = std::env::temp_dir().join("mcfs-swarm-determinism-test");
        std::fs::create_dir_all(&dir).unwrap();
        let cfg = SwarmConfig {
            workers: 1,
            base: ExploreConfig {
                max_depth: 5,
                max_ops: u64::MAX,
                ..ExploreConfig::default()
            },
            shared_visited: true,
            strategies: vec![WorkerStrategy::Dfs],
        };
        let mut blobs = Vec::new();
        for run in 0..2 {
            let path = dir.join(format!("run{run}.pickle"));
            let _ = std::fs::remove_file(&path);
            let report = run_swarm_persistent(
                &cfg,
                |_| Grid::new(),
                SwarmPersist {
                    codec: &GridCodec,
                    snapshot_path: Some(path.clone()),
                    snapshot_every: 0,
                    resume: None,
                },
            );
            assert!(report.persist_error.is_none(), "{:?}", report.persist_error);
            blobs.push(std::fs::read(&path).expect("snapshot readable"));
            std::fs::remove_file(&path).ok();
        }
        assert!(
            blobs[0] == blobs[1],
            "two fresh runs of the same config produced different snapshot \
             bytes ({} vs {})",
            blobs[0].len(),
            blobs[1].len()
        );
    }
}

#[cfg(test)]
mod more_explorer_tests {
    use super::*;
    use std::collections::HashMap;

    struct MultiBad {
        value: i64,
        store: HashMap<u64, i64>,
    }

    impl ModelSystem for MultiBad {
        type Op = i64;
        fn ops(&mut self) -> Vec<i64> {
            vec![1, 2, 3]
        }
        fn apply(&mut self, op: &i64) -> ApplyOutcome {
            self.value += op;
            if self.value % 5 == 0 {
                return ApplyOutcome::Violation(format!("multiple of five: {}", self.value));
            }
            if self.value > 12 {
                return ApplyOutcome::Prune("too big".into());
            }
            ApplyOutcome::Ok
        }
        fn abstract_state(&mut self) -> u128 {
            self.value as u128
        }
        fn checkpoint(&mut self, id: StateId) -> Result<usize, String> {
            self.store.insert(id.0, self.value);
            Ok(8)
        }
        fn restore(&mut self, id: StateId) -> Result<(), String> {
            self.value = *self.store.get(&id.0).ok_or("missing")?;
            Ok(())
        }
        fn release(&mut self, id: StateId) {
            self.store.remove(&id.0);
        }
    }

    #[test]
    fn collect_mode_gathers_every_violation() {
        // stop_on_violation = false: the whole bounded space is searched and
        // every violating transition is recorded.
        let mut sys = MultiBad {
            value: 0,
            store: HashMap::new(),
        };
        let report = DfsExplorer::new(ExploreConfig {
            max_depth: 4,
            stop_on_violation: false,
            ..ExploreConfig::default()
        })
        .run(&mut sys);
        assert_eq!(report.stop, StopReason::Exhausted);
        assert!(
            report.violations.len() > 3,
            "multiple distinct violating transitions exist: {}",
            report.violations.len()
        );
        for v in &report.violations {
            assert!(v.message.contains("multiple of five"));
            // Each trace sums to a multiple of five.
            assert_eq!(v.trace.iter().sum::<i64>() % 5, 0, "{:?}", v.trace);
        }
    }

    #[test]
    fn bfs_respects_op_budget() {
        let mut sys = MultiBad {
            value: 0,
            store: HashMap::new(),
        };
        let report = BfsExplorer::new(ExploreConfig {
            max_depth: 10,
            max_ops: 25,
            stop_on_violation: false,
            ..ExploreConfig::default()
        })
        .run(&mut sys);
        assert_eq!(report.stop, StopReason::OpBudget);
        assert_eq!(report.stats.ops_executed, 25);
    }

    #[test]
    fn bfs_and_dfs_agree_on_state_coverage() {
        let run_dfs = || {
            let mut sys = MultiBad {
                value: 0,
                store: HashMap::new(),
            };
            DfsExplorer::new(ExploreConfig {
                max_depth: 4,
                stop_on_violation: false,
                ..ExploreConfig::default()
            })
            .run(&mut sys)
            .stats
            .states_new
        };
        let run_bfs = || {
            let mut sys = MultiBad {
                value: 0,
                store: HashMap::new(),
            };
            BfsExplorer::new(ExploreConfig {
                max_depth: 4,
                stop_on_violation: false,
                ..ExploreConfig::default()
            })
            .run(&mut sys)
            .stats
            .states_new
        };
        assert_eq!(run_dfs(), run_bfs(), "both must cover the bounded space");
    }
}
