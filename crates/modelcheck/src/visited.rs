//! The visited-state set, with hash-table resize modelling.
//!
//! Fig. 3 of the paper shows MCFS's rate collapsing around day 3 "because
//! Spin was resizing its hash table of visited states". The visited set here
//! reports resize events (with a modelled cost proportional to the rehashed
//! entry count) so the reproduction exhibits the same dynamics.
//!
//! Two concrete sets exist: the explorer-private [`VisitedSet`], and the
//! sharded concurrent [`ShardedVisited`] used by shared-visited swarm mode,
//! where workers skip states another worker already expanded. Both are
//! driven through the [`VisitedHandle`] trait so the explorers are generic
//! over them.

use std::collections::HashMap;

use parking_lot::Mutex;
use std::sync::Arc;

use crate::spill::{MemBudget, SpillSet, SpillStats};

/// A hash-table resize event, reported when an insert crosses the capacity
/// threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResizeEvent {
    /// Entries rehashed.
    pub entries: u64,
    /// Modelled cost in virtual nanoseconds (rehash + the memory spike of
    /// holding the old and new tables simultaneously).
    pub cost_ns: u64,
    /// Transient extra bytes while both tables exist.
    pub transient_bytes: u64,
}

/// Bytes accounted per stored fingerprint (16-byte hash + table overhead).
pub const BYTES_PER_ENTRY: u64 = 48;

/// Per-entry rehash cost in virtual nanoseconds. Rehashing a table that no
/// longer fits RAM is page-fault dominated (the Fig. 3 "resize dip"), so
/// this models a faulting rehash, not an in-cache one.
pub(crate) const REHASH_NS_PER_ENTRY: u64 = 40_000;

/// How an insert related to the existing table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visit {
    /// First time this state is seen.
    New,
    /// Seen before, but now reached at a strictly shallower depth — a
    /// depth-bounded search must re-expand it or it will miss successors
    /// (SPIN re-explores in exactly this case).
    Shallower,
    /// Seen before at an equal or shallower depth: prune.
    Matched,
}

/// Abstraction over visited-state tables, so explorers run unchanged against
/// a private [`VisitedSet`] or a swarm-shared [`ShardedVisited`].
pub trait VisitedHandle {
    /// Inserts a fingerprint at depth 0; returns `(is_new, resize)`.
    fn insert(&mut self, h: u128) -> (bool, Option<ResizeEvent>) {
        let (visit, resize) = self.insert_at(h, 0);
        (visit == Visit::New, resize)
    }

    /// Inserts a fingerprint reached at `depth`, classifying the visit.
    fn insert_at(&mut self, h: u128, depth: u32) -> (Visit, Option<ResizeEvent>);

    /// Bytes held by the table(s), per the model.
    fn bytes(&self) -> u64;

    /// Number of distinct states visited.
    fn len(&self) -> usize;

    /// Whether no state has been visited.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// High-water mark of [`VisitedHandle::bytes`]. In-RAM sets only grow,
    /// so the default (current bytes) is exact for them; spilling sets
    /// track the real peak across evictions.
    fn peak_bytes(&self) -> u64 {
        self.bytes()
    }

    /// First backing-store failure, if any. In-RAM sets cannot fail;
    /// spilling sets poison on I/O or integrity errors, and explorers must
    /// stop the run loudly when this turns `Some`.
    fn error(&self) -> Option<String> {
        None
    }

    /// Virtual-ns of real page traffic accumulated since the last call
    /// (zero for in-RAM sets); explorers drain this onto the run's clock.
    fn take_pending_ns(&mut self) -> u64 {
        0
    }

    /// Out-of-core counters, when a spill budget is active.
    fn spill_stats(&self) -> Option<SpillStats> {
        None
    }
}

/// The explorer's visited-state set over 128-bit abstract fingerprints,
/// remembering the shallowest depth each state was reached at.
#[derive(Debug)]
pub struct VisitedSet {
    set: HashMap<u128, u32>,
    threshold: usize,
    resizes: u32,
}

impl VisitedSet {
    /// Creates a set whose first modelled resize happens at
    /// `initial_capacity` entries.
    pub fn new(initial_capacity: usize) -> Self {
        VisitedSet {
            set: HashMap::new(),
            threshold: initial_capacity.max(2),
            resizes: 0,
        }
    }

    /// Inserts a fingerprint at depth 0. Returns `(is_new, resize)` —
    /// `is_new` is false when the state was already visited; `resize`
    /// reports a modelled hash-table resize triggered by this insert.
    pub fn insert(&mut self, h: u128) -> (bool, Option<ResizeEvent>) {
        let (visit, resize) = self.insert_at(h, 0);
        (visit == Visit::New, resize)
    }

    /// Inserts a fingerprint reached at `depth`, classifying the visit (see
    /// [`Visit`]). Depth-bounded searches expand on `New` *and*
    /// `Shallower`.
    ///
    /// Resize semantics: only a `New` insert can grow the entry count, so
    /// only `New` can cross the doubling threshold. A `Shallower` visit
    /// rewrites an existing entry's depth in place — the table is written,
    /// but its size is unchanged, so no resize is modelled.
    pub fn insert_at(&mut self, h: u128, depth: u32) -> (Visit, Option<ResizeEvent>) {
        let visit = match self.set.get(&h) {
            None => {
                self.set.insert(h, depth);
                Visit::New
            }
            Some(&prev) if depth < prev => {
                self.set.insert(h, depth);
                Visit::Shallower
            }
            Some(_) => Visit::Matched,
        };
        let mut resize = None;
        if visit == Visit::New && self.set.len() >= self.threshold {
            let entries = self.set.len() as u64;
            resize = Some(ResizeEvent {
                entries,
                cost_ns: entries * REHASH_NS_PER_ENTRY,
                transient_bytes: entries * BYTES_PER_ENTRY,
            });
            self.threshold *= 2;
            self.resizes += 1;
        }
        (visit, resize)
    }

    /// Whether `h` has been visited.
    pub fn contains(&self, h: u128) -> bool {
        self.set.contains_key(&h)
    }

    /// Depth recorded for `h`, if visited.
    pub fn depth_of(&self, h: u128) -> Option<u32> {
        self.set.get(&h).copied()
    }

    /// Number of distinct states visited.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether no state has been visited.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Number of modelled resizes so far.
    pub fn resizes(&self) -> u32 {
        self.resizes
    }

    /// Bytes held by the table (per the model).
    pub fn bytes(&self) -> u64 {
        self.set.len() as u64 * BYTES_PER_ENTRY
    }

    /// Visits every `(fingerprint, depth)` entry sorted by fingerprint (the
    /// canonical export order) without materializing owned pairs — only a
    /// sorted key index. Serializers stream from this straight into their
    /// output (see `SnapshotWriter`).
    pub fn stream_entries(&self, mut f: impl FnMut(u128, u32)) {
        let mut keys: Vec<u128> = self.set.keys().copied().collect();
        keys.sort_unstable();
        for h in keys {
            f(h, self.set[&h]);
        }
    }

    /// Exports every `(fingerprint, depth)` entry, sorted by fingerprint so
    /// the serialized form is canonical (byte-identical across exports of
    /// the same set, whatever the insertion order was). Prefer
    /// [`stream_entries`](VisitedSet::stream_entries) for one-shot
    /// consumers.
    pub fn export_entries(&self) -> Vec<(u128, u32)> {
        let mut out = Vec::with_capacity(self.set.len());
        self.stream_entries(|h, d| out.push((h, d)));
        out
    }

    /// Bulk-loads previously exported entries, keeping the shallowest depth
    /// on collision. Loading does *not* fire modelled resize events — the
    /// run that discovered these states already paid those costs; the
    /// doubling threshold is advanced past the loaded size instead.
    pub fn load_entries(&mut self, entries: &[(u128, u32)]) {
        for &(h, d) in entries {
            match self.set.get(&h) {
                Some(&prev) if prev <= d => {}
                _ => {
                    self.set.insert(h, d);
                }
            }
        }
        while self.set.len() >= self.threshold {
            self.threshold *= 2;
        }
    }
}

impl Default for VisitedSet {
    fn default() -> Self {
        VisitedSet::new(1 << 16)
    }
}

impl VisitedHandle for VisitedSet {
    fn insert_at(&mut self, h: u128, depth: u32) -> (Visit, Option<ResizeEvent>) {
        VisitedSet::insert_at(self, h, depth)
    }

    fn bytes(&self) -> u64 {
        VisitedSet::bytes(self)
    }

    fn len(&self) -> usize {
        VisitedSet::len(self)
    }
}

/// A sharded concurrent visited set shareable across swarm workers.
///
/// Fingerprints are routed to one of N shards by their high bits (the
/// fingerprint is already uniform, so shards fill evenly); each shard is an
/// independent [`VisitedSet`] behind its own mutex, so workers touching
/// different shards never contend — unlike the old single-mutex
/// `SharedVisited` this replaces, which serialized the whole fleet on every
/// insert.
///
/// Resize modelling is preserved per shard: each shard starts at
/// `initial_capacity / nshards`, so with uniform fill all shards cross
/// their doubling thresholds around the same aggregate entry count the
/// unsharded table would have — the Fig. 3 dynamics survive sharding, just
/// split into N smaller (and briefly overlapping) dips.
///
/// Cloning shares the underlying shards.
///
/// With a [`MemBudget`] (see [`ShardedVisited::with_spill`]) the set is
/// backed by a disk-spilling [`SpillSet`] instead of in-RAM shards — same
/// classification semantics, bounded hot memory.
#[derive(Debug, Clone)]
pub struct ShardedVisited {
    shards: Arc<Vec<Mutex<VisitedSet>>>,
    shard_bits: u32,
    spill: Option<Arc<SpillSet>>,
}

impl ShardedVisited {
    /// Creates an empty set with `nshards` shards (rounded up to a power of
    /// two) and an aggregate first-resize threshold of `initial_capacity`.
    pub fn new(initial_capacity: usize, nshards: usize) -> Self {
        let n = nshards.max(1).next_power_of_two();
        let per_shard = (initial_capacity / n).max(2);
        let shards = (0..n)
            .map(|_| Mutex::new(VisitedSet::new(per_shard)))
            .collect();
        ShardedVisited {
            shards: Arc::new(shards),
            shard_bits: n.trailing_zeros(),
            spill: None,
        }
    }

    /// Creates a disk-spilling set budgeted by `budget`, with the same
    /// aggregate first-resize threshold semantics as [`ShardedVisited::new`].
    ///
    /// # Errors
    ///
    /// When the spill file cannot be created.
    pub fn with_spill(initial_capacity: usize, budget: &MemBudget) -> Result<Self, String> {
        let set = SpillSet::new(initial_capacity, budget)?;
        Ok(ShardedVisited {
            shards: Arc::new(Vec::new()),
            shard_bits: 0,
            spill: Some(Arc::new(set)),
        })
    }

    /// The backing spill set, when one is configured (the swarm shares its
    /// page store with frontier queues).
    pub fn spill_set(&self) -> Option<&Arc<SpillSet>> {
        self.spill.as_ref()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        match &self.spill {
            Some(s) => s.shard_count(),
            None => self.shards.len(),
        }
    }

    fn shard_for(&self, h: u128) -> &Mutex<VisitedSet> {
        // High bits: the fingerprint is a uniform hash, and taking the top
        // bits keeps the routing independent of how HashMap uses the low
        // bits internally.
        let idx = if self.shard_bits == 0 {
            0
        } else {
            (h >> (128 - self.shard_bits)) as usize
        };
        &self.shards[idx]
    }

    /// Inserts a fingerprint at depth 0 (see [`VisitedSet::insert`]).
    pub fn insert(&self, h: u128) -> (bool, Option<ResizeEvent>) {
        match &self.spill {
            Some(s) => s.insert(h),
            None => self.shard_for(h).lock().insert(h),
        }
    }

    /// Inserts a fingerprint at `depth` (see [`VisitedSet::insert_at`]).
    pub fn insert_at(&self, h: u128, depth: u32) -> (Visit, Option<ResizeEvent>) {
        match &self.spill {
            Some(s) => s.insert_at(h, depth),
            None => self.shard_for(h).lock().insert_at(h, depth),
        }
    }

    /// Whether `h` has been visited.
    pub fn contains(&self, h: u128) -> bool {
        match &self.spill {
            Some(s) => s.contains(h),
            None => self.shard_for(h).lock().contains(h),
        }
    }

    /// Number of distinct states across all shards.
    pub fn len(&self) -> usize {
        match &self.spill {
            Some(s) => s.len(),
            None => self.shards.iter().map(|s| s.lock().len()).sum(),
        }
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        match &self.spill {
            Some(s) => s.is_empty(),
            None => self.shards.iter().all(|s| s.lock().is_empty()),
        }
    }

    /// Total modelled resizes across shards.
    pub fn resizes(&self) -> u32 {
        match &self.spill {
            Some(s) => s.resizes(),
            None => self.shards.iter().map(|s| s.lock().resizes()).sum(),
        }
    }

    /// Total modelled bytes across shards (hot bytes + page metadata when
    /// spilling).
    pub fn bytes(&self) -> u64 {
        match &self.spill {
            Some(s) => s.bytes(),
            None => self.shards.iter().map(|s| s.lock().bytes()).sum(),
        }
    }

    /// High-water mark of [`ShardedVisited::bytes`]. In-RAM shards only
    /// grow, so their current bytes are the peak; the spill set tracks its
    /// real peak across evictions.
    pub fn peak_bytes(&self) -> u64 {
        match &self.spill {
            Some(s) => s.peak_bytes(),
            None => self.bytes(),
        }
    }

    /// Consistent `(len, bytes, resizes)` snapshot: every shard lock is
    /// held simultaneously, so concurrent inserts cannot skew the sums the
    /// way three separate [`ShardedVisited::len`]/[`ShardedVisited::bytes`]/
    /// [`ShardedVisited::resizes`] calls mid-run can.
    pub fn stats_snapshot(&self) -> (usize, u64, u32) {
        match &self.spill {
            Some(s) => s.snapshot_counts(),
            None => {
                let guards: Vec<_> = self.shards.iter().map(|s| s.lock()).collect();
                let len = guards.iter().map(|g| g.len()).sum();
                let bytes = guards.iter().map(|g| g.bytes()).sum();
                let resizes = guards.iter().map(|g| g.resizes()).sum();
                (len, bytes, resizes)
            }
        }
    }

    /// Exports every `(fingerprint, depth)` entry across shards, sorted by
    /// fingerprint (canonical order — see [`VisitedSet::export_entries`]).
    ///
    /// # Panics
    ///
    /// When a spilled page cannot be read back — the visited set is no
    /// longer trustworthy and exporting a partial one would silently drop
    /// states. Prefer [`ShardedVisited::stream_entries`] to handle the
    /// error gracefully.
    pub fn export_entries(&self) -> Vec<(u128, u32)> {
        let mut out = Vec::new();
        self.stream_entries(|h, d| out.push((h, d)))
            .unwrap_or_else(|e| panic!("visited export failed: {e}"));
        out
    }

    /// Streams every `(fingerprint, depth)` entry in globally sorted order
    /// (fingerprints are routed to shards by their top bits, so per-shard
    /// sorted output concatenates to a sorted whole) without materializing
    /// the full set — at most one shard is held at a time.
    ///
    /// # Errors
    ///
    /// On spill-file read failure (in-RAM sets cannot fail).
    pub fn stream_entries(&self, mut f: impl FnMut(u128, u32)) -> Result<(), String> {
        match &self.spill {
            Some(s) => s.stream_entries(f),
            None => {
                for shard in self.shards.iter() {
                    shard.lock().stream_entries(&mut f);
                }
                Ok(())
            }
        }
    }

    /// Bulk-loads previously exported entries into the owning shards without
    /// firing modelled resize events (see [`VisitedSet::load_entries`]).
    pub fn load_entries(&self, entries: &[(u128, u32)]) {
        match &self.spill {
            Some(s) => s.load_entries(entries),
            None => {
                for &(h, d) in entries {
                    self.shard_for(h).lock().load_entries(&[(h, d)]);
                }
            }
        }
    }

    /// First spill failure, if any — see [`VisitedHandle::error`].
    pub fn error(&self) -> Option<String> {
        self.spill.as_ref().and_then(|s| s.error())
    }

    /// Virtual-ns of real page traffic since the last call (zero in RAM).
    pub fn take_pending_ns(&self) -> u64 {
        self.spill.as_ref().map_or(0, |s| s.take_pending_ns())
    }

    /// Out-of-core counters, when spilling is active.
    pub fn spill_stats(&self) -> Option<SpillStats> {
        self.spill.as_ref().map(|s| s.spill_stats())
    }
}

impl VisitedHandle for ShardedVisited {
    fn insert_at(&mut self, h: u128, depth: u32) -> (Visit, Option<ResizeEvent>) {
        ShardedVisited::insert_at(self, h, depth)
    }

    fn bytes(&self) -> u64 {
        ShardedVisited::bytes(self)
    }

    fn len(&self) -> usize {
        ShardedVisited::len(self)
    }

    fn peak_bytes(&self) -> u64 {
        ShardedVisited::peak_bytes(self)
    }

    fn error(&self) -> Option<String> {
        ShardedVisited::error(self)
    }

    fn take_pending_ns(&mut self) -> u64 {
        ShardedVisited::take_pending_ns(self)
    }

    fn spill_stats(&self) -> Option<SpillStats> {
        ShardedVisited::spill_stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_counts() {
        let mut v = VisitedSet::new(1024);
        assert!(v.insert(1).0);
        assert!(v.insert(2).0);
        assert!(!v.insert(1).0);
        assert_eq!(v.len(), 2);
        assert!(v.contains(2));
        assert!(!v.contains(3));
        assert_eq!(v.bytes(), 2 * BYTES_PER_ENTRY);
    }

    #[test]
    fn resize_fires_at_threshold_and_doubles() {
        let mut v = VisitedSet::new(4);
        let mut events = Vec::new();
        for i in 0..20u128 {
            if let (_, Some(e)) = v.insert(i) {
                events.push(e);
            }
        }
        // Thresholds: 4, 8, 16 → three resizes within 20 inserts.
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].entries, 4);
        assert_eq!(events[1].entries, 8);
        assert_eq!(events[2].entries, 16);
        assert!(events[2].cost_ns > events[0].cost_ns);
        assert_eq!(v.resizes(), 3);
    }

    #[test]
    fn duplicate_insert_never_resizes() {
        let mut v = VisitedSet::new(2);
        v.insert(1);
        v.insert(2); // resize here
        let before = v.resizes();
        for _ in 0..10 {
            assert_eq!(v.insert(1), (false, None));
        }
        assert_eq!(v.resizes(), before);
    }

    /// Pins the intended `insert_at` semantics: a `Shallower` visit rewrites
    /// the table entry (the new depth is recorded) but must never trigger a
    /// resize, because the entry count did not grow — only `New` inserts
    /// count toward the doubling threshold.
    #[test]
    fn shallower_updates_depth_but_never_resizes() {
        let mut v = VisitedSet::new(2);
        assert_eq!(v.insert_at(1, 5).0, Visit::New);
        // Second New insert reaches the threshold of 2 → resize.
        let (visit, resize) = v.insert_at(2, 5);
        assert_eq!(visit, Visit::New);
        assert!(resize.is_some());
        let resizes_before = v.resizes();

        // Shallower re-visits write the table...
        let (visit, resize) = v.insert_at(1, 3);
        assert_eq!(visit, Visit::Shallower);
        assert_eq!(v.depth_of(1), Some(3), "depth must be updated in place");
        // ...but never resize, no matter how many happen at the threshold.
        assert_eq!(resize, None);
        for d in (0..3).rev() {
            let (_, r) = v.insert_at(1, d);
            assert_eq!(r, None);
        }
        assert_eq!(v.resizes(), resizes_before);
        assert_eq!(v.len(), 2, "Shallower must not change the entry count");

        // Equal-or-deeper is Matched and leaves the recorded depth alone.
        assert_eq!(v.insert_at(1, 9).0, Visit::Matched);
        assert_eq!(v.depth_of(1), Some(0));
    }

    #[test]
    fn sharded_set_is_shared_and_dedups() {
        let a = ShardedVisited::new(64, 4);
        let b = a.clone();
        assert!(a.insert(9).0);
        assert!(!b.insert(9).0);
        assert_eq!(b.len(), 1);
        assert!(!a.is_empty());
        assert!(a.contains(9));
    }

    #[test]
    fn sharded_routes_by_high_bits_and_counts_globally() {
        let v = ShardedVisited::new(1 << 8, 8);
        assert_eq!(v.shard_count(), 8);
        // Spread fingerprints across all shards via the top 3 bits.
        for top in 0..8u128 {
            for low in 0..10u128 {
                assert!(v.insert((top << 125) | low).0);
            }
        }
        assert_eq!(v.len(), 80);
        // Duplicates match regardless of which clone inserts them.
        let c = v.clone();
        for top in 0..8u128 {
            assert!(!c.insert(top << 125).0);
        }
        assert_eq!(c.len(), 80);
    }

    #[test]
    fn sharded_preserves_aggregate_resize_dynamics() {
        // Unsharded table with capacity 64 resizes at 64, 128, 256 entries.
        // The sharded equivalent (8 shards × 8) should produce its 8 first
        // per-shard resizes clustered around 64 aggregate entries, etc.
        let v = ShardedVisited::new(64, 8);
        let mut rng_state = 0x12345678u128;
        let mut aggregate_at_resize = Vec::new();
        for _ in 0..512 {
            // Cheap LCG over u128 to spread bits incl. the top ones.
            rng_state = rng_state
                .wrapping_mul(0x2d99787926d46932a4c1f32680f70c55)
                .wrapping_add(1);
            let (is_new, resize) = v.insert(rng_state);
            if is_new && resize.is_some() {
                aggregate_at_resize.push(v.len());
            }
        }
        assert!(v.resizes() >= 8, "expected at least one resize per shard");
        // First 8 resizes (one per shard) all happen well before the table
        // doubles past the aggregate threshold's neighborhood.
        for &agg in aggregate_at_resize.iter().take(8) {
            assert!(
                agg <= 64 * 2,
                "first-round shard resize at aggregate {agg}, want near 64"
            );
        }
    }

    #[test]
    fn spill_backed_sharded_set_matches_ram_one() {
        let mut budget = MemBudget::new(16 * BYTES_PER_ENTRY);
        budget.shards = 4;
        let spilled = ShardedVisited::with_spill(64, &budget).expect("spill set");
        let ram = ShardedVisited::new(64, 4);
        let mut state = 0xdead_beef_u128;
        for i in 0..300u32 {
            state = state
                .wrapping_mul(0x2d99787926d46932a4c1f32680f70c55)
                .wrapping_add(1);
            let h = if i % 4 == 0 { state >> 1 << 1 } else { state };
            let d = i % 7;
            assert_eq!(spilled.insert_at(h, d), ram.insert_at(h, d), "insert {i}");
        }
        assert_eq!(spilled.len(), ram.len());
        assert_eq!(spilled.resizes(), ram.resizes());
        assert_eq!(spilled.export_entries(), ram.export_entries());
        let (len, bytes, resizes) = spilled.stats_snapshot();
        assert_eq!((len, resizes), (ram.len(), ram.resizes()));
        assert!(bytes <= budget.ram_bytes + spilled.spill_stats().unwrap().pages_written * 1024);
        assert!(spilled.error().is_none());
        assert!(
            spilled.spill_stats().unwrap().evictions > 0,
            "16-entry budget must spill"
        );
        assert!(spilled.peak_bytes() > 0);
    }

    #[test]
    fn handle_trait_is_object_usable_for_both() {
        fn drive<V: VisitedHandle>(v: &mut V) -> usize {
            v.insert(1);
            v.insert(1);
            v.insert_at(2, 4);
            v.len()
        }
        let mut a = VisitedSet::new(16);
        let mut b = ShardedVisited::new(16, 2);
        assert_eq!(drive(&mut a), 2);
        assert_eq!(drive(&mut b), 2);
        assert!(a.bytes() > 0 && VisitedHandle::bytes(&b) > 0);
    }
}
