//! The visited-state set, with hash-table resize modelling.
//!
//! Fig. 3 of the paper shows MCFS's rate collapsing around day 3 "because
//! Spin was resizing its hash table of visited states". The visited set here
//! reports resize events (with a modelled cost proportional to the rehashed
//! entry count) so the reproduction exhibits the same dynamics.

use std::collections::HashMap;

use parking_lot::Mutex;
use std::sync::Arc;

/// A hash-table resize event, reported when an insert crosses the capacity
/// threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResizeEvent {
    /// Entries rehashed.
    pub entries: u64,
    /// Modelled cost in virtual nanoseconds (rehash + the memory spike of
    /// holding the old and new tables simultaneously).
    pub cost_ns: u64,
    /// Transient extra bytes while both tables exist.
    pub transient_bytes: u64,
}

/// Bytes accounted per stored fingerprint (16-byte hash + table overhead).
pub const BYTES_PER_ENTRY: u64 = 48;

/// Per-entry rehash cost in virtual nanoseconds. Rehashing a table that no
/// longer fits RAM is page-fault dominated (the Fig. 3 "resize dip"), so
/// this models a faulting rehash, not an in-cache one.
const REHASH_NS_PER_ENTRY: u64 = 40_000;

/// How an insert related to the existing table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visit {
    /// First time this state is seen.
    New,
    /// Seen before, but now reached at a strictly shallower depth — a
    /// depth-bounded search must re-expand it or it will miss successors
    /// (SPIN re-explores in exactly this case).
    Shallower,
    /// Seen before at an equal or shallower depth: prune.
    Matched,
}

/// The explorer's visited-state set over 128-bit abstract fingerprints,
/// remembering the shallowest depth each state was reached at.
#[derive(Debug)]
pub struct VisitedSet {
    set: HashMap<u128, u32>,
    threshold: usize,
    resizes: u32,
}

impl VisitedSet {
    /// Creates a set whose first modelled resize happens at
    /// `initial_capacity` entries.
    pub fn new(initial_capacity: usize) -> Self {
        VisitedSet {
            set: HashMap::new(),
            threshold: initial_capacity.max(2),
            resizes: 0,
        }
    }

    /// Inserts a fingerprint at depth 0. Returns `(is_new, resize)` —
    /// `is_new` is false when the state was already visited; `resize`
    /// reports a modelled hash-table resize triggered by this insert.
    pub fn insert(&mut self, h: u128) -> (bool, Option<ResizeEvent>) {
        let (visit, resize) = self.insert_at(h, 0);
        (visit == Visit::New, resize)
    }

    /// Inserts a fingerprint reached at `depth`, classifying the visit (see
    /// [`Visit`]). Depth-bounded searches expand on `New` *and*
    /// `Shallower`.
    pub fn insert_at(&mut self, h: u128, depth: u32) -> (Visit, Option<ResizeEvent>) {
        let visit = match self.set.get(&h) {
            None => {
                self.set.insert(h, depth);
                Visit::New
            }
            Some(&prev) if depth < prev => {
                self.set.insert(h, depth);
                Visit::Shallower
            }
            Some(_) => Visit::Matched,
        };
        let mut resize = None;
        if visit == Visit::New && self.set.len() >= self.threshold {
            let entries = self.set.len() as u64;
            resize = Some(ResizeEvent {
                entries,
                cost_ns: entries * REHASH_NS_PER_ENTRY,
                transient_bytes: entries * BYTES_PER_ENTRY,
            });
            self.threshold *= 2;
            self.resizes += 1;
        }
        (visit, resize)
    }

    /// Whether `h` has been visited.
    pub fn contains(&self, h: u128) -> bool {
        self.set.contains_key(&h)
    }

    /// Number of distinct states visited.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether no state has been visited.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Number of modelled resizes so far.
    pub fn resizes(&self) -> u32 {
        self.resizes
    }

    /// Bytes held by the table (per the model).
    pub fn bytes(&self) -> u64 {
        self.set.len() as u64 * BYTES_PER_ENTRY
    }
}

impl Default for VisitedSet {
    fn default() -> Self {
        VisitedSet::new(1 << 16)
    }
}

/// A visited set shareable across swarm workers.
///
/// Cloning shares the underlying table. Swarm verification can run with a
/// shared set (workers avoid each other's states) or give each worker its
/// own ([`crate::run_swarm`] uses private sets for classic diversification).
#[derive(Debug, Clone, Default)]
pub struct SharedVisited {
    inner: Arc<Mutex<VisitedSet>>,
}

impl SharedVisited {
    /// Creates an empty shared set.
    pub fn new(initial_capacity: usize) -> Self {
        SharedVisited {
            inner: Arc::new(Mutex::new(VisitedSet::new(initial_capacity))),
        }
    }

    /// Inserts a fingerprint (see [`VisitedSet::insert`]).
    pub fn insert(&self, h: u128) -> (bool, Option<ResizeEvent>) {
        self.inner.lock().insert(h)
    }

    /// Number of distinct states.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_counts() {
        let mut v = VisitedSet::new(1024);
        assert!(v.insert(1).0);
        assert!(v.insert(2).0);
        assert!(!v.insert(1).0);
        assert_eq!(v.len(), 2);
        assert!(v.contains(2));
        assert!(!v.contains(3));
        assert_eq!(v.bytes(), 2 * BYTES_PER_ENTRY);
    }

    #[test]
    fn resize_fires_at_threshold_and_doubles() {
        let mut v = VisitedSet::new(4);
        let mut events = Vec::new();
        for i in 0..20u128 {
            if let (_, Some(e)) = v.insert(i) {
                events.push(e);
            }
        }
        // Thresholds: 4, 8, 16 → three resizes within 20 inserts.
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].entries, 4);
        assert_eq!(events[1].entries, 8);
        assert_eq!(events[2].entries, 16);
        assert!(events[2].cost_ns > events[0].cost_ns);
        assert_eq!(v.resizes(), 3);
    }

    #[test]
    fn duplicate_insert_never_resizes() {
        let mut v = VisitedSet::new(2);
        v.insert(1);
        v.insert(2); // resize here
        let before = v.resizes();
        for _ in 0..10 {
            assert_eq!(v.insert(1), (false, None));
        }
        assert_eq!(v.resizes(), before);
    }

    #[test]
    fn shared_set_is_shared() {
        let a = SharedVisited::new(64);
        let b = a.clone();
        assert!(a.insert(9).0);
        assert!(!b.insert(9).0);
        assert_eq!(b.len(), 1);
        assert!(!a.is_empty());
    }
}
