//! Pickle/load: a stable, versioned wire format for checker state.
//!
//! The paper's §7 wants exploration to outlive a single checking process
//! (kernel crashes mid-check, multi-day swarms, partitioning a search across
//! machines). This module serializes everything a run needs to continue —
//! the visited set's `(fingerprint, depth)` pairs, the pending frontier as
//! replayable op-prefixes, per-worker RNG cursors, and the cumulative
//! [`ExploreStats`] — into a self-describing, checksummed byte stream that a
//! later process loads to resume with zero re-exploration of known states.
//!
//! # Format
//!
//! ```text
//! magic    8 bytes  b"MCFSPKL\x01"
//! version  u32      FORMAT_VERSION (readers reject anything newer)
//! body     ...      little-endian, length-prefixed sections (see encode)
//! checksum u128     FNV-1a-128 over magic + version + body
//! ```
//!
//! Everything multi-byte is little-endian. Collections are `u32` count
//! followed by elements. Operations are *not* serialized by this module:
//! the caller supplies an [`OpCodec`] (the harness's op type lives above
//! this crate), which keeps the format generic over systems while the
//! framing, versioning, and integrity checking stay in one place.
//!
//! # Canonical bytes
//!
//! Visited entries are sorted by fingerprint before encoding, so
//! `encode(decode(bytes)) == bytes` holds for any valid stream — the
//! round-trip property the tests pin. A snapshot written mid-run is
//! byte-deterministic for a given logical state, whatever order the shards
//! filled in.
//!
//! # What is (and isn't) persisted
//!
//! Concrete checkpoint images are *not* serialized: frontiers are stored as
//! op-prefixes from the initial state, which deterministic replay turns back
//! into concrete states on load. This keeps snapshots small (48 bytes per
//! visited state plus the encoded frontier) and makes them portable across
//! processes whose memory layouts differ. RNG cursors record the seed and
//! draw count each worker had reached, letting diversified walks continue
//! with fresh derived seeds instead of repeating old paths.

use std::collections::VecDeque;
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::Path;

use crate::explore::ExploreStats;
use crate::spill::SpillStats;
use crate::system::{CheckpointStoreStats, CrashStats};

/// Leading magic of every pickle stream.
pub const MAGIC: [u8; 8] = *b"MCFSPKL\x01";

/// Current format version. Bump on any incompatible layout change; readers
/// reject versions they do not know. Version 2 extended the stats section
/// with the out-of-core counters (`visited_peak_bytes`, the optional
/// [`SpillStats`] block, and the checkpoint-store demotion fields).
pub const FORMAT_VERSION: u32 = 2;

/// Why a pickle stream failed to load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PickleError {
    /// The stream ended before the expected data.
    Truncated,
    /// The stream does not start with [`MAGIC`].
    BadMagic,
    /// The stream's version is unknown to this reader.
    BadVersion(u32),
    /// The trailing checksum does not match the content — the file was
    /// corrupted (e.g. a torn write outside the atomic-rename protocol).
    ChecksumMismatch,
    /// Structurally invalid content (bad tag, impossible length, …).
    Corrupt(String),
    /// An I/O error while reading or writing a snapshot file.
    Io(String),
}

impl fmt::Display for PickleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PickleError::Truncated => write!(f, "pickle stream truncated"),
            PickleError::BadMagic => write!(f, "not a pickle stream (bad magic)"),
            PickleError::BadVersion(v) => write!(f, "unsupported pickle version {v}"),
            PickleError::ChecksumMismatch => write!(f, "pickle checksum mismatch"),
            PickleError::Corrupt(msg) => write!(f, "corrupt pickle: {msg}"),
            PickleError::Io(msg) => write!(f, "pickle i/o: {msg}"),
        }
    }
}

impl std::error::Error for PickleError {}

/// FNV-1a over 128 bits — the integrity checksum. Not cryptographic; it
/// detects torn/bit-rotted files, which is all resume needs (a hostile
/// snapshot is out of scope — the file is the checker's own). Public so other
/// layers (e.g. the checkpoint pool's spilled-chunk dedup) can content-hash
/// with the same function the wire formats use.
pub fn fnv128(data: &[u8]) -> u128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013B;
    let mut h = OFFSET;
    for &b in data {
        h ^= b as u128;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Encodes one operation type to/from the wire. Implemented by the layer
/// that owns the op type (e.g. the harness crate for `FsOp`); the checker
/// stays generic.
pub trait OpCodec<Op> {
    /// Appends the encoding of `op` to `out`.
    fn encode_op(&self, op: &Op, out: &mut Vec<u8>);

    /// Decodes one operation from the reader.
    ///
    /// # Errors
    ///
    /// [`PickleError::Corrupt`] / [`PickleError::Truncated`] on malformed
    /// input.
    fn decode_op(&self, r: &mut ByteReader<'_>) -> Result<Op, PickleError>;
}

/// A pending frontier item: the operations that reach a yet-unexpanded
/// state from the initial state, plus the sleep set (ops already covered by
/// a sibling's subtree under partial-order reduction) it carries.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierEntry<Op> {
    /// Deterministic replay of these ops from the initial state reconstructs
    /// the concrete state this entry expands.
    pub prefix: Vec<Op>,
    /// Ops to skip when expanding (sleep-set POR, propagated from the
    /// parent's expansion).
    pub sleep: Vec<Op>,
}

/// Where a worker's random stream had advanced when the snapshot was taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RngCursor {
    /// The seed the worker was running with.
    pub seed: u64,
    /// Operations the worker had drawn with it (a progress marker; resumed
    /// walks derive a fresh seed rather than replaying draws, since their
    /// concrete walk position is intentionally not persisted).
    pub draws: u64,
}

/// Everything a run needs to continue in a fresh process.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSnapshot<Op> {
    /// Base seed of the run (workers derive theirs from it).
    pub base_seed: u64,
    /// Worker count the snapshot was taken with.
    pub workers: u32,
    /// How many times this run has been resumed (0 = original process).
    /// Resumed walks fold this into their derived seeds so they diversify
    /// instead of repeating the dead process's paths.
    pub generation: u32,
    /// The visited set: `(fingerprint, shallowest depth)` per state, sorted
    /// by fingerprint.
    pub visited: Vec<(u128, u32)>,
    /// Pending states as replayable op-prefixes.
    pub frontier: Vec<FrontierEntry<Op>>,
    /// Per-worker RNG positions.
    pub rng: Vec<RngCursor>,
    /// Cumulative stats across the run's whole life (all generations).
    pub stats: ExploreStats,
}

impl<Op> RunSnapshot<Op> {
    /// An empty snapshot for a run that has not started.
    pub fn empty(base_seed: u64, workers: u32) -> Self {
        RunSnapshot {
            base_seed,
            workers,
            generation: 0,
            visited: Vec::new(),
            frontier: Vec::new(),
            rng: Vec::new(),
            stats: ExploreStats::default(),
        }
    }
}

// ---------------------------------------------------------------------------
// Primitive writers
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u128(out: &mut Vec<u8>, v: u128) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a length-prefixed UTF-8 string (used by op codecs).
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

// ---------------------------------------------------------------------------
// Primitive reader
// ---------------------------------------------------------------------------

/// Cursor over a pickle stream, shared with [`OpCodec`] implementations.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PickleError> {
        if self.remaining() < n {
            return Err(PickleError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, PickleError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, PickleError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, PickleError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u128`.
    pub fn u128(&mut self) -> Result<u128, PickleError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, PickleError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| PickleError::Corrupt("non-UTF-8 string".into()))
    }

    /// Reads a collection length, sanity-bounded against the remaining
    /// bytes so a corrupt length cannot trigger a huge allocation.
    fn len(&mut self, min_elem_bytes: usize) -> Result<usize, PickleError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(PickleError::Corrupt(format!(
                "length {n} exceeds remaining {} bytes",
                self.remaining()
            )));
        }
        Ok(n)
    }
}

// ---------------------------------------------------------------------------
// Stats section
// ---------------------------------------------------------------------------

fn encode_stats(out: &mut Vec<u8>, s: &ExploreStats) {
    put_u64(out, s.ops_executed);
    put_u64(out, s.ops_replayed);
    put_u64(out, s.states_new);
    put_u64(out, s.states_matched);
    put_u64(out, s.pruned);
    put_u64(out, s.checkpoints);
    put_u64(out, s.restores);
    put_u64(out, s.max_depth_seen as u64);
    put_u32(out, s.resize_events);
    put_u64(out, s.peak_memory_bytes);
    put_u64(out, s.swap_traffic_bytes);
    put_u64(out, s.swapped_bytes);
    put_u64(out, s.hit_rate.to_bits());
    put_u64(out, s.virtual_ns);
    put_u64(out, s.visited_peak_bytes);
    match &s.spill {
        None => out.push(0),
        Some(sp) => {
            out.push(1);
            put_u64(out, sp.pages_written);
            put_u64(out, sp.pages_read);
            put_u64(out, sp.file_bytes_written);
            put_u64(out, sp.file_bytes_read);
            put_u64(out, sp.spilled_bytes);
            put_u64(out, sp.reloaded_bytes);
            put_u64(out, sp.hot_hits);
            put_u64(out, sp.cold_hits);
            put_u64(out, sp.bloom_skips);
            put_u64(out, sp.evictions);
            put_u64(out, sp.predicted_swap_bytes);
        }
    }
    match &s.checkpoint_store {
        None => out.push(0),
        Some(c) => {
            out.push(1);
            put_u64(out, c.snapshots as u64);
            put_u64(out, c.pinned as u64);
            put_u64(out, c.total_bytes as u64);
            put_u64(out, c.shared_bytes as u64);
            put_u64(out, c.resident_bytes as u64);
            put_u64(out, c.evictions);
            put_u64(out, c.inserts);
            put_u64(out, c.demotions);
            put_u64(out, c.promotions);
            put_u64(out, c.spilled_bytes);
        }
    }
    match &s.crash {
        None => out.push(0),
        Some(c) => {
            out.push(1);
            put_u64(out, c.crashes);
            put_u64(out, c.recoveries);
            put_u64(out, c.divergent_recoveries);
        }
    }
}

fn decode_stats(r: &mut ByteReader<'_>) -> Result<ExploreStats, PickleError> {
    let mut s = ExploreStats {
        ops_executed: r.u64()?,
        ops_replayed: r.u64()?,
        states_new: r.u64()?,
        states_matched: r.u64()?,
        pruned: r.u64()?,
        checkpoints: r.u64()?,
        restores: r.u64()?,
        max_depth_seen: r.u64()? as usize,
        resize_events: r.u32()?,
        peak_memory_bytes: r.u64()?,
        swap_traffic_bytes: r.u64()?,
        swapped_bytes: r.u64()?,
        hit_rate: f64::from_bits(r.u64()?),
        virtual_ns: r.u64()?,
        visited_peak_bytes: r.u64()?,
        spill: None,
        checkpoint_store: None,
        crash: None,
    };
    s.spill = match r.u8()? {
        0 => None,
        1 => Some(SpillStats {
            pages_written: r.u64()?,
            pages_read: r.u64()?,
            file_bytes_written: r.u64()?,
            file_bytes_read: r.u64()?,
            spilled_bytes: r.u64()?,
            reloaded_bytes: r.u64()?,
            hot_hits: r.u64()?,
            cold_hits: r.u64()?,
            bloom_skips: r.u64()?,
            evictions: r.u64()?,
            predicted_swap_bytes: r.u64()?,
        }),
        t => return Err(PickleError::Corrupt(format!("bad spill-stats tag {t}"))),
    };
    s.checkpoint_store = match r.u8()? {
        0 => None,
        1 => Some(CheckpointStoreStats {
            snapshots: r.u64()? as usize,
            pinned: r.u64()? as usize,
            total_bytes: r.u64()? as usize,
            shared_bytes: r.u64()? as usize,
            resident_bytes: r.u64()? as usize,
            evictions: r.u64()?,
            inserts: r.u64()?,
            demotions: r.u64()?,
            promotions: r.u64()?,
            spilled_bytes: r.u64()?,
        }),
        t => return Err(PickleError::Corrupt(format!("bad store-stats tag {t}"))),
    };
    s.crash = match r.u8()? {
        0 => None,
        1 => Some(CrashStats {
            crashes: r.u64()?,
            recoveries: r.u64()?,
            divergent_recoveries: r.u64()?,
        }),
        t => return Err(PickleError::Corrupt(format!("bad crash-stats tag {t}"))),
    };
    Ok(s)
}

// ---------------------------------------------------------------------------
// Snapshot encode / decode
// ---------------------------------------------------------------------------

/// Serializes a snapshot to its canonical byte form (visited entries are
/// sorted by fingerprint first).
pub fn encode_snapshot<Op>(snap: &RunSnapshot<Op>, codec: &dyn OpCodec<Op>) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + snap.visited.len() * 20);
    out.extend_from_slice(&MAGIC);
    put_u32(&mut out, FORMAT_VERSION);

    put_u64(&mut out, snap.base_seed);
    put_u32(&mut out, snap.workers);
    put_u32(&mut out, snap.generation);

    let mut visited = snap.visited.clone();
    visited.sort_unstable_by_key(|&(h, _)| h);
    put_u32(&mut out, visited.len() as u32);
    for (h, d) in &visited {
        put_u128(&mut out, *h);
        put_u32(&mut out, *d);
    }

    put_u32(&mut out, snap.frontier.len() as u32);
    for entry in &snap.frontier {
        put_u32(&mut out, entry.prefix.len() as u32);
        for op in &entry.prefix {
            codec.encode_op(op, &mut out);
        }
        put_u32(&mut out, entry.sleep.len() as u32);
        for op in &entry.sleep {
            codec.encode_op(op, &mut out);
        }
    }

    put_u32(&mut out, snap.rng.len() as u32);
    for c in &snap.rng {
        put_u64(&mut out, c.seed);
        put_u64(&mut out, c.draws);
    }

    encode_stats(&mut out, &snap.stats);

    let sum = fnv128(&out);
    put_u128(&mut out, sum);
    out
}

/// Streaming snapshot encoder producing bytes **identical** to
/// [`encode_snapshot`] without ever materializing the visited set as a
/// `Vec` — the §7 export path for bigger-than-RAM runs pipes
/// `ShardedVisited::stream_entries` straight into it, page by page.
///
/// Sections must be written in wire order: `begin_visited` →
/// `visited_entry`× → `frontier_entry`s via [`SnapshotWriter::frontier`] →
/// [`SnapshotWriter::rng`] → [`SnapshotWriter::finish`]. Visited entries
/// must arrive sorted by fingerprint (the canonical order); debug builds
/// assert it.
pub struct SnapshotWriter<'c, Op> {
    out: Vec<u8>,
    codec: &'c dyn OpCodec<Op>,
    visited_declared: u32,
    visited_written: u32,
    last_fp: Option<u128>,
}

impl<'c, Op> SnapshotWriter<'c, Op> {
    /// Starts a stream with the snapshot header.
    pub fn new(codec: &'c dyn OpCodec<Op>, base_seed: u64, workers: u32, generation: u32) -> Self {
        let mut out = Vec::with_capacity(256);
        out.extend_from_slice(&MAGIC);
        put_u32(&mut out, FORMAT_VERSION);
        put_u64(&mut out, base_seed);
        put_u32(&mut out, workers);
        put_u32(&mut out, generation);
        SnapshotWriter {
            out,
            codec,
            visited_declared: 0,
            visited_written: 0,
            last_fp: None,
        }
    }

    /// Declares the visited-entry count (the wire format length-prefixes
    /// the section, so the count must be known up front — sets track it as
    /// `len()` without materializing entries).
    pub fn begin_visited(&mut self, count: u32) {
        self.visited_declared = count;
        put_u32(&mut self.out, count);
    }

    /// Appends one visited entry; must be called in fingerprint order.
    pub fn visited_entry(&mut self, fingerprint: u128, depth: u32) {
        debug_assert!(
            self.last_fp.is_none_or(|p| p < fingerprint),
            "visited entries must stream in sorted order"
        );
        self.last_fp = Some(fingerprint);
        self.visited_written += 1;
        put_u128(&mut self.out, fingerprint);
        put_u32(&mut self.out, depth);
    }

    /// Writes the frontier section (after the last visited entry).
    pub fn frontier(&mut self, entries: &[FrontierEntry<Op>]) {
        assert_eq!(
            self.visited_written, self.visited_declared,
            "visited section incomplete"
        );
        put_u32(&mut self.out, entries.len() as u32);
        for entry in entries {
            put_u32(&mut self.out, entry.prefix.len() as u32);
            for op in &entry.prefix {
                self.codec.encode_op(op, &mut self.out);
            }
            put_u32(&mut self.out, entry.sleep.len() as u32);
            for op in &entry.sleep {
                self.codec.encode_op(op, &mut self.out);
            }
        }
    }

    /// Writes the RNG-cursor section.
    pub fn rng(&mut self, cursors: &[RngCursor]) {
        put_u32(&mut self.out, cursors.len() as u32);
        for c in cursors {
            put_u64(&mut self.out, c.seed);
            put_u64(&mut self.out, c.draws);
        }
    }

    /// Writes the stats section, stamps the checksum, and returns the
    /// finished stream.
    pub fn finish(mut self, stats: &ExploreStats) -> Vec<u8> {
        encode_stats(&mut self.out, stats);
        let sum = fnv128(&self.out);
        put_u128(&mut self.out, sum);
        self.out
    }
}

/// Parses and verifies a snapshot from its byte form.
///
/// # Errors
///
/// Any [`PickleError`] variant: bad magic/version, checksum mismatch, or
/// structural corruption.
pub fn decode_snapshot<Op>(
    bytes: &[u8],
    codec: &dyn OpCodec<Op>,
) -> Result<RunSnapshot<Op>, PickleError> {
    if bytes.len() < MAGIC.len() + 4 + 16 {
        return Err(PickleError::Truncated);
    }
    if bytes[..MAGIC.len()] != MAGIC {
        return Err(PickleError::BadMagic);
    }
    let (body, tail) = bytes.split_at(bytes.len() - 16);
    let stored = u128::from_le_bytes(tail.try_into().unwrap());
    if fnv128(body) != stored {
        return Err(PickleError::ChecksumMismatch);
    }

    let mut r = ByteReader::new(&body[MAGIC.len()..]);
    let version = r.u32()?;
    if version != FORMAT_VERSION {
        return Err(PickleError::BadVersion(version));
    }

    let base_seed = r.u64()?;
    let workers = r.u32()?;
    let generation = r.u32()?;

    let nvisited = r.len(20)?;
    let mut visited = Vec::with_capacity(nvisited);
    for _ in 0..nvisited {
        let h = r.u128()?;
        let d = r.u32()?;
        visited.push((h, d));
    }

    let nfrontier = r.len(8)?;
    let mut frontier = Vec::with_capacity(nfrontier);
    for _ in 0..nfrontier {
        let nprefix = r.len(1)?;
        let mut prefix = Vec::with_capacity(nprefix);
        for _ in 0..nprefix {
            prefix.push(codec.decode_op(&mut r)?);
        }
        let nsleep = r.len(1)?;
        let mut sleep = Vec::with_capacity(nsleep);
        for _ in 0..nsleep {
            sleep.push(codec.decode_op(&mut r)?);
        }
        frontier.push(FrontierEntry { prefix, sleep });
    }

    let nrng = r.len(16)?;
    let mut rng = Vec::with_capacity(nrng);
    for _ in 0..nrng {
        rng.push(RngCursor {
            seed: r.u64()?,
            draws: r.u64()?,
        });
    }

    let stats = decode_stats(&mut r)?;
    if r.remaining() != 0 {
        return Err(PickleError::Corrupt(format!(
            "{} trailing bytes",
            r.remaining()
        )));
    }
    Ok(RunSnapshot {
        base_seed,
        workers,
        generation,
        visited,
        frontier,
        rng,
        stats,
    })
}

// ---------------------------------------------------------------------------
// Atomic file persistence
// ---------------------------------------------------------------------------

/// Writes `bytes` to `path` atomically: the data goes to a sibling
/// tempfile, is flushed to stable storage, and is renamed over `path`.
/// A process killed at any instant leaves either the old snapshot or the
/// new one — never a torn file (and a torn tempfile fails the checksum
/// anyway).
///
/// # Errors
///
/// [`PickleError::Io`] wrapping the underlying filesystem error.
pub fn save_atomic(path: &Path, bytes: &[u8]) -> Result<(), PickleError> {
    let tmp = path.with_extension("pickle-tmp");
    let io = |e: std::io::Error| PickleError::Io(format!("{}: {e}", tmp.display()));
    let mut f = fs::File::create(&tmp).map_err(io)?;
    f.write_all(bytes).map_err(io)?;
    f.sync_all().map_err(io)?;
    drop(f);
    fs::rename(&tmp, path).map_err(|e| PickleError::Io(format!("{}: {e}", path.display())))
}

/// Loads and verifies a snapshot file written by [`save_atomic`].
///
/// # Errors
///
/// [`PickleError::Io`] if the file cannot be read, otherwise any decode
/// error from [`decode_snapshot`].
pub fn load_snapshot<Op>(
    path: &Path,
    codec: &dyn OpCodec<Op>,
) -> Result<RunSnapshot<Op>, PickleError> {
    let bytes = fs::read(path).map_err(|e| PickleError::Io(format!("{}: {e}", path.display())))?;
    decode_snapshot(&bytes, codec)
}

/// Splits `frontier` round-robin into `n` per-worker queues — how a resumed
/// swarm redistributes the saved frontier across its (possibly different
/// number of) workers. Work-stealing rebalances any skew afterwards.
pub fn deal_frontier<Op>(
    frontier: Vec<FrontierEntry<Op>>,
    n: usize,
) -> Vec<VecDeque<FrontierEntry<Op>>> {
    let n = n.max(1);
    let mut queues: Vec<VecDeque<FrontierEntry<Op>>> = (0..n).map(|_| VecDeque::new()).collect();
    for (i, entry) in frontier.into_iter().enumerate() {
        queues[i % n].push_back(entry);
    }
    queues
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test codec: ops are plain `u32`s.
    struct U32Codec;

    impl OpCodec<u32> for U32Codec {
        fn encode_op(&self, op: &u32, out: &mut Vec<u8>) {
            put_u32(out, *op);
        }
        fn decode_op(&self, r: &mut ByteReader<'_>) -> Result<u32, PickleError> {
            r.u32()
        }
    }

    fn sample() -> RunSnapshot<u32> {
        RunSnapshot {
            base_seed: 42,
            workers: 4,
            generation: 2,
            visited: vec![(7, 1), (3, 0), (0xffff_ffff_ffff_ffff_ffff, 9)],
            frontier: vec![
                FrontierEntry {
                    prefix: vec![1, 2, 3],
                    sleep: vec![9],
                },
                FrontierEntry {
                    prefix: vec![],
                    sleep: vec![],
                },
            ],
            rng: vec![
                RngCursor { seed: 1, draws: 10 },
                RngCursor {
                    seed: 2,
                    draws: 999,
                },
            ],
            stats: ExploreStats {
                ops_executed: 100,
                ops_replayed: 7,
                states_new: 55,
                states_matched: 11,
                hit_rate: 0.75,
                max_depth_seen: 6,
                visited_peak_bytes: 4096,
                spill: Some(SpillStats {
                    pages_written: 5,
                    pages_read: 3,
                    spilled_bytes: 960,
                    reloaded_bytes: 480,
                    bloom_skips: 17,
                    predicted_swap_bytes: 1300,
                    ..SpillStats::default()
                }),
                checkpoint_store: Some(CheckpointStoreStats {
                    snapshots: 3,
                    inserts: 12,
                    demotions: 4,
                    promotions: 2,
                    spilled_bytes: 2048,
                    ..CheckpointStoreStats::default()
                }),
                crash: Some(CrashStats {
                    crashes: 2,
                    recoveries: 2,
                    divergent_recoveries: 0,
                }),
                ..ExploreStats::default()
            },
        }
    }

    #[test]
    fn round_trip_is_identity_and_canonical() {
        let snap = sample();
        let bytes = encode_snapshot(&snap, &U32Codec);
        let back = decode_snapshot(&bytes, &U32Codec).expect("decode");
        // Visited comes back sorted; everything else verbatim.
        let mut expect = snap.clone();
        expect.visited.sort_unstable_by_key(|&(h, _)| h);
        assert_eq!(back, expect);
        // Canonical bytes: re-encoding the decoded snapshot is bit-identical.
        assert_eq!(encode_snapshot(&back, &U32Codec), bytes);
    }

    #[test]
    fn snapshot_writer_bytes_match_encode_snapshot() {
        let snap = sample();
        let batch = encode_snapshot(&snap, &U32Codec);
        let mut sorted = snap.visited.clone();
        sorted.sort_unstable_by_key(|&(h, _)| h);
        let mut w = SnapshotWriter::new(&U32Codec, snap.base_seed, snap.workers, snap.generation);
        w.begin_visited(sorted.len() as u32);
        for (h, d) in sorted {
            w.visited_entry(h, d);
        }
        w.frontier(&snap.frontier);
        w.rng(&snap.rng);
        assert_eq!(w.finish(&snap.stats), batch);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = RunSnapshot::<u32>::empty(9, 1);
        let bytes = encode_snapshot(&snap, &U32Codec);
        assert_eq!(decode_snapshot(&bytes, &U32Codec).unwrap(), snap);
    }

    #[test]
    fn checksum_detects_any_flipped_bit() {
        let bytes = encode_snapshot(&sample(), &U32Codec);
        for pos in [8, 13, bytes.len() / 2, bytes.len() - 17] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            let err = decode_snapshot(&bad, &U32Codec).unwrap_err();
            assert!(
                matches!(err, PickleError::ChecksumMismatch | PickleError::BadMagic),
                "flip at {pos}: {err:?}"
            );
        }
    }

    #[test]
    fn truncation_and_bad_magic_are_rejected() {
        let bytes = encode_snapshot(&sample(), &U32Codec);
        assert_eq!(
            decode_snapshot::<u32>(&bytes[..10], &U32Codec).unwrap_err(),
            PickleError::Truncated
        );
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(
            decode_snapshot::<u32>(&bad, &U32Codec).unwrap_err(),
            PickleError::BadMagic
        );
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = encode_snapshot(&sample(), &U32Codec);
        // Patch the version field and re-stamp the checksum so only the
        // version check can fire.
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        let body_len = bytes.len() - 16;
        let sum = fnv128(&bytes[..body_len]);
        let tail = bytes.len() - 16;
        bytes[tail..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            decode_snapshot::<u32>(&bytes, &U32Codec).unwrap_err(),
            PickleError::BadVersion(99)
        );
    }

    #[test]
    fn corrupt_length_cannot_overallocate() {
        // A visited count far beyond the stream's size must fail cleanly.
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        put_u32(&mut out, FORMAT_VERSION);
        put_u64(&mut out, 0); // seed
        put_u32(&mut out, 1); // workers
        put_u32(&mut out, 0); // generation
        put_u32(&mut out, u32::MAX); // visited count: absurd
        let sum = fnv128(&out);
        put_u128(&mut out, sum);
        assert!(matches!(
            decode_snapshot::<u32>(&out, &U32Codec).unwrap_err(),
            PickleError::Corrupt(_)
        ));
    }

    #[test]
    fn save_atomic_then_load() {
        let dir = std::env::temp_dir().join("mcfs-pickle-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.pickle");
        let snap = sample();
        let bytes = encode_snapshot(&snap, &U32Codec);
        save_atomic(&path, &bytes).expect("save");
        assert!(!path.with_extension("pickle-tmp").exists(), "tmp cleaned");
        let back = load_snapshot(&path, &U32Codec).expect("load");
        assert_eq!(encode_snapshot(&back, &U32Codec), bytes);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn deal_frontier_round_robins() {
        let entries: Vec<FrontierEntry<u32>> = (0..7)
            .map(|i| FrontierEntry {
                prefix: vec![i],
                sleep: vec![],
            })
            .collect();
        let queues = deal_frontier(entries, 3);
        assert_eq!(queues.len(), 3);
        assert_eq!(queues[0].len(), 3);
        assert_eq!(queues[1].len(), 2);
        assert_eq!(queues[2].len(), 2);
        assert_eq!(queues[1][0].prefix, vec![1]);
    }
}
