//! The model-system interface: what a system under test must provide.

use std::fmt;

/// Identifier for a stored concrete state in the system's state store.
///
/// The explorer allocates these; the system maps them to whatever its
/// checkpoint mechanism stores (device images, VeriFS snapshot-pool keys,
/// process images…).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub u64);

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Marker embedded in restore-error messages when the state store evicted
/// the requested checkpoint under memory pressure. Explorers check for it
/// (via [`is_evicted_error`]) to report a budget-driven stop instead of a
/// fatal failure.
pub const EVICTED_MARKER: &str = "[checkpoint-evicted]";

/// Whether a restore error reports an evicted checkpoint rather than a
/// genuine failure.
pub fn is_evicted_error(msg: &str) -> bool {
    msg.contains(EVICTED_MARKER)
}

/// Aggregate statistics of a system's checkpoint store, surfaced into
/// exploration reports when the system maintains a budgeted pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointStoreStats {
    /// Snapshots currently resident.
    pub snapshots: usize,
    /// Resident snapshots pinned against eviction.
    pub pinned: usize,
    /// Logical bytes of all resident snapshots (what the memory model sees).
    pub total_bytes: usize,
    /// Bytes of resident snapshots shared with live state or one another.
    pub shared_bytes: usize,
    /// Host bytes uniquely attributable to the store.
    pub resident_bytes: usize,
    /// Snapshots evicted under budget pressure so far.
    pub evictions: u64,
    /// Snapshots inserted so far.
    pub inserts: u64,
    /// Snapshots demoted to the disk spill tier instead of being dropped
    /// (out-of-core checkpoint pool; 0 when spill is disabled).
    pub demotions: u64,
    /// Demoted snapshots promoted back to RAM on access.
    pub promotions: u64,
    /// Bytes currently held by the disk spill tier for demoted snapshots.
    pub spilled_bytes: u64,
}

impl CheckpointStoreStats {
    /// Accumulates another store's stats (a harness sums its targets).
    pub fn merge(&mut self, other: &CheckpointStoreStats) {
        self.snapshots += other.snapshots;
        self.pinned += other.pinned;
        self.total_bytes += other.total_bytes;
        self.shared_bytes += other.shared_bytes;
        self.resident_bytes += other.resident_bytes;
        self.evictions += other.evictions;
        self.inserts += other.inserts;
        self.demotions += other.demotions;
        self.promotions += other.promotions;
        self.spilled_bytes += other.spilled_bytes;
    }
}

/// Statistics of a system's crash-injection machinery (how many crash
/// pseudo-operations ran and how their recoveries fared), surfaced into
/// exploration reports when the system explores crashes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CrashStats {
    /// Crash pseudo-operations applied.
    pub crashes: u64,
    /// Crashes whose every target recovered to a prefix-consistent state.
    pub recoveries: u64,
    /// Crashes where the targets each recovered validly but to *different*
    /// states (pruned, not a violation: both outcomes are legal).
    pub divergent_recoveries: u64,
}

impl CrashStats {
    /// Accumulates another system's stats (swarm workers sum per-shard).
    pub fn merge(&mut self, other: &CrashStats) {
        self.crashes += other.crashes;
        self.recoveries += other.recoveries;
        self.divergent_recoveries += other.divergent_recoveries;
    }
}

/// Result of applying one operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApplyOutcome {
    /// The operation executed (successfully or with an expected error);
    /// exploration continues through the resulting state.
    Ok,
    /// The operation could not be issued in this state (e.g. capability
    /// missing); the branch is pruned without counting a new state.
    Prune(String),
    /// The integrity check failed: the system misbehaved. Exploration
    /// records the trace and (by default) stops.
    Violation(String),
}

/// A system explorable by the checker.
///
/// This is the contract SPIN's `c_track`-embedded C code fulfills in the
/// paper: nondeterministic operations ([`ops`](ModelSystem::ops) +
/// [`apply`](ModelSystem::apply)), an *abstract* state used for
/// visited-state matching ([`abstract_state`](ModelSystem::abstract_state) —
/// the matched `c_track` buffer), and *concrete* checkpoint/restore used for
/// backtracking (the unmatched buffers).
pub trait ModelSystem {
    /// One nondeterministic operation.
    type Op: Clone + PartialEq + fmt::Debug + Send;

    /// Operations enabled in the current state (the `do ... od` entries).
    fn ops(&mut self) -> Vec<Self::Op>;

    /// Executes `op` against the live system.
    fn apply(&mut self, op: &Self::Op) -> ApplyOutcome;

    /// The abstract-state fingerprint of the current state (Algorithm 1's
    /// MD5 in MCFS). Two states with equal fingerprints are treated as the
    /// same state and not re-explored.
    fn abstract_state(&mut self) -> u128;

    /// Saves the current concrete state under `id`, returning its
    /// approximate size in bytes (the memory model charges it).
    ///
    /// # Errors
    ///
    /// A message describing why the checkpoint failed (treated as fatal).
    fn checkpoint(&mut self, id: StateId) -> Result<usize, String>;

    /// Restores the concrete state stored under `id` (which stays stored —
    /// DFS re-enters a parent once per branch).
    ///
    /// # Errors
    ///
    /// A message describing why the restore failed (treated as fatal).
    fn restore(&mut self, id: StateId) -> Result<(), String>;

    /// Drops the state stored under `id`.
    fn release(&mut self, id: StateId);

    /// Pins the state stored under `id` against budget-driven eviction.
    /// DFS pins its backtrack spine — evicting a state the explorer *will*
    /// re-enter guarantees a wasted run. Systems without a budgeted store
    /// ignore this.
    fn pin(&mut self, id: StateId) {
        let _ = id;
    }

    /// Releases an eviction pin taken by [`pin`](ModelSystem::pin).
    fn unpin(&mut self, id: StateId) {
        let _ = id;
    }

    /// Statistics of the system's checkpoint store, if it keeps one.
    fn checkpoint_store_stats(&self) -> Option<CheckpointStoreStats> {
        None
    }

    /// Statistics of the system's crash injection, if it explores crashes.
    fn crash_stats(&self) -> Option<CrashStats> {
        None
    }

    /// Whether two operations commute (their executions from any state reach
    /// the same state in either order). Used by partial-order reduction;
    /// the conservative default disables reduction.
    fn independent(&self, a: &Self::Op, b: &Self::Op) -> bool {
        let _ = (a, b);
        false
    }

    /// A persistent (source) set for the current state: a mask over
    /// `enabled` selecting a subset whose exploration alone suffices to
    /// reach every state reachable through `enabled` (Godefroid-style
    /// dynamic POR). `None` means "expand everything". Explorers consult
    /// this only when [`ExploreConfig::por_persistent`] is set; the
    /// conservative default performs no reduction.
    ///
    /// [`ExploreConfig::por_persistent`]: crate::ExploreConfig::por_persistent
    fn persistent_set(&mut self, enabled: &[Self::Op]) -> Option<Vec<bool>> {
        let _ = enabled;
        None
    }

    /// Minimizes a violating trace, returning the shrunk trace and shrink
    /// statistics when the system supports (and has enabled) counterexample
    /// minimization. Explorers call this at violation-record time; the
    /// default does nothing. Implementations must validate candidates
    /// against *fresh* instances — never the live, already-violated one —
    /// and accept only candidates reproducing `message` exactly.
    fn minimize(
        &mut self,
        trace: &[Self::Op],
        message: &str,
    ) -> Option<(Vec<Self::Op>, crate::ShrinkStats)> {
        let _ = (trace, message);
        None
    }
}

/// A recorded property violation with its reproduction trace.
#[derive(Debug, Clone)]
pub struct Violation<Op> {
    /// The operations from the initial state to the misbehaving one,
    /// inclusive of the final (violating) operation.
    pub trace: Vec<Op>,
    /// Human-readable description from the integrity check.
    pub message: String,
    /// Operations executed before detection (the paper reports
    /// ops-to-detection for each bug found).
    pub ops_executed: u64,
    /// Delta-debugged reproduction trace, when the system minimized the
    /// counterexample ([`ModelSystem::minimize`]). Always a subsequence of
    /// `trace` that reproduces a violation with the same `message` on a
    /// fresh system.
    pub minimized_trace: Option<Vec<Op>>,
    /// Statistics of the minimization that produced `minimized_trace`.
    pub shrink: Option<crate::ShrinkStats>,
}

impl<Op> Violation<Op> {
    /// The best reproduction trace available: the minimized one when
    /// minimization ran, the full recorded trace otherwise.
    pub fn best_trace(&self) -> &[Op] {
        self.minimized_trace.as_deref().unwrap_or(&self.trace)
    }
}

impl<Op: fmt::Debug> fmt::Display for Violation<Op> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "violation after {} ops: {}",
            self.ops_executed, self.message
        )?;
        writeln!(f, "trace ({} ops):", self.trace.len())?;
        for (i, op) in self.trace.iter().enumerate() {
            writeln!(f, "  {:>3}. {op:?}", i + 1)?;
        }
        if let Some(min) = &self.minimized_trace {
            match &self.shrink {
                Some(s) => writeln!(
                    f,
                    "minimized trace ({} ops, {} candidates, {} replays):",
                    min.len(),
                    s.candidates_tried,
                    s.replays_run
                )?,
                None => writeln!(f, "minimized trace ({} ops):", min.len())?,
            }
            for (i, op) in min.iter().enumerate() {
                writeln!(f, "  {:>3}. {op:?}", i + 1)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_id_display() {
        assert_eq!(StateId(7).to_string(), "s7");
    }

    #[test]
    fn violation_display_includes_trace() {
        let v = Violation {
            trace: vec!["mkdir", "rmdir"],
            message: "hash mismatch".into(),
            ops_executed: 42,
            minimized_trace: None,
            shrink: None,
        };
        let s = v.to_string();
        assert!(s.contains("42 ops"));
        assert!(s.contains("mkdir"));
        assert!(s.contains("hash mismatch"));
        assert!(!s.contains("minimized"));
        assert_eq!(v.best_trace(), ["mkdir", "rmdir"]);
    }

    #[test]
    fn violation_display_includes_minimized_trace() {
        let v = Violation {
            trace: vec!["mkdir", "stat", "rmdir"],
            message: "hash mismatch".into(),
            ops_executed: 42,
            minimized_trace: Some(vec!["mkdir", "rmdir"]),
            shrink: Some(crate::ShrinkStats {
                ops_before: 3,
                ops_after: 2,
                candidates_tried: 5,
                replays_run: 4,
            }),
        };
        let s = v.to_string();
        assert!(s.contains("minimized trace (2 ops, 5 candidates, 4 replays)"));
        assert_eq!(v.best_trace(), ["mkdir", "rmdir"]);
    }
}
