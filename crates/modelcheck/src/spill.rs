//! Out-of-core spilling: disk-backed visited set and frontier pages.
//!
//! The paper's evaluation (§6, Fig. 3) is bounded by RAM: the VeriFS1 run
//! slows as the visited set and checkpoints outgrow the 64 GB VM and start
//! swapping. [`crate::memmodel`] *simulates* those dynamics; this module
//! *manages* them, so real exhaustive runs are bounded by state-space size
//! instead of host memory. A [`MemBudget`] caps the checker's hot RAM;
//! overflow spills to an append-only page file and is reloaded on demand.
//!
//! # Page file
//!
//! Pages reuse the pickle container discipline: each page is framed as
//!
//! ```text
//! magic    8 bytes  b"MCFSPKL\x01"   (same magic as snapshots)
//! version  u32      PAGE_VERSION
//! len      u32      body length
//! body     ...      kind-tagged payload (visited entries or frontier ops)
//! checksum u128     FNV-1a-128 over everything above
//! ```
//!
//! Visited bodies store `(fingerprint, depth)` entries sorted by
//! fingerprint and delta-compressed with LEB128 varints — consecutive
//! uniform 128-bit fingerprints within one shard share their high bits, so
//! deltas are short. Frontier bodies store op-prefixes via the caller's
//! [`OpCodec`], exactly like snapshot frontiers.
//!
//! The page file is an unnamed-in-spirit per-run temp file (removed on
//! drop); it is *not* a persistence format — resume still goes through the
//! pickle snapshot, which is written from the merged view of hot + pages.
//!
//! # Hot cache and probes
//!
//! [`SpillSet`] shards fingerprints by their top bits exactly like
//! `ShardedVisited`. Each shard keeps a hot `HashMap`; when the aggregate
//! hot bytes exceed the budget, the least-recently-touched shard's hot map
//! is drained to one page (clock-style shard LRU — eviction is per shard,
//! so one page write amortizes hundreds of entries). Every page keeps an
//! in-RAM bloom filter (~10 bits/entry, 4 probes), so a cold probe reads at
//! most the pages whose filters claim the fingerprint — usually one, often
//! zero. Pages are probed newest-first: re-loaded entries are re-installed
//! hot with their minimum depth, so a newer page can only hold an equal or
//! shallower depth than an older one, and the first hit is the true
//! minimum.
//!
//! # Model validation, not substitution
//!
//! A private [`MemoryModel`] "predictor" is driven with the same entry
//! stores/accesses the real structure serves, using its entry-granular LRU.
//! Its predicted swap traffic is reported next to the *measured* spill
//! traffic in [`SpillStats`] — the bench asserts they agree, which is what
//! keeps the simulation honest now that the checker also manages real
//! memory.
//!
//! # Failure discipline
//!
//! A spill file that fails (EIO, torn write caught by the page checksum)
//! poisons the store: the first error is recorded, subsequent inserts
//! degrade to `Matched` (never `New` — no state is silently re-counted),
//! and explorers check [`SpillSet::error`] after every insert so the run
//! stops loudly with a replayable `Fatal` instead of silently dropping
//! visited states. [`SpillFaults`] injects those failures for tests.

use std::collections::{HashMap, VecDeque};
use std::fs;
use std::os::unix::fs::FileExt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::memmodel::{MemConfig, MemoryModel};
use crate::pickle::{fnv128, ByteReader, FrontierEntry, OpCodec, PickleError, MAGIC};
use crate::system::StateId;
use crate::visited::{ResizeEvent, Visit, BYTES_PER_ENTRY, REHASH_NS_PER_ENTRY};

/// Version of the spill-page framing (independent of the snapshot format).
pub const PAGE_VERSION: u32 = 1;

const PAGE_KIND_VISITED: u8 = 1;
const PAGE_KIND_FRONTIER: u8 = 2;

/// Bloom sizing: ~10 bits per entry, 4 probes ≈ 1% false-positive rate.
const BLOOM_BITS_PER_ENTRY: usize = 10;
const BLOOM_HASHES: u64 = 4;

/// Never spill fewer than this many frontier entries per page (tiny pages
/// waste frame overhead and file syscalls).
const MIN_FRONTIER_BATCH: usize = 16;

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// RAM budget for out-of-core exploration, threaded through
/// `ExploreConfig`/`SwarmConfig`/`McfsConfig`.
#[derive(Debug, Clone)]
pub struct MemBudget {
    /// Hot-cache budget in bytes for the visited set. Entries beyond this
    /// spill to disk (at [`BYTES_PER_ENTRY`] modelled bytes per entry).
    pub ram_bytes: u64,
    /// Directory for spill files. `None` = the system temp dir.
    pub spill_dir: Option<PathBuf>,
    /// Visited-set shard count (rounded up to a power of two). More shards
    /// mean finer-grained eviction and less lock contention.
    pub shards: usize,
    /// Virtual-ns cost per MiB of real page traffic, charged to the run's
    /// virtual clock (mirrors `MemConfig::swap_ns_per_mib`).
    pub ns_per_mib: u64,
    /// Hot-cache budget in bytes for each swarm worker's frontier queue;
    /// colder op-prefix entries spill to pages.
    pub frontier_hot_bytes: u64,
    /// Fault injection for tests; default injects nothing.
    pub faults: SpillFaults,
}

impl MemBudget {
    /// A budget of `ram_bytes` with default sharding, swap cost, and a
    /// frontier allowance of a quarter of the visited budget.
    pub fn new(ram_bytes: u64) -> Self {
        MemBudget {
            ram_bytes,
            spill_dir: None,
            shards: 64,
            ns_per_mib: 100_000,
            frontier_hot_bytes: (ram_bytes / 4).max(4096),
            faults: SpillFaults::default(),
        }
    }

    /// The directory spill files go to.
    pub fn dir(&self) -> PathBuf {
        self.spill_dir.clone().unwrap_or_else(std::env::temp_dir)
    }
}

/// Deterministic fault injection on the spill file (all counters are
/// 0-based page-operation ordinals).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillFaults {
    /// Fail the Nth page write with an injected EIO.
    pub fail_write_at: Option<u64>,
    /// Fail the Nth page read with an injected EIO.
    pub fail_read_at: Option<u64>,
    /// Tear the Nth page write: only half the frame reaches the file but it
    /// is recorded as complete, so the eventual read fails its checksum.
    pub torn_write_at: Option<u64>,
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

/// Counters for out-of-core behavior, surfaced through `ExploreStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Pages written to the spill file (visited + frontier).
    pub pages_written: u64,
    /// Pages read back from the spill file.
    pub pages_read: u64,
    /// Real framed bytes written to the spill file.
    pub file_bytes_written: u64,
    /// Real framed bytes read from the spill file.
    pub file_bytes_read: u64,
    /// Modelled visited-entry bytes demoted to disk (48 B per entry).
    pub spilled_bytes: u64,
    /// Modelled visited-entry bytes promoted back to the hot cache.
    pub reloaded_bytes: u64,
    /// Probes answered by a shard's hot map.
    pub hot_hits: u64,
    /// Probes answered by a spilled page.
    pub cold_hits: u64,
    /// Page reads avoided because a bloom filter ruled the page out.
    pub bloom_skips: u64,
    /// Shard hot-map evictions (each producing one page).
    pub evictions: u64,
    /// The memmodel predictor's swap traffic for the same workload —
    /// compare against [`SpillStats::measured_swap_bytes`].
    pub predicted_swap_bytes: u64,
}

impl SpillStats {
    /// Measured visited-entry swap traffic (demotions + promotions), the
    /// quantity [`SpillStats::predicted_swap_bytes`] is validated against.
    /// Frontier page traffic is excluded here (the model only covers the
    /// visited set) but visible in the `pages_*`/`file_bytes_*` counters.
    pub fn measured_swap_bytes(&self) -> u64 {
        self.spilled_bytes + self.reloaded_bytes
    }

    /// Relative error of the memmodel prediction vs measurement (0.0 when
    /// both are zero).
    pub fn model_error(&self) -> f64 {
        let measured = self.measured_swap_bytes();
        if measured == 0 {
            return if self.predicted_swap_bytes == 0 {
                0.0
            } else {
                1.0
            };
        }
        (self.predicted_swap_bytes as f64 - measured as f64).abs() / measured as f64
    }

    /// Field-wise sum, for merging per-worker stats.
    pub fn merge(&mut self, o: &SpillStats) {
        self.pages_written += o.pages_written;
        self.pages_read += o.pages_read;
        self.file_bytes_written += o.file_bytes_written;
        self.file_bytes_read += o.file_bytes_read;
        self.spilled_bytes += o.spilled_bytes;
        self.reloaded_bytes += o.reloaded_bytes;
        self.hot_hits += o.hot_hits;
        self.cold_hits += o.cold_hits;
        self.bloom_skips += o.bloom_skips;
        self.evictions += o.evictions;
        self.predicted_swap_bytes += o.predicted_swap_bytes;
    }
}

// ---------------------------------------------------------------------------
// Page store
// ---------------------------------------------------------------------------

/// Location of one framed page in the spill file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageLoc {
    /// Byte offset of the frame start.
    pub offset: u64,
    /// Full frame length (magic + version + len + body + checksum).
    pub len: u32,
}

static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// Append-only page file shared by the visited set and frontier queues.
/// All operations are `&self` (positioned I/O); the file is deleted on
/// drop. The first failure poisons the store — see the module docs.
#[derive(Debug)]
pub struct SpillStore {
    file: fs::File,
    path: PathBuf,
    end: AtomicU64,
    ns_per_mib: u64,
    pending_ns: AtomicU64,
    error: Mutex<Option<String>>,
    faults: SpillFaults,
    writes: AtomicU64,
    reads: AtomicU64,
    pages_written: AtomicU64,
    pages_read: AtomicU64,
    bytes_written: AtomicU64,
    bytes_read: AtomicU64,
}

impl SpillStore {
    /// Opens a fresh spill file under the budget's directory.
    ///
    /// # Errors
    ///
    /// A human-readable message when the directory or file cannot be
    /// created.
    pub fn new(budget: &MemBudget) -> Result<Arc<SpillStore>, String> {
        let dir = budget.dir();
        fs::create_dir_all(&dir).map_err(|e| format!("spill dir {}: {e}", dir.display()))?;
        let seq = SPILL_SEQ.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!("mcfs-spill-{}-{seq}.pages", std::process::id()));
        let file = fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)
            .map_err(|e| format!("spill file {}: {e}", path.display()))?;
        Ok(Arc::new(SpillStore {
            file,
            path,
            end: AtomicU64::new(0),
            ns_per_mib: budget.ns_per_mib,
            pending_ns: AtomicU64::new(0),
            error: Mutex::new(None),
            faults: budget.faults,
            writes: AtomicU64::new(0),
            reads: AtomicU64::new(0),
            pages_written: AtomicU64::new(0),
            pages_read: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
        }))
    }

    /// Records the first error and returns `msg` for propagation.
    pub(crate) fn poison(&self, msg: String) -> String {
        let mut e = self.error.lock();
        if e.is_none() {
            *e = Some(msg.clone());
        }
        msg
    }

    /// The first spill failure, if any. A poisoned store means visited
    /// answers can no longer be trusted — callers must stop the run.
    pub fn error(&self) -> Option<String> {
        self.error.lock().clone()
    }

    fn charge(&self, bytes: u64) {
        self.pending_ns
            .fetch_add(bytes * self.ns_per_mib / (1 << 20), Ordering::Relaxed);
    }

    /// Virtual-ns accumulated by real page traffic since the last take;
    /// explorers drain this onto the run's virtual clock.
    pub fn take_pending_ns(&self) -> u64 {
        self.pending_ns.swap(0, Ordering::Relaxed)
    }

    /// Frames `body` and appends it to the file.
    ///
    /// # Errors
    ///
    /// On real or injected I/O failure; the store is poisoned.
    pub fn write_page(&self, body: &[u8]) -> Result<PageLoc, String> {
        let mut frame = Vec::with_capacity(body.len() + 32);
        frame.extend_from_slice(&MAGIC);
        frame.extend_from_slice(&PAGE_VERSION.to_le_bytes());
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(body);
        let sum = fnv128(&frame);
        frame.extend_from_slice(&sum.to_le_bytes());

        let n = self.writes.fetch_add(1, Ordering::Relaxed);
        if self.faults.fail_write_at == Some(n) {
            return Err(self.poison(format!("spill page write {n}: injected EIO")));
        }
        let offset = self.end.fetch_add(frame.len() as u64, Ordering::Relaxed);
        let torn = self.faults.torn_write_at == Some(n);
        let persisted = if torn {
            &frame[..frame.len() / 2]
        } else {
            &frame[..]
        };
        self.file
            .write_all_at(persisted, offset)
            .map_err(|e| self.poison(format!("spill page write at {offset}: {e}")))?;
        self.pages_written.fetch_add(1, Ordering::Relaxed);
        self.bytes_written
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
        self.charge(frame.len() as u64);
        Ok(PageLoc {
            offset,
            len: frame.len() as u32,
        })
    }

    /// Reads back a page body, verifying frame and checksum.
    ///
    /// # Errors
    ///
    /// On I/O failure or any integrity violation (torn write, bit rot);
    /// the store is poisoned.
    pub fn read_page(&self, loc: PageLoc) -> Result<Vec<u8>, String> {
        let n = self.reads.fetch_add(1, Ordering::Relaxed);
        if self.faults.fail_read_at == Some(n) {
            return Err(self.poison(format!("spill page read {n}: injected EIO")));
        }
        let mut frame = vec![0u8; loc.len as usize];
        self.file
            .read_exact_at(&mut frame, loc.offset)
            .map_err(|e| self.poison(format!("spill page read at {}: {e}", loc.offset)))?;
        self.pages_read.fetch_add(1, Ordering::Relaxed);
        self.bytes_read
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
        self.charge(frame.len() as u64);

        if frame.len() < MAGIC.len() + 8 + 16 || frame[..MAGIC.len()] != MAGIC {
            return Err(self.poison(format!("spill page at {}: bad magic", loc.offset)));
        }
        let (payload, tail) = frame.split_at(frame.len() - 16);
        let stored = u128::from_le_bytes(tail.try_into().unwrap());
        if fnv128(payload) != stored {
            return Err(self.poison(format!(
                "spill page at {}: checksum mismatch (torn or corrupt write)",
                loc.offset
            )));
        }
        let version = u32::from_le_bytes(payload[8..12].try_into().unwrap());
        if version != PAGE_VERSION {
            return Err(self.poison(format!("spill page at {}: version {version}", loc.offset)));
        }
        let body_len = u32::from_le_bytes(payload[12..16].try_into().unwrap()) as usize;
        if body_len != payload.len() - 16 {
            return Err(self.poison(format!("spill page at {}: bad body length", loc.offset)));
        }
        Ok(payload[16..].to_vec())
    }

    /// Real pages written so far (visited + frontier).
    pub fn pages_written(&self) -> u64 {
        self.pages_written.load(Ordering::Relaxed)
    }

    /// Real pages read so far.
    pub fn pages_read(&self) -> u64 {
        self.pages_read.load(Ordering::Relaxed)
    }

    /// Real framed bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Real framed bytes read so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    #[cfg(test)]
    pub(crate) fn path(&self) -> &std::path::Path {
        &self.path
    }
}

impl Drop for SpillStore {
    fn drop(&mut self) {
        fs::remove_file(&self.path).ok();
    }
}

// ---------------------------------------------------------------------------
// Varint + page codecs
// ---------------------------------------------------------------------------

fn put_varint(out: &mut Vec<u8>, mut v: u128) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn get_varint(r: &mut ByteReader<'_>) -> Result<u128, String> {
    let mut v = 0u128;
    let mut shift = 0u32;
    loop {
        let b = r.u8().map_err(|e| e.to_string())?;
        if shift >= 128 {
            return Err("varint overflow".into());
        }
        v |= ((b & 0x7f) as u128) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Encodes sorted `(fingerprint, depth)` entries as a visited page body.
fn encode_visited_page(shard_idx: u32, entries: &[(u128, u32)]) -> Vec<u8> {
    debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
    let mut out = Vec::with_capacity(entries.len() * 8 + 16);
    out.push(PAGE_KIND_VISITED);
    out.extend_from_slice(&shard_idx.to_le_bytes());
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    let mut prev = 0u128;
    for &(h, d) in entries {
        put_varint(&mut out, h.wrapping_sub(prev));
        put_varint(&mut out, d as u128);
        prev = h;
    }
    out
}

/// Decodes a visited page body back to sorted entries.
fn decode_visited_page(body: &[u8]) -> Result<(u32, Vec<(u128, u32)>), String> {
    let es = |e: PickleError| e.to_string();
    let mut r = ByteReader::new(body);
    let kind = r.u8().map_err(es)?;
    if kind != PAGE_KIND_VISITED {
        return Err(format!("bad visited page kind {kind}"));
    }
    let shard_idx = r.u32().map_err(es)?;
    let count = r.u32().map_err(es)? as usize;
    if count > body.len() {
        return Err(format!("visited page count {count} exceeds body"));
    }
    let mut prev = 0u128;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let delta = get_varint(&mut r)?;
        let depth = get_varint(&mut r)?;
        if depth > u32::MAX as u128 {
            return Err("visited page depth overflow".into());
        }
        prev = prev.wrapping_add(delta);
        out.push((prev, depth as u32));
    }
    if r.remaining() != 0 {
        return Err(format!("visited page: {} trailing bytes", r.remaining()));
    }
    Ok((shard_idx, out))
}

// ---------------------------------------------------------------------------
// Bloom filters (in RAM, one per spilled page)
// ---------------------------------------------------------------------------

fn bloom_indices(words: usize, h: u128) -> impl Iterator<Item = (usize, u64)> {
    let bits = (words as u64) * 64;
    let h1 = h as u64;
    let h2 = ((h >> 64) as u64) | 1;
    (0..BLOOM_HASHES).map(move |i| {
        let bit = h1.wrapping_add(i.wrapping_mul(h2)) % bits;
        ((bit / 64) as usize, 1u64 << (bit % 64))
    })
}

fn bloom_build(entries: &[(u128, u32)]) -> Box<[u64]> {
    let bits = (entries.len() * BLOOM_BITS_PER_ENTRY).div_ceil(64).max(1) * 64;
    let mut words = vec![0u64; bits / 64];
    for &(h, _) in entries {
        for (w, mask) in bloom_indices(words.len(), h) {
            words[w] |= mask;
        }
    }
    words.into_boxed_slice()
}

fn bloom_maybe(words: &[u64], h: u128) -> bool {
    bloom_indices(words.len(), h).all(|(w, mask)| words[w] & mask != 0)
}

// ---------------------------------------------------------------------------
// Spilling visited set
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct PageRef {
    loc: PageLoc,
    bloom: Box<[u64]>,
}

#[derive(Debug)]
struct SpillShard {
    /// Hot entries; invariant: an entry present here holds the minimum
    /// depth known for its fingerprint (pages may hold stale deeper
    /// copies, min-merged on export).
    hot: HashMap<u128, u32>,
    /// Spilled pages, oldest first. Probed newest-first.
    pages: Vec<PageRef>,
    /// Distinct fingerprints ever inserted into this shard (hot + cold).
    distinct: u64,
    /// Modelled resize threshold over `distinct` — matches the in-memory
    /// `VisitedSet` dynamics exactly, because hot-cache churn never
    /// changes `distinct`.
    threshold: usize,
    resizes: u32,
}

#[derive(Debug)]
struct ShardSlot {
    inner: Mutex<SpillShard>,
    /// Last-touch tick for clock-LRU victim selection (racy reads are fine).
    touch: AtomicU64,
    /// Cached hot entry count so victim selection never takes locks.
    hot_len: AtomicUsize,
}

/// A disk-spilling visited set with the same classification semantics as
/// `ShardedVisited` (it *is* the backing store `ShardedVisited` delegates
/// to when a [`MemBudget`] is configured). See the module docs.
#[derive(Debug)]
pub struct SpillSet {
    slots: Vec<ShardSlot>,
    shard_bits: u32,
    ram_bytes: u64,
    store: Arc<SpillStore>,
    tick: AtomicU64,
    hot_bytes: AtomicU64,
    /// Bloom filters + page bookkeeping kept in RAM (reported in `bytes`).
    meta_bytes: AtomicU64,
    peak_bytes: AtomicU64,
    spilled_bytes: AtomicU64,
    reloaded_bytes: AtomicU64,
    hot_hits: AtomicU64,
    cold_hits: AtomicU64,
    bloom_skips: AtomicU64,
    evictions: AtomicU64,
    /// The validated-against memory model: driven with the same entry
    /// traffic, evicting by its own entry-granular LRU.
    predictor: Mutex<MemoryModel>,
}

fn fold_id(h: u128) -> StateId {
    StateId((h ^ (h >> 64)) as u64)
}

impl SpillSet {
    /// Creates a spilling set with the aggregate first-resize threshold of
    /// `initial_capacity`, budgeted by `budget`.
    ///
    /// # Errors
    ///
    /// When the spill file cannot be created.
    pub fn new(initial_capacity: usize, budget: &MemBudget) -> Result<SpillSet, String> {
        let n = budget.shards.max(1).next_power_of_two();
        let per_shard = (initial_capacity / n).max(2);
        let store = SpillStore::new(budget)?;
        let predictor = MemoryModel::new(MemConfig {
            ram_bytes: budget.ram_bytes,
            // Effectively unbounded swap: the predictor models traffic,
            // the real OOM guard is the spill file itself.
            swap_bytes: u64::MAX / 2,
            swap_ns_per_mib: budget.ns_per_mib,
        });
        let slots = (0..n)
            .map(|_| ShardSlot {
                inner: Mutex::new(SpillShard {
                    hot: HashMap::new(),
                    pages: Vec::new(),
                    distinct: 0,
                    threshold: per_shard,
                    resizes: 0,
                }),
                touch: AtomicU64::new(0),
                hot_len: AtomicUsize::new(0),
            })
            .collect();
        Ok(SpillSet {
            slots,
            shard_bits: n.trailing_zeros(),
            ram_bytes: budget.ram_bytes,
            store,
            tick: AtomicU64::new(0),
            hot_bytes: AtomicU64::new(0),
            meta_bytes: AtomicU64::new(0),
            peak_bytes: AtomicU64::new(0),
            spilled_bytes: AtomicU64::new(0),
            reloaded_bytes: AtomicU64::new(0),
            hot_hits: AtomicU64::new(0),
            cold_hits: AtomicU64::new(0),
            bloom_skips: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            predictor: Mutex::new(predictor),
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.slots.len()
    }

    /// The shared page store (the swarm frontier reuses it).
    pub fn store(&self) -> &Arc<SpillStore> {
        &self.store
    }

    fn shard_idx(&self, h: u128) -> usize {
        if self.shard_bits == 0 {
            0
        } else {
            (h >> (128 - self.shard_bits)) as usize
        }
    }

    fn bump_peak(&self) {
        let now = self.hot_bytes.load(Ordering::Relaxed) + self.meta_bytes.load(Ordering::Relaxed);
        self.peak_bytes.fetch_max(now, Ordering::Relaxed);
    }

    /// Inserts a fingerprint at depth 0 (see `VisitedSet::insert`).
    pub fn insert(&self, h: u128) -> (bool, Option<ResizeEvent>) {
        let (visit, resize) = self.insert_at(h, 0);
        (visit == Visit::New, resize)
    }

    /// Inserts a fingerprint reached at `depth`, classifying the visit
    /// exactly as the in-memory set would — hot hit, cold page probe, or
    /// genuinely new. A poisoned store degrades to `Matched` (never a
    /// spurious `New`); callers must then observe [`SpillSet::error`].
    pub fn insert_at(&self, h: u128, depth: u32) -> (Visit, Option<ResizeEvent>) {
        let idx = self.shard_idx(h);
        let slot = &self.slots[idx];
        slot.touch.store(
            self.tick.fetch_add(1, Ordering::Relaxed) + 1,
            Ordering::Relaxed,
        );
        let result = {
            let mut g = slot.inner.lock();
            let r = self.insert_locked(&mut g, h, depth);
            slot.hot_len.store(g.hot.len(), Ordering::Relaxed);
            r
        };
        self.maybe_evict();
        result
    }

    fn insert_locked(
        &self,
        g: &mut SpillShard,
        h: u128,
        depth: u32,
    ) -> (Visit, Option<ResizeEvent>) {
        let id = fold_id(h);
        if let Some(&prev) = g.hot.get(&h) {
            self.hot_hits.fetch_add(1, Ordering::Relaxed);
            let _ = self.predictor.lock().access(id);
            if depth < prev {
                g.hot.insert(h, depth);
                return (Visit::Shallower, None);
            }
            return (Visit::Matched, None);
        }
        match self.probe_pages(g, h) {
            Err(_) => (Visit::Matched, None), // poisoned; run stops via error()
            Ok(Some(prev)) => {
                self.cold_hits.fetch_add(1, Ordering::Relaxed);
                self.reloaded_bytes
                    .fetch_add(BYTES_PER_ENTRY, Ordering::Relaxed);
                g.hot.insert(h, prev.min(depth));
                self.hot_bytes.fetch_add(BYTES_PER_ENTRY, Ordering::Relaxed);
                self.bump_peak();
                let _ = self.predictor.lock().access(id);
                if depth < prev {
                    (Visit::Shallower, None)
                } else {
                    (Visit::Matched, None)
                }
            }
            Ok(None) => {
                g.hot.insert(h, depth);
                g.distinct += 1;
                self.hot_bytes.fetch_add(BYTES_PER_ENTRY, Ordering::Relaxed);
                self.bump_peak();
                let _ = self.predictor.lock().store(id, BYTES_PER_ENTRY);
                let mut resize = None;
                if g.distinct as usize >= g.threshold {
                    let entries = g.distinct;
                    resize = Some(ResizeEvent {
                        entries,
                        cost_ns: entries * REHASH_NS_PER_ENTRY,
                        transient_bytes: entries * BYTES_PER_ENTRY,
                    });
                    g.threshold *= 2;
                    g.resizes += 1;
                }
                (Visit::New, resize)
            }
        }
    }

    /// Probes spilled pages newest-first; the first hit is the minimum
    /// depth (see the module docs for why).
    fn probe_pages(&self, g: &SpillShard, h: u128) -> Result<Option<u32>, String> {
        for page in g.pages.iter().rev() {
            if !bloom_maybe(&page.bloom, h) {
                self.bloom_skips.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let body = self.store.read_page(page.loc)?;
            let (_, entries) = decode_visited_page(&body).map_err(|e| self.store.poison(e))?;
            if let Ok(i) = entries.binary_search_by_key(&h, |&(f, _)| f) {
                return Ok(Some(entries[i].1));
            }
        }
        Ok(None)
    }

    fn pick_victim(&self) -> Option<usize> {
        let mut best: Option<(u64, usize)> = None;
        for (i, slot) in self.slots.iter().enumerate() {
            if slot.hot_len.load(Ordering::Relaxed) == 0 {
                continue;
            }
            let t = slot.touch.load(Ordering::Relaxed);
            if best.is_none_or(|(bt, _)| t < bt) {
                best = Some((t, i));
            }
        }
        best.map(|(_, i)| i)
    }

    /// Demotes least-recently-touched shards' hot maps to pages until the
    /// hot cache fits the budget.
    fn maybe_evict(&self) {
        while self.hot_bytes.load(Ordering::Relaxed) > self.ram_bytes {
            let Some(victim) = self.pick_victim() else {
                return;
            };
            let slot = &self.slots[victim];
            let mut g = slot.inner.lock();
            if g.hot.is_empty() {
                slot.hot_len.store(0, Ordering::Relaxed);
                continue;
            }
            let mut entries: Vec<(u128, u32)> = g.hot.drain().collect();
            entries.sort_unstable_by_key(|&(f, _)| f);
            let n = entries.len() as u64;
            self.hot_bytes
                .fetch_sub(n * BYTES_PER_ENTRY, Ordering::Relaxed);
            slot.hot_len.store(0, Ordering::Relaxed);
            let body = encode_visited_page(victim as u32, &entries);
            if let Ok(loc) = self.store.write_page(&body) {
                let bloom = bloom_build(&entries);
                self.meta_bytes
                    .fetch_add((bloom.len() * 8 + 48) as u64, Ordering::Relaxed);
                g.pages.push(PageRef { loc, bloom });
                self.evictions.fetch_add(1, Ordering::Relaxed);
                self.spilled_bytes
                    .fetch_add(n * BYTES_PER_ENTRY, Ordering::Relaxed);
            }
            // On write failure the store is poisoned and the run stops; the
            // drained entries are not re-installed (the state set is no
            // longer trustworthy either way).
            self.bump_peak();
        }
    }

    /// Whether `h` has been visited (hot or spilled).
    pub fn contains(&self, h: u128) -> bool {
        self.depth_of(h).is_some()
    }

    /// Depth recorded for `h`, if visited.
    pub fn depth_of(&self, h: u128) -> Option<u32> {
        let slot = &self.slots[self.shard_idx(h)];
        let g = slot.inner.lock();
        if let Some(&d) = g.hot.get(&h) {
            return Some(d);
        }
        self.probe_pages(&g, h).ok().flatten()
    }

    /// Number of distinct states visited (exact: spilling never changes
    /// the distinct count).
    pub fn len(&self) -> usize {
        self.slots
            .iter()
            .map(|s| s.inner.lock().distinct as usize)
            .sum()
    }

    /// Whether no state has been visited.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total modelled resizes across shards.
    pub fn resizes(&self) -> u32 {
        self.slots.iter().map(|s| s.inner.lock().resizes).sum()
    }

    /// RAM actually held: hot entries plus bloom/page metadata.
    pub fn bytes(&self) -> u64 {
        self.hot_bytes.load(Ordering::Relaxed) + self.meta_bytes.load(Ordering::Relaxed)
    }

    /// High-water mark of [`SpillSet::bytes`].
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes.load(Ordering::Relaxed)
    }

    /// Consistent `(len, bytes, resizes)` snapshot: all shard locks are
    /// held simultaneously, so no concurrent insert can skew the sums.
    pub fn snapshot_counts(&self) -> (usize, u64, u32) {
        let guards: Vec<_> = self.slots.iter().map(|s| s.inner.lock()).collect();
        let len = guards.iter().map(|g| g.distinct as usize).sum();
        let resizes = guards.iter().map(|g| g.resizes).sum();
        drop(guards);
        (len, self.bytes(), resizes)
    }

    /// Streams every `(fingerprint, depth)` entry in globally sorted order
    /// (shards are routed by top bits, so shard order is fingerprint
    /// order), min-merging spilled pages with the hot map shard by shard —
    /// peak extra memory is one shard's worth, not the whole set.
    ///
    /// # Errors
    ///
    /// On spill-file read failure (the store is poisoned).
    pub fn stream_entries(&self, mut f: impl FnMut(u128, u32)) -> Result<(), String> {
        for slot in &self.slots {
            let g = slot.inner.lock();
            let mut merged: HashMap<u128, u32> = HashMap::with_capacity(g.hot.len());
            for page in &g.pages {
                let body = self.store.read_page(page.loc)?;
                let (_, entries) = decode_visited_page(&body).map_err(|e| self.store.poison(e))?;
                for (h, d) in entries {
                    merged
                        .entry(h)
                        .and_modify(|v| *v = (*v).min(d))
                        .or_insert(d);
                }
            }
            for (&h, &d) in &g.hot {
                merged
                    .entry(h)
                    .and_modify(|v| *v = (*v).min(d))
                    .or_insert(d);
            }
            let mut sorted: Vec<(u128, u32)> = merged.into_iter().collect();
            sorted.sort_unstable_by_key(|&(h, _)| h);
            for (h, d) in sorted {
                f(h, d);
            }
        }
        Ok(())
    }

    /// Exports all entries sorted by fingerprint.
    ///
    /// # Errors
    ///
    /// On spill-file read failure.
    pub fn export_entries(&self) -> Result<Vec<(u128, u32)>, String> {
        let mut out = Vec::new();
        self.stream_entries(|h, d| out.push((h, d)))?;
        Ok(out)
    }

    /// Bulk-loads previously exported entries, min-merging depths without
    /// firing modelled resize events (mirrors `VisitedSet::load_entries`);
    /// evicts periodically so a big resume load cannot balloon the hot
    /// cache past the budget.
    pub fn load_entries(&self, entries: &[(u128, u32)]) {
        for (i, &(h, d)) in entries.iter().enumerate() {
            let idx = self.shard_idx(h);
            let slot = &self.slots[idx];
            slot.touch.store(
                self.tick.fetch_add(1, Ordering::Relaxed) + 1,
                Ordering::Relaxed,
            );
            {
                let mut g = slot.inner.lock();
                self.load_one(&mut g, h, d);
                slot.hot_len.store(g.hot.len(), Ordering::Relaxed);
            }
            if i % 1024 == 1023 {
                self.maybe_evict();
            }
        }
        self.maybe_evict();
    }

    fn load_one(&self, g: &mut SpillShard, h: u128, d: u32) {
        if let Some(&prev) = g.hot.get(&h) {
            if d < prev {
                g.hot.insert(h, d);
            }
            return;
        }
        match self.probe_pages(g, h) {
            Err(_) => {}
            Ok(Some(prev)) => {
                g.hot.insert(h, prev.min(d));
                self.hot_bytes.fetch_add(BYTES_PER_ENTRY, Ordering::Relaxed);
            }
            Ok(None) => {
                g.hot.insert(h, d);
                g.distinct += 1;
                self.hot_bytes.fetch_add(BYTES_PER_ENTRY, Ordering::Relaxed);
                while g.distinct as usize >= g.threshold {
                    g.threshold *= 2;
                }
                let _ = self.predictor.lock().store(fold_id(h), BYTES_PER_ENTRY);
            }
        }
        self.bump_peak();
    }

    /// Virtual-ns accumulated by real page traffic since the last take.
    pub fn take_pending_ns(&self) -> u64 {
        self.store.take_pending_ns()
    }

    /// The first spill failure, if any — the run must stop when set.
    pub fn error(&self) -> Option<String> {
        self.store.error()
    }

    /// Current out-of-core counters, including the predictor's traffic.
    pub fn spill_stats(&self) -> SpillStats {
        SpillStats {
            pages_written: self.store.pages_written(),
            pages_read: self.store.pages_read(),
            file_bytes_written: self.store.bytes_written(),
            file_bytes_read: self.store.bytes_read(),
            spilled_bytes: self.spilled_bytes.load(Ordering::Relaxed),
            reloaded_bytes: self.reloaded_bytes.load(Ordering::Relaxed),
            hot_hits: self.hot_hits.load(Ordering::Relaxed),
            cold_hits: self.cold_hits.load(Ordering::Relaxed),
            bloom_skips: self.bloom_skips.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            predicted_swap_bytes: self.predictor.lock().swap_traffic_bytes(),
        }
    }
}

// ---------------------------------------------------------------------------
// Spilling frontier queue
// ---------------------------------------------------------------------------

/// Shared spill context for frontier queues: the page store (shared with
/// the visited set) and the per-queue hot budget.
#[derive(Debug)]
pub struct FrontierSpill {
    store: Arc<SpillStore>,
    hot_cap_bytes: u64,
}

impl FrontierSpill {
    /// Wraps `store` with a per-queue hot budget.
    pub fn new(store: Arc<SpillStore>, hot_cap_bytes: u64) -> Self {
        FrontierSpill {
            store,
            hot_cap_bytes,
        }
    }

    /// The underlying page store.
    pub fn store(&self) -> &Arc<SpillStore> {
        &self.store
    }
}

/// Per-call spill context: `None` runs the queue as a plain in-memory
/// deque (the non-persistent swarm path has no codec to page ops with).
pub type SpillCtx<'c, Op> = Option<(&'c FrontierSpill, &'c dyn OpCodec<Op>)>;

/// Rough resident bytes of one frontier entry (ops are enum-sized; this is
/// a model figure for budgeting, not an allocator measurement).
fn entry_bytes<Op>(e: &FrontierEntry<Op>) -> u64 {
    ((e.prefix.len() + e.sleep.len()) * 16 + 32) as u64
}

#[derive(Debug)]
struct FrontierPage {
    loc: PageLoc,
    count: u32,
}

/// A worker frontier deque whose cold middle spills to pages. Logical
/// order is `head[..], pages[0] … pages[last], tail[..]`: pushes land on
/// the tail (and its oldest half spills to a new page when over budget),
/// front pops reload the oldest page into the head, back pops reload the
/// newest page into the tail — so BFS pops and steals hit the oldest
/// entries first while DFS only touches pages once the tail drains.
#[derive(Debug)]
pub struct FrontierQueue<Op> {
    /// Entries older than every page (reloaded from the pages' front).
    head: VecDeque<FrontierEntry<Op>>,
    /// Entries newer than every page (where pushes land).
    tail: VecDeque<FrontierEntry<Op>>,
    hot_bytes: u64,
    pages: Vec<FrontierPage>,
}

impl<Op> Default for FrontierQueue<Op> {
    fn default() -> Self {
        FrontierQueue {
            head: VecDeque::new(),
            tail: VecDeque::new(),
            hot_bytes: 0,
            pages: Vec::new(),
        }
    }
}

impl<Op> FrontierQueue<Op> {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Entries across hot deques and spilled pages.
    pub fn len(&self) -> usize {
        self.head.len()
            + self.tail.len()
            + self.pages.iter().map(|p| p.count as usize).sum::<usize>()
    }

    /// Whether no entry is pending.
    pub fn is_empty(&self) -> bool {
        self.head.is_empty() && self.tail.is_empty() && self.pages.is_empty()
    }
}

impl<Op: Clone> FrontierQueue<Op> {
    fn load_page(
        &self,
        spill: &FrontierSpill,
        codec: &dyn OpCodec<Op>,
        page: &FrontierPage,
    ) -> Result<Vec<FrontierEntry<Op>>, String> {
        let body = spill.store.read_page(page.loc)?;
        let entries = decode_frontier_page(&body, codec).map_err(|e| spill.store.poison(e))?;
        if entries.len() != page.count as usize {
            return Err(spill.store.poison(format!(
                "frontier page count mismatch at {}",
                page.loc.offset
            )));
        }
        Ok(entries)
    }

    /// Appends an entry; spills the oldest half of the hot deque to one
    /// page when the hot budget is exceeded.
    ///
    /// # Errors
    ///
    /// On spill-file write failure (the store is poisoned).
    pub fn push_back(&mut self, e: FrontierEntry<Op>, ctx: SpillCtx<'_, Op>) -> Result<(), String> {
        self.hot_bytes += entry_bytes(&e);
        self.tail.push_back(e);
        if let Some((spill, codec)) = ctx {
            if self.hot_bytes > spill.hot_cap_bytes && self.tail.len() >= MIN_FRONTIER_BATCH {
                let n = self.tail.len() / 2;
                let batch: Vec<FrontierEntry<Op>> = self.tail.drain(..n).collect();
                for b in &batch {
                    self.hot_bytes -= entry_bytes(b);
                }
                let body = encode_frontier_page(&batch, codec);
                let loc = spill.store.write_page(&body)?;
                self.pages.push(FrontierPage {
                    loc,
                    count: batch.len() as u32,
                });
            }
        }
        Ok(())
    }

    /// Pops the globally oldest entry (BFS order), reloading the oldest
    /// page first when one exists.
    ///
    /// # Errors
    ///
    /// On spill-file read failure, or if pages exist but no spill context
    /// was supplied.
    pub fn pop_front(
        &mut self,
        ctx: SpillCtx<'_, Op>,
    ) -> Result<Option<FrontierEntry<Op>>, String> {
        if self.head.is_empty() && !self.pages.is_empty() {
            let Some((spill, codec)) = ctx else {
                return Err("frontier pages present without spill context".into());
            };
            let page = self.pages.remove(0);
            for e in self.load_page(spill, codec, &page)? {
                self.hot_bytes += entry_bytes(&e);
                self.head.push_back(e);
            }
        }
        Ok(self
            .head
            .pop_front()
            .or_else(|| self.tail.pop_front())
            .inspect(|e| {
                self.hot_bytes -= entry_bytes(e);
            }))
    }

    /// Pops the globally newest entry (DFS order); pages are only touched
    /// once the hot deque is empty.
    ///
    /// # Errors
    ///
    /// As [`FrontierQueue::pop_front`].
    pub fn pop_back(&mut self, ctx: SpillCtx<'_, Op>) -> Result<Option<FrontierEntry<Op>>, String> {
        if self.tail.is_empty() {
            if let Some(page) = self.pages.pop() {
                let Some((spill, codec)) = ctx else {
                    self.pages.push(page);
                    return Err("frontier pages present without spill context".into());
                };
                let entries = self.load_page(spill, codec, &page)?;
                for e in entries {
                    self.hot_bytes += entry_bytes(&e);
                    self.tail.push_back(e);
                }
            }
        }
        Ok(self
            .tail
            .pop_back()
            .or_else(|| self.head.pop_back())
            .inspect(|e| {
                self.hot_bytes -= entry_bytes(e);
            }))
    }

    /// Removes and returns the oldest half of the queue (work-stealing
    /// semantics of `drain(..len/2)`), reloading whole pages as needed.
    ///
    /// # Errors
    ///
    /// As [`FrontierQueue::pop_front`].
    pub fn steal_half(&mut self, ctx: SpillCtx<'_, Op>) -> Result<Vec<FrontierEntry<Op>>, String> {
        let total = self.len();
        if total == 0 {
            return Ok(Vec::new());
        }
        let target = total.div_ceil(2);
        let mut out: Vec<FrontierEntry<Op>> = Vec::with_capacity(target);
        while out.len() < target {
            let Some(e) = self.head.pop_front() else {
                break;
            };
            self.hot_bytes -= entry_bytes(&e);
            out.push(e);
        }
        // Whole pages next (oldest first); a page may overshoot the target
        // slightly, which work-stealing tolerates.
        while out.len() < target && !self.pages.is_empty() {
            let Some((spill, codec)) = ctx else {
                return Err("frontier pages present without spill context".into());
            };
            let page = self.pages.remove(0);
            out.extend(self.load_page(spill, codec, &page)?);
        }
        while out.len() < target {
            match self.tail.pop_front() {
                Some(e) => {
                    self.hot_bytes -= entry_bytes(&e);
                    out.push(e);
                }
                None => break,
            }
        }
        Ok(out)
    }

    /// Bulk-appends stolen entries to the hot end (no spill check — the
    /// next `push_back` rebalances).
    pub fn extend_back(&mut self, entries: Vec<FrontierEntry<Op>>) {
        for e in entries {
            self.hot_bytes += entry_bytes(&e);
            self.tail.push_back(e);
        }
    }

    /// Non-destructive snapshot of every pending entry in logical order
    /// (for quiescent pickle snapshots).
    ///
    /// # Errors
    ///
    /// As [`FrontierQueue::pop_front`].
    pub fn collect_all(&self, ctx: SpillCtx<'_, Op>) -> Result<Vec<FrontierEntry<Op>>, String> {
        let mut out = Vec::with_capacity(self.len());
        out.extend(self.head.iter().cloned());
        for page in &self.pages {
            let Some((spill, codec)) = ctx else {
                return Err("frontier pages present without spill context".into());
            };
            out.extend(self.load_page(spill, codec, page)?);
        }
        out.extend(self.tail.iter().cloned());
        Ok(out)
    }
}

fn encode_frontier_page<Op>(entries: &[FrontierEntry<Op>], codec: &dyn OpCodec<Op>) -> Vec<u8> {
    let mut out = Vec::with_capacity(entries.len() * 16 + 16);
    out.push(PAGE_KIND_FRONTIER);
    out.extend_from_slice(&0u32.to_le_bytes()); // reserved
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for e in entries {
        out.extend_from_slice(&(e.prefix.len() as u32).to_le_bytes());
        for op in &e.prefix {
            codec.encode_op(op, &mut out);
        }
        out.extend_from_slice(&(e.sleep.len() as u32).to_le_bytes());
        for op in &e.sleep {
            codec.encode_op(op, &mut out);
        }
    }
    out
}

fn decode_frontier_page<Op>(
    body: &[u8],
    codec: &dyn OpCodec<Op>,
) -> Result<Vec<FrontierEntry<Op>>, String> {
    let es = |e: PickleError| e.to_string();
    let mut r = ByteReader::new(body);
    let kind = r.u8().map_err(es)?;
    if kind != PAGE_KIND_FRONTIER {
        return Err(format!("bad frontier page kind {kind}"));
    }
    let _reserved = r.u32().map_err(es)?;
    let count = r.u32().map_err(es)? as usize;
    if count > body.len() {
        return Err(format!("frontier page count {count} exceeds body"));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let np = r.u32().map_err(es)? as usize;
        if np > r.remaining() {
            return Err("frontier prefix length exceeds body".into());
        }
        let mut prefix = Vec::with_capacity(np);
        for _ in 0..np {
            prefix.push(codec.decode_op(&mut r).map_err(es)?);
        }
        let ns = r.u32().map_err(es)? as usize;
        if ns > r.remaining() {
            return Err("frontier sleep length exceeds body".into());
        }
        let mut sleep = Vec::with_capacity(ns);
        for _ in 0..ns {
            sleep.push(codec.decode_op(&mut r).map_err(es)?);
        }
        out.push(FrontierEntry { prefix, sleep });
    }
    if r.remaining() != 0 {
        return Err(format!("frontier page: {} trailing bytes", r.remaining()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    struct U32Codec;

    impl OpCodec<u32> for U32Codec {
        fn encode_op(&self, op: &u32, out: &mut Vec<u8>) {
            out.extend_from_slice(&op.to_le_bytes());
        }
        fn decode_op(&self, r: &mut ByteReader<'_>) -> Result<u32, PickleError> {
            r.u32()
        }
    }

    fn tiny_budget(ram_entries: u64) -> MemBudget {
        let mut b = MemBudget::new(ram_entries * BYTES_PER_ENTRY);
        b.shards = 4;
        b
    }

    fn lcg(state: &mut u128) -> u128 {
        *state = state
            .wrapping_mul(0x2d99787926d46932a4c1f32680f70c55)
            .wrapping_add(1);
        *state
    }

    #[test]
    fn varint_round_trip() {
        let samples = [
            0u128,
            1,
            127,
            128,
            300,
            u64::MAX as u128,
            u128::MAX,
            1 << 100,
        ];
        let mut out = Vec::new();
        for &v in &samples {
            put_varint(&mut out, v);
        }
        let mut r = ByteReader::new(&out);
        for &v in &samples {
            assert_eq!(get_varint(&mut r).unwrap(), v);
        }
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn visited_page_round_trip() {
        let entries: Vec<(u128, u32)> = (0..200u128)
            .map(|i| (i * i * 7919 + (i << 90), i as u32 % 9))
            .collect();
        let mut sorted = entries.clone();
        sorted.sort_unstable_by_key(|&(h, _)| h);
        let body = encode_visited_page(3, &sorted);
        let (idx, back) = decode_visited_page(&body).expect("decode");
        assert_eq!(idx, 3);
        assert_eq!(back, sorted);
        // Delta compression: far below the 20 bytes/entry of raw encoding.
        assert!(body.len() < sorted.len() * 20, "body {} bytes", body.len());
    }

    #[test]
    fn page_store_round_trip_and_cleanup() {
        let store = SpillStore::new(&MemBudget::new(1024)).expect("store");
        let path = store.path().to_path_buf();
        let a = store.write_page(b"hello spill").unwrap();
        let b = store.write_page(&[0u8; 5000]).unwrap();
        assert_eq!(store.read_page(a).unwrap(), b"hello spill");
        assert_eq!(store.read_page(b).unwrap(), vec![0u8; 5000]);
        assert_eq!(store.pages_written(), 2);
        assert_eq!(store.pages_read(), 2);
        assert!(store.take_pending_ns() > 0);
        assert!(path.exists());
        drop(store);
        assert!(!path.exists(), "spill file removed on drop");
    }

    #[test]
    fn page_store_detects_corruption() {
        let store = SpillStore::new(&MemBudget::new(1024)).expect("store");
        let loc = store.write_page(b"payload-payload-payload").unwrap();
        // Flip one byte in the middle of the frame on disk.
        let mut raw = fs::read(store.path()).unwrap();
        raw[loc.offset as usize + 12] ^= 0x20;
        fs::write(store.path(), &raw).unwrap();
        let err = store.read_page(loc).unwrap_err();
        assert!(err.contains("checksum") || err.contains("magic"), "{err}");
        assert!(store.error().is_some(), "store poisoned");
    }

    /// The core equivalence property: with a budget forcing heavy spilling,
    /// every insert classifies exactly as a plain min-depth map would, and
    /// the exported set is identical.
    #[test]
    fn spillset_matches_plain_map_under_tiny_budget() {
        let set = SpillSet::new(64, &tiny_budget(10)).expect("spillset");
        let mut reference: BTreeMap<u128, u32> = BTreeMap::new();
        let mut state = 0xfeed_beef_u128;
        let mut keys: Vec<u128> = Vec::new();
        for i in 0..600u32 {
            // Mix of fresh keys and revisits at varying depths.
            let h = if i % 3 == 0 && !keys.is_empty() {
                keys[(lcg(&mut state) as usize) % keys.len()]
            } else {
                let k = lcg(&mut state);
                keys.push(k);
                k
            };
            let depth = (lcg(&mut state) as u32) % 12;
            let expect = match reference.get(&h) {
                None => {
                    reference.insert(h, depth);
                    Visit::New
                }
                Some(&prev) if depth < prev => {
                    reference.insert(h, depth);
                    Visit::Shallower
                }
                Some(_) => Visit::Matched,
            };
            let (got, _) = set.insert_at(h, depth);
            assert_eq!(got, expect, "insert {i} of {h:x} at depth {depth}");
        }
        assert_eq!(set.len(), reference.len());
        let exported = set.export_entries().expect("export");
        let want: Vec<(u128, u32)> = reference.into_iter().collect();
        assert_eq!(exported, want, "exported set identical and sorted");
        let stats = set.spill_stats();
        assert!(stats.evictions > 0, "budget of 10 entries must evict");
        assert!(stats.pages_written > 0 && stats.cold_hits > 0);
        assert!(set.error().is_none());
        assert!(set.peak_bytes() > 0);
        // The predictor saw the same workload; with RAM 10 entries and ~400
        // distinct keys both must report substantial traffic.
        assert!(stats.predicted_swap_bytes > 0);
        assert!(stats.measured_swap_bytes() > 0);
    }

    #[test]
    fn spillset_stays_within_hot_budget() {
        let budget = tiny_budget(32);
        let set = SpillSet::new(64, &budget).expect("spillset");
        let mut state = 7u128;
        for _ in 0..2000 {
            set.insert(lcg(&mut state));
        }
        assert!(
            set.hot_bytes.load(Ordering::Relaxed) <= budget.ram_bytes,
            "hot cache within budget after eviction settles"
        );
        assert_eq!(set.len(), 2000);
    }

    #[test]
    fn spillset_resize_dynamics_match_unbudgeted() {
        // Same shard count, same capacity, same keys: the budgeted set must
        // fire resize events at exactly the same inserts as the RAM set,
        // because thresholds track distinct counts, not hot occupancy.
        let mut b = tiny_budget(8);
        b.shards = 4;
        let spill = SpillSet::new(64, &b).expect("spillset");
        let ram = crate::visited::ShardedVisited::new(64, 4);
        let mut state = 99u128;
        for _ in 0..400 {
            let h = lcg(&mut state);
            let (sv, sr) = spill.insert_at(h, 0);
            let (rv, rr) = ram.insert_at(h, 0);
            assert_eq!(sv, rv);
            assert_eq!(sr, rr);
        }
        assert_eq!(spill.resizes(), ram.resizes());
    }

    #[test]
    fn injected_write_failure_poisons_loudly() {
        let mut b = tiny_budget(4);
        b.faults.fail_write_at = Some(0);
        let set = SpillSet::new(16, &b).expect("spillset");
        let mut state = 3u128;
        for _ in 0..64 {
            set.insert(lcg(&mut state));
        }
        let err = set.error().expect("write failure must poison");
        assert!(err.contains("injected EIO"), "{err}");
    }

    #[test]
    fn torn_write_fails_checksum_on_read() {
        let mut b = tiny_budget(4);
        b.faults.torn_write_at = Some(0);
        let set = SpillSet::new(16, &b).expect("spillset");
        let mut state = 5u128;
        let mut keys = Vec::new();
        for _ in 0..64 {
            let h = lcg(&mut state);
            keys.push(h);
            set.insert(h);
        }
        // Re-probe everything: the torn page must be detected, not treated
        // as "state never visited".
        for &h in &keys {
            set.insert(h);
        }
        let err = set.error().expect("torn page must poison on read");
        assert!(
            err.contains("checksum") || err.contains("read"),
            "loud integrity error, got: {err}"
        );
    }

    #[test]
    fn injected_read_failure_poisons_loudly() {
        let mut b = tiny_budget(4);
        b.faults.fail_read_at = Some(0);
        let set = SpillSet::new(16, &b).expect("spillset");
        let mut state = 11u128;
        let mut keys = Vec::new();
        for _ in 0..64 {
            let h = lcg(&mut state);
            keys.push(h);
            set.insert(h);
        }
        for &h in &keys {
            set.insert(h);
        }
        assert!(set.error().expect("poisoned").contains("injected EIO"));
    }

    #[test]
    fn load_entries_min_merges_into_spilled_state() {
        let set = SpillSet::new(16, &tiny_budget(4)).expect("spillset");
        let mut state = 42u128;
        let keys: Vec<u128> = (0..100).map(|_| lcg(&mut state)).collect();
        for &h in &keys {
            set.insert_at(h, 9);
        }
        // Reload the same keys at shallower depth plus some fresh ones.
        let mut loaded: Vec<(u128, u32)> = keys.iter().map(|&h| (h, 2)).collect();
        loaded.push((0xabcdef, 7));
        set.load_entries(&loaded);
        assert_eq!(set.len(), 101);
        assert_eq!(set.depth_of(keys[0]), Some(2), "min depth wins");
        assert_eq!(set.depth_of(0xabcdef), Some(7));
        // Loading never fires resize events, but thresholds advanced:
        // fresh inserts continue from the loaded size.
        let exported = set.export_entries().unwrap();
        assert_eq!(exported.len(), 101);
        assert!(exported.windows(2).all(|w| w[0].0 < w[1].0), "sorted");
    }

    #[test]
    fn snapshot_counts_are_consistent() {
        let set = SpillSet::new(16, &tiny_budget(8)).expect("spillset");
        let mut state = 13u128;
        for _ in 0..300 {
            set.insert(lcg(&mut state));
        }
        let (len, bytes, resizes) = set.snapshot_counts();
        assert_eq!(len, 300);
        assert_eq!(bytes, set.bytes());
        assert_eq!(resizes, set.resizes());
    }

    // -- frontier ----------------------------------------------------------

    fn fe(tag: u32, n: usize) -> FrontierEntry<u32> {
        FrontierEntry {
            prefix: (0..n as u32).map(|i| tag * 1000 + i).collect(),
            sleep: vec![tag],
        }
    }

    #[test]
    fn frontier_page_round_trip() {
        let entries: Vec<FrontierEntry<u32>> = (0..20).map(|i| fe(i, (i as usize) % 5)).collect();
        let body = encode_frontier_page(&entries, &U32Codec);
        let back = decode_frontier_page(&body, &U32Codec).expect("decode");
        assert_eq!(back, entries);
    }

    #[test]
    fn frontier_queue_matches_plain_deque() {
        let store = SpillStore::new(&MemBudget::new(1024)).expect("store");
        // Tiny hot budget: force spilling after ~16 entries.
        let spill = FrontierSpill::new(store, 16 * 40);
        let ctx: SpillCtx<'_, u32> = Some((&spill, &U32Codec));
        let mut q = FrontierQueue::new();
        let mut reference: VecDeque<FrontierEntry<u32>> = VecDeque::new();
        let mut state = 17u128;
        for i in 0..400u32 {
            let roll = lcg(&mut state) % 10;
            if roll < 6 {
                let e = fe(i, 3);
                reference.push_back(e.clone());
                q.push_back(e, ctx).unwrap();
            } else if roll < 8 {
                assert_eq!(q.pop_front(ctx).unwrap(), reference.pop_front(), "i={i}");
            } else {
                assert_eq!(q.pop_back(ctx).unwrap(), reference.pop_back(), "i={i}");
            }
            assert_eq!(q.len(), reference.len());
        }
        // Drain fully from the front.
        while let Some(want) = reference.pop_front() {
            assert_eq!(q.pop_front(ctx).unwrap(), Some(want));
        }
        assert!(q.is_empty());
        assert!(spill.store().pages_written() > 0, "spilling happened");
        assert!(spill.store().error().is_none());
    }

    #[test]
    fn frontier_steal_half_takes_oldest() {
        let store = SpillStore::new(&MemBudget::new(1024)).expect("store");
        let spill = FrontierSpill::new(store, 16 * 40);
        let ctx: SpillCtx<'_, u32> = Some((&spill, &U32Codec));
        let mut q = FrontierQueue::new();
        for i in 0..100u32 {
            q.push_back(fe(i, 2), ctx).unwrap();
        }
        assert!(spill.store().pages_written() > 0);
        let stolen = q.steal_half(ctx).unwrap();
        assert!(stolen.len() >= 50, "stole {} of 100", stolen.len());
        // Stolen entries are the oldest (lowest tags), in order.
        for (k, e) in stolen.iter().enumerate() {
            assert_eq!(e.sleep, vec![k as u32]);
        }
        // Remainder continues from where the steal stopped.
        let next = q.pop_front(ctx).unwrap().unwrap();
        assert_eq!(next.sleep, vec![stolen.len() as u32]);
    }

    #[test]
    fn frontier_collect_all_is_nondestructive_and_ordered() {
        let store = SpillStore::new(&MemBudget::new(1024)).expect("store");
        let spill = FrontierSpill::new(store, 16 * 40);
        let ctx: SpillCtx<'_, u32> = Some((&spill, &U32Codec));
        let mut q = FrontierQueue::new();
        for i in 0..60u32 {
            q.push_back(fe(i, 2), ctx).unwrap();
        }
        let all = q.collect_all(ctx).unwrap();
        assert_eq!(all.len(), 60);
        for (k, e) in all.iter().enumerate() {
            assert_eq!(e.sleep, vec![k as u32]);
        }
        assert_eq!(q.len(), 60, "collect_all must not consume");
        let again = q.collect_all(ctx).unwrap();
        assert_eq!(again, all);
    }

    #[test]
    fn frontier_without_ctx_is_a_plain_deque() {
        let mut q: FrontierQueue<u32> = FrontierQueue::new();
        for i in 0..1000u32 {
            q.push_back(fe(i, 2), None).unwrap();
        }
        assert_eq!(q.len(), 1000);
        assert_eq!(q.pop_front(None).unwrap().unwrap().sleep, vec![0]);
        assert_eq!(q.pop_back(None).unwrap().unwrap().sleep, vec![999]);
    }
}
