//! Delta-debugging trace minimization (Zeller's ddmin over kept-masks).
//!
//! The paper's payoff is the counterexample: a precise operation trace that
//! "makes bugs easy to reproduce and fix" (§6). Explorer traces, however,
//! are whatever depth the search happened to reach — crash-consistency
//! violations routinely arrive as 40+-op traces where four ops matter. This
//! module holds the system-agnostic half of the minimizer: a ddmin loop over
//! *kept-masks* (`Vec<bool>` over trace indices) with two caller hooks,
//!
//! * `repair` — may flip removed indices back to *kept* to restore
//!   dependencies a removal broke (an op consuming a path re-gains its
//!   producer; a kept `Crash` re-gains the op establishing its checkpoint
//!   boundary). Repair only ever re-adds; it never removes.
//! * `test` — the acceptance oracle. The caller replays the candidate
//!   against a *fresh* system and accepts only if the violation reproduces
//!   with the same message (see `mcfs::shrink` for the file-system oracle).
//!
//! The engine maintains the invariant that every adopted mask passed `test`,
//! so even a budget-truncated run returns a reproducing trace. After the
//! chunk-removal phase it sweeps single removals to a fixpoint, which makes
//! the result 1-minimal *modulo repair*: no single index can be removed
//! (together with whatever repair re-adds) and still reproduce.

/// Statistics of one minimization, reported inside
/// [`Violation`](crate::Violation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShrinkStats {
    /// Ops in the original trace.
    pub ops_before: usize,
    /// Ops in the minimized trace.
    pub ops_after: usize,
    /// Candidate masks generated and offered to the oracle (includes
    /// candidates answered from the caller's replay cache).
    pub candidates_tried: u64,
    /// Fresh-harness replays actually executed (cache misses plus the
    /// initial trustworthiness replay of the full trace).
    pub replays_run: u64,
}

impl ShrinkStats {
    /// Shrink factor (`ops_before / ops_after`); 1.0 when nothing shrank.
    pub fn shrink_ratio(&self) -> f64 {
        if self.ops_after == 0 {
            return 1.0;
        }
        self.ops_before as f64 / self.ops_after as f64
    }
}

/// Splits `kept` (indices currently in the trace) into `n` nearly equal
/// contiguous chunks.
fn chunks_of(kept: &[usize], n: usize) -> Vec<Vec<usize>> {
    let n = n.clamp(1, kept.len().max(1));
    let base = kept.len() / n;
    let extra = kept.len() % n;
    let mut out = Vec::with_capacity(n);
    let mut at = 0usize;
    for i in 0..n {
        let len = base + usize::from(i < extra);
        out.push(kept[at..at + len].to_vec());
        at += len;
    }
    out
}

/// Minimizes a kept-mask over `n` trace indices with the ddmin strategy:
/// remove progressively finer complements, repairing dependencies after
/// every removal, then sweep single removals to 1-minimality.
///
/// `test` receives a candidate mask and must say whether the corresponding
/// subtrace still reproduces the violation; the all-true mask is assumed to
/// have passed already (callers gate on it — a trace that does not replay
/// must not be "minimized"). `repair` may only flip entries from `false` to
/// `true`. At most `max_tests` oracle calls are made; when the budget runs
/// out the best mask found so far is returned.
///
/// Returns `(mask, tests_run)`.
pub fn ddmin_mask(
    n: usize,
    repair: &mut dyn FnMut(&mut Vec<bool>),
    test: &mut dyn FnMut(&[bool]) -> bool,
    max_tests: u64,
) -> (Vec<bool>, u64) {
    let mut active = vec![true; n];
    let mut tests = 0u64;
    if n <= 1 {
        return (active, tests);
    }

    // Phase 1: classic ddmin complement removal with doubling granularity.
    let mut granularity = 2usize;
    'outer: loop {
        let kept: Vec<usize> = (0..n).filter(|&i| active[i]).collect();
        if kept.len() <= 1 {
            break;
        }
        granularity = granularity.min(kept.len());
        let mut reduced = false;
        for chunk in chunks_of(&kept, granularity) {
            if tests >= max_tests {
                break 'outer;
            }
            let mut cand = active.clone();
            for &i in &chunk {
                cand[i] = false;
            }
            repair(&mut cand);
            if cand == active {
                // Repair re-added the whole chunk: nothing actually removed.
                continue;
            }
            tests += 1;
            if test(&cand) {
                active = cand;
                reduced = true;
                break;
            }
        }
        if reduced {
            // Something was removed at this granularity; retry coarse-first.
            granularity = 2;
            continue;
        }
        if granularity >= kept.len() {
            break;
        }
        granularity = (granularity * 2).min(kept.len());
    }

    // Phase 2: single-removal sweep to a fixpoint (1-minimality modulo
    // repair). Granularity-n ddmin already tried most singles, but repair
    // and the adoption order can leave stragglers.
    loop {
        let mut improved = false;
        for i in 0..n {
            if !active[i] || tests >= max_tests {
                continue;
            }
            let mut cand = active.clone();
            cand[i] = false;
            repair(&mut cand);
            if cand == active {
                continue; // i is pinned by repair; removing it is a no-op
            }
            tests += 1;
            if test(&cand) {
                active = cand;
                improved = true;
            }
        }
        if !improved || tests >= max_tests {
            break;
        }
    }
    (active, tests)
}

/// Applies a kept-mask to a trace.
pub fn apply_mask<Op: Clone>(trace: &[Op], mask: &[bool]) -> Vec<Op> {
    trace
        .iter()
        .zip(mask)
        .filter(|(_, &keep)| keep)
        .map(|(op, _)| op.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Oracle: reproduces iff all indices in `needed` are kept.
    fn needs(needed: &[usize]) -> impl FnMut(&[bool]) -> bool + '_ {
        move |mask: &[bool]| needed.iter().all(|&i| mask[i])
    }

    #[test]
    fn shrinks_to_exactly_the_needed_ops() {
        let needed = [3usize, 11, 17];
        let mut test = needs(&needed);
        let (mask, tests) = ddmin_mask(40, &mut |_| {}, &mut test, 10_000);
        let kept: Vec<usize> = (0..40).filter(|&i| mask[i]).collect();
        assert_eq!(kept, needed.to_vec());
        assert!(tests > 0);
    }

    #[test]
    fn single_op_trace_is_untouched() {
        let (mask, tests) = ddmin_mask(1, &mut |_| {}, &mut |_| true, 100);
        assert_eq!(mask, vec![true]);
        assert_eq!(tests, 0);
    }

    #[test]
    fn result_is_one_minimal() {
        // Reproduces iff {2,5} kept OR {7} kept: ddmin must land on a local
        // minimum where removing any single kept index breaks reproduction.
        let mut test = |mask: &[bool]| (mask[2] && mask[5]) || mask[7];
        let (mask, _) = ddmin_mask(10, &mut |_| {}, &mut test, 10_000);
        let kept: Vec<usize> = (0..10).filter(|&i| mask[i]).collect();
        assert!(test(&mask), "result must reproduce");
        for &i in &kept {
            let mut cand = mask.clone();
            cand[i] = false;
            assert!(!test(&cand), "removing {i} must break reproduction");
        }
        // Either minimal witness is acceptable; both are 1-minimal.
        assert!(kept == vec![2, 5] || kept == vec![7], "{kept:?}");
    }

    #[test]
    fn repair_keeps_dependent_pairs_together() {
        // Index 6 is a "crash marker" anchored on index 4 (its checkpoint
        // boundary): any candidate keeping 6 must keep 4. The oracle only
        // reproduces when the pair survives intact — and *fails* (as a
        // trustworthy oracle would) if 6 appears without 4.
        let mut repair = |mask: &mut Vec<bool>| {
            if mask[6] && !mask[4] {
                mask[4] = true;
            }
        };
        let mut boundary_broken = false;
        let mut test = |mask: &[bool]| {
            if mask[6] && !mask[4] {
                boundary_broken = true;
                return false;
            }
            mask[4] && mask[6]
        };
        let (mask, _) = ddmin_mask(12, &mut repair, &mut test, 10_000);
        let kept: Vec<usize> = (0..12).filter(|&i| mask[i]).collect();
        assert_eq!(kept, vec![4, 6]);
        assert!(
            !boundary_broken,
            "repair must prevent candidates that separate the crash from its boundary"
        );
    }

    #[test]
    fn repair_allows_dropping_the_pair_together() {
        // Same anchoring, but the pair is irrelevant to the bug: both must
        // be dropped (the marker alone first or the unit via a chunk), never
        // tested split.
        let mut repair = |mask: &mut Vec<bool>| {
            if mask[6] && !mask[4] {
                mask[4] = true;
            }
        };
        let mut test = |mask: &[bool]| {
            assert!(!mask[6] || mask[4], "split pair offered to the oracle");
            mask[1] && mask[9]
        };
        let (mask, _) = ddmin_mask(12, &mut repair, &mut test, 10_000);
        let kept: Vec<usize> = (0..12).filter(|&i| mask[i]).collect();
        assert_eq!(kept, vec![1, 9]);
    }

    #[test]
    fn budget_truncation_still_returns_a_reproducing_mask() {
        let needed = [0usize, 19, 38];
        let mut calls = 0u64;
        let mut test = |mask: &[bool]| {
            calls += 1;
            needed.iter().all(|&i| mask[i])
        };
        let (mask, tests) = ddmin_mask(40, &mut |_| {}, &mut test, 3);
        assert_eq!(tests, 3);
        assert_eq!(calls, 3);
        assert!(needed.iter().all(|&i| mask[i]), "mask must still reproduce");
    }

    #[test]
    fn stats_ratio() {
        let s = ShrinkStats {
            ops_before: 44,
            ops_after: 4,
            candidates_tried: 100,
            replays_run: 60,
        };
        assert!((s.shrink_ratio() - 11.0).abs() < 1e-9);
        assert_eq!(ShrinkStats::default().shrink_ratio(), 1.0);
    }

    #[test]
    fn apply_mask_filters_in_order() {
        let trace = vec!["a", "b", "c", "d"];
        let mask = vec![true, false, false, true];
        assert_eq!(apply_mask(&trace, &mask), vec!["a", "d"]);
    }
}
