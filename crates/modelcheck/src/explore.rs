//! Explorers: bounded DFS (SPIN's default search), BFS, and random walk.

use blockdev::Clock;

use crate::memmodel::{MemConfig, MemoryModel, OutOfMemory};
use crate::spill::{MemBudget, SpillStats};
use crate::system::{
    is_evicted_error, ApplyOutcome, CheckpointStoreStats, CrashStats, ModelSystem, StateId,
    Violation,
};
use crate::visited::{ShardedVisited, Visit, VisitedHandle, VisitedSet};

/// Exploration bounds and options.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Maximum operation-sequence depth (the bounded state space).
    pub max_depth: usize,
    /// Operation budget.
    pub max_ops: u64,
    /// Distinct-state budget.
    pub max_states: u64,
    /// Virtual-time budget in nanoseconds (requires a clock).
    pub max_virtual_ns: Option<u64>,
    /// Stop at the first violation (otherwise collect and continue).
    pub stop_on_violation: bool,
    /// Enable sleep-set partial-order reduction (uses
    /// [`ModelSystem::independent`]).
    pub por: bool,
    /// Enable persistent-set partial-order reduction (uses
    /// [`ModelSystem::persistent_set`]): expansion of each state is
    /// restricted to the subset the system proves sufficient. Independent
    /// of (and composable with) `por`'s sleep sets.
    pub por_persistent: bool,
    /// Memory model budgets.
    pub mem: MemConfig,
    /// Out-of-core budget: when set, the visited set spills cold entries to
    /// disk instead of growing without bound, real page traffic is charged
    /// to the virtual clock, and [`ExploreStats::spill`] reports the
    /// counters. `None` keeps the fully in-RAM sets.
    pub mem_budget: Option<MemBudget>,
    /// Initial visited-table capacity (first modelled resize threshold).
    pub visited_capacity: usize,
    /// Keep every visited state's concrete image charged against the memory
    /// model even after the search no longer needs it — modelling SPIN
    /// retaining tracked state data for the whole run, which is what made
    /// the paper's big-state configurations swap-bound. The system-side
    /// store is still released, so the *host's* memory stays bounded.
    pub retain_states: bool,
    /// Random-walk restarts: fraction of the stored-state history eligible
    /// as a restart target (0.0 = always the initial state). Non-zero values
    /// make the walk jump back into previously visited regions, the access
    /// pattern that drives SPIN's swap traffic over long runs (Fig. 3).
    /// States become system-side retained, so host memory grows with the
    /// run.
    pub restart_spread: f64,
    /// Random walk: backtrack (restart) whenever a visited state is matched,
    /// as SPIN's search does, instead of walking on through. Combined with
    /// `restart_spread`, every match becomes a stored-state access — the
    /// traffic that made the paper's long runs swap-bound.
    pub backtrack_on_match: bool,
    /// Seed for randomized exploration.
    pub seed: u64,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_depth: 6,
            max_ops: 1_000_000,
            max_states: u64::MAX,
            max_virtual_ns: None,
            stop_on_violation: true,
            por: false,
            por_persistent: false,
            mem: MemConfig::default(),
            mem_budget: None,
            visited_capacity: 1 << 16,
            retain_states: false,
            restart_spread: 0.0,
            backtrack_on_match: false,
            seed: 0,
        }
    }
}

/// Why exploration ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StopReason {
    /// The bounded state space was fully explored.
    Exhausted,
    /// Operation budget reached.
    OpBudget,
    /// State budget reached.
    StateBudget,
    /// Virtual-time budget reached.
    TimeBudget,
    /// Stopped at a violation.
    Violation,
    /// The memory model ran out of RAM + swap.
    OutOfMemory(OutOfMemory),
    /// Checkpoint/restore failed.
    Fatal(String),
    /// A restore named a checkpoint the budgeted state store had already
    /// evicted (the payload is the store's error message). Distinct from
    /// [`Fatal`](StopReason::Fatal): the system is healthy, the checkpoint
    /// budget was just too tight for this search shape.
    CheckpointEvicted(String),
    /// The worker thread panicked (swarm mode records this instead of
    /// aborting the fleet; the payload is the panic message).
    WorkerPanic(String),
}

/// Counters from one exploration.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExploreStats {
    /// Operations executed against the system(s).
    pub ops_executed: u64,
    /// Operations re-executed only to reconstruct a frontier state from its
    /// op-prefix (work-stealing swarm workers and resumed runs replay
    /// prefixes deterministically instead of shipping concrete state).
    /// Replays never discover states; they are counted separately so
    /// resume/steal overhead is visible. Not included in `ops_executed`.
    pub ops_replayed: u64,
    /// Distinct abstract states discovered.
    pub states_new: u64,
    /// Abstract states matched against the visited table (duplicates
    /// pruned — the paper's key state-explosion countermeasure).
    pub states_matched: u64,
    /// Branches pruned (disabled ops, sleep sets).
    pub pruned: u64,
    /// Concrete checkpoints taken.
    pub checkpoints: u64,
    /// Concrete restores performed.
    pub restores: u64,
    /// Deepest operation sequence reached.
    pub max_depth_seen: usize,
    /// Visited-table resize events (Fig. 3's rate dip).
    pub resize_events: u32,
    /// Peak modelled memory (states + tables), bytes.
    pub peak_memory_bytes: u64,
    /// Cumulative modelled swap traffic, bytes.
    pub swap_traffic_bytes: u64,
    /// Final modelled swap residency, bytes.
    pub swapped_bytes: u64,
    /// RAM hit rate for state accesses.
    pub hit_rate: f64,
    /// Virtual time consumed (0 without a clock).
    pub virtual_ns: u64,
    /// Peak bytes held by the visited set (hot cache only when spilling;
    /// the whole table when fully in RAM). Tracked as a watermark so the
    /// hot-budget enforcement of [`ExploreConfig::mem_budget`] is auditable.
    pub visited_peak_bytes: u64,
    /// Spill-store counters when the run used an out-of-core visited set
    /// ([`ExploreConfig::mem_budget`]); `None` for fully in-RAM runs.
    pub spill: Option<SpillStats>,
    /// End-of-run statistics of the system's checkpoint store, when it
    /// maintains a budgeted pool ([`ModelSystem::checkpoint_store_stats`]).
    pub checkpoint_store: Option<CheckpointStoreStats>,
    /// End-of-run crash-injection statistics, when the system explores
    /// crashes ([`ModelSystem::crash_stats`]).
    pub crash: Option<CrashStats>,
}

impl ExploreStats {
    /// Operations per virtual second (`None` without a clock).
    pub fn ops_per_sec(&self) -> Option<f64> {
        if self.virtual_ns == 0 {
            None
        } else {
            Some(self.ops_executed as f64 * 1e9 / self.virtual_ns as f64)
        }
    }

    /// Accumulates `other` into `self`: counters are summed (`virtual_ns`
    /// included — in an aggregate it reads as total work time), watermarks
    /// (`max_depth_seen`, `peak_memory_bytes`, `hit_rate`) take the maximum,
    /// and the optional store/crash stats merge field-wise. Used to combine
    /// one worker's rounds and to aggregate a fleet into a snapshot.
    pub fn merge(&mut self, other: &ExploreStats) {
        self.ops_executed += other.ops_executed;
        self.ops_replayed += other.ops_replayed;
        self.states_new += other.states_new;
        self.states_matched += other.states_matched;
        self.pruned += other.pruned;
        self.checkpoints += other.checkpoints;
        self.restores += other.restores;
        self.max_depth_seen = self.max_depth_seen.max(other.max_depth_seen);
        self.resize_events += other.resize_events;
        self.peak_memory_bytes = self.peak_memory_bytes.max(other.peak_memory_bytes);
        self.swap_traffic_bytes += other.swap_traffic_bytes;
        self.swapped_bytes += other.swapped_bytes;
        self.hit_rate = self.hit_rate.max(other.hit_rate);
        self.virtual_ns += other.virtual_ns;
        self.visited_peak_bytes = self.visited_peak_bytes.max(other.visited_peak_bytes);
        match (&mut self.spill, &other.spill) {
            (Some(a), Some(b)) => a.merge(b),
            (None, Some(b)) => self.spill = Some(*b),
            _ => {}
        }
        match (&mut self.checkpoint_store, &other.checkpoint_store) {
            (Some(a), Some(b)) => a.merge(b),
            (None, Some(b)) => self.checkpoint_store = Some(*b),
            _ => {}
        }
        match (&mut self.crash, &other.crash) {
            (Some(a), Some(b)) => a.merge(b),
            (None, Some(b)) => self.crash = Some(*b),
            _ => {}
        }
    }
}

/// The outcome of one exploration.
#[derive(Debug, Clone)]
pub struct ExploreReport<Op> {
    /// Counters.
    pub stats: ExploreStats,
    /// Violations found (with reproduction traces).
    pub violations: Vec<Violation<Op>>,
    /// Why the run ended.
    pub stop: StopReason,
}

/// Classifies a restore error: budget-driven eviction stops the run with
/// [`StopReason::CheckpointEvicted`]; anything else is fatal.
fn restore_failure(e: String) -> StopReason {
    if is_evicted_error(&e) {
        StopReason::CheckpointEvicted(e)
    } else {
        StopReason::Fatal(e)
    }
}

/// The report for a run that could not start because the spill store failed
/// to initialize (bad spill dir, exhausted fds, ...).
fn spill_init_failure<Op>(e: String) -> ExploreReport<Op> {
    ExploreReport {
        stats: ExploreStats::default(),
        violations: Vec::new(),
        stop: StopReason::Fatal(format!("spill store init failed: {e}")),
    }
}

/// Builds the [`Violation`] record for a just-detected violation, asking the
/// system to minimize the counterexample ([`ModelSystem::minimize`] — a
/// no-op unless the system enables it).
pub(crate) fn record_violation<S: ModelSystem>(
    sys: &mut S,
    trace: Vec<S::Op>,
    message: String,
    ops_executed: u64,
) -> Violation<S::Op> {
    let (minimized_trace, shrink) = match sys.minimize(&trace, &message) {
        Some((t, s)) => (Some(t), Some(s)),
        None => (None, None),
    };
    Violation {
        trace,
        message,
        ops_executed,
        minimized_trace,
        shrink,
    }
}

/// Restricts an enabled-op list to the system's persistent set
/// ([`ModelSystem::persistent_set`]), counting masked-out ops as pruned.
/// No-op unless `cfg.por_persistent` is set and the mask is well-formed.
pub(crate) fn persistent_filter<S: ModelSystem>(
    cfg: &ExploreConfig,
    sys: &mut S,
    ops: Vec<S::Op>,
    pruned: &mut u64,
) -> Vec<S::Op> {
    if !cfg.por_persistent {
        return ops;
    }
    match sys.persistent_set(&ops) {
        Some(mask) if mask.len() == ops.len() => {
            let mut kept = Vec::with_capacity(ops.len());
            for (op, keep) in ops.into_iter().zip(mask) {
                if keep {
                    kept.push(op);
                } else {
                    *pruned += 1;
                }
            }
            kept
        }
        _ => ops,
    }
}

struct Frame<Op> {
    state: StateId,
    ops: Vec<Op>,
    next: usize,
    sleep: Vec<Op>,
    op_from_parent: Option<Op>,
}

/// Depth-first explorer with abstract-state matching — SPIN's search
/// strategy, as MCFS uses it.
#[derive(Debug)]
pub struct DfsExplorer {
    cfg: ExploreConfig,
    clock: Option<Clock>,
}

impl DfsExplorer {
    /// Creates an explorer with the given bounds.
    pub fn new(cfg: ExploreConfig) -> Self {
        DfsExplorer { cfg, clock: None }
    }

    /// Attaches a virtual clock: memory-model costs are charged to it, and
    /// `max_virtual_ns` becomes enforceable.
    pub fn with_clock(mut self, clock: Clock) -> Self {
        self.clock = Some(clock);
        self
    }

    fn charge(&self, ns: u64) {
        if let Some(c) = &self.clock {
            c.advance_ns(ns);
        }
    }

    /// Runs the exploration to completion or budget. With
    /// [`ExploreConfig::mem_budget`] set, the visited set is disk-spilling.
    pub fn run<S: ModelSystem>(&self, sys: &mut S) -> ExploreReport<S::Op> {
        match &self.cfg.mem_budget {
            Some(budget) => match ShardedVisited::with_spill(self.cfg.visited_capacity, budget) {
                Ok(mut visited) => self.run_with_visited(sys, &mut visited),
                Err(e) => spill_init_failure(e),
            },
            None => {
                let mut visited = VisitedSet::new(self.cfg.visited_capacity);
                self.run_with_visited(sys, &mut visited)
            }
        }
    }

    /// Runs with a caller-owned visited set — the paper's §7 resumability:
    /// persist the visited set across an interruption (e.g. a kernel crash
    /// during checking) and resume without re-exploring known states. The
    /// set may also be a swarm-shared [`crate::ShardedVisited`].
    pub fn run_with_visited<S: ModelSystem, V: VisitedHandle>(
        &self,
        sys: &mut S,
        visited: &mut V,
    ) -> ExploreReport<S::Op> {
        let visited = &mut *visited;
        let start_ns = self.clock.as_ref().map(Clock::now_ns).unwrap_or(0);
        let mut stats = ExploreStats::default();
        let mut violations = Vec::new();
        let mut mem = MemoryModel::new(self.cfg.mem);
        let mut next_id = 0u64;

        let root_hash = sys.abstract_state();
        if visited.insert(root_hash).0 {
            stats.states_new += 1;
        }

        let root = StateId(next_id);
        next_id += 1;
        let stop = (|| -> StopReason {
            self.charge(visited.take_pending_ns());
            if let Some(e) = visited.error() {
                return StopReason::Fatal(format!("visited spill failed: {e}"));
            }
            match sys.checkpoint(root) {
                Ok(bytes) => match mem.store(root, bytes as u64) {
                    Ok(cost) => self.charge(cost),
                    Err(oom) => return StopReason::OutOfMemory(oom),
                },
                Err(e) => return StopReason::Fatal(e),
            }
            // DFS re-enters every state on its backtrack spine, so each one
            // is pinned against budget-driven eviction until its frame pops.
            sys.pin(root);
            stats.checkpoints += 1;
            let root_ops = sys.ops();
            let root_ops = persistent_filter(&self.cfg, sys, root_ops, &mut stats.pruned);
            let mut stack: Vec<Frame<S::Op>> = vec![Frame {
                state: root,
                ops: root_ops,
                next: 0,
                sleep: Vec::new(),
                op_from_parent: None,
            }];
            // The concrete state the system is currently in, when it matches
            // a stored checkpoint. SPIN only restores on backtrack: while
            // the search advances deeper, the live state IS the frame state.
            let mut current: Option<StateId> = Some(root);

            loop {
                if stats.ops_executed >= self.cfg.max_ops {
                    return StopReason::OpBudget;
                }
                if stats.states_new >= self.cfg.max_states {
                    return StopReason::StateBudget;
                }
                if let (Some(limit), Some(c)) = (self.cfg.max_virtual_ns, &self.clock) {
                    if c.now_ns() - start_ns >= limit {
                        return StopReason::TimeBudget;
                    }
                }
                let Some(frame) = stack.last_mut() else {
                    return StopReason::Exhausted;
                };
                if frame.next >= frame.ops.len() {
                    sys.unpin(frame.state);
                    sys.release(frame.state);
                    if !self.cfg.retain_states {
                        mem.release(frame.state);
                    }
                    stack.pop();
                    continue;
                }
                let idx = frame.next;
                frame.next += 1;
                let op = frame.ops[idx].clone();
                if self.cfg.por && frame.sleep.contains(&op) {
                    stats.pruned += 1;
                    continue;
                }
                let frame_state = frame.state;
                if current != Some(frame_state) {
                    self.charge(mem.access(frame_state));
                    if let Err(e) = sys.restore(frame_state) {
                        return restore_failure(e);
                    }
                    stats.restores += 1;
                }
                // Applying the op leaves the system off any stored state
                // until a checkpoint re-anchors it.
                current = None;
                let outcome = sys.apply(&op);
                stats.ops_executed += 1;
                match outcome {
                    ApplyOutcome::Ok => {}
                    ApplyOutcome::Prune(_) => {
                        stats.pruned += 1;
                        continue;
                    }
                    ApplyOutcome::Violation(message) => {
                        let mut trace: Vec<S::Op> = stack
                            .iter()
                            .filter_map(|f| f.op_from_parent.clone())
                            .collect();
                        trace.push(op);
                        violations.push(record_violation(sys, trace, message, stats.ops_executed));
                        if self.cfg.stop_on_violation {
                            return StopReason::Violation;
                        }
                        continue;
                    }
                }
                let h = sys.abstract_state();
                let (visit, resize) = visited.insert_at(h, stack.len() as u32);
                if let Some(r) = resize {
                    stats.resize_events += 1;
                    self.charge(r.cost_ns);
                    self.charge(mem.set_overhead(visited.bytes() + r.transient_bytes));
                    self.charge(mem.set_overhead(visited.bytes()));
                }
                self.charge(visited.take_pending_ns());
                if let Some(e) = visited.error() {
                    return StopReason::Fatal(format!("visited spill failed: {e}"));
                }
                if visit == Visit::Matched {
                    stats.states_matched += 1;
                    continue;
                }
                if visit == Visit::New {
                    stats.states_new += 1;
                }
                // `Shallower` re-expands a known state reached closer to the
                // root: without this, depth-bounded coverage would depend on
                // exploration order (SPIN re-explores identically).
                stats.max_depth_seen = stats.max_depth_seen.max(stack.len());
                if stack.len() >= self.cfg.max_depth {
                    continue; // depth bound: record the state, don't expand
                }
                let child = StateId(next_id);
                next_id += 1;
                match sys.checkpoint(child) {
                    Ok(bytes) => match mem.store(child, bytes as u64) {
                        Ok(cost) => self.charge(cost),
                        Err(oom) => return StopReason::OutOfMemory(oom),
                    },
                    Err(e) => return StopReason::Fatal(e),
                }
                sys.pin(child);
                stats.checkpoints += 1;
                current = Some(child);
                let sleep = if self.cfg.por {
                    let parent = stack.last().expect("frame exists");
                    let mut s: Vec<S::Op> = parent
                        .sleep
                        .iter()
                        .filter(|x| sys.independent(x, &op))
                        .cloned()
                        .collect();
                    for prev in &parent.ops[..idx] {
                        if sys.independent(prev, &op) && !s.contains(prev) {
                            s.push(prev.clone());
                        }
                    }
                    s
                } else {
                    Vec::new()
                };
                let ops = sys.ops();
                let ops = persistent_filter(&self.cfg, sys, ops, &mut stats.pruned);
                stack.push(Frame {
                    state: child,
                    ops,
                    next: 0,
                    sleep,
                    op_from_parent: Some(op),
                });
            }
        })();

        self.charge(visited.take_pending_ns());
        stats.checkpoint_store = sys.checkpoint_store_stats();
        stats.crash = sys.crash_stats();
        stats.peak_memory_bytes = mem.peak_bytes();
        stats.swap_traffic_bytes = mem.swap_traffic_bytes();
        stats.swapped_bytes = mem.swapped_bytes();
        stats.hit_rate = mem.hit_rate();
        stats.visited_peak_bytes = visited.peak_bytes();
        stats.spill = visited.spill_stats();
        stats.virtual_ns = self
            .clock
            .as_ref()
            .map(|c| c.now_ns() - start_ns)
            .unwrap_or(0);
        ExploreReport {
            stats,
            violations,
            stop,
        }
    }
}

/// Breadth-first explorer. Finds *shortest* violation traces, at the cost of
/// storing a frontier of concrete states (memory hungry, like real BFS model
/// checking).
#[derive(Debug)]
pub struct BfsExplorer {
    cfg: ExploreConfig,
    clock: Option<Clock>,
}

impl BfsExplorer {
    /// Creates an explorer with the given bounds.
    pub fn new(cfg: ExploreConfig) -> Self {
        BfsExplorer { cfg, clock: None }
    }

    /// Attaches a virtual clock.
    pub fn with_clock(mut self, clock: Clock) -> Self {
        self.clock = Some(clock);
        self
    }

    fn charge(&self, ns: u64) {
        if let Some(c) = &self.clock {
            c.advance_ns(ns);
        }
    }

    /// Runs the exploration.
    pub fn run<S: ModelSystem>(&self, sys: &mut S) -> ExploreReport<S::Op> {
        match &self.cfg.mem_budget {
            Some(budget) => match ShardedVisited::with_spill(self.cfg.visited_capacity, budget) {
                Ok(mut visited) => self.run_with_visited(sys, &mut visited),
                Err(e) => spill_init_failure(e),
            },
            None => {
                let mut visited = VisitedSet::new(self.cfg.visited_capacity);
                self.run_with_visited(sys, &mut visited)
            }
        }
    }

    /// Runs with a caller-owned visited set (§7 resumability — see
    /// [`DfsExplorer::run_with_visited`]).
    pub fn run_with_visited<S: ModelSystem, V: VisitedHandle>(
        &self,
        sys: &mut S,
        visited: &mut V,
    ) -> ExploreReport<S::Op> {
        use std::collections::VecDeque;
        let start_ns = self.clock.as_ref().map(Clock::now_ns).unwrap_or(0);
        let mut stats = ExploreStats::default();
        let mut violations = Vec::new();
        let mut mem = MemoryModel::new(self.cfg.mem);
        let mut next_id = 0u64;
        // Parent-pointer arena for trace reconstruction.
        let mut arena: Vec<(Option<usize>, Option<S::Op>)> = vec![(None, None)];

        if visited.insert(sys.abstract_state()).0 {
            stats.states_new += 1;
        }
        let root = StateId(next_id);
        next_id += 1;
        let stop = (|| -> StopReason {
            self.charge(visited.take_pending_ns());
            if let Some(e) = visited.error() {
                return StopReason::Fatal(format!("visited spill failed: {e}"));
            }
            match sys.checkpoint(root) {
                Ok(bytes) => match mem.store(root, bytes as u64) {
                    Ok(cost) => self.charge(cost),
                    Err(oom) => return StopReason::OutOfMemory(oom),
                },
                Err(e) => return StopReason::Fatal(e),
            }
            // BFS re-enters every frontier state once per op, so the whole
            // frontier is pinned against eviction until it is expanded.
            sys.pin(root);
            stats.checkpoints += 1;
            let mut queue: VecDeque<(StateId, usize, usize)> = VecDeque::new();
            queue.push_back((root, 0, 0)); // (state, depth, arena idx)
            while let Some((state, depth, node)) = queue.pop_front() {
                self.charge(mem.access(state));
                if let Err(e) = sys.restore(state) {
                    return restore_failure(e);
                }
                stats.restores += 1;
                let ops = sys.ops();
                for op in ops {
                    if stats.ops_executed >= self.cfg.max_ops {
                        return StopReason::OpBudget;
                    }
                    if stats.states_new >= self.cfg.max_states {
                        return StopReason::StateBudget;
                    }
                    self.charge(mem.access(state));
                    if let Err(e) = sys.restore(state) {
                        return restore_failure(e);
                    }
                    stats.restores += 1;
                    let outcome = sys.apply(&op);
                    stats.ops_executed += 1;
                    match outcome {
                        ApplyOutcome::Ok => {}
                        ApplyOutcome::Prune(_) => {
                            stats.pruned += 1;
                            continue;
                        }
                        ApplyOutcome::Violation(message) => {
                            let mut trace = Vec::new();
                            let mut cur = Some(node);
                            while let Some(i) = cur {
                                if let Some(op) = &arena[i].1 {
                                    trace.push(op.clone());
                                }
                                cur = arena[i].0;
                            }
                            trace.reverse();
                            trace.push(op.clone());
                            violations.push(record_violation(
                                sys,
                                trace,
                                message,
                                stats.ops_executed,
                            ));
                            if self.cfg.stop_on_violation {
                                return StopReason::Violation;
                            }
                            continue;
                        }
                    }
                    let h = sys.abstract_state();
                    // BFS reaches every state at its minimal depth first, so
                    // plain matching is already order-independent.
                    let (visit, resize) = visited.insert_at(h, depth as u32 + 1);
                    if let Some(r) = resize {
                        stats.resize_events += 1;
                        self.charge(r.cost_ns);
                        self.charge(mem.set_overhead(visited.bytes()));
                    }
                    self.charge(visited.take_pending_ns());
                    if let Some(e) = visited.error() {
                        return StopReason::Fatal(format!("visited spill failed: {e}"));
                    }
                    if visit != Visit::New {
                        stats.states_matched += 1;
                        continue;
                    }
                    stats.states_new += 1;
                    stats.max_depth_seen = stats.max_depth_seen.max(depth + 1);
                    if depth + 1 >= self.cfg.max_depth {
                        continue;
                    }
                    let child = StateId(next_id);
                    next_id += 1;
                    match sys.checkpoint(child) {
                        Ok(bytes) => match mem.store(child, bytes as u64) {
                            Ok(cost) => self.charge(cost),
                            Err(oom) => return StopReason::OutOfMemory(oom),
                        },
                        Err(e) => return StopReason::Fatal(e),
                    }
                    sys.pin(child);
                    stats.checkpoints += 1;
                    arena.push((Some(node), Some(op.clone())));
                    queue.push_back((child, depth + 1, arena.len() - 1));
                }
                sys.unpin(state);
                sys.release(state);
                if !self.cfg.retain_states {
                    mem.release(state);
                }
            }
            StopReason::Exhausted
        })();

        self.charge(visited.take_pending_ns());
        stats.checkpoint_store = sys.checkpoint_store_stats();
        stats.crash = sys.crash_stats();
        stats.peak_memory_bytes = mem.peak_bytes();
        stats.swap_traffic_bytes = mem.swap_traffic_bytes();
        stats.swapped_bytes = mem.swapped_bytes();
        stats.hit_rate = mem.hit_rate();
        stats.visited_peak_bytes = visited.peak_bytes();
        stats.spill = visited.spill_stats();
        stats.virtual_ns = self
            .clock
            .as_ref()
            .map(|c| c.now_ns() - start_ns)
            .unwrap_or(0);
        ExploreReport {
            stats,
            violations,
            stop,
        }
    }
}

/// Randomized walker: repeatedly executes random enabled operations,
/// restarting from the initial state at the depth bound. This is the
/// long-run mode behind the paper's multi-day soaks (randomized driver
/// processes, §2).
#[derive(Debug)]
pub struct RandomWalk {
    cfg: ExploreConfig,
    clock: Option<Clock>,
}

impl RandomWalk {
    /// Creates a walker with the given bounds (`max_depth` is the walk
    /// length between restarts).
    pub fn new(cfg: ExploreConfig) -> Self {
        RandomWalk { cfg, clock: None }
    }

    /// Attaches a virtual clock.
    pub fn with_clock(mut self, clock: Clock) -> Self {
        self.clock = Some(clock);
        self
    }

    fn charge(&self, ns: u64) {
        if let Some(c) = &self.clock {
            c.advance_ns(ns);
        }
    }

    /// Runs the walk until a budget or violation stops it.
    ///
    /// `observe` is called after every operation with the running stats —
    /// the Fig. 3 harness samples rate and swap usage through it. Pass
    /// `|_| {}` when not needed.
    pub fn run_observed<S: ModelSystem>(
        &self,
        sys: &mut S,
        observe: impl FnMut(&ExploreStats),
    ) -> ExploreReport<S::Op> {
        match &self.cfg.mem_budget {
            Some(budget) => match ShardedVisited::with_spill(self.cfg.visited_capacity, budget) {
                Ok(mut visited) => self.run_resumable(sys, &mut visited, observe),
                Err(e) => spill_init_failure(e),
            },
            None => {
                let mut visited = VisitedSet::new(self.cfg.visited_capacity);
                self.run_resumable(sys, &mut visited, observe)
            }
        }
    }

    /// Runs with a caller-owned visited set (§7 resumability — see
    /// [`DfsExplorer::run_with_visited`]) and a progress observer. The set
    /// may also be a swarm-shared [`crate::ShardedVisited`], in which case
    /// states another worker already expanded count as matched here.
    pub fn run_resumable<S: ModelSystem, V: VisitedHandle>(
        &self,
        sys: &mut S,
        visited: &mut V,
        mut observe: impl FnMut(&ExploreStats),
    ) -> ExploreReport<S::Op> {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let start_ns = self.clock.as_ref().map(Clock::now_ns).unwrap_or(0);
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let mut stats = ExploreStats::default();
        let mut violations = Vec::new();
        let mut mem = MemoryModel::new(self.cfg.mem);

        if visited.insert(sys.abstract_state()).0 {
            stats.states_new += 1;
        }
        let root = StateId(0);
        let mut trace: Vec<S::Op> = Vec::new();
        let mut next_id = 1u64;
        let mut stored: Vec<StateId> = vec![root];
        let stop = (|| -> StopReason {
            self.charge(visited.take_pending_ns());
            if let Some(e) = visited.error() {
                return StopReason::Fatal(format!("visited spill failed: {e}"));
            }
            match sys.checkpoint(root) {
                Ok(bytes) => match mem.store(root, bytes as u64) {
                    Ok(cost) => self.charge(cost),
                    Err(oom) => return StopReason::OutOfMemory(oom),
                },
                Err(e) => return StopReason::Fatal(e),
            }
            // Only the root is pinned: spread-restart targets are nice to
            // have, but the walk can always fall back to the root if the
            // budgeted store evicted one.
            sys.pin(root);
            stats.checkpoints += 1;
            let mut depth = 0usize;
            loop {
                if stats.ops_executed >= self.cfg.max_ops {
                    return StopReason::OpBudget;
                }
                if stats.states_new >= self.cfg.max_states {
                    return StopReason::StateBudget;
                }
                if let (Some(limit), Some(c)) = (self.cfg.max_virtual_ns, &self.clock) {
                    if c.now_ns() - start_ns >= limit {
                        return StopReason::TimeBudget;
                    }
                }
                let ops = sys.ops();
                if ops.is_empty() && depth == 0 {
                    // No operation is enabled even in the initial state:
                    // nothing left to do (also how swarm workers drain once
                    // the shared stop flag rises).
                    return StopReason::Exhausted;
                }
                if depth >= self.cfg.max_depth || ops.is_empty() {
                    // Pick the restart target: the root, or (with
                    // restart_spread) a random recently stored state.
                    let target = if self.cfg.restart_spread > 0.0 && stored.len() > 1 {
                        let window = ((stored.len() as f64 * self.cfg.restart_spread) as usize)
                            .clamp(1, stored.len());
                        let start = stored.len() - window;
                        stored[rng.gen_range(start..stored.len())]
                    } else {
                        root
                    };
                    self.charge(mem.access(target));
                    if let Err(e) = sys.restore(target) {
                        if target != root && is_evicted_error(&e) {
                            // The spread target aged out of the budgeted
                            // store: forget it and restart from the pinned
                            // root instead of dying.
                            stored.retain(|s| *s != target);
                            self.charge(mem.access(root));
                            if let Err(e) = sys.restore(root) {
                                return restore_failure(e);
                            }
                        } else {
                            return restore_failure(e);
                        }
                    }
                    stats.restores += 1;
                    depth = 0;
                    trace.clear();
                    continue;
                }
                let op = ops[rng.gen_range(0..ops.len())].clone();
                let outcome = sys.apply(&op);
                stats.ops_executed += 1;
                trace.push(op.clone());
                match outcome {
                    ApplyOutcome::Ok => {}
                    ApplyOutcome::Prune(_) => {
                        stats.pruned += 1;
                        trace.pop();
                        observe(&stats);
                        continue;
                    }
                    ApplyOutcome::Violation(message) => {
                        violations.push(record_violation(
                            sys,
                            trace.clone(),
                            message,
                            stats.ops_executed,
                        ));
                        if self.cfg.stop_on_violation {
                            return StopReason::Violation;
                        }
                        trace.pop();
                        observe(&stats);
                        continue;
                    }
                }
                depth += 1;
                stats.max_depth_seen = stats.max_depth_seen.max(depth);
                let h = sys.abstract_state();
                let (is_new, resize) = visited.insert(h);
                if let Some(r) = resize {
                    stats.resize_events += 1;
                    self.charge(r.cost_ns);
                    self.charge(mem.set_overhead(visited.bytes() + r.transient_bytes));
                    self.charge(mem.set_overhead(visited.bytes()));
                }
                self.charge(visited.take_pending_ns());
                if let Some(e) = visited.error() {
                    return StopReason::Fatal(format!("visited spill failed: {e}"));
                }
                if is_new {
                    stats.states_new += 1;
                    // The walker checkpoints newly discovered states, as
                    // MCFS does, so the state store (and its memory
                    // pressure) grows with exploration.
                    let id = StateId(next_id);
                    next_id += 1;
                    match sys.checkpoint(id) {
                        Ok(bytes) => match mem.store(id, bytes as u64) {
                            Ok(cost) => self.charge(cost),
                            Err(oom) => return StopReason::OutOfMemory(oom),
                        },
                        Err(e) => return StopReason::Fatal(e),
                    }
                    stats.checkpoints += 1;
                    if self.cfg.restart_spread > 0.0 {
                        // Keep the state restorable: restarts may jump here.
                        stored.push(id);
                        // Bound the system-side store (the memory *model*
                        // keeps charging retained states; the host doesn't
                        // have to hold them all).
                        if stored.len() > 4096 {
                            let old = stored.remove(0);
                            sys.release(old);
                            if !self.cfg.retain_states {
                                mem.release(old);
                            }
                        }
                    } else {
                        sys.release(id);
                    }
                } else {
                    stats.states_matched += 1;
                    if self.cfg.backtrack_on_match {
                        // SPIN semantics: a matched state ends the path.
                        let target = if self.cfg.restart_spread > 0.0 && stored.len() > 1 {
                            let window = ((stored.len() as f64 * self.cfg.restart_spread) as usize)
                                .clamp(1, stored.len());
                            let start = stored.len() - window;
                            stored[rng.gen_range(start..stored.len())]
                        } else {
                            root
                        };
                        self.charge(mem.access(target));
                        if let Err(e) = sys.restore(target) {
                            if target != root && is_evicted_error(&e) {
                                stored.retain(|s| *s != target);
                                self.charge(mem.access(root));
                                if let Err(e) = sys.restore(root) {
                                    return restore_failure(e);
                                }
                            } else {
                                return restore_failure(e);
                            }
                        }
                        stats.restores += 1;
                        depth = 0;
                        trace.clear();
                    }
                    // Otherwise the walk keeps going through visited
                    // territory: the frontier lies beyond it.
                }
                stats.swapped_bytes = mem.swapped_bytes();
                stats.hit_rate = mem.hit_rate();
                stats.virtual_ns = self
                    .clock
                    .as_ref()
                    .map(|c| c.now_ns() - start_ns)
                    .unwrap_or(0);
                observe(&stats);
            }
        })();

        self.charge(visited.take_pending_ns());
        stats.checkpoint_store = sys.checkpoint_store_stats();
        stats.crash = sys.crash_stats();
        stats.peak_memory_bytes = mem.peak_bytes();
        stats.swap_traffic_bytes = mem.swap_traffic_bytes();
        stats.swapped_bytes = mem.swapped_bytes();
        stats.hit_rate = mem.hit_rate();
        stats.visited_peak_bytes = visited.peak_bytes();
        stats.spill = visited.spill_stats();
        stats.virtual_ns = self
            .clock
            .as_ref()
            .map(|c| c.now_ns() - start_ns)
            .unwrap_or(0);
        ExploreReport {
            stats,
            violations,
            stop,
        }
    }

    /// Runs the walk without an observer.
    pub fn run<S: ModelSystem>(&self, sys: &mut S) -> ExploreReport<S::Op> {
        self.run_observed(sys, |_| {})
    }
}
