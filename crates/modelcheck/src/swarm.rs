//! Swarm verification: many diversified searches in parallel.
//!
//! SPIN's swarm technique (Holzmann et al.) runs N independent verifications
//! with different seeds and strategies, optionally sharing nothing — the
//! paper plans to use it to explore larger state spaces in parallel (§7).
//! [`run_swarm`] runs one explorer per worker thread over systems produced
//! by a factory, with a shared stop flag so the first violation cancels the
//! fleet.

use std::sync::atomic::{AtomicBool, Ordering};

use crate::explore::{ExploreConfig, ExploreReport, RandomWalk, StopReason};
use crate::system::ModelSystem;

/// Swarm configuration.
#[derive(Debug, Clone)]
pub struct SwarmConfig {
    /// Number of worker searches.
    pub workers: usize,
    /// Base exploration config; each worker gets `seed = base.seed + index`
    /// and a private visited set (classic swarm diversification).
    pub base: ExploreConfig,
}

/// Aggregated swarm outcome.
#[derive(Debug)]
pub struct SwarmReport<Op> {
    /// Per-worker reports, indexed by worker.
    pub workers: Vec<ExploreReport<Op>>,
}

impl<Op> SwarmReport<Op> {
    /// Total operations executed across the swarm.
    pub fn total_ops(&self) -> u64 {
        self.workers.iter().map(|w| w.stats.ops_executed).sum()
    }

    /// Total distinct states across workers (workers may overlap; swarm
    /// trades duplicate work for parallelism and diversity).
    pub fn total_states(&self) -> u64 {
        self.workers.iter().map(|w| w.stats.states_new).sum()
    }

    /// All violations found by any worker.
    pub fn violations(&self) -> impl Iterator<Item = &crate::system::Violation<Op>> {
        self.workers.iter().flat_map(|w| w.violations.iter())
    }

    /// Whether any worker found a violation.
    pub fn found_violation(&self) -> bool {
        self.workers.iter().any(|w| w.stop == StopReason::Violation)
    }
}

/// Runs `cfg.workers` randomized searches in parallel over systems produced
/// by `factory` (one system per worker, seeded by worker index).
///
/// The first worker to find a violation raises the shared stop flag; other
/// workers notice it through their op budgets being re-checked each step —
/// here, by a wrapper system that reports no further operations.
pub fn run_swarm<S, F>(cfg: &SwarmConfig, factory: F) -> SwarmReport<S::Op>
where
    S: ModelSystem,
    S::Op: Send + 'static,
    F: Fn(usize) -> S + Sync,
{
    let stop = AtomicBool::new(false);
    let mut reports: Vec<Option<ExploreReport<S::Op>>> =
        (0..cfg.workers).map(|_| None).collect();

    crossbeam::thread::scope(|scope| {
        for (idx, slot) in reports.iter_mut().enumerate() {
            let stop = &stop;
            let factory = &factory;
            let base = cfg.base.clone();
            scope.spawn(move |_| {
                let mut worker_cfg = base;
                worker_cfg.seed = worker_cfg.seed.wrapping_add(idx as u64);
                let mut sys = Stoppable {
                    inner: factory(idx),
                    stop,
                };
                let walk = RandomWalk::new(worker_cfg);
                let report = walk.run(&mut sys);
                if report.stop == StopReason::Violation {
                    stop.store(true, Ordering::SeqCst);
                }
                *slot = Some(report);
            });
        }
    })
    .expect("swarm worker panicked");

    SwarmReport {
        workers: reports
            .into_iter()
            .map(|r| r.expect("worker finished"))
            .collect(),
    }
}

/// Wrapper that reports no enabled operations once the shared stop flag is
/// raised, draining the remaining workers quickly.
struct Stoppable<'a, S> {
    inner: S,
    stop: &'a AtomicBool,
}

impl<S: ModelSystem> ModelSystem for Stoppable<'_, S> {
    type Op = S::Op;

    fn ops(&mut self) -> Vec<Self::Op> {
        if self.stop.load(Ordering::Relaxed) {
            // No ops and an empty restart set terminates the walk via its
            // op budget; force it sooner by returning nothing forever.
            return Vec::new();
        }
        self.inner.ops()
    }

    fn apply(&mut self, op: &Self::Op) -> crate::system::ApplyOutcome {
        self.inner.apply(op)
    }

    fn abstract_state(&mut self) -> u128 {
        self.inner.abstract_state()
    }

    fn checkpoint(&mut self, id: crate::system::StateId) -> Result<usize, String> {
        self.inner.checkpoint(id)
    }

    fn restore(&mut self, id: crate::system::StateId) -> Result<(), String> {
        self.inner.restore(id)
    }

    fn release(&mut self, id: crate::system::StateId) {
        self.inner.release(id)
    }

    fn independent(&self, a: &Self::Op, b: &Self::Op) -> bool {
        self.inner.independent(a, b)
    }
}
