//! Swarm verification: many searches in parallel, optionally work-stealing
//! and resumable.
//!
//! SPIN's swarm technique (Holzmann et al.) runs N independent verifications
//! with different seeds and strategies — the paper plans to use it to explore
//! larger state spaces in parallel (§7). [`run_swarm`] runs one explorer per
//! worker thread over systems produced by a factory, with a shared stop flag
//! so the first violation cancels the fleet.
//!
//! Two fleet shapes exist:
//!
//! * **Classic walks** ([`SwarmConfig::strategies`] empty): every worker runs
//!   a seed-diversified [`RandomWalk`]. With private visited sets workers
//!   re-expand each other's states (maximum diversity); with
//!   [`SwarmConfig::shared_visited`] they share one [`ShardedVisited`] and a
//!   state expanded anywhere is pruned everywhere.
//! * **Work-stealing frontier** (`strategies` non-empty): pending states
//!   live in per-worker deques as *replayable op-prefixes*
//!   ([`FrontierEntry`]); a worker whose deque runs dry steals half of a
//!   victim's. The shared visited set arbitrates, so each state is expanded
//!   exactly once fleet-wide and DFS/BFS — not just walks — parallelize.
//!   [`WorkerStrategy::Dfs`] workers pop newest-first,
//!   [`WorkerStrategy::Bfs`] oldest-first, and [`WorkerStrategy::Walk`]
//!   workers run random walks against the same shared set. The system's
//!   independence relation (e.g. the harness's `EffectIndex`) still applies
//!   per-worker through sleep sets carried in the entries.
//!
//! The op-prefix frontier is also what makes a swarm *resumable*:
//! [`run_swarm_persistent`] periodically pickles the shared visited set, the
//! frontier, RNG cursors, and cumulative stats to disk (atomically — see
//! [`pickle::save_atomic`]) and can start from a loaded [`RunSnapshot`],
//! re-exploring zero already-visited states. Snapshots are taken at *round*
//! boundaries: the fleet runs `snapshot_every` expansions, the worker scope
//! joins (queues quiescent — no entry is ever half-expanded), the snapshot
//! is cut, and the next round's workers are re-spawned from the factory.
//!
//! A panicking worker does not abort the fleet: the panic is caught, the
//! worker's slot reports [`StopReason::WorkerPanic`], its queue remains
//! stealable by survivors, and the rest of the fleet runs to completion.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

use parking_lot::Mutex;

use crate::explore::{
    record_violation, ExploreConfig, ExploreReport, ExploreStats, RandomWalk, StopReason,
};
use crate::pickle::SnapshotWriter;
use crate::pickle::{self, deal_frontier, FrontierEntry, OpCodec, RngCursor, RunSnapshot};
use crate::spill::{FrontierQueue, FrontierSpill, SpillCtx, SpillStats};
use crate::system::{is_evicted_error, ApplyOutcome, ModelSystem, StateId, Violation};
use crate::visited::{ShardedVisited, Visit};

/// How one swarm worker searches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerStrategy {
    /// Pop the newest frontier entry (depth-first flavour: best replay
    /// locality — children of the state just expanded replay one op).
    Dfs,
    /// Pop the oldest frontier entry (breadth-first flavour: finds shallow
    /// violations first, replays longer prefixes).
    Bfs,
    /// Seed-diversified random walk over the shared visited set; does not
    /// consume the frontier but prunes against (and feeds) the same set.
    Walk,
}

/// Swarm configuration.
#[derive(Debug, Clone)]
pub struct SwarmConfig {
    /// Number of worker searches.
    pub workers: usize,
    /// Base exploration config; walk workers get `seed = base.seed + index`
    /// (classic swarm diversification). In frontier mode `max_ops` and
    /// `max_states` are *fleet-wide* budgets — the frontier is shared, so
    /// per-worker budgets would be arbitrary; walk workers keep per-worker
    /// op budgets as before.
    pub base: ExploreConfig,
    /// Share one sharded visited set across the fleet so workers skip
    /// states another worker already expanded, instead of duplicating work
    /// with private per-worker sets. Implied (always on) in frontier mode,
    /// where work-stealing without a shared set would be unsound.
    pub shared_visited: bool,
    /// Per-worker strategy assignment, cycled over the worker index (e.g.
    /// `[Dfs, Dfs, Walk]` over 5 workers gives Dfs,Dfs,Walk,Dfs,Dfs).
    /// Empty selects the classic all-walk swarm; any non-empty assignment
    /// selects the work-stealing frontier.
    ///
    /// Out-of-core operation rides in [`ExploreConfig::mem_budget`] on
    /// `base`: a shared visited set becomes disk-spilling, and in
    /// [`run_swarm_persistent`] (where an op codec exists) the per-worker
    /// frontier queues spill cold op-prefix pages to the same store.
    pub strategies: Vec<WorkerStrategy>,
}

/// Persistence options for [`run_swarm_persistent`].
pub struct SwarmPersist<'a, Op> {
    /// Encoder/decoder for the system's op type.
    pub codec: &'a (dyn OpCodec<Op> + Sync),
    /// Where to write snapshots (atomic tempfile + rename); `None` disables
    /// snapshotting (a run can still *start* from `resume`).
    pub snapshot_path: Option<PathBuf>,
    /// Snapshot cadence in frontier expansions (walk workers count ops
    /// toward it). The fleet pauses at this boundary — workers park between
    /// entry expansions — so every snapshot is a consistent visited+frontier
    /// cut. 0 means "only at the end of the run".
    ///
    /// When this is non-zero the factory is called once per worker per
    /// *round*, so it must produce a fresh system (at the initial state) on
    /// every call.
    pub snapshot_every: u64,
    /// Resume from a previously pickled snapshot: its visited set is
    /// preloaded (no contained state is ever re-counted), its frontier is
    /// redistributed across the workers, and its stats become the report's
    /// [`SwarmReport::baseline`].
    pub resume: Option<RunSnapshot<Op>>,
}

/// Aggregated swarm outcome.
#[derive(Debug)]
pub struct SwarmReport<Op> {
    /// Per-worker reports, indexed by worker. A worker that panicked
    /// reports [`StopReason::WorkerPanic`] with the stats it had
    /// accumulated before dying.
    pub workers: Vec<ExploreReport<Op>>,
    /// Distinct states in the shared visited set at the end of the run,
    /// when one was used (`shared_visited` or frontier mode). `None` for
    /// private-set fleets, where no global distinct count exists.
    pub distinct_states: Option<u64>,
    /// Stats carried in from the resumed snapshot (zero for fresh runs) —
    /// the totals below include them, so a resumed run reports its whole
    /// life, not just the latest process.
    pub baseline: ExploreStats,
    /// Error from the last snapshot write, if any (the search itself still
    /// completed; only persistence failed).
    pub persist_error: Option<String>,
    /// Fleet-wide spill counters of the *shared* visited set (and any
    /// spilling frontier queues, which share its page store). Per-worker
    /// stats deliberately exclude these — the set is one global structure,
    /// so charging each worker the whole set's traffic would overcount on
    /// merge. `None` when no shared spill-backed set was used (private-set
    /// fleets report per-worker `stats.spill` instead).
    pub spill: Option<SpillStats>,
    /// Peak hot-cache bytes of the shared visited set (0 without one).
    pub visited_peak_bytes: u64,
}

impl<Op> SwarmReport<Op> {
    /// Total operations executed across the swarm's whole life (including
    /// generations before a resume; prefix replays are counted separately —
    /// see [`SwarmReport::total_replayed`]).
    pub fn total_ops(&self) -> u64 {
        self.baseline.ops_executed
            + self
                .workers
                .iter()
                .map(|w| w.stats.ops_executed)
                .sum::<u64>()
    }

    /// Total distinct states found by the swarm.
    ///
    /// With a shared visited set this is the set's true distinct count, not
    /// a per-worker sum: summing `states_new` undercounts resumed runs
    /// (preloaded states appear in no worker's count) and makes private-
    /// and shared-set numbers incomparable. With private sets workers may
    /// genuinely overlap and the per-worker sum is the only number there
    /// is.
    pub fn total_states(&self) -> u64 {
        match self.distinct_states {
            Some(n) => n,
            None => {
                self.baseline.states_new
                    + self.workers.iter().map(|w| w.stats.states_new).sum::<u64>()
            }
        }
    }

    /// Total visited-set matches across workers — with a shared set this
    /// includes states first expanded by *another* worker.
    pub fn total_matched(&self) -> u64 {
        self.baseline.states_matched
            + self
                .workers
                .iter()
                .map(|w| w.stats.states_matched)
                .sum::<u64>()
    }

    /// Total operations replayed to reconstruct frontier states from their
    /// op-prefixes — the overhead work-stealing and resume pay instead of
    /// shipping concrete state between workers or processes.
    pub fn total_replayed(&self) -> u64 {
        self.baseline.ops_replayed
            + self
                .workers
                .iter()
                .map(|w| w.stats.ops_replayed)
                .sum::<u64>()
    }

    /// All violations found by any worker.
    pub fn violations(&self) -> impl Iterator<Item = &Violation<Op>> {
        self.workers.iter().flat_map(|w| w.violations.iter())
    }

    /// Whether any worker found a violation.
    pub fn found_violation(&self) -> bool {
        self.workers.iter().any(|w| w.stop == StopReason::Violation)
    }

    /// The violation with the shortest reproduction trace across all
    /// workers, judging each by its minimized trace when the worker that
    /// found it minimized ([`crate::Violation::best_trace`]). Each worker
    /// minimizes its own finds; the swarm reports the overall shortest.
    pub fn shortest_violation(&self) -> Option<&Violation<Op>> {
        self.violations().min_by_key(|v| v.best_trace().len())
    }

    /// Panic messages of workers that died, with their worker index.
    pub fn panics(&self) -> impl Iterator<Item = (usize, &str)> {
        self.workers
            .iter()
            .enumerate()
            .filter_map(|(i, w)| match &w.stop {
                StopReason::WorkerPanic(msg) => Some((i, msg.as_str())),
                _ => None,
            })
    }
}

/// Renders a panic payload for [`StopReason::WorkerPanic`].
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

/// Classifies a restore error: budget-driven eviction is distinct from a
/// genuine failure (mirrors the explorers' handling).
fn restore_failure(e: String) -> StopReason {
    if is_evicted_error(&e) {
        StopReason::CheckpointEvicted(e)
    } else {
        StopReason::Fatal(e)
    }
}

/// A fleet that could not start because the shared spill store failed to
/// initialize: every worker slot reports the failure.
fn spill_init_report<Op>(workers: usize, e: &str) -> SwarmReport<Op> {
    SwarmReport {
        workers: (0..workers.max(1))
            .map(|_| ExploreReport {
                stats: ExploreStats::default(),
                violations: Vec::new(),
                stop: StopReason::Fatal(format!("spill store init failed: {e}")),
            })
            .collect(),
        distinct_states: None,
        baseline: ExploreStats::default(),
        persist_error: None,
        spill: None,
        visited_peak_bytes: 0,
    }
}

/// Runs `cfg.workers` searches in parallel over systems produced by
/// `factory` (one system per worker, seeded by worker index).
///
/// With an empty [`SwarmConfig::strategies`] this is the classic
/// seed-diversified walk swarm; otherwise the work-stealing frontier runs
/// (see the module docs). The first worker to find a violation raises the
/// shared stop flag. A worker panic is contained to its slot (see
/// [`SwarmReport::panics`]); the rest of the fleet keeps searching.
pub fn run_swarm<S, F>(cfg: &SwarmConfig, factory: F) -> SwarmReport<S::Op>
where
    S: ModelSystem,
    S::Op: Send + 'static,
    F: Fn(usize) -> S + Sync,
{
    if cfg.strategies.is_empty() {
        run_walk_swarm(cfg, factory)
    } else {
        run_frontier_swarm::<S, F>(cfg, factory, None)
    }
}

/// Runs a resumable work-stealing swarm: like [`run_swarm`] with non-empty
/// strategies (an empty assignment defaults to all-[`WorkerStrategy::Dfs`]
/// here), plus periodic atomic snapshots and/or an initial state loaded
/// from a [`RunSnapshot`] (see [`SwarmPersist`]).
pub fn run_swarm_persistent<S, F>(
    cfg: &SwarmConfig,
    factory: F,
    persist: SwarmPersist<'_, S::Op>,
) -> SwarmReport<S::Op>
where
    S: ModelSystem,
    S::Op: Send + 'static,
    F: Fn(usize) -> S + Sync,
{
    run_frontier_swarm::<S, F>(cfg, factory, Some(persist))
}

// ---------------------------------------------------------------------------
// Classic walk swarm (strategies empty)
// ---------------------------------------------------------------------------

fn run_walk_swarm<S, F>(cfg: &SwarmConfig, factory: F) -> SwarmReport<S::Op>
where
    S: ModelSystem,
    S::Op: Send + 'static,
    F: Fn(usize) -> S + Sync,
{
    let stop = AtomicBool::new(false);
    // One shard per worker (rounded up to a power of two, min 8) keeps
    // same-shard collisions between workers rare. With a memory budget the
    // shared set spills cold shards to disk instead.
    let shared = match (cfg.shared_visited, &cfg.base.mem_budget) {
        (false, _) => None,
        (true, None) => Some(ShardedVisited::new(
            cfg.base.visited_capacity,
            cfg.workers.max(8),
        )),
        (true, Some(budget)) => {
            match ShardedVisited::with_spill(cfg.base.visited_capacity, budget) {
                Ok(v) => Some(v),
                Err(e) => return spill_init_report(cfg.workers, &e),
            }
        }
    };
    let mut reports: Vec<Option<ExploreReport<S::Op>>> = (0..cfg.workers).map(|_| None).collect();

    // mcfs-lint: allow(MC007, per-worker results land in indexed slots; the merge below is worker-order deterministic)
    std::thread::scope(|scope| {
        for (idx, slot) in reports.iter_mut().enumerate() {
            let stop = &stop;
            let factory = &factory;
            let shared = shared.clone();
            let base = cfg.base.clone();
            scope.spawn(move || {
                let result = catch_unwind(AssertUnwindSafe(|| {
                    let mut worker_cfg = base;
                    worker_cfg.seed = worker_cfg.seed.wrapping_add(idx as u64);
                    let mut sys = Stoppable {
                        inner: factory(idx),
                        stop,
                    };
                    let walk = RandomWalk::new(worker_cfg);
                    match shared {
                        Some(mut visited) => {
                            let mut report = walk.run_resumable(&mut sys, &mut visited, |_| {});
                            // The shared set's spill counters are fleet-wide;
                            // they surface once in `SwarmReport::spill`, not
                            // per worker (summing per-worker copies of the
                            // same global counters would overcount).
                            report.stats.spill = None;
                            report.stats.visited_peak_bytes = 0;
                            report
                        }
                        None => walk.run(&mut sys),
                    }
                }));
                *slot = Some(match result {
                    Ok(report) => {
                        if report.stop == StopReason::Violation {
                            stop.store(true, Ordering::SeqCst);
                        }
                        report
                    }
                    // Contain the panic: survivors keep searching, the dead
                    // worker's slot records why it stopped.
                    Err(payload) => ExploreReport {
                        stats: ExploreStats::default(),
                        violations: Vec::new(),
                        stop: StopReason::WorkerPanic(panic_message(payload)),
                    },
                });
            });
        }
    });

    SwarmReport {
        workers: reports
            .into_iter()
            .map(|r| r.expect("worker slot filled"))
            .collect(),
        distinct_states: shared.as_ref().map(|s| s.len() as u64),
        baseline: ExploreStats::default(),
        persist_error: None,
        spill: shared.as_ref().and_then(|s| s.spill_stats()),
        visited_peak_bytes: shared.as_ref().map(|s| s.peak_bytes()).unwrap_or(0),
    }
}

// ---------------------------------------------------------------------------
// Work-stealing frontier swarm
// ---------------------------------------------------------------------------

/// Per-worker checkpoint cache capacity: concrete states keyed by the
/// op-prefix that reaches them, so a worker expanding its own just-pushed
/// children replays one op instead of the whole prefix. Eviction is FIFO —
/// with LIFO (Dfs) pops the newest cached states are the hot ones.
const PREFIX_CACHE_CAP: usize = 64;

/// Shared coordination state of one frontier fleet.
struct FrontierShared<Op> {
    /// Per-worker frontier queues. Owners push children to the back; Dfs
    /// pops the back, Bfs pops the front, thieves steal from the front
    /// (oldest entries — the biggest unexplored subtrees). Under a memory
    /// budget with a codec, cold middles spill to pages.
    queues: Vec<Mutex<FrontierQueue<Op>>>,
    /// Spill context for the queues: present only in persistent runs with a
    /// [`crate::MemBudget`] (spilling op-prefixes needs the op codec).
    frontier_spill: Option<FrontierSpill>,
    /// The fleet-shared visited set (also what gets pickled).
    visited: ShardedVisited,
    /// Workers currently expanding an entry; termination needs empty queues
    /// *and* zero busy workers (a busy worker may be about to push
    /// children).
    busy: AtomicUsize,
    /// First violation (or fleet-wide budget) raised: everyone drains.
    stop: AtomicBool,
    /// The current round's expansion quota is spent: workers park between
    /// entry expansions so a consistent snapshot can be cut.
    round_done: AtomicBool,
    /// Expansions (and walk ops) performed this round.
    round_work: AtomicU64,
    /// Fleet-wide executed-op / new-state counters backing the shared
    /// budgets; initialized with the resumed baseline so budgets span
    /// generations.
    ops_total: AtomicU64,
    states_total: AtomicU64,
}

impl<Op> FrontierShared<Op> {
    fn queues_all_empty(&self) -> bool {
        self.queues.iter().all(|q| q.lock().is_empty())
    }

    /// Counts one unit of round work and raises the round flag at `quota`.
    fn tick_round(&self, quota: u64) {
        if self.round_work.fetch_add(1, Ordering::SeqCst) + 1 >= quota {
            self.round_done.store(true, Ordering::SeqCst);
        }
    }
}

/// Decrements `busy` even if the expansion panics, so the survivors'
/// termination detection cannot wedge on a dead worker's stale count.
struct BusyGuard<'a>(&'a AtomicUsize);

impl Drop for BusyGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The worker-index → strategy assignment for a fleet.
fn resolve_strategies(cfg: &SwarmConfig) -> Vec<WorkerStrategy> {
    let workers = cfg.workers.max(1);
    if cfg.strategies.is_empty() {
        vec![WorkerStrategy::Dfs; workers]
    } else {
        (0..workers)
            .map(|i| cfg.strategies[i % cfg.strategies.len()])
            .collect()
    }
}

/// Derives a walk worker's seed for a given round/generation — diversified
/// so resumed or later-round walks explore new paths instead of repeating
/// ones the shared visited set has already pruned.
fn walk_seed(base: u64, idx: usize, round: u64, generation: u32) -> u64 {
    base.wrapping_add(idx as u64)
        .wrapping_add(round.wrapping_mul(0x9E37_79B9))
        .wrapping_add((generation as u64).wrapping_mul(0x85EB_CA6B_0000))
}

fn run_frontier_swarm<S, F>(
    cfg: &SwarmConfig,
    factory: F,
    persist: Option<SwarmPersist<'_, S::Op>>,
) -> SwarmReport<S::Op>
where
    S: ModelSystem,
    S::Op: Send + 'static,
    F: Fn(usize) -> S + Sync,
{
    let workers = cfg.workers.max(1);
    let strategies = resolve_strategies(cfg);
    let visited = match &cfg.base.mem_budget {
        Some(budget) => match ShardedVisited::with_spill(cfg.base.visited_capacity, budget) {
            Ok(v) => v,
            Err(e) => return spill_init_report(workers, &e),
        },
        None => ShardedVisited::new(cfg.base.visited_capacity, workers.max(8)),
    };

    let mut baseline = ExploreStats::default();
    let mut generation = 0u32;
    let mut initial_frontier: Option<Vec<FrontierEntry<S::Op>>> = None;
    let (codec, snapshot_path, snapshot_every) = match &persist {
        Some(p) => (Some(p.codec), p.snapshot_path.clone(), p.snapshot_every),
        None => (None, None, 0),
    };
    if let Some(p) = persist {
        if let Some(snap) = p.resume {
            visited.load_entries(&snap.visited);
            baseline = snap.stats.clone();
            generation = snap.generation + 1;
            initial_frontier = Some(snap.frontier);
        }
    }

    // Frontier spilling needs both a budget (the hot cap) and a codec (to
    // encode op-prefixes into pages); the queues share the visited set's
    // page store so one spill file serves the whole run.
    let frontier_spill = match (&cfg.base.mem_budget, codec) {
        (Some(budget), Some(_)) => visited
            .spill_set()
            .map(|s| FrontierSpill::new(s.store().clone(), budget.frontier_hot_bytes)),
        _ => None,
    };

    let shared = FrontierShared::<S::Op> {
        queues: (0..workers)
            .map(|_| Mutex::new(FrontierQueue::new()))
            .collect(),
        frontier_spill,
        visited,
        busy: AtomicUsize::new(0),
        stop: AtomicBool::new(false),
        round_done: AtomicBool::new(false),
        round_work: AtomicU64::new(0),
        ops_total: AtomicU64::new(baseline.ops_executed),
        states_total: AtomicU64::new(baseline.states_new),
    };

    // Seed the frontier: the resumed entries round-robin across frontier
    // (non-walk) workers, or the single root entry for a fresh run.
    let frontier_idxs: Vec<usize> = strategies
        .iter()
        .enumerate()
        .filter(|(_, s)| **s != WorkerStrategy::Walk)
        .map(|(i, _)| i)
        .collect();
    match initial_frontier {
        Some(entries) => {
            let dealt = deal_frontier(entries, frontier_idxs.len().max(1));
            for (slot, queue) in dealt.into_iter().enumerate() {
                // An all-walk fleet parks resumed entries on queue 0: never
                // expanded, but carried forward into the next snapshot.
                // Seeding never spills (no I/O to fail here); the first
                // over-budget worker push drains the excess to pages.
                let idx = frontier_idxs.get(slot).copied().unwrap_or(0);
                shared.queues[idx].lock().extend_back(queue.into());
            }
        }
        None => {
            if let Some(&first) = frontier_idxs.first() {
                shared.queues[first].lock().extend_back(vec![FrontierEntry {
                    prefix: Vec::new(),
                    sleep: Vec::new(),
                }]);
            }
        }
    }

    // Per-worker accumulators, merged across snapshot rounds.
    let mut agg_stats: Vec<ExploreStats> = (0..workers).map(|_| ExploreStats::default()).collect();
    let mut agg_violations: Vec<Vec<Violation<S::Op>>> = (0..workers).map(|_| Vec::new()).collect();
    let mut last_stop: Vec<Option<StopReason>> = (0..workers).map(|_| None).collect();
    let mut pending: Vec<bool> = (0..workers).map(|_| true).collect();
    let mut persist_error = None;
    let mut round = 0u64;

    loop {
        shared.round_done.store(false, Ordering::SeqCst);
        shared.round_work.store(0, Ordering::SeqCst);
        let quota = if snapshot_path.is_some() && snapshot_every > 0 {
            snapshot_every
        } else {
            u64::MAX
        };

        // mcfs-lint: allow(MC007, per-worker results land in indexed slots; the merge below is worker-order deterministic)
        std::thread::scope(|scope| {
            for (idx, ((stats_slot, viol_slot), stop_slot)) in agg_stats
                .iter_mut()
                .zip(agg_violations.iter_mut())
                .zip(last_stop.iter_mut())
                .enumerate()
            {
                if !pending[idx] {
                    continue;
                }
                let shared = &shared;
                let factory = &factory;
                let base = &cfg.base;
                let strategy = strategies[idx];
                scope.spawn(move || {
                    let result = catch_unwind(AssertUnwindSafe(|| match strategy {
                        WorkerStrategy::Walk => run_walk_round::<S, F>(
                            idx, factory, base, shared, round, generation, quota, stats_slot,
                            viol_slot,
                        ),
                        _ => run_frontier_worker::<S, F>(
                            idx, factory, base, shared, strategy, quota, codec, stats_slot,
                            viol_slot,
                        ),
                    }));
                    let outcome = match result {
                        Ok(reason) => reason,
                        Err(payload) => Some(StopReason::WorkerPanic(panic_message(payload))),
                    };
                    if let Some(reason) = outcome {
                        *stop_slot = Some(reason);
                    }
                });
            }
        });

        // A worker whose round ended with a terminal reason is not
        // re-spawned; `None` means the round quota interrupted it mid-search
        // and it resumes next round.
        for idx in 0..workers {
            if pending[idx] && last_stop[idx].is_some() {
                pending[idx] = false;
            }
        }

        // Snapshot at the (quiescent) round boundary: the scope joined, so
        // the queues and visited set are a consistent cut of the search.
        // Both big sections stream — visited entries page-by-page through
        // the writer, spilled frontier pages one queue at a time — so the
        // snapshot path never materializes the whole set as a second copy.
        if let (Some(path), Some(codec)) = (&snapshot_path, codec) {
            let ctx: SpillCtx<'_, S::Op> = shared
                .frontier_spill
                .as_ref()
                .map(|fs| (fs, codec as &dyn OpCodec<S::Op>));
            let mut frontier = Vec::new();
            let mut frontier_err: Option<String> = None;
            for q in &shared.queues {
                match q.lock().collect_all(ctx) {
                    Ok(entries) => frontier.extend(entries),
                    Err(e) => {
                        frontier_err = Some(e);
                        break;
                    }
                }
            }
            let mut stats = baseline.clone();
            for s in &agg_stats {
                stats.merge(s);
            }
            // The shared set's fleet-wide spill counters ride in the
            // snapshot stats (per-worker stats exclude them — see
            // `SwarmReport::spill`).
            if let Some(cur) = shared.visited.spill_stats() {
                match &mut stats.spill {
                    Some(b) => b.merge(&cur),
                    None => stats.spill = Some(cur),
                }
            }
            stats.visited_peak_bytes = stats.visited_peak_bytes.max(shared.visited.peak_bytes());
            let rng: Vec<RngCursor> = (0..workers)
                .map(|i| RngCursor {
                    seed: walk_seed(cfg.base.seed, i, round, generation),
                    draws: agg_stats[i].ops_executed,
                })
                .collect();
            match frontier_err {
                Some(e) => persist_error = Some(format!("frontier snapshot failed: {e}")),
                None => {
                    let mut w =
                        SnapshotWriter::new(codec, cfg.base.seed, workers as u32, generation);
                    w.begin_visited(shared.visited.len() as u32);
                    match shared.visited.stream_entries(|h, d| w.visited_entry(h, d)) {
                        Ok(()) => {
                            w.frontier(&frontier);
                            w.rng(&rng);
                            let bytes = w.finish(&stats);
                            if let Err(e) = pickle::save_atomic(path, &bytes) {
                                persist_error = Some(e.to_string());
                            }
                        }
                        Err(e) => {
                            persist_error = Some(format!("visited snapshot failed: {e}"));
                        }
                    }
                }
            }
        }

        round += 1;
        if shared.stop.load(Ordering::SeqCst) || pending.iter().all(|p| !p) || quota == u64::MAX {
            break;
        }
    }

    SwarmReport {
        workers: agg_stats
            .into_iter()
            .zip(agg_violations)
            .zip(last_stop)
            .map(|((stats, violations), stop)| ExploreReport {
                stats,
                violations,
                stop: stop.unwrap_or(StopReason::Exhausted),
            })
            .collect(),
        distinct_states: Some(shared.visited.len() as u64),
        baseline,
        persist_error,
        spill: shared.visited.spill_stats(),
        visited_peak_bytes: shared.visited.peak_bytes(),
    }
}

/// One round of a walk worker: a seed-diversified random walk over the
/// shared visited set, drained early if the round quota or stop flag rises.
#[allow(clippy::too_many_arguments)]
fn run_walk_round<S, F>(
    idx: usize,
    factory: &F,
    base: &ExploreConfig,
    shared: &FrontierShared<S::Op>,
    round: u64,
    generation: u32,
    quota: u64,
    stats_slot: &mut ExploreStats,
    viol_slot: &mut Vec<Violation<S::Op>>,
) -> Option<StopReason>
where
    S: ModelSystem,
    F: Fn(usize) -> S + Sync,
{
    let mut worker_cfg = base.clone();
    worker_cfg.seed = walk_seed(base.seed, idx, round, generation);
    // Per-worker op budget, minus what this worker's earlier rounds used.
    worker_cfg.max_ops = base.max_ops.saturating_sub(stats_slot.ops_executed);
    if worker_cfg.max_ops == 0 {
        return Some(StopReason::OpBudget);
    }
    let mut sys = RoundStoppable {
        inner: factory(idx),
        stop: &shared.stop,
        round_done: &shared.round_done,
    };
    let mut visited = shared.visited.clone();
    let walk = RandomWalk::new(worker_cfg);
    let mut report = walk.run_resumable(&mut sys, &mut visited, |_| shared.tick_round(quota));
    let drained_by_round = shared.round_done.load(Ordering::SeqCst);
    // Shared-set spill counters surface fleet-wide (snapshot stats and
    // `SwarmReport::spill`), not per worker.
    report.stats.spill = None;
    report.stats.visited_peak_bytes = 0;
    stats_slot.merge(&report.stats);
    viol_slot.extend(report.violations);
    match report.stop {
        StopReason::Violation => {
            shared.stop.store(true, Ordering::SeqCst);
            Some(StopReason::Violation)
        }
        // Drained at the round boundary: the walk has budget left, resume
        // it next round (with a fresh derived seed).
        StopReason::Exhausted if drained_by_round => None,
        other => Some(other),
    }
}

/// A frontier (Dfs/Bfs) worker's round: pop-or-steal entries and expand
/// them against the shared visited set until the frontier is exhausted, a
/// budget trips, or the round quota pauses the fleet.
///
/// Returns `Some(reason)` when the worker is done for good, `None` when the
/// round quota (or a fleet stop raised elsewhere) interrupted it.
#[allow(clippy::too_many_arguments)]
fn run_frontier_worker<S, F>(
    idx: usize,
    factory: &F,
    cfg: &ExploreConfig,
    shared: &FrontierShared<S::Op>,
    strategy: WorkerStrategy,
    quota: u64,
    codec: Option<&(dyn OpCodec<S::Op> + Sync)>,
    stats: &mut ExploreStats,
    viols: &mut Vec<Violation<S::Op>>,
) -> Option<StopReason>
where
    S: ModelSystem,
    F: Fn(usize) -> S + Sync,
{
    // Queue spill context: page store + codec, present only in budgeted
    // persistent runs (both live for the whole scope, so one binding
    // serves every queue operation below).
    let ctx: SpillCtx<'_, S::Op> = match (&shared.frontier_spill, codec) {
        (Some(fs), Some(c)) => Some((fs, c as &dyn OpCodec<S::Op>)),
        _ => None,
    };
    // A spill failure anywhere poisons the store: stop the fleet loudly so
    // no worker keeps searching over a silently shrunken frontier/visited
    // set (the error message carries the replayable cause).
    let spill_fatal = |what: &str, e: String| {
        shared.stop.store(true, Ordering::SeqCst);
        Some(StopReason::Fatal(format!("{what} spill failed: {e}")))
    };
    let mut sys = factory(idx);
    let root = StateId(0);
    let mut next_id = 1u64;
    if let Err(e) = sys.checkpoint(root) {
        return Some(StopReason::Fatal(e));
    }
    // The root is every replay's fallback: pinned so the budgeted store can
    // never evict it.
    sys.pin(root);
    stats.checkpoints += 1;
    // Every worker fingerprints the root, but only the fleet-wide first
    // insert counts it as a discovered state (resumed runs re-match it).
    let root_hash = sys.abstract_state();
    if shared.visited.insert_at(root_hash, 0).0 == Visit::New {
        stats.states_new += 1;
        shared.states_total.fetch_add(1, Ordering::SeqCst);
    }
    if let Some(e) = shared.visited.error() {
        return spill_fatal("visited", e);
    }

    // Replay cache: op-prefix → concrete checkpoint, so expanding a child
    // of a recently expanded state replays one op, not the whole prefix.
    let mut cache: VecDeque<(Vec<S::Op>, StateId)> = VecDeque::new();
    let mut idle_spins = 0u32;

    'entries: loop {
        if shared.stop.load(Ordering::SeqCst) || shared.round_done.load(Ordering::SeqCst) {
            return None;
        }
        if shared.ops_total.load(Ordering::SeqCst) >= cfg.max_ops {
            shared.stop.store(true, Ordering::SeqCst);
            return Some(StopReason::OpBudget);
        }
        if shared.states_total.load(Ordering::SeqCst) >= cfg.max_states {
            shared.stop.store(true, Ordering::SeqCst);
            return Some(StopReason::StateBudget);
        }

        // Busy is raised *before* popping: an entry in hand always shows as
        // in-flight work, so idle workers cannot conclude "exhausted" while
        // children are still coming.
        shared.busy.fetch_add(1, Ordering::SeqCst);
        let guard = BusyGuard(&shared.busy);
        let popped = {
            let mut own = shared.queues[idx].lock();
            match strategy {
                WorkerStrategy::Bfs => own.pop_front(ctx),
                _ => own.pop_back(ctx),
            }
        };
        let entry = match popped {
            Ok(Some(e)) => Some(e),
            Ok(None) => match steal(shared, idx, ctx) {
                Ok(e) => e,
                Err(e) => return spill_fatal("frontier", e),
            },
            Err(e) => return spill_fatal("frontier", e),
        };
        let Some(entry) = entry else {
            drop(guard);
            // The rare losing race here (another worker popped the last
            // entry between our two checks) costs this worker's
            // parallelism, never coverage: whoever holds an entry drains
            // its own children.
            if shared.busy.load(Ordering::SeqCst) == 0 && shared.queues_all_empty() {
                return Some(StopReason::Exhausted);
            }
            // Yield first (on a loaded single-CPU host this reschedules the
            // worker actually holding work); back off to a sleep only after
            // repeated misses so multi-CPU hosts don't burn a core.
            idle_spins += 1;
            if idle_spins < 64 {
                std::thread::yield_now();
            } else {
                std::thread::sleep(Duration::from_micros(50));
            }
            continue;
        };
        idle_spins = 0;

        // --- Position the system at the entry's state: restore the longest
        // cached prefix, then deterministically replay the rest.
        let mut replay_from = 0usize;
        loop {
            let mut best: Option<(usize, usize)> = None; // (cache idx, prefix len)
            for (ci, (p, _)) in cache.iter().enumerate() {
                if p.len() > best.map_or(0, |(_, l)| l)
                    && p.len() <= entry.prefix.len()
                    && entry.prefix.starts_with(p)
                {
                    best = Some((ci, p.len()));
                }
            }
            match best {
                Some((ci, plen)) => {
                    let id = cache[ci].1;
                    match sys.restore(id) {
                        Ok(()) => {
                            stats.restores += 1;
                            replay_from = plen;
                            break;
                        }
                        Err(e) if is_evicted_error(&e) => {
                            // The cached checkpoint aged out of the budgeted
                            // store: forget it, fall back to a shorter one.
                            cache.remove(ci);
                            continue;
                        }
                        Err(e) => return Some(StopReason::Fatal(e)),
                    }
                }
                None => match sys.restore(root) {
                    Ok(()) => {
                        stats.restores += 1;
                        break;
                    }
                    Err(e) => return Some(restore_failure(e)),
                },
            }
        }
        for (i, op) in entry.prefix.iter().enumerate().skip(replay_from) {
            match sys.apply(op) {
                ApplyOutcome::Ok => stats.ops_replayed += 1,
                ApplyOutcome::Prune(_) => {
                    // A prefix that replayed cleanly when discovered cannot
                    // prune under deterministic replay; treat it as a stale
                    // entry and drop it rather than poison the run.
                    stats.pruned += 1;
                    shared.tick_round(quota);
                    continue 'entries;
                }
                ApplyOutcome::Violation(message) => {
                    let trace = entry.prefix[..=i].to_vec();
                    viols.push(record_violation(
                        &mut sys,
                        trace,
                        message,
                        stats.ops_executed,
                    ));
                    if cfg.stop_on_violation {
                        shared.stop.store(true, Ordering::SeqCst);
                        return Some(StopReason::Violation);
                    }
                    shared.tick_round(quota);
                    continue 'entries;
                }
            }
        }

        // --- Checkpoint the entry state (restored once per sibling op
        // below) and cache it for this worker's future replays.
        let ent_id = StateId(next_id);
        next_id += 1;
        if let Err(e) = sys.checkpoint(ent_id) {
            return Some(StopReason::Fatal(e));
        }
        sys.pin(ent_id);
        stats.checkpoints += 1;
        cache.push_back((entry.prefix.clone(), ent_id));
        if cache.len() > PREFIX_CACHE_CAP {
            if let Some((_, old)) = cache.pop_front() {
                sys.release(old);
            }
        }

        // --- Expand: apply every enabled op, fingerprint, push new states.
        let depth = entry.prefix.len();
        let ops = sys.ops();
        let ops = crate::explore::persistent_filter(cfg, &mut sys, ops, &mut stats.pruned);
        let mut at_entry = true;
        for (i, op) in ops.iter().enumerate() {
            if cfg.por && entry.sleep.contains(op) {
                stats.pruned += 1;
                continue;
            }
            if !at_entry {
                if let Err(e) = sys.restore(ent_id) {
                    // ent_id is pinned for the whole expansion; any failure
                    // is genuine.
                    sys.unpin(ent_id);
                    return Some(restore_failure(e));
                }
                stats.restores += 1;
            }
            at_entry = false;
            let outcome = sys.apply(op);
            stats.ops_executed += 1;
            shared.ops_total.fetch_add(1, Ordering::SeqCst);
            match outcome {
                ApplyOutcome::Ok => {}
                ApplyOutcome::Prune(_) => {
                    stats.pruned += 1;
                    continue;
                }
                ApplyOutcome::Violation(message) => {
                    let mut trace = entry.prefix.clone();
                    trace.push(op.clone());
                    viols.push(record_violation(
                        &mut sys,
                        trace,
                        message,
                        stats.ops_executed,
                    ));
                    if cfg.stop_on_violation {
                        shared.stop.store(true, Ordering::SeqCst);
                        sys.unpin(ent_id);
                        return Some(StopReason::Violation);
                    }
                    continue;
                }
            }
            let h = sys.abstract_state();
            let (visit, resize) = shared.visited.insert_at(h, depth as u32 + 1);
            if resize.is_some() {
                stats.resize_events += 1;
            }
            if let Some(e) = shared.visited.error() {
                sys.unpin(ent_id);
                return spill_fatal("visited", e);
            }
            match visit {
                Visit::Matched => {
                    stats.states_matched += 1;
                    continue;
                }
                Visit::New => {
                    stats.states_new += 1;
                    shared.states_total.fetch_add(1, Ordering::SeqCst);
                }
                // Shallower: a known state reached closer to the root must
                // be re-expanded or depth-bounded coverage would depend on
                // which worker got there first.
                Visit::Shallower => {}
            }
            stats.max_depth_seen = stats.max_depth_seen.max(depth + 1);
            if depth + 1 < cfg.max_depth {
                let sleep = if cfg.por {
                    let mut s: Vec<S::Op> = entry
                        .sleep
                        .iter()
                        .filter(|x| sys.independent(x, op))
                        .cloned()
                        .collect();
                    for prev in &ops[..i] {
                        if sys.independent(prev, op) && !s.contains(prev) {
                            s.push(prev.clone());
                        }
                    }
                    s
                } else {
                    Vec::new()
                };
                let mut prefix = entry.prefix.clone();
                prefix.push(op.clone());
                let pushed = shared.queues[idx]
                    .lock()
                    .push_back(FrontierEntry { prefix, sleep }, ctx);
                if let Err(e) = pushed {
                    sys.unpin(ent_id);
                    return spill_fatal("frontier", e);
                }
            }
        }
        sys.unpin(ent_id);
        drop(guard);
        shared.tick_round(quota);
        // One expansion per scheduling slice: on a single-CPU host this is
        // what lets idle workers steal before the current worker drains the
        // whole frontier itself (virtual-time speedup tracks the work
        // *split*, so balance matters more than raw wall throughput).
        std::thread::yield_now();
    }
}

/// Steals roughly half of the first non-empty victim queue (from its front
/// — the oldest entries, i.e. the largest unexplored subtrees), moving the
/// surplus into the thief's own queue and returning one entry to expand.
/// Spilled victim pages reload transparently (steal-half pulls whole pages
/// rather than splitting one).
///
/// # Errors
///
/// On spill-file failure while reloading a victim's pages.
fn steal<Op: Clone>(
    shared: &FrontierShared<Op>,
    idx: usize,
    ctx: SpillCtx<'_, Op>,
) -> Result<Option<FrontierEntry<Op>>, String> {
    let n = shared.queues.len();
    for off in 1..n {
        let victim_idx = (idx + off) % n;
        let stolen: Vec<FrontierEntry<Op>> = {
            let mut victim = shared.queues[victim_idx].lock();
            if victim.is_empty() {
                continue;
            }
            victim.steal_half(ctx)?
        };
        if stolen.is_empty() {
            continue;
        }
        let mut it = stolen.into_iter();
        let first = it.next();
        shared.queues[idx].lock().extend_back(it.collect());
        return Ok(first);
    }
    Ok(None)
}

// ---------------------------------------------------------------------------
// Stop-flag system wrappers
// ---------------------------------------------------------------------------

/// Wrapper that reports no enabled operations once the shared stop flag is
/// raised, draining the remaining workers quickly.
struct Stoppable<'a, S> {
    inner: S,
    stop: &'a AtomicBool,
}

impl<S> Stoppable<'_, S> {
    fn drained(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }
}

/// Like [`Stoppable`], but also drains at a snapshot round boundary so walk
/// workers park for a consistent fleet snapshot.
struct RoundStoppable<'a, S> {
    inner: S,
    stop: &'a AtomicBool,
    round_done: &'a AtomicBool,
}

impl<S> RoundStoppable<'_, S> {
    fn drained(&self) -> bool {
        self.stop.load(Ordering::Relaxed) || self.round_done.load(Ordering::Relaxed)
    }
}

macro_rules! delegate_system {
    ($ty:ident) => {
        impl<S: ModelSystem> ModelSystem for $ty<'_, S> {
            type Op = S::Op;

            fn ops(&mut self) -> Vec<Self::Op> {
                if self.drained() {
                    // No ops and an empty restart set terminates the walk
                    // via its op budget; force it sooner by returning
                    // nothing forever.
                    return Vec::new();
                }
                self.inner.ops()
            }

            fn apply(&mut self, op: &Self::Op) -> crate::system::ApplyOutcome {
                self.inner.apply(op)
            }

            fn abstract_state(&mut self) -> u128 {
                self.inner.abstract_state()
            }

            fn checkpoint(&mut self, id: crate::system::StateId) -> Result<usize, String> {
                self.inner.checkpoint(id)
            }

            fn restore(&mut self, id: crate::system::StateId) -> Result<(), String> {
                self.inner.restore(id)
            }

            fn release(&mut self, id: crate::system::StateId) {
                self.inner.release(id)
            }

            fn pin(&mut self, id: crate::system::StateId) {
                self.inner.pin(id)
            }

            fn unpin(&mut self, id: crate::system::StateId) {
                self.inner.unpin(id)
            }

            fn checkpoint_store_stats(&self) -> Option<crate::system::CheckpointStoreStats> {
                self.inner.checkpoint_store_stats()
            }

            fn crash_stats(&self) -> Option<crate::system::CrashStats> {
                self.inner.crash_stats()
            }

            fn independent(&self, a: &Self::Op, b: &Self::Op) -> bool {
                self.inner.independent(a, b)
            }

            fn minimize(
                &mut self,
                trace: &[Self::Op],
                message: &str,
            ) -> Option<(Vec<Self::Op>, crate::ShrinkStats)> {
                self.inner.minimize(trace, message)
            }
        }
    };
}

delegate_system!(Stoppable);
delegate_system!(RoundStoppable);
